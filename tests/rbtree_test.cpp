// Red-black tree tests: oracle comparison against std::set, invariant
// validation, and parameterized concurrent sweeps across all schemes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "ds/rbtree.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "support/rng.hpp"

namespace elision::ds {
namespace {

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

tsx::TsxConfig quiet_tsx() {
  tsx::TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

// Runs a body on a single simulated thread.
void run_single(const std::function<void(tsx::Ctx&)>& body) {
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) { body(eng.context(st)); });
  sched.run();
}

TEST(RbTree, EmptyTreeBehaviour) {
  RbTree tree(16);
  run_single([&](tsx::Ctx& ctx) {
    EXPECT_FALSE(tree.contains(ctx, 1));
    EXPECT_FALSE(tree.erase(ctx, 1));
    EXPECT_TRUE(tree.insert(ctx, 1));
    EXPECT_TRUE(tree.contains(ctx, 1));
    EXPECT_FALSE(tree.insert(ctx, 1));  // duplicate
    EXPECT_TRUE(tree.erase(ctx, 1));
    EXPECT_FALSE(tree.contains(ctx, 1));
  });
  EXPECT_EQ(tree.unsafe_size(), 0u);
  EXPECT_TRUE(tree.unsafe_validate());
}

TEST(RbTree, AscendingInsertStaysBalancedish) {
  RbTree tree(600);
  run_single([&](tsx::Ctx& ctx) {
    for (std::uint64_t k = 1; k <= 512; ++k) {
      ASSERT_TRUE(tree.insert(ctx, k));
    }
    for (std::uint64_t k = 1; k <= 512; ++k) {
      EXPECT_TRUE(tree.contains(ctx, k));
    }
  });
  std::string why;
  EXPECT_TRUE(tree.unsafe_validate(&why)) << why;
  EXPECT_EQ(tree.unsafe_size(), 512u);
}

TEST(RbTree, DescendingInsertThenFullErase) {
  RbTree tree(600);
  run_single([&](tsx::Ctx& ctx) {
    for (std::uint64_t k = 512; k >= 1; --k) ASSERT_TRUE(tree.insert(ctx, k));
    for (std::uint64_t k = 1; k <= 512; ++k) ASSERT_TRUE(tree.erase(ctx, k));
  });
  EXPECT_EQ(tree.unsafe_size(), 0u);
  EXPECT_TRUE(tree.unsafe_validate());
}

TEST(RbTree, RandomOracleAgainstStdSet) {
  RbTree tree(2100);
  std::set<std::uint64_t> oracle;
  support::Xoshiro256 rng(77);
  run_single([&](tsx::Ctx& ctx) {
    for (int i = 0; i < 6000; ++i) {
      const std::uint64_t key = rng.next_below(2048);
      const int op = static_cast<int>(rng.next_below(3));
      if (op == 0) {
        EXPECT_EQ(tree.insert(ctx, key), oracle.insert(key).second);
      } else if (op == 1) {
        EXPECT_EQ(tree.erase(ctx, key), oracle.erase(key) == 1);
      } else {
        EXPECT_EQ(tree.contains(ctx, key), oracle.count(key) == 1);
      }
      if (i % 500 == 0) {
        std::string why;
        ASSERT_TRUE(tree.unsafe_validate(&why)) << why << " at op " << i;
      }
    }
  });
  std::string why;
  EXPECT_TRUE(tree.unsafe_validate(&why)) << why;
  const auto keys = tree.unsafe_keys();
  const std::vector<std::uint64_t> expect(oracle.begin(), oracle.end());
  EXPECT_EQ(keys, expect);
}

TEST(RbTree, UnsafeInsertMatchesTransactionalInsert) {
  RbTree a(300), b(300);
  support::Xoshiro256 rng(5);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(rng.next_below(500));
  for (const auto k : keys) a.unsafe_insert(k);
  run_single([&](tsx::Ctx& ctx) {
    for (const auto k : keys) b.insert(ctx, k);
  });
  EXPECT_EQ(a.unsafe_keys(), b.unsafe_keys());
  EXPECT_TRUE(a.unsafe_validate());
  EXPECT_TRUE(b.unsafe_validate());
}

TEST(RbTree, KeysComeOutSorted) {
  RbTree tree(300);
  support::Xoshiro256 rng(11);
  for (int i = 0; i < 200; ++i) tree.unsafe_insert(rng.next());
  const auto keys = tree.unsafe_keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(RbTree, AbortedOperationRollsBackCompletely) {
  // A transactional insert that aborts mid-rebalance must leave the tree
  // (and the allocator free list) exactly as before.
  RbTree tree(64);
  for (std::uint64_t k = 0; k < 20; ++k) tree.unsafe_insert(k * 3);
  const auto before = tree.unsafe_keys();
  run_single([&](tsx::Ctx& ctx) {
    const unsigned st = ctx.engine().run_transaction(ctx, [&] {
      tree.insert(ctx, 100);
      tree.erase(ctx, 0);
      ctx.engine().xabort(ctx, 1);
    });
    EXPECT_NE(st, tsx::kCommitted);
  });
  EXPECT_EQ(tree.unsafe_keys(), before);
  std::string why;
  EXPECT_TRUE(tree.unsafe_validate(&why)) << why;
}

// ---------------------------------------------------------------------------
// Parameterized concurrent sweeps: scheme x lock x tree size x update mix
// ---------------------------------------------------------------------------

struct SweepParam {
  locks::Scheme scheme;
  bool mcs;  // false: TTAS
  std::size_t size;
  int update_pct;  // percent of ops that are insert+delete (split evenly)
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  std::string s = locks::scheme_name(p.scheme);
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s + (p.mcs ? "_MCS_" : "_TTAS_") + std::to_string(p.size) + "_u" +
         std::to_string(p.update_pct);
}

class RbTreeConcurrent : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RbTreeConcurrent, InvariantsHoldUnderConcurrency) {
  const SweepParam p = GetParam();
  RbTree tree(p.size * 4 + 64);
  support::Xoshiro256 fill(42);
  std::size_t filled = 0;
  while (filled < p.size) {
    if (tree.unsafe_insert(fill.next_below(p.size * 2))) ++filled;
  }
  tree.unsafe_distribute_free_lists(8);
  const std::size_t initial = tree.unsafe_size();

  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  std::int64_t net_inserts = 0;
  std::uint64_t ops = 0;

  auto run_with = [&](auto& lock) {
    using Lock = std::remove_reference_t<decltype(lock)>;
    locks::CriticalSection<Lock> cs(locks::ElisionPolicy::from_scheme(p.scheme), lock);
    for (int t = 0; t < 8; ++t) {
      sched.spawn([&](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        auto& rng = st.rng();
        for (int k = 0; k < 60; ++k) {
          const std::uint64_t key = rng.next_below(p.size * 2);
          const auto dice = static_cast<int>(rng.next_below(100));
          bool did_insert = false, did_erase = false;
          cs.run(ctx, [&] {
            did_insert = did_erase = false;
            if (dice < p.update_pct / 2) {
              did_insert = tree.insert(ctx, key);
            } else if (dice < p.update_pct) {
              did_erase = tree.erase(ctx, key);
            } else {
              tree.contains(ctx, key);
            }
          });
          net_inserts += did_insert ? 1 : 0;
          net_inserts -= did_erase ? 1 : 0;
          ++ops;
        }
      });
    }
    sched.run();
  };

  if (p.mcs) {
    locks::McsLock lock;
    run_with(lock);
  } else {
    locks::TtasLock lock;
    run_with(lock);
  }

  EXPECT_EQ(ops, 8u * 60u);
  std::string why;
  ASSERT_TRUE(tree.unsafe_validate(&why)) << why;
  EXPECT_EQ(static_cast<std::int64_t>(tree.unsafe_size()),
            static_cast<std::int64_t>(initial) + net_inserts);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (const auto scheme : locks::kAllSixSchemes) {
    for (const bool mcs : {false, true}) {
      for (const std::size_t size : {16ULL, 256ULL}) {
        for (const int update : {20, 100}) {
          out.push_back({scheme, mcs, size, update});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RbTreeConcurrent,
                         ::testing::ValuesIn(sweep_params()), param_name);

}  // namespace
}  // namespace elision::ds
