file(REMOVE_RECURSE
  "CMakeFiles/abl_tuning.dir/abl_tuning.cpp.o"
  "CMakeFiles/abl_tuning.dir/abl_tuning.cpp.o.d"
  "abl_tuning"
  "abl_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
