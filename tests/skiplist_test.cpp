// Skiplist tests: oracle comparison, structure validation, rollback safety,
// and concurrent sweeps across schemes.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ds/skiplist.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "support/rng.hpp"

namespace elision::ds {
namespace {

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

tsx::TsxConfig quiet_tsx() {
  tsx::TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

void run_single(const std::function<void(tsx::Ctx&)>& body) {
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) { body(eng.context(st)); });
  sched.run();
}

TEST(SkipList, EmptyBehaviour) {
  SkipList sl(16);
  run_single([&](tsx::Ctx& ctx) {
    EXPECT_FALSE(sl.contains(ctx, 5));
    EXPECT_FALSE(sl.erase(ctx, 5));
    EXPECT_TRUE(sl.insert(ctx, 5));
    EXPECT_FALSE(sl.insert(ctx, 5));
    EXPECT_TRUE(sl.contains(ctx, 5));
    EXPECT_TRUE(sl.erase(ctx, 5));
    EXPECT_FALSE(sl.contains(ctx, 5));
  });
  EXPECT_EQ(sl.unsafe_size(), 0u);
  EXPECT_TRUE(sl.unsafe_validate());
}

TEST(SkipList, OracleAgainstStdSet) {
  SkipList sl(1100);
  std::set<std::uint64_t> oracle;
  support::Xoshiro256 rng(321);
  run_single([&](tsx::Ctx& ctx) {
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t key = rng.next_below(1024);
      switch (rng.next_below(3)) {
        case 0:
          EXPECT_EQ(sl.insert(ctx, key), oracle.insert(key).second);
          break;
        case 1:
          EXPECT_EQ(sl.erase(ctx, key), oracle.erase(key) == 1);
          break;
        default:
          EXPECT_EQ(sl.contains(ctx, key), oracle.count(key) == 1);
      }
      if (i % 1000 == 0) {
        std::string why;
        ASSERT_TRUE(sl.unsafe_validate(&why)) << why;
      }
    }
  });
  const auto keys = sl.unsafe_keys();
  const std::vector<std::uint64_t> expect(oracle.begin(), oracle.end());
  EXPECT_EQ(keys, expect);
  EXPECT_TRUE(sl.unsafe_validate());
}

TEST(SkipList, UnsafeAndTransactionalInsertsInterop) {
  SkipList sl(300);
  for (std::uint64_t k = 0; k < 100; k += 2) sl.unsafe_insert(k);
  run_single([&](tsx::Ctx& ctx) {
    for (std::uint64_t k = 1; k < 100; k += 2) {
      EXPECT_TRUE(sl.insert(ctx, k));
    }
    for (std::uint64_t k = 0; k < 100; ++k) {
      EXPECT_TRUE(sl.contains(ctx, k)) << k;
    }
  });
  EXPECT_EQ(sl.unsafe_size(), 100u);
  EXPECT_TRUE(sl.unsafe_validate());
}

TEST(SkipList, AbortRollsBackStructure) {
  SkipList sl(64);
  for (std::uint64_t k = 0; k < 20; ++k) sl.unsafe_insert(k * 5);
  const auto before = sl.unsafe_keys();
  run_single([&](tsx::Ctx& ctx) {
    const unsigned st = ctx.engine().run_transaction(ctx, [&] {
      sl.insert(ctx, 101);
      sl.erase(ctx, 0);
      sl.erase(ctx, 50);
      ctx.engine().xabort(ctx, 4);
    });
    EXPECT_NE(st, tsx::kCommitted);
  });
  EXPECT_EQ(sl.unsafe_keys(), before);
  std::string why;
  EXPECT_TRUE(sl.unsafe_validate(&why)) << why;
}

struct SlParam {
  locks::Scheme scheme;
  bool mcs;
};

std::string sl_name(const ::testing::TestParamInfo<SlParam>& info) {
  std::string s = locks::scheme_name(info.param.scheme);
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s + (info.param.mcs ? "_MCS" : "_TTAS");
}

class SkipListConcurrent : public ::testing::TestWithParam<SlParam> {};

TEST_P(SkipListConcurrent, StructureSurvivesConcurrency) {
  const auto p = GetParam();
  constexpr std::size_t kSize = 128;
  SkipList sl(kSize * 4 + 64);
  support::Xoshiro256 fill(42);
  std::size_t filled = 0;
  while (filled < kSize) {
    if (sl.unsafe_insert(fill.next_below(kSize * 2))) ++filled;
  }
  sl.unsafe_distribute_free_lists(8);
  const std::size_t initial = sl.unsafe_size();

  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  std::int64_t net = 0;
  auto worker = [&](auto& cs) {
    for (int t = 0; t < 8; ++t) {
      sched.spawn([&](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        for (int k = 0; k < 60; ++k) {
          const std::uint64_t key = st.rng().next_below(kSize * 2);
          const auto dice = st.rng().next_below(100);
          bool ins = false, del = false;
          cs.run(ctx, [&] {
            ins = del = false;
            if (dice < 25) {
              ins = sl.insert(ctx, key);
            } else if (dice < 50) {
              del = sl.erase(ctx, key);
            } else {
              sl.contains(ctx, key);
            }
          });
          net += (ins ? 1 : 0) - (del ? 1 : 0);
        }
      });
    }
    sched.run();
  };
  if (p.mcs) {
    locks::McsLock lock;
    locks::CriticalSection<locks::McsLock> cs(locks::ElisionPolicy::from_scheme(p.scheme), lock);
    worker(cs);
  } else {
    locks::TtasLock lock;
    locks::CriticalSection<locks::TtasLock> cs(locks::ElisionPolicy::from_scheme(p.scheme), lock);
    worker(cs);
  }
  std::string why;
  ASSERT_TRUE(sl.unsafe_validate(&why)) << why;
  EXPECT_EQ(static_cast<std::int64_t>(sl.unsafe_size()),
            static_cast<std::int64_t>(initial) + net);
}

std::vector<SlParam> sl_params() {
  std::vector<SlParam> out;
  for (const auto scheme : locks::kAllSixSchemes) {
    for (const bool mcs : {false, true}) out.push_back({scheme, mcs});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SkipListConcurrent,
                         ::testing::ValuesIn(sl_params()), sl_name);

}  // namespace
}  // namespace elision::ds
