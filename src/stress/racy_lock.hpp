// A deliberately broken spinlock: the classic check-then-act race.
//
// lock() tests the word and then stores 1 in a *separate* access, so two
// threads can both observe 0 and both "acquire". The window between the
// test and the store is a handful of cycles wide — narrow enough that the
// unperturbed earliest-first schedule often never interleaves inside it,
// which is exactly what the schedule-exploration stress harness exists to
// do. This lock is a self-test instrument for src/stress (is the harness
// able to find and shrink a real interleaving bug?); it is excluded from
// all_locks() and must never be used as a baseline in experiments.
//
// Only meaningful under Scheme::kStandard: it performs no XACQUIRE, so
// there is nothing to elide.
#pragma once

#include <cstdint>

#include "support/align.hpp"
#include "tsx/shared.hpp"

namespace elision::stress {

class RacyLock {
 public:
  static constexpr const char* kName = "Racy";
  static constexpr bool kIsFair = false;

  void lock(tsx::Ctx& ctx) {
    for (;;) {
      if (word_.value.load(ctx) == 0) break;  // test ...
      ctx.engine().pause(ctx);
    }
    word_.value.store(ctx, 1);  // ... then act: not atomic. The bug.
  }

  void unlock(tsx::Ctx& ctx) { word_.value.store(ctx, 0); }

  bool is_held(tsx::Ctx& ctx) { return word_.value.load(ctx) != 0; }

  bool reissue_acquire_standard(tsx::Ctx& ctx) {
    lock(ctx);
    return true;
  }

 private:
  support::CacheAligned<tsx::Shared<std::uint64_t>> word_;
};

}  // namespace elision::stress
