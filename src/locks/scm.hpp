// Software-assisted conflict management — the paper's main contribution
// (Ch. 4, Algorithm 3).
//
// Conflicting threads serialize on an *auxiliary* lock that is only ever
// acquired non-transactionally, then rejoin the speculative execution; the
// main lock is acquired for real only after MAX_RETRIES further failures.
// Because the aux lock's cache line is touched only by threads already in
// conflict, the serialization never disturbs the non-conflicting
// speculators — eliminating the avalanche.
//
// Two variants:
//  * the design of Algorithm 3: an RTM transaction nests an HLE acquisition
//    of the main lock, preserving the "lock is held" illusion. Haswell
//    cannot nest HLE in RTM, so this needs TsxConfig::allow_hle_in_rtm.
//  * the paper's evaluated workaround (Ch. 4 Remark): the transaction reads
//    the main lock and aborts if it is held.
#pragma once

#include "locks/region.hpp"
#include "support/function_ref.hpp"
#include "tsx/engine.hpp"

namespace elision::locks {

struct ScmParams {
  // "the thread holding the auxiliary lock retries to complete its operation
  // speculatively 10 times before giving up and acquiring the main lock"
  // (Sec 5.1, Conflict management tuning).
  int max_retries = 10;
  bool nested_hle = false;  // Algorithm 3 as designed (needs allow_hle_in_rtm)

  friend bool operator==(const ScmParams&, const ScmParams&) = default;
};

template <typename MainLock, typename AuxLock>
RegionResult scm_region(tsx::Ctx& ctx, MainLock& main, AuxLock& aux,
                        const ScmParams& params,
                        support::FunctionRef<void()> body,
                        AccessMode mode = AccessMode::kExclusive) {
  auto& eng = ctx.engine();
  RegionResult r;
  int retries = 0;
  bool aux_owner = false;
  for (;;) {
    // --- primary path ---
    ++r.attempts;
    unsigned st;
    if (params.nested_hle) {
      st = eng.run_transaction(ctx, [&] {
        ctx.set_mode(tsx::ElisionMode::kSpeculative);
        // HLE acquire (exclusive or shared) nested in the RTM transaction;
        // the XRELEASE validates the elision.
        detail::mode_lock(ctx, main, mode);
        body();
        detail::mode_unlock(ctx, main, mode);
      });
      ctx.set_mode(tsx::ElisionMode::kStandard);
    } else {
      st = eng.run_transaction(ctx, [&] {
        if (detail::mode_blocked(ctx, main, mode)) {
          eng.xabort(ctx, kAbortCodeLockBusy);
        }
        body();
      });
    }
    if (st == tsx::kCommitted) {
      r.speculative = true;
      // The conflicting thread completed speculatively while serialized on
      // the aux lock: it has rejoined the speculative execution (Ch. 4).
      if (aux_owner) eng.note_event(ctx, tsx::EventKind::kAuxRejoin);
      break;
    }
    r.last_abort = ctx.last_abort_cause();
    // Tuning (Sec 5.1), as in slr_region: an abort status without RETRY
    // (e.g. capacity) means no re-execution can ever commit — serializing
    // max_retries hopeless attempts on the aux lock would only stall the
    // conflict group. Complete non-speculatively right away, without even
    // acquiring the aux lock if this was the first failure.
    if ((st & tsx::status::kRetry) == 0) {
      complete_locked(ctx, main, r, body, mode);
      break;
    }
    // --- serializing path ---
    if (!aux_owner) {
      eng.note_event(ctx, tsx::EventKind::kAuxEnter);
      aux.lock(ctx);  // standard, non-transactional acquire
      aux_owner = true;
    } else {
      ++retries;
    }
    if (retries >= params.max_retries) {
      // Standard acquire: run non-speculatively.
      complete_locked(ctx, main, r, body, mode);
      break;
    }
  }
  if (aux_owner) {
    aux.unlock(ctx);
    eng.note_event(ctx, tsx::EventKind::kAuxExit);
  }
  return r;
}

}  // namespace elision::locks
