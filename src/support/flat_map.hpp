// A tiny open-addressing hash map from uintptr_t keys to 8-byte values,
// used for transactional write buffers (hot path: one probe on average).
// Key 0 is reserved (no simulated object lives at address 0).
//
// Like tsx::LineTable, slot lifetime is managed with generation stamps:
// clear() is an O(1) generation bump instead of an O(capacity) wipe, which
// matters because every commit and every abort clears the write buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/hash.hpp"

namespace elision::support {

class WordMap {
 public:
  explicit WordMap(std::size_t initial_pow2 = 6)
      : mask_((std::size_t{1} << initial_pow2) - 1), slots_(mask_ + 1) {}

  void clear() {
    ++gen_;
    size_ = 0;
    live_.clear();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Grows (never shrinks) so that `keys` entries fit without triggering a
  // rehash. Called once per context from the MachineConfig capacity hints
  // so retry loops never re-grow the buffer. Jumps straight to the final
  // capacity instead of doubling through intermediate allocations — this
  // runs per simulated thread inside the benches' timed setup window.
  void reserve(std::size_t keys) {
    std::size_t cap = slots_.size();
    while ((keys + 1) * 4 >= cap * 3) cap *= 2;
    if (cap != slots_.size()) rehash_to(cap);
    live_.reserve(keys);
  }

  // Inserts or overwrites.
  void put(std::uintptr_t key, std::uint64_t value) {
    ELISION_DCHECK(key != 0);
    if ((size_ + 1) * 4 >= slots_.size() * 3) grow();
    Slot& s = probe(key);
    if (s.gen != gen_) {
      s.key = key;
      s.gen = gen_;
      ++size_;
      live_.push_back(static_cast<std::uint32_t>(&s - slots_.data()));
    }
    s.value = value;
  }

  // Returns nullptr if absent.
  const std::uint64_t* find(std::uintptr_t key) const {
    const Slot& s = const_cast<WordMap*>(this)->probe(key);
    return s.gen == gen_ ? &s.value : nullptr;
  }

  // Visits live entries in insertion order: O(size), not O(capacity), so a
  // generously reserved but lightly filled buffer iterates cheaply (this
  // runs once per transaction commit).
  template <typename F>
  void for_each(F&& f) const {
    for (const std::uint32_t i : live_) {
      const Slot& s = slots_[i];
      f(s.key, s.value);
    }
  }

 private:
  struct Slot {
    std::uintptr_t key = 0;
    std::uint64_t gen = 0;  // live iff == WordMap::gen_ (which starts at 1)
    std::uint64_t value = 0;
  };

  Slot& probe(std::uintptr_t key) {
    std::size_t i = static_cast<std::size_t>(mix64(key)) & mask_;
    while (slots_[i].gen == gen_ && slots_[i].key != key) i = (i + 1) & mask_;
    return slots_[i];
  }

  void grow() { rehash_to((mask_ + 1) * 2); }

  void rehash_to(std::size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    mask_ = cap - 1;
    slots_.assign(mask_ + 1, Slot{});
    // Reinsert in insertion order and rebuild the live list to match (slot
    // indices change with the capacity).
    std::vector<std::uint32_t> old_live = std::move(live_);
    live_.clear();
    for (const std::uint32_t i : old_live) {
      const Slot& s = old[i];
      Slot& dst = probe(s.key);
      dst.key = s.key;
      dst.gen = gen_;
      dst.value = s.value;
      live_.push_back(static_cast<std::uint32_t>(&dst - slots_.data()));
    }
  }

  std::size_t mask_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> live_;  // slot indices of live entries, in order
  std::uint64_t gen_ = 1;
  std::size_t size_ = 0;
};

}  // namespace elision::support
