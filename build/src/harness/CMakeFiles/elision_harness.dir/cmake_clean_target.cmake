file(REMOVE_RECURSE
  "libelision_harness.a"
)
