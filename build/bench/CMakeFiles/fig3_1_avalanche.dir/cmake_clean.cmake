file(REMOVE_RECURSE
  "CMakeFiles/fig3_1_avalanche.dir/fig3_1_avalanche.cpp.o"
  "CMakeFiles/fig3_1_avalanche.dir/fig3_1_avalanche.cpp.o.d"
  "fig3_1_avalanche"
  "fig3_1_avalanche.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_1_avalanche.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
