// A red-black tree over simulated shared memory — the paper's primary data
// structure benchmark (Ch. 3 and Sec. 5.2).
//
// Every node field is a tsx::Shared word, so tree operations executed inside
// a critical section are transactional (or direct) according to the
// thread's state, and an abort rolls back partial rebalancing as hardware
// would. Nodes come from an internal pool whose free list is itself shared
// memory, making allocation transaction-safe.
//
// Not thread-safe by itself: the caller serializes operations with a global
// lock / elision scheme, which is exactly the coarse-grained usage the paper
// studies.
#pragma once

#include <cstdint>
#include <vector>

#include "support/align.hpp"
#include "tsx/config.hpp"
#include "tsx/shared.hpp"

namespace elision::ds {

class RbTree {
 public:
  // `capacity` bounds the number of live nodes. `max_threads` sizes the
  // per-thread free lists (see n_free_lists_ below); the default preserves
  // the historical 64-thread pool layout.
  explicit RbTree(std::size_t capacity,
                  int max_threads = tsx::kDefaultPoolThreads);

  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  // Returns false if the key was already present.
  bool insert(tsx::Ctx& ctx, std::uint64_t key);
  // Returns false if the key was absent.
  bool erase(tsx::Ctx& ctx, std::uint64_t key);
  bool contains(tsx::Ctx& ctx, std::uint64_t key);

  // --- setup/verification helpers (no simulated threads running) ---
  bool unsafe_insert(std::uint64_t key);
  // Distributes the remaining free nodes round-robin over the first
  // n_threads per-thread caches. Call once after prefilling.
  void unsafe_distribute_free_lists(int n_threads);
  std::size_t unsafe_size() const;
  // Validates all red-black invariants (BST order, root black, no red-red,
  // equal black heights) and that the free list accounts for every node.
  // Returns false (and fills *why) on violation.
  bool unsafe_validate(std::string* why = nullptr) const;
  std::vector<std::uint64_t> unsafe_keys() const;

 private:
  struct alignas(support::kCacheLineBytes) Node {
    tsx::Shared<std::uint64_t> key;
    tsx::Shared<Node*> left;
    tsx::Shared<Node*> right;
    tsx::Shared<Node*> parent;
    tsx::Shared<std::uint64_t> red;  // 1 = red, 0 = black
  };

  Node* alloc(tsx::Ctx& ctx, std::uint64_t key);
  void free_node(tsx::Ctx& ctx, Node* n);
  void rotate_left(tsx::Ctx& ctx, Node* x);
  void rotate_right(tsx::Ctx& ctx, Node* x);
  void insert_fixup(tsx::Ctx& ctx, Node* z);
  void erase_fixup(tsx::Ctx& ctx, Node* x, Node* x_parent);
  void transplant(tsx::Ctx& ctx, Node* u, Node* v);
  Node* minimum(tsx::Ctx& ctx, Node* n);
  Node* find(tsx::Ctx& ctx, std::uint64_t key);

  bool is_nil(const Node* n) const { return n == &nil_; }

  std::vector<Node> arena_;
  Node nil_;  // sentinel: black, children/parent undefined-but-harmless
  tsx::Shared<Node*> root_;
  // Per-thread free lists (threaded through `left`), modeling the
  // thread-caching allocator (jemalloc) the paper's benchmarks use: without
  // it every mutation would conflict on a single allocator word, which the
  // real system does not do. Slot 64 is the setup/global list.
  // One free list per supported simulated thread + one setup/global list
  // (slot n_free_lists_ - 1). Sized at construction: the alloc() fallback
  // scan performs a simulated load per list, so the count is part of the
  // simulated workload and defaults to the historical 64-thread sizing
  // (tsx::kDefaultPoolThreads) rather than tracking kMaxThreads.
  const int n_free_lists_;
  std::vector<support::CacheAligned<tsx::Shared<Node*>>> free_;
};

}  // namespace elision::ds
