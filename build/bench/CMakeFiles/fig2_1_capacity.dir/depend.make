# Empty dependencies file for fig2_1_capacity.
# This may be replaced when dependencies are built.
