// STAMP vacation: a travel-reservation system over in-memory tables.
//
// Three item relations (cars, flights, rooms) are indexed by red-black
// trees with per-item stock counters; customers accumulate reservations in a
// hash table. A client session queries several items across relations,
// reserves the best available one, and occasionally deletes a customer or
// updates the relations. Transactions are of medium length with read sets
// spanning several tree paths; "high" contention issues more queries per
// transaction over a hotter key range than "low".
#include <cstdint>
#include <vector>

#include "ds/hashtable.hpp"
#include "ds/rbtree.hpp"
#include "stamp/detail.hpp"
#include "support/rng.hpp"
#include "tsx/shared.hpp"

namespace elision::stamp {

namespace {
constexpr std::size_t kRelations = 3;  // cars, flights, rooms
}

StampResult run_vacation(const StampConfig& cfg, bool high_contention) {
  const auto items_per_relation = static_cast<std::size_t>(256 * cfg.scale);
  const auto sessions_per_thread = static_cast<std::size_t>(512 * cfg.scale);
  // STAMP: the high-contention configuration issues more queries per task
  // over a narrower (hotter) slice of each relation.
  const int queries_per_session = high_contention ? 4 : 2;
  const std::uint64_t hot_range =
      high_contention ? items_per_relation / 2 : items_per_relation;

  std::vector<std::unique_ptr<ds::RbTree>> tables;
  for (std::size_t r = 0; r < kRelations; ++r) {
    tables.push_back(
        std::make_unique<ds::RbTree>(items_per_relation * 2 + 64));
    for (std::uint64_t i = 0; i < items_per_relation; ++i) {
      tables[r]->unsafe_insert(i);
    }
    tables[r]->unsafe_distribute_free_lists(cfg.threads);
  }
  // One cache line per stock counter: STAMP's reservation records are
  // heap-allocated structures, not densely packed counters, so they do not
  // false-share.
  std::vector<support::CacheAligned<tsx::Shared<std::int64_t>>> stock(
      kRelations * items_per_relation);
  for (auto& s : stock) s.value.unsafe_set(100);
  // Customer ids are drawn from [0, 4096); in the worst case every id gets a
  // record.
  ds::HashTable customers(1024, 4096 + 64);

  return detail::dispatch_lock(cfg, [&](auto& lock) {
    using Lock = std::remove_reference_t<decltype(lock)>;
    sim::Scheduler sched(cfg.machine);
    tsx::Engine eng(sched, cfg.tsx);
    locks::CriticalSection<Lock> cs(locks::ElisionPolicy::from_scheme(cfg.scheme), lock);
    std::vector<OpTally> tallies(cfg.threads);

    for (int t = 0; t < cfg.threads; ++t) {
      sched.spawn([&, t](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        auto& rng = st.rng();
        for (std::size_t s = 0; s < sessions_per_thread; ++s) {
          const std::uint64_t dice = rng.next_below(100);
          if (dice < 98) {
            // Make-reservation session.
            const std::uint64_t customer = rng.next_below(4096);
            // Pre-draw the queried items so retries replay identically.
            std::uint64_t rel[8], item[8];
            for (int q = 0; q < queries_per_session; ++q) {
              rel[q] = rng.next_below(kRelations);
              item[q] = rng.next_below(hot_range);
            }
            tallies[t].add(cs.run(ctx, [&] {
              std::int64_t best = -1;
              std::size_t best_idx = 0;
              for (int q = 0; q < queries_per_session; ++q) {
                if (!tables[rel[q]]->contains(ctx, item[q])) continue;
                const std::size_t idx =
                    rel[q] * items_per_relation + item[q];
                const std::int64_t avail = stock[idx].value.load(ctx);
                if (avail > 0 && avail > best) {
                  best = avail;
                  best_idx = idx;
                }
              }
              if (best > 0) {
                stock[best_idx].value.store(ctx, best - 1);
                customers.upsert_add(ctx, customer, 1);
              }
            }));
          } else if (dice < 99) {
            // Delete-customer session.
            const std::uint64_t customer = rng.next_below(4096);
            tallies[t].add(cs.run(ctx, [&] {
              customers.erase(ctx, customer);
            }));
          } else {
            // Update-tables session: remove and re-add an item.
            const std::uint64_t r = rng.next_below(kRelations);
            const std::uint64_t add = rng.next_below(items_per_relation);
            const std::uint64_t del = rng.next_below(items_per_relation);
            tallies[t].add(cs.run(ctx, [&] {
              tables[r]->erase(ctx, del);
              tables[r]->insert(ctx, add);
            }));
          }
        }
      });
    }
    sched.run();

    bool ok = true;
    std::uint64_t stock_sum = 0;
    for (std::size_t i = 0; i < stock.size(); ++i) {
      const std::int64_t s = stock[i].value.unsafe_get();
      if (s < 0 || s > 100) ok = false;  // reservations must never oversell
      stock_sum += static_cast<std::uint64_t>(s);
    }
    std::uint64_t table_keys = 0;
    for (const auto& tbl : tables) {
      if (!tbl->unsafe_validate()) ok = false;
      table_keys += tbl->unsafe_size();
    }
    const std::uint64_t checksum =
        stock_sum * 131 + table_keys * 17 + customers.unsafe_size();
    auto r = detail::collect(high_contention ? "vacation_high"
                                             : "vacation_low",
                             checksum, sched.elapsed_cycles(), tallies);
    r.invariants_ok = ok;
    return r;
  });
}

}  // namespace elision::stamp
