// A non-owning, type-erased callable reference (cheap std::function_ref
// stand-in until C++26). Used to pass critical-section bodies through the
// elision scheme runners without allocation.
#pragma once

#include <type_traits>
#include <utility>

namespace elision::support {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit ref.
  FunctionRef(F&& f) noexcept {
    if constexpr (std::is_function_v<std::remove_reference_t<F>>) {
      // Plain functions: store the function pointer itself (POSIX permits
      // the round-trip through void*).
      obj_ = reinterpret_cast<void*>(&f);
      call_ = &invoke_fn<std::remove_reference_t<F>>;
    } else {
      obj_ = const_cast<void*>(static_cast<const void*>(&f));
      call_ = &invoke<std::remove_reference_t<F>>;
    }
  }

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  template <typename F>
  static R invoke(void* obj, Args... args) {
    return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
  }

  template <typename F>
  static R invoke_fn(void* obj, Args... args) {
    return (reinterpret_cast<F*>(obj))(std::forward<Args>(args)...);
  }

  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace elision::support
