// Region-driver semantics: attempt accounting, mode restoration, behaviour
// of every scheme over every HLE-compatible lock, and scheme/lock
// interactions not covered elsewhere.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "locks/clh_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/ttas_lock.hpp"
#include "tsx/shared.hpp"

namespace elision::locks {
namespace {

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

tsx::TsxConfig quiet_tsx() {
  tsx::TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

TEST(Region, ModeRestoredAfterSpeculativeRegion) {
  TtasLock lock;
  tsx::Shared<std::uint64_t> x(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    hle_region(ctx, lock, [&] { x.store(ctx, 1); });
    EXPECT_EQ(ctx.mode(), tsx::ElisionMode::kStandard);
    EXPECT_FALSE(eng.xtest(ctx));
  });
  sched.run();
}

TEST(Region, AttemptAccountingSpeculative) {
  // A clean speculative completion is exactly one attempt, under every
  // scheme.
  for (const Scheme s : kAllSixSchemes) {
    if (s == Scheme::kStandard) continue;
    TtasLock lock;
    CriticalSection<TtasLock> cs(ElisionPolicy::from_scheme(s), lock);
    tsx::Shared<std::uint64_t> x(0);
    sim::Scheduler sched(quiet_machine());
    tsx::Engine eng(sched, quiet_tsx());
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      const auto r = cs.run(ctx, [&] { x.store(ctx, 1); });
      EXPECT_TRUE(r.speculative) << scheme_name(s);
      EXPECT_EQ(r.attempts, 1) << scheme_name(s);
    });
    sched.run();
  }
}

TEST(Region, AttemptAccountingOnCapacityGiveUp) {
  // A hopeless (capacity) body: HLE = 1 failed speculation + 1 standard;
  // opt-SLR detects no-RETRY and also serializes after one attempt.
  constexpr std::size_t kLines = 600;
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> big(kLines);
  for (const Scheme s : {Scheme::kHle, Scheme::kOptSlr}) {
    TtasLock lock;
    CriticalSection<TtasLock> cs(ElisionPolicy::from_scheme(s), lock);
    sim::Scheduler sched(quiet_machine());
    tsx::Engine eng(sched, quiet_tsx());
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      const auto r = cs.run(ctx, [&] {
        for (auto& b : big) b.value.store(ctx, b.value.load(ctx) + 1);
      });
      EXPECT_FALSE(r.speculative) << scheme_name(s);
      EXPECT_EQ(r.attempts, 2) << scheme_name(s);
    });
    sched.run();
  }
  for (auto& b : big) EXPECT_EQ(b.value.unsafe_get(), 2u);
}

// Every scheme over every HLE-compatible lock: correctness matrix.
template <typename Lock>
void scheme_lock_matrix() {
  for (const Scheme s : kAllSixSchemes) {
    Lock lock;
    CriticalSection<Lock> cs(ElisionPolicy::from_scheme(s), lock);
    tsx::Shared<std::uint64_t> counter(0);
    sim::Scheduler sched(quiet_machine());
    tsx::Engine eng(sched, quiet_tsx());
    constexpr int kThreads = 6, kIters = 60;
    for (int t = 0; t < kThreads; ++t) {
      sched.spawn([&](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        for (int k = 0; k < kIters; ++k) {
          cs.run(ctx, [&] { counter.store(ctx, counter.load(ctx) + 1); });
        }
      });
    }
    sched.run();
    EXPECT_EQ(counter.unsafe_get(), kThreads * kIters)
        << Lock::kName << " under " << scheme_name(s);
  }
}

TEST(Region, MatrixTtas) { scheme_lock_matrix<TtasLock>(); }
TEST(Region, MatrixMcs) { scheme_lock_matrix<McsLock>(); }
TEST(Region, MatrixTicketAdjusted) { scheme_lock_matrix<TicketLockAdjusted>(); }
TEST(Region, MatrixClhAdjusted) { scheme_lock_matrix<ClhLockAdjusted>(); }
// The unadjusted fair locks also stay correct under every scheme — they
// just never elide.
TEST(Region, MatrixTicketUnadjusted) { scheme_lock_matrix<TicketLock>(); }
TEST(Region, MatrixClhUnadjusted) { scheme_lock_matrix<ClhLock>(); }

TEST(Region, UnadjustedTicketNeverSpeculatesUnderHle) {
  TicketLock lock;
  CriticalSection<TicketLock> cs(ElisionPolicy::hle(), lock);
  tsx::Shared<std::uint64_t> x(0);
  std::uint64_t spec = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int t = 0; t < 4; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 40; ++k) {
        if (cs.run(ctx, [&] { x.store(ctx, x.load(ctx) + 1); }).speculative) {
          ++spec;
        }
      }
    });
  }
  sched.run();
  EXPECT_EQ(spec, 0u);
  EXPECT_EQ(x.unsafe_get(), 160u);
}

TEST(Region, ScmOverAdjustedFairLocksKeepsFifoUnderGiveUp) {
  // When SCM's speculation becomes hopeless (capacity), every thread ends
  // up taking the adjusted ticket lock non-speculatively; FIFO order (and
  // hence completion) must be preserved.
  TicketLockAdjusted lock;
  CriticalSection<TicketLockAdjusted> cs(ElisionPolicy::hle_scm(), lock);
  constexpr std::size_t kLines = 600;
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> big(kLines);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int t = 0; t < 4; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      cs.run(ctx, [&] {
        for (auto& b : big) b.value.store(ctx, b.value.load(ctx) + 1);
      });
    });
  }
  sched.run();
  for (auto& b : big) EXPECT_EQ(b.value.unsafe_get(), 4u);
}

TEST(Region, RtmElideCountsAbortsHleCannot) {
  // The Ch. 3 Remark: the RTM-based mechanism exposes abort statistics.
  // Two conflicting threads under kRtmElide must leave engine-visible
  // conflict-abort counts.
  TtasLock lock;
  CriticalSection<TtasLock> cs(ElisionPolicy::rtm_elide(), lock);
  tsx::Shared<std::uint64_t> hot(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int t = 0; t < 4; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 50; ++k) {
        cs.run(ctx, [&] { hot.store(ctx, hot.load(ctx) + 1); });
      }
    });
  }
  sched.run();
  EXPECT_EQ(hot.unsafe_get(), 200u);
  EXPECT_GT(eng.total_stats().aborts, 0u);
}

TEST(Region, BackoffClampsPathologicalBase) {
  // Regression: `base << failures` wraps modulo 2^64 for large bases — for
  // base = 2^60 and shift 10 it wraps to exactly 0, which next_below()
  // rejects (and which would mean "no backoff" precisely when the caller
  // asked for the longest one). The clamp must keep every wait in
  // [1, kMaxBackoffBoundCycles] without overflowing the shift.
  const std::uint64_t bases[] = {
      1, 1000, std::uint64_t{1} << 60, ~std::uint64_t{0}};
  for (const std::uint64_t base : bases) {
    sim::Scheduler sched(quiet_machine());
    tsx::Engine eng(sched, quiet_tsx());
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      RetryParams p;
      p.backoff_base_cycles = base;
      for (const int failures : {0, 1, 10, 64, 1000}) {
        const std::uint64_t before = st.now();
        detail::backoff(ctx, p, failures);
        const std::uint64_t waited = st.now() - before;
        EXPECT_GE(waited, 1u) << "base=" << base << " failures=" << failures;
        EXPECT_LE(waited, detail::kMaxBackoffBoundCycles)
            << "base=" << base << " failures=" << failures;
      }
    });
    sched.run();
  }
}

TEST(Region, BodySideEffectsReplayOnRetry) {
  // Host-side (non-simulated) body effects replay on every attempt: the
  // caller contract is that bodies are idempotent apart from simulated
  // state. Verify the attempt count equals the number of executions.
  TtasLock lock;
  CriticalSection<TtasLock> cs(ElisionPolicy::hle_scm(), lock);
  tsx::Shared<std::uint64_t> hot(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  std::uint64_t executions = 0, attempts = 0;
  for (int t = 0; t < 4; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 50; ++k) {
        const auto r = cs.run(ctx, [&] {
          ++executions;
          hot.store(ctx, hot.load(ctx) + 1);
        });
        attempts += static_cast<std::uint64_t>(r.attempts);
      }
    });
  }
  sched.run();
  EXPECT_EQ(executions, attempts);
  EXPECT_EQ(hot.unsafe_get(), 200u);
}

}  // namespace
}  // namespace elision::locks
