// Chapter 6 — HLE-compatible fair locks. Shows (a) the unadjusted ticket
// and CLH locks never elide (every speculative attempt aborts on the
// XRELEASE mismatch), (b) the adjusted versions elide and behave like the
// MCS lock under HLE (including the avalanche), and (c) SCM restores their
// concurrency while preserving fairness.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace elision;
  using namespace elision::bench;
  harness::banner("Chapter 6 fair locks",
                  "Ticket/CLH HLE adjustments (8 threads, 10i/10d/80l).\n"
                  "Expect: unadjusted ticket/CLH fully non-speculative "
                  "under HLE; adjusted versions match MCS dynamics; "
                  "HLE-SCM rescues all fair locks.");
  harness::Table table({"lock", "tree-size", "scheme", "speedup-vs-std",
                        "att/op", "nonspec-frac"});
  for (const LockSel lock :
       {LockSel::kTicket, LockSel::kClh, LockSel::kTicketAdj,
        LockSel::kClhAdj, LockSel::kMcs}) {
    for (const std::size_t size : {64ULL, 2048ULL, 32768ULL}) {
      RbPoint p;
      p.size = size;
      p.update_pct = 20;
      p.lock = lock;
      p.scheme = locks::ElisionPolicy::standard();
      const double std_thr = run_rb_point(p).throughput();
      for (const auto scheme :
           {locks::Scheme::kHle, locks::Scheme::kHleScm}) {
        p.scheme = locks::ElisionPolicy::from_scheme(scheme);
        const auto stats = run_rb_point(p);
        table.add_row({lock_sel_name(lock), harness::fmt_int(size),
                       locks::scheme_name(scheme),
                       harness::fmt(stats.throughput() / std_thr, 2),
                       harness::fmt(stats.attempts_per_op(), 2),
                       harness::fmt(stats.nonspec_fraction(), 3)});
      }
    }
  }
  table.print();
  return 0;
}
