# Empty compiler generated dependencies file for avalanche_trace.
# This may be replaced when dependencies are built.
