# Empty dependencies file for elision_stamp.
# This may be replaced when dependencies are built.
