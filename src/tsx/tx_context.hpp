// Per-simulated-thread transactional state.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"
#include "support/align.hpp"
#include "support/check.hpp"
#include "support/flat_map.hpp"
#include "tsx/abort.hpp"
#include "tsx/config.hpp"
#include "tsx/line_table.hpp"
#include "tsx/stats.hpp"

namespace elision::tsx {

class Engine;

enum class TxState : std::uint8_t {
  kInactive,     // not in a transaction
  kActive,       // speculative execution in progress
  kAbortMarked,  // a requestor-wins conflict doomed this transaction; it
                 // aborts at its next engine interaction
};

// How XACQUIRE/XRELEASE-tagged lock operations behave for this thread right
// now. The elision region drivers flip this between speculative attempts and
// the non-transactional re-execution that follows an abort.
enum class ElisionMode : std::uint8_t {
  kStandard,     // elidable ops execute as plain atomic RMWs
  kSpeculative,  // an XACQUIRE op begins a transaction and elides the store
};

// The per-thread transaction context. This is also the "ctx" handle that all
// workload code passes around: it identifies the thread, gives access to its
// clock/RNG, and carries the speculative state.
class TxContext {
 public:
  TxContext(Engine& engine, sim::SimThread& thread)
      : engine_(&engine), thread_(&thread), id_(thread.tid()) {
    // The line table indexes ThreadSet words by id; an id at or past
    // kMaxThreads would corrupt conflict detection for some other thread.
    // Mirrors the lock slot-array bounds checks.
    ELISION_CHECK_MSG(id_ >= 0 && id_ < kMaxThreads,
                      "thread id out of range for the reader mask "
                      "(tsx::kMaxThreads)");
  }

  Engine& engine() { return *engine_; }
  sim::SimThread& thread() { return *thread_; }
  int id() const { return id_; }

  bool in_tx() const { return state_ != TxState::kInactive; }

  TxStats& stats() { return stats_; }
  const TxStats& stats() const { return stats_; }

  ElisionMode mode() const { return mode_; }
  void set_mode(ElisionMode m) { mode_ = m; }

  // Abort feedback (the paper's future-work direction: "utilizing abort
  // information provided by the hardware, such as the location in which a
  // conflict occurs, and/or the identity of the conflicting thread").
  // Valid after the last abort of this thread; 0 / -1 when the abort had no
  // associated conflict.
  support::LineId last_conflict_line() const { return last_conflict_line_; }
  int last_conflict_thread() const { return last_conflict_thread_; }
  // Cause of this thread's most recent abort (kNone before the first one).
  // The region drivers use it to attribute failed attempts in RegionResult.
  AbortCause last_abort_cause() const { return last_abort_cause_; }

 private:
  friend class Engine;

  Engine* engine_;
  sim::SimThread* thread_;
  int id_;

  TxState state_ = TxState::kInactive;
  int nest_depth_ = 0;
  std::uint64_t begin_time_ = 0;  // virtual time of xbegin (age for TLR)
  AbortCause pending_cause_ = AbortCause::kNone;
  ElisionMode mode_ = ElisionMode::kStandard;
  support::LineId last_conflict_line_ = 0;
  int last_conflict_thread_ = -1;
  AbortCause last_abort_cause_ = AbortCause::kNone;
  support::LineId pending_conflict_line_ = 0;
  int pending_conflict_thread_ = -1;

  // Read set: records whose reader bit this tx holds in the line table.
  // Raw pointers are safe: records never move (chunked storage) and the
  // table is never cleared while a transaction is live, so commit/abort
  // release with one deref per line and no re-probing or validation.
  std::vector<LineRecord*> read_lines_;
  // Write set: records whose writer slot this tx holds.
  std::vector<LineRecord*> write_lines_;
  // Write-set L1 occupancy per cache set (capacity model).
  std::array<std::uint8_t, 64> l1_set_occupancy_{};

  // Buffered transactional writes (word granularity; published at commit).
  support::WordMap wbuf_;

  // Per-access fast-path state: a small direct-mapped cache of per-line
  // memos, indexed by the low bits of the line id.
  //
  // Each entry carries two independent layers:
  //  - `ref` memoizes the line's record pointer. It is validated by the
  //    table's generation stamp on every use, so it needs no invalidation
  //    here; record pointers survive index growth by construction and
  //    clear() invalidates them via the stamp.
  //  - `owned` caches the fact that this context holds the line's reader bit
  //    (kOwnedRead) and/or writer slot (kOwnedWrite) *and* no foreign writer
  //    can coexist with that ownership. While it holds, a repeat access is a
  //    guaranteed L1 hit whose slow-path side effects are all idempotent, so
  //    the engine skips the table lookup and conflict checks entirely. The
  //    bits are valid only while `owned_epoch` equals the context's
  //    `own_epoch_`, which release_ownership() bumps on every commit and
  //    abort (self or remote) — the only points where reader/writer
  //    ownership is ever taken away.
  static constexpr std::size_t kLineCacheWays = 64;
  static constexpr std::uint8_t kOwnedRead = 1;
  static constexpr std::uint8_t kOwnedWrite = 2;
  struct CachedLine {
    LineTable::Cache ref;
    std::uint64_t owned_epoch = 0;  // matches own_epoch_ => owned is valid
    std::uint8_t owned = 0;         // kOwnedRead | kOwnedWrite
  };
  std::array<CachedLine, kLineCacheWays> line_cache_{};
  // Starts above every entry's owned_epoch so default entries are invalid.
  std::uint64_t own_epoch_ = 1;

  CachedLine& line_cache_for(support::LineId line) {
    return line_cache_[static_cast<std::size_t>(line) & (kLineCacheWays - 1)];
  }

  // HLE elision of a single lock word.
  bool elided_ = false;
  bool elided_is_tx_root_ = false;     // tx was begun by the XACQUIRE itself
  bool lock_line_data_accessed_ = false;  // Ch.7: lock line touched as data
  std::uintptr_t elided_addr_ = 0;
  support::LineId elided_line_ = 0;    // line_of(elided_addr_), cached once
  std::uint64_t elided_original_ = 0;  // value XRELEASE must restore
  std::uint64_t elided_illusion_ = 0;  // value this thread sees (the lock "held")

  TxStats stats_;
};

// Workload code refers to the context simply as Ctx.
using Ctx = TxContext;

}  // namespace elision::tsx
