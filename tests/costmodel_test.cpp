// Pins the sharing/cost model: which access costs what, as a function of
// where the line currently lives. Measured through virtual-clock deltas.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "tsx/shared.hpp"

namespace elision::tsx {
namespace {

sim::MachineConfig machine() {
  sim::MachineConfig m;
  m.n_cores = 8;  // no SMT interference
  m.smt_per_core = 1;
  return m;
}

TsxConfig quiet_tsx() {
  TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

// Cost of one access as a clock delta.
template <typename Op>
std::uint64_t cost_of(Ctx& ctx, Op&& op) {
  const std::uint64_t before = ctx.thread().now();
  op();
  return ctx.thread().now() - before;
}

TEST(CostModel, ColdReadThenWarmRead) {
  const sim::CostModel cost;  // defaults
  Shared<std::uint64_t> x(1);
  sim::Scheduler sched(machine());
  Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    // First touch: the line comes from the LLC.
    EXPECT_EQ(cost_of(ctx, [&] { (void)x.load(ctx); }),
              cost.llc_hit + cost.access_compute);
    // Second touch: L1 hit.
    EXPECT_EQ(cost_of(ctx, [&] { (void)x.load(ctx); }),
              cost.l1_hit + cost.access_compute);
  });
  sched.run();
}

TEST(CostModel, DirtyLineTransfersBetweenThreads) {
  const sim::CostModel cost;
  Shared<std::uint64_t> x(0);
  sim::Scheduler sched(machine());
  Engine eng(sched, quiet_tsx());
  std::uint64_t reader_cost = 0;
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    x.store(ctx, 7);  // line now dirty in thread 0's cache
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 1000);  // run after the writer
    reader_cost = cost_of(ctx, [&] { (void)x.load(ctx); });
  });
  sched.run();
  EXPECT_EQ(reader_cost, cost.remote_transfer + cost.access_compute);
}

TEST(CostModel, WriteUpgradeAndInvalidation) {
  const sim::CostModel cost;
  Shared<std::uint64_t> x(0);
  sim::Scheduler sched(machine());
  Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    // Cold write: upgrade with no sharers.
    EXPECT_EQ(cost_of(ctx, [&] { x.store(ctx, 1); }),
              cost.llc_hit + cost.access_compute);
    // Exclusive dirty write: L1 hit.
    EXPECT_EQ(cost_of(ctx, [&] { x.store(ctx, 2); }),
              cost.l1_hit + cost.access_compute);
  });
  sched.run();
}

TEST(CostModel, WriteToSharedLineInvalidates) {
  const sim::CostModel cost;
  Shared<std::uint64_t> x(0);
  sim::Scheduler sched(machine());
  Engine eng(sched, quiet_tsx());
  std::uint64_t writer_cost = 0;
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    (void)x.load(ctx);  // thread 0 holds a copy
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 1000);
    writer_cost = cost_of(ctx, [&] { x.store(ctx, 1); });
  });
  sched.run();
  EXPECT_EQ(writer_cost, cost.remote_transfer + cost.access_compute);
}

TEST(CostModel, RmwChargesExtra) {
  const sim::CostModel cost;
  Shared<std::uint64_t> x(0);
  sim::Scheduler sched(machine());
  Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    x.store(ctx, 0);  // warm up: exclusive dirty
    EXPECT_EQ(cost_of(ctx, [&] { x.fetch_add(ctx, 1); }),
              cost.l1_hit + cost.access_compute + cost.rmw_extra);
  });
  sched.run();
}

TEST(CostModel, TransactionOverheads) {
  const sim::CostModel cost;
  sim::Scheduler sched(machine());
  Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    const std::uint64_t c = cost_of(ctx, [&] {
      EXPECT_EQ(eng.run_transaction(ctx, [] {}), kCommitted);
    });
    EXPECT_EQ(c, cost.xbegin + cost.xend);
  });
  sched.run();
}

TEST(CostModel, AbortChargesPenalty) {
  const sim::CostModel cost;
  sim::Scheduler sched(machine());
  Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    const std::uint64_t c = cost_of(ctx, [&] {
      eng.run_transaction(ctx, [&] { eng.xabort(ctx, 1); });
    });
    EXPECT_EQ(c, cost.xbegin + cost.abort_penalty);
  });
  sched.run();
}

TEST(CostModel, AbortedWritesAreInvalidatedFromCache) {
  const sim::CostModel cost;
  support::CacheAligned<Shared<std::uint64_t>> x;
  sim::Scheduler sched(machine());
  Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    eng.run_transaction(ctx, [&] {
      x.value.store(ctx, 5);  // speculative: line dirty in L1
      eng.xabort(ctx, 1);
    });
    // The abort invalidated the speculatively-written line: re-reading it
    // must miss (LLC), not hit L1.
    EXPECT_EQ(cost_of(ctx, [&] { (void)x.value.load(ctx); }),
              cost.llc_hit + cost.access_compute);
  });
  sched.run();
}

TEST(CostModel, SmtSiblingSlowsAccesses) {
  sim::MachineConfig m;
  m.n_cores = 1;
  m.smt_per_core = 2;
  m.smt_slowdown = 2.0;
  sim::Scheduler sched(m);
  Engine eng(sched, quiet_tsx());
  Shared<std::uint64_t> x(0);
  std::uint64_t paired_cost = 0;
  const sim::CostModel cost;
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    (void)x.load(ctx);  // warm
    paired_cost = cost_of(ctx, [&] { (void)x.load(ctx); });
  });
  sched.spawn([&](sim::SimThread& st) {
    // A live sibling; just exist long enough.
    st.tick(10000);
    (void)eng.context(st);
  });
  sched.run();
  EXPECT_EQ(paired_cost, 2 * (cost.l1_hit + cost.access_compute));
}

}  // namespace
}  // namespace elision::tsx
