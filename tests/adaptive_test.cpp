// Deterministic unit tests of the adaptive mode controller
// (locks/adaptive.hpp): the controller is engine-free, so these drive it
// with synthetic per-region feeds and check the migration history exactly.
#include <gtest/gtest.h>

#include <cstdint>

#include "harness/phase_workload.hpp"
#include "locks/adaptive.hpp"
#include "locks/policy.hpp"

namespace elision::locks {
namespace {

AdaptiveParams params(int window, int up, int down, int dwell) {
  AdaptiveParams p;
  p.window = window;
  p.up_pct = up;
  p.down_pct = down;
  p.dwell = dwell;
  return p;
}

// Feeds `regions` completed regions, each taking `attempts` executions.
// Timestamps advance by 10 cycles per region from `start`.
std::uint64_t feed(AdaptiveController& c, int regions, int attempts,
                   std::uint64_t start) {
  std::uint64_t now = start;
  for (int i = 0; i < regions; ++i) {
    now += 10;
    c.on_region(now, attempts == 1, attempts);
  }
  return now;
}

TEST(AdaptiveController, StartsAtHleAndStaysUnderLowAbortRate) {
  AdaptiveController c(params(8, 60, 15, 2));
  feed(c, 100, /*attempts=*/1, 0);
  EXPECT_EQ(c.mode(), AdaptiveMode::kHle);
  EXPECT_EQ(c.total_migrations(), 0u);
  EXPECT_EQ(c.windows_closed(), 12u);  // 100 regions / window of 8
}

TEST(AdaptiveController, AbortRateStepCausesExactlyOneMigrationAfterDwell) {
  // A clean step from 0% to 50% abort rate (2 attempts per region) with
  // up=40: the first full window at the new rate escalates exactly once.
  // The migration "works" — the post-migration feed drops to a mid-band
  // 25% rate (conflict management absorbing the conflicts), so no further
  // migration may fire, no matter how long the workload runs.
  AdaptiveController c(params(8, 40, 10, 2));
  std::uint64_t now = feed(c, 32, 1, 0);  // 4 quiet windows, no migration
  ASSERT_EQ(c.total_migrations(), 0u);
  // The step: full windows at 50% until the controller reacts. It must
  // react at the first window boundary, after exactly one window of storm.
  while (c.total_migrations() == 0) now = feed(c, 8, 2, now);
  EXPECT_EQ(c.windows_closed(), 5u);
  // Post-migration: alternate 1- and 2-attempt regions (33% rate).
  for (int i = 0; i < 100; ++i) {
    now = feed(c, 1, i % 2 == 0 ? 1 : 2, now);
  }
  EXPECT_EQ(c.mode(), AdaptiveMode::kHleScm);
  EXPECT_EQ(c.total_migrations(), 1u);
  ASSERT_EQ(c.decisions().size(), 1u);
  const AdaptiveDecision& d = c.decisions()[0];
  EXPECT_EQ(d.from, AdaptiveMode::kHle);
  EXPECT_EQ(d.to, AdaptiveMode::kHleScm);
  EXPECT_EQ(d.abort_rate_pct, 50);
  EXPECT_STREQ(d.reason, "escalate");
}

TEST(AdaptiveController, DwellDelaysTheSecondMigration) {
  // Sustained 80% abort rate (5 attempts per region) climbs the whole
  // ladder, but each step must wait out the dwell: migrations land on
  // windows 1, 4, 7 (dwell=2 full windows between steps).
  AdaptiveController c(params(4, 60, 15, 2));
  feed(c, 4 * 7, 5, 0);
  ASSERT_EQ(c.decisions().size(), 3u);
  EXPECT_EQ(c.decisions()[0].to, AdaptiveMode::kHleScm);
  EXPECT_EQ(c.decisions()[1].to, AdaptiveMode::kHleGroupedScm);
  EXPECT_EQ(c.decisions()[2].to, AdaptiveMode::kStandard);
  EXPECT_EQ(c.mode(), AdaptiveMode::kStandard);
  // 7 windows closed: migrations after windows 1, 4, 7.
  EXPECT_EQ(c.windows_closed(), 7u);
}

TEST(AdaptiveController, DeEscalatesWhenTheRateDrops) {
  AdaptiveController c(params(4, 60, 15, 0));
  feed(c, 4, 5, 0);  // 80%: hle -> hle-scm
  ASSERT_EQ(c.mode(), AdaptiveMode::kHleScm);
  feed(c, 8, 1, 1000);  // 0%: back down to hle
  EXPECT_EQ(c.mode(), AdaptiveMode::kHle);
  ASSERT_EQ(c.decisions().size(), 2u);
  EXPECT_STREQ(c.decisions()[1].reason, "de-escalate");
  // At the floor, a low rate causes no further migration.
  feed(c, 40, 1, 2000);
  EXPECT_EQ(c.total_migrations(), 2u);
}

TEST(AdaptiveController, MidBandRateMigratesNothing) {
  // 33% (1.5 attempts/region avg) sits between down=15 and up=60.
  AdaptiveController c(params(8, 60, 15, 2));
  for (int i = 0; i < 100; ++i) {
    c.on_region(10 * static_cast<std::uint64_t>(i) + 10, i % 2 == 0,
                i % 2 == 0 ? 1 : 2);
  }
  EXPECT_EQ(c.mode(), AdaptiveMode::kHle);
  EXPECT_EQ(c.total_migrations(), 0u);
}

TEST(AdaptiveController, LeavingStandardIsAProbeWithExponentialBackoff) {
  // Climb to kStandard under a storm, then keep the storm raging: each
  // probe out of kStandard fails (the probed window still aborts), backing
  // off geometrically.
  AdaptiveController c(params(4, 60, 15, 1));
  std::uint64_t now = feed(c, 4 * 5, 5, 0);
  ASSERT_EQ(c.mode(), AdaptiveMode::kStandard);
  const auto migrations_at_top = c.total_migrations();

  // In kStandard the controller sees attempts=1 (no speculation), so its
  // windowed rate is 0 and every hold expiry probes downward.
  int probes = 0;
  int probe_failures = 0;
  for (int w = 0; w < 200; ++w) {
    now = feed(c, 4, c.mode() == AdaptiveMode::kStandard ? 1 : 5, now);
    const auto& ds = c.decisions();
    if (!ds.empty() && ds.back().at > now - 40) {
      if (ds.back().reason == std::string("probe")) ++probes;
      if (ds.back().reason == std::string("probe-failed")) ++probe_failures;
    }
  }
  EXPECT_GT(probes, 0);
  EXPECT_EQ(probes, probe_failures);  // the storm never relents
  EXPECT_EQ(c.mode(), AdaptiveMode::kStandard);
  EXPECT_GT(c.probe_backoff(), 1);
  // Backoff makes probes rare: far fewer than one per hold of 1 window.
  EXPECT_LT(c.total_migrations() - migrations_at_top, 2u * 200u / 4u);
}

TEST(AdaptiveController, SurvivingProbeResetsBackoffAndDescends) {
  AdaptiveController c(params(4, 60, 15, 1));
  std::uint64_t now = feed(c, 4 * 5, 5, 0);
  ASSERT_EQ(c.mode(), AdaptiveMode::kStandard);
  // Fail one probe to raise the backoff.
  while (c.mode() == AdaptiveMode::kStandard) now = feed(c, 4, 1, now);
  ASSERT_EQ(c.mode(), AdaptiveMode::kHleGroupedScm);
  now = feed(c, 4, 5, now);  // probed window aborts: probe fails
  ASSERT_EQ(c.mode(), AdaptiveMode::kStandard);
  EXPECT_GT(c.probe_backoff(), 1);
  // Now let the storm pass: the next probe survives, resets the backoff,
  // and the controller walks the ladder back down to hle.
  for (int i = 0; i < 100 && c.mode() != AdaptiveMode::kHle; ++i) {
    now = feed(c, 4, 1, now);
  }
  EXPECT_EQ(c.mode(), AdaptiveMode::kHle);
  EXPECT_EQ(c.probe_backoff(), 1);
}

TEST(AdaptiveController, DecisionTraceIsBoundedAndCountsDrops) {
  // dwell=0 and an alternating storm/calm feed force a migration nearly
  // every window; the stored trace must cap at kMaxStoredDecisions.
  AdaptiveController c(params(1, 60, 15, 0));
  std::uint64_t now = 0;
  for (int i = 0; i < 4000; ++i) {
    now = feed(c, 1, i % 2 == 0 ? 5 : 1, now);
  }
  EXPECT_EQ(c.decisions().size(), AdaptiveController::kMaxStoredDecisions);
  EXPECT_GT(c.decisions_dropped(), 0u);
  EXPECT_EQ(c.total_migrations(),
            c.decisions().size() + c.decisions_dropped());
}

TEST(AdaptiveController, ClampsDegenerateParams) {
  AdaptiveController c(params(0, 60, 15, -3));
  // window clamps to 1: every region closes a window; dwell clamps to 0.
  feed(c, 1, 5, 0);
  EXPECT_EQ(c.windows_closed(), 1u);
  EXPECT_EQ(c.mode(), AdaptiveMode::kHleScm);
}

TEST(AdaptiveController, AttemptsBelowOneAreTreatedAsOne) {
  AdaptiveController c(params(4, 60, 15, 0));
  for (int i = 0; i < 8; ++i) {
    c.on_region(10 * static_cast<std::uint64_t>(i) + 10, true, 0);
  }
  EXPECT_EQ(c.mode(), AdaptiveMode::kHle);
  EXPECT_EQ(c.total_migrations(), 0u);
}

// --- the phase workload the suite's adaptive invariants run on ---

TEST(PhaseWorkload, PhaseOpsAreIdenticalAcrossHostThreads) {
  harness::PhasePoint p;
  p.phase_sec = 0.0002;
  p.seeds = 3;
  harness::PhasePoint q = p;
  q.host_threads = 4;
  const auto a = harness::run_phase_point(p);
  const auto b = harness::run_phase_point(q);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(harness::phase_ops_of(a), harness::phase_ops_of(b));
}

TEST(PhaseWorkload, StormPhaseSeesMoreAbortsThanCalmPhases) {
  // Sanity of the phase plumbing itself: the write storm must be visibly
  // stormier than the read-mostly phases for the adaptive headline to mean
  // anything. Compare per-phase ops of the standard scheme (no speculation,
  // pure serialization) against plain HLE: in calm phases HLE wins big;
  // in the storm the gap must shrink.
  harness::PhasePoint hle;
  hle.phase_sec = 0.0005;
  hle.scheme = ElisionPolicy::hle();
  harness::PhasePoint std_p = hle;
  std_p.scheme = ElisionPolicy::standard();
  const auto h = harness::phase_ops_of(harness::run_phase_point(hle));
  const auto s = harness::phase_ops_of(harness::run_phase_point(std_p));
  ASSERT_GT(s[0], 0u);
  ASSERT_GT(s[1], 0u);
  const double calm_gap = static_cast<double>(h[0]) / s[0];
  const double storm_gap = static_cast<double>(h[1]) / s[1];
  EXPECT_GT(calm_gap, storm_gap);
}

}  // namespace
}  // namespace elision::locks
