#include "ds/skiplist.hpp"

#include "support/check.hpp"

namespace elision::ds {

SkipList::SkipList(std::size_t capacity, std::uint64_t seed, int max_threads)
    : arena_(capacity),
      n_free_lists_(max_threads + 1),
      free_(static_cast<std::size_t>(max_threads) + 1),
      setup_rng_(seed) {
  ELISION_CHECK_MSG(
      max_threads >= 1 && max_threads <= tsx::kMaxThreads,
      "node pool max_threads must be in [1, tsx::kMaxThreads]");

  head_.level.unsafe_set(kMaxLevel);
  for (auto& n : head_.next) n.unsafe_set(nullptr);
  // All nodes start on the setup/global free list, threaded through next[0].
  Node* head = nullptr;
  for (auto it = arena_.rbegin(); it != arena_.rend(); ++it) {
    it->next[0].unsafe_set(head);
    head = &*it;
  }
  free_[n_free_lists_ - 1].value.unsafe_set(head);
}

void SkipList::unsafe_distribute_free_lists(int n_threads) {
  ELISION_CHECK(n_threads >= 1 && n_threads < n_free_lists_);
  Node* n = free_[n_free_lists_ - 1].value.unsafe_get();
  free_[n_free_lists_ - 1].value.unsafe_set(nullptr);
  int slot = 0;
  while (n != nullptr) {
    Node* next = n->next[0].unsafe_get();
    n->next[0].unsafe_set(free_[slot].value.unsafe_get());
    free_[slot].value.unsafe_set(n);
    slot = (slot + 1) % n_threads;
    n = next;
  }
}

int SkipList::random_level(support::Xoshiro256& rng) {
  int level = 1;
  while (level < kMaxLevel && rng.next_below(2) == 0) ++level;
  return level;
}

SkipList::Node* SkipList::alloc(tsx::Ctx& ctx, std::uint64_t key, int level) {
  Node* n = nullptr;
  auto& own = free_[ctx.id()].value;
  n = own.load(ctx);
  if (n != nullptr) {
    own.store(ctx, n->next[0].load(ctx));
  } else {
    for (int i = n_free_lists_ - 1; i >= 0 && n == nullptr; --i) {
      auto& other = free_[i].value;
      n = other.load(ctx);
      if (n != nullptr) other.store(ctx, n->next[0].load(ctx));
    }
  }
  ELISION_CHECK_MSG(n != nullptr, "SkipList node pool exhausted");
  n->key.store(ctx, key);
  n->level.store(ctx, static_cast<std::uint64_t>(level));
  return n;
}

void SkipList::free_node(tsx::Ctx& ctx, Node* n) {
  auto& own = free_[ctx.id()].value;
  n->next[0].store(ctx, own.load(ctx));
  own.store(ctx, n);
}

bool SkipList::contains(tsx::Ctx& ctx, std::uint64_t key) {
  Node* pred = &head_;
  for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
    Node* cur = pred->next[lvl].load(ctx);
    while (cur != nullptr && cur->key.load(ctx) < key) {
      pred = cur;
      cur = pred->next[lvl].load(ctx);
    }
    if (cur != nullptr && cur->key.load(ctx) == key) return true;
  }
  return false;
}

bool SkipList::insert(tsx::Ctx& ctx, std::uint64_t key) {
  Node* update[kMaxLevel];
  Node* pred = &head_;
  for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
    Node* cur = pred->next[lvl].load(ctx);
    while (cur != nullptr && cur->key.load(ctx) < key) {
      pred = cur;
      cur = pred->next[lvl].load(ctx);
    }
    update[lvl] = pred;
  }
  Node* at = pred->next[0].load(ctx);
  if (at != nullptr && at->key.load(ctx) == key) return false;

  const int level = random_level(ctx.thread().rng());
  Node* n = alloc(ctx, key, level);
  for (int lvl = 0; lvl < level; ++lvl) {
    n->next[lvl].store(ctx, update[lvl]->next[lvl].load(ctx));
    update[lvl]->next[lvl].store(ctx, n);
  }
  return true;
}

bool SkipList::erase(tsx::Ctx& ctx, std::uint64_t key) {
  Node* update[kMaxLevel];
  Node* pred = &head_;
  for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
    Node* cur = pred->next[lvl].load(ctx);
    while (cur != nullptr && cur->key.load(ctx) < key) {
      pred = cur;
      cur = pred->next[lvl].load(ctx);
    }
    update[lvl] = pred;
  }
  Node* victim = pred->next[0].load(ctx);
  if (victim == nullptr || victim->key.load(ctx) != key) return false;
  const auto level = static_cast<int>(victim->level.load(ctx));
  for (int lvl = 0; lvl < level; ++lvl) {
    if (update[lvl]->next[lvl].load(ctx) == victim) {
      update[lvl]->next[lvl].store(ctx, victim->next[lvl].load(ctx));
    }
  }
  free_node(ctx, victim);
  return true;
}

// ---------------------------------------------------------------------------
// Setup / verification
// ---------------------------------------------------------------------------

bool SkipList::unsafe_insert(std::uint64_t key) {
  Node* update[kMaxLevel];
  Node* pred = &head_;
  for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
    Node* cur = pred->next[lvl].unsafe_get();
    while (cur != nullptr && cur->key.unsafe_get() < key) {
      pred = cur;
      cur = pred->next[lvl].unsafe_get();
    }
    update[lvl] = pred;
  }
  Node* at = pred->next[0].unsafe_get();
  if (at != nullptr && at->key.unsafe_get() == key) return false;
  const int level = random_level(setup_rng_);
  Node* n = free_[n_free_lists_ - 1].value.unsafe_get();
  ELISION_CHECK_MSG(n != nullptr, "SkipList node pool exhausted");
  free_[n_free_lists_ - 1].value.unsafe_set(n->next[0].unsafe_get());
  n->key.unsafe_set(key);
  n->level.unsafe_set(static_cast<std::uint64_t>(level));
  for (int lvl = 0; lvl < level; ++lvl) {
    n->next[lvl].unsafe_set(update[lvl]->next[lvl].unsafe_get());
    update[lvl]->next[lvl].unsafe_set(n);
  }
  return true;
}

std::size_t SkipList::unsafe_size() const {
  std::size_t count = 0;
  for (const Node* n = head_.next[0].unsafe_get(); n != nullptr;
       n = n->next[0].unsafe_get()) {
    ++count;
    if (count > arena_.size()) return count;  // cycle guard
  }
  return count;
}

std::vector<std::uint64_t> SkipList::unsafe_keys() const {
  std::vector<std::uint64_t> keys;
  for (const Node* n = head_.next[0].unsafe_get(); n != nullptr;
       n = n->next[0].unsafe_get()) {
    keys.push_back(n->key.unsafe_get());
    if (keys.size() > arena_.size()) break;
  }
  return keys;
}

bool SkipList::unsafe_validate(std::string* why) const {
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  // Level 0 is sorted and duplicate-free.
  const auto keys = unsafe_keys();
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i - 1] >= keys[i]) return fail("level 0 not strictly sorted");
  }
  if (keys.size() > arena_.size()) return fail("level 0 cycle");
  // Each higher level is a sorted subsequence of level 0, and every node
  // appears in exactly the levels below its height.
  for (int lvl = 1; lvl < kMaxLevel; ++lvl) {
    std::uint64_t prev = 0;
    bool first = true;
    for (const Node* n = head_.next[lvl].unsafe_get(); n != nullptr;
         n = n->next[lvl].unsafe_get()) {
      if (static_cast<int>(n->level.unsafe_get()) <= lvl) {
        return fail("node linked above its height");
      }
      const std::uint64_t k = n->key.unsafe_get();
      if (!first && prev >= k) return fail("higher level not sorted");
      prev = k;
      first = false;
    }
  }
  return true;
}

}  // namespace elision::ds
