file(REMOVE_RECURSE
  "CMakeFiles/stamp_demo.dir/stamp_demo.cpp.o"
  "CMakeFiles/stamp_demo.dir/stamp_demo.cpp.o.d"
  "stamp_demo"
  "stamp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
