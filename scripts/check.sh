#!/usr/bin/env bash
# Strict pre-merge check: configure with warnings-as-errors, build
# everything, run the full test suite (plain and under ASan+UBSan), and
# smoke-test the telemetry and stress paths end to end (trace_dump must
# detect the HLE avalanche and export metrics; stress_cli must hold all
# invariants over a perturbed sweep and find the planted RacyLock bug).
# Finally runs the bench-suite smoke tier gated against the committed
# baseline (bench/baseline.json), re-runs it with --jobs 2 to prove
# parallel execution reproduces the sequential results bit-for-bit (modulo
# host wall-time fields), and self-checks that a planted 50% throughput
# regression and a planted 5x simulator slowdown are actually caught.
# The ASan+UBSan ctest pass includes line_table_test's randomized
# differential fuzz of the open-addressing LineTable against a
# std::unordered_map reference.
# Uses its own build trees (build-check*/) so it never dirties build/.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-check

cmake -B "$BUILD" -S . -DELISION_WERROR=ON -DELISION_TELEMETRY=ON
cmake --build "$BUILD" -j

ctest --test-dir "$BUILD" --output-on-failure -j

# The same suite under AddressSanitizer + UndefinedBehaviorSanitizer: the
# simulator is single-OS-threaded, so this is cheap and catches exactly the
# class of bug the stress subsystem hunts (overflow, slot-array overruns,
# use-after-free in rolled-back free lists).
SAN_BUILD=build-check-san
cmake -B "$SAN_BUILD" -S . -DELISION_WERROR=ON -DELISION_SANITIZE=ON
cmake --build "$SAN_BUILD" -j
ctest --test-dir "$SAN_BUILD" --output-on-failure -j

# Telemetry smoke: HLE over MCS must show at least one avalanche episode,
# and the six-scheme sweep must export a parseable metrics file.
out=$("$BUILD"/tools/trace_dump --lock mcs --scheme hle --size 64 \
      --threads 8 --ms 1)
echo "$out"
echo "$out" | grep -q "avalanche episodes" || {
  echo "check: trace_dump produced no telemetry summary" >&2; exit 1; }
echo "$out" | grep -Eq "[1-9][0-9]* avalanche episodes" || {
  echo "check: no avalanche detected under HLE/MCS" >&2; exit 1; }

metrics=$(mktemp)
trap 'rm -f "$metrics"' EXIT
"$BUILD"/tools/trace_dump --lock mcs --all-schemes --size 64 --threads 8 \
    --ms 0.5 --metrics "$metrics" >/dev/null
python3 - "$metrics" <<'EOF'
import json, sys
series = json.load(open(sys.argv[1]))["series"]
assert len(series) == 6, f"expected 6 scheme series, got {len(series)}"
for s in series:
    assert "aborts_by_cause" in s and "attempts_hist" in s, s["scheme"]
print("metrics export: 6 schemes, abort-cause matrix + histograms present")
EOF

# Stress smoke: a small perturbed sweep over every scheme x lock must hold
# every invariant, and the self-test must *find* the planted RacyLock bug
# (proof the checkers are not vacuous). Fixed seeds: fully reproducible.
"$BUILD"/tools/stress_cli --schemes all --locks all --seeds 3 --quiet || {
  echo "check: stress sweep found an invariant violation" >&2; exit 1; }
"$BUILD"/tools/stress_cli --selftest --seeds 5 || {
  echo "check: stress self-test missed the planted RacyLock bug" >&2
  exit 1; }

# Bench-suite smoke: run the curated smoke tier, emit canonical results,
# check the paper-qualitative invariants, and gate against the committed
# baseline (see docs/benchmarks.md for tolerances and the update workflow).
# The committed baseline's sim_ops_per_sec came from a different machine, so
# the simulator-speed gate here only catches order-of-magnitude slowdowns
# (--tol-simops 0.9); the tight same-machine check comes further down.
bench_json=$(mktemp)
trap 'rm -f "$metrics" "$bench_json"' EXIT
"$BUILD"/tools/bench_suite --tier smoke --out "$bench_json" \
    --baseline bench/baseline.json --gate --tol-simops 0.9 --quiet || {
  echo "check: bench_suite smoke gate failed (perf regression or paper" \
       "invariant violation)" >&2; exit 1; }
python3 - "$bench_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1 and doc["tier"] == "smoke", doc.keys()
assert doc["points"], "no points in BENCH_results.json"
assert doc["run"]["host"]["cores"] >= 1 and doc["run"]["host"]["jobs"] == 1
assert doc["run"]["host"]["total_wall_ms"] > 0
for p in doc["points"]:
    m = p["metrics"]
    for key in ("throughput_ops_per_sec", "spec_fraction",
                "nonspec_fraction", "attempts_per_op", "aborts_by_cause",
                "avalanche_episodes", "sim_ops_per_sec", "wall_ms"):
        assert key in m, f"{p['id']} missing {key}"
    assert m["sim_ops_per_sec"] > 0, f"{p['id']} has no simulator speed"
print(f"bench suite: {len(doc['points'])} smoke points, schema valid")
EOF

# Parallel execution must reproduce the sequential run exactly: every
# simulated metric is deterministic per seed, so fanning the points out to
# worker subprocesses (--jobs) may only change the host wall-time fields
# (wall_ms, sim_ops_per_sec, run.host).
bench_par_json=$(mktemp)
trap 'rm -f "$metrics" "$bench_json" "$bench_par_json"' EXIT
"$BUILD"/tools/bench_suite --tier smoke --jobs 2 --out "$bench_par_json" \
    --quiet || {
  echo "check: bench_suite --jobs 2 run failed" >&2; exit 1; }
python3 - "$bench_json" "$bench_par_json" <<'EOF'
import json, sys
seq, par = (json.load(open(p)) for p in sys.argv[1:3])
assert par["run"]["host"]["jobs"] == 2, par["run"]["host"]
for doc in (seq, par):
    del doc["run"]["host"]
    for p in doc["points"]:
        del p["metrics"]["sim_ops_per_sec"], p["metrics"]["wall_ms"]
assert seq == par, "parallel run diverged from sequential run"
print("bench suite: --jobs 2 reproduces the sequential results exactly")
EOF

# Gate self-checks: a planted 50% throughput regression and a planted 5x
# simulator slowdown must both be detected (proof neither gate is vacuous).
# The slowdown check gates against the fresh same-machine results from
# above, where a tight sim_ops_per_sec tolerance is meaningful.
if "$BUILD"/tools/bench_suite --tier smoke --plant-regression 0.5 \
    --out /dev/null --baseline bench/baseline.json --gate --quiet \
    >/dev/null 2>&1; then
  echo "check: bench gate missed a planted 50% throughput regression" >&2
  exit 1
fi
echo "bench suite: planted-regression self-check caught the regression"

if "$BUILD"/tools/bench_suite --tier smoke --plant-slowdown 0.2 \
    --out /dev/null --baseline "$bench_json" --gate --tol-simops 0.5 \
    --quiet >/dev/null 2>&1; then
  echo "check: bench gate missed a planted 5x simulator slowdown" >&2
  exit 1
fi
echo "bench suite: planted-slowdown self-check caught the slowdown"

echo "check: OK"
