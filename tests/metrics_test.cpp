// Metrics tests: histogram bucketing, registry aggregation, and the JSON/CSV
// exports — including the acceptance check that a six-scheme sweep exports
// an abort-cause matrix and attempts histogram for every scheme.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <string>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "support/json.hpp"
#include "tsx/shared.hpp"

namespace elision::harness {
namespace {

TEST(Histogram, PowerOfTwoBuckets) {
  Histogram h;
  for (const std::uint64_t v : {0, 1, 2, 3, 4, 7, 8, 15, 16}) h.add(v);
  ASSERT_EQ(h.buckets().size(), 6u);
  EXPECT_EQ(h.buckets()[0], 1u);  // {0}
  EXPECT_EQ(h.buckets()[1], 1u);  // {1}
  EXPECT_EQ(h.buckets()[2], 2u);  // {2,3}
  EXPECT_EQ(h.buckets()[3], 2u);  // {4..7}
  EXPECT_EQ(h.buckets()[4], 2u);  // {8..15}
  EXPECT_EQ(h.buckets()[5], 1u);  // {16..31}
  EXPECT_EQ(h.samples(), 9u);
  EXPECT_EQ(h.sum(), 56u);
  EXPECT_EQ(h.max(), 16u);
  EXPECT_NEAR(h.mean(), 56.0 / 9.0, 1e-9);
}

TEST(Histogram, BucketLabelsAndRanges) {
  EXPECT_EQ(Histogram::bucket_label(0), "0");
  EXPECT_EQ(Histogram::bucket_label(1), "1");
  EXPECT_EQ(Histogram::bucket_label(2), "2-3");
  EXPECT_EQ(Histogram::bucket_label(4), "8-15");
  EXPECT_EQ(Histogram::bucket_lo(5), 16u);
  EXPECT_EQ(Histogram::bucket_hi(5), 31u);
}

// Regression: bucket 64 (values with the top bit set) used to compute its
// range with `1 << 64` — UB caught under UBSan. It must saturate instead.
TEST(Histogram, MaxValuedSampleLandsInSaturatedTopBucket) {
  Histogram h;
  h.add(UINT64_MAX);
  h.add(std::uint64_t{1} << 63);
  ASSERT_EQ(h.buckets().size(), 65u);
  EXPECT_EQ(h.buckets()[64], 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_EQ(Histogram::bucket_lo(64), std::uint64_t{1} << 63);
  EXPECT_EQ(Histogram::bucket_hi(64), UINT64_MAX);
  EXPECT_EQ(Histogram::bucket_label(64),
            "9223372036854775808-18446744073709551615");
  // Exporting a histogram containing the top bucket must not trip UBSan.
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  MetricsRegistry reg;
  reg.series("S", "L").attempts_hist.add(UINT64_MAX);
  reg.export_json(f);
  std::fclose(f);
  const std::string out(buf, len);
  std::free(buf);
  EXPECT_NE(out.find("18446744073709551615"), std::string::npos);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a, b;
  a.add(1);
  a.add(100);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.samples(), 3u);
  EXPECT_EQ(a.sum(), 104u);
  EXPECT_EQ(a.max(), 100u);
  EXPECT_EQ(a.buckets()[2], 1u);
}

TEST(MetricsRegistry, SeriesAreKeyedAndOrdered) {
  MetricsRegistry reg;
  reg.series("HLE", "MCS").ops = 10;
  reg.series("HLE", "TTAS").ops = 20;
  reg.series("HLE", "MCS").ops += 5;  // same series again
  ASSERT_EQ(reg.entries().size(), 2u);
  EXPECT_EQ(reg.entries()[0].metrics.ops, 15u);
  EXPECT_EQ(reg.entries()[1].metrics.ops, 20u);
}

TEST(MetricsRegistry, AbsorbAggregatesRunStats) {
  RunStats run;
  run.ops = 100;
  run.spec_ops = 90;
  run.nonspec_ops = 10;
  run.attempts = 120;
  run.elapsed_cycles = 1000;
  run.tx.begins = 110;
  run.tx.commits = 90;
  run.tx.record_abort(tsx::AbortCause::kConflict);
  run.attempts_hist.add(1);
  run.attempts_hist.add(3);
  tsx::AvalancheEpisode ep;
  ep.start = 100;
  ep.end = 600;
  ep.victims = {1, 2, 3};
  run.episodes.push_back(ep);

  MetricsRegistry reg;
  reg.record("HLE", "MCS", run);
  reg.record("HLE", "MCS", run);
  const auto& m = reg.entries()[0].metrics;
  EXPECT_EQ(m.runs, 2u);
  EXPECT_EQ(m.ops, 200u);
  EXPECT_EQ(m.attempts, 240u);
  EXPECT_EQ(m.tx.aborts_by_cause[static_cast<std::size_t>(
                tsx::AbortCause::kConflict)],
            2u);
  EXPECT_EQ(m.attempts_hist.samples(), 4u);
  EXPECT_EQ(m.avalanche_episodes, 2u);
  EXPECT_EQ(m.avalanche_victims, 6u);
  EXPECT_EQ(m.avalanche_max_victims, 3);
  EXPECT_EQ(m.avalanche_cycles, 1000u);
}

// Regression: absorb used to keep whatever ghz the previous run had (and
// the default 3.4 before that), so series from non-default MachineConfig
// runs reported wrong throughput. It must propagate the first run's ghz and
// reject mixing machines within one series.
TEST(MetricsRegistry, AbsorbPropagatesGhzFromRun) {
  RunStats run;
  run.ops = 1000;
  run.elapsed_cycles = 2'000'000'000;  // 1 virtual second at 2 GHz
  run.ghz = 2.0;
  MetricsRegistry reg;
  reg.record("HLE", "MCS", run);
  const auto& m = reg.entries()[0].metrics;
  EXPECT_DOUBLE_EQ(m.ghz, 2.0);
  EXPECT_NEAR(m.seconds(), 1.0, 1e-9);
  EXPECT_NEAR(m.throughput(), 1000.0, 1e-6);
}

TEST(MetricsRegistry, AbsorbRejectsMixedGhzWithinASeries) {
  RunStats a;
  a.ops = 10;
  a.elapsed_cycles = 100;
  a.ghz = 3.4;
  RunStats b = a;
  b.ghz = 2.0;
  MetricsRegistry reg;
  reg.record("HLE", "MCS", a);
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(reg.record("HLE", "MCS", b), "different MachineConfig");
}

std::string export_to_string(const MetricsRegistry& reg, bool csv) {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  if (csv) {
    reg.export_csv(f);
  } else {
    reg.export_json(f);
  }
  std::fclose(f);
  std::string out(buf, len);
  std::free(buf);
  return out;
}

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// Acceptance: a run over all six evaluated schemes exports one JSON series
// per scheme, each with the abort-cause matrix and the attempts histogram.
TEST(MetricsExport, SixSchemeSweepHasMatrixAndHistogramPerScheme) {
  MetricsRegistry reg;
  tsx::Shared<std::uint64_t> counter;
  for (const auto scheme : locks::kAllSixSchemes) {
    BenchConfig cfg;
    cfg.threads = 4;
    cfg.duration_sec = 0.0002;
    cfg.machine.seed = 7;
    cfg.policy = locks::ElisionPolicy::from_scheme(scheme);
    cfg.telemetry = true;
    locks::TtasLock lock;
    locks::CriticalSection<locks::TtasLock> cs(cfg.policy, lock);
    run_workload(
        cfg,
        [&](tsx::Ctx& ctx) {
          return cs.run(ctx,
                        [&] { counter.store(ctx, counter.load(ctx) + 1); });
        },
        reg, locks::TtasLock::kName);
  }
  ASSERT_EQ(reg.entries().size(), 6u);

  const std::string json = export_to_string(reg, /*csv=*/false);
  for (const auto scheme : locks::kAllSixSchemes) {
    const std::string key =
        std::string("\"scheme\":\"") + locks::scheme_name(scheme) + "\"";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(count_occurrences(json, "\"aborts_by_cause\""), 6u);
  EXPECT_EQ(count_occurrences(json, "\"attempts_hist\""), 6u);
  EXPECT_EQ(count_occurrences(json, "\"rejoin_cycles_hist\""), 6u);
  EXPECT_NE(json.find("\"conflict\""), std::string::npos);

  // Every scheme completed regions, so every histogram has samples.
  for (const auto& e : reg.entries()) {
    EXPECT_GT(e.metrics.ops, 0u) << e.scheme;
    EXPECT_GT(e.metrics.attempts_hist.samples(), 0u) << e.scheme;
  }

  const std::string csv = export_to_string(reg, /*csv=*/true);
  EXPECT_NE(csv.find("scheme,lock,runs"), std::string::npos);
  EXPECT_NE(csv.find("aborts_conflict"), std::string::npos);
  // Header line + one row per scheme.
  EXPECT_EQ(count_occurrences(csv, "\n"), 7u);
}

// Satellite acceptance: the JSON export parses as a real JSON document —
// scheme/lock names escaped, histogram and avalanche fields intact, series
// in insertion order — and the CSV export keeps the same series order.
TEST(MetricsExport, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  RunStats run;
  run.ops = 50;
  run.spec_ops = 40;
  run.nonspec_ops = 10;
  run.attempts = 60;
  run.elapsed_cycles = 34000;
  run.tx.begins = 55;
  run.tx.commits = 40;
  run.tx.record_abort(tsx::AbortCause::kConflict);
  run.attempts_hist.add(1);
  run.attempts_hist.add(6);
  run.rejoin_hist.add(1200);
  tsx::AvalancheEpisode ep;
  ep.start = 10;
  ep.end = 100;
  ep.victims = {1, 2};
  run.episodes.push_back(ep);
  // Names that would corrupt unescaped JSON output.
  reg.record("HLE \"quoted\\scheme\"", "lock\n\ttab", run);
  reg.record("Standard", "TTAS", run);

  const std::string text = export_to_string(reg, /*csv=*/false);
  const auto doc = support::json::parse(text);
  ASSERT_TRUE(doc.has_value()) << text;

  const auto* series = doc->find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->items().size(), 2u);
  // Insertion order preserved, names round-tripped through escaping.
  const auto& first = series->items()[0];
  EXPECT_EQ(first.find("scheme")->as_string(), "HLE \"quoted\\scheme\"");
  EXPECT_EQ(first.find("lock")->as_string(), "lock\n\ttab");
  EXPECT_EQ(series->items()[1].find("scheme")->as_string(), "Standard");

  EXPECT_EQ(first.find("ops")->as_u64(), 50u);
  const auto* causes = first.find("aborts_by_cause");
  ASSERT_NE(causes, nullptr);
  EXPECT_EQ(causes->find("conflict")->as_u64(), 1u);
  const auto* hist = first.find("attempts_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("samples")->as_u64(), 2u);
  EXPECT_EQ(hist->find("buckets")->find("4-7")->as_u64(), 1u);
  const auto* rejoin = first.find("rejoin_cycles_hist");
  ASSERT_NE(rejoin, nullptr);
  EXPECT_EQ(rejoin->find("max")->as_u64(), 1200u);
  const auto* avalanche = first.find("avalanche");
  ASSERT_NE(avalanche, nullptr);
  EXPECT_EQ(avalanche->find("episodes")->as_u64(), 1u);
  EXPECT_EQ(avalanche->find("victims")->as_u64(), 2u);

  // CSV: header plus rows in the same order.
  const std::string csv = export_to_string(reg, /*csv=*/true);
  const auto first_row = csv.find('\n') + 1;
  EXPECT_EQ(csv.find("Standard"), csv.rfind("Standard"));
  EXPECT_GT(csv.find("Standard"), first_row);
}

}  // namespace
}  // namespace elision::harness
