#include "stamp/common.hpp"

#include "support/check.hpp"

namespace elision::stamp {

StampResult run_app(const std::string& name, const StampConfig& cfg) {
  if (name == "genome") return run_genome(cfg);
  if (name == "intruder") return run_intruder(cfg);
  if (name == "kmeans_high") return run_kmeans(cfg, /*high_contention=*/true);
  if (name == "kmeans_low") return run_kmeans(cfg, /*high_contention=*/false);
  if (name == "ssca2") return run_ssca2(cfg);
  if (name == "vacation_high") {
    return run_vacation(cfg, /*high_contention=*/true);
  }
  if (name == "vacation_low") {
    return run_vacation(cfg, /*high_contention=*/false);
  }
  if (name == "labyrinth") return run_labyrinth(cfg);
  ELISION_CHECK_MSG(false, "unknown STAMP app");
  return {};
}

}  // namespace elision::stamp
