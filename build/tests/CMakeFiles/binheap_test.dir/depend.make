# Empty dependencies file for binheap_test.
# This may be replaced when dependencies are built.
