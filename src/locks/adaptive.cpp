#include "locks/adaptive.hpp"

namespace elision::locks {

const char* adaptive_mode_name(AdaptiveMode m) {
  switch (m) {
    case AdaptiveMode::kHle: return "hle";
    case AdaptiveMode::kHleScm: return "hle-scm";
    case AdaptiveMode::kHleGroupedScm: return "hle-gscm";
    case AdaptiveMode::kStandard: return "standard";
  }
  return "?";
}

AdaptiveController::AdaptiveController(const AdaptiveParams& params)
    : p_(params) {
  if (p_.window < 1) p_.window = 1;
  if (p_.dwell < 0) p_.dwell = 0;
}

void AdaptiveController::on_region(std::uint64_t now, bool speculative,
                                   int attempts) {
  (void)speculative;
  const std::uint64_t a =
      attempts > 0 ? static_cast<std::uint64_t>(attempts) : 1;
  ++window_regions_;
  window_attempts_ += a;
  window_failures_ += a - 1;
  if (window_regions_ >= p_.window) close_window(now);
}

void AdaptiveController::close_window(std::uint64_t now) {
  const int rate =
      window_attempts_ > 0
          ? static_cast<int>(100 * window_failures_ / window_attempts_)
          : 0;
  window_regions_ = 0;
  window_attempts_ = 0;
  window_failures_ = 0;
  ++windows_closed_;
  if (windows_since_migration_ < ~std::uint64_t{0}) ++windows_since_migration_;

  const auto up = [](AdaptiveMode m) {
    return static_cast<AdaptiveMode>(static_cast<int>(m) + 1);
  };
  const auto down = [](AdaptiveMode m) {
    return static_cast<AdaptiveMode>(static_cast<int>(m) - 1);
  };

  // A probe's verdict arrives with the first window completed in the probed
  // mode, before any dwell gating: a failed probe re-escalates immediately
  // (the burned window *is* the probe's cost) and doubles the backoff; a
  // surviving probe resets it.
  if (just_probed_) {
    just_probed_ = false;
    if (rate >= p_.up_pct) {
      if (probe_backoff_ < kMaxProbeBackoff) probe_backoff_ *= 2;
      migrate(now, up(mode_), rate, "probe-failed");
      return;
    }
    probe_backoff_ = 1;
  }

  // Hysteresis dwell: a fresh mode gets `dwell` full observation windows
  // before the next migration may fire.
  if (migrated_once_ &&
      windows_since_migration_ <= static_cast<std::uint64_t>(p_.dwell)) {
    return;
  }

  if (rate >= p_.up_pct && mode_ != AdaptiveMode::kStandard) {
    migrate(now, up(mode_), rate, "escalate");
  } else if (rate <= p_.down_pct && mode_ != AdaptiveMode::kHle) {
    if (mode_ == AdaptiveMode::kStandard) {
      // kStandard never speculates, so its rate is identically zero:
      // leaving it is a probe, gated by the exponential backoff.
      const std::uint64_t hold =
          static_cast<std::uint64_t>(p_.dwell) *
          static_cast<std::uint64_t>(probe_backoff_);
      if (windows_since_migration_ <= hold) return;
      migrate(now, down(mode_), rate, "probe");
      just_probed_ = true;
    } else {
      migrate(now, down(mode_), rate, "de-escalate");
    }
  }
}

void AdaptiveController::migrate(std::uint64_t now, AdaptiveMode to,
                                 int rate_pct, const char* reason) {
  if (decisions_.size() < kMaxStoredDecisions) {
    decisions_.push_back({now, mode_, to, rate_pct, reason});
  } else {
    ++decisions_dropped_;
  }
  mode_ = to;
  windows_since_migration_ = 0;
  migrated_once_ = true;
}

}  // namespace elision::locks
