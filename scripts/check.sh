#!/usr/bin/env bash
# Strict pre-merge check: configure with warnings-as-errors, build
# everything, run the full test suite (plain and under ASan+UBSan), and
# smoke-test the telemetry and stress paths end to end (trace_dump must
# detect the HLE avalanche and export metrics; stress_cli must hold all
# invariants over a perturbed sweep and find both planted bugs — the
# RacyLock race and the GreedySharedLock writer starvation).
# The adaptive controller gets its own smoke (decision trace printed, at
# least one migration under a write storm, malformed policy specs rejected)
# and an end-to-end outcome check on the phase-shifting bench points.
# The sharded KV service is checked end to end as well: the kv-* smoke
# points must report the full per-op latency-percentile schema and the
# hot-shard avalanche signature, and every CLI must reject malformed
# numeric flag values (strict shared parser, no atoi truncation).
# Finally runs the bench-suite smoke tier gated against the committed
# baseline (bench/baseline.json), re-runs it with --jobs 2 (fork mode) and
# with --jobs 2 --jobs-mode threads --host-threads 2 (in-process pool) to
# prove parallel execution reproduces the sequential results bit-for-bit
# (modulo host wall-time fields), and self-checks that a planted 50%
# throughput regression and a planted 5x simulator slowdown are actually
# caught. A ThreadSanitizer build of the parallel paths (parallel_test plus
# a threaded stress smoke) guards the in-process fan-out itself, with the
# engine's fiber switches annotated via the TSan fiber API.
# The ASan+UBSan ctest pass includes line_table_test's randomized
# differential fuzz of the open-addressing LineTable against a
# std::unordered_map reference, plus the wide-thread-mask paths
# (thread_set_test, line_table_test's 256-thread mutation fuzz), the
# ready-queue differential fuzz (ready_queue_test) behind the O(log N)
# scheduler, and fastpath_test's on/off differential over the per-access
# fast paths (owned-line cache + switch-bound batching).
# The bench-suite smoke gate carries both simulator-speed canaries:
# micro-engine-rtm-t8 (the paper's 8-hyperthread machine) and
# micro-engine-rtm-t64 (64 threads on 32 cores), so a host-side regression
# on either end of the machine-size range fails the gate.
# The per-access fast path gets its own section: a best-of-5 assert that
# the t64 canary really runs >= 1.5x the committed pre-fast-path speed, an
# ELISION_FASTPATH=0 A/B proving simulated results are bit-identical with
# the fast paths disabled, a planted-invalidation self-check (a
# deliberately stale cached line ref must be caught by the generation
# stamp, not silently served), and a gated full-tier run that must carry
# the 128- and 256-thread fig5.1 machine-scale points.
# Uses its own build trees (build-check*/) so it never dirties build/.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-check

cmake -B "$BUILD" -S . -DELISION_WERROR=ON -DELISION_TELEMETRY=ON
cmake --build "$BUILD" -j

ctest --test-dir "$BUILD" --output-on-failure -j

# The same suite under AddressSanitizer + UndefinedBehaviorSanitizer: the
# simulator is single-OS-threaded, so this is cheap and catches exactly the
# class of bug the stress subsystem hunts (overflow, slot-array overruns,
# use-after-free in rolled-back free lists).
SAN_BUILD=build-check-san
cmake -B "$SAN_BUILD" -S . -DELISION_WERROR=ON -DELISION_SANITIZE=ON
cmake --build "$SAN_BUILD" -j
ctest --test-dir "$SAN_BUILD" --output-on-failure -j

# ThreadSanitizer over the in-process parallel paths: the pool itself, the
# per-run simulations fanned out across host threads (fiber switches are
# annotated through the TSan fiber API), and a threaded stress smoke. Only
# the two parallel-facing targets are built — everything else is identical
# single-threaded code already covered above.
TSAN_BUILD=build-check-tsan
cmake -B "$TSAN_BUILD" -S . -DELISION_WERROR=ON -DELISION_TSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD" -j --target parallel_test stress_cli fastpath_test
"$TSAN_BUILD"/tests/parallel_test || {
  echo "check: parallel_test failed under ThreadSanitizer" >&2; exit 1; }
"$TSAN_BUILD"/tests/fastpath_test || {
  echo "check: fastpath_test failed under ThreadSanitizer" >&2; exit 1; }
"$TSAN_BUILD"/tools/stress_cli --schemes HLE --locks TTAS --seeds 2 \
    --host-threads 4 --quiet || {
  echo "check: threaded stress smoke failed under ThreadSanitizer" >&2
  exit 1; }

# Telemetry smoke: HLE over MCS must show at least one avalanche episode,
# and the six-scheme sweep must export a parseable metrics file.
out=$("$BUILD"/tools/trace_dump --lock mcs --scheme hle --size 64 \
      --threads 8 --ms 1)
echo "$out"
echo "$out" | grep -q "avalanche episodes" || {
  echo "check: trace_dump produced no telemetry summary" >&2; exit 1; }
echo "$out" | grep -Eq "[1-9][0-9]* avalanche episodes" || {
  echo "check: no avalanche detected under HLE/MCS" >&2; exit 1; }

# Adaptive-controller smoke: an adaptive run over a phase-shifting level of
# contention must print its decision trace with at least one migration, and
# the spec parser behind every CLI must reject malformed knob values instead
# of wrapping them around.
out=$("$BUILD"/tools/trace_dump --lock ttas --scheme adaptive:window=16 \
      --size 12 --threads 16 --updates 100 --ms 1)
echo "$out" | grep -q "adaptive controller" || {
  echo "check: trace_dump printed no adaptive decision trace" >&2; exit 1; }
echo "$out" | grep -Eq "[1-9][0-9]* migration" || {
  echo "check: adaptive controller never migrated under a write storm" >&2
  exit 1; }
echo "adaptive: decision trace present with at least one migration"
for bad in adaptive:window=-5 adaptive:up=-60 hle:spec-attempts=-1 \
           hle:backoff=4294967296000000000000 adaptive:window= adaptive:up=3x
do
  if "$BUILD"/tools/trace_dump --lock ttas --scheme "$bad" --ms 0.1 \
      >/dev/null 2>&1; then
    echo "check: spec parser accepted malformed policy '$bad'" >&2; exit 1
  fi
done
echo "adaptive: parser rejects malformed knob values"

metrics=$(mktemp)
trap 'rm -f "$metrics"' EXIT
"$BUILD"/tools/trace_dump --lock mcs --all-schemes --size 64 --threads 8 \
    --ms 0.5 --metrics "$metrics" >/dev/null
python3 - "$metrics" <<'EOF'
import json, sys
series = json.load(open(sys.argv[1]))["series"]
assert len(series) == 6, f"expected 6 scheme series, got {len(series)}"
for s in series:
    assert "aborts_by_cause" in s and "attempts_hist" in s, s["scheme"]
print("metrics export: 6 schemes, abort-cause matrix + histograms present")
EOF

# Stress smoke: a small perturbed sweep over every scheme x lock must hold
# every invariant, and the self-test must *find* the planted RacyLock bug
# (proof the checkers are not vacuous). Fixed seeds: fully reproducible.
# The sweep fans out across 4 host threads (the simulated results are
# byte-identical to --host-threads 1; see the identity check below).
"$BUILD"/tools/stress_cli --schemes all --locks all --seeds 3 \
    --host-threads 4 --quiet || {
  echo "check: stress sweep found an invariant violation" >&2; exit 1; }
"$BUILD"/tools/stress_cli --selftest --seeds 5 || {
  echo "check: stress self-test missed the planted RacyLock bug" >&2
  exit 1; }
"$BUILD"/tools/stress_cli --selftest-shared --seeds 5 || {
  echo "check: shared-mode self-test failed (planted GreedySharedLock" \
       "writer starvation missed, or the correct lock was flagged)" >&2
  exit 1; }

# Host-thread fan-out must not change a single byte of stress output:
# compare the full stdout of a threaded sweep against a sequential one.
stress_seq=$("$BUILD"/tools/stress_cli \
    --schemes HLE,HLE-SCM,opt-SLR,adaptive:window=8 \
    --locks all --seeds 2 --quiet)
stress_par=$("$BUILD"/tools/stress_cli \
    --schemes HLE,HLE-SCM,opt-SLR,adaptive:window=8 \
    --locks all --seeds 2 --quiet --host-threads 2)
[ "$stress_seq" = "$stress_par" ] || {
  echo "check: stress --host-threads 2 diverged from --host-threads 1" >&2
  exit 1; }
echo "stress: --host-threads 2 reproduces the sequential sweep exactly"

# Same identity specifically for shared-mode execution: the btree workload
# over the two-mode locks (elided readers, reader-writer checkers) must
# produce byte-identical output at any host-thread count.
shared_seq=$("$BUILD"/tools/stress_cli --schemes hle,hle-scm+shared \
    --locks Shared-TTAS,Shared-MCS --workloads btree --seeds 3 --quiet)
shared_par=$("$BUILD"/tools/stress_cli --schemes hle,hle-scm+shared \
    --locks Shared-TTAS,Shared-MCS --workloads btree --seeds 3 --quiet \
    --host-threads 4)
[ "$shared_seq" = "$shared_par" ] || {
  echo "check: shared-mode stress diverged across --host-threads counts" >&2
  exit 1; }
echo "stress: shared-mode btree sweep is byte-identical across host threads"

# On multi-core hosts the fan-out must actually buy wall time: demand at
# least 1.5x at --host-threads 4 (the target on an idle 4+-core machine is
# 2x; 1.5x keeps a loaded CI box from flaking). Meaningless on fewer than
# 4 cores, so skipped there.
if [ "$(nproc 2>/dev/null || echo 1)" -ge 4 ]; then
  python3 - "$BUILD" <<'EOF'
import subprocess, sys, time
build = sys.argv[1]
def run(ht):
    t0 = time.monotonic()
    subprocess.run([f"{build}/tools/stress_cli", "--schemes", "all",
                    "--locks", "all", "--seeds", "2", "--quiet",
                    "--host-threads", str(ht)],
                   check=True, stdout=subprocess.DEVNULL)
    return time.monotonic() - t0
serial, par = run(1), run(4)
speedup = serial / par if par > 0 else 0.0
print(f"stress: --host-threads 4 speedup {speedup:.2f}x"
      f" ({serial:.1f}s -> {par:.1f}s)")
assert speedup >= 1.5, "threaded stress smoke speedup below 1.5x"
EOF
else
  echo "stress: skipping --host-threads speedup check (host has <4 cores)"
fi

# Bench-suite smoke: run the curated smoke tier, emit canonical results,
# check the paper-qualitative invariants, and gate against the committed
# baseline (see docs/benchmarks.md for tolerances and the update workflow).
# The committed baseline's sim_ops_per_sec came from a different machine, so
# the simulator-speed gate here only catches order-of-magnitude slowdowns
# (--tol-simops 0.9); the tight same-machine check comes further down.
bench_json=$(mktemp)
trap 'rm -f "$metrics" "$bench_json"' EXIT
"$BUILD"/tools/bench_suite --tier smoke --out "$bench_json" \
    --baseline bench/baseline.json --gate --tol-simops 0.9 --quiet || {
  echo "check: bench_suite smoke gate failed (perf regression or paper" \
       "invariant violation)" >&2; exit 1; }
python3 - "$bench_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1 and doc["tier"] == "smoke", doc.keys()
assert doc["points"], "no points in BENCH_results.json"
host = doc["run"]["host"]
assert host["cores"] >= 1 and host["jobs"] == 1, host
assert host["jobs_mode"] == "fork" and host["host_threads"] == 1, host
assert host["total_wall_ms"] > 0
for p in doc["points"]:
    m = p["metrics"]
    for key in ("throughput_ops_per_sec", "spec_fraction",
                "nonspec_fraction", "attempts_per_op", "aborts_by_cause",
                "avalanche_episodes", "sim_ops_per_sec", "wall_ms"):
        assert key in m, f"{p['id']} missing {key}"
    assert m["sim_ops_per_sec"] > 0, f"{p['id']} has no simulator speed"
ids = {p["id"] for p in doc["points"]}
for canary in ("micro-engine-rtm-t8", "micro-engine-rtm-t64"):
    assert canary in ids, f"simulator-speed canary {canary} missing"
print(f"bench suite: {len(doc['points'])} smoke points, schema valid,"
      f" both sim-speed canaries present")
EOF

# Adaptive end-to-end outcome: the smoke tier carries the phase-shifting
# points (ph-*, figure adaptive-phases). Beyond the suite's own gated
# invariants (adaptive within 0.9x of the per-phase-best static scheme in
# every phase; every static scheme losing at least one phase), pin the
# headline here: adaptive's total commits beat the worst static scheme's.
python3 - "$bench_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
phase = {p["id"]: p["metrics"] for p in doc["points"]
         if p["id"].startswith("ph-")}
assert len(phase) == 5, f"expected 5 phase points, got {sorted(phase)}"
for pid, m in phase.items():
    assert len(m["phase_ops"]) == 3, f"{pid}: phase_ops {m['phase_ops']}"
    assert sum(m["phase_ops"]) > 0, f"{pid}: no commits recorded"
adaptive = next(m for pid, m in phase.items() if pid.endswith("-adaptive"))
statics = [m for pid, m in phase.items() if not pid.endswith("-adaptive")]
worst = min(sum(m["phase_ops"]) for m in statics)
assert sum(adaptive["phase_ops"]) > worst, (
    f"adaptive total {sum(adaptive['phase_ops'])} does not beat the worst "
    f"static scheme's {worst}")
print(f"adaptive: {sum(adaptive['phase_ops'])} total commits vs worst "
      f"static {worst} across the phase shift")
EOF

# Sharded-KV service end-to-end outcome: the smoke tier carries the kv-*
# points (docs/service.md). Beyond the suite's own gated invariants
# (latency series ordered, hot-shard avalanche, hle elides while standard
# never does), pin the latency schema here: every kv point reports all
# four op kinds with populated, ordered percentiles, and the hot-shard
# telemetry point recorded at least one avalanche episode.
python3 - "$bench_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
kv = {p["id"]: p["metrics"] for p in doc["points"] if p["kind"] == "kv"}
assert len(kv) == 4, f"expected 4 kv smoke points, got {sorted(kv)}"
for pid, m in kv.items():
    lat = m["latency"]
    assert sorted(lat) == ["get", "multi_put", "put", "transfer"], (pid, lat)
    for op, l in lat.items():
        assert l["samples"] > 0, f"{pid}/{op}: no latency samples"
        assert (l["p50_cycles"] <= l["p99_cycles"] <= l["p999_cycles"]
                <= l["max_cycles"]), f"{pid}/{op}: unordered percentiles {l}"
hot = kv["kv-sh8-k8192-z120-u50-t8-hle"]
assert hot["avalanche_episodes"] >= 1, (
    f"hot-shard point saw no avalanche: {hot['avalanche_episodes']}")
std = kv["kv-sh8-k8192-z99-u30-t8-standard"]
assert std["spec_fraction"] == 0.0, std["spec_fraction"]
print(f"kv service: 4 smoke points with full latency schema; hot shard "
      f"logged {hot['avalanche_episodes']} avalanche episodes")
EOF

# Per-access fast path (docs/simulator.md "The per-access fast path").
# (a) Speed: the owned-line cache + switch-bound batching must keep the
# micro-engine-rtm-t64 canary at >= 1.5x the simulator speed recorded just
# before the fast path landed (bench/baseline.json as of the O(1)
# ready-queue PR: 1433953.817 sim ops/s on this host class). Best-of-5
# rides out noise on a loaded single-core CI box; the smoke gate above
# already catches order-of-magnitude regressions, this pins the headline.
python3 - "$BUILD" <<'EOF'
import json, subprocess, sys, tempfile
build = sys.argv[1]
PRE_FASTPATH_SIMOPS = 1433953.817  # t64 canary before the per-access fast path
best = 0.0
for _ in range(5):
    with tempfile.NamedTemporaryFile(suffix=".json") as f:
        subprocess.run([f"{build}/tools/bench_suite", "--tier", "smoke",
                        "--point", "micro-engine-rtm-t64", "--out", f.name,
                        "--quiet"], check=True)
        m = json.load(open(f.name))["points"][0]["metrics"]
        best = max(best, m["sim_ops_per_sec"])
speedup = best / PRE_FASTPATH_SIMOPS
print(f"fastpath: t64 canary best-of-5 {best:,.0f} sim ops/s,"
      f" {speedup:.2f}x the pre-fast-path engine")
assert speedup >= 1.5, (
    f"fast-path speedup {speedup:.2f}x fell below the 1.5x target")
EOF

# (b) Equivalence: ELISION_FASTPATH=0 disables both fast paths at run time;
# every simulated metric must be bit-identical to the default run, and the
# fastpath telemetry object must vanish (counters all zero) — proof the
# kill switch engages and the fast paths never change virtual-time results.
fp_on_json=$(mktemp)
fp_off_json=$(mktemp)
trap 'rm -f "$metrics" "$bench_json" "$bench_par_json" "$bench_thr_json" \
     "$fp_on_json" "$fp_off_json"' EXIT
"$BUILD"/tools/bench_suite --tier smoke --point rb-s64-u20-t8-ttas-hle-scm \
    --out "$fp_on_json" --quiet
ELISION_FASTPATH=0 "$BUILD"/tools/bench_suite --tier smoke \
    --point rb-s64-u20-t8-ttas-hle-scm --out "$fp_off_json" --quiet
python3 - "$fp_on_json" "$fp_off_json" <<'EOF'
import json, sys
on, off = (json.load(open(p))["points"][0]["metrics"] for p in sys.argv[1:3])
assert "fastpath" in on and on["fastpath"]["owned_hits"] > 0, (
    "default run reports no owned-line hits — fast path not engaged?")
assert "fastpath" not in off, (
    f"ELISION_FASTPATH=0 run still reports telemetry: {off.get('fastpath')}")
for m in (on, off):
    m.pop("sim_ops_per_sec"), m.pop("wall_ms"), m.pop("fastpath", None)
assert on == off, "ELISION_FASTPATH=0 changed simulated results"
print("fastpath: ELISION_FASTPATH=0 reproduces the simulation exactly")
EOF

# (c) Planted invalidation: the differential tests deliberately hold stale
# cached (line, generation, record) refs across clear()/grow() and assert
# the generation stamp forces a re-probe instead of serving the stale
# payload. Run them named, under ASan, so a silently-served stale ref is a
# loud failure here even if someone trims the ctest registration.
"$SAN_BUILD"/tests/line_table_test --gtest_filter=\
'LineTable.CacheSurvivesClearAndGrow:LineTableDifferential.*' || {
  echo "check: planted stale cached ref was not caught by the generation" \
       "stamp" >&2; exit 1; }
"$SAN_BUILD"/tests/fastpath_test || {
  echo "check: fast-path differential failed under ASan/UBSan" >&2; exit 1; }

# (d) Machine scale: the full tier must gate green against the committed
# baseline and carry the 128- and 256-thread fig5.1 points the fast path
# paid for (the t256 shape is the scheduler's kMaxSimThreads ceiling).
bench_full_json=$(mktemp)
trap 'rm -f "$metrics" "$bench_json" "$bench_par_json" "$bench_thr_json" \
     "$fp_on_json" "$fp_off_json" "$bench_full_json"' EXIT
"$BUILD"/tools/bench_suite --tier full --out "$bench_full_json" \
    --baseline bench/baseline.json --gate --tol-simops 0.9 --quiet || {
  echo "check: bench_suite full-tier gate failed" >&2; exit 1; }
python3 - "$bench_full_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
ids = {p["id"] for p in doc["points"]}
for pid in ("rb-s64-u20-t128-ttas-hle-scm-m64x2",
            "rb-s64-u20-t256-ttas-hle-scm-m128x2"):
    assert pid in ids, f"machine-scale point {pid} missing from full tier"
big = {p["id"]: p["metrics"] for p in doc["points"]
       if p["id"].endswith(("-m64x2", "-m128x2"))}
for pid, m in big.items():
    assert m["tx"]["commits"] > 0, f"{pid}: no commits"
    assert m["spec_fraction"] > 0.5, f"{pid}: {m['spec_fraction']}"
print(f"fastpath: full tier gated green with both machine-scale points"
      f" ({len(ids)} points)")
EOF

# Strict CLI parsing: every tool now routes numeric flags through
# support/parse.hpp, so trailing garbage, bare negatives where they make
# no sense, empty values and overflow must all be *rejected* (exit 2)
# instead of silently truncated by atoi/atof.
for cli_bad in \
    "bench_suite --tier smoke --jobs foo" \
    "bench_suite --tier smoke --jobs -1" \
    "bench_suite --tier smoke --jobs 2x" \
    "bench_suite --tier smoke --host-threads 1.5" \
    "bench_suite --tier smoke --tol-throughput -0.1" \
    "bench_suite --tier smoke --plant-regression 0junk" \
    "elide --threads 8y" \
    "elide --ms -3" \
    "elide --size 99999999999999999999999" \
    "trace_dump --window 0" \
    "trace_dump --threads ''" \
    "stress_cli --seeds 1e9junk" \
    "stress_cli --threads 1x" \
    "stress_cli --prob 1.5" \
    "stress_cli --first-seed -2" \
    "elide tree --threads 0" \
    "elide tree --threads 257" \
    "stress_cli --threads 0" \
    "stress_cli --threads 300" \
    "bench_suite --point no-such-point-id --out /dev/null"
do
  tool=${cli_bad%% *}
  args=${cli_bad#* }
  if eval "\"$BUILD\"/tools/$tool $args" >/dev/null 2>&1; then
    echo "check: $tool accepted malformed flag value: $args" >&2; exit 1
  fi
done
echo "CLI parsing: all tools reject malformed numeric flag values"

# Parallel execution must reproduce the sequential run exactly: every
# simulated metric is deterministic per seed, so fanning the points out —
# to worker subprocesses (--jobs-mode fork) or onto an in-process pool
# (--jobs-mode threads), with or without per-point multi-seed fan-out
# (--host-threads) — may only change the host wall-time fields (wall_ms,
# sim_ops_per_sec, run.host).
bench_par_json=$(mktemp)
bench_thr_json=$(mktemp)
trap 'rm -f "$metrics" "$bench_json" "$bench_par_json" "$bench_thr_json"' EXIT
"$BUILD"/tools/bench_suite --tier smoke --jobs 2 --out "$bench_par_json" \
    --quiet || {
  echo "check: bench_suite --jobs 2 run failed" >&2; exit 1; }
"$BUILD"/tools/bench_suite --tier smoke --jobs 2 --jobs-mode threads \
    --host-threads 2 --out "$bench_thr_json" --quiet || {
  echo "check: bench_suite --jobs-mode threads run failed" >&2; exit 1; }
python3 - "$bench_json" "$bench_par_json" "$bench_thr_json" <<'EOF'
import json, sys
seq, par, thr = (json.load(open(p)) for p in sys.argv[1:4])
assert par["run"]["host"]["jobs"] == 2, par["run"]["host"]
assert par["run"]["host"]["jobs_mode"] == "fork", par["run"]["host"]
assert thr["run"]["host"]["jobs"] == 2, thr["run"]["host"]
assert thr["run"]["host"]["jobs_mode"] == "threads", thr["run"]["host"]
assert thr["run"]["host"]["host_threads"] == 2, thr["run"]["host"]
for doc in (seq, par, thr):
    del doc["run"]["host"]
    for p in doc["points"]:
        del p["metrics"]["sim_ops_per_sec"], p["metrics"]["wall_ms"]
        # The fastpath hit counts are heap-layout-sensitive (line ids are
        # real addresses), so like wall_ms they may differ across processes.
        p["metrics"].pop("fastpath", None)
assert seq == par, "fork-parallel run diverged from sequential run"
assert seq == thr, "in-process threaded run diverged from sequential run"
print("bench suite: --jobs 2 (fork and threads) reproduces the sequential"
      " results exactly")
EOF

# Gate self-checks: a planted 50% throughput regression and a planted 5x
# simulator slowdown must both be detected (proof neither gate is vacuous).
# The slowdown check gates against the fresh same-machine results from
# above, where a tight sim_ops_per_sec tolerance is meaningful.
if "$BUILD"/tools/bench_suite --tier smoke --plant-regression 0.5 \
    --out /dev/null --baseline bench/baseline.json --gate --quiet \
    >/dev/null 2>&1; then
  echo "check: bench gate missed a planted 50% throughput regression" >&2
  exit 1
fi
echo "bench suite: planted-regression self-check caught the regression"

if "$BUILD"/tools/bench_suite --tier smoke --plant-slowdown 0.2 \
    --out /dev/null --baseline "$bench_json" --gate --tol-simops 0.5 \
    --quiet >/dev/null 2>&1; then
  echo "check: bench gate missed a planted 5x simulator slowdown" >&2
  exit 1
fi
echo "bench suite: planted-slowdown self-check caught the slowdown"

echo "check: OK"
