// Shared-mode TTAS lock: the unfair member of the two-mode (reader-writer)
// lock family.
//
// Exclusive mode follows TTAS (Algorithm 1) shape: spin outside any
// transaction until the word looks claimable, then claim it with one tagged
// RMW. Under elision the XACQUIRE CMPXCHG subscribes to the word without
// storing, so elided writers — like elided readers — coexist until a data
// conflict or a real acquisition arbitrates. Shared mode is the common
// reader-writer protocol of locks/shared_word.hpp.
//
// Writer preference: a standard-mode writer first announces intent (the
// pending count), which blocks new readers; it claims the writer bit once
// the readers drain. Writers themselves are unordered (TTAS barging), so the
// lock is unfair among writers and can lock readers out under a continuous
// writer stream — the hazard stress::RoleLockoutChecker watches.
#pragma once

#include <cstdint>

#include "support/align.hpp"
#include "locks/shared_word.hpp"
#include "tsx/shared.hpp"

namespace elision::locks {

class SharedTtasLock {
 public:
  static constexpr const char* kName = "Shared-TTAS";
  static constexpr bool kIsFair = false;

  // --- exclusive mode ---
  void lock(tsx::Ctx& ctx) {
    if (ctx.mode() == tsx::ElisionMode::kSpeculative) {
      // Elided writer: wait (outside the transaction) until the word is
      // free and the real readers drained, then subscribe via the elided
      // CMPXCHG. The in-transaction recheck of the reader count puts that
      // line in the read set too, so a real reader arriving mid-speculation
      // aborts the writer — it must, the reader runs unprotected. A failed
      // check while transactional cannot make progress (the illusion pins
      // the lines): the PAUSE aborts the attempt and the region driver
      // retries or falls back.
      for (;;) {
        while (word().load(ctx) != 0 || readers().load(ctx) != 0) {
          ctx.engine().pause(ctx);
        }
        if (word().xacquire_compare_exchange(ctx, 0, rw::kWriter) &&
            readers().load(ctx) == 0) {
          return;
        }
        ctx.engine().pause(ctx);
      }
    }
    // Standard mode: announce intent (blocks new readers), wait until no
    // writer holds the lock and the real readers drained, then claim —
    // moving this thread's pending unit into the writer bit.
    word().fetch_add(ctx, rw::kPendingUnit);
    for (;;) {
      const std::uint64_t v = word().load(ctx);
      if ((v & rw::kWriter) == 0 && readers().load(ctx) == 0) {
        if (word().compare_exchange(ctx, v,
                                    v - rw::kPendingUnit + rw::kWriter)) {
          return;
        }
        continue;
      }
      ctx.engine().pause(ctx);
    }
  }

  void unlock(tsx::Ctx& ctx) {
    // Elided: the illusion (writer bit) plus the decrement restores the
    // original free word, so the XRELEASE validates and commits. Standard:
    // drop the writer bit, leaving other writers' pending announcements and
    // transient reader increments intact (an unconditional store would
    // clobber them).
    word().xrelease_fetch_add(ctx, std::uint64_t{0} - rw::kWriter);
  }

  // --- shared mode ---
  void lock_shared(tsx::Ctx& ctx) {
    rw::lock_shared(ctx, word(), readers());
  }
  void unlock_shared(tsx::Ctx& ctx) {
    rw::unlock_shared(ctx, word(), readers());
  }

  bool is_held(tsx::Ctx& ctx) {
    return word().load(ctx) != 0 || readers().load(ctx) != 0;
  }
  // What blocks a *shared* acquisition: a writer holding or awaiting the
  // lock (other readers do not). The subscribe point for elided readers.
  bool is_write_locked(tsx::Ctx& ctx) {
    return (word().load(ctx) & rw::kReaderBlockMask) != 0;
  }

  // Cache line of the elidable lock word (telemetry tagging).
  support::LineId lock_line() const { return support::line_of(&word_.value); }

  // Abort aftermath: one non-transactional re-issue of the claiming RMW
  // (TTAS semantics — may fail). A CAS rather than an exchange: an
  // unconditional store would clobber concurrent writers' pending
  // announcements. Unlike the announcing lock() path, this barging claim
  // must recheck the reader count *after* the CAS and back out if a real
  // reader got in — the CAS alone cannot see the separate reader line
  // (a reader increments first and rechecks the word second, so after the
  // recheck one of the two is guaranteed to observe the other and retreat).
  bool reissue_acquire_standard(tsx::Ctx& ctx) {
    if (readers().load(ctx) != 0) return false;
    if (!word().compare_exchange(ctx, 0, rw::kWriter)) return false;
    if (readers().load(ctx) == 0) return true;
    word().fetch_add(ctx, std::uint64_t{0} - rw::kWriter);
    return false;
  }
  bool reissue_acquire_shared_standard(tsx::Ctx& ctx) {
    return rw::reissue_acquire_shared(ctx, word(), readers());
  }

 private:
  tsx::Shared<std::uint64_t>& word() { return word_.value; }
  tsx::Shared<std::uint64_t>& readers() { return readers_.value; }

  support::CacheAligned<tsx::Shared<std::uint64_t>> word_;
  // Real-reader count, deliberately on its own line (see shared_word.hpp).
  support::CacheAligned<tsx::Shared<std::uint64_t>> readers_;
};

}  // namespace elision::locks
