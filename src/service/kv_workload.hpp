// Benchmark driver for the sharded KV service: Zipf-skewed open-loop
// traffic against ShardedKv, measuring virtual-time request latency
// (arrival -> completion, so queueing delay counts) per op kind alongside
// the usual throughput/speculation metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/runner.hpp"
#include "locks/policy.hpp"

namespace elision::service {

struct KvPoint {
  int shards = 8;
  std::size_t keys = 8192;  // key domain [0, keys), half prefilled

  // Open-loop offered load: `clients` independent Poisson request streams
  // of `client_rate_hz` requests per virtual second each, partitioned over
  // `threads` workers (superposed per worker, so client count only scales
  // the rate — see service/traffic.hpp).
  int clients = 2000;
  double client_rate_hz = 1000.0;
  double zipf_theta = 0.99;  // key-popularity skew (YCSB default)

  // Op mix, percent: put / multi_put / transfer, remainder point gets.
  int put_pct = 20;
  int multi_put_pct = 5;
  int transfer_pct = 5;
  int multi_put_keys = 4;  // keys per multi_put (<= ShardedKv::kMaxOpShards)

  int threads = 8;
  locks::ElisionPolicy policy = locks::ElisionPolicy::hle();
  double duration_sec = 0.003;
  bool telemetry = false;
  tsx::AvalancheConfig avalanche;
  int seeds = 2;
  std::uint64_t timeline_slot_cycles = 0;
  std::uint64_t seed = 42;
  // Host threads for the multi-seed fan-out; never affects simulated
  // results (see RbPoint::host_threads).
  int host_threads = 1;

  // Out-param: completed requests routed to each shard (summed over seeds).
  // Under Zipf skew the distribution is lopsided — the hot-shard signature.
  std::vector<std::uint64_t>* shard_requests = nullptr;
};

// Latency series names registered (in this order) in RunStats::op_latency.
inline constexpr const char* kKvOpNames[] = {"get", "put", "multi_put",
                                             "transfer"};
inline constexpr int kKvOpKinds = 4;

// Builds and prefills the service, then drives it for the configured
// virtual duration, once.
harness::RunStats run_kv_point_once(const KvPoint& p);

// Accumulates `p.seeds` independent runs, merged in seed order
// (byte-identical across host_threads values).
harness::RunStats run_kv_point(const KvPoint& p);

}  // namespace elision::service
