#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "support/align.hpp"
#include "support/flat_map.hpp"
#include "support/function_ref.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace elision::support {
namespace {

// ---------------------------------------------------------------------------
// Xoshiro256
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  const std::uint64_t bounds[] = {1,    2,          3,
                                  10,   1000,       std::uint64_t{1} << 33,
                                  UINT64_MAX / 2};
  for (const std::uint64_t bound : bounds) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Xoshiro256 rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.next_bool(0.1)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.1, 0.01);
}

TEST(Rng, BernoulliZeroAndOne) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, ReseedRestartsSequence) {
  Xoshiro256 rng(123);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.next());
  rng.reseed(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next(), first[i]);
}

// ---------------------------------------------------------------------------
// WordMap
// ---------------------------------------------------------------------------

TEST(WordMap, PutFindRoundtrip) {
  WordMap m;
  m.put(0x1000, 7);
  m.put(0x2000, 9);
  ASSERT_NE(m.find(0x1000), nullptr);
  EXPECT_EQ(*m.find(0x1000), 7u);
  ASSERT_NE(m.find(0x2000), nullptr);
  EXPECT_EQ(*m.find(0x2000), 9u);
  EXPECT_EQ(m.find(0x3000), nullptr);
}

TEST(WordMap, OverwriteKeepsSize) {
  WordMap m;
  m.put(0x40, 1);
  m.put(0x40, 2);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(0x40), 2u);
}

TEST(WordMap, GrowsBeyondInitialCapacity) {
  WordMap m(/*initial_pow2=*/2);  // 4 slots
  for (std::uintptr_t k = 1; k <= 1000; ++k) m.put(k * 8, k);
  EXPECT_EQ(m.size(), 1000u);
  for (std::uintptr_t k = 1; k <= 1000; ++k) {
    ASSERT_NE(m.find(k * 8), nullptr) << k;
    EXPECT_EQ(*m.find(k * 8), k);
  }
}

TEST(WordMap, ClearEmptiesAndIsReusable) {
  WordMap m;
  for (std::uintptr_t k = 1; k <= 100; ++k) m.put(k * 16, k);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(16), nullptr);
  m.put(16, 5);
  EXPECT_EQ(*m.find(16), 5u);
}

TEST(WordMap, ForEachVisitsAll) {
  WordMap m;
  std::uint64_t want = 0;
  for (std::uintptr_t k = 1; k <= 64; ++k) {
    m.put(k * 8, k);
    want += k;
  }
  std::uint64_t got = 0;
  std::size_t count = 0;
  m.for_each([&](std::uintptr_t, std::uint64_t v) {
    got += v;
    ++count;
  });
  EXPECT_EQ(got, want);
  EXPECT_EQ(count, 64u);
}

TEST(WordMap, CollidingKeysProbe) {
  WordMap m(/*initial_pow2=*/3);
  // Many keys, tiny table: every slot conflicts during growth.
  for (std::uintptr_t k = 0; k < 40; ++k) m.put(0x10000 + k * 0x800, k);
  for (std::uintptr_t k = 0; k < 40; ++k) {
    ASSERT_NE(m.find(0x10000 + k * 0x800), nullptr);
    EXPECT_EQ(*m.find(0x10000 + k * 0x800), k);
  }
}

// ---------------------------------------------------------------------------
// FunctionRef
// ---------------------------------------------------------------------------

TEST(FunctionRef, CallsLambdaWithCapture) {
  int calls = 0;
  // FunctionRef is non-owning: the callee must outlive the reference.
  auto callee = [&calls](int x) {
    ++calls;
    return x * 2;
  };
  FunctionRef<int(int)> f = callee;
  EXPECT_EQ(f(21), 42);
  EXPECT_EQ(calls, 1);
}

int free_function(int x) { return x + 1; }

TEST(FunctionRef, CallsFreeFunction) {
  FunctionRef<int(int)> f = free_function;
  EXPECT_EQ(f(41), 42);
}

TEST(FunctionRef, VoidReturn) {
  int state = 0;
  auto callee = [&state] { state = 99; };
  FunctionRef<void()> f = callee;
  f();
  EXPECT_EQ(state, 99);
}

// ---------------------------------------------------------------------------
// Cache-line math
// ---------------------------------------------------------------------------

TEST(Align, LineOfGroupsWithin64Bytes) {
  alignas(64) char buf[128];
  EXPECT_EQ(line_of(&buf[0]), line_of(&buf[63]));
  EXPECT_NE(line_of(&buf[0]), line_of(&buf[64]));
  EXPECT_EQ(line_of(&buf[64]), line_of(&buf[127]));
}

TEST(Align, CacheAlignedHasFullLine) {
  static_assert(sizeof(CacheAligned<int>) == kCacheLineBytes);
  static_assert(alignof(CacheAligned<int>) == kCacheLineBytes);
  CacheAligned<int> a[2];
  EXPECT_NE(line_of(&a[0].value), line_of(&a[1].value));
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, ParsesNestedDocumentPreservingOrder) {
  const auto doc = json::parse(
      "{\"b\": 1, \"a\": [true, null, -2.5e2, \"s\"], \"c\": {\"x\": 7}}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  ASSERT_EQ(doc->members().size(), 3u);
  EXPECT_EQ(doc->members()[0].key, "b");  // insertion order, not sorted
  EXPECT_EQ(doc->members()[1].key, "a");
  const json::Value* arr = doc->find("a");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->items().size(), 4u);
  EXPECT_TRUE(arr->items()[0].as_bool());
  EXPECT_TRUE(arr->items()[1].is_null());
  EXPECT_DOUBLE_EQ(arr->items()[2].as_double(), -250.0);
  EXPECT_EQ(arr->items()[3].as_string(), "s");
  EXPECT_EQ(doc->find("c")->find("x")->as_u64(), 7u);
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, ParsesStringEscapes) {
  const auto doc = json::parse(R"({"s": "a\"b\\c\n\tAé"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("s")->as_string(), "a\"b\\c\n\tA\xC3\xA9");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(json::parse("").has_value());
  EXPECT_FALSE(json::parse("{").has_value());
  EXPECT_FALSE(json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(json::parse("[1,]").has_value());
  EXPECT_FALSE(json::parse("{} trailing").has_value());
  EXPECT_FALSE(json::parse("\"unterminated").has_value());
  EXPECT_FALSE(json::parse("truex").has_value());
  EXPECT_FALSE(json::parse("1.2.3").has_value());
}

TEST(Json, EscapeRoundTripsThroughParser) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  std::string text = "\"";
  text += json::escape(nasty);
  text += '"';
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), nasty);
}

}  // namespace
}  // namespace elision::support
