// Per-cache-line bookkeeping: transactional conflict state (reader mask +
// single buffered writer) and a MESI-like sharing model used both for
// memory-access cost estimation and for the Chapter 7 "cache footprint"
// semantics.
//
// The simulator runs on one host thread, so the records are plain data.
//
// This table sits on the hottest path in the whole simulator: every
// simulated load/store does at least one lookup. It is therefore an
// open-addressing, power-of-two flat table rather than a node-based map:
//
//   - zero allocations in steady state (one contiguous slot array that only
//     ever doubles);
//   - tombstone-free lifetime management via generation stamps: a slot is
//     live iff its stamp equals the table's current generation, so clear()
//     is an O(1) generation bump and probe chains never contain dead slots
//     (records are never individually erased, only bulk-invalidated);
//   - a caller-owned one-entry cache (LineTable::Cache) that lets the
//     common "same line as the previous access" case skip probing entirely.
#pragma once

#include <cstdint>
#include <vector>

#include "support/align.hpp"
#include "support/hash.hpp"
#include "tsx/thread_set.hpp"

namespace elision::tsx {

inline constexpr int kNoThread = -1;

struct LineRecord {
  // --- transactional conflict detection ---
  ThreadSet readers;          // tx ids with this line in their read set
  int writer = kNoThread;     // tx id with this line in its (buffered) write set

  // --- cache sharing model ---
  ThreadSet copies;              // threads whose simulated cache holds the line
  int dirty_owner = kNoThread;   // thread holding the line modified, if any
};

class LineTable {
 public:
  // A memoized (line -> slot) mapping owned by the caller (one per
  // TxContext). Validated against the slot's key and generation on every
  // use, so growth and clear() invalidate it for free.
  struct Cache {
    support::LineId line = 0;
    std::size_t slot = 0;
  };

  // A (line, slot-index) pair captured when a line enters a read/write set.
  // Release paths hand it to at() to skip re-probing; at() re-validates, so
  // a stale index (after grow()) degrades to a find(), never to corruption.
  struct Ref {
    support::LineId line = 0;
    std::size_t slot = 0;
  };

  explicit LineTable(std::size_t initial_pow2 = 12)
      : mask_((std::size_t{1} << initial_pow2) - 1), slots_(mask_ + 1) {}

  // Returns (creating if absent) the record of `line`. References stay
  // valid until the next record() call that inserts a new line.
  LineRecord& record(support::LineId line) {
    Slot& s = probe(line);
    if (s.gen != gen_) return insert(s, line).rec;
    return s.rec;
  }

  // Hot-path variant: consults `cache` before probing and refreshes it.
  LineRecord& record(support::LineId line, Cache& cache) {
    if (cache.line == line) {
      Slot& c = slots_[cache.slot & mask_];
      if (c.gen == gen_ && c.line == line) return c.rec;
    }
    Slot& s = probe(line);
    Slot& live = s.gen == gen_ ? s : insert(s, line);
    cache = {line, static_cast<std::size_t>(&live - slots_.data())};
    return live.rec;
  }

  // Lookup without creating a record (used on read-mostly fast paths).
  LineRecord* find(support::LineId line) {
    Slot& s = probe(line);
    return s.gen == gen_ ? &s.rec : nullptr;
  }

  // Direct slot access by a previously captured index. Returns the record
  // iff the slot still holds `line` live — sound across grow() and clear()
  // because a live slot matching on both line and generation can only be
  // that line's unique record; the caller falls back to find() on a miss.
  LineRecord* at(std::size_t idx, support::LineId line) {
    Slot& s = slots_[idx & mask_];
    return (s.gen == gen_ && s.line == line) ? &s.rec : nullptr;
  }

  // O(1): bumps the generation, logically emptying every slot. No caller
  // iterates dead records, so the stale payloads are simply overwritten on
  // the next insertion of their slot.
  void clear() {
    ++gen_;
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t generation() const { return gen_; }

  // First-touch sequence number of `line` (1-based; 0 if absent). Line ids
  // are real addresses >> 6, so their *values* vary run to run with the
  // heap layout; first-touch order does not, because the simulation is
  // deterministic. Consumers that need a stable function of a line (e.g.
  // grouped-SCM's conflict-group hash) use this instead of the raw id, so
  // results reproduce across processes — which parallel bench-suite
  // execution relies on.
  std::uint64_t seq_of(support::LineId line) {
    Slot& s = probe(line);
    return s.gen == gen_ ? s.seq : 0;
  }

 private:
  struct Slot {
    support::LineId line = 0;
    std::uint64_t gen = 0;  // live iff == LineTable::gen_ (which starts at 1)
    std::uint64_t seq = 0;  // first-touch order, assigned at insertion
    LineRecord rec;
  };

  // First slot that holds `line` or is free (dead or never used). Probe
  // chains contain no dead slots between a key's home position and its
  // slot: slots only transition free -> live within a generation, and
  // clear() frees all of them at once.
  Slot& probe(support::LineId line) {
    std::size_t i = support::mix64(line) & mask_;
    while (slots_[i].gen == gen_ && slots_[i].line != line) {
      i = (i + 1) & mask_;
    }
    return slots_[i];
  }

  Slot& insert(Slot& free_slot, support::LineId line) {
    if ((size_ + 1) * 4 >= slots_.size() * 3) {
      grow();
      Slot& s = probe(line);
      s.line = line;
      s.gen = gen_;
      s.seq = next_seq_++;
      s.rec = LineRecord{};
      ++size_;
      return s;
    }
    free_slot.line = line;
    free_slot.gen = gen_;
    free_slot.seq = next_seq_++;
    free_slot.rec = LineRecord{};
    ++size_;
    return free_slot;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    mask_ = mask_ * 2 + 1;
    slots_.assign(mask_ + 1, Slot{});
    for (auto& s : old) {
      if (s.gen != gen_) continue;
      Slot& dst = probe(s.line);  // all slots in the new array are free
      dst.line = s.line;
      dst.gen = gen_;
      dst.seq = s.seq;
      dst.rec = s.rec;
    }
  }

  std::size_t mask_;
  std::vector<Slot> slots_;
  std::uint64_t gen_ = 1;
  std::uint64_t next_seq_ = 1;  // 0 is reserved for "absent"
  std::size_t size_ = 0;
};

}  // namespace elision::tsx
