// Cache-line geometry shared by the whole simulator.
#pragma once

#include <cstdint>
#include <cstddef>

namespace elision::support {

inline constexpr std::size_t kCacheLineBytes = 64;
inline constexpr std::size_t kCacheLineShift = 6;

// Identifier of a simulated cache line: the real address >> 6. Using real
// addresses means field co-location and false sharing behave realistically.
using LineId = std::uintptr_t;

inline LineId line_of(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) >> kCacheLineShift;
}

// A T padded out to occupy a full cache line, for contended control words.
template <typename T>
struct alignas(kCacheLineBytes) CacheAligned {
  T value{};
};

}  // namespace elision::support
