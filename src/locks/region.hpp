// Critical-section region drivers: HLE-based and RTM-based lock elision.
//
// hle_region() models exactly what the hardware does around an elided
// critical section: the first attempt runs the lock code with the XACQUIRE
// op beginning a transaction; an abort rolls everything back and re-issues
// the acquiring store non-transactionally. For TTAS that store can fail
// (lock held), after which the software algorithm spins and re-enters
// speculation — the recovery behaviour of Ch. 3. For fair locks it enqueues
// the thread, which then completes non-speculatively.
//
// rtm_elide_region() is the paper's "equivalent lock elision mechanism based
// on the RTM instructions" (Ch. 3 Remark, Fig 3.5): the transaction reads
// the lock at its start and aborts if it is held; this variant can observe
// abort statuses, which plain HLE hides.
//
// Both drivers share one non-speculative completion tail,
// complete_standard(), which also emits the lock acquire/release telemetry
// events the avalanche detector keys on.
#pragma once

#include "support/check.hpp"
#include "support/function_ref.hpp"
#include "tsx/engine.hpp"

namespace elision::locks {

// The access-mode axis of the two-mode lock API: every region driver can run
// a critical section as the exclusive holder or — for locks providing a
// shared mode — as one of many readers. Exclusive is the default everywhere,
// so single-mode locks and existing call sites are unaffected.
enum class AccessMode : std::uint8_t {
  kExclusive,
  kShared,
};

inline const char* access_mode_name(AccessMode m) {
  return m == AccessMode::kShared ? "shared" : "exclusive";
}

// How a critical section eventually completed.
struct RegionResult {
  bool speculative = false;  // completed as a committed transaction
  int attempts = 0;          // executions tried (aborted + the completing one)
  // Cause of the last *failed* attempt (kNone if the first attempt
  // committed). Lets callers and the metrics layer attribute fallbacks
  // without a full event trace.
  tsx::AbortCause last_abort = tsx::AbortCause::kNone;
};

// XABORT code used by elision/removal schemes when the lock is observed held.
inline constexpr std::uint8_t kAbortCodeLockBusy = 0xA0;

// Retry/backoff knobs of the elision drivers (consumed via ElisionPolicy).
struct RetryParams {
  // After this many failed speculative attempts the driver stops
  // re-entering speculation and completes non-speculatively, waiting for
  // the lock if it must. 0 = keep re-entering speculation (the paper's
  // baseline HLE behaviour).
  int max_spec_attempts = 0;
  // If nonzero, wait a randomized exponentially-growing number of cycles
  // (base << failures, capped) before re-entering speculation.
  std::uint64_t backoff_base_cycles = 0;

  friend bool operator==(const RetryParams&, const RetryParams&) = default;
};

namespace detail {

// The two-mode lock concept: a lock is shared-capable when it implements the
// shared-mode half of the contract next to the exclusive one.
template <typename Lock>
inline constexpr bool kHasSharedMode = requires(Lock& l, tsx::Ctx& c) {
  l.lock_shared(c);
  l.unlock_shared(c);
  l.is_write_locked(c);
  l.reissue_acquire_shared_standard(c);
};

// Mode-dispatched lock operations. For single-mode locks these compile down
// to the exclusive calls (and shared mode is a programming error).
template <typename Lock>
void mode_lock(tsx::Ctx& ctx, Lock& lock, AccessMode mode) {
  if constexpr (kHasSharedMode<Lock>) {
    if (mode == AccessMode::kShared) {
      lock.lock_shared(ctx);
      return;
    }
  } else {
    ELISION_DCHECK(mode == AccessMode::kExclusive);
  }
  lock.lock(ctx);
}

template <typename Lock>
void mode_unlock(tsx::Ctx& ctx, Lock& lock, AccessMode mode) {
  if constexpr (kHasSharedMode<Lock>) {
    if (mode == AccessMode::kShared) {
      lock.unlock_shared(ctx);
      return;
    }
  } else {
    ELISION_DCHECK(mode == AccessMode::kExclusive);
  }
  lock.unlock(ctx);
}

template <typename Lock>
bool mode_reissue(tsx::Ctx& ctx, Lock& lock, AccessMode mode) {
  if constexpr (kHasSharedMode<Lock>) {
    if (mode == AccessMode::kShared) {
      return lock.reissue_acquire_shared_standard(ctx);
    }
  } else {
    ELISION_DCHECK(mode == AccessMode::kExclusive);
  }
  return lock.reissue_acquire_standard(ctx);
}

// What blocks this access (the RTM-style schemes' "lock busy" subscription
// check, and the drivers' spin-wait): an exclusive acquirer is blocked by
// any holder; a shared acquirer only by a writer — speculative readers
// coexist with real readers, which is where shared-mode elision wins over
// exclusive elision on read-mostly workloads.
template <typename Lock>
bool mode_blocked(tsx::Ctx& ctx, Lock& lock, AccessMode mode) {
  if constexpr (kHasSharedMode<Lock>) {
    if (mode == AccessMode::kShared) return lock.is_write_locked(ctx);
  } else {
    ELISION_DCHECK(mode == AccessMode::kExclusive);
  }
  return lock.is_held(ctx);
}

// Locks exposing their elidable word's cache line (lock_line()) let
// telemetry tag lock events with it; others report 0 (unknown).
template <typename Lock>
support::LineId lock_line_of(Lock& lock) {
  if constexpr (requires { lock.lock_line(); }) {
    return lock.lock_line();
  } else {
    return 0;
  }
}

// Longest randomized backoff wait: 2^32 cycles (~1.3 simulated seconds at
// 3.4 GHz) — far beyond any useful backoff, but finite, so a pathological
// backoff_base_cycles cannot stall a thread for a virtual eternity.
inline constexpr std::uint64_t kMaxBackoffBoundCycles = std::uint64_t{1}
                                                        << 32;

inline void backoff(tsx::Ctx& ctx, const RetryParams& p, int failures) {
  if (p.backoff_base_cycles == 0) return;
  const int shift = failures < 10 ? failures : 10;
  // Clamp before shifting: for a large base, base << shift wraps modulo
  // 2^64 — possibly to 0, which next_below() rejects (and which would mean
  // "no backoff at all" exactly when the caller asked for the longest one).
  const std::uint64_t bound =
      p.backoff_base_cycles >= (kMaxBackoffBoundCycles >> shift)
          ? kMaxBackoffBoundCycles
          : p.backoff_base_cycles << shift;
  ctx.thread().tick(1 + ctx.thread().rng().next_below(bound));
}

}  // namespace detail

// The shared fallback tail of the elision schemes: re-issue the acquiring
// store non-speculatively and, if it acquired, run the body for real and
// release. Returns false when the re-issued store found the lock held
// (TTAS), in which case the caller spins and may re-enter speculation.
//
// The kLockAcquire event is deliberately timestamped *before* the re-issued
// store: that store is what invalidates the lock line in every speculating
// reader (the avalanche trigger), so victims' abort events follow it.
template <typename Lock>
bool complete_standard(tsx::Ctx& ctx, Lock& lock, RegionResult& r,
                       support::FunctionRef<void()> body,
                       AccessMode mode = AccessMode::kExclusive) {
  auto& eng = ctx.engine();
  const support::LineId line = detail::lock_line_of(lock);
  eng.note_event(ctx, tsx::EventKind::kLockAcquire, line);
  if (!detail::mode_reissue(ctx, lock, mode)) return false;
  ++r.attempts;
  body();
  detail::mode_unlock(ctx, lock, mode);
  eng.note_event(ctx, tsx::EventKind::kLockRelease, line);
  r.speculative = false;
  return true;
}

// Unconditional non-speculative completion: blockingly acquire the main
// lock, run the body, release. Used by the standard scheme and by the
// SCM/SLR give-up paths.
template <typename Lock>
void complete_locked(tsx::Ctx& ctx, Lock& lock, RegionResult& r,
                     support::FunctionRef<void()> body,
                     AccessMode mode = AccessMode::kExclusive) {
  auto& eng = ctx.engine();
  const support::LineId line = detail::lock_line_of(lock);
  eng.note_event(ctx, tsx::EventKind::kLockAcquire, line);
  detail::mode_lock(ctx, lock, mode);
  ++r.attempts;
  body();
  detail::mode_unlock(ctx, lock, mode);
  eng.note_event(ctx, tsx::EventKind::kLockRelease, line);
  r.speculative = false;
}

template <typename Lock>
RegionResult hle_region(tsx::Ctx& ctx, Lock& lock, const RetryParams& params,
                        support::FunctionRef<void()> body,
                        AccessMode mode = AccessMode::kExclusive) {
  RegionResult r;
  int spec_failures = 0;
  for (;;) {
    ++r.attempts;
    try {
      ctx.set_mode(tsx::ElisionMode::kSpeculative);
      detail::mode_lock(ctx, lock, mode);
      body();
      detail::mode_unlock(ctx, lock, mode);  // the XRELEASE commits
      ctx.set_mode(tsx::ElisionMode::kStandard);
      r.speculative = true;
      return r;
    } catch (const tsx::TxAbortException& e) {
      // rolled back by the engine
      r.last_abort = e.cause;
    }
    ctx.set_mode(tsx::ElisionMode::kStandard);
    ++spec_failures;
    if (complete_standard(ctx, lock, r, body, mode)) return r;
    if (params.max_spec_attempts > 0 &&
        spec_failures >= params.max_spec_attempts) {
      // Speculation budget exhausted: stop re-entering it and wait for the
      // standard re-acquisition to succeed.
      for (;;) {
        while (detail::mode_blocked(ctx, lock, mode)) ctx.engine().pause(ctx);
        if (complete_standard(ctx, lock, r, body, mode)) return r;
      }
    }
    detail::backoff(ctx, params, spec_failures);
    // The re-issued store found the lock held (TTAS): spin in lock() on the
    // next iteration and re-enter speculation once the lock is free.
  }
}

template <typename Lock>
RegionResult hle_region(tsx::Ctx& ctx, Lock& lock,
                        support::FunctionRef<void()> body) {
  return hle_region(ctx, lock, RetryParams{}, body);
}

template <typename Lock>
RegionResult rtm_elide_region(tsx::Ctx& ctx, Lock& lock,
                              const RetryParams& params,
                              support::FunctionRef<void()> body,
                              AccessMode mode = AccessMode::kExclusive) {
  auto& eng = ctx.engine();
  RegionResult r;
  int spec_failures = 0;
  for (;;) {
    ++r.attempts;
    const unsigned st = eng.run_transaction(ctx, [&] {
      // Put the lock in the read set and check it does not block this
      // access mode (lock elision via RTM; no illusion of holding the
      // lock). In shared mode only a writer blocks — the speculative reader
      // coexists with real readers.
      if (detail::mode_blocked(ctx, lock, mode)) {
        eng.xabort(ctx, kAbortCodeLockBusy);
      }
      body();
    });
    if (st == tsx::kCommitted) {
      r.speculative = true;
      return r;
    }
    r.last_abort = ctx.last_abort_cause();
    ++spec_failures;
    if (complete_standard(ctx, lock, r, body, mode)) return r;
    if (params.max_spec_attempts > 0 &&
        spec_failures >= params.max_spec_attempts) {
      for (;;) {
        while (detail::mode_blocked(ctx, lock, mode)) eng.pause(ctx);
        if (complete_standard(ctx, lock, r, body, mode)) return r;
      }
    }
    detail::backoff(ctx, params, spec_failures);
    while (detail::mode_blocked(ctx, lock, mode)) eng.pause(ctx);
  }
}

template <typename Lock>
RegionResult rtm_elide_region(tsx::Ctx& ctx, Lock& lock,
                              support::FunctionRef<void()> body) {
  return rtm_elide_region(ctx, lock, RetryParams{}, body);
}

}  // namespace elision::locks
