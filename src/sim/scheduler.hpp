// Deterministic virtual-time scheduler for simulated threads.
//
// Each logical thread of the simulated machine is a fiber with a virtual
// clock measured in CPU cycles. The scheduler always resumes the runnable
// thread with the smallest clock (ties broken by thread id), which makes the
// interleaving of the simulated parallel execution deterministic while
// faithfully modeling true concurrency: clocks advance independently, so
// non-conflicting work overlaps in virtual time.
//
// Hot-path layout: the tick path (advance + maybe_yield) runs once per
// simulated memory access, tens of millions of times per benchmark point, so
// its state is kept flat. Per-tid clocks (finished threads hold a max-uint64
// sentinel) live in a ReadyQueue — a flat arity-16 tournament tree whose
// cached (min, argmin) levels advance() repairs with two short contiguous
// scans and maybe_yield() reads from the root in O(1), instead of the O(N)
// mispredict-heavy sweep per access that made big simulated machines
// quadratic. The hyperthreading multiplier is a per-core value maintained
// at spawn/finish instead of an O(threads) sibling scan per advance.
//
// Usage:
//   Scheduler sched(config);
//   sched.spawn([&](SimThread& t) { ... t.advance(c); t.maybe_yield(); ... });
//   sched.run_for(config.cycles(0.010));   // 10 simulated milliseconds
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/machine_config.hpp"
#include "sim/ready_queue.hpp"
#include "support/inline.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace elision::sim {

class Scheduler;

// One logical thread of the simulated machine. Workload code receives a
// reference and calls advance()/maybe_yield() (usually indirectly, through
// the tsx shared-memory API).
class SimThread {
 public:
  SimThread(Scheduler& sched, int tid, std::uint64_t seed,
            std::function<void(SimThread&)> body, std::size_t stack_bytes);

  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  int tid() const { return tid_; }
  std::uint64_t now() const { return vclock_; }
  bool finished() const { return finished_; }
  Scheduler& scheduler() { return sched_; }
  support::Xoshiro256& rng() { return rng_; }

  // Advances this thread's virtual clock by `cycles` scaled by the
  // hyperthreading model (a live sibling slows both siblings down),
  // saturating at the largest live clock instead of wrapping past the
  // finished sentinel. Defined below Scheduler (touches its flat clock
  // array).
  ELISION_ALWAYS_INLINE void advance(std::uint64_t cycles);

  // Yields if this thread has run ahead of the earliest runnable thread by
  // more than the configured slack. Defined below Scheduler.
  ELISION_ALWAYS_INLINE void maybe_yield();

  // Unconditionally yields to the scheduler.
  void yield();

  // Convenience: advance then maybe_yield. This is the hook the shared-memory
  // layer calls once per simulated memory access — and therefore the
  // perturbation point of the schedule-exploration stress subsystem
  // (src/stress): with PerturbConfig enabled, a random extra delay may be
  // injected here before the yield decision.
  ELISION_ALWAYS_INLINE void tick(std::uint64_t cycles) {
    advance(cycles);
    if (sched_perturb_enabled_) maybe_perturb();
    maybe_yield();
  }

  // True once the scheduler's virtual deadline has passed; benchmark loops
  // exit at the next operation boundary.
  bool stop_requested() const;

  // Slot for the TSX layer to attach its per-thread transaction context.
  void* user_data = nullptr;

 private:
  friend class Scheduler;
  static void entry(void* self);

  // Slow path of tick(): draws from the perturbation RNG and, budget
  // permitting, jumps this thread's clock forward by a random delay.
  void maybe_perturb();

  // Saturating slow path of advance(): full-range SMT scaling with overflow
  // checks on both the double->uint64 conversion and the clock addition.
  ELISION_NOINLINE void advance_slow(std::uint64_t cycles);

  Scheduler& sched_;
  const int tid_;
  const unsigned core_;  // tid % n_cores, fixed at spawn
  std::uint64_t vclock_ = 0;
  bool finished_ = false;
  const bool sched_perturb_enabled_;
  support::Xoshiro256 rng_;
  support::Xoshiro256 perturb_rng_;
  std::function<void(SimThread&)> body_;
  Fiber fiber_;
};

class Scheduler {
 public:
  explicit Scheduler(MachineConfig config = {});
  ~Scheduler();

  const MachineConfig& config() const { return config_; }

  // Creates a logical thread. Must be called before run()/run_for().
  SimThread& spawn(std::function<void(SimThread&)> body);

  // Runs until every thread finishes.
  void run();

  // Sets the virtual deadline (threads observe stop_requested() once their
  // clock passes it), then runs until every thread finishes.
  void run_for(std::uint64_t deadline_cycles);

  std::size_t thread_count() const { return threads_.size(); }
  SimThread& thread(std::size_t i) { return *threads_[i]; }

  // Largest virtual clock reached by any thread: the simulated wall time.
  // Maintained incrementally (clocks are monotonic), so this is O(1) rather
  // than a rescan of every thread. Under switch-bound batching the running
  // thread folds its clock into max_clock_ only at switch points, so account
  // for it here explicitly.
  std::uint64_t elapsed_cycles() const {
    if (current_ != nullptr && current_->vclock_ > max_clock_) {
      return current_->vclock_;
    }
    return max_clock_;
  }

  std::uint64_t deadline() const { return deadline_; }
  std::uint64_t switch_count() const { return switches_; }

  // Perturbations injected so far (see PerturbConfig). The stress driver
  // reads this after a failing run to seed budget minimization.
  std::uint64_t perturb_points_used() const { return perturb_points_; }

  // Consumes one unit of the perturbation budget; false when exhausted.
  bool consume_perturb_point() {
    if (config_.perturb.max_points != 0 &&
        perturb_points_ >= config_.perturb.max_points) {
      return false;
    }
    ++perturb_points_;
    return true;
  }

  // The thread currently executing, or nullptr when the host context runs.
  SimThread* current() { return current_; }

  // Smallest clock among runnable threads (max uint64 if none). Finished
  // threads hold the sentinel in the ready queue, so this is the root read —
  // plus the running thread, whose slot is parked at the sentinel while
  // switch-bound batching is on.
  std::uint64_t min_runnable_clock() const {
    const std::uint64_t m = ready_.min_clock();
    if (current_ != nullptr && current_->vclock_ < m) return current_->vclock_;
    return m;
  }

  // Times the cached preemption bound was recomputed (one per context switch
  // under batching; 0 with batching off). Exported as fast-path telemetry.
  std::uint64_t switch_bound_recomputes() const { return bound_recomputes_; }

  // --- internal, used by SimThread ---
  void yield_from(SimThread& t);
  [[noreturn]] void finish_from(SimThread& t);
  // Per-access cost multiplier of a *live* thread under the hyperthreading
  // model: smt_slowdown while another live thread shares t's core, else 1.0.
  double smt_multiplier(const SimThread& t) const {
    return core_penalty_[t.core_];
  }

 private:
  friend class SimThread;

  static constexpr std::uint64_t kFinishedClock = ReadyQueue::kFinishedClock;

  SimThread* pick_next() const;  // earliest-clock runnable thread
  // Counted switch directly to a known next thread (the fused tick path has
  // already computed the argmin; skips the second scan of yield_from).
  void switch_counted(SimThread& t, SimThread& next) {
    // Counted unconditionally (mirrors yield_from) so that max_switches also
    // catches a thread yielding forever without advancing its clock.
    ++switches_;
    ELISION_CHECK_MSG(
        config_.max_switches == 0 || switches_ < config_.max_switches,
        "simulation exceeded max_switches (livelock?)");
    current_ = &next;
    Fiber::switch_to(t.fiber_, next.fiber_);
  }
  void switch_from_host();
  // Batching slow path of maybe_yield(): the running thread crossed the
  // cached preemption bound. Re-enters its clock into the ready queue, picks
  // the new argmin, parks that thread's slot, refreshes the bound and
  // switches. Out-of-line: it runs once per context switch, not per access.
  ELISION_NOINLINE void yield_over_bound(SimThread& t);
  // Caches the preemption bound the incoming thread will run against: min
  // clock of everyone else (its own slot is parked at the sentinel) plus the
  // yield slack, saturated so a lone thread (sentinel min) never yields.
  void recompute_bound() {
    const std::uint64_t m = ready_.min_clock();
    switch_bound_ = m >= kFinishedClock - config_.yield_slack_cycles
                        ? kFinishedClock
                        : m + config_.yield_slack_cycles;
    ++bound_recomputes_;
  }
  // Parks `next`'s ready-queue slot at the sentinel (its live clock now
  // lives only in vclock_) and refreshes the cached bound.
  void park_and_bound(SimThread& next) {
    ready_.set(next.tid_, kFinishedClock);
    recompute_bound();
  }
  // Batching context switch: folds the outgoing thread's clock back into the
  // ready queue and the running max, parks the incoming thread and refreshes
  // the bound — one fused queue repair instead of two full set() rescans.
  void exchange_and_bound(SimThread& out, SimThread& next) {
    ready_.exchange(out.tid_, out.vclock_, next.tid_);
    if (out.vclock_ > max_clock_) max_clock_ = out.vclock_;
    recompute_bound();
  }
  // Recomputes core_penalty_[core] from core_active_[core] (spawn/finish).
  void update_core_penalty(unsigned core) {
    core_penalty_[core] =
        (config_.smt_per_core > 1 && core_active_[core] >= 2)
            ? config_.smt_slowdown
            : 1.0;
  }

  MachineConfig config_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  // ready_.clock_of(tid) mirrors threads_[tid]->vclock_ while the thread is
  // runnable and holds kFinishedClock once it finishes; the tournament tree
  // over those clocks is the single min/argmin implementation every consumer
  // (tick path, pick_next, min_runnable_clock) reads. Under switch-bound
  // batching the *running* thread's slot is additionally parked at the
  // sentinel, so min_clock() is the min over the other runnable threads —
  // a value that cannot change while the current thread runs, which is what
  // makes caching switch_bound_ across accesses exact.
  ReadyQueue ready_;
  // Cached preemption bound of the running thread (batching only): min
  // other-thread clock + yield slack, recomputed at every context switch.
  std::uint64_t switch_bound_ = kFinishedClock;
  std::uint64_t bound_recomputes_ = 0;
  // config_.batch_switch_bound, copied next to the tick-path state.
  bool batch_ = true;
  // Running max of every clock ever set: elapsed_cycles() without a rescan.
  std::uint64_t max_clock_ = 0;
  // Largest `cycles` advance() may scale without any overflow risk: with
  // cycles below this bound the SMT-scaled delta stays under 2^53 and a
  // clock below 2^63 cannot reach the finished sentinel, so the fast path
  // needs no saturation checks at all. Computed once from smt_slowdown.
  std::uint64_t advance_fast_cycles_ = 0;
  // Live threads per core / resulting advance() multiplier, maintained at
  // spawn and finish so the per-tick cost is one array load.
  std::vector<unsigned> core_active_;
  std::vector<double> core_penalty_;
  Fiber host_;
  SimThread* current_ = nullptr;
  std::uint64_t deadline_ = UINT64_MAX;
  std::uint64_t switches_ = 0;
  std::uint64_t perturb_points_ = 0;
  std::size_t runnable_ = 0;
  bool running_ = false;
};

// --- SimThread tick-path inlines (need the Scheduler definition) ---

ELISION_ALWAYS_INLINE void SimThread::advance(std::uint64_t cycles) {
  // Saturate instead of wrapping: casting a double >= 2^64 to uint64_t is
  // undefined, and a wrapped clock near kFinishedClock (reachable through a
  // perturbation jump) would re-sort this thread to the front of the
  // schedule; a live thread also must never hold the finished sentinel
  // itself. Per-access cycle counts sit far below the precomputed bound and
  // live clocks far below 2^63, so the two checks cost two always-predicted
  // integer branches and the fast path is the seed's unchecked arithmetic
  // (the multiplier is exactly 1.0 with no live sibling, and the double
  // round-trip is exact for per-access cycle counts, so this is
  // bit-identical to the unscaled addition in that case).
  if (cycles >= sched_.advance_fast_cycles_ ||
      static_cast<std::int64_t>(vclock_) < 0) [[unlikely]] {
    advance_slow(cycles);
  } else {
    vclock_ += static_cast<std::uint64_t>(
        static_cast<double>(cycles) * sched_.core_penalty_[core_]);
  }
  if (sched_.batch_) return;  // slot is parked; maybe_yield compares against
                              // the cached switch bound instead
  sched_.ready_.set(tid_, vclock_);
  if (vclock_ > sched_.max_clock_) sched_.max_clock_ = vclock_;
}

ELISION_ALWAYS_INLINE void SimThread::maybe_yield() {
  if (sched_.batch_) {
    // One compare against the bound cached at switch-in. Equivalent to the
    // legacy condition below: the bound is min-over-others + slack, and
    // `vclock_ > min(vclock_, others) + slack` can only fire via the others
    // term (a clock never exceeds itself plus a non-negative slack).
    if (vclock_ > sched_.switch_bound_) [[unlikely]] {
      sched_.yield_over_bound(*this);
    }
    return;
  }
  // The ready queue hands back the minimum runnable clock (the yield
  // condition) and its lowest-tid holder (the thread to resume) — the same
  // (min, argmin) the old fused sweep produced.
  const ReadyQueue::Entry best = sched_.ready_.min_entry();
  if (vclock_ > best.clock + sched_.config_.yield_slack_cycles) {
    // best.clock < vclock_ and clock_of(tid_) == vclock_, so best.tid is
    // never this thread.
    sched_.switch_counted(
        *this, *sched_.threads_[static_cast<std::size_t>(best.tid)]);
  }
}

inline bool SimThread::stop_requested() const {
  return vclock_ >= sched_.deadline_;
}

}  // namespace elision::sim
