// Figure 3.1 — the HLE avalanche effect: speedup over the standard lock,
// average execution attempts per critical section, and the fraction of
// operations completing non-speculatively, as a function of tree size.
// 8 threads, 10% insert / 10% delete / 80% lookup.
//
// Expected shape: the HLE'd MCS lock executes virtually everything
// non-speculatively (~2 attempts/op, no speedup); TTAS recovers (2-3.5
// attempts at high conflict, speculative fraction growing with tree size).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace elision;
  using namespace elision::bench;
  harness::banner("Figure 3.1",
                  "Avalanche effect, 8 threads, 10i/10d/80l.\n"
                  "Expect: MCS-HLE ~fully non-speculative with ~2 "
                  "attempts/op and ~1x speedup; TTAS-HLE recovers "
                  "(non-spec fraction well below 1, real speedup).");

  harness::Table table({"lock", "tree-size", "speedup-vs-std",
                        "attempts-per-op", "nonspec-frac",
                        "arrival-lock-held-frac"});
  for (const LockSel lock : {LockSel::kTtas, LockSel::kMcs}) {
    for (const std::size_t size : kTreeSizes) {
      RbPoint p;
      p.size = size;
      p.update_pct = 20;
      p.lock = lock;

      p.scheme = locks::ElisionPolicy::standard();
      const auto std_stats = run_rb_point(p);

      double arrival_held = 0.0;
      p.scheme = locks::ElisionPolicy::hle();
      p.arrival_held_frac = &arrival_held;
      const auto hle_stats = run_rb_point(p);

      table.add_row({lock_sel_name(lock), harness::fmt_int(size),
                     harness::fmt(hle_stats.throughput() /
                                  std_stats.throughput(), 2),
                     harness::fmt(hle_stats.attempts_per_op(), 2),
                     harness::fmt(hle_stats.nonspec_fraction(), 3),
                     lock == LockSel::kTtas
                         ? harness::fmt(arrival_held, 3)
                         : std::string("-")});
    }
  }
  table.print();
  return 0;
}
