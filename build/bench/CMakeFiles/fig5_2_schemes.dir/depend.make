# Empty dependencies file for fig5_2_schemes.
# This may be replaced when dependencies are built.
