#include "harness/report.hpp"

#include <algorithm>
#include <cinttypes>

namespace elision::harness {

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s  ", static_cast<int>(widths[c]),
                   row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c > 0 ? "," : "", row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_int(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

void banner(const char* experiment, const char* description) {
  std::printf("\n===== %s =====\n%s\n\n", experiment, description);
}

void print_episodes(const std::vector<tsx::AvalancheEpisode>& episodes,
                    std::FILE* out) {
  if (episodes.empty()) return;
  Table t({"episode", "trigger", "start", "cycles", "victims", "aborts",
           "serialized"});
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    const auto& ep = episodes[i];
    t.add_row({fmt_int(i), fmt_int(static_cast<std::uint64_t>(
                               ep.trigger_thread)),
               fmt_int(ep.start), fmt_int(ep.duration()),
               fmt_int(static_cast<std::uint64_t>(ep.victim_count())),
               fmt_int(ep.aborts), fmt_int(ep.serialized_ops)});
  }
  t.print(out);
}

void print_telemetry_summary(const RunStats& stats, std::FILE* out) {
  if (stats.telemetry_events == 0) return;
  std::uint64_t victims = 0, serialized_cycles = 0;
  for (const auto& ep : stats.episodes) {
    victims += static_cast<std::uint64_t>(ep.victim_count());
    serialized_cycles += ep.duration();
  }
  std::fprintf(out,
               "telemetry: %" PRIu64 " events (%" PRIu64
               " dropped), %zu avalanche episodes, %" PRIu64
               " victims, %" PRIu64 " serialized cycles\n",
               stats.telemetry_events, stats.telemetry_dropped,
               stats.episodes.size(), victims, serialized_cycles);
  if (stats.rejoin_hist.samples() > 0) {
    std::fprintf(out,
                 "scm rejoin: %" PRIu64 " serializations, mean %.0f cycles, "
                 "max %" PRIu64 " cycles\n",
                 stats.rejoin_hist.samples(), stats.rejoin_hist.mean(),
                 stats.rejoin_hist.max());
  }
}

}  // namespace elision::harness
