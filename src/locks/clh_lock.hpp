// CLH queue lock: the standard algorithm (paper Algorithm 6) and the
// HLE-adjusted variant (Algorithm 7, Ch. 6).
//
// A standard CLH release writes the *node's* locked flag, not the queue
// tail the XACQUIRE elided, so it cannot commit an elided acquisition. The
// adjustment first attempts CAS(tail, myNode, pred), erasing the node from
// the queue; in a speculative (or solo) run this always succeeds and
// restores the tail (Theorem 2). On the CAS-success path the thread keeps
// its node (it was never exposed); on the failure path it releases normally
// and recycles its predecessor's node.
#pragma once

#include <array>
#include <cstdint>

#include "support/align.hpp"
#include "support/check.hpp"
#include "tsx/config.hpp"
#include "tsx/shared.hpp"

namespace elision::locks {

template <bool kAdjusted>
class BasicClhLock {
 public:
  static constexpr const char* kName = kAdjusted ? "CLH-adj" : "CLH";
  static constexpr bool kIsFair = true;
  static constexpr int kMaxThreads = tsx::kMaxThreads;

  BasicClhLock() {
    tail_.value.unsafe_set(&nodes_[kMaxThreads]);  // dummy, unlocked
    for (int i = 0; i < kMaxThreads; ++i) my_[i] = &nodes_[i];
  }

  void lock(tsx::Ctx& ctx) {
    ELISION_CHECK_MSG(ctx.id() >= 0 && ctx.id() < kMaxThreads,
                      "thread id outside the CLH lock's node array");
    const auto id = static_cast<std::size_t>(ctx.id());
    QNode* my = my_[id];
    my->locked.store(ctx, 1);  // before the XACQUIRE: non-transactional
    QNode* pred = tail_.value.xacquire_exchange(ctx, my);
    pred_[id] = pred;
    while (pred->locked.load(ctx) != 0) ctx.engine().pause(ctx);
  }

  void unlock(tsx::Ctx& ctx) {
    const auto id = static_cast<std::size_t>(ctx.id());
    QNode* my = my_[id];
    QNode* pred = pred_[id];
    if constexpr (kAdjusted) {
      if (tail_.value.xrelease_compare_exchange(ctx, my, pred)) {
        return;  // presence erased; we keep our node
      }
      my->locked.store(ctx, 0);
      my_[id] = pred;
    } else {
      // Algorithm 6 under HLE: releases a different address — never commits.
      my->locked.xrelease_store(ctx, 0);
      my_[id] = pred;
    }
  }

  bool is_held(tsx::Ctx& ctx) {
    QNode* tail = tail_.value.load(ctx);
    return tail->locked.load(ctx) != 0;
  }

  bool reissue_acquire_standard(tsx::Ctx& ctx) {
    lock(ctx);
    return true;
  }

 private:
  struct alignas(support::kCacheLineBytes) QNode {
    tsx::Shared<std::uint64_t> locked;
  };

  support::CacheAligned<tsx::Shared<QNode*>> tail_;
  std::array<QNode, kMaxThreads + 1> nodes_;  // +1: initial dummy
  std::array<QNode*, kMaxThreads> my_{};
  std::array<QNode*, kMaxThreads> pred_{};
};

using ClhLock = BasicClhLock<false>;
using ClhLockAdjusted = BasicClhLock<true>;

}  // namespace elision::locks
