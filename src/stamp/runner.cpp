#include "stamp/common.hpp"

#include "support/check.hpp"
#include "support/parallel.hpp"

namespace elision::stamp {

StampResult run_app(const std::string& name, const StampConfig& cfg) {
  if (name == "genome") return run_genome(cfg);
  if (name == "intruder") return run_intruder(cfg);
  if (name == "kmeans_high") return run_kmeans(cfg, /*high_contention=*/true);
  if (name == "kmeans_low") return run_kmeans(cfg, /*high_contention=*/false);
  if (name == "ssca2") return run_ssca2(cfg);
  if (name == "vacation_high") {
    return run_vacation(cfg, /*high_contention=*/true);
  }
  if (name == "vacation_low") {
    return run_vacation(cfg, /*high_contention=*/false);
  }
  if (name == "labyrinth") return run_labyrinth(cfg);
  ELISION_CHECK_MSG(false, "unknown STAMP app");
  return {};
}

std::vector<StampResult> run_apps(const std::vector<StampJob>& jobs,
                                  int host_threads) {
  // Each job builds its own Scheduler+Engine, so the runs are independent;
  // every result lands in its job's slot and the vector comes back in job
  // order regardless of completion order.
  std::vector<StampResult> results(jobs.size());
  support::parallel_for_each(
      jobs.size(),
      [&](std::size_t j) { results[j] = run_app(jobs[j].app, jobs[j].cfg); },
      host_threads);
  return results;
}

}  // namespace elision::stamp
