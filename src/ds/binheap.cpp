#include "ds/binheap.hpp"

#include "support/check.hpp"

namespace elision::ds {

BinHeap::BinHeap(std::size_t capacity) : slots_(capacity) {}

void BinHeap::sift_up(tsx::Ctx& ctx, std::uint64_t i) {
  while (i > 0) {
    const std::uint64_t parent = (i - 1) / 2;
    const std::uint64_t pv = slots_[parent].load(ctx);
    const std::uint64_t iv = slots_[i].load(ctx);
    if (pv <= iv) break;
    slots_[parent].store(ctx, iv);
    slots_[i].store(ctx, pv);
    i = parent;
  }
}

void BinHeap::sift_down(tsx::Ctx& ctx, std::uint64_t i, std::uint64_t n) {
  for (;;) {
    const std::uint64_t l = 2 * i + 1, r = 2 * i + 2;
    std::uint64_t smallest = i;
    std::uint64_t sv = slots_[i].load(ctx);
    if (l < n) {
      const std::uint64_t lv = slots_[l].load(ctx);
      if (lv < sv) {
        smallest = l;
        sv = lv;
      }
    }
    if (r < n) {
      const std::uint64_t rv = slots_[r].load(ctx);
      if (rv < sv) {
        smallest = r;
        sv = rv;
      }
    }
    if (smallest == i) break;
    const std::uint64_t iv = slots_[i].load(ctx);
    slots_[i].store(ctx, sv);
    slots_[smallest].store(ctx, iv);
    i = smallest;
  }
}

bool BinHeap::push(tsx::Ctx& ctx, std::uint64_t key) {
  const std::uint64_t n = size_.value.load(ctx);
  if (n >= slots_.size()) return false;
  slots_[n].store(ctx, key);
  size_.value.store(ctx, n + 1);
  sift_up(ctx, n);
  return true;
}

bool BinHeap::pop_min(tsx::Ctx& ctx, std::uint64_t* key) {
  const std::uint64_t n = size_.value.load(ctx);
  if (n == 0) return false;
  *key = slots_[0].load(ctx);
  const std::uint64_t last = slots_[n - 1].load(ctx);
  size_.value.store(ctx, n - 1);
  if (n > 1) {
    slots_[0].store(ctx, last);
    sift_down(ctx, 0, n - 1);
  }
  return true;
}

bool BinHeap::peek_min(tsx::Ctx& ctx, std::uint64_t* key) {
  if (size_.value.load(ctx) == 0) return false;
  *key = slots_[0].load(ctx);
  return true;
}

bool BinHeap::unsafe_push(std::uint64_t key) {
  const std::uint64_t n = size_.value.unsafe_get();
  if (n >= slots_.size()) return false;
  slots_[n].unsafe_set(key);
  size_.value.unsafe_set(n + 1);
  // Raw sift-up.
  std::uint64_t i = n;
  while (i > 0) {
    const std::uint64_t parent = (i - 1) / 2;
    if (slots_[parent].unsafe_get() <= slots_[i].unsafe_get()) break;
    const std::uint64_t tmp = slots_[parent].unsafe_get();
    slots_[parent].unsafe_set(slots_[i].unsafe_get());
    slots_[i].unsafe_set(tmp);
    i = parent;
  }
  return true;
}

bool BinHeap::unsafe_validate(std::string* why) const {
  const std::uint64_t n = size_.value.unsafe_get();
  if (n > slots_.size()) {
    if (why != nullptr) *why = "size exceeds capacity";
    return false;
  }
  for (std::uint64_t i = 1; i < n; ++i) {
    const std::uint64_t parent = (i - 1) / 2;
    if (slots_[parent].unsafe_get() > slots_[i].unsafe_get()) {
      if (why != nullptr) *why = "heap property violated";
      return false;
    }
  }
  return true;
}

}  // namespace elision::ds
