// Chained hash table over simulated shared memory (Sec. 5.2's second data
// structure benchmark; also the substrate for several STAMP kernels).
// Caller provides serialization (global lock / elision scheme).
#pragma once

#include <vector>
#include <cstdint>
#include <string>
#include <vector>

#include "support/align.hpp"
#include "tsx/config.hpp"
#include "tsx/shared.hpp"

namespace elision::ds {

class HashTable {
 public:
  // Free nodes are distributed over `n_threads` thread caches.
  // `n_threads` spreads the initial nodes over that many per-thread
  // caches; `max_threads` sizes the free-list array itself (see
  // n_free_lists_ below — the default preserves the historical 64-thread
  // pool layout).
  HashTable(std::size_t buckets, std::size_t capacity, int n_threads = 8,
            int max_threads = tsx::kDefaultPoolThreads);

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  // Inserts key->value; returns false if the key already exists.
  bool insert(tsx::Ctx& ctx, std::uint64_t key, std::uint64_t value);
  // Removes key; returns false if absent.
  bool erase(tsx::Ctx& ctx, std::uint64_t key);
  // Returns true and sets *value if present.
  bool lookup(tsx::Ctx& ctx, std::uint64_t key, std::uint64_t* value);
  bool contains(tsx::Ctx& ctx, std::uint64_t key) {
    std::uint64_t v;
    return lookup(ctx, key, &v);
  }
  // Adds delta to key's value, inserting (with value=delta) if absent.
  // Returns the new value.
  std::uint64_t upsert_add(tsx::Ctx& ctx, std::uint64_t key,
                           std::uint64_t delta);
  // Sets key's value, inserting if absent. Returns true if a new node was
  // inserted, false if an existing one was assigned. Unlike erase+insert,
  // assignment touches a single value word, so the transactional write set
  // stays minimal for the common update-in-place path.
  bool insert_or_assign(tsx::Ctx& ctx, std::uint64_t key, std::uint64_t value);

  std::size_t bucket_count() const { return buckets_.size(); }

  // --- setup/verification ---
  bool unsafe_insert(std::uint64_t key, std::uint64_t value);
  std::size_t unsafe_size() const;
  bool unsafe_lookup(std::uint64_t key, std::uint64_t* value) const;

  // Validates structural invariants (no simulated threads running): every
  // chained node lives in the bucket its key hashes to, keys are unique,
  // all node pointers point into the arena, and every arena node sits on
  // exactly one list — a bucket chain or a free list. On failure returns
  // false and, if `why` is non-null, a description of the broken invariant.
  bool unsafe_validate(std::string* why = nullptr) const;

 private:
  struct alignas(support::kCacheLineBytes) Node {
    tsx::Shared<std::uint64_t> key;
    tsx::Shared<std::uint64_t> value;
    tsx::Shared<Node*> next;
  };

  static std::uint64_t hash(std::uint64_t key) {
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  Node* alloc(tsx::Ctx& ctx);
  void free_node(tsx::Ctx& ctx, Node* n);

  std::vector<Node> arena_;
  tsx::SharedArray<Node*> buckets_;
  // Per-thread free lists (thread-caching allocator; see RbTree). Slot 64 is
  // the setup/global list.
  // One free list per supported simulated thread + one setup/global list
  // (slot n_free_lists_ - 1). Sized at construction: the alloc() fallback
  // scan performs a simulated load per list, so the count is part of the
  // simulated workload and defaults to the historical 64-thread sizing
  // (tsx::kDefaultPoolThreads) rather than tracking kMaxThreads.
  const int n_free_lists_;
  std::vector<support::CacheAligned<tsx::Shared<Node*>>> free_;
};

}  // namespace elision::ds
