// AdaptiveController: the per-lock online mode controller behind
// `policy=adaptive` (ROADMAP item 2; Fissile Locks, arXiv 2003.05025, is the
// blueprint for composing a fast speculative path with a scalable fallback
// and migrating between them under contention).
//
// No static scheme wins everywhere (Ch. 5): plain HLE wins uncontended,
// SCM-style conflict management wins under conflict, and not eliding at all
// wins under avalanche storms. The controller watches the per-region
// feedback the dispatch layer already produces (RegionResult: attempts and
// how the region completed) and migrates the lock along a mode ladder
// ordered from most to least speculative:
//
//   kHle  ->  kHleScm  ->  kHleGroupedScm  ->  kStandard
//
// Decisions are windowed with hysteresis: every `window` completed regions
// the controller closes a window, computes the windowed abort rate (failed
// executions / all executions, in percent), and — if no migration happened
// within the last `dwell` windows — escalates one step when the rate is at
// least `up` percent or de-escalates one step when it is at most `down`
// percent. The dwell keeps a phase boundary from thrashing the mode.
//
// kStandard never speculates, so its abort rate is identically zero and
// carries no information about whether the storm has passed. Leaving
// kStandard is therefore a *probe*: after holding for `dwell * backoff`
// windows the controller steps down one mode and watches the next window.
// If the rate immediately comes back at `up` or more, the probe failed: the
// controller re-escalates at once (no dwell — the window burned by the probe
// is the cost) and doubles the backoff, so probes become geometrically rarer
// while a storm lasts. A surviving probe resets the backoff to 1.
//
// The controller is engine-free on purpose: it consumes plain numbers
// (virtual timestamp, speculative flag, attempt count), so unit tests can
// drive it with synthetic feeds and any dispatch layer can host it. Within
// one simulation all regions complete on the single host thread running the
// fiber scheduler, so the controller needs no synchronization and its
// decisions are deterministic.
//
// Every migration is recorded in a bounded decision trace
// (tools/trace_dump prints it; docs/adaptive.md documents the format).
#pragma once

#include <cstdint>
#include <vector>

namespace elision::locks {

// The mode ladder, most speculative first. The numeric order is the
// escalation order.
enum class AdaptiveMode : std::uint8_t {
  kHle = 0,
  kHleScm = 1,
  kHleGroupedScm = 2,
  kStandard = 3,
};

inline constexpr int kAdaptiveModeCount = 4;

const char* adaptive_mode_name(AdaptiveMode m);

// Tuning knobs of the controller, carried by ElisionPolicy and spelled in
// the policy spec grammar as `adaptive:window=N:up=N:down=N:dwell=N`.
struct AdaptiveParams {
  // Completed regions per decision window. Clamped to >= 1 by the
  // controller.
  int window = 32;
  // Escalate (toward kStandard) when the windowed abort rate, in percent,
  // is >= this. 60% means "most executions fail" (attempts/region >= 2.5):
  // high enough that plain HLE's healthy-contention churn (~50% on the
  // contended TTAS points) does not trigger it, low enough that an
  // avalanche (80%+) does.
  int up_pct = 60;
  // De-escalate (toward kHle) when the windowed abort rate is <= this.
  // 15% is roughly attempts/region <= 1.18 — conflict management has
  // nothing left to manage.
  int down_pct = 15;
  // Windows a fresh mode is held before the next migration may fire.
  int dwell = 2;

  friend bool operator==(const AdaptiveParams&,
                         const AdaptiveParams&) = default;
};

// One recorded migration: when it fired, the edge taken, the windowed abort
// rate that triggered it, and why.
struct AdaptiveDecision {
  std::uint64_t at = 0;  // virtual time of the region that closed the window
  AdaptiveMode from = AdaptiveMode::kHle;
  AdaptiveMode to = AdaptiveMode::kHle;
  int abort_rate_pct = 0;
  // "escalate", "de-escalate", "probe" (left kStandard speculatively), or
  // "probe-failed" (immediate re-escalation after a failed probe).
  const char* reason = "";
};

class AdaptiveController {
 public:
  AdaptiveController() = default;
  explicit AdaptiveController(const AdaptiveParams& params);

  AdaptiveMode mode() const { return mode_; }

  // Feeds one completed region into the current window: its completion
  // timestamp (virtual cycles), whether it committed speculatively, and how
  // many executions it took (RegionResult::attempts; the final one
  // succeeded, every earlier one aborted or failed to acquire).
  void on_region(std::uint64_t now, bool speculative, int attempts);

  // Bounded migration trace (oldest first). Migrations past the bound are
  // counted in decisions_dropped() instead of stored.
  const std::vector<AdaptiveDecision>& decisions() const {
    return decisions_;
  }
  std::uint64_t decisions_dropped() const { return decisions_dropped_; }
  std::uint64_t total_migrations() const {
    return decisions_.size() + decisions_dropped_;
  }
  // Decision windows closed so far (test / introspection hook).
  std::uint64_t windows_closed() const { return windows_closed_; }
  int probe_backoff() const { return probe_backoff_; }

  static constexpr std::size_t kMaxStoredDecisions = 256;

 private:
  void close_window(std::uint64_t now);
  void migrate(std::uint64_t now, AdaptiveMode to, int rate_pct,
               const char* reason);

  AdaptiveParams p_;
  AdaptiveMode mode_ = AdaptiveMode::kHle;

  // Current-window accumulators.
  int window_regions_ = 0;
  std::uint64_t window_attempts_ = 0;
  std::uint64_t window_failures_ = 0;

  // Hysteresis state.
  std::uint64_t windows_closed_ = 0;
  std::uint64_t windows_since_migration_ = 0;  // saturating count since last
  bool migrated_once_ = false;
  bool just_probed_ = false;
  int probe_backoff_ = 1;
  static constexpr int kMaxProbeBackoff = 1024;

  std::vector<AdaptiveDecision> decisions_;
  std::uint64_t decisions_dropped_ = 0;
};

}  // namespace elision::locks
