# Empty dependencies file for elision_tsx.
# This may be replaced when dependencies are built.
