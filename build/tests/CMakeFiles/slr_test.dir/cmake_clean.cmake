file(REMOVE_RECURSE
  "CMakeFiles/slr_test.dir/slr_test.cpp.o"
  "CMakeFiles/slr_test.dir/slr_test.cpp.o.d"
  "slr_test"
  "slr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
