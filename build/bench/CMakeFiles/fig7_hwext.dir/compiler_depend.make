# Empty compiler generated dependencies file for fig7_hwext.
# This may be replaced when dependencies are built.
