
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ds/binheap.cpp" "src/ds/CMakeFiles/elision_ds.dir/binheap.cpp.o" "gcc" "src/ds/CMakeFiles/elision_ds.dir/binheap.cpp.o.d"
  "/root/repo/src/ds/hashtable.cpp" "src/ds/CMakeFiles/elision_ds.dir/hashtable.cpp.o" "gcc" "src/ds/CMakeFiles/elision_ds.dir/hashtable.cpp.o.d"
  "/root/repo/src/ds/rbtree.cpp" "src/ds/CMakeFiles/elision_ds.dir/rbtree.cpp.o" "gcc" "src/ds/CMakeFiles/elision_ds.dir/rbtree.cpp.o.d"
  "/root/repo/src/ds/skiplist.cpp" "src/ds/CMakeFiles/elision_ds.dir/skiplist.cpp.o" "gcc" "src/ds/CMakeFiles/elision_ds.dir/skiplist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tsx/CMakeFiles/elision_tsx.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/elision_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
