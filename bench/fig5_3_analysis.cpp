// Figure 5.3 — abort analysis under the software-assisted schemes at high
// contention (50% insert / 50% delete): execution attempts per operation
// and the fraction of non-speculative completions.
//
// Expected shape: HLE-SCM converges to ~1 attempt as the tree grows and
// completes (nearly) everything speculatively, unlike plain HLE on MCS;
// on TTAS, HLE-SCM needs the fewest attempts at the contended end.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace elision;
  using namespace elision::bench;
  harness::banner("Figure 5.3",
                  "Impact of aborts under the software-assisted schemes "
                  "(8 threads, 50i/50d).\n"
                  "Expect: HLE-SCM attempts/op converge to ~1 with tree "
                  "size, non-spec fraction ~0; HLE-MCS stays at ~2 "
                  "attempts and ~1 non-spec.");
  std::printf("\n-- MCS: HLE vs HLE-SCM --\n");
  {
    harness::Table table({"tree-size", "HLE att/op", "HLE nonspec",
                          "HLE-SCM att/op", "HLE-SCM nonspec",
                          "SCM-speedup-vs-HLE"});
    for (const std::size_t size : kTreeSizesSmall) {
      RbPoint p;
      p.size = size;
      p.update_pct = 100;
      p.lock = LockSel::kMcs;
      p.scheme = locks::ElisionPolicy::hle();
      const auto hle = run_rb_point(p);
      p.scheme = locks::ElisionPolicy::hle_scm();
      const auto scm = run_rb_point(p);
      table.add_row({harness::fmt_int(size),
                     harness::fmt(hle.attempts_per_op(), 2),
                     harness::fmt(hle.nonspec_fraction(), 3),
                     harness::fmt(scm.attempts_per_op(), 2),
                     harness::fmt(scm.nonspec_fraction(), 3),
                     harness::fmt(scm.throughput() / hle.throughput(), 2)});
    }
    table.print();
  }
  std::printf("\n-- TTAS: the software-assisted schemes --\n");
  {
    harness::Table table({"tree-size", "scheme", "att/op", "nonspec-frac",
                          "speedup-vs-HLE"});
    for (const std::size_t size : kTreeSizesSmall) {
      RbPoint p;
      p.size = size;
      p.update_pct = 100;
      p.lock = LockSel::kTtas;
      p.scheme = locks::ElisionPolicy::hle();
      const auto hle = run_rb_point(p);
      for (const auto scheme :
           {locks::Scheme::kHleScm, locks::Scheme::kOptSlr,
            locks::Scheme::kOptSlrScm}) {
        p.scheme = locks::ElisionPolicy::from_scheme(scheme);
        const auto s = run_rb_point(p);
        table.add_row({harness::fmt_int(size), locks::scheme_name(scheme),
                       harness::fmt(s.attempts_per_op(), 2),
                       harness::fmt(s.nonspec_fraction(), 3),
                       harness::fmt(s.throughput() / hle.throughput(), 2)});
      }
    }
    table.print();
  }
  return 0;
}
