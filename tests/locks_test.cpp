// Lock library tests: mutual exclusion, fairness, and the Ch. 6
// HLE adjustments of the ticket and CLH locks (Theorems 1 and 2).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "locks/clh_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/policy.hpp"
#include "locks/region.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/ttas_lock.hpp"
#include "tsx/shared.hpp"

namespace elision::locks {
namespace {

using tsx::Ctx;

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

tsx::TsxConfig quiet_tsx() {
  tsx::TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

template <typename Lock>
struct LockTestNames;
template <>
struct LockTestNames<TtasLock> {
  static constexpr const char* name = "TTAS";
};

// ---------------------------------------------------------------------------
// Mutual exclusion (typed across all lock variants)
// ---------------------------------------------------------------------------

template <typename Lock>
class MutexTest : public ::testing::Test {};

using AllLocks = ::testing::Types<TtasLock, McsLock, TicketLock,
                                  TicketLockAdjusted, ClhLock,
                                  ClhLockAdjusted>;
TYPED_TEST_SUITE(MutexTest, AllLocks);

TYPED_TEST(MutexTest, StandardModeMutualExclusion) {
  using Lock = TypeParam;
  Lock lock;
  tsx::Shared<std::uint64_t> counter(0);
  tsx::Shared<std::uint64_t> in_cs(0);
  bool violation = false;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  constexpr int kThreads = 6, kIters = 150;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < kIters; ++k) {
        lock.lock(ctx);
        if (in_cs.load(ctx) != 0) violation = true;
        in_cs.store(ctx, 1);
        counter.store(ctx, counter.load(ctx) + 1);
        ctx.engine().compute(ctx, 20);
        in_cs.store(ctx, 0);
        lock.unlock(ctx);
      }
    });
  }
  sched.run();
  EXPECT_FALSE(violation);
  EXPECT_EQ(counter.unsafe_get(), kThreads * kIters);
}

TYPED_TEST(MutexTest, SoloLockUnlockLeavesNoTrace) {
  // Theorems 1(i)/2(i) applied in a standard solo run: after lock+unlock
  // with no other requesters, a fresh thread can still acquire immediately
  // (and for the adjusted locks the lock words are literally restored —
  // checked indirectly by repeating many times without drift).
  using Lock = TypeParam;
  Lock lock;
  tsx::Shared<std::uint64_t> counter(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    for (int k = 0; k < 300; ++k) {
      lock.lock(ctx);
      counter.store(ctx, counter.load(ctx) + 1);
      lock.unlock(ctx);
      EXPECT_FALSE(lock.is_held(ctx));
    }
  });
  sched.run();
  EXPECT_EQ(counter.unsafe_get(), 300u);
}

TYPED_TEST(MutexTest, IsHeldTracksState) {
  using Lock = TypeParam;
  Lock lock;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    EXPECT_FALSE(lock.is_held(ctx));
    lock.lock(ctx);
    EXPECT_TRUE(lock.is_held(ctx));
    lock.unlock(ctx);
    EXPECT_FALSE(lock.is_held(ctx));
  });
  sched.run();
}

// ---------------------------------------------------------------------------
// Fairness (FIFO) of the queue/ticket locks
// ---------------------------------------------------------------------------

template <typename Lock>
void expect_fifo_order() {
  Lock lock;
  std::vector<int> acquisition_order;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  // Thread 0 takes the lock first and holds it long; the rest arrive at
  // staggered, deterministic times and must acquire in arrival order.
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    lock.lock(ctx);
    acquisition_order.push_back(0);
    ctx.engine().compute(ctx, 50000);
    lock.unlock(ctx);
  });
  for (int i = 1; i < 6; ++i) {
    sched.spawn([&, i](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      ctx.engine().compute(ctx, 1000 * static_cast<std::uint64_t>(i));
      lock.lock(ctx);
      acquisition_order.push_back(i);
      lock.unlock(ctx);
    });
  }
  sched.run();
  EXPECT_EQ(acquisition_order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

// Regression: the per-thread slot arrays (ticket/MCS/CLH) were hard-coded
// to 64 entries while the scheduler's thread cap lived elsewhere; a larger
// simulated machine would have silently corrupted neighbouring memory. The
// arrays are now sized from tsx::kMaxThreads (the single source of truth)
// and lock() bounds-checks the id — so the locks must work, not just
// compile, at exactly the cap.
template <typename Lock>
void expect_correct_at_thread_cap() {
  Lock lock;
  tsx::Shared<std::uint64_t> counter(0);
  sim::MachineConfig m = quiet_machine();
  sim::Scheduler sched(m);
  tsx::Engine eng(sched, quiet_tsx());
  constexpr int kThreads = tsx::kMaxThreads;
  constexpr int kIters = 5;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < kIters; ++k) {
        lock.lock(ctx);
        counter.store(ctx, counter.load(ctx) + 1);
        lock.unlock(ctx);
      }
    });
  }
  sched.run();
  EXPECT_EQ(counter.unsafe_get(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ThreadCap, TicketAtMaxThreads) {
  expect_correct_at_thread_cap<TicketLock>();
}
TEST(ThreadCap, TicketAdjustedAtMaxThreads) {
  expect_correct_at_thread_cap<TicketLockAdjusted>();
}
TEST(ThreadCap, McsAtMaxThreads) { expect_correct_at_thread_cap<McsLock>(); }
TEST(ThreadCap, ClhAtMaxThreads) { expect_correct_at_thread_cap<ClhLock>(); }
TEST(ThreadCap, ClhAdjustedAtMaxThreads) {
  expect_correct_at_thread_cap<ClhLockAdjusted>();
}

TEST(Fairness, McsIsFifo) { expect_fifo_order<McsLock>(); }
TEST(Fairness, TicketIsFifo) { expect_fifo_order<TicketLock>(); }
TEST(Fairness, TicketAdjustedIsFifo) { expect_fifo_order<TicketLockAdjusted>(); }
TEST(Fairness, ClhIsFifo) { expect_fifo_order<ClhLock>(); }
TEST(Fairness, ClhAdjustedIsFifo) { expect_fifo_order<ClhLockAdjusted>(); }

// ---------------------------------------------------------------------------
// Ch. 6: HLE compatibility of the adjusted locks
// ---------------------------------------------------------------------------

template <typename Lock>
RegionResult one_elision(Lock& lock, tsx::Shared<std::uint64_t>& data) {
  RegionResult r;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    r = hle_region(ctx, lock, [&] {
      data.store(ctx, data.load(ctx) + 1);
    });
  });
  sched.run();
  return r;
}

TEST(Ch6, UnadjustedTicketCannotElide) {
  // Algorithm 4's release (F&A owner) never restores the elided `next`:
  // every speculative attempt must abort and complete non-speculatively.
  TicketLock lock;
  tsx::Shared<std::uint64_t> data(0);
  const auto r = one_elision(lock, data);
  EXPECT_FALSE(r.speculative);
  EXPECT_EQ(data.unsafe_get(), 1u);
}

TEST(Ch6, AdjustedTicketElides) {
  TicketLockAdjusted lock;
  tsx::Shared<std::uint64_t> data(0);
  const auto r = one_elision(lock, data);
  EXPECT_TRUE(r.speculative);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(data.unsafe_get(), 1u);
}

TEST(Ch6, UnadjustedClhCannotElide) {
  ClhLock lock;
  tsx::Shared<std::uint64_t> data(0);
  const auto r = one_elision(lock, data);
  EXPECT_FALSE(r.speculative);
  EXPECT_EQ(data.unsafe_get(), 1u);
}

TEST(Ch6, AdjustedClhElides) {
  ClhLockAdjusted lock;
  tsx::Shared<std::uint64_t> data(0);
  const auto r = one_elision(lock, data);
  EXPECT_TRUE(r.speculative);
  EXPECT_EQ(data.unsafe_get(), 1u);
}

TEST(Ch6, McsElides) {
  McsLock lock;
  tsx::Shared<std::uint64_t> data(0);
  const auto r = one_elision(lock, data);
  EXPECT_TRUE(r.speculative);
}

template <typename Lock>
void expect_concurrent_elision() {
  // Non-conflicting critical sections under the adjusted fair locks must run
  // concurrently (all speculative).
  Lock lock;
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> slots(6);
  int nonspec = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int i = 0; i < 6; ++i) {
    sched.spawn([&, i](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 40; ++k) {
        const auto r = hle_region(ctx, lock, [&] {
          slots[i].value.store(ctx, slots[i].value.load(ctx) + 1);
        });
        if (!r.speculative) ++nonspec;
      }
    });
  }
  sched.run();
  EXPECT_EQ(nonspec, 0);
  for (auto& s : slots) EXPECT_EQ(s.value.unsafe_get(), 40u);
}

TEST(Ch6, AdjustedTicketConcurrentElision) {
  expect_concurrent_elision<TicketLockAdjusted>();
}
TEST(Ch6, AdjustedClhConcurrentElision) {
  expect_concurrent_elision<ClhLockAdjusted>();
}
TEST(Ch6, McsConcurrentElision) { expect_concurrent_elision<McsLock>(); }

TEST(Ch6, AdjustedTicketMixedSpeculativeAndStandard) {
  // Theorem 1(ii) mixed runs: standard acquisitions interleaved with
  // speculative ones preserve mutual exclusion and never lose counts.
  TicketLockAdjusted lock;
  tsx::Shared<std::uint64_t> counter(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  constexpr int kThreads = 6, kIters = 100;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn([&, t](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < kIters; ++k) {
        if (t % 2 == 0) {
          lock.lock(ctx);  // standard
          counter.store(ctx, counter.load(ctx) + 1);
          lock.unlock(ctx);
        } else {
          hle_region(ctx, lock, [&] {
            counter.store(ctx, counter.load(ctx) + 1);
          });
        }
      }
    });
  }
  sched.run();
  EXPECT_EQ(counter.unsafe_get(), kThreads * kIters);
}

TEST(Ch6, AdjustedClhMixedSpeculativeAndStandard) {
  ClhLockAdjusted lock;
  tsx::Shared<std::uint64_t> counter(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  constexpr int kThreads = 6, kIters = 100;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn([&, t](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < kIters; ++k) {
        if (t % 2 == 0) {
          lock.lock(ctx);
          counter.store(ctx, counter.load(ctx) + 1);
          lock.unlock(ctx);
        } else {
          hle_region(ctx, lock, [&] {
            counter.store(ctx, counter.load(ctx) + 1);
          });
        }
      }
    });
  }
  sched.run();
  EXPECT_EQ(counter.unsafe_get(), kThreads * kIters);
}

// ---------------------------------------------------------------------------
// Fair locks "remember" conflicts (the Ch. 3 serialization behaviour)
// ---------------------------------------------------------------------------

// Fraction of operations completing non-speculatively under an HLE'd lock,
// with each operation touching one of `slots_n` padded words (slots_n = 1
// means every critical section conflicts).
template <typename Lock>
double nonspec_fraction_under_conflicts(int slots_n = 1) {
  Lock lock;
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> slots(
      static_cast<std::size_t>(slots_n));
  std::uint64_t total = 0, nonspec = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int t = 0; t < 8; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      while (!st.stop_requested()) {
        auto& hot =
            slots[st.rng().next_below(static_cast<std::uint64_t>(slots_n))]
                .value;
        const auto r = hle_region(ctx, lock, [&] {
          hot.store(ctx, hot.load(ctx) + 1);
          ctx.engine().compute(ctx, 100);
        });
        ++total;
        if (!r.speculative) ++nonspec;
      }
    });
  }
  sched.run_for(400000);
  return static_cast<double>(nonspec) / static_cast<double>(total);
}

TEST(Avalanche, FairLocksSerializeUnderConflicts) {
  // With all-conflicting critical sections, the HLE'd fair locks execute
  // almost everything non-speculatively...
  EXPECT_GT(nonspec_fraction_under_conflicts<McsLock>(), 0.9);
  EXPECT_GT(nonspec_fraction_under_conflicts<TicketLockAdjusted>(), 0.9);
  EXPECT_GT(nonspec_fraction_under_conflicts<ClhLockAdjusted>(), 0.9);
}

TEST(Avalanche, FairLocksStaySerializedAtModerateConflict) {
  // Fair locks "remember" conflicts: even when only ~1/16 of operation
  // pairs actually conflict, the MCS queue keeps everything serialized
  // (recovery needs a quiescence period, Ch. 3).
  EXPECT_GT(nonspec_fraction_under_conflicts<McsLock>(16), 0.9);
}

TEST(Avalanche, TtasRecoversAtModerateConflict) {
  // ...while TTAS re-enters speculation between conflicts: at the same
  // moderate conflict level most operations complete speculatively.
  const double f = nonspec_fraction_under_conflicts<TtasLock>(16);
  EXPECT_LT(f, 0.6);
}

TEST(Ttas, ArrivalStatsCount) {
  TtasLock lock;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.set_mode(tsx::ElisionMode::kStandard);
    lock.lock(ctx);
    lock.unlock(ctx);
  });
  sched.run();
  EXPECT_EQ(lock.arrivals(), 1u);
  EXPECT_EQ(lock.arrivals_lock_held(), 0u);
}

// --- ElisionPolicy spec grammar: the one spelling shared by bench point
// ids, stress case names, and every CLI flag (see locks/policy.hpp). ---

TEST(PolicySpec, NamedConstructorsRoundTrip) {
  const ElisionPolicy policies[] = {
      ElisionPolicy::standard(),        ElisionPolicy::hle(),
      ElisionPolicy::hle_scm(),         ElisionPolicy::pes_slr(),
      ElisionPolicy::opt_slr(),         ElisionPolicy::opt_slr_scm(),
      ElisionPolicy::rtm_elide(),       ElisionPolicy::hle_scm_nested(),
      ElisionPolicy::hle_grouped_scm(), ElisionPolicy::hle().shared(),
      ElisionPolicy::hle_scm().shared(), ElisionPolicy::adaptive(),
      ElisionPolicy::adaptive().with_adaptive_window(16),
      ElisionPolicy::adaptive().with_adaptive_thresholds(70, 5),
      ElisionPolicy::adaptive().with_adaptive_dwell(4),
  };
  for (const ElisionPolicy& p : policies) {
    const auto back = ElisionPolicy::parse(p.spec());
    ASSERT_TRUE(back.has_value()) << p.spec();
    EXPECT_EQ(back->spec(), p.spec());
    EXPECT_EQ(back->scheme, p.scheme) << p.spec();
    EXPECT_EQ(back->mode, p.mode) << p.spec();
  }
}

TEST(PolicySpec, SchemeDefaultsSpellAsBareSlug) {
  for (const Scheme s : kAllSchemes) {
    EXPECT_EQ(ElisionPolicy::from_scheme(s).spec(), scheme_slug(s));
  }
}

TEST(PolicySpec, KnobsRoundTripAndNonDefaultsOnlyAppear) {
  const ElisionPolicy p = ElisionPolicy::hle_scm().with_max_spec_attempts(5);
  const std::string spec = p.spec();
  EXPECT_NE(spec.find("spec-attempts=5"), std::string::npos) << spec;
  const auto back = ElisionPolicy::parse(spec);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->retry.max_spec_attempts, 5);
  EXPECT_EQ(back->spec(), spec);
}

TEST(PolicySpec, AdaptiveKnobsRoundTrip) {
  const ElisionPolicy p = ElisionPolicy::adaptive()
                              .with_adaptive_window(64)
                              .with_adaptive_thresholds(55, 5)
                              .with_adaptive_dwell(3);
  const std::string spec = p.spec();
  EXPECT_EQ(spec, "adaptive:window=64:up=55:down=5:dwell=3");
  const auto back = ElisionPolicy::parse(spec);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->adapt.window, 64);
  EXPECT_EQ(back->adapt.up_pct, 55);
  EXPECT_EQ(back->adapt.down_pct, 5);
  EXPECT_EQ(back->adapt.dwell, 3);
  EXPECT_EQ(*back, p);
}

TEST(PolicySpec, ParseAcceptsLegacyMixedCaseAndSharedSuffix) {
  const auto legacy = ElisionPolicy::parse("HLE-SCM");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->scheme, Scheme::kHleScm);
  const auto shared = ElisionPolicy::parse("hle+shared");
  ASSERT_TRUE(shared.has_value());
  EXPECT_EQ(shared->mode, AccessMode::kShared);
  EXPECT_EQ(shared->spec(), "hle+shared");
}

TEST(PolicySpec, ParseRejectsGarbage) {
  EXPECT_FALSE(ElisionPolicy::parse("").has_value());
  EXPECT_FALSE(ElisionPolicy::parse("htm-magic").has_value());
  EXPECT_FALSE(ElisionPolicy::parse("hle:imaginary-knob=3").has_value());
  EXPECT_FALSE(ElisionPolicy::parse("hle+exclusive-ish").has_value());
}

TEST(PolicySpec, ParseRejectsOutOfRangeKnobValues) {
  // Negative values must not wrap through strtoull's modular arithmetic
  // into huge positives.
  EXPECT_FALSE(ElisionPolicy::parse("hle:spec-attempts=-1").has_value());
  EXPECT_FALSE(ElisionPolicy::parse("hle:backoff=-7").has_value());
  EXPECT_FALSE(ElisionPolicy::parse("adaptive:window=-5").has_value());
  EXPECT_FALSE(ElisionPolicy::parse("adaptive:up=-60").has_value());
  // Values past INT_MAX must be rejected, not truncated by the int cast.
  EXPECT_FALSE(ElisionPolicy::parse("hle:spec-attempts=4294967296")
                   .has_value());
  EXPECT_FALSE(
      ElisionPolicy::parse("adaptive:window=99999999999999999999999")
          .has_value());
  // Other non-numeric noise in the value position.
  EXPECT_FALSE(ElisionPolicy::parse("adaptive:window=").has_value());
  EXPECT_FALSE(ElisionPolicy::parse("adaptive:window=ten").has_value());
  EXPECT_FALSE(ElisionPolicy::parse("adaptive:window=3x").has_value());
  EXPECT_FALSE(ElisionPolicy::parse("adaptive:window=+3").has_value());
}

TEST(PolicySpec, DeprecatedSchemeConversionStillWorks) {
  // The implicit Scheme conversion is deprecated but must keep functioning
  // until the last out-of-tree caller migrates.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const ElisionPolicy p = Scheme::kHleScm;
#pragma GCC diagnostic pop
  EXPECT_EQ(p.scheme, Scheme::kHleScm);
  EXPECT_EQ(p.spec(), "hle-scm");
}

}  // namespace
}  // namespace elision::locks
