#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"

namespace elision::sim {
namespace {

MachineConfig one_core_no_smt() {
  MachineConfig cfg;
  cfg.n_cores = 8;  // spread threads so the SMT model stays out of the way
  cfg.smt_per_core = 1;
  return cfg;
}

TEST(Fiber, RunsEntryOnSwitch) {
  static int value;
  value = 0;
  static Fiber host;
  static Fiber* worker;
  Fiber w(
      [](void*) {
        Fiber::on_fiber_entry();  // required first on every fresh fiber stack
        value = 42;
        Fiber::switch_to(*worker, host);
      },
      nullptr, 64 * 1024);
  worker = &w;
  Fiber::switch_to(host, w);
  EXPECT_EQ(value, 42);
}

TEST(Scheduler, RunsAllThreadsToCompletion) {
  Scheduler sched(one_core_no_smt());
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    sched.spawn([&done](SimThread& t) {
      t.tick(10);
      ++done;
    });
  }
  sched.run();
  EXPECT_EQ(done, 5);
}

TEST(Scheduler, EarliestClockRunsFirst) {
  Scheduler sched(one_core_no_smt());
  std::vector<int> order;
  // Thread 0 advances 100 per step, thread 1 advances 10: thread 1 should
  // run ~10 steps per thread-0 step.
  sched.spawn([&order](SimThread& t) {
    for (int i = 0; i < 3; ++i) {
      order.push_back(0);
      t.tick(100);
    }
  });
  sched.spawn([&order](SimThread& t) {
    for (int i = 0; i < 30; ++i) {
      order.push_back(1);
      t.tick(10);
    }
  });
  sched.run();
  // After thread 0's first step (clock 100), thread 1 must take ~10 steps
  // before thread 0 runs again.
  int ones_before_second_zero = 0;
  int zeros = 0;
  for (const int tid : order) {
    if (tid == 0) {
      ++zeros;
      if (zeros == 2) break;
    } else if (zeros == 1) {
      ++ones_before_second_zero;
    }
  }
  EXPECT_GE(ones_before_second_zero, 9);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  auto run_once = [] {
    Scheduler sched(one_core_no_smt());
    std::vector<std::pair<int, std::uint64_t>> trace;
    for (int i = 0; i < 4; ++i) {
      sched.spawn([&trace, i](SimThread& t) {
        for (int k = 0; k < 50; ++k) {
          trace.emplace_back(i, t.now());
          t.tick(7 + static_cast<std::uint64_t>(t.rng().next_below(20)));
        }
      });
    }
    sched.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Scheduler, VirtualDeadlineStopsLoops) {
  Scheduler sched(one_core_no_smt());
  std::vector<std::uint64_t> iters(3, 0);
  for (int i = 0; i < 3; ++i) {
    sched.spawn([&iters, i](SimThread& t) {
      while (!t.stop_requested()) {
        ++iters[i];
        t.tick(100);
      }
    });
  }
  sched.run_for(10000);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(iters[i]), 100.0, 2.0) << i;
  }
  EXPECT_GE(sched.elapsed_cycles(), 10000u);
}

TEST(Scheduler, ElapsedIsMaxClock) {
  Scheduler sched(one_core_no_smt());
  sched.spawn([](SimThread& t) { t.tick(123); });
  sched.spawn([](SimThread& t) { t.tick(4567); });
  sched.run();
  EXPECT_EQ(sched.elapsed_cycles(), 4567u);
}

TEST(Scheduler, SmtSiblingsRunSlower) {
  MachineConfig cfg;
  cfg.n_cores = 2;
  cfg.smt_per_core = 2;
  cfg.smt_slowdown = 2.0;
  Scheduler sched(cfg);
  // Threads 0 and 2 share core 0; thread 1 is alone on core 1 only until
  // thread 3 would arrive — spawn exactly 3: threads 0,2 are siblings,
  // thread 1 runs alone.
  std::vector<std::uint64_t> clocks(3);
  for (int i = 0; i < 3; ++i) {
    sched.spawn([&clocks, i](SimThread& t) {
      // tick() (advance + yield) so the siblings genuinely co-run.
      for (int k = 0; k < 10; ++k) t.tick(10);
      clocks[i] = t.now();
    });
  }
  sched.run();
  EXPECT_EQ(clocks[1], 100u);       // alone on its core
  EXPECT_EQ(clocks[0], 200u);       // sibling pair pays 2x
  EXPECT_EQ(clocks[2], 200u);
}

TEST(Scheduler, SmtSlowdownEndsWhenSiblingFinishes) {
  MachineConfig cfg;
  cfg.n_cores = 1;
  cfg.smt_per_core = 2;
  cfg.smt_slowdown = 2.0;
  Scheduler sched(cfg);
  std::uint64_t late_clock = 0;
  sched.spawn([](SimThread& t) { t.advance(10); });  // finishes immediately
  sched.spawn([&late_clock](SimThread& t) {
    t.yield();  // let the sibling finish first
    while (t.now() < 1000) t.advance(10);
    late_clock = t.now();
  });
  sched.run();
  // The first advance may pay the 2x penalty, but later ones must not.
  EXPECT_LT(late_clock, 1040u);
}

TEST(Scheduler, YieldSlackAllowsBatching) {
  MachineConfig strict = one_core_no_smt();
  MachineConfig slack = one_core_no_smt();
  slack.yield_slack_cycles = 1000;
  auto count_switches = [](MachineConfig cfg) {
    Scheduler sched(cfg);
    for (int i = 0; i < 4; ++i) {
      sched.spawn([](SimThread& t) {
        for (int k = 0; k < 100; ++k) t.tick(10);
      });
    }
    sched.run();
    return sched.switch_count();
  };
  EXPECT_GT(count_switches(strict), count_switches(slack));
}

TEST(Scheduler, StressManyThreadsManySwitches) {
  Scheduler sched(one_core_no_smt());
  std::uint64_t total = 0;
  for (int i = 0; i < 32; ++i) {
    sched.spawn([&total](SimThread& t) {
      for (int k = 0; k < 2000; ++k) {
        ++total;
        t.tick(1 + t.rng().next_below(5));
      }
    });
  }
  sched.run();
  EXPECT_EQ(total, 32u * 2000u);
}

TEST(Scheduler, PerThreadRngsDiffer) {
  Scheduler sched(one_core_no_smt());
  std::vector<std::uint64_t> first(4);
  for (int i = 0; i < 4; ++i) {
    sched.spawn([&first, i](SimThread& t) { first[i] = t.rng().next(); });
  }
  sched.run();
  for (int i = 1; i < 4; ++i) EXPECT_NE(first[0], first[i]);
}

TEST(SchedulerDeath, MaxSwitchesDetectsRunaway) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        MachineConfig cfg;
        cfg.max_switches = 1000;
        Scheduler sched(cfg);
        // Two threads ping-ponging forever without ever finishing.
        sched.spawn([](SimThread& t) {
          for (;;) {
            t.advance(1);
            t.yield();
          }
        });
        sched.spawn([](SimThread& t) {
          for (;;) {
            t.advance(1);
            t.yield();
          }
        });
        sched.run();
      },
      "max_switches");
}

}  // namespace
}  // namespace elision::sim
