// The simulated TSX engine: Haswell-like best-effort hardware transactional
// memory with requestor-wins conflict management, an L1-bounded write set,
// spurious aborts, RTM (XBEGIN/XEND/XABORT/XTEST) and HLE
// (XACQUIRE/XRELEASE) interfaces, and the Chapter 7 hardware extension as an
// optional mode.
//
// All shared state of a simulated program must be accessed through this
// engine (via tsx::Shared<T>); that is what stands in for the cache-coherence
// fabric that real TSX piggybacks on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/scheduler.hpp"
#include "support/function_ref.hpp"
#include "tsx/abort.hpp"
#include "tsx/config.hpp"
#include "tsx/line_table.hpp"
#include "tsx/telemetry.hpp"
#include "tsx/trace.hpp"
#include "tsx/tx_context.hpp"

namespace elision::tsx {

class Engine {
 public:
  explicit Engine(sim::Scheduler& sched, TsxConfig config = {});

  const TsxConfig& config() const { return config_; }
  TsxConfig& mutable_config() { return config_; }

  // Returns (creating on first use) the transaction context of a thread.
  TxContext& context(sim::SimThread& t);

  // ------------------------------------------------------------------
  // Plain accesses. Routed transactionally when ctx is inside a
  // transaction, directly (with requestor-wins invalidation of conflicting
  // transactions) otherwise. All values are 64-bit words.
  // ------------------------------------------------------------------
  std::uint64_t load(Ctx& ctx, const void* addr);
  void store(Ctx& ctx, void* addr, std::uint64_t value);
  std::uint64_t exchange(Ctx& ctx, void* addr, std::uint64_t value);
  std::uint64_t fetch_add(Ctx& ctx, void* addr, std::uint64_t delta);
  // Returns true and installs desired iff *addr == expected.
  bool compare_exchange(Ctx& ctx, void* addr, std::uint64_t expected,
                        std::uint64_t desired);

  // ------------------------------------------------------------------
  // HLE. The behaviour of the XACQUIRE-tagged ops depends on
  // ctx.mode(): speculative mode begins a transaction and elides the store
  // (the lock's line enters the read set; the thread sees the "acquired"
  // value through the elision buffer); standard mode executes the plain RMW.
  // ------------------------------------------------------------------
  std::uint64_t xacquire_exchange(Ctx& ctx, void* addr, std::uint64_t value);
  std::uint64_t xacquire_fetch_add(Ctx& ctx, void* addr, std::uint64_t delta);
  bool xacquire_compare_exchange(Ctx& ctx, void* addr, std::uint64_t expected,
                                 std::uint64_t desired);
  void xrelease_store(Ctx& ctx, void* addr, std::uint64_t value);
  bool xrelease_compare_exchange(Ctx& ctx, void* addr, std::uint64_t expected,
                                 std::uint64_t desired);
  std::uint64_t xrelease_fetch_add(Ctx& ctx, void* addr, std::uint64_t delta);

  // ------------------------------------------------------------------
  // RTM.
  // ------------------------------------------------------------------
  // Runs `body` transactionally. Returns kCommitted on success, otherwise
  // the Intel-style abort status. Nested calls flatten into the outer
  // transaction (aborts unwind to the outermost caller).
  unsigned run_transaction(Ctx& ctx, support::FunctionRef<void()> body);
  [[noreturn]] void xabort(Ctx& ctx, std::uint8_t code);
  bool xtest(Ctx& ctx) const { return ctx.in_tx(); }

  // Busy-wait hint. Like Haswell, PAUSE inside a transaction aborts it.
  void pause(Ctx& ctx);

  // Charges `cycles` of pure compute to the thread (models non-memory work).
  void compute(Ctx& ctx, std::uint64_t cycles) { ctx.thread().tick(cycles); }

  LineTable& line_table() { return table_; }

  // Aggregate of all threads' TxStats.
  TxStats total_stats() const;

  // Stable first-touch sequence number of a simulated line (0 if the line
  // was never accessed). Unlike the raw LineId — an address, different every
  // run — this is a deterministic function of the simulation, so schemes
  // that hash a conflict line (grouped-SCM's group selection) reproduce
  // bit-identically across processes. See LineTable::seq_of.
  std::uint64_t line_seq(support::LineId line) { return table_.seq_of(line); }

  // Optional event tracing (nullptr disables; no cost when off).
  // Deprecated in favour of the Telemetry sink below; kept for existing
  // tests and tools.
  void set_trace(Trace* trace) { trace_ = trace; }
  Trace* trace() { return trace_; }

  // Abort-telemetry sink (nullptr disables; the hot path then pays one
  // predictable branch per protocol event, and nothing when compiled out
  // with ELISION_TELEMETRY_DISABLED).
  void set_telemetry(Telemetry* t) {
    if constexpr (kTelemetryCompiled) telemetry_ = t;
  }
  Telemetry* telemetry() { return telemetry_; }

  // Telemetry emission hook for the region drivers (lock acquire/release,
  // SCM aux-lock events). Timestamped with the thread's virtual clock.
  void note_event(Ctx& ctx, EventKind kind, support::LineId line = 0) {
    if constexpr (kTelemetryCompiled) {
      if (telemetry_ != nullptr) [[unlikely]] {
        telemetry_->record({.timestamp = ctx.thread().now(),
                            .line = line,
                            .thread = static_cast<std::int16_t>(ctx.id()),
                            .other_thread = -1,
                            .kind = kind,
                            .cause = AbortCause::kNone});
      }
    }
  }

 private:
  // --- transactional paths ---
  // Split into an inline tier (defined below the class; it resolves the
  // write-buffer, elision-illusion and owned-line hits without leaving the
  // caller) and an out-of-line slow half that does the table lookup,
  // conflict detection and set bookkeeping. The split is what lets every
  // simulated access start without a function call: load()/store() compile
  // into the workload's own loop.
  std::uint64_t tx_load(Ctx& ctx, const void* addr);
  void tx_store(Ctx& ctx, void* addr, std::uint64_t value);
  std::uint64_t tx_load_slow(Ctx& ctx, const void* addr, std::uintptr_t key,
                             support::LineId line, TxContext::CachedLine& cl);
  void tx_store_slow(Ctx& ctx, std::uint64_t value, std::uintptr_t key,
                     support::LineId line, TxContext::CachedLine& cl);

  // --- direct (non-transactional) paths ---
  std::uint64_t direct_load(Ctx& ctx, const void* addr);
  void direct_store(Ctx& ctx, void* addr, std::uint64_t value);
  // Performs *addr = f(*addr) returning the old value; handles the
  // requestor-wins invalidation of conflicting transactions.
  template <typename F>
  std::uint64_t direct_update(Ctx& ctx, void* addr, bool is_rmw, F&& f);

  // --- protocol helpers ---
  void begin_tx(Ctx& ctx);
  void commit(Ctx& ctx);
  [[noreturn]] void abort_self(Ctx& ctx, AbortCause cause,
                               std::uint8_t code = 0);
  void poll(Ctx& ctx);
  void abort_remote(int victim_id, AbortCause cause, support::LineId line,
                    int requester_id);
  bool requester_must_yield(Ctx& requester, const TxContext& owner) const;
  void abort_readers(LineRecord& rec, support::LineId line, int except_id,
                     int requester_id);
  void release_ownership(Ctx& ctx);
  [[noreturn]] void rollback_and_throw(Ctx& ctx, AbortCause cause,
                                       std::uint8_t code);

  void elide_begin(Ctx& ctx, void* addr, std::uint64_t illusion_value);
  bool elide_release(Ctx& ctx, std::uint64_t new_value);  // true: committed/ok

  void read_set_admit(Ctx& ctx, support::LineId line);    // capacity checks
  void write_set_admit(Ctx& ctx, support::LineId line);

  void spurious_check(Ctx& ctx, double p);

  // Chapter 7: before touching a line outside the cache footprint, wait for
  // the elided lock to be free (state S suspension).
  void hwext_wait_for_new_line(Ctx& ctx, const LineRecord& rec);

  // --- cost accounting (also maintains the MESI-like sharing model) ---
  // The caller passes the line's record so the hot path probes the table
  // once per access, not twice.
  void charge_read(Ctx& ctx, LineRecord& rec);
  void charge_write(Ctx& ctx, LineRecord& rec, bool is_rmw);

  static std::uint64_t read_word(const void* addr) {
    return *static_cast<const std::uint64_t*>(addr);
  }
  static void write_word(void* addr, std::uint64_t v) {
    *static_cast<std::uint64_t*>(addr) = v;
  }

  sim::Scheduler& sched_;
  TsxConfig config_;
  const sim::CostModel& cost_;
  LineTable table_;
  Trace* trace_ = nullptr;
  Telemetry* telemetry_ = nullptr;
  std::vector<std::unique_ptr<TxContext>> contexts_;  // indexed by thread id
};

// ---------------------------------------------------------------------------
// Per-access fast path. Inline so a workload's access loop compiles the hit
// tiers — write-buffer word, elision illusion, owned line — down to a few
// compares with no call; only a miss drops into the out-of-line slow half.
// Every tier charges exactly the ticks and draws exactly the RNG values the
// slow path would, so simulated results do not depend on which tier serves
// an access (docs/simulator.md, "The per-access fast path").
// ---------------------------------------------------------------------------

inline void Engine::poll(Ctx& ctx) {
  if (ctx.state_ == TxState::kAbortMarked) [[unlikely]] {
    rollback_and_throw(ctx, ctx.pending_cause_, 0);
  }
}

inline void Engine::spurious_check(Ctx& ctx, double p) {
  if (p > 0 && ctx.thread().rng().next_bool(p)) [[unlikely]] {
    abort_self(ctx, AbortCause::kSpurious);
  }
}

inline std::uint64_t Engine::tx_load(Ctx& ctx, const void* addr) {
  poll(ctx);
  spurious_check(ctx, config_.spurious_per_access);
  const auto key = reinterpret_cast<std::uintptr_t>(addr);
  if (!ctx.wbuf_.empty()) {
    if (const std::uint64_t* v = ctx.wbuf_.find(key)) {
      ctx.thread().tick(cost_.l1_hit + cost_.access_compute);
      return *v;
    }
  }
  if (ctx.elided_ && key == ctx.elided_addr_) [[unlikely]] {
    // The elision illusion: the thread sees the lock as it "wrote" it.
    ctx.thread().tick(cost_.l1_hit + cost_.access_compute);
    return ctx.elided_illusion_;
  }
  const support::LineId line = support::line_of(addr);
  TxContext::CachedLine& cl = ctx.line_cache_for(line);
  if (cl.ref.line == line && (cl.owned & TxContext::kOwnedRead) != 0 &&
      cl.owned_epoch == ctx.own_epoch_) {
    // Owned-line fast path: our reader bit is held and no foreign writer
    // can coexist with it, so the slow path would charge an L1 hit and
    // perform only idempotent bookkeeping. (key != elided_addr_ here: the
    // illusion check above already returned for the lock word itself.)
    if (ctx.elided_ && line == ctx.elided_line_) [[unlikely]] {
      ctx.lock_line_data_accessed_ = true;
    }
    ++ctx.stats_.fp_owned_hits;
    const std::uint64_t value = read_word(addr);
    ctx.thread().tick(cost_.l1_hit + cost_.access_compute);
    return value;
  }
  return tx_load_slow(ctx, addr, key, line, cl);
}

inline void Engine::tx_store(Ctx& ctx, void* addr, std::uint64_t value) {
  poll(ctx);
  spurious_check(ctx, config_.spurious_per_access);
  const auto key = reinterpret_cast<std::uintptr_t>(addr);
  const support::LineId line = support::line_of(addr);
  TxContext::CachedLine& cl = ctx.line_cache_for(line);
  if (cl.ref.line == line && (cl.owned & TxContext::kOwnedWrite) != 0 &&
      cl.owned_epoch == ctx.own_epoch_) {
    // Owned-line fast path: our writer slot is held, so the line is already
    // exclusive and dirty for us (any foreign access since we took it would
    // have abort-marked us, caught by poll() above) — the slow path would
    // skip its first-store block and charge an L1 hit.
    if (ctx.elided_ && key == ctx.elided_addr_) [[unlikely]] {
      ctx.lock_line_data_accessed_ = true;
    }
    ++ctx.stats_.fp_owned_hits;
    ctx.wbuf_.put(key, value);
    ctx.thread().tick(cost_.l1_hit + cost_.access_compute);
    return;
  }
  tx_store_slow(ctx, value, key, line, cl);
}

inline std::uint64_t Engine::load(Ctx& ctx, const void* addr) {
  if (ctx.in_tx()) return tx_load(ctx, addr);
  return direct_load(ctx, addr);
}

inline void Engine::store(Ctx& ctx, void* addr, std::uint64_t value) {
  if (ctx.in_tx()) {
    tx_store(ctx, addr, value);
  } else {
    direct_store(ctx, addr, value);
  }
}

}  // namespace elision::tsx
