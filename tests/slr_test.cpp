// Tests of software-assisted lock removal (SLR) and its SCM composition.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "locks/mcs_lock.hpp"
#include "locks/slr.hpp"
#include "locks/ttas_lock.hpp"
#include "tsx/shared.hpp"

namespace elision::locks {
namespace {

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

tsx::TsxConfig quiet_tsx() {
  tsx::TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

SlrParams pessimistic() {
  SlrParams p;
  p.max_attempts = 1;
  return p;
}

SlrParams optimistic() { return SlrParams{}; }

TEST(Slr, UncontendedCommitsWithoutTouchingLock) {
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> data(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    const auto r = slr_region(ctx, main, aux, optimistic(), [&] {
      data.store(ctx, data.load(ctx) + 1);
    });
    EXPECT_TRUE(r.speculative);
    EXPECT_EQ(r.attempts, 1);
    EXPECT_FALSE(main.is_held(ctx));  // the lock was never acquired
  });
  sched.run();
  EXPECT_EQ(data.unsafe_get(), 1u);
}

TEST(Slr, CannotCommitWhileLockHeld) {
  // A transaction must not commit while the lock is non-speculatively held:
  // the commit-time lock check aborts it and it retries/serializes.
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> x(0), y(0);
  bool observed_inconsistency = false;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  // Holder: maintains the invariant x == y inside the lock, but transiently
  // breaks it.
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    for (int k = 0; k < 30; ++k) {
      main.lock(ctx);
      x.store(ctx, x.load(ctx) + 1);
      ctx.engine().compute(ctx, 200);  // invariant broken here
      y.store(ctx, y.load(ctx) + 1);
      main.unlock(ctx);
      ctx.engine().compute(ctx, 100);
    }
  });
  // SLR reader: must always observe x == y in a committed transaction.
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    for (int k = 0; k < 60; ++k) {
      std::uint64_t sx = 0, sy = 0;
      const auto r = slr_region(ctx, main, aux, optimistic(), [&] {
        sx = x.load(ctx);
        ctx.engine().compute(ctx, 150);
        sy = y.load(ctx);
      });
      if (r.speculative && sx != sy) observed_inconsistency = true;
    }
  });
  sched.run();
  EXPECT_FALSE(observed_inconsistency)
      << "a committed SLR transaction observed a broken invariant";
}

TEST(Slr, PessimisticGivesUpAfterOneFailure) {
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> hot(0);
  std::uint64_t total_attempts = 0, ops = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int t = 0; t < 4; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 100; ++k) {
        const auto r = slr_region(ctx, main, aux, pessimistic(), [&] {
          hot.store(ctx, hot.load(ctx) + 1);
        });
        total_attempts += static_cast<std::uint64_t>(r.attempts);
        ++ops;
      }
    });
  }
  sched.run();
  EXPECT_EQ(hot.unsafe_get(), 400u);
  // Pessimistic SLR never retries speculation: at most 1 speculative + 1
  // non-speculative execution per operation.
  EXPECT_LE(total_attempts, 2 * ops);
}

TEST(Slr, OptimisticRetriesBeforeGivingUp) {
  // With a permanently held lock, optimistic SLR burns its retries before
  // serializing; pessimistic takes the lock after a single failure.
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> data(0);
  int attempts_opt = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    main.lock(ctx);
    ctx.engine().compute(ctx, 60000);  // hold across the other's attempts
    main.unlock(ctx);
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 500);
    const auto r = slr_region(ctx, main, aux, optimistic(), [&] {
      data.store(ctx, data.load(ctx) + 1);
    });
    attempts_opt = r.attempts;
  });
  sched.run();
  EXPECT_EQ(data.unsafe_get(), 1u);
  EXPECT_GE(attempts_opt, 2);
}

TEST(Slr, HopelessAbortSkipsRetries) {
  // A capacity abort has no RETRY bit: SLR must serialize immediately
  // instead of burning its remaining attempts (Sec. 5.1 tuning).
  TtasLock main;
  McsLock aux;
  constexpr std::size_t kLines = 600;
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> big(kLines);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    const auto r = slr_region(ctx, main, aux, optimistic(), [&] {
      for (auto& b : big) b.value.store(ctx, 1);
    });
    EXPECT_FALSE(r.speculative);
    EXPECT_EQ(r.attempts, 2);  // one capacity abort + one standard run
  });
  sched.run();
  for (auto& b : big) EXPECT_EQ(b.value.unsafe_get(), 1u);
}

TEST(Slr, ScmCompositionSerializesConflicts) {
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> hot(0);
  std::uint64_t ops = 0, nonspec = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  SlrParams p;
  p.scm = true;
  for (int t = 0; t < 8; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 120; ++k) {
        const auto r = slr_region(ctx, main, aux, p, [&] {
          hot.store(ctx, hot.load(ctx) + 1);
        });
        ++ops;
        if (!r.speculative) ++nonspec;
      }
    });
  }
  sched.run();
  EXPECT_EQ(hot.unsafe_get(), 8u * 120u);
  EXPECT_LT(static_cast<double>(nonspec) / static_cast<double>(ops), 0.05);
}

TEST(Slr, PartialSpeculationWhileLockHeld) {
  // Unlike HLE, SLR transactions can *run* (not commit) while the lock is
  // held; once the holder releases without a data conflict, the speculation
  // commits. Here holder and speculator touch disjoint data.
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> holder_data(0), slr_data(0);
  locks::RegionResult r{};
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    main.lock(ctx);
    holder_data.store(ctx, 1);
    ctx.engine().compute(ctx, 2000);
    main.unlock(ctx);
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 300);  // start while lock held
    r = slr_region(ctx, main, aux, optimistic(), [&] {
      slr_data.store(ctx, slr_data.load(ctx) + 1);
      ctx.engine().compute(ctx, 5000);  // outlast the holder
    });
  });
  sched.run();
  EXPECT_TRUE(r.speculative);
  EXPECT_EQ(slr_data.unsafe_get(), 1u);
}

TEST(Slr, MixedWorkloadNoLostUpdates) {
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> counter(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  constexpr int kThreads = 6, kIters = 150;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn([&, t](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      const SlrParams p = (t % 2 == 0) ? pessimistic() : optimistic();
      for (int k = 0; k < kIters; ++k) {
        slr_region(ctx, main, aux, p, [&] {
          counter.store(ctx, counter.load(ctx) + 1);
        });
      }
    });
  }
  sched.run();
  EXPECT_EQ(counter.unsafe_get(), kThreads * kIters);
}

}  // namespace
}  // namespace elision::locks
