#include "service/kv_workload.hpp"

#include <array>

#include "service/sharded_kv.hpp"
#include "service/traffic.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace elision::service {

using harness::BenchConfig;
using harness::QuantileHistogram;
using harness::RunStats;

RunStats run_kv_point_once(const KvPoint& p) {
  ShardedKv::Config kc;
  kc.shards = p.shards;
  kc.keys = p.keys;
  kc.threads = p.threads;
  kc.policy = p.policy;
  ShardedKv kv(kc);

  // Prefill half the domain with a fixed stake per key, so gets mostly hit
  // and transfers have value to move.
  support::Xoshiro256 fill(p.seed);
  const std::size_t target = p.keys / 2;
  std::size_t filled = 0;
  while (filled < target) {
    if (kv.unsafe_put(fill.next_below(p.keys), 100)) ++filled;
  }
  kv.unsafe_distribute_free_lists(p.threads);

  BenchConfig cfg;
  cfg.threads = p.threads;
  cfg.duration_sec = p.duration_sec;
  cfg.duration_scale = harness::env_duration_scale();
  cfg.machine.seed = p.seed;
  cfg.timeline_slot_cycles = p.timeline_slot_cycles;
  cfg.policy = p.policy;
  cfg.telemetry = p.telemetry;
  cfg.avalanche = p.avalanche;

  // Per-worker aggregate interarrival mean: total offered rate
  // clients * client_rate_hz, split evenly over the workers.
  const double cycles_per_sec = cfg.machine.ghz * 1e9;
  const double mean_cycles =
      cycles_per_sec * static_cast<double>(p.threads) /
      (static_cast<double>(p.clients) * p.client_rate_hz);

  const ZipfGenerator zipf(p.keys, p.zipf_theta);
  int batch = p.multi_put_keys;
  if (batch < 1) batch = 1;
  if (batch > ShardedKv::kMaxOpShards) batch = ShardedKv::kMaxOpShards;

  struct Worker {
    OpenLoopClock clock;
    std::array<QuantileHistogram, kKvOpKinds> lat;
    std::vector<std::uint64_t> shard_reqs;
  };
  std::vector<Worker> workers(static_cast<std::size_t>(p.threads));
  for (auto& w : workers) {
    w.shard_reqs.resize(static_cast<std::size_t>(p.shards), 0);
  }

  auto stats = harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& st = ctx.thread();
    auto& rng = st.rng();
    auto& w = workers[static_cast<std::size_t>(ctx.id())];
    if (!w.clock.primed()) w.clock.prime(rng, st.now(), mean_cycles);
    const std::uint64_t arrival = w.clock.pop(rng, mean_cycles);
    // Open loop: idle until the request is due; if we are already past it,
    // the wait shows up as queueing delay in the latency below.
    if (st.now() < arrival) st.tick(arrival - st.now());

    const auto dice = static_cast<int>(rng.next_below(100));
    locks::RegionResult r;
    int kind;
    if (dice < p.put_pct) {
      kind = 1;
      const std::uint64_t key = zipf.next(rng);
      r = kv.put(ctx, key, 1 + rng.next_below(1000));
      ++w.shard_reqs[static_cast<std::size_t>(kv.shard_of(key))];
    } else if (dice < p.put_pct + p.multi_put_pct) {
      kind = 2;
      KvPair pairs[ShardedKv::kMaxOpShards];
      for (int i = 0; i < batch; ++i) {
        pairs[i] = {zipf.next(rng), 1 + rng.next_below(1000)};
      }
      r = kv.multi_put(ctx, pairs, batch);
      for (int i = 0; i < batch; ++i) {
        ++w.shard_reqs[static_cast<std::size_t>(kv.shard_of(pairs[i].key))];
      }
    } else if (dice < p.put_pct + p.multi_put_pct + p.transfer_pct) {
      kind = 3;
      const std::uint64_t from = zipf.next(rng);
      const std::uint64_t to = zipf.next(rng);
      r = kv.transfer(ctx, from, to, 1 + rng.next_below(50));
      ++w.shard_reqs[static_cast<std::size_t>(kv.shard_of(from))];
      ++w.shard_reqs[static_cast<std::size_t>(kv.shard_of(to))];
    } else {
      kind = 0;
      const std::uint64_t key = zipf.next(rng);
      std::uint64_t v = 0;
      r = kv.get(ctx, key, &v);
      ++w.shard_reqs[static_cast<std::size_t>(kv.shard_of(key))];
    }
    w.lat[static_cast<std::size_t>(kind)].add(st.now() - arrival);
    return r;
  });

  // Merge per-worker series in thread order; register every op kind even
  // when empty so the JSON schema is stable.
  for (int k = 0; k < kKvOpKinds; ++k) {
    auto* series = stats.latency_series(kKvOpNames[k]);
    for (const auto& w : workers) series->merge(w.lat[static_cast<std::size_t>(k)]);
  }
  if (p.shard_requests != nullptr) {
    p.shard_requests->assign(static_cast<std::size_t>(p.shards), 0);
    for (const auto& w : workers) {
      for (int s = 0; s < p.shards; ++s) {
        (*p.shard_requests)[static_cast<std::size_t>(s)] +=
            w.shard_reqs[static_cast<std::size_t>(s)];
      }
    }
  }
  return stats;
}

RunStats run_kv_point(const KvPoint& p) {
  const int n = p.seeds > 0 ? p.seeds : 1;
  // Independent simulations fanned out over host threads, merged in seed
  // order — byte-identical to host_threads=1 (see run_rb_point).
  std::vector<RunStats> per_seed(static_cast<std::size_t>(n));
  std::vector<std::vector<std::uint64_t>> shard_reqs(
      static_cast<std::size_t>(n));
  support::parallel_for_each(
      static_cast<std::size_t>(n),
      [&](std::size_t s) {
        KvPoint q = p;
        q.host_threads = 1;
        q.seed = p.seed + static_cast<std::uint64_t>(s) * 0x9E3779B9ULL;
        q.shard_requests =
            p.shard_requests != nullptr ? &shard_reqs[s] : nullptr;
        per_seed[s] = run_kv_point_once(q);
      },
      p.host_threads);
  RunStats total;
  if (p.shard_requests != nullptr) {
    p.shard_requests->assign(static_cast<std::size_t>(p.shards), 0);
  }
  for (int s = 0; s < n; ++s) {
    total.accumulate(per_seed[static_cast<std::size_t>(s)]);
    if (p.shard_requests != nullptr) {
      for (int i = 0; i < p.shards; ++i) {
        (*p.shard_requests)[static_cast<std::size_t>(i)] +=
            shard_reqs[static_cast<std::size_t>(s)]
                      [static_cast<std::size_t>(i)];
      }
    }
  }
  return total;
}

}  // namespace elision::service
