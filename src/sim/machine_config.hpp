// Configuration of the simulated machine: the paper's Core i7-4770
// (4 cores x 2 hyperthreads, 3.4 GHz, 32KB 8-way L1D, 256KB L2, 8MB L3).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/cost_model.hpp"

namespace elision::sim {

// Hard cap on simulated threads per Scheduler. The TSX layer identifies
// readers with a fixed-width thread mask (tsx::kMaxThreads aliases this and
// tsx::ThreadSet sizes its word array from it), and the scheduler's ready
// queue indexes two tournament levels of 16, so the cap is load-bearing,
// not just a sizing hint. 256 covers the big-machine scaling studies
// (64-plus logical CPUs) with headroom; past it the ready queue would need
// a third level.
inline constexpr int kMaxSimThreads = 256;

// Schedule-exploration knobs (src/stress). When `probability` is nonzero,
// every simulated memory access becomes a *perturbation point*: with that
// probability the accessing thread's virtual clock jumps forward by a
// random delay in [1, max_delay_cycles], re-sorting it in the earliest-first
// run order and thereby exploring a different interleaving. Perturbation
// draws from its own RNG (seeded from `seed`, per thread), so the workload's
// random choices are untouched and a (workload seed, perturbation seed) pair
// is fully reproducible.
struct PerturbConfig {
  double probability = 0.0;  // 0 = off (the default: production runs pay
                             // one branch per access and nothing else)
  std::uint64_t max_delay_cycles = 2000;
  std::uint64_t seed = 0;
  // Global budget of injected perturbations across all threads (0 =
  // unlimited). Failing-seed minimization shrinks this to find the smallest
  // prefix of injections that still reproduces a violation.
  std::uint64_t max_points = 0;
};

struct MachineConfig {
  // Topology. Logical thread t runs on core (t % n_cores); threads mapped to
  // the same core are hyperthread siblings and run slower while co-active.
  unsigned n_cores = 4;
  unsigned smt_per_core = 2;
  // Per-access cost multiplier while a hyperthread sibling is co-active.
  // Pointer-chasing critical sections benefit substantially from SMT on
  // Haswell (the sibling hides latency), hence the mild penalty.
  double smt_slowdown = 1.25;

  double ghz = 3.4;  // converts cycles to simulated seconds for reporting

  CostModel cost;

  // Scheduling: a running thread yields once its virtual clock exceeds the
  // minimum runnable clock by this slack. 0 = strict earliest-first
  // interleaving at memory-access granularity.
  std::uint64_t yield_slack_cycles = 0;

  std::size_t fiber_stack_bytes = 256 * 1024;

  // Capacity hints for per-thread transactional state. Each TxContext
  // pre-reserves its read/write line vectors and write buffer from these on
  // creation, so the steady state of a retry loop performs no allocations.
  // They are hints, not caps: the vectors still grow past them if a
  // transaction really reads more lines (bounded by TsxConfig::l3_lines).
  std::size_t tx_read_set_hint = 2048;
  // A write set is bounded by the L1 (64 sets x 8 ways) plus the one
  // overflowing line that triggers the capacity abort.
  std::size_t tx_write_set_hint = 64 * 8 + 1;
  // Distinct words buffered per transaction (sizes the WordMap).
  std::size_t tx_write_buffer_hint = 192;

  // Switch-bound batching: instead of re-reading the ready queue once per
  // simulated access, the scheduler caches the next preemption bound
  // (minimum clock of the *other* runnable threads plus the yield slack) at
  // every context switch and lets the running thread's accesses run
  // back-to-back against that one cached value. The bound can only change
  // when another thread runs, so recomputing it per switch instead of per
  // access produces the exact same schedule bit-for-bit (pinned by the
  // golden switch-count tests). Off = the per-access ready-queue read, kept
  // for differential schedule-equivalence tests.
  bool batch_switch_bound = true;

  // Safety valve: abort the simulation after this many context switches
  // (0 = unlimited). Used by tests to detect livelock/deadlock.
  std::uint64_t max_switches = 0;

  std::uint64_t seed = 0x1234ABCDULL;

  // Schedule perturbation (off by default; see PerturbConfig above).
  PerturbConfig perturb;

  std::uint64_t cycles(double seconds) const {
    return static_cast<std::uint64_t>(seconds * ghz * 1e9);
  }
  double seconds(std::uint64_t cycles_) const {
    return static_cast<double>(cycles_) / (ghz * 1e9);
  }
};

}  // namespace elision::sim
