// Critical-section region drivers: HLE-based and RTM-based lock elision.
//
// hle_region() models exactly what the hardware does around an elided
// critical section: the first attempt runs the lock code with the XACQUIRE
// op beginning a transaction; an abort rolls everything back and re-issues
// the acquiring store non-transactionally. For TTAS that store can fail
// (lock held), after which the software algorithm spins and re-enters
// speculation — the recovery behaviour of Ch. 3. For fair locks it enqueues
// the thread, which then completes non-speculatively.
//
// rtm_elide_region() is the paper's "equivalent lock elision mechanism based
// on the RTM instructions" (Ch. 3 Remark, Fig 3.5): the transaction reads
// the lock at its start and aborts if it is held; this variant can observe
// abort statuses, which plain HLE hides.
#pragma once

#include "support/function_ref.hpp"
#include "tsx/engine.hpp"

namespace elision::locks {

// How a critical section eventually completed.
struct RegionResult {
  bool speculative = false;  // completed as a committed transaction
  int attempts = 0;          // executions tried (aborted + the completing one)
};

// XABORT code used by elision/removal schemes when the lock is observed held.
inline constexpr std::uint8_t kAbortCodeLockBusy = 0xA0;

template <typename Lock>
RegionResult hle_region(tsx::Ctx& ctx, Lock& lock,
                        support::FunctionRef<void()> body) {
  RegionResult r;
  for (;;) {
    ++r.attempts;
    try {
      ctx.set_mode(tsx::ElisionMode::kSpeculative);
      lock.lock(ctx);
      body();
      lock.unlock(ctx);  // the XRELEASE commits
      ctx.set_mode(tsx::ElisionMode::kStandard);
      r.speculative = true;
      return r;
    } catch (const tsx::TxAbortException&) {
      // rolled back by the engine
    }
    ctx.set_mode(tsx::ElisionMode::kStandard);
    if (lock.reissue_acquire_standard(ctx)) {
      ++r.attempts;
      body();
      lock.unlock(ctx);
      r.speculative = false;
      return r;
    }
    // The re-issued store found the lock held (TTAS): spin in lock() on the
    // next iteration and re-enter speculation once the lock is free.
  }
}

template <typename Lock>
RegionResult rtm_elide_region(tsx::Ctx& ctx, Lock& lock,
                              support::FunctionRef<void()> body) {
  auto& eng = ctx.engine();
  RegionResult r;
  for (;;) {
    ++r.attempts;
    const unsigned st = eng.run_transaction(ctx, [&] {
      // Put the lock in the read set and check it is free (lock elision via
      // RTM; no illusion of holding the lock).
      if (lock.is_held(ctx)) eng.xabort(ctx, kAbortCodeLockBusy);
      body();
    });
    if (st == tsx::kCommitted) {
      r.speculative = true;
      return r;
    }
    if (lock.reissue_acquire_standard(ctx)) {
      ++r.attempts;
      body();
      lock.unlock(ctx);
      r.speculative = false;
      return r;
    }
    while (lock.is_held(ctx)) eng.pause(ctx);
  }
}

}  // namespace elision::locks
