// Per-cache-line bookkeeping: transactional conflict state (reader mask +
// single buffered writer) and a MESI-like sharing model used both for
// memory-access cost estimation and for the Chapter 7 "cache footprint"
// semantics.
//
// The simulator runs on one host thread, so the records are plain data.
//
// This table sits on the hottest path in the whole simulator: every
// simulated load/store does at least one lookup. Two structural choices
// serve that path:
//
//   - The *index* is an open-addressing, power-of-two flat table of small
//     (32-byte) slots with tombstone-free lifetime management via
//     generation stamps: a slot is live iff its stamp equals the table's
//     current generation, so clear() is an O(1) generation bump and probe
//     chains never contain dead slots (records are never individually
//     erased, only bulk-invalidated).
//   - The *records* live outside the index, in fixed-size chunks that are
//     never reallocated, so a LineRecord pointer stays valid for as long as
//     the table generation it was captured under. Growing the index rehashes
//     32-byte slots only; the 100+-byte records never move. That pointer
//     stability is what lets the engine keep raw LineRecord pointers in its
//     per-transaction read/write sets and in the per-context line memo
//     (LineTable::Cache) — release and re-access paths revalidate with one
//     generation compare instead of re-probing the index.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/align.hpp"
#include "support/hash.hpp"
#include "tsx/thread_set.hpp"

namespace elision::tsx {

inline constexpr int kNoThread = -1;

// Field order is chosen for the access paths, not for grouping by concern:
// the scalars lead and each ThreadSet's word 0 sits within the record's
// first 48 bytes, so on machines of up to 64 simulated threads (every
// word-0 tid) a conflict check plus charge usually stays within one host
// cache line instead of always straddling two.
struct LineRecord {
  // --- transactional conflict detection ---
  int writer = kNoThread;     // tx id with this line in its (buffered) write set
  // --- cache sharing model ---
  int dirty_owner = kNoThread;   // thread holding the line modified, if any
  ThreadSet readers;          // tx ids with this line in their read set
  ThreadSet copies;              // threads whose simulated cache holds the line
};

class LineTable {
 public:
  // A memoized (line -> record) mapping owned by the caller (one per
  // TxContext cache way). The pointer is valid exactly while `gen` matches
  // the table's current generation: records never move or get erased within
  // a generation, and clear() bumps the generation, which invalidates every
  // outstanding cache in O(1). A hit is two compares and no index probe.
  struct Cache {
    support::LineId line = 0;
    std::uint64_t gen = 0;        // valid iff == LineTable::generation()
    LineRecord* rec = nullptr;
  };

  explicit LineTable(std::size_t initial_pow2 = 12)
      : mask_((std::size_t{1} << initial_pow2) - 1), slots_(mask_ + 1) {}

  // Returns (creating if absent) the record of `line`. The reference stays
  // valid until the next clear() — insertions and index growth never move
  // existing records.
  LineRecord& record(support::LineId line) {
    Slot& s = probe(line);
    if (s.gen != gen_) return insert(s, line);
    return *record_at(s.rec_idx);
  }

  // Hot-path variant: consults `cache` before probing and refreshes it.
  LineRecord& record(support::LineId line, Cache& cache) {
    if (cache.line == line && cache.gen == gen_) return *cache.rec;
    Slot& s = probe(line);
    LineRecord& rec = s.gen == gen_ ? *record_at(s.rec_idx) : insert(s, line);
    cache = {line, gen_, &rec};
    return rec;
  }

  // Lookup without creating a record (used on read-mostly fast paths).
  LineRecord* find(support::LineId line) {
    Slot& s = probe(line);
    return s.gen == gen_ ? record_at(s.rec_idx) : nullptr;
  }

  // O(1): bumps the generation, logically emptying every slot and
  // invalidating every outstanding Cache. Record storage is retained and
  // reused in first-touch order, so steady-state refills allocate nothing.
  void clear() {
    ++gen_;
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t generation() const { return gen_; }

  // First-touch sequence number of `line` (1-based; 0 if absent). Line ids
  // are real addresses >> 6, so their *values* vary run to run with the
  // heap layout; first-touch order does not, because the simulation is
  // deterministic. Consumers that need a stable function of a line (e.g.
  // grouped-SCM's conflict-group hash) use this instead of the raw id, so
  // results reproduce across processes — which parallel bench-suite
  // execution relies on.
  std::uint64_t seq_of(support::LineId line) {
    Slot& s = probe(line);
    return s.gen == gen_ ? s.seq : 0;
  }

 private:
  // Records are handed out in first-touch order from fixed-size chunks;
  // a chunk, once allocated, is never freed or moved.
  static constexpr std::size_t kChunkShift = 12;  // 4096 records per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  struct Slot {
    support::LineId line = 0;
    std::uint64_t gen = 0;      // live iff == LineTable::gen_ (starts at 1)
    std::uint64_t seq = 0;      // first-touch order, assigned at insertion
    std::uint64_t rec_idx = 0;  // index into the chunked record storage
  };
  static_assert(sizeof(Slot) == 32, "slot indexing should be shift, not mul");

  LineRecord* record_at(std::uint64_t idx) {
    return &chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  // First slot that holds `line` or is free (dead or never used). Probe
  // chains contain no dead slots between a key's home position and its
  // slot: slots only transition free -> live within a generation, and
  // clear() frees all of them at once.
  Slot& probe(support::LineId line) {
    std::size_t i = support::mix64(line) & mask_;
    while (slots_[i].gen == gen_ && slots_[i].line != line) {
      i = (i + 1) & mask_;
    }
    return slots_[i];
  }

  LineRecord& insert(Slot& free_slot, support::LineId line) {
    if ((size_ + 1) * 4 >= slots_.size() * 3) {
      grow();
      return fill(probe(line), line);  // all slots in the new index are free
    }
    return fill(free_slot, line);
  }

  LineRecord& fill(Slot& s, support::LineId line) {
    s.line = line;
    s.gen = gen_;
    s.seq = next_seq_++;
    const std::uint64_t idx = size_++;
    s.rec_idx = idx;
    if ((idx >> kChunkShift) == chunks_.size()) {
      chunks_.emplace_back(new LineRecord[kChunkSize]);
    }
    LineRecord& rec = *record_at(idx);
    rec = LineRecord{};  // storage is reused across generations
    return rec;
  }

  // Doubles and rehashes the slot index. Records are untouched: every live
  // slot carries its record index across, so outstanding pointers (read and
  // write sets, per-context caches) survive growth.
  void grow() {
    std::vector<Slot> old = std::move(slots_);
    mask_ = mask_ * 2 + 1;
    slots_.assign(mask_ + 1, Slot{});
    for (const Slot& s : old) {
      if (s.gen != gen_) continue;
      probe(s.line) = s;
    }
  }

  std::size_t mask_;
  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<LineRecord[]>> chunks_;
  std::uint64_t gen_ = 1;
  std::uint64_t next_seq_ = 1;  // 0 is reserved for "absent"
  std::size_t size_ = 0;
};

}  // namespace elision::tsx
