// Tunables of the simulated TSX implementation (Haswell-like defaults).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/machine_config.hpp"

namespace elision::tsx {

// Maximum simulated threads the TSX layer supports. The line table tracks
// readers and cached copies with one bit per thread in a ThreadSet (a fixed
// array of 64-bit words sized from this constant), so this equals — and
// must never exceed — the scheduler's own cap. Lock implementations size
// their per-thread slot arrays from this constant and bounds-check thread
// ids against it.
inline constexpr int kMaxThreads = sim::kMaxSimThreads;

// Default thread capacity of the ds/ node pools' per-thread free lists.
// The list count is workload-visible, not just a sizing hint: the pools'
// alloc() fallback scan performs one simulated load per list, so changing
// it perturbs schedules. It therefore stays at the historical 64-thread
// sizing independent of kMaxThreads; workloads on wider machines pass
// their own thread count to the pool constructors.
inline constexpr int kDefaultPoolThreads = 64;

// Conflict-management policy of the simulated TM.
//
// Haswell implements requestor-wins ("the thread that detects the data
// conflict will transactionally abort"), which the paper notes is prone to
// livelock [Bobba et al.] — the motivation for SCM. kOldestWins is the
// TLR-style alternative (Rajwar & Goodman, Ch. 8 related work): between two
// transactions the younger aborts, guaranteeing the oldest always makes
// progress. Non-transactional requests always win under either policy.
enum class ConflictPolicy {
  kRequestorWins,
  kOldestWins,
};

struct TsxConfig {
  ConflictPolicy conflict_policy = ConflictPolicy::kRequestorWins;

  // Write-set capacity: the L1 data cache (32 KB, 8-way, 64 sets of 64 B
  // lines). A transactional write that overflows its cache set aborts with
  // CAPACITY — this produces Figure 2.1's hard cliff at 32 KB.
  unsigned l1_sets = 64;
  unsigned l1_ways = 8;

  // Read-set tracking: precise while it fits in L1; beyond that a secondary
  // (bloom-filter-like) structure lets reads survive past L2 with a growing
  // chance of eviction aborts, and nothing survives past L3 (Fig 2.1).
  std::size_t l2_lines = 4096;     // 256 KB
  std::size_t l3_lines = 131072;   // 8 MB
  double read_evict_l2 = 1e-6;     // per-new-line abort prob in (L1, L2]
  double read_evict_l3_max = 5e-5; // per-new-line prob ramps to this at L3

  // Spurious aborts (Sec 2.2: present even in tiny conflict-free
  // transactions; Fig 2.1 measures a floor of ~1e-5..1e-4 per transaction).
  double spurious_per_begin = 4e-5;
  double spurious_per_access = 2e-7;

  // Haswell's initial TSX does not support HLE nested inside RTM (Ch. 4
  // Remark); setting this true models the paper's *intended* SCM design.
  bool allow_hle_in_rtm = false;

  // Owned-line fast path: repeat transactional accesses to a line this
  // thread already owns (reader bit held for loads, writer slot for stores,
  // with no possible foreign writer) skip the line-table lookup, the
  // reader-set update and the conflict checks entirely, charging the L1-hit
  // cost directly. Simulated results are bit-identical with the flag off
  // (the skipped work is all idempotent and the RNG draw sequence is
  // unchanged); off exists for the differential schedule-equivalence tests
  // and A/B speed measurement. Ignored — never engaged — under
  // hardware_extension, whose lock-line survival rule lets a foreign writer
  // coexist with a live reader.
  bool owned_line_fastpath = true;

  // Chapter 7 hardware extension: distinguish lock-line conflicts from data
  // conflicts; speculators survive a non-speculative lock acquisition while
  // they stay within their cache footprint, suspending on a miss.
  bool hardware_extension = false;
  // Bound on the state-S suspension. A queue lock's word may never return
  // to its pre-elision value (the MCS tail holds arbitrary node pointers),
  // so real hardware would eventually abort the waiter via a timer
  // interrupt; we model that with a cycle bound.
  std::uint64_t hwext_max_wait_cycles = 50000;
};

}  // namespace elision::tsx
