// STAMP-mini correctness tests: every application must produce consistent
// results under every locking scheme, at several thread counts.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "stamp/common.hpp"

namespace elision::stamp {
namespace {

StampConfig base_config() {
  StampConfig cfg;
  cfg.scale = 0.125;  // small problems: these are correctness tests
  cfg.threads = 8;
  return cfg;
}

bool deterministic_app(const std::string& name) {
  // vacation's and labyrinth's outcomes are inherently
  // interleaving-dependent (like real STAMP); the others produce
  // scheme-independent results.
  return name.rfind("vacation", 0) != 0 && name != "labyrinth";
}

struct StampParam {
  std::string app;
  locks::Scheme scheme;
  LockKind lock;
};

std::string stamp_param_name(const ::testing::TestParamInfo<StampParam>& i) {
  std::string s = i.param.app + "_" + locks::scheme_name(i.param.scheme) +
                  (i.param.lock == LockKind::kTtas ? "_TTAS" : "_MCS");
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

class StampApps : public ::testing::TestWithParam<StampParam> {
 protected:
  // Single-threaded standard-lock reference checksums, computed once.
  static std::map<std::string, std::uint64_t>& references() {
    static std::map<std::string, std::uint64_t> refs = [] {
      std::map<std::string, std::uint64_t> out;
      for (const char* app : kAppNames) {
        StampConfig cfg = base_config();
        cfg.threads = 1;
        cfg.scheme = locks::Scheme::kStandard;
        out[app] = run_app(app, cfg).checksum;
      }
      return out;
    }();
    return refs;
  }
};

TEST_P(StampApps, CompletesCorrectly) {
  const StampParam p = GetParam();
  StampConfig cfg = base_config();
  cfg.scheme = p.scheme;
  cfg.lock = p.lock;
  const StampResult r = run_app(p.app, cfg);
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(r.elapsed_cycles, 0u);
  EXPECT_TRUE(r.invariants_ok);
  EXPECT_GE(r.attempts, r.ops);
  EXPECT_LE(r.nonspec_ops, r.ops);
  if (deterministic_app(p.app)) {
    EXPECT_EQ(r.checksum, references()[p.app])
        << p.app << " result depends on the locking scheme";
  }
}

std::vector<StampParam> stamp_params() {
  std::vector<StampParam> out;
  for (const char* app : kAllAppNames) {
    for (const auto scheme :
         {locks::Scheme::kStandard, locks::Scheme::kHle,
          locks::Scheme::kHleScm, locks::Scheme::kPesSlr,
          locks::Scheme::kOptSlr, locks::Scheme::kOptSlrScm}) {
      out.push_back({app, scheme, LockKind::kTtas});
      out.push_back({app, scheme, LockKind::kMcs});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllApps, StampApps,
                         ::testing::ValuesIn(stamp_params()),
                         stamp_param_name);

TEST(StampScaling, ThreadCountPreservesResults) {
  for (const char* app : {"genome", "kmeans_high", "ssca2", "intruder"}) {
    StampConfig cfg = base_config();
    cfg.scheme = locks::Scheme::kHleScm;
    std::uint64_t first = 0;
    for (const int threads : {1, 2, 8}) {
      cfg.threads = threads;
      const StampResult r = run_app(app, cfg);
      EXPECT_TRUE(r.invariants_ok) << app << " @" << threads;
      if (threads == 1) {
        first = r.checksum;
      } else {
        EXPECT_EQ(r.checksum, first) << app << " @" << threads;
      }
    }
  }
}

TEST(StampSpeedup, ElisionBeatsSerialAtEightThreads) {
  // Coarse sanity of the headline claim on the most elision-friendly app:
  // HLE-SCM must beat the standard lock at 8 threads on genome.
  StampConfig cfg = base_config();
  cfg.scale = 0.25;
  cfg.scheme = locks::Scheme::kStandard;
  const auto standard = run_app("genome", cfg);
  cfg.scheme = locks::Scheme::kHleScm;
  const auto scm = run_app("genome", cfg);
  EXPECT_LT(scm.elapsed_cycles, standard.elapsed_cycles);
}

TEST(StampApi, UnknownAppCheckFails) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  StampConfig cfg = base_config();
  EXPECT_DEATH(run_app("nonexistent", cfg), "unknown STAMP app");
}

}  // namespace
}  // namespace elision::stamp
