// Incrementally-maintained min/argmin index over per-thread virtual clocks.
//
// The scheduler needs, once per simulated memory access, the smallest clock
// among runnable threads and the id of its first holder (lowest tid wins
// ties). The seed implementation swept all N clocks per access with a
// data-dependent argmin branch — O(N) work and a mispredict-heavy loop that
// dominated the profile on big simulated machines.
//
// This is a flat array-backed tournament tree of arity kGroupSize (16):
// clocks live in one dense array padded to a multiple of the group size
// with the finished sentinel; each group of 16 consecutive tids caches its
// (min, argmin) pair, and the root caches the winner across groups. An
// update rescans only the updated thread's group and the per-group minima —
// two short contiguous scans with independent compares (at most
// 16 + ceil(N/16) steps, so 32 for the 256-thread cap) instead of one long
// serial sweep — and the root query is O(1).
//
// Machines of at most one group (<= 16 threads, which covers the paper's
// 8-hyperthread i7 and every historical bench point) skip the cached levels
// entirely: set() is a plain store and min_entry() is the seed's fused
// min/argmin sweep, computed on demand. At that size the sweep costs the
// same as maintaining the caches would, and running the seed's exact
// instruction sequence keeps the small-machine canaries at seed throughput.
//
// Tie-break equivalence: the group scan keeps the first (lowest-index)
// holder of the group minimum, and the root scan keeps the first group
// holding the overall minimum. Lowest group of the winners + lowest index
// within the winning group is exactly the first-index-wins answer of the
// seed's linear sweep, so schedules are preserved bit-for-bit.
//
// Finished threads (and padding slots beyond size()) hold kFinishedClock,
// so they lose every comparison against a live thread and min_clock()
// degrades to the sentinel when nothing is runnable.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "support/check.hpp"
#include "support/inline.hpp"

namespace elision::sim {

class ReadyQueue {
 public:
  static constexpr std::uint64_t kFinishedClock =
      std::numeric_limits<std::uint64_t>::max();
  static constexpr std::size_t kGroupShift = 4;
  static constexpr std::size_t kGroupSize = 1u << kGroupShift;  // tree arity
  // Two levels of arity-16 nodes index up to 256 threads; a third level
  // would be needed beyond that (see kMaxSimThreads in machine_config.hpp).
  static constexpr std::size_t kMaxIndexable = kGroupSize * kGroupSize;

  // Registers the next thread id (clock 0) and returns it.
  int add_thread() {
    const int tid = static_cast<int>(size_);
    ELISION_CHECK_MSG(size_ < kMaxIndexable,
                      "ReadyQueue indexes at most kMaxIndexable threads");
    ++size_;
    if (clocks_.size() < size_) {
      clocks_.resize(clocks_.size() + kGroupSize, kFinishedClock);
      group_min_.push_back(kFinishedClock);
      group_tid_.push_back(tid);
    }
    clocks_[static_cast<std::size_t>(tid)] = 0;
    // Rebuild every cached level from scratch: set() maintains only the
    // levels above the updated tid and, on a one-level machine, skips the
    // group caches entirely — growing the machine (including across the
    // one-level/two-level boundary) must leave all of them coherent.
    rebuild();
    return tid;
  }

  // Updates tid's clock and the cached tournament levels above it.
  //
  // Scheduler clocks are monotonic, which buys the O(1) fast path: when a
  // clock moves up and its holder was not the cached argmin of its level,
  // no cached winner can change and the update is two compares. Rescans
  // happen only while the updated thread actually holds a minimum — i.e.
  // right after it was scheduled — so a thread running ahead of the pack
  // (yield slack, SMT penalty) updates in O(1) per access. Decreasing a
  // clock (rebuilds, unit tests) takes the full rescan path.
  // Must compile into SimThread::advance() (and from there into the engine's
  // charge functions) the way the seed's open-coded sweep did; the two-level
  // rescan stays out of line so it does not drag the caller over the
  // inliner's size budget. On a one-group machine there are no cached
  // levels and this is a plain store.
  ELISION_ALWAYS_INLINE void set(int tid, std::uint64_t clock) {
    ELISION_DCHECK(static_cast<std::size_t>(tid) < size_);
    const std::size_t ti = static_cast<std::size_t>(tid);
    if (size_ <= kGroupSize) {
      clocks_[ti] = clock;
      return;
    }
    const bool moved_up = clock >= clocks_[ti];
    clocks_[ti] = clock;
    const std::size_t g = ti >> kGroupShift;
    if (moved_up && group_tid_[g] != tid) return;
    rescan_from_group(g, moved_up);
  }

  // Fused context-switch update for the batching scheduler: re-enters the
  // outgoing thread at its final clock and parks the incoming thread at the
  // sentinel, repairing each touched group once and the root once — instead
  // of two set() calls, each of which would take the full decrease/argmin
  // rescan path and repair the root twice. Runs once per context switch.
  void exchange(int out_tid, std::uint64_t out_clock, int in_tid) {
    ELISION_DCHECK(out_tid != in_tid);
    const std::size_t oi = static_cast<std::size_t>(out_tid);
    const std::size_t ii = static_cast<std::size_t>(in_tid);
    clocks_[oi] = out_clock;
    clocks_[ii] = kFinishedClock;
    if (size_ <= kGroupSize) return;  // no cached levels to repair
    const std::size_t go = oi >> kGroupShift;
    const std::size_t gi = ii >> kGroupShift;
    // The incoming thread's clock rises to the sentinel, so its group needs
    // the full rescan (it held the group minimum — it was the global min).
    rescan_group(gi);
    if (go != gi) {
      // The outgoing thread re-enters a group whose cached (min, argmin)
      // was computed while it sat at the sentinel, so its clock can only
      // lower the minimum: an O(1) compare replaces the group rescan
      // (first-index-wins on ties, as everywhere).
      if (out_clock < group_min_[go] ||
          (out_clock == group_min_[go] && out_tid < group_tid_[go])) {
        group_min_[go] = out_clock;
        group_tid_[go] = out_tid;
      }
    }
    rescan_root();
  }

  // The (min clock, lowest holder tid) pair over all registered threads —
  // what the tick path reads once per simulated access. Two-level machines
  // read the cached root in O(1); one-group machines run the seed's fused
  // min/argmin sweep (first index wins ties) on demand. tid is only
  // meaningful while some thread is live (otherwise it names an arbitrary
  // finished/padding slot).
  struct Entry {
    std::uint64_t clock;
    std::int32_t tid;
  };
  ELISION_ALWAYS_INLINE Entry min_entry() const {
    ELISION_DCHECK(size_ > 0);
    if (size_ <= kGroupSize) return min_entry_single();
    return {root_min_, root_tid_};
  }

  // Smallest clock over all registered threads (kFinishedClock if none is
  // live).
  std::uint64_t min_clock() const {
    if (size_ == 0) return kFinishedClock;
    return min_entry().clock;
  }

  // Lowest tid holding min_clock(). Only meaningful while some thread is
  // live.
  int min_tid() const { return min_entry().tid; }

  std::uint64_t clock_of(int tid) const {
    return clocks_[static_cast<std::size_t>(tid)];
  }

  std::size_t size() const { return size_; }

 private:
  // Two-level slow path of set(): rescans tid's group and, when the root
  // could have changed, the per-group minima.
  ELISION_NOINLINE void rescan_from_group(std::size_t g, bool moved_up) {
    // Rescan the group: min pass without the data-dependent index (a
    // straight-line reduction), then first-index-of-min for the tie-break.
    // Padding sentinels never win, so scanning the full group is exact.
    const std::uint64_t* const base = clocks_.data() + (g << kGroupShift);
    std::uint64_t m = base[0];
    for (std::size_t i = 1; i < kGroupSize; ++i) {
      if (base[i] < m) m = base[i];
    }
    std::size_t mi = 0;
    while (base[mi] != m) ++mi;
    const std::int32_t gtid = static_cast<std::int32_t>((g << kGroupShift) + mi);
    if (m == group_min_[g] && gtid == group_tid_[g] && moved_up) return;
    group_min_[g] = m;
    group_tid_[g] = gtid;
    // The root must be rescanned when this group held it (its min moved) or
    // on a decrease (this group may now win). A group whose min only grew
    // cannot take the root from another group — including ties, because
    // first-group-wins already preferred any equal earlier group.
    if (moved_up && static_cast<std::size_t>(root_tid_) >> kGroupShift != g) {
      return;
    }
    const std::size_t groups = group_min_.size();
    std::uint64_t rm = group_min_[0];
    for (std::size_t i = 1; i < groups; ++i) {
      if (group_min_[i] < rm) rm = group_min_[i];
    }
    std::size_t rg = 0;
    while (group_min_[rg] != rm) ++rg;
    root_min_ = rm;
    root_tid_ = group_tid_[rg];
  }

  // Recomputes one group's cached (min, argmin) from its clocks.
  void rescan_group(std::size_t g) {
    const std::uint64_t* const base = clocks_.data() + (g << kGroupShift);
    std::uint64_t m = base[0];
    for (std::size_t i = 1; i < kGroupSize; ++i) {
      if (base[i] < m) m = base[i];
    }
    std::size_t mi = 0;
    while (base[mi] != m) ++mi;
    group_min_[g] = m;
    group_tid_[g] = static_cast<std::int32_t>((g << kGroupShift) + mi);
  }

  // Recomputes the cached root winner from the per-group minima
  // (first-group-wins tie-break).
  void rescan_root() {
    const std::size_t groups = group_min_.size();
    std::uint64_t rm = group_min_[0];
    for (std::size_t i = 1; i < groups; ++i) {
      if (group_min_[i] < rm) rm = group_min_[i];
    }
    std::size_t rg = 0;
    while (group_min_[rg] != rm) ++rg;
    root_min_ = rm;
    root_tid_ = group_tid_[rg];
  }

  // One-group fused min/argmin sweep of the live clocks (first index wins
  // ties) — the seed scheduler's exact loop. At <= kGroupSize elements the
  // fused loop beats the split min-then-find-first form used for full
  // groups.
  Entry min_entry_single() const {
    std::uint64_t m = clocks_[0];
    std::size_t mi = 0;
    for (std::size_t i = 1; i < size_; ++i) {
      if (clocks_[i] < m) {
        m = clocks_[i];
        mi = i;
      }
    }
    return {m, static_cast<std::int32_t>(mi)};
  }

  // Recomputes every cached level from the clocks alone. One-group machines
  // have no cached levels (min_entry() sweeps on demand), so only the
  // two-level shape does work here.
  void rebuild() {
    if (size_ <= kGroupSize) return;
    const std::size_t groups = group_min_.size();
    for (std::size_t g = 0; g < groups; ++g) {
      const std::uint64_t* const base = clocks_.data() + (g << kGroupShift);
      std::uint64_t m = base[0];
      for (std::size_t i = 1; i < kGroupSize; ++i) {
        if (base[i] < m) m = base[i];
      }
      std::size_t mi = 0;
      while (base[mi] != m) ++mi;
      group_min_[g] = m;
      group_tid_[g] = static_cast<std::int32_t>((g << kGroupShift) + mi);
    }
    std::uint64_t rm = group_min_[0];
    for (std::size_t i = 1; i < groups; ++i) {
      if (group_min_[i] < rm) rm = group_min_[i];
    }
    std::size_t rg = 0;
    while (group_min_[rg] != rm) ++rg;
    root_min_ = rm;
    root_tid_ = group_tid_[rg];
  }

  // clocks_[tid] for tid < size_; padding entries hold kFinishedClock so
  // they never beat a live thread.
  std::vector<std::uint64_t> clocks_;
  // Cached (min, argmin) per group of kGroupSize consecutive tids, plus the
  // root winner across groups. group_tid_ holds absolute tids.
  std::vector<std::uint64_t> group_min_;
  std::vector<std::int32_t> group_tid_;
  std::uint64_t root_min_ = kFinishedClock;
  std::int32_t root_tid_ = -1;
  std::size_t size_ = 0;  // registered thread count
};

}  // namespace elision::sim
