// STAMP kmeans: iterative K-means clustering.
//
// Transactional character: very short transactions that accumulate a point
// into the shared per-cluster sums. Contention is governed by K: the "high
// contention" configuration uses few clusters (every update hits the same
// handful of accumulator lines), "low" uses many.
//
// The immutable point coordinates are read outside the critical section (as
// in STAMP, where only the accumulation is transactional); their scan cost
// is charged as compute.
#include <cstdint>
#include <vector>

#include "stamp/detail.hpp"
#include "support/rng.hpp"
#include "tsx/shared.hpp"

namespace elision::stamp {

namespace {
constexpr int kDims = 4;
constexpr int kIters = 3;
constexpr std::int64_t kFixedPoint = 1024;  // coordinates in fixed point
}  // namespace

StampResult run_kmeans(const StampConfig& cfg, bool high_contention) {
  const int k = high_contention ? 4 : 40;
  const auto n_points = static_cast<std::size_t>(2048 * cfg.scale);

  // Immutable input points (host data; scanned outside transactions).
  support::Xoshiro256 rng(cfg.seed);
  std::vector<std::int64_t> points(n_points * kDims);
  for (auto& v : points) {
    v = static_cast<std::int64_t>(rng.next_below(100 * kFixedPoint));
  }

  // Shared state: per-cluster coordinate sums and counts, plus the current
  // centroids (updated by thread 0 between iterations).
  tsx::SharedArray<std::int64_t> acc(static_cast<std::size_t>(k) * kDims);
  tsx::SharedArray<std::int64_t> cnt(k);
  tsx::SharedArray<std::int64_t> centroid(static_cast<std::size_t>(k) * kDims);
  for (int c = 0; c < k; ++c) {
    for (int d = 0; d < kDims; ++d) {
      centroid[static_cast<std::size_t>(c) * kDims + d].unsafe_set(
          points[(c * 37 % n_points) * kDims + d]);
    }
  }

  return detail::dispatch_lock(cfg, [&](auto& lock) {
    using Lock = std::remove_reference_t<decltype(lock)>;
    sim::Scheduler sched(cfg.machine);
    tsx::Engine eng(sched, cfg.tsx);
    locks::CriticalSection<Lock> cs(locks::ElisionPolicy::from_scheme(cfg.scheme), lock);
    SimBarrier barrier(cfg.threads);
    std::vector<OpTally> tallies(cfg.threads);

    for (int t = 0; t < cfg.threads; ++t) {
      sched.spawn([&, t](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        const auto [lo, hi] = detail::partition(n_points, t, cfg.threads);
        for (int iter = 0; iter < kIters; ++iter) {
          for (std::size_t p = lo; p < hi; ++p) {
            // Find the nearest centroid: reads of the (stable within an
            // iteration) centroid array, plus arithmetic.
            int best = 0;
            std::int64_t best_d2 = INT64_MAX;
            for (int c = 0; c < k; ++c) {
              std::int64_t d2 = 0;
              for (int d = 0; d < kDims; ++d) {
                const std::int64_t diff =
                    points[p * kDims + d] -
                    centroid[static_cast<std::size_t>(c) * kDims + d].load(
                        ctx);
                d2 += diff * diff / kFixedPoint;
              }
              if (d2 < best_d2) {
                best_d2 = d2;
                best = c;
              }
            }
            // The STAMP transaction: fold the point into cluster `best`.
            tallies[t].add(cs.run(ctx, [&] {
              for (int d = 0; d < kDims; ++d) {
                auto& slot = acc[static_cast<std::size_t>(best) * kDims + d];
                slot.store(ctx, slot.load(ctx) + points[p * kDims + d]);
              }
              cnt[best].store(ctx, cnt[best].load(ctx) + 1);
            }));
          }
          barrier.wait(ctx);
          if (t == 0) {
            // Recompute centroids (single-threaded phase, direct accesses).
            for (int c = 0; c < k; ++c) {
              const std::int64_t n = cnt[c].load(ctx);
              for (int d = 0; d < kDims; ++d) {
                auto& a = acc[static_cast<std::size_t>(c) * kDims + d];
                if (n > 0) {
                  centroid[static_cast<std::size_t>(c) * kDims + d].store(
                      ctx, a.load(ctx) / n);
                }
                a.store(ctx, 0);
              }
              cnt[c].store(ctx, 0);
            }
          }
          barrier.wait(ctx);
        }
      });
    }
    sched.run();

    std::uint64_t checksum = 0;
    for (int c = 0; c < k; ++c) {
      for (int d = 0; d < kDims; ++d) {
        checksum = checksum * 1000003 +
                   static_cast<std::uint64_t>(
                       centroid[static_cast<std::size_t>(c) * kDims + d]
                           .unsafe_get());
      }
    }
    return detail::collect(high_contention ? "kmeans_high" : "kmeans_low",
                           checksum, sched.elapsed_cycles(), tallies);
  });
}

}  // namespace elision::stamp
