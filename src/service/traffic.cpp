#include "service/traffic.hpp"

namespace elision::service {

namespace {

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  ELISION_CHECK_MSG(n >= 1, "ZipfGenerator needs a non-empty domain");
  ELISION_CHECK_MSG(theta > 0.0 && theta < 10.0 && theta != 1.0,
                    "ZipfGenerator theta must be positive and != 1");
  zetan_ = zeta(n_, theta_);
  const double zeta2 = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = std::pow(0.5, theta_);
}

std::uint64_t ZipfGenerator::next(support::Xoshiro256& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (n_ >= 2 && uz < 1.0 + half_pow_theta_) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank < n_ ? rank : n_ - 1;
}

}  // namespace elision::service
