// Reader-writer word shared by the two-mode lock family (ROADMAP item 3:
// shared-mode elision — the lock family the paper's Ch. 5 schemes never
// measured).
//
// The lock state is split across two cache lines:
//
//   writer word (the elidable lock line)
//     bit  0       a writer holds the lock exclusively
//     bits 1..20   count of writers that announced intent ("pending"); a
//                  nonzero count blocks *new* readers, giving writers
//                  preference so a stream of readers cannot starve a writer
//     bits 21..63  transient elided-reader illusion only (see below); a
//                  committed word never carries reader bits
//
//   reader count (its own line)
//     number of *non-speculative* readers inside the critical section
//
// An *elided* acquisition in either mode never stores to the writer word:
// readers subscribe with an XACQUIRE FETCH_ADD of kReaderUnit whose store is
// elided (the +unit exists only in the transaction's illusion of the word),
// writers with an XACQUIRE CMPXCHG — both put the word in the transaction's
// read set, so a writer's real acquisition invalidates the line and aborts
// the whole speculating crowd at once. That crowd abort is the
// reader-avalanche the writer-heavy btree bench points measure.
//
// A reader that *falls back*, however, must become visible without
// disturbing that subscription: if fallback readers counted themselves in
// the writer word, every entry/exit pair of real RMWs would abort the
// elided crowd, and — because a real reader does not set kReaderBlockMask —
// the crowd would immediately re-subscribe and be aborted again, a
// ping-pong cascade that makes shared elision *lose* to exclusive elision
// on read-mostly workloads. Hence the separate reader-count line: real
// readers count themselves there, elided readers never touch it, and only
// writers (who must drain real readers anyway) read it — an elided writer
// subscribes to it so a real reader's arrival still dooms the speculation.
#pragma once

#include <cstdint>

#include "tsx/shared.hpp"

namespace elision::locks::rw {

inline constexpr std::uint64_t kWriter = 1;
inline constexpr std::uint64_t kPendingUnit = 2;
inline constexpr std::uint64_t kPendingMask =
    ((std::uint64_t{1} << 20) - 1) << 1;
inline constexpr int kReaderShift = 21;
inline constexpr std::uint64_t kReaderUnit = std::uint64_t{1} << kReaderShift;
// A reader may enter only while no writer holds *or awaits* the lock.
inline constexpr std::uint64_t kReaderBlockMask = kWriter | kPendingMask;

inline constexpr std::uint64_t reader_count(std::uint64_t v) {
  return v >> kReaderShift;
}

// Shared-mode acquisition; both shared locks use this reader protocol.
//
// Speculative mode: the XACQUIRE FETCH_ADD elides the increment and
// subscribes to the writer word. If the word turns out write-locked the
// attempt is doomed — the elision illusion pins the word, so spinning inside
// the transaction cannot observe a change — and the PAUSE aborts it; the
// region driver then retries or falls back.
//
// Standard mode: announce on the reader-count line, then recheck the writer
// word — if a writer appeared in the window, back out and re-wait. The
// entry/exit RMWs touch only the reader line, so fallback readers coexist
// with the elided crowd instead of aborting it.
inline void lock_shared(tsx::Ctx& ctx, tsx::Shared<std::uint64_t>& word,
                        tsx::Shared<std::uint64_t>& readers) {
  if (ctx.mode() == tsx::ElisionMode::kSpeculative) {
    for (;;) {
      while ((word.load(ctx) & kReaderBlockMask) != 0) ctx.engine().pause(ctx);
      const std::uint64_t old = word.xacquire_fetch_add(ctx, kReaderUnit);
      if ((old & kReaderBlockMask) == 0) return;
      ctx.engine().pause(ctx);  // doomed attempt: abort
    }
  }
  for (;;) {
    while ((word.load(ctx) & kReaderBlockMask) != 0) ctx.engine().pause(ctx);
    readers.fetch_add(ctx, 1);
    if ((word.load(ctx) & kReaderBlockMask) == 0) return;
    readers.fetch_add(ctx, std::uint64_t{0} - 1);  // writer won: back out
  }
}

inline void unlock_shared(tsx::Ctx& ctx, tsx::Shared<std::uint64_t>& word,
                          tsx::Shared<std::uint64_t>& readers) {
  if (ctx.in_tx()) {
    // Elided: illusion (original + unit) plus the decrement restores the
    // original word, so the XRELEASE validates and commits.
    word.xrelease_fetch_add(ctx, std::uint64_t{0} - kReaderUnit);
    return;
  }
  readers.fetch_add(ctx, std::uint64_t{0} - 1);
}

// One non-speculative shared re-acquisition attempt — the shared-mode
// analogue of reissue_acquire_standard(). TTAS semantics: fails when a
// writer holds or awaits the lock, after which the caller spins and may
// re-enter speculation.
inline bool reissue_acquire_shared(tsx::Ctx& ctx,
                                   tsx::Shared<std::uint64_t>& word,
                                   tsx::Shared<std::uint64_t>& readers) {
  if ((word.load(ctx) & kReaderBlockMask) != 0) return false;
  readers.fetch_add(ctx, 1);
  if ((word.load(ctx) & kReaderBlockMask) == 0) return true;
  readers.fetch_add(ctx, std::uint64_t{0} - 1);
  return false;
}

}  // namespace elision::locks::rw
