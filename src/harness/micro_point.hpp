// A fixed-work engine/scheduler microbenchmark registered as a suite point.
//
// Unlike the RB-tree points (fixed *virtual* duration, so their host wall
// time floats with simulator speed but their simulated metrics do not), this
// point performs a fixed number of RTM transactions over a small shared
// array. Its simulated metrics are deterministic per seed, and its host wall
// time divided into the fixed operation count — the suite's sim_ops_per_sec
// metric — measures how fast the simulator itself executes. Gating that
// metric against bench/baseline.json catches host-side performance
// regressions of the engine hot path that no virtual-time metric can see.
#pragma once

#include <cstdint>

#include "harness/runner.hpp"

namespace elision::harness {

struct MicroPoint {
  int threads = 8;
  std::uint64_t ops_per_thread = 25000;
  std::size_t array_words = 1024;  // shared array the transactions touch
  std::uint64_t seed = 42;
};

// Runs the fixed-work microbenchmark once; fully deterministic per seed.
RunStats run_micro_point(const MicroPoint& p);

}  // namespace elision::harness
