// A binary min-heap over simulated shared memory: the elision-hostile
// data structure. Every push/pop writes within a few levels of the root,
// so almost all concurrent operations truly conflict — the opposite of the
// tree/hash/skiplist workloads. Elision cannot manufacture parallelism
// that is not there (the paper's premise is exposing *existing*
// concurrency); the heap benchmark demonstrates the schemes degrading
// gracefully to serialized performance instead of collapsing below it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/align.hpp"
#include "tsx/shared.hpp"

namespace elision::ds {

class BinHeap {
 public:
  explicit BinHeap(std::size_t capacity);

  BinHeap(const BinHeap&) = delete;
  BinHeap& operator=(const BinHeap&) = delete;

  // Returns false when full.
  bool push(tsx::Ctx& ctx, std::uint64_t key);
  // Returns false when empty, else pops the minimum into *key.
  bool pop_min(tsx::Ctx& ctx, std::uint64_t* key);
  // Returns false when empty.
  bool peek_min(tsx::Ctx& ctx, std::uint64_t* key);
  std::uint64_t size(tsx::Ctx& ctx) { return size_.value.load(ctx); }

  // --- setup/verification ---
  bool unsafe_push(std::uint64_t key);
  std::size_t unsafe_size() const { return size_.value.unsafe_get(); }
  // Validates the heap property over the whole array.
  bool unsafe_validate(std::string* why = nullptr) const;

 private:
  void sift_up(tsx::Ctx& ctx, std::uint64_t i);
  void sift_down(tsx::Ctx& ctx, std::uint64_t i, std::uint64_t n);

  tsx::SharedArray<std::uint64_t> slots_;
  support::CacheAligned<tsx::Shared<std::uint64_t>> size_;
};

}  // namespace elision::ds
