// Figure 2.1 — "Transactional behavior in practice": fraction of failed
// transactions vs read/write-set size, one thread, no contention.
//
// Expected shape (as on real Haswell): a small spurious-abort floor at tiny
// sizes; writes hit a hard cliff above 32 KB (the L1 write-set bound); reads
// survive past L1 and L2 with a rising failure fraction and die near L3.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "sim/scheduler.hpp"
#include "support/align.hpp"
#include "tsx/shared.hpp"

namespace {

using namespace elision;

struct SizePoint {
  const char* label;
  std::size_t bytes;
};

const SizePoint kSizes[] = {
    {"128", 128},       {"512", 512},       {"2K", 2048},
    {"8K", 8192},       {"32K", 32768},     {"128K", 131072},
    {"512K", 524288},   {"2M", 2097152},    {"4M", 4194304},
    {"6M", 6291456},    {"8M", 8388608},
};

double failure_fraction(bool write, std::size_t bytes, std::size_t trials,
                        tsx::SharedArray<std::uint64_t>& arena) {
  const std::size_t lines = bytes / support::kCacheLineBytes;
  sim::MachineConfig mcfg;
  mcfg.n_cores = 1;
  mcfg.smt_per_core = 1;
  sim::Scheduler sched(mcfg);
  tsx::Engine eng(sched);  // default (Haswell-like) TSX config
  std::size_t failures = 0;
  sched.spawn([&](sim::SimThread& t) {
    auto& ctx = eng.context(t);
    for (std::size_t i = 0; i < trials; ++i) {
      const unsigned st = eng.run_transaction(ctx, [&] {
        // Touch one word in each of `lines` consecutive cache lines.
        for (std::size_t l = 0; l < lines; ++l) {
          auto& word = arena[l * 8];
          if (write) {
            word.store(ctx, i);
          } else {
            (void)word.load(ctx);
          }
        }
      });
      if (st != tsx::kCommitted) ++failures;
    }
  });
  sched.run();
  return static_cast<double>(failures) / static_cast<double>(trials);
}

}  // namespace

int main() {
  using namespace elision;
  harness::banner("Figure 2.1",
                  "Sporadic speculative failures: failure fraction vs "
                  "read/write set size (1 thread, no contention).\n"
                  "Expect: spurious floor at small sizes; hard write cliff "
                  "above 32K (L1); reads survive past L2 (256K), rising "
                  "failures toward L3 (8M).");
  const double scale = harness::env_duration_scale();
  // 8 MB = 131072 lines; 8 shared words per line.
  tsx::SharedArray<std::uint64_t> arena(8388608 / 8);

  harness::Table table(
      {"set-size", "read-failure-frac", "write-failure-frac"});
  for (const auto& s : kSizes) {
    const std::size_t lines = s.bytes / 64;
    const auto trials = std::max<std::size_t>(
        64, static_cast<std::size_t>(scale * 2.0e6 /
                                     static_cast<double>(lines)));
    const double rf = failure_fraction(false, s.bytes, trials, arena);
    const double wf = failure_fraction(true, s.bytes, trials, arena);
    table.add_row({s.label, harness::fmt(rf, 6), harness::fmt(wf, 6)});
  }
  table.print();
  return 0;
}
