#include "tsx/engine.hpp"

#include <utility>

namespace elision::tsx {

using support::LineId;
using support::line_of;

Engine::Engine(sim::Scheduler& sched, TsxConfig config)
    : sched_(sched), config_(config), cost_(sched.config().cost) {}

TxContext& Engine::context(sim::SimThread& t) {
  const auto id = static_cast<std::size_t>(t.tid());
  if (id >= contexts_.size()) contexts_.resize(id + 1);
  if (!contexts_[id]) {
    contexts_[id] = std::make_unique<TxContext>(*this, t);
    // Pre-size the per-transaction state once so steady-state retry loops
    // never allocate (see MachineConfig's capacity hints).
    const sim::MachineConfig& m = sched_.config();
    contexts_[id]->read_lines_.reserve(m.tx_read_set_hint);
    contexts_[id]->write_lines_.reserve(m.tx_write_set_hint);
    contexts_[id]->wbuf_.reserve(m.tx_write_buffer_hint);
  }
  return *contexts_[id];
}

TxStats Engine::total_stats() const {
  TxStats total;
  for (const auto& c : contexts_) {
    if (c) total += c->stats();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Cost accounting / sharing model
// ---------------------------------------------------------------------------

void Engine::charge_read(Ctx& ctx, LineRecord& rec) {
  std::uint64_t cost;
  if (rec.copies.test(ctx.id())) {
    cost = cost_.l1_hit;
  } else if (rec.dirty_owner != kNoThread && rec.dirty_owner != ctx.id()) {
    cost = cost_.remote_transfer;
    rec.dirty_owner = kNoThread;  // dirty line written back, now shared
  } else {
    cost = cost_.llc_hit;
  }
  rec.copies.set(ctx.id());
  ctx.thread().tick(cost + cost_.access_compute);
}

void Engine::charge_write(Ctx& ctx, LineRecord& rec, bool is_rmw) {
  std::uint64_t cost;
  if (rec.copies.is_only(ctx.id()) && rec.dirty_owner == ctx.id()) {
    cost = cost_.l1_hit;  // already exclusive and dirty
  } else if (!rec.copies.any_other(ctx.id()) && rec.dirty_owner == kNoThread) {
    cost = cost_.llc_hit;  // upgrade, no other sharers
  } else {
    cost = cost_.remote_transfer;  // invalidate other copies
  }
  rec.copies.assign_only(ctx.id());
  rec.dirty_owner = ctx.id();
  ctx.thread().tick(cost + cost_.access_compute +
                    (is_rmw ? cost_.rmw_extra : 0));
}

// ---------------------------------------------------------------------------
// Protocol helpers
// ---------------------------------------------------------------------------

void Engine::release_ownership(Ctx& ctx) {
  // Set entries are stable record pointers (see TxContext::read_lines_):
  // one deref per line, no table probing or validation.
  for (LineRecord* rec : ctx.read_lines_) rec->readers.reset(ctx.id());
  for (LineRecord* rec : ctx.write_lines_) {
    if (rec->writer == ctx.id()) rec->writer = kNoThread;
  }
  ctx.read_lines_.clear();
  ctx.write_lines_.clear();
  ctx.l1_set_occupancy_.fill(0);
  // Every path that strips this context's reader/writer ownership funnels
  // through here (commit, self-abort, remote abort), so one epoch bump
  // invalidates all of its cached owned-line entries at once.
  ++ctx.own_epoch_;
}

void Engine::rollback_and_throw(Ctx& ctx, AbortCause cause,
                                std::uint8_t code) {
  // Speculatively written lines are discarded from the owner's cache, as a
  // hardware abort invalidates them.
  for (LineRecord* rec : ctx.write_lines_) {
    rec->copies.reset(ctx.id());
    if (rec->dirty_owner == ctx.id()) rec->dirty_owner = kNoThread;
  }
  release_ownership(ctx);
  ctx.wbuf_.clear();
  unsigned st = status_of(cause, code);
  if (ctx.nest_depth_ > 1) st |= status::kNested;
  ctx.elided_ = false;
  ctx.elided_is_tx_root_ = false;
  ctx.lock_line_data_accessed_ = false;
  ctx.nest_depth_ = 0;
  ctx.state_ = TxState::kInactive;
  ctx.pending_cause_ = AbortCause::kNone;
  // Expose the abort feedback the paper's future-work section asks for.
  if (cause == AbortCause::kConflict) {
    ctx.last_conflict_line_ = ctx.pending_conflict_line_;
    ctx.last_conflict_thread_ = ctx.pending_conflict_thread_;
  } else {
    ctx.last_conflict_line_ = 0;
    ctx.last_conflict_thread_ = -1;
  }
  ctx.pending_conflict_line_ = 0;
  ctx.pending_conflict_thread_ = -1;
  ctx.last_abort_cause_ = cause;
  ctx.stats_.record_abort(cause);
  if (trace_ != nullptr) [[unlikely]] {
    trace_->record({.timestamp = ctx.thread().now(),
                    .thread = ctx.id(),
                    .kind = TraceEvent::Kind::kAbort,
                    .cause = cause,
                    .conflict_line = ctx.last_conflict_line_,
                    .conflict_thread = ctx.last_conflict_thread_});
  }
  if constexpr (kTelemetryCompiled) {
    if (telemetry_ != nullptr) [[unlikely]] {
      telemetry_->record(
          {.timestamp = ctx.thread().now(),
           .line = ctx.last_conflict_line_,
           .thread = static_cast<std::int16_t>(ctx.id()),
           .other_thread = static_cast<std::int16_t>(ctx.last_conflict_thread_),
           .kind = EventKind::kTxAbort,
           .cause = cause});
    }
  }
  ctx.thread().tick(cost_.abort_penalty);
  throw TxAbortException{st, cause};
}

void Engine::abort_self(Ctx& ctx, AbortCause cause, std::uint8_t code) {
  ELISION_DCHECK(ctx.in_tx());
  rollback_and_throw(ctx, cause, code);
}

void Engine::abort_remote(int victim_id, AbortCause cause,
                          support::LineId line, int requester_id) {
  ELISION_DCHECK(victim_id >= 0 &&
                 static_cast<std::size_t>(victim_id) < contexts_.size());
  TxContext& victim = *contexts_[victim_id];
  ELISION_DCHECK(victim.state_ == TxState::kActive);
  // Requestor wins: the victim's ownerships are torn down immediately so the
  // requesting access proceeds; the victim observes the abort at its next
  // engine interaction (hardware would interrupt it at instruction
  // granularity — the difference is at most one non-memory instruction).
  for (LineRecord* rec : victim.write_lines_) {
    rec->copies.reset(victim.id());
    if (rec->dirty_owner == victim.id()) rec->dirty_owner = kNoThread;
  }
  release_ownership(victim);
  victim.state_ = TxState::kAbortMarked;
  victim.pending_cause_ = cause;
  victim.pending_conflict_line_ = line;
  victim.pending_conflict_thread_ = requester_id;
}


// Under kOldestWins, a transactional requester defers to an older owner by
// aborting itself; under kRequestorWins (Haswell) the owner is always the
// victim. Non-transactional requesters always win.
bool Engine::requester_must_yield(Ctx& requester, const TxContext& owner)
    const {
  return config_.conflict_policy == ConflictPolicy::kOldestWins &&
         owner.begin_time_ < requester.begin_time_;
}

void Engine::abort_readers(LineRecord& rec, LineId line, int except_id,
                           int requester_id) {
  // Iterate a snapshot in ascending id order: tearing a victim down clears
  // its reader bits in `rec` itself.
  ThreadSet victims = rec.readers;
  if (except_id >= 0) victims.reset(except_id);
  victims.for_each([&](int r) {
    TxContext& victim = *contexts_[r];
    if (config_.hardware_extension && victim.elided_ &&
        victim.elided_line_ == line && !victim.lock_line_data_accessed_) {
      // Chapter 7: a conflict on the elided lock's line is a synchronization
      // signal, not a data conflict — the speculator survives and will
      // suspend if it needs to grow its footprint while the lock is held.
      return;
    }
    abort_remote(r, AbortCause::kConflict, line, requester_id);
  });
}

void Engine::read_set_admit(Ctx& ctx, LineId /*line*/) {
  const std::size_t r = ctx.read_lines_.size();
  const std::size_t l1_lines =
      static_cast<std::size_t>(config_.l1_sets) * config_.l1_ways;
  if (r <= l1_lines) return;
  if (r > config_.l3_lines) abort_self(ctx, AbortCause::kCapacity);
  double p;
  if (r <= config_.l2_lines) {
    p = config_.read_evict_l2;
  } else {
    const double frac = static_cast<double>(r - config_.l2_lines) /
                        static_cast<double>(config_.l3_lines - config_.l2_lines);
    p = config_.read_evict_l2 +
        (config_.read_evict_l3_max - config_.read_evict_l2) * frac;
  }
  if (ctx.thread().rng().next_bool(p)) abort_self(ctx, AbortCause::kCapacity);
}

void Engine::write_set_admit(Ctx& ctx, LineId line) {
  auto& occupancy =
      ctx.l1_set_occupancy_[line % config_.l1_sets];
  if (++occupancy > config_.l1_ways) abort_self(ctx, AbortCause::kCapacity);
}

void Engine::hwext_wait_for_new_line(Ctx& ctx, const LineRecord& /*rec*/) {
  // State S (Ch. 7): the lock was taken non-speculatively; this speculator
  // may not grow its read/write set until the lock returns to its
  // pre-acquire value. It suspends (modeled as a monitored wait) rather than
  // aborting.
  const auto* lock_addr = reinterpret_cast<const void*>(ctx.elided_addr_);
  const std::uint64_t start = ctx.thread().now();
  while (read_word(lock_addr) != ctx.elided_original_) {
    if (ctx.thread().now() - start > config_.hwext_max_wait_cycles) {
      // The lock state never returned to its pre-elision value (possible
      // with queue locks); hardware would abort the waiter on a timer.
      abort_self(ctx, AbortCause::kConflict);
    }
    ctx.thread().tick(cost_.pause);
    ctx.thread().yield();
    poll(ctx);
  }
}

// ---------------------------------------------------------------------------
// Transactional accesses
// ---------------------------------------------------------------------------

std::uint64_t Engine::tx_load_slow(Ctx& ctx, const void* addr,
                                   std::uintptr_t key, LineId line,
                                   TxContext::CachedLine& cl) {
  // Record pointers are stable (chunked storage), so the memo needs only a
  // generation compare — no index probe, no re-fetch after yields. Gated on
  // the fast-path flag so ELISION_FASTPATH=0 zeroes every fastpath counter
  // and its output stays byte-identical to the pre-fastpath schema.
  LineRecord* rec;
  if (config_.owned_line_fastpath && cl.ref.line == line &&
      cl.ref.gen == table_.generation()) {
    rec = cl.ref.rec;
    ++ctx.stats_.fp_probe_skips;
  } else {
    rec = &table_.record(line, cl.ref);
  }
  const bool in_rset = rec->readers.test(ctx.id());
  if (config_.hardware_extension) {
    const bool in_footprint =
        in_rset || rec->writer == ctx.id() || rec->copies.test(ctx.id());
    if (ctx.elided_ && !in_footprint) {
      hwext_wait_for_new_line(ctx, *rec);
    }
  }
  if (rec->writer != kNoThread && rec->writer != ctx.id()) {
    // Our read request hits another transaction's write set. Under
    // requestor-wins the owner aborts and we read pre-transactional
    // memory; under oldest-wins we defer to an older owner.
    if (requester_must_yield(ctx, *contexts_[rec->writer])) {
      abort_self(ctx, AbortCause::kConflict);
    }
    abort_remote(rec->writer, AbortCause::kConflict, line, ctx.id());
  }
  if (!in_rset) {
    rec->readers.set(ctx.id());
    ctx.read_lines_.push_back(rec);
    read_set_admit(ctx, line);  // may abort self
  }
  if (ctx.elided_ && line == ctx.elided_line_ && key != ctx.elided_addr_) {
    ctx.lock_line_data_accessed_ = true;
  }
  const std::uint64_t value = read_word(addr);
  if (config_.owned_line_fastpath && !config_.hardware_extension) {
    // Reader bit held; writer is now self or none (a foreign writer was
    // aborted above, which cleared its slot). Full reassignment, never |=:
    // the entry may have cached a different line of the same epoch. Marked
    // before the charge: its tick may yield, and a remote abort during the
    // yield must land its epoch bump after this store (invalidating it).
    cl.owned_epoch = ctx.own_epoch_;
    cl.owned = static_cast<std::uint8_t>(
        Ctx::kOwnedRead | (rec->writer == ctx.id() ? Ctx::kOwnedWrite : 0));
  }
  charge_read(ctx, *rec);
  return value;
}

void Engine::tx_store_slow(Ctx& ctx, std::uint64_t value, std::uintptr_t key,
                           LineId line, TxContext::CachedLine& cl) {
  LineRecord* rec;
  if (config_.owned_line_fastpath && cl.ref.line == line &&
      cl.ref.gen == table_.generation()) {
    rec = cl.ref.rec;
    ++ctx.stats_.fp_probe_skips;
  } else {
    rec = &table_.record(line, cl.ref);
  }
  const bool in_wset = rec->writer == ctx.id();
  if (!in_wset) {
    if (config_.hardware_extension) {
      const bool in_footprint =
          rec->readers.test(ctx.id()) || rec->copies.test(ctx.id());
      if (ctx.elided_ && !in_footprint) {
        hwext_wait_for_new_line(ctx, *rec);
      }
    }
    if (rec->writer != kNoThread && rec->writer != ctx.id()) {
      if (requester_must_yield(ctx, *contexts_[rec->writer])) {
        abort_self(ctx, AbortCause::kConflict);
      }
      abort_remote(rec->writer, AbortCause::kConflict, line,
                   ctx.id());  // write-write
    }
    if (config_.conflict_policy == ConflictPolicy::kOldestWins) {
      // Defer to the oldest conflicting reader, if any is older than us
      // (abort_self throws, exiting the scan like the break it replaces).
      ThreadSet older = rec->readers;
      older.reset(ctx.id());
      older.for_each([&](int r) {
        if (requester_must_yield(ctx, *contexts_[r])) {
          abort_self(ctx, AbortCause::kConflict);
        }
      });
    }
    // Our write request (RFO) invalidates the line everywhere; transactions
    // holding it in their read set abort. Guarded: the common upgrade of a
    // line this tx already read (and nobody else did) has no victims, and
    // any_other is cheaper than snapshotting and scanning the reader set.
    if (rec->readers.any_other(ctx.id())) {
      abort_readers(*rec, line, ctx.id(), ctx.id());
    }
    rec->writer = ctx.id();
    ctx.write_lines_.push_back(rec);
    write_set_admit(ctx, line);  // may abort self (capacity)
  }
  if (ctx.elided_ && key == ctx.elided_addr_) {
    // Writing the elided lock word as data: from here on its line counts as
    // a data line (Ch. 7) and reads must see this buffered value.
    ctx.lock_line_data_accessed_ = true;
  }
  ctx.wbuf_.put(key, value);
  if (config_.owned_line_fastpath && !config_.hardware_extension) {
    // Writer slot held. Read-owned only if the reader bit is actually set:
    // a write-set line outside the read set still owes its first load the
    // reader-bit update, the read_lines_ entry and the admission check.
    // Marked before the charge — see tx_load.
    cl.owned_epoch = ctx.own_epoch_;
    cl.owned = static_cast<std::uint8_t>(
        Ctx::kOwnedWrite |
        (rec->readers.test(ctx.id()) ? Ctx::kOwnedRead : 0));
  }
  charge_write(ctx, *rec, /*is_rmw=*/false);
}

// ---------------------------------------------------------------------------
// Direct (non-transactional) accesses
// ---------------------------------------------------------------------------

std::uint64_t Engine::direct_load(Ctx& ctx, const void* addr) {
  const LineId line = line_of(addr);
  LineRecord& rec = table_.record(line, ctx.line_cache_for(line).ref);
  if (rec.writer != kNoThread) {
    // A plain read request for a line in a transaction's write set aborts
    // that transaction; the read sees pre-transactional memory.
    abort_remote(rec.writer, AbortCause::kConflict, line, ctx.id());
  }
  const std::uint64_t value = read_word(addr);
  charge_read(ctx, rec);
  return value;
}

template <typename F>
std::uint64_t Engine::direct_update(Ctx& ctx, void* addr, bool is_rmw, F&& f) {
  const LineId line = line_of(addr);
  LineRecord& rec = table_.record(line, ctx.line_cache_for(line).ref);
  if (rec.writer != kNoThread) {
    abort_remote(rec.writer, AbortCause::kConflict, line, ctx.id());
  }
  // This is the avalanche mechanism: a non-transactional write (e.g. a lock
  // acquisition after an abort) invalidates the lock's cache line in every
  // speculating reader, aborting them all — unless the Ch. 7 extension
  // recognizes it as a lock-line-only conflict.
  if (rec.readers.any()) abort_readers(rec, line, /*except_id=*/-1, ctx.id());
  const std::uint64_t old = read_word(addr);
  write_word(addr, f(old));
  charge_write(ctx, rec, is_rmw);
  return old;
}

// ---------------------------------------------------------------------------
// Plain access API (routed)
// ---------------------------------------------------------------------------

void Engine::direct_store(Ctx& ctx, void* addr, std::uint64_t value) {
  direct_update(ctx, addr, /*is_rmw=*/false,
                [value](std::uint64_t) { return value; });
}

std::uint64_t Engine::exchange(Ctx& ctx, void* addr, std::uint64_t value) {
  if (ctx.in_tx()) {
    const std::uint64_t old = tx_load(ctx, addr);
    tx_store(ctx, addr, value);
    ctx.thread().tick(cost_.rmw_extra);
    return old;
  }
  return direct_update(ctx, addr, /*is_rmw=*/true,
                       [value](std::uint64_t) { return value; });
}

std::uint64_t Engine::fetch_add(Ctx& ctx, void* addr, std::uint64_t delta) {
  if (ctx.in_tx()) {
    const std::uint64_t old = tx_load(ctx, addr);
    tx_store(ctx, addr, old + delta);
    ctx.thread().tick(cost_.rmw_extra);
    return old;
  }
  return direct_update(ctx, addr, /*is_rmw=*/true,
                       [delta](std::uint64_t v) { return v + delta; });
}

bool Engine::compare_exchange(Ctx& ctx, void* addr, std::uint64_t expected,
                              std::uint64_t desired) {
  if (ctx.in_tx()) {
    const std::uint64_t old = tx_load(ctx, addr);
    if (old != expected) return false;
    tx_store(ctx, addr, desired);
    ctx.thread().tick(cost_.rmw_extra);
    return true;
  }
  bool ok = false;
  direct_update(ctx, addr, /*is_rmw=*/true,
                [&](std::uint64_t v) {
                  ok = (v == expected);
                  return ok ? desired : v;
                });
  return ok;
}

// ---------------------------------------------------------------------------
// Transactions (RTM)
// ---------------------------------------------------------------------------

void Engine::begin_tx(Ctx& ctx) {
  ELISION_DCHECK(ctx.state_ == TxState::kInactive);
  ctx.state_ = TxState::kActive;
  ctx.nest_depth_ = 1;
  ctx.begin_time_ = ctx.thread().now();
  ++ctx.stats_.begins;
  if (trace_ != nullptr) [[unlikely]] {
    trace_->record({.timestamp = ctx.thread().now(),
                    .thread = ctx.id(),
                    .kind = TraceEvent::Kind::kBegin});
  }
  note_event(ctx, EventKind::kTxBegin);
  ctx.thread().tick(cost_.xbegin);
  spurious_check(ctx, config_.spurious_per_begin);
}

void Engine::commit(Ctx& ctx) {
  ELISION_DCHECK(ctx.state_ != TxState::kInactive);
  // Charge the XEND cost first: the tick may yield, and a conflict arriving
  // during it must still abort us. After the final poll the publish/release
  // sequence performs no ticks, so it is atomic in the simulation.
  ctx.thread().tick(cost_.xend);
  poll(ctx);
  ctx.wbuf_.for_each(
      [](std::uintptr_t key, std::uint64_t v) {
        write_word(reinterpret_cast<void*>(key), v);
      });
  ctx.wbuf_.clear();
  release_ownership(ctx);
  ctx.elided_ = false;
  ctx.elided_is_tx_root_ = false;
  ctx.lock_line_data_accessed_ = false;
  ctx.nest_depth_ = 0;
  ctx.state_ = TxState::kInactive;
  ++ctx.stats_.commits;
  if (trace_ != nullptr) [[unlikely]] {
    trace_->record({.timestamp = ctx.thread().now(),
                    .thread = ctx.id(),
                    .kind = TraceEvent::Kind::kCommit});
  }
  note_event(ctx, EventKind::kTxCommit);
}

unsigned Engine::run_transaction(Ctx& ctx,
                                 support::FunctionRef<void()> body) {
  if (ctx.in_tx()) {
    // Flat nesting: the inner transaction is subsumed; an abort anywhere
    // unwinds to the outermost run_transaction.
    poll(ctx);
    ++ctx.nest_depth_;
    body();
    --ctx.nest_depth_;
    return kCommitted;
  }
  try {
    begin_tx(ctx);
    body();
    commit(ctx);
    return kCommitted;
  } catch (const TxAbortException& e) {
    return e.status;
  }
}

void Engine::xabort(Ctx& ctx, std::uint8_t code) {
  ELISION_CHECK_MSG(ctx.in_tx(), "XABORT outside a transaction");
  abort_self(ctx, AbortCause::kExplicit, code);
}

void Engine::pause(Ctx& ctx) {
  if (ctx.in_tx()) {
    // Haswell aborts a transaction that executes PAUSE; this is what dooms a
    // speculative thread spinning inside an elided fair-lock acquisition.
    abort_self(ctx, AbortCause::kPause);
  }
  ctx.thread().tick(cost_.pause);
}

// ---------------------------------------------------------------------------
// HLE
// ---------------------------------------------------------------------------

void Engine::elide_begin(Ctx& ctx, void* addr, std::uint64_t illusion_value) {
  const auto key = reinterpret_cast<std::uintptr_t>(addr);
  ELISION_CHECK_MSG(!ctx.elided_, "one elided lock per transaction supported");
  const LineId line = line_of(addr);
  Ctx::CachedLine& cl = ctx.line_cache_for(line);
  LineRecord& rec = table_.record(line, cl.ref);
  if (rec.writer != kNoThread && rec.writer != ctx.id()) {
    if (requester_must_yield(ctx, *contexts_[rec.writer])) {
      abort_self(ctx, AbortCause::kConflict);
    }
    abort_remote(rec.writer, AbortCause::kConflict, line, ctx.id());
  }
  if (!rec.readers.test(ctx.id())) {
    rec.readers.set(ctx.id());
    ctx.read_lines_.push_back(&rec);
    read_set_admit(ctx, line);
  }
  ctx.elided_ = true;
  ctx.elided_addr_ = key;
  ctx.elided_line_ = line;  // cached so the access paths never recompute it
  ctx.elided_original_ = read_word(addr);
  ctx.elided_illusion_ = illusion_value;
  ctx.lock_line_data_accessed_ = false;
  if (config_.owned_line_fastpath && !config_.hardware_extension) {
    // Marked before the charge — see tx_load.
    cl.owned_epoch = ctx.own_epoch_;
    cl.owned = static_cast<std::uint8_t>(
        Ctx::kOwnedRead | (rec.writer == ctx.id() ? Ctx::kOwnedWrite : 0));
  }
  charge_read(ctx, rec);
}

std::uint64_t Engine::xacquire_exchange(Ctx& ctx, void* addr,
                                        std::uint64_t value) {
  if (ctx.mode() == ElisionMode::kStandard) {
    return exchange(ctx, addr, value);
  }
  if (ctx.in_tx()) {
    poll(ctx);
    if (!config_.allow_hle_in_rtm) abort_self(ctx, AbortCause::kNesting);
    ctx.elided_is_tx_root_ = false;
    elide_begin(ctx, addr, value);
    return ctx.elided_original_;
  }
  begin_tx(ctx);
  ctx.elided_is_tx_root_ = true;
  elide_begin(ctx, addr, value);
  return ctx.elided_original_;
}

std::uint64_t Engine::xacquire_fetch_add(Ctx& ctx, void* addr,
                                         std::uint64_t delta) {
  if (ctx.mode() == ElisionMode::kStandard) {
    return fetch_add(ctx, addr, delta);
  }
  if (ctx.in_tx()) {
    poll(ctx);
    if (!config_.allow_hle_in_rtm) abort_self(ctx, AbortCause::kNesting);
    ctx.elided_is_tx_root_ = false;
  } else {
    begin_tx(ctx);
    ctx.elided_is_tx_root_ = true;
  }
  // Illusion value computed from the memory value at elision time.
  const std::uint64_t original = read_word(addr);
  elide_begin(ctx, addr, original + delta);
  return original;
}

bool Engine::xacquire_compare_exchange(Ctx& ctx, void* addr,
                                       std::uint64_t expected,
                                       std::uint64_t desired) {
  if (ctx.mode() == ElisionMode::kStandard) {
    return compare_exchange(ctx, addr, expected, desired);
  }
  if (ctx.in_tx()) {
    poll(ctx);
    if (!config_.allow_hle_in_rtm) abort_self(ctx, AbortCause::kNesting);
    ctx.elided_is_tx_root_ = false;
  } else {
    begin_tx(ctx);
    ctx.elided_is_tx_root_ = true;
  }
  // CMPXCHG stores `desired` on success and writes back the original value
  // on failure; either way the tagged store is elided and the lock's line
  // enters the read set (the illusion is what this thread "wrote"). A caller
  // that sees `false` while transactional must PAUSE (and thus abort): the
  // illusion pins the lock word, so spinning on it in-tx cannot make
  // progress.
  const std::uint64_t original = read_word(addr);
  const bool ok = original == expected;
  elide_begin(ctx, addr, ok ? desired : original);
  return ok;
}

bool Engine::elide_release(Ctx& ctx, std::uint64_t new_value) {
  if (new_value != ctx.elided_original_) {
    // HLE requires the releasing store to restore the lock's original value.
    abort_self(ctx, AbortCause::kHleMismatch);
  }
  ctx.elided_ = false;
  const bool root = ctx.elided_is_tx_root_;
  ctx.elided_is_tx_root_ = false;
  if (root) commit(ctx);  // the XRELEASE commits the HLE transaction
  return true;
}

void Engine::xrelease_store(Ctx& ctx, void* addr, std::uint64_t value) {
  const auto key = reinterpret_cast<std::uintptr_t>(addr);
  if (ctx.in_tx() && ctx.elided_) {
    poll(ctx);
    if (key != ctx.elided_addr_) {
      // An XRELEASE that does not write the elided address cannot end the
      // elision; the transaction aborts. This is why the unadjusted ticket
      // and CLH locks are HLE-incompatible (Ch. 6).
      abort_self(ctx, AbortCause::kHleMismatch);
    }
    elide_release(ctx, value);
    return;
  }
  store(ctx, addr, value);
}

std::uint64_t Engine::xrelease_fetch_add(Ctx& ctx, void* addr,
                                         std::uint64_t delta) {
  const auto key = reinterpret_cast<std::uintptr_t>(addr);
  if (ctx.in_tx() && ctx.elided_) {
    poll(ctx);
    if (key != ctx.elided_addr_ ||
        ctx.elided_illusion_ + delta != ctx.elided_original_) {
      abort_self(ctx, AbortCause::kHleMismatch);
    }
    const std::uint64_t old = ctx.elided_illusion_;
    elide_release(ctx, old + delta);
    return old;
  }
  return fetch_add(ctx, addr, delta);
}

bool Engine::xrelease_compare_exchange(Ctx& ctx, void* addr,
                                       std::uint64_t expected,
                                       std::uint64_t desired) {
  const auto key = reinterpret_cast<std::uintptr_t>(addr);
  if (ctx.in_tx() && ctx.elided_) {
    poll(ctx);
    if (key != ctx.elided_addr_) abort_self(ctx, AbortCause::kHleMismatch);
    if (ctx.elided_illusion_ != expected) return false;
    elide_release(ctx, desired);
    return true;
  }
  return compare_exchange(ctx, addr, expected, desired);
}

}  // namespace elision::tsx
