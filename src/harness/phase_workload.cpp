#include "harness/phase_workload.hpp"

#include <vector>

#include "ds/rbtree.hpp"
#include "locks/clh_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/ttas_lock.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace elision::harness {

std::array<std::uint64_t, kPhaseCount> phase_ops_of(const RunStats& stats) {
  std::array<std::uint64_t, kPhaseCount> out{};
  for (std::size_t s = 0; s < stats.timeline.size(); ++s) {
    const std::size_t p = s < kPhaseCount ? s : kPhaseCount - 1;
    out[p] += stats.timeline[s].ops;
  }
  return out;
}

namespace {

template <typename Lock>
RunStats run_phase_with_lock(const PhasePoint& p, ds::RbTree& tree) {
  Lock lock;
  locks::CriticalSection<Lock> cs(p.scheme, lock);
  BenchConfig cfg;
  cfg.threads = p.threads;
  cfg.duration_sec = p.phase_sec * kPhaseCount;
  cfg.duration_scale = env_duration_scale();
  cfg.machine.seed = p.seed;
  cfg.policy = p.scheme;
  cfg.telemetry = p.telemetry;
  cfg.avalanche = p.avalanche;
  // One timeline slot per phase. Deriving the width from the scaled total
  // keeps the slots phase-aligned under ELISION_BENCH_SCALE too.
  const std::uint64_t phase_cycles = cfg.duration_cycles() / kPhaseCount;
  cfg.timeline_slot_cycles = phase_cycles;
  const std::uint64_t domain = p.size * 2;
  return run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t phase = ctx.thread().now() / phase_cycles;
    const int update_pct =
        phase == 1 ? p.storm_update_pct : p.calm_update_pct;
    const int half_updates = update_pct / 2;
    const std::uint64_t key = rng.next_below(domain);
    const auto dice = static_cast<int>(rng.next_below(100));
    return cs.run(ctx, [&] {
      if (dice < half_updates) {
        tree.insert(ctx, key);
      } else if (dice < update_pct) {
        tree.erase(ctx, key);
      } else {
        tree.contains(ctx, key);
      }
    });
  });
}

}  // namespace

RunStats run_phase_point_once(const PhasePoint& p) {
  ds::RbTree tree(p.size * 4 + 256);
  support::Xoshiro256 fill(p.seed);
  std::size_t filled = 0;
  while (filled < p.size) {
    if (tree.unsafe_insert(fill.next_below(p.size * 2))) ++filled;
  }
  tree.unsafe_distribute_free_lists(p.threads);
  switch (p.lock) {
    case LockSel::kTtas:
      return run_phase_with_lock<locks::TtasLock>(p, tree);
    case LockSel::kMcs:
      return run_phase_with_lock<locks::McsLock>(p, tree);
    case LockSel::kTicketAdj:
      return run_phase_with_lock<locks::TicketLockAdjusted>(p, tree);
    case LockSel::kClhAdj:
      return run_phase_with_lock<locks::ClhLockAdjusted>(p, tree);
    case LockSel::kTicket:
      return run_phase_with_lock<locks::TicketLock>(p, tree);
    case LockSel::kClh:
      return run_phase_with_lock<locks::ClhLock>(p, tree);
  }
  return {};
}

RunStats run_phase_point(const PhasePoint& p) {
  const int n = p.seeds > 0 ? p.seeds : 1;
  // Seeds are independent simulations; fan out, then merge in seed order
  // (RunStats::accumulate adds timelines slot-wise, so phase attribution
  // survives the merge byte-identically at any host_threads).
  std::vector<RunStats> per_seed(static_cast<std::size_t>(n));
  support::parallel_for_each(
      static_cast<std::size_t>(n),
      [&](std::size_t s) {
        PhasePoint q = p;
        q.host_threads = 1;
        q.seed = p.seed + static_cast<std::uint64_t>(s) * 0x9E3779B9ULL;
        per_seed[s] = run_phase_point_once(q);
      },
      p.host_threads);
  RunStats total;
  for (int s = 0; s < n; ++s) {
    total.accumulate(per_seed[static_cast<std::size_t>(s)]);
  }
  return total;
}

}  // namespace elision::harness
