// trace_dump — run a red-black-tree workload with abort telemetry attached
// and dump what happened: the raw event trace (CSV/JSON), detected avalanche
// episodes, and the aggregated metrics registry.
//
//   trace_dump [--lock L] [--scheme S] [--threads N] [--size K]
//              [--updates PCT] [--ms VIRTUAL_MS] [--seed X]
//              [--window CYCLES] [--min-victims N]
//              [--events FILE] [--events-format csv|json]
//              [--metrics FILE] [--metrics-format json|csv]
//              [--all-schemes]
//
// Locks: ttas mcs ticket ticket-adj clh clh-adj
// Schemes: any canonical policy spec (ElisionPolicy::parse), including
//          tuned ones like `hle:retries=4` and the adaptive controller
//          (`adaptive[:window=N:up=N:down=N:dwell=N]`), whose decision
//          trace is printed after the run.
//
// --all-schemes runs the paper's six schemes (Sec. 5.1) back to back and
// aggregates all of them into one metrics export; --scheme is ignored.
//
// To reproduce the Fig 3.3 avalanche timeline: run HLE over MCS on a small
// tree and inspect the episode table / event dump (see docs/telemetry.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ds/rbtree.hpp"
#include "harness/metrics.hpp"
#include "harness/report.hpp"
#include "support/parse.hpp"
#include "harness/runner.hpp"
#include "locks/clh_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/ttas_lock.hpp"
#include "support/rng.hpp"
#include "tsx/telemetry.hpp"

namespace {

using namespace elision;

struct Options {
  std::string lock = "mcs";
  std::string scheme = "hle";
  int threads = 8;
  std::size_t size = 128;
  int updates = 20;
  double ms = 1.0;
  std::uint64_t seed = 42;
  tsx::AvalancheConfig avalanche;
  std::string events_file;
  std::string events_format = "csv";
  std::string metrics_file;
  std::string metrics_format = "json";
  bool all_schemes = false;
};

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr, "error: %s\n\n", why);
  std::fprintf(
      stderr,
      "usage:\n"
      "  trace_dump [--lock L] [--scheme S] [--threads N] [--size K]\n"
      "             [--updates PCT] [--ms MS] [--seed X]\n"
      "             [--window CYCLES] [--min-victims N]\n"
      "             [--events FILE] [--events-format csv|json]\n"
      "             [--metrics FILE] [--metrics-format json|csv]\n"
      "             [--all-schemes]\n"
      "\n"
      "locks:   ttas mcs ticket ticket-adj clh clh-adj\n"
      "schemes: any canonical policy spec (locks/policy.hpp), e.g.\n"
      "         standard hle hle-scm pes-slr opt-slr opt-slr-scm rtm-elide\n"
      "         hle-scm-nested hle-gscm adaptive hle:retries=4\n"
      "         adaptive:window=16:up=50:down=10:dwell=4\n"
      "\n"
      "an adaptive scheme additionally prints the controller's decision\n"
      "trace (docs/adaptive.md)\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--lock") {
      o.lock = next();
    } else if (a == "--scheme") {
      o.scheme = next();
    } else if (a == "--threads") {
      const auto v = support::parse_int(next());
      if (!v) usage("--threads must be a decimal integer");
      o.threads = *v;
    } else if (a == "--size") {
      const auto v = support::parse_u64(next());
      if (!v || *v < 1) usage("--size must be a decimal integer >= 1");
      o.size = static_cast<std::size_t>(*v);
    } else if (a == "--updates") {
      const auto v = support::parse_int(next());
      if (!v) usage("--updates must be a decimal integer");
      o.updates = *v;
    } else if (a == "--ms") {
      const auto v = support::parse_double(next());
      if (!v || *v <= 0) usage("--ms must be a number > 0");
      o.ms = *v;
    } else if (a == "--seed") {
      const auto v = support::parse_u64(next());
      if (!v) usage("--seed must be a decimal integer");
      o.seed = *v;
    } else if (a == "--window") {
      const auto v = support::parse_u64(next());
      if (!v || *v < 1) usage("--window must be a decimal integer >= 1");
      o.avalanche.window_cycles = *v;
    } else if (a == "--min-victims") {
      const auto v = support::parse_int(next());
      if (!v || *v < 1) usage("--min-victims must be a decimal integer >= 1");
      o.avalanche.min_victims = *v;
    } else if (a == "--events") {
      o.events_file = next();
    } else if (a == "--events-format") {
      o.events_format = next();
    } else if (a == "--metrics") {
      o.metrics_file = next();
    } else if (a == "--metrics-format") {
      o.metrics_format = next();
    } else if (a == "--all-schemes") {
      o.all_schemes = true;
    } else {
      usage(("unknown argument " + a).c_str());
    }
  }
  if (o.threads < 1 || o.threads > 64) usage("--threads must be in [1,64]");
  if (o.updates < 0 || o.updates > 100) usage("--updates must be in [0,100]");
  if (o.events_format != "csv" && o.events_format != "json") {
    usage("--events-format must be csv or json");
  }
  if (o.metrics_format != "csv" && o.metrics_format != "json") {
    usage("--metrics-format must be csv or json");
  }
  return o;
}

locks::ElisionPolicy parse_policy(const std::string& s) {
  // The canonical spec grammar: every scheme slug plus optional :knob=N
  // suffixes, exactly what ElisionPolicy::spec() prints.
  if (const auto p = locks::ElisionPolicy::parse(s)) return *p;
  usage(("unknown scheme spec " + s).c_str());
}

// Adaptive-controller state salvaged from the CriticalSection before
// run_with tears it down: the bounded decision trace plus the mode the run
// ended in.
struct AdaptiveTrace {
  bool valid = false;
  std::vector<locks::AdaptiveDecision> decisions;
  std::uint64_t dropped = 0;
  locks::AdaptiveMode final_mode = locks::AdaptiveMode::kHle;
};

template <typename Lock>
harness::RunStats run_with(const Options& o, locks::ElisionPolicy policy,
                           tsx::Telemetry* sink, AdaptiveTrace* adaptive) {
  ds::RbTree tree(o.size * 4 + 256);
  support::Xoshiro256 fill(o.seed);
  std::size_t filled = 0;
  while (filled < o.size) {
    if (tree.unsafe_insert(fill.next_below(o.size * 2))) ++filled;
  }
  tree.unsafe_distribute_free_lists(o.threads);

  Lock lock;
  locks::CriticalSection<Lock> cs(policy, lock);
  harness::BenchConfig cfg;
  cfg.threads = o.threads;
  cfg.duration_sec = o.ms / 1e3;
  cfg.machine.seed = o.seed;
  cfg.policy = policy;
  cfg.telemetry = true;
  cfg.telemetry_sink = sink;
  cfg.avalanche = o.avalanche;
  const std::uint64_t domain = o.size * 2;
  const int half = o.updates / 2;
  auto stats = harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(domain);
    const auto dice = static_cast<int>(rng.next_below(100));
    return cs.run(ctx, [&] {
      if (dice < half) {
        tree.insert(ctx, key);
      } else if (dice < o.updates) {
        tree.erase(ctx, key);
      } else {
        tree.contains(ctx, key);
      }
    });
  });
  if (adaptive != nullptr && policy.scheme == locks::Scheme::kAdaptive) {
    adaptive->valid = true;
    adaptive->decisions = cs.adaptive().decisions();
    adaptive->dropped = cs.adaptive().decisions_dropped();
    adaptive->final_mode = cs.adaptive().mode();
  }
  return stats;
}

harness::RunStats run_policy(const Options& o, locks::ElisionPolicy policy,
                             tsx::Telemetry* sink,
                             AdaptiveTrace* adaptive = nullptr) {
  if (o.lock == "ttas") {
    return run_with<locks::TtasLock>(o, policy, sink, adaptive);
  }
  if (o.lock == "mcs") {
    return run_with<locks::McsLock>(o, policy, sink, adaptive);
  }
  if (o.lock == "ticket") {
    return run_with<locks::TicketLock>(o, policy, sink, adaptive);
  }
  if (o.lock == "ticket-adj") {
    return run_with<locks::TicketLockAdjusted>(o, policy, sink, adaptive);
  }
  if (o.lock == "clh") {
    return run_with<locks::ClhLock>(o, policy, sink, adaptive);
  }
  if (o.lock == "clh-adj") {
    return run_with<locks::ClhLockAdjusted>(o, policy, sink, adaptive);
  }
  usage(("unknown lock " + o.lock).c_str());
}

// Prints the controller's migration history: one line per recorded
// decision, oldest first (docs/adaptive.md documents the columns).
void print_adaptive_trace(const locks::ElisionPolicy& policy,
                          const AdaptiveTrace& t) {
  if (!t.valid) return;
  std::printf(
      "adaptive controller (window=%d up=%d down=%d dwell=%d): "
      "%llu migration(s), final mode %s\n",
      policy.adapt.window, policy.adapt.up_pct, policy.adapt.down_pct,
      policy.adapt.dwell,
      static_cast<unsigned long long>(t.decisions.size() + t.dropped),
      locks::adaptive_mode_name(t.final_mode));
  for (const auto& d : t.decisions) {
    std::printf("  at=%-12llu %-8s -> %-8s rate=%3d%%  %s\n",
                static_cast<unsigned long long>(d.at),
                locks::adaptive_mode_name(d.from),
                locks::adaptive_mode_name(d.to), d.abort_rate_pct, d.reason);
  }
  if (t.dropped != 0) {
    std::printf("  ... %llu earlier migration(s) beyond the trace bound\n",
                static_cast<unsigned long long>(t.dropped));
  }
  std::printf("\n");
}

std::FILE* open_or_die(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return f;
}

const char* lock_display_name(const std::string& l) {
  if (l == "ttas") return locks::TtasLock::kName;
  if (l == "mcs") return locks::McsLock::kName;
  if (l == "ticket") return locks::TicketLock::kName;
  if (l == "ticket-adj") return locks::TicketLockAdjusted::kName;
  if (l == "clh") return locks::ClhLock::kName;
  if (l == "clh-adj") return locks::ClhLockAdjusted::kName;
  return l.c_str();
}

void report_run(const Options& o, locks::ElisionPolicy policy,
                const harness::RunStats& stats) {
  std::printf("scheme:     %s on %s  (%d threads, %zu-node tree, %d%% "
              "updates, %.2f ms)\n",
              policy.name(), lock_display_name(o.lock), o.threads, o.size,
              o.updates, o.ms);
  std::printf("throughput: %.2f Mops/s   attempts/op %.2f   "
              "non-speculative %.1f%%\n",
              stats.throughput() / 1e6, stats.attempts_per_op(),
              100 * stats.nonspec_fraction());
  harness::print_telemetry_summary(stats);
  harness::print_episodes(stats.episodes);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (!tsx::kTelemetryCompiled) {
    std::fprintf(stderr,
                 "telemetry was compiled out (ELISION_TELEMETRY=OFF); "
                 "trace_dump has nothing to record\n");
    return 1;
  }

  harness::MetricsRegistry registry;
  tsx::Telemetry telemetry;

  if (o.all_schemes) {
    if (!o.events_file.empty()) {
      std::fprintf(stderr,
                   "warning: --events is ignored with --all-schemes (the "
                   "trace is reset between schemes)\n");
    }
    for (const auto scheme : locks::kAllSixSchemes) {
      telemetry.clear();
      const locks::ElisionPolicy policy = locks::ElisionPolicy::from_scheme(scheme);
      const auto stats = run_policy(o, policy, &telemetry);
      registry.record(policy.name(), lock_display_name(o.lock), stats);
      report_run(o, policy, stats);
    }
  } else {
    const locks::ElisionPolicy policy = parse_policy(o.scheme);
    AdaptiveTrace adaptive;
    const auto stats = run_policy(o, policy, &telemetry, &adaptive);
    registry.record(policy.name(), lock_display_name(o.lock), stats);
    report_run(o, policy, stats);
    print_adaptive_trace(policy, adaptive);
    if (!o.events_file.empty()) {
      std::FILE* f = open_or_die(o.events_file);
      if (o.events_format == "json") {
        telemetry.dump_json(f);
      } else {
        telemetry.dump_csv(f);
      }
      std::fclose(f);
      std::printf("events: %llu recorded (%llu dropped) -> %s\n",
                  static_cast<unsigned long long>(telemetry.total_recorded()),
                  static_cast<unsigned long long>(telemetry.total_dropped()),
                  o.events_file.c_str());
    }
  }

  if (!o.metrics_file.empty()) {
    std::FILE* f = open_or_die(o.metrics_file);
    if (o.metrics_format == "csv") {
      registry.export_csv(f);
    } else {
      registry.export_json(f);
    }
    std::fclose(f);
    std::printf("metrics: %zu series -> %s\n", registry.entries().size(),
                o.metrics_file.c_str());
  }
  return 0;
}
