// The avalanche effect, event by event.
//
// Eight threads run lookup-only critical sections over one elided MCS lock —
// a workload with zero data conflicts. We inject a single spurious abort and
// print the execution trace around it: the victim re-issues its acquiring
// SWAP non-transactionally, which invalidates the elided lock line in every
// other thread's read set, aborting all of them at once (Ch. 3). This is
// the observability that real HLE hardware denies ("it is not possible to
// count aborts when using Haswell's HLE").
#include <cstdio>
#include <vector>

#include "ds/rbtree.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "tsx/trace.hpp"

using namespace elision;

int main() {
  constexpr std::size_t kSize = 512;
  ds::RbTree tree(kSize * 4 + 256);
  support::Xoshiro256 fill(7);
  std::size_t filled = 0;
  while (filled < kSize) {
    if (tree.unsafe_insert(fill.next_below(kSize * 2))) ++filled;
  }
  tree.unsafe_distribute_free_lists(8);

  locks::McsLock lock;
  locks::CriticalSection<locks::McsLock> cs(locks::ElisionPolicy::hle(), lock);

  sim::MachineConfig machine;
  tsx::TsxConfig tsx_cfg;
  tsx_cfg.spurious_per_access = 0;
  tsx_cfg.spurious_per_begin = 2e-4;  // make the trigger arrive quickly
  sim::Scheduler sched(machine);
  tsx::Engine eng(sched, tsx_cfg);
  tsx::Trace trace;
  eng.set_trace(&trace);

  std::vector<std::uint64_t> spec(8), nonspec(8);
  for (int t = 0; t < 8; ++t) {
    sched.spawn([&, t](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      while (!st.stop_requested()) {
        const std::uint64_t key = st.rng().next_below(kSize * 2);
        const auto r = cs.run(ctx, [&] { tree.contains(ctx, key); });
        (r.speculative ? spec : nonspec)[t]++;
      }
    });
  }
  sched.run_for(machine.cycles(0.0002));

  // Find the first abort and narrate the window around it.
  const auto& events = trace.events();
  std::size_t trigger = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == tsx::TraceEvent::Kind::kAbort) {
      trigger = i;
      break;
    }
  }
  std::printf("Lookup-only workload, HLE'd MCS lock, 8 threads: no data "
              "conflicts exist.\n\n");
  if (trigger == events.size()) {
    std::printf("(no abort occurred in this window — increase the duration)\n");
    return 0;
  }
  std::printf("%-10s %-7s %-7s %-10s %s\n", "cycle", "thread", "event",
              "cause", "note");
  const std::uint64_t t0 = events[trigger].timestamp;
  for (std::size_t i = trigger; i < events.size(); ++i) {
    const auto& e = events[i];
    if (e.timestamp > t0 + 4000) break;
    if (e.kind == tsx::TraceEvent::Kind::kBegin) continue;
    const char* note = "";
    if (i == trigger) {
      note = "<- the trigger: one unlucky abort";
    } else if (e.kind == tsx::TraceEvent::Kind::kAbort &&
               e.cause == tsx::AbortCause::kConflict) {
      note = "<- aborted by the re-issued lock acquisition (avalanche)";
    } else if (e.kind == tsx::TraceEvent::Kind::kAbort &&
               e.cause == tsx::AbortCause::kPause) {
      note = "<- arrived while serialized: doomed spin, aborts";
    }
    std::printf("%-10llu %-7d %-7s %-10s %s\n",
                static_cast<unsigned long long>(e.timestamp - t0), e.thread,
                to_string(e.kind), to_string(e.cause), note);
  }

  std::uint64_t s = 0, n = 0;
  for (int t = 0; t < 8; ++t) {
    s += spec[t];
    n += nonspec[t];
  }
  std::printf("\nTotals: %llu speculative, %llu non-speculative operations "
              "— with zero data conflicts.\n",
              static_cast<unsigned long long>(s),
              static_cast<unsigned long long>(n));
  std::printf("Run again with Scheme::kHleScm and the serialization "
              "disappears.\n");
  return 0;
}
