# Empty dependencies file for tbl_hashtable.
# This may be replaced when dependencies are built.
