// Tests of the Chapter 7 hardware extension: distinguishing lock-line
// conflicts from data conflicts so speculators survive a non-speculative
// lock acquisition.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "locks/region.hpp"
#include "locks/ttas_lock.hpp"
#include "tsx/shared.hpp"

namespace elision::tsx {
namespace {

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

TsxConfig hwext_tsx() {
  TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  t.hardware_extension = true;
  return t;
}

TEST(HwExt, SpeculatorSurvivesLockAcquisitionWithinFootprint) {
  // A speculator whose whole footprint is established before the lock is
  // taken non-speculatively completes speculatively — the scenario plain
  // HLE always kills.
  locks::TtasLock lock;
  // Padded: the speculator's and holder's data must not share a cache line,
  // or the holder's store would be a true data conflict.
  support::CacheAligned<Shared<std::uint64_t>> spec_data, holder_data;
  locks::RegionResult r{};
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, hwext_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    r = locks::hle_region(ctx, lock, [&] {
      auto& d = spec_data.value;
      d.store(ctx, d.load(ctx) + 1);   // footprint complete
      ctx.engine().compute(ctx, 5000);  // the holder acquires in here
      d.store(ctx, d.load(ctx) + 1);   // still cached
    });
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 500);
    ctx.set_mode(ElisionMode::kStandard);
    lock.lock(ctx);
    holder_data.value.store(ctx, 1);
    lock.unlock(ctx);
  });
  sched.run();
  EXPECT_TRUE(r.speculative);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(spec_data.value.unsafe_get(), 2u);
}

TEST(HwExt, PlainHleKillsSameScenario) {
  // Identical scenario without the extension: the acquisition aborts the
  // speculator (baseline sanity for the previous test).
  locks::TtasLock lock;
  support::CacheAligned<Shared<std::uint64_t>> spec_data, holder_data;
  locks::RegionResult r{};
  TsxConfig plain = hwext_tsx();
  plain.hardware_extension = false;
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, plain);
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    r = locks::hle_region(ctx, lock, [&] {
      auto& d = spec_data.value;
      d.store(ctx, d.load(ctx) + 1);
      ctx.engine().compute(ctx, 5000);
      d.store(ctx, d.load(ctx) + 1);
    });
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 500);
    ctx.set_mode(ElisionMode::kStandard);
    lock.lock(ctx);
    holder_data.value.store(ctx, 1);
    lock.unlock(ctx);
  });
  sched.run();
  EXPECT_GE(r.attempts, 2);  // the avalanche hit
}

TEST(HwExt, SuspendsOnFootprintGrowthUntilRelease) {
  // A speculator needing a NEW line while the lock is held suspends (state
  // S) and resumes after release — turning "time wasted waiting into time
  // spent working", not aborting.
  locks::TtasLock lock;
  support::CacheAligned<Shared<std::uint64_t>> early;
  support::CacheAligned<Shared<std::uint64_t>> late;  // touched after acquire
  std::uint64_t resume_time = 0;
  locks::RegionResult r{};
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, hwext_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    r = locks::hle_region(ctx, lock, [&] {
      (void)early.value.load(ctx);
      ctx.engine().compute(ctx, 2000);   // the holder acquires in here
      late.value.store(ctx, 1);          // new line: must suspend
      resume_time = st.now();
    });
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 300);
    ctx.set_mode(ElisionMode::kStandard);
    lock.lock(ctx);
    ctx.engine().compute(ctx, 20000);  // hold for a long time
    lock.unlock(ctx);
  });
  sched.run();
  EXPECT_TRUE(r.speculative);
  EXPECT_EQ(r.attempts, 1);
  // The speculator's growth access completed only after the release.
  EXPECT_GT(resume_time, 20000u);
}

TEST(HwExt, DataConflictWithHolderStillAborts) {
  // The extension only forgives lock-line conflicts; a true data conflict
  // with the non-speculative holder aborts the speculator as before.
  locks::TtasLock lock;
  support::CacheAligned<Shared<std::uint64_t>> shared_data_pad;
  auto& shared_data = shared_data_pad.value;
  locks::RegionResult r{};
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, hwext_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    r = locks::hle_region(ctx, lock, [&] {
      (void)shared_data.load(ctx);       // in the read set
      ctx.engine().compute(ctx, 5000);   // holder writes it in here
      (void)shared_data.load(ctx);
    });
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 500);
    ctx.set_mode(ElisionMode::kStandard);
    lock.lock(ctx);
    shared_data.store(ctx, 7);  // data conflict
    lock.unlock(ctx);
  });
  sched.run();
  EXPECT_GE(r.attempts, 2);
  EXPECT_EQ(shared_data.unsafe_get(), 7u);
}

TEST(HwExt, Lemma1ConsistencyPreserved) {
  // Lemma 1's counter-example: a speculator reading X then Y while a
  // non-speculative holder writes Y then X must never commit having seen
  // the inconsistent (X=0, Y=1) state. Under the extension: reading Y grows
  // the footprint while the lock is held -> the speculator suspends; when
  // the holder then writes X (in the speculator's read set), the data
  // conflict aborts it. The invariant X == Y as observed by committed
  // transactions is preserved.
  locks::TtasLock lock;
  support::CacheAligned<Shared<std::uint64_t>> xp, yp;
  auto& x = xp.value;
  auto& y = yp.value;
  bool saw_inconsistent = false;
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, hwext_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    for (int k = 0; k < 20; ++k) {
      std::uint64_t sx = 0, sy = 0;
      const auto r = locks::hle_region(ctx, lock, [&] {
        sx = x.load(ctx);
        ctx.engine().compute(ctx, 400);
        sy = y.load(ctx);
      });
      if (r.speculative && sx != sy) saw_inconsistent = true;
    }
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    for (int k = 0; k < 10; ++k) {
      ctx.set_mode(ElisionMode::kStandard);
      lock.lock(ctx);
      y.store(ctx, y.load(ctx) + 1);  // breaks the invariant...
      ctx.engine().compute(ctx, 300);
      x.store(ctx, x.load(ctx) + 1);  // ...restores it
      lock.unlock(ctx);
      ctx.engine().compute(ctx, 200);
    }
  });
  sched.run();
  EXPECT_FALSE(saw_inconsistent);
  EXPECT_EQ(x.unsafe_get(), y.unsafe_get());
}

TEST(HwExt, SuspensionIsBoundedWhenLockNeverRestores) {
  // With a queue lock the elided word (the MCS tail) may never return to
  // its pre-elision value. The state-S suspension must then abort on its
  // timer bound instead of waiting forever.
  locks::TtasLock lock;
  support::CacheAligned<Shared<std::uint64_t>> early, late;
  locks::RegionResult r{};
  TsxConfig cfg = hwext_tsx();
  cfg.hwext_max_wait_cycles = 5000;
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, cfg);
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    r = locks::hle_region(ctx, lock, [&] {
      (void)early.value.load(ctx);
      ctx.engine().compute(ctx, 1000);
      late.value.store(ctx, 1);  // footprint growth while the lock is held
    });
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 300);
    ctx.set_mode(ElisionMode::kStandard);
    lock.lock(ctx);
    ctx.engine().compute(ctx, 200000);  // outlives the wait bound
    lock.unlock(ctx);
  });
  sched.run();
  // The speculator gave up on its bounded wait, aborted, and completed the
  // operation another way — no livelock, and the work is done.
  EXPECT_GE(r.attempts, 2);
  EXPECT_EQ(late.value.unsafe_get(), 1u);
}

TEST(HwExt, ManySpeculatorsSurviveOneSerializer) {
  // Throughput-style check: with the extension, disjoint speculators keep
  // committing while one thread repeatedly takes the lock for real.
  locks::TtasLock lock;
  std::vector<support::CacheAligned<Shared<std::uint64_t>>> slots(6);
  std::vector<int> nonspec(6, 0);
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, hwext_tsx());
  for (int i = 0; i < 6; ++i) {
    sched.spawn([&, i](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 60; ++k) {
        const auto r = locks::hle_region(ctx, lock, [&] {
          slots[i].value.store(ctx, slots[i].value.load(ctx) + 1);
        });
        if (!r.speculative) ++nonspec[i];
      }
    });
  }
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.set_mode(ElisionMode::kStandard);
    for (int k = 0; k < 10; ++k) {
      lock.lock(ctx);
      ctx.engine().compute(ctx, 500);
      lock.unlock(ctx);
      ctx.engine().compute(ctx, 500);
    }
  });
  sched.run();
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(slots[i].value.unsafe_get(), 60u);
  }
}

}  // namespace
}  // namespace elision::tsx
