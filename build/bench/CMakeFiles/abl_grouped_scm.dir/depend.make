# Empty dependencies file for abl_grouped_scm.
# This may be replaced when dependencies are built.
