file(REMOVE_RECURSE
  "CMakeFiles/elision_tsx.dir/engine.cpp.o"
  "CMakeFiles/elision_tsx.dir/engine.cpp.o.d"
  "libelision_tsx.a"
  "libelision_tsx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elision_tsx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
