#include "harness/metrics.hpp"

#include "harness/runner.hpp"
#include "support/check.hpp"
#include "support/json.hpp"

namespace elision::harness {

std::string Histogram::bucket_label(std::size_t i) {
  if (i < 2) return std::to_string(i);
  return std::to_string(bucket_lo(i)) + "-" + std::to_string(bucket_hi(i));
}

void RegionMetrics::absorb(const RunStats& run) {
  if (runs == 0) {
    ghz = run.ghz;
  } else {
    ELISION_CHECK_MSG(ghz == run.ghz,
                      "absorbed runs with different MachineConfig::ghz into "
                      "one series; their cycle counts are not comparable");
  }
  ++runs;
  ops += run.ops;
  spec_ops += run.spec_ops;
  nonspec_ops += run.nonspec_ops;
  attempts += run.attempts;
  elapsed_cycles += run.elapsed_cycles;
  tx += run.tx;
  attempts_hist.merge(run.attempts_hist);
  rejoin_hist.merge(run.rejoin_hist);
  avalanche_episodes += run.episodes.size();
  for (const auto& ep : run.episodes) {
    avalanche_victims += static_cast<std::uint64_t>(ep.victim_count());
    avalanche_cycles += ep.duration();
    if (ep.victim_count() > avalanche_max_victims) {
      avalanche_max_victims = ep.victim_count();
    }
  }
}

RegionMetrics& MetricsRegistry::series(const std::string& scheme,
                                       const std::string& lock) {
  for (auto& e : entries_) {
    if (e.scheme == scheme && e.lock == lock) return e.metrics;
  }
  entries_.push_back({scheme, lock, {}});
  return entries_.back().metrics;
}

namespace {

void json_hist(std::FILE* out, const Histogram& h) {
  std::fprintf(out,
               "{\"samples\":%llu,\"mean\":%.3f,\"max\":%llu,\"buckets\":{",
               static_cast<unsigned long long>(h.samples()), h.mean(),
               static_cast<unsigned long long>(h.max()));
  bool first = true;
  for (std::size_t i = 0; i < h.buckets().size(); ++i) {
    if (h.buckets()[i] == 0) continue;
    std::fprintf(out, "%s\"%s\":%llu", first ? "" : ",",
                 Histogram::bucket_label(i).c_str(),
                 static_cast<unsigned long long>(h.buckets()[i]));
    first = false;
  }
  std::fprintf(out, "}}");
}

}  // namespace

void MetricsRegistry::export_json(std::FILE* out) const {
  std::fprintf(out, "{\"series\":[");
  for (std::size_t n = 0; n < entries_.size(); ++n) {
    const auto& e = entries_[n];
    const auto& m = e.metrics;
    std::fprintf(out, "%s{\"scheme\":\"%s\",\"lock\":\"%s\",\"runs\":%llu,",
                 n == 0 ? "" : ",", support::json::escape(e.scheme).c_str(),
                 support::json::escape(e.lock).c_str(),
                 static_cast<unsigned long long>(m.runs));
    std::fprintf(
        out,
        "\"ops\":%llu,\"spec_ops\":%llu,\"nonspec_ops\":%llu,"
        "\"attempts\":%llu,\"elapsed_cycles\":%llu,"
        "\"throughput_ops_per_sec\":%.1f,",
        static_cast<unsigned long long>(m.ops),
        static_cast<unsigned long long>(m.spec_ops),
        static_cast<unsigned long long>(m.nonspec_ops),
        static_cast<unsigned long long>(m.attempts),
        static_cast<unsigned long long>(m.elapsed_cycles), m.throughput());
    std::fprintf(out, "\"tx\":{\"begins\":%llu,\"commits\":%llu,"
                      "\"aborts\":%llu},",
                 static_cast<unsigned long long>(m.tx.begins),
                 static_cast<unsigned long long>(m.tx.commits),
                 static_cast<unsigned long long>(m.tx.aborts));
    std::fprintf(out, "\"aborts_by_cause\":{");
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(tsx::AbortCause::kCauseCount); ++c) {
      std::fprintf(out, "%s\"%s\":%llu", c == 0 ? "" : ",",
                   tsx::to_string(static_cast<tsx::AbortCause>(c)),
                   static_cast<unsigned long long>(m.tx.aborts_by_cause[c]));
    }
    std::fprintf(out, "},\"attempts_hist\":");
    json_hist(out, m.attempts_hist);
    std::fprintf(out, ",\"rejoin_cycles_hist\":");
    json_hist(out, m.rejoin_hist);
    std::fprintf(out,
                 ",\"avalanche\":{\"episodes\":%llu,\"victims\":%llu,"
                 "\"max_victims\":%d,\"serialized_cycles\":%llu}}",
                 static_cast<unsigned long long>(m.avalanche_episodes),
                 static_cast<unsigned long long>(m.avalanche_victims),
                 m.avalanche_max_victims,
                 static_cast<unsigned long long>(m.avalanche_cycles));
  }
  std::fprintf(out, "]}\n");
}

void MetricsRegistry::export_csv(std::FILE* out) const {
  std::fprintf(out,
               "scheme,lock,runs,ops,spec_ops,nonspec_ops,attempts,"
               "elapsed_cycles,throughput_ops_per_sec,tx_begins,tx_commits,"
               "tx_aborts");
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(tsx::AbortCause::kCauseCount); ++c) {
    std::fprintf(out, ",aborts_%s",
                 tsx::to_string(static_cast<tsx::AbortCause>(c)));
  }
  std::fprintf(out,
               ",attempts_mean,attempts_max,rejoin_cycles_mean,"
               "rejoin_cycles_max,avalanche_episodes,avalanche_victims,"
               "avalanche_max_victims,avalanche_serialized_cycles\n");
  for (const auto& e : entries_) {
    const auto& m = e.metrics;
    std::fprintf(out, "%s,%s,%llu,%llu,%llu,%llu,%llu,%llu,%.1f,%llu,%llu,"
                      "%llu",
                 e.scheme.c_str(), e.lock.c_str(),
                 static_cast<unsigned long long>(m.runs),
                 static_cast<unsigned long long>(m.ops),
                 static_cast<unsigned long long>(m.spec_ops),
                 static_cast<unsigned long long>(m.nonspec_ops),
                 static_cast<unsigned long long>(m.attempts),
                 static_cast<unsigned long long>(m.elapsed_cycles),
                 m.throughput(),
                 static_cast<unsigned long long>(m.tx.begins),
                 static_cast<unsigned long long>(m.tx.commits),
                 static_cast<unsigned long long>(m.tx.aborts));
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(tsx::AbortCause::kCauseCount); ++c) {
      std::fprintf(out, ",%llu",
                   static_cast<unsigned long long>(m.tx.aborts_by_cause[c]));
    }
    std::fprintf(out, ",%.3f,%llu,%.3f,%llu,%llu,%llu,%d,%llu\n",
                 m.attempts_hist.mean(),
                 static_cast<unsigned long long>(m.attempts_hist.max()),
                 m.rejoin_hist.mean(),
                 static_cast<unsigned long long>(m.rejoin_hist.max()),
                 static_cast<unsigned long long>(m.avalanche_episodes),
                 static_cast<unsigned long long>(m.avalanche_victims),
                 m.avalanche_max_victims,
                 static_cast<unsigned long long>(m.avalanche_cycles));
  }
}

}  // namespace elision::harness
