# Empty dependencies file for stamp_demo.
# This may be replaced when dependencies are built.
