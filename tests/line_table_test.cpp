// Differential test of the open-addressing LineTable against a
// std::unordered_map reference model: randomized op mixes (record, cached
// record, find, captured-Cache revalidation, clear) over collision-heavy
// key distributions, starting from a deliberately tiny table so growth
// happens many times mid-stream. scripts/check.sh runs this under
// ASan+UBSan, where a probe off the slot array, a record pointer that did
// not survive grow(), or a generation-stamp mixup becomes a hard failure
// instead of silent corruption.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "tsx/line_table.hpp"

namespace elision::tsx {
namespace {

using support::LineId;

bool same_record(const LineRecord& a, const LineRecord& b) {
  return a.readers == b.readers && a.writer == b.writer &&
         a.copies == b.copies && a.dirty_owner == b.dirty_owner;
}

void mutate(LineRecord& rec, std::mt19937_64& rng) {
  // Ids span the full widened range so the differential run exercises every
  // ThreadSet word, not just the old 64-bit one.
  const int id = static_cast<int>(rng() % kMaxThreads);
  switch (rng() % 4) {
    case 0:
      rec.readers.set(id);
      break;
    case 1:
      rec.writer = id;
      break;
    case 2:
      if (rec.copies.test(id)) {
        rec.copies.reset(id);
      } else {
        rec.copies.set(id);
      }
      break;
    default:
      rec.dirty_owner = id - 1;
      break;
  }
}

// One key distribution the fuzzer draws from. Dense and strided keys hammer
// probe chains; full-width keys exercise the hash mixing; huge strides model
// real line ids (addresses >> 6 of far-apart allocations).
struct KeyGen {
  const char* name;
  LineId (*next)(std::mt19937_64& rng);
};

const KeyGen kKeyGens[] = {
    {"dense", [](std::mt19937_64& rng) { return LineId{rng() % 97}; }},
    {"strided",
     [](std::mt19937_64& rng) { return LineId{(rng() % 512) * 4096}; }},
    {"wide", [](std::mt19937_64& rng) { return LineId{rng()}; }},
    {"mixed",
     [](std::mt19937_64& rng) {
       return (rng() & 1) ? LineId{rng() % 64}
                          : LineId{0xfeed0000u + (rng() % 1024) * 64};
     }},
};

void run_differential(std::uint64_t seed, const KeyGen& gen) {
  SCOPED_TRACE(gen.name);
  SCOPED_TRACE(seed);
  std::mt19937_64 rng(seed);

  // initial_pow2 = 2: four slots, so the load-factor doubling triggers
  // almost immediately and then repeatedly.
  LineTable table(2);
  std::unordered_map<LineId, LineRecord> model;
  LineTable::Cache cache;
  std::vector<LineTable::Cache> captured;

  for (int op = 0; op < 20000; ++op) {
    const unsigned dice = static_cast<unsigned>(rng() % 100);
    const LineId line = gen.next(rng);
    if (dice < 35) {
      // Plain record(): creates if absent, then mutate both copies.
      LineRecord& rec = table.record(line);
      LineRecord& ref = model[line];
      ASSERT_TRUE(same_record(rec, ref)) << "record() pre-state, op " << op;
      mutate(rec, rng);
      ref = rec;
    } else if (dice < 65) {
      // Cached record(): must agree with the model regardless of whether
      // the memoized slot hit, missed, or went stale via grow()/clear().
      LineRecord& rec = table.record(line, cache);
      LineRecord& ref = model[line];
      ASSERT_TRUE(same_record(rec, ref)) << "cached record(), op " << op;
      mutate(rec, rng);
      ref = rec;
      captured.push_back(cache);
    } else if (dice < 85) {
      // find(): never creates; presence and payload must match the model.
      LineRecord* rec = table.find(line);
      const auto it = model.find(line);
      ASSERT_EQ(rec != nullptr, it != model.end()) << "find(), op " << op;
      if (rec != nullptr) {
        ASSERT_TRUE(same_record(*rec, it->second)) << "find() payload";
      }
    } else if (dice < 98) {
      // A previously captured Cache. Valid exactly while its generation
      // matches the table: records never move or get erased within a
      // generation, so the memoized pointer must still be that line's
      // record no matter how much the index grew since capture. After
      // clear() the stamp mismatches and the cached path must re-probe,
      // never resurrect the stale payload (this is the planted-stale-ref
      // self-check scripts/check.sh runs under the sanitizers).
      if (!captured.empty()) {
        LineTable::Cache c = captured[rng() % captured.size()];
        const auto it = model.find(c.line);
        if (c.gen == table.generation()) {
          ASSERT_NE(it, model.end()) << "live cache for an absent line";
          ASSERT_EQ(table.find(c.line), c.rec) << "record moved, op " << op;
          ASSERT_TRUE(same_record(*c.rec, it->second)) << "cache payload";
        } else {
          LineRecord& rec = table.record(c.line, c);
          LineRecord& ref = model[c.line];
          ASSERT_TRUE(same_record(rec, ref)) << "stale cache, op " << op;
          ASSERT_EQ(c.gen, table.generation()) << "record() must refresh";
        }
      }
    } else {
      table.clear();
      model.clear();
    }
    ASSERT_EQ(table.size(), model.size()) << "size drift, op " << op;
  }

  // Final sweep: every modeled line is present with the right payload.
  for (const auto& [line, ref] : model) {
    LineRecord* rec = table.find(line);
    ASSERT_NE(rec, nullptr) << "line " << line << " lost";
    ASSERT_TRUE(same_record(*rec, ref)) << "line " << line;
  }
}

TEST(LineTableDifferential, MatchesUnorderedMapReference) {
  for (const KeyGen& gen : kKeyGens) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      run_differential(seed * 0x9e3779b97f4a7c15ull, gen);
    }
  }
}

TEST(LineTable, ClearIsGenerationBump) {
  LineTable t(2);
  const std::uint64_t gen0 = t.generation();
  t.record(7).writer = 3;
  t.record(8).readers.set(0);
  EXPECT_EQ(t.size(), 2u);
  t.clear();
  EXPECT_EQ(t.generation(), gen0 + 1);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(7), nullptr);
  EXPECT_EQ(t.find(8), nullptr);
  // Re-inserting a cleared line yields a fresh record, not the stale payload.
  EXPECT_EQ(t.record(7).writer, kNoThread);
}

TEST(LineTable, GrowthPreservesRecordsAndIsAllocationStable) {
  LineTable t(2);
  for (LineId line = 0; line < 500; ++line) {
    t.record(line).writer = static_cast<int>(line % 61);
  }
  EXPECT_GE(t.capacity(), 500u * 4 / 3);
  for (LineId line = 0; line < 500; ++line) {
    LineRecord* rec = t.find(line);
    ASSERT_NE(rec, nullptr) << line;
    EXPECT_EQ(rec->writer, static_cast<int>(line % 61));
  }
  // Steady state: re-touching every existing line neither grows nor moves
  // the table.
  const std::size_t cap = t.capacity();
  for (LineId line = 0; line < 500; ++line) t.record(line);
  EXPECT_EQ(t.capacity(), cap);
  EXPECT_EQ(t.size(), 500u);
}

// seq_of is the run-stable line identifier grouped-SCM hashes (see
// Engine::line_seq): first-touch order, 1-based, 0 for absent lines,
// unchanged by growth, monotone across clear().
TEST(LineTable, SeqNumbersFollowFirstTouchOrder) {
  LineTable t(2);
  EXPECT_EQ(t.seq_of(500), 0u);  // never touched
  t.record(500);
  t.record(100);
  t.record(900);
  EXPECT_EQ(t.seq_of(500), 1u);
  EXPECT_EQ(t.seq_of(100), 2u);
  EXPECT_EQ(t.seq_of(900), 3u);
  t.record(500);  // re-touching does not renumber
  EXPECT_EQ(t.seq_of(500), 1u);
  // Growth moves slots but keeps seq.
  for (LineId line = 1000; line < 1300; ++line) t.record(line);
  EXPECT_EQ(t.seq_of(100), 2u);
  EXPECT_EQ(t.seq_of(1000), 4u);
  // clear() retires the numbers; re-inserted lines get fresh ones.
  t.clear();
  EXPECT_EQ(t.seq_of(500), 0u);
  t.record(500);
  EXPECT_GT(t.seq_of(500), 300u);
}

TEST(LineTable, CacheSurvivesClearAndGrow) {
  LineTable t(2);
  LineTable::Cache cache;
  LineRecord& a = t.record(42, cache);
  a.writer = 5;
  // Hit: same line through the cache returns the same record.
  EXPECT_EQ(&t.record(42, cache), &a);
  // Index growth rehashes slots but never moves records: the memoized
  // pointer itself stays valid and the cached path keeps hitting it.
  for (LineId line = 100; line < 200; ++line) t.record(line);
  EXPECT_EQ(&t.record(42, cache), &a);
  EXPECT_EQ(a.writer, 5);
  // clear() invalidates the memo via the generation stamp: the cached path
  // must re-probe and hand back a fresh record, not the stale payload.
  t.clear();
  EXPECT_EQ(t.record(42, cache).writer, kNoThread);
}

}  // namespace
}  // namespace elision::tsx
