// Test-and-test-and-set spinlock with HLE support (paper Algorithm 1).
//
// In speculative elision mode the XACQUIRE-tagged test-and-set begins a
// transaction and elides the store; a thread arriving while the lock is held
// spins *before* the XACQUIRE, i.e. outside any transaction (this is the
// "newly arriving threads delay their entrance into a transactional
// execution" behaviour of Ch. 3).
#pragma once

#include <cstdint>

#include "support/align.hpp"
#include "tsx/shared.hpp"

namespace elision::locks {

class TtasLock {
 public:
  static constexpr const char* kName = "TTAS";
  static constexpr bool kIsFair = false;

  void lock(tsx::Ctx& ctx) {
    bool first_observation = true;
    for (;;) {
      for (;;) {
        const std::uint64_t v = word_.value.load(ctx);
        if (first_observation) {
          first_observation = false;
          ++arrivals_;
          if (v != 0) ++arrivals_lock_held_;
        }
        if (v == 0) break;
        ctx.engine().pause(ctx);
      }
      if (word_.value.xacquire_exchange(ctx, 1) == 0) return;
    }
  }

  void unlock(tsx::Ctx& ctx) { word_.value.xrelease_store(ctx, 0); }

  bool is_held(tsx::Ctx& ctx) { return word_.value.load(ctx) != 0; }

  // Cache line of the elidable lock word (telemetry tagging).
  support::LineId lock_line() const { return support::line_of(&word_.value); }

  // Models the hardware's abort aftermath: the XACQUIRE store is re-issued
  // non-transactionally once. Returns true if that store acquired the lock
  // (the thread now runs the critical section non-speculatively); false if
  // the lock was held, in which case the software loop spins and the caller
  // may re-enter speculation (the TTAS recovery behaviour of Ch. 3).
  bool reissue_acquire_standard(tsx::Ctx& ctx) {
    ++arrivals_;
    if (word_.value.exchange(ctx, 1) == 0) return true;
    ++arrivals_lock_held_;
    return false;
  }

  // Arrival statistics ("TTAS Arrival with Lock Held" series of Fig 3.1).
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t arrivals_lock_held() const { return arrivals_lock_held_; }
  void reset_arrival_stats() { arrivals_ = arrivals_lock_held_ = 0; }

 private:
  support::CacheAligned<tsx::Shared<std::uint64_t>> word_;
  // Host-side counters (not simulated state; they cost nothing).
  std::uint64_t arrivals_ = 0;
  std::uint64_t arrivals_lock_held_ = 0;
};

}  // namespace elision::locks
