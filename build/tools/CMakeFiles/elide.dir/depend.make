# Empty dependencies file for elide.
# This may be replaced when dependencies are built.
