// The B+tree range-scan benchmark: a global two-mode-lock-protected B+tree
// with a lookup/scan/insert/delete mix. The read operations run under the
// point's policy *as configured* — an exclusive policy serializes them
// through the writer path, a `+shared` policy runs them as (elided) readers —
// which makes the exclusive-vs-shared pair of otherwise identical points the
// suite's shared-mode comparison axis. Updates always run exclusive.
#pragma once

#include <cstddef>
#include <cstdint>

#include "harness/runner.hpp"

namespace elision::harness {

enum class SharedLockSel { kSharedTtas, kSharedMcs };

const char* shared_lock_sel_name(SharedLockSel s);

struct BtPoint {
  std::size_t size = 128;
  int update_pct = 10;  // split evenly between inserts and deletes
  // Of the non-update (read) operations, the percentage that are range
  // scans of `scan_len` keys; the rest are point lookups.
  int scan_pct = 30;
  std::size_t scan_len = 16;
  int threads = 8;
  // Reads follow this policy's access mode; `.shared()` is the elided-reader
  // configuration the suite compares against the exclusive equivalent.
  locks::ElisionPolicy policy = locks::ElisionPolicy::hle();
  SharedLockSel lock = SharedLockSel::kSharedTtas;
  double duration_sec = 0.003;
  bool telemetry = false;
  tsx::AvalancheConfig avalanche;
  int seeds = 2;
  std::uint64_t timeline_slot_cycles = 0;
  std::uint64_t seed = 42;
  // Host threads for the multi-seed fan-out; never affects simulated
  // results (see RbPoint::host_threads).
  int host_threads = 1;
};

// Builds the tree (random keys from a domain of 2*size) and runs the
// benchmark for the configured virtual duration, once.
RunStats run_bt_point_once(const BtPoint& p);

// Accumulates `p.seeds` independent runs, merged in seed order.
RunStats run_bt_point(const BtPoint& p);

}  // namespace elision::harness
