// ElisionPolicy: the unified front-end for choosing how a critical section
// executes.
//
// Historically every call site switched on the Scheme enum and constructed
// per-case ScmParams/SlrParams by hand. ElisionPolicy is one value type that
// carries the scheme *and* every tuning knob (retry/backoff, SCM retries,
// SLR attempts, grouped-SCM groups), with named constructors for the six
// evaluated schemes (Sec. 5.1) and the extra mechanisms. The Scheme enum
// remains as a thin compatibility alias: ElisionPolicy converts implicitly
// from it (via from_scheme), so existing callers migrate incrementally.
//
//   CriticalSection<TtasLock> cs(ElisionPolicy::hle_scm(), lock);
//   auto tuned = ElisionPolicy::hle_scm().with_scm_retries(4);
//   CriticalSection<TtasLock> legacy(Scheme::kHle, lock);  // still compiles
#pragma once

#include "locks/grouped_scm.hpp"
#include "locks/region.hpp"
#include "locks/scm.hpp"
#include "locks/slr.hpp"

namespace elision::locks {

// The six evaluated locking schemes (Sec. 5.1 Methodology), plus the extra
// mechanisms used by specific experiments.
//
// Deprecated as a front-end: new code should pass an ElisionPolicy (which
// a Scheme converts into) so tuning knobs travel with the scheme choice.
enum class Scheme {
  kStandard,       // (1) plain non-speculative lock
  kHle,            // (2) hardware lock elision
  kHleScm,         // (3) HLE + software-assisted conflict management
  kPesSlr,         // (4) pessimistic software lock removal
  kOptSlr,         // (5) optimistic software lock removal
  kOptSlrScm,      // (6) optimistic SLR + conflict management
  kRtmElide,       // RTM-based elision (Fig 3.5 mechanism comparison)
  kHleScmNested,   // Algorithm 3 as designed: HLE nested in RTM
  kHleGroupedScm,  // future-work extension: per-conflict-line aux groups
};

inline const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kStandard: return "Standard";
    case Scheme::kHle: return "HLE";
    case Scheme::kHleScm: return "HLE-SCM";
    case Scheme::kPesSlr: return "pes-SLR";
    case Scheme::kOptSlr: return "opt-SLR";
    case Scheme::kOptSlrScm: return "opt-SLR-SCM";
    case Scheme::kRtmElide: return "RTM-elide";
    case Scheme::kHleScmNested: return "HLE-SCM-nested";
    case Scheme::kHleGroupedScm: return "HLE-gSCM";
    default: return "?";
  }
}

inline constexpr Scheme kAllSixSchemes[] = {
    Scheme::kStandard, Scheme::kHle,    Scheme::kHleScm,
    Scheme::kPesSlr,   Scheme::kOptSlr, Scheme::kOptSlrScm,
};

struct ElisionPolicy {
  Scheme scheme = Scheme::kStandard;
  RetryParams retry;       // HLE/RTM elision drivers
  ScmParams scm;           // kHleScm / kHleScmNested
  SlrParams slr;           // kPesSlr / kOptSlr / kOptSlrScm
  GroupedScmParams grouped;  // kHleGroupedScm

  ElisionPolicy() = default;

  // Compatibility shim: a bare Scheme converts to the policy the old
  // switch-based dispatch would have built for it.
  ElisionPolicy(Scheme s) : ElisionPolicy(from_scheme(s)) {}  // NOLINT

  // --- named constructors (the paper's six schemes + extras) ---
  static ElisionPolicy standard() { return with(Scheme::kStandard); }
  static ElisionPolicy hle() { return with(Scheme::kHle); }
  static ElisionPolicy hle_scm() { return with(Scheme::kHleScm); }
  static ElisionPolicy hle_scm_nested() {
    ElisionPolicy p = with(Scheme::kHleScmNested);
    p.scm.nested_hle = true;
    return p;
  }
  static ElisionPolicy pes_slr() {
    ElisionPolicy p = with(Scheme::kPesSlr);
    p.slr.max_attempts = 1;
    return p;
  }
  static ElisionPolicy opt_slr() {
    ElisionPolicy p = with(Scheme::kOptSlr);
    p.slr.max_attempts = 10;
    return p;
  }
  static ElisionPolicy opt_slr_scm() {
    ElisionPolicy p = with(Scheme::kOptSlrScm);
    p.slr.scm = true;
    return p;
  }
  static ElisionPolicy rtm_elide() { return with(Scheme::kRtmElide); }
  static ElisionPolicy hle_grouped_scm() {
    return with(Scheme::kHleGroupedScm);
  }

  static ElisionPolicy from_scheme(Scheme s) {
    switch (s) {
      case Scheme::kStandard: return standard();
      case Scheme::kHle: return hle();
      case Scheme::kHleScm: return hle_scm();
      case Scheme::kPesSlr: return pes_slr();
      case Scheme::kOptSlr: return opt_slr();
      case Scheme::kOptSlrScm: return opt_slr_scm();
      case Scheme::kRtmElide: return rtm_elide();
      case Scheme::kHleScmNested: return hle_scm_nested();
      case Scheme::kHleGroupedScm: return hle_grouped_scm();
    }
    return standard();
  }

  const char* name() const { return scheme_name(scheme); }

  // --- fluent tuning knobs ---
  ElisionPolicy with_scm_retries(int n) const {
    ElisionPolicy p = *this;
    p.scm.max_retries = n;
    p.slr.scm_max_retries = n;
    p.grouped.max_retries = n;
    return p;
  }
  ElisionPolicy with_slr_attempts(int n) const {
    ElisionPolicy p = *this;
    p.slr.max_attempts = n;
    return p;
  }
  ElisionPolicy with_max_spec_attempts(int n) const {
    ElisionPolicy p = *this;
    p.retry.max_spec_attempts = n;
    return p;
  }
  ElisionPolicy with_backoff(std::uint64_t base_cycles) const {
    ElisionPolicy p = *this;
    p.retry.backoff_base_cycles = base_cycles;
    return p;
  }

 private:
  static ElisionPolicy with(Scheme s) {
    ElisionPolicy p;
    p.scheme = s;
    return p;
  }
};

}  // namespace elision::locks
