#include "sim/fiber.hpp"

#include <cstdlib>

#include "support/check.hpp"

#if !defined(__x86_64__)
#error "elision fibers currently require x86-64 (SysV ABI)"
#endif

// AddressSanitizer must be told about manual stack switches: it keeps
// per-thread stack bounds (and a fake stack for use-after-return detection),
// and an exception thrown on an unannounced fiber stack makes its no-return
// handler unpoison the wrong memory — a crash inside the sanitizer runtime.
#if defined(__SANITIZE_ADDRESS__)
#define ELISION_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ELISION_FIBER_ASAN 1
#endif
#endif
#ifndef ELISION_FIBER_ASAN
#define ELISION_FIBER_ASAN 0
#endif

#if ELISION_FIBER_ASAN
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
}
#endif

// ThreadSanitizer keeps a per-thread shadow stack and synchronization clock;
// like ASan it must be told when execution moves to another stack, or its
// reports attribute events to the wrong context. The fiber API (create /
// switch / destroy) ships in libtsan (GCC 10+/Clang 9+).
#if defined(__SANITIZE_THREAD__)
#define ELISION_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ELISION_FIBER_TSAN 1
#endif
#endif
#ifndef ELISION_FIBER_TSAN
#define ELISION_FIBER_TSAN 0
#endif

#if ELISION_FIBER_TSAN
extern "C" {
void* __tsan_get_current_fiber();
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace elision::sim {
namespace {

// void elision_fiber_switch(void** save_sp, void* next_sp);
//
// Saves the callee-saved registers of the current context on its stack,
// stores the resulting stack pointer through save_sp, installs next_sp and
// restores the registers of the resumed context. The `ret` then transfers
// control to wherever that context suspended (or to the trampoline for a
// fresh fiber).
__asm__(
    ".text\n"
    ".align 16\n"
    ".globl elision_fiber_switch\n"
    ".type elision_fiber_switch,@function\n"
    "elision_fiber_switch:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  movq %rsp, (%rdi)\n"
    "  movq %rsi, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  retq\n"
    ".size elision_fiber_switch,.-elision_fiber_switch\n");

// Fresh fibers start here. The stack preparation below seeds r12 with the
// entry function pointer and r13 with its argument. Entry functions never
// return; if one does, fall into ud2 so the bug is loud.
__asm__(
    ".text\n"
    ".align 16\n"
    ".globl elision_fiber_trampoline\n"
    ".type elision_fiber_trampoline,@function\n"
    "elision_fiber_trampoline:\n"
    "  movq %r13, %rdi\n"
    "  callq *%r12\n"
    "  ud2\n"
    ".size elision_fiber_trampoline,.-elision_fiber_trampoline\n");

extern "C" void elision_fiber_switch(void** save_sp, void* next_sp);
extern "C" void elision_fiber_trampoline();

#if ELISION_FIBER_ASAN
// The fiber that initiated the in-flight switch. One simulation runs all of
// its fiber switches on a single host thread, but *independent* simulations
// may run concurrently on pool threads (support/parallel.hpp), so this
// bookkeeping must be thread_local — a plain static would let one host
// thread's in-flight switch clobber another's. Lets the resumed side learn
// the *host* fiber's stack bounds (unknown at construction — it owns no
// stack) from __sanitizer_finish_switch_fiber's out-parameters the first
// time the host switches away.
thread_local Fiber* g_switching_from = nullptr;

void finish_switch_fiber(void* fake_stack_save) {
  const void* prev_bottom = nullptr;
  std::size_t prev_size = 0;
  __sanitizer_finish_switch_fiber(fake_stack_save, &prev_bottom, &prev_size);
  Fiber* from = g_switching_from;
  g_switching_from = nullptr;
  if (from != nullptr) from->note_stack_bounds(prev_bottom, prev_size);
}
#endif

}  // namespace

Fiber::Fiber(Entry entry, void* arg, std::size_t stack_bytes) {
  ELISION_CHECK(stack_bytes >= 16 * 1024);
  stack_ = std::make_unique<std::byte[]>(stack_bytes);

  // Choose R (the stack pointer at trampoline entry) 16-byte aligned so that
  // the `callq *%r12` inside the trampoline leaves the callee with the
  // SysV-required rsp % 16 == 8.
  auto base = reinterpret_cast<std::uintptr_t>(stack_.get());
  std::uintptr_t r = (base + stack_bytes) & ~static_cast<std::uintptr_t>(15);
  r -= 16;  // scratch: [r] holds a null "caller" for debugger sanity

  auto* slots = reinterpret_cast<void**>(r);
  slots[0] = nullptr;  // fake return address terminating backtraces
  // Layout consumed by elision_fiber_switch's pop sequence (low -> high):
  //   [r15][r14][r13][r12][rbx][rbp][trampoline]
  slots[-1] = reinterpret_cast<void*>(&elision_fiber_trampoline);  // retq target
  slots[-2] = nullptr;                          // rbp
  slots[-3] = nullptr;                          // rbx
  slots[-4] = reinterpret_cast<void*>(entry);   // r12
  slots[-5] = arg;                              // r13
  slots[-6] = nullptr;                          // r14
  slots[-7] = nullptr;                          // r15
  sp_ = static_cast<void*>(slots - 7);
  asan_stack_bottom_ = stack_.get();
  asan_stack_size_ = stack_bytes;
#if ELISION_FIBER_TSAN
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
#if ELISION_FIBER_TSAN
  // Only contexts created for an owned stack; the host fiber's tsan_fiber_
  // is the OS thread's own context and must outlive us.
  if (stack_ != nullptr && tsan_fiber_ != nullptr) {
    __tsan_destroy_fiber(tsan_fiber_);
  }
#endif
}

void Fiber::switch_to(Fiber& from, Fiber& to) {
  ELISION_DCHECK(&from != &to);
  ELISION_CHECK(to.sp_ != nullptr);
  void* next = to.sp_;
  to.sp_ = nullptr;  // `to` is now running; its slot is dead until it suspends
#if ELISION_FIBER_ASAN
  g_switching_from = &from;
  __sanitizer_start_switch_fiber(&from.asan_fake_stack_, to.asan_stack_bottom_,
                                 to.asan_stack_size_);
#endif
#if ELISION_FIBER_TSAN
  // The host fiber owns no stack and borrows its OS thread's TSan context,
  // learned the first time it switches away. A host fiber never migrates
  // between OS threads (one simulation runs entirely on one pool thread),
  // so the borrowed context stays valid for the Scheduler's lifetime.
  if (from.tsan_fiber_ == nullptr) {
    from.tsan_fiber_ = __tsan_get_current_fiber();
  }
  __tsan_switch_to_fiber(to.tsan_fiber_, 0);
#endif
  elision_fiber_switch(&from.sp_, next);
#if ELISION_FIBER_ASAN
  // Running again on `from`'s stack: complete the switch that resumed us.
  finish_switch_fiber(from.asan_fake_stack_);
#endif
}

void Fiber::on_fiber_entry() {
#if ELISION_FIBER_ASAN
  // A fresh fiber has no fake stack to restore (it never suspended).
  finish_switch_fiber(nullptr);
#endif
}

}  // namespace elision::sim
