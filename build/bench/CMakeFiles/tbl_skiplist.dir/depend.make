# Empty dependencies file for tbl_skiplist.
# This may be replaced when dependencies are built.
