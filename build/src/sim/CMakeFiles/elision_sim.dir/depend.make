# Empty dependencies file for elision_sim.
# This may be replaced when dependencies are built.
