// Ablation — Algorithm 3 as designed (HLE nested in an RTM transaction,
// preserving the "lock is held" illusion) vs the evaluated workaround
// (reading the lock and aborting when held), which the paper was forced
// into because Haswell cannot nest HLE inside RTM (Ch. 4 Remark).
//
// Expected: comparable performance — supporting the paper's premise that
// the workaround faithfully represents the intended design.
#include <cstdio>

#include "bench_common.hpp"
#include "locks/scm.hpp"

namespace {

using namespace elision;
using namespace elision::bench;

harness::RunStats run_variant(bool nested, std::size_t size, int update_pct) {
  ds::RbTree tree(size * 4 + 256);
  support::Xoshiro256 fill(42);
  std::size_t filled = 0;
  while (filled < size) {
    if (tree.unsafe_insert(fill.next_below(size * 2))) ++filled;
  }
  tree.unsafe_distribute_free_lists(8);
  locks::TtasLock main;
  locks::McsLock aux;
  harness::BenchConfig cfg;
  cfg.duration_scale = harness::env_duration_scale();
  cfg.tsx.allow_hle_in_rtm = nested;  // the hardware capability the design needs
  const int half = update_pct / 2;
  return harness::run_workload(cfg, [&, half](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(size * 2);
    const auto dice = static_cast<int>(rng.next_below(100));
    locks::ScmParams p;
    p.nested_hle = nested;
    return locks::scm_region(ctx, main, aux, p, [&] {
      if (dice < half) {
        tree.insert(ctx, key);
      } else if (dice < 2 * half) {
        tree.erase(ctx, key);
      } else {
        tree.contains(ctx, key);
      }
    });
  });
}

}  // namespace

int main() {
  using namespace elision;
  harness::banner("Ablation: SCM nested-HLE design vs RTM workaround "
                  "(Ch. 4 Remark)",
                  "8 threads, TTAS main lock.\n"
                  "Expect: the workaround used in the paper's evaluation "
                  "performs comparably to the intended nested design.");
  harness::Table table({"tree-size", "update-pct", "workaround Mops/s",
                        "nested Mops/s", "ratio"});
  for (const std::size_t size : {64ULL, 2048ULL}) {
    for (const int update : {20, 100}) {
      const auto workaround = run_variant(false, size, update);
      const auto nested = run_variant(true, size, update);
      table.add_row({harness::fmt_int(size), harness::fmt_int(update),
                     harness::fmt(workaround.throughput() / 1e6, 2),
                     harness::fmt(nested.throughput() / 1e6, 2),
                     harness::fmt(nested.throughput() /
                                  workaround.throughput(), 2)});
    }
  }
  table.print();
  return 0;
}
