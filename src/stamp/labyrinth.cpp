// STAMP labyrinth: Lee-algorithm path routing in a shared grid.
//
// This is the suite's long-transaction stress case (the paper's Fig 2.1
// discussion is what makes it interesting here): each routing transaction
// BFS-reads a large neighbourhood of the grid and then claims every cell of
// the found path, so read sets are large, write sets can approach the L1
// bound, and two concurrent routings conflict whenever their regions cross.
// An extension beyond the thesis's seven evaluated configurations.
#include <cstdint>
#include <deque>
#include <vector>

#include "stamp/detail.hpp"
#include "support/rng.hpp"
#include "tsx/shared.hpp"

namespace elision::stamp {

namespace {

constexpr int kWidth = 48;
constexpr int kHeight = 48;
constexpr std::int64_t kEmpty = 0;

int cell_index(int x, int y) { return y * kWidth + x; }

}  // namespace

StampResult run_labyrinth(const StampConfig& cfg) {
  const auto n_paths = static_cast<std::size_t>(96 * cfg.scale);

  // Endpoint pairs, pre-generated with distinct free endpoints.
  support::Xoshiro256 rng(cfg.seed);
  std::vector<std::pair<int, int>> endpoints;  // (src, dst) cell indices
  std::vector<bool> used(kWidth * kHeight, false);
  while (endpoints.size() < n_paths) {
    const int sx = static_cast<int>(rng.next_below(kWidth));
    const int sy = static_cast<int>(rng.next_below(kHeight));
    const int dx = static_cast<int>(rng.next_below(kWidth));
    const int dy = static_cast<int>(rng.next_below(kHeight));
    const int s = cell_index(sx, sy), d = cell_index(dx, dy);
    if (s == d || used[s] || used[d]) continue;
    used[s] = used[d] = true;
    endpoints.emplace_back(s, d);
  }

  tsx::SharedArray<std::int64_t> grid(kWidth * kHeight);

  return detail::dispatch_lock(cfg, [&](auto& lock) {
    using Lock = std::remove_reference_t<decltype(lock)>;
    sim::Scheduler sched(cfg.machine);
    tsx::Engine eng(sched, cfg.tsx);
    locks::CriticalSection<Lock> cs(locks::ElisionPolicy::from_scheme(cfg.scheme), lock);
    std::vector<OpTally> tallies(cfg.threads);
    std::vector<std::uint64_t> routed(cfg.threads, 0);

    for (int t = 0; t < cfg.threads; ++t) {
      sched.spawn([&, t](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        const auto [lo, hi] = detail::partition(n_paths, t, cfg.threads);
        std::vector<int> parent(kWidth * kHeight);
        for (std::size_t i = lo; i < hi; ++i) {
          const auto [src, dst] = endpoints[i];
          const auto path_id = static_cast<std::int64_t>(i + 1);
          bool ok = false;
          tallies[t].add(cs.run(ctx, [&] {
            // BFS over currently-free cells (transactional reads).
            ok = false;
            std::fill(parent.begin(), parent.end(), -1);
            parent[src] = src;
            std::deque<int> frontier{src};
            while (!frontier.empty()) {
              const int cur = frontier.front();
              frontier.pop_front();
              if (cur == dst) break;
              const int x = cur % kWidth, y = cur / kWidth;
              const int neighbours[4][2] = {
                  {x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}};
              for (const auto& n : neighbours) {
                if (n[0] < 0 || n[0] >= kWidth || n[1] < 0 ||
                    n[1] >= kHeight) {
                  continue;
                }
                const int idx = cell_index(n[0], n[1]);
                if (parent[idx] != -1) continue;
                if (idx != dst && grid[idx].load(ctx) != kEmpty) continue;
                parent[idx] = cur;
                frontier.push_back(idx);
              }
            }
            if (parent[dst] == -1) return;  // unroutable right now: skip
            // Claim the path (transactional writes along the route).
            for (int cur = dst; cur != src; cur = parent[cur]) {
              grid[cur].store(ctx, path_id);
            }
            grid[src].store(ctx, path_id);
            ok = true;
          }));
          if (ok) ++routed[t];
        }
      });
    }
    sched.run();

    // Invariants: every routed path's endpoints carry its id, and claimed
    // cell counts are consistent (each cell claimed by at most one path is
    // structural — verify endpoints + count cells).
    std::uint64_t total_routed = 0;
    for (const auto r : routed) total_routed += r;
    bool ok = true;
    std::uint64_t claimed_cells = 0;
    std::vector<std::uint64_t> cells_of_path(n_paths + 1, 0);
    for (int i = 0; i < kWidth * kHeight; ++i) {
      const std::int64_t id = grid[i].unsafe_get();
      if (id == kEmpty) continue;
      ++claimed_cells;
      if (id < 0 || static_cast<std::size_t>(id) > n_paths) {
        ok = false;
      } else {
        ++cells_of_path[static_cast<std::size_t>(id)];
      }
    }
    std::uint64_t paths_with_cells = 0;
    for (std::size_t i = 1; i <= n_paths; ++i) {
      if (cells_of_path[i] == 0) continue;
      ++paths_with_cells;
      const auto [src, dst] = endpoints[i - 1];
      if (grid[src].unsafe_get() != static_cast<std::int64_t>(i) ||
          grid[dst].unsafe_get() != static_cast<std::int64_t>(i)) {
        ok = false;  // a partially-claimed path escaped a rollback
      }
      if (cells_of_path[i] < 2) ok = false;
    }
    if (paths_with_cells != total_routed) ok = false;

    auto r = detail::collect("labyrinth",
                             total_routed * 1000003 + claimed_cells,
                             sched.elapsed_cycles(), tallies);
    r.invariants_ok = ok;
    return r;
  });
}

}  // namespace elision::stamp
