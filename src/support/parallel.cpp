#include "support/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace elision::support {

int host_hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

namespace {

// Shared state of one parallel_for_each call. Workers claim items from
// `next`; a throwing job sets `cancelled` so no further items start, and
// parks its exception in the item's slot. Slots are written by exactly one
// worker each and read by the caller only after every worker joined, so
// the joins are the only synchronization the slot data needs.
struct ForEachRun {
  support::FunctionRef<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::size_t n_items;
  std::vector<std::exception_ptr> errors;

  explicit ForEachRun(support::FunctionRef<void(std::size_t)> f,
                      std::size_t n)
      : fn(f), n_items(n), errors(n) {}

  void work() {
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_items) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
};

}  // namespace

void parallel_for_each(std::size_t n_items,
                       support::FunctionRef<void(std::size_t)> fn,
                       int n_threads) {
  if (n_items == 0) return;
  const auto max_useful = static_cast<int>(
      n_items < 1024 ? n_items : 1024);  // never spawn more threads than items
  const int threads = n_threads < max_useful ? n_threads : max_useful;
  if (threads <= 1) {
    // Inline sequential path: item order, natural first-throw propagation.
    for (std::size_t i = 0; i < n_items; ++i) fn(i);
    return;
  }

  ForEachRun run(fn, n_items);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) {
    workers.emplace_back([&run] { run.work(); });
  }
  run.work();  // the calling thread is worker 0
  for (std::thread& w : workers) w.join();

  // Deterministic choice among possibly-several parked exceptions: the
  // lowest item index that threw wins (with one job throwing, that is the
  // same exception a sequential run would have surfaced).
  for (std::size_t i = 0; i < n_items; ++i) {
    if (run.errors[i]) std::rethrow_exception(run.errors[i]);
  }
}

}  // namespace elision::support
