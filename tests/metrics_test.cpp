// Metrics tests: histogram bucketing, registry aggregation, and the JSON/CSV
// exports — including the acceptance check that a six-scheme sweep exports
// an abort-cause matrix and attempts histogram for every scheme.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/metrics.hpp"
#include "harness/runner.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "tsx/shared.hpp"

namespace elision::harness {
namespace {

TEST(Histogram, PowerOfTwoBuckets) {
  Histogram h;
  for (const std::uint64_t v : {0, 1, 2, 3, 4, 7, 8, 15, 16}) h.add(v);
  ASSERT_EQ(h.buckets().size(), 6u);
  EXPECT_EQ(h.buckets()[0], 1u);  // {0}
  EXPECT_EQ(h.buckets()[1], 1u);  // {1}
  EXPECT_EQ(h.buckets()[2], 2u);  // {2,3}
  EXPECT_EQ(h.buckets()[3], 2u);  // {4..7}
  EXPECT_EQ(h.buckets()[4], 2u);  // {8..15}
  EXPECT_EQ(h.buckets()[5], 1u);  // {16..31}
  EXPECT_EQ(h.samples(), 9u);
  EXPECT_EQ(h.sum(), 56u);
  EXPECT_EQ(h.max(), 16u);
  EXPECT_NEAR(h.mean(), 56.0 / 9.0, 1e-9);
}

TEST(Histogram, BucketLabelsAndRanges) {
  EXPECT_EQ(Histogram::bucket_label(0), "0");
  EXPECT_EQ(Histogram::bucket_label(1), "1");
  EXPECT_EQ(Histogram::bucket_label(2), "2-3");
  EXPECT_EQ(Histogram::bucket_label(4), "8-15");
  EXPECT_EQ(Histogram::bucket_lo(5), 16u);
  EXPECT_EQ(Histogram::bucket_hi(5), 31u);
}

// Regression: bucket 64 (values with the top bit set) used to compute its
// range with `1 << 64` — UB caught under UBSan. It must saturate instead.
TEST(Histogram, MaxValuedSampleLandsInSaturatedTopBucket) {
  Histogram h;
  h.add(UINT64_MAX);
  h.add(std::uint64_t{1} << 63);
  ASSERT_EQ(h.buckets().size(), 65u);
  EXPECT_EQ(h.buckets()[64], 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_EQ(Histogram::bucket_lo(64), std::uint64_t{1} << 63);
  EXPECT_EQ(Histogram::bucket_hi(64), UINT64_MAX);
  EXPECT_EQ(Histogram::bucket_label(64),
            "9223372036854775808-18446744073709551615");
  // Exporting a histogram containing the top bucket must not trip UBSan.
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  MetricsRegistry reg;
  reg.series("S", "L").attempts_hist.add(UINT64_MAX);
  reg.export_json(f);
  std::fclose(f);
  const std::string out(buf, len);
  std::free(buf);
  EXPECT_NE(out.find("18446744073709551615"), std::string::npos);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a, b;
  a.add(1);
  a.add(100);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.samples(), 3u);
  EXPECT_EQ(a.sum(), 104u);
  EXPECT_EQ(a.max(), 100u);
  EXPECT_EQ(a.buckets()[2], 1u);
}

TEST(QuantileHistogram, SmallValuesAreExact) {
  QuantileHistogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.add(v);
  EXPECT_EQ(h.samples(), 64u);
  EXPECT_EQ(h.sum(), 64u * 63u / 2);
  EXPECT_EQ(h.max(), 63u);
  // Values below kExact land in exact buckets, so every quantile is the
  // true order statistic.
  EXPECT_EQ(h.quantile(0.50), 31u);
  EXPECT_EQ(h.quantile(0.99), 63u);
  EXPECT_EQ(h.quantile(1.0), 63u);
  QuantileHistogram one;
  one.add(7);
  EXPECT_EQ(one.quantile(0.0), 7u);  // rank clamps to [1, samples]
  EXPECT_EQ(one.quantile(1.0), 7u);
  EXPECT_EQ(QuantileHistogram().quantile(0.5), 0u);  // empty
}

TEST(QuantileHistogram, BucketRangesPartitionTheValueLine) {
  // Each bucket's lo must be the previous bucket's hi + 1, and every value
  // must index into a bucket containing it.
  for (std::size_t i = 1; i < 64 + 10 * QuantileHistogram::kSub; ++i) {
    EXPECT_EQ(QuantileHistogram::bucket_lo(i),
              QuantileHistogram::bucket_hi(i - 1) + 1)
        << i;
  }
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{63}, std::uint64_t{64},
        std::uint64_t{127}, std::uint64_t{128}, std::uint64_t{1000},
        std::uint64_t{123456789}, std::uint64_t{1} << 62}) {
    const std::size_t i = QuantileHistogram::bucket_index(v);
    EXPECT_GE(v, QuantileHistogram::bucket_lo(i)) << v;
    EXPECT_LE(v, QuantileHistogram::bucket_hi(i)) << v;
  }
}

// Acceptance for the latency-percentile machinery: against a sorted
// reference over a heavy-tailed sample, every reported quantile is >= the
// true order statistic and within the documented 1/32 relative error.
TEST(QuantileHistogram, QuantilesMatchSortedReferenceWithinSubBucketError) {
  support::Xoshiro256 rng(2024);
  QuantileHistogram h;
  std::vector<std::uint64_t> ref;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform spread over ~6 decades, like queueing latencies.
    const std::uint64_t v =
        rng.next_below(std::uint64_t{1} << (3 + rng.next_below(20)));
    h.add(v);
    ref.push_back(v);
  }
  std::sort(ref.begin(), ref.end());
  for (const double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const auto rank =
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(ref.size())));
    const std::uint64_t exact = ref[rank - 1];
    const std::uint64_t approx = h.quantile(q);
    EXPECT_GE(approx, exact) << q;  // bucket_hi never under-reports
    EXPECT_LE(static_cast<double>(approx - exact),
              static_cast<double>(exact) / 32.0 + 1.0)
        << q;
  }
  EXPECT_EQ(h.quantile(1.0), ref.back());  // max is tracked exactly
}

TEST(QuantileHistogram, MergeMatchesSingleHistogramOverTheUnion) {
  support::Xoshiro256 rng(7);
  QuantileHistogram a, b, all;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next_below(1 << 20);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.samples(), all.samples());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_EQ(a.buckets(), all.buckets());
  for (const double q : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q)) << q;
  }
}

// Regression (satellite): Histogram::add and merge used to wrap sum_ on
// overflow, corrupting mean() in long aggregations. They must saturate.
TEST(Histogram, SumSaturatesInsteadOfWrapping) {
  Histogram h;
  h.add(UINT64_MAX);
  h.add(UINT64_MAX);
  EXPECT_EQ(h.sum(), UINT64_MAX);
  Histogram other;
  other.add(UINT64_MAX);
  h.merge(other);
  EXPECT_EQ(h.sum(), UINT64_MAX);
  QuantileHistogram q;
  q.add(UINT64_MAX);
  q.add(UINT64_MAX);
  EXPECT_EQ(q.sum(), UINT64_MAX);
}

TEST(MetricsRegistry, SeriesAreKeyedAndOrdered) {
  MetricsRegistry reg;
  reg.series("HLE", "MCS").ops = 10;
  reg.series("HLE", "TTAS").ops = 20;
  reg.series("HLE", "MCS").ops += 5;  // same series again
  ASSERT_EQ(reg.entries().size(), 2u);
  EXPECT_EQ(reg.entries()[0].metrics.ops, 15u);
  EXPECT_EQ(reg.entries()[1].metrics.ops, 20u);
}

TEST(MetricsRegistry, AbsorbAggregatesRunStats) {
  RunStats run;
  run.ops = 100;
  run.spec_ops = 90;
  run.nonspec_ops = 10;
  run.attempts = 120;
  run.elapsed_cycles = 1000;
  run.tx.begins = 110;
  run.tx.commits = 90;
  run.tx.record_abort(tsx::AbortCause::kConflict);
  run.attempts_hist.add(1);
  run.attempts_hist.add(3);
  tsx::AvalancheEpisode ep;
  ep.start = 100;
  ep.end = 600;
  ep.victims = {1, 2, 3};
  run.episodes.push_back(ep);

  MetricsRegistry reg;
  reg.record("HLE", "MCS", run);
  reg.record("HLE", "MCS", run);
  const auto& m = reg.entries()[0].metrics;
  EXPECT_EQ(m.runs, 2u);
  EXPECT_EQ(m.ops, 200u);
  EXPECT_EQ(m.attempts, 240u);
  EXPECT_EQ(m.tx.aborts_by_cause[static_cast<std::size_t>(
                tsx::AbortCause::kConflict)],
            2u);
  EXPECT_EQ(m.attempts_hist.samples(), 4u);
  EXPECT_EQ(m.avalanche_episodes, 2u);
  EXPECT_EQ(m.avalanche_victims, 6u);
  EXPECT_EQ(m.avalanche_max_victims, 3);
  EXPECT_EQ(m.avalanche_cycles, 1000u);
}

// Regression: absorb used to keep whatever ghz the previous run had (and
// the default 3.4 before that), so series from non-default MachineConfig
// runs reported wrong throughput. It must propagate the first run's ghz and
// reject mixing machines within one series.
TEST(MetricsRegistry, AbsorbPropagatesGhzFromRun) {
  RunStats run;
  run.ops = 1000;
  run.elapsed_cycles = 2'000'000'000;  // 1 virtual second at 2 GHz
  run.ghz = 2.0;
  MetricsRegistry reg;
  reg.record("HLE", "MCS", run);
  const auto& m = reg.entries()[0].metrics;
  EXPECT_DOUBLE_EQ(m.ghz, 2.0);
  EXPECT_NEAR(m.seconds(), 1.0, 1e-9);
  EXPECT_NEAR(m.throughput(), 1000.0, 1e-6);
}

TEST(MetricsRegistry, AbsorbRejectsMixedGhzWithinASeries) {
  RunStats a;
  a.ops = 10;
  a.elapsed_cycles = 100;
  a.ghz = 3.4;
  RunStats b = a;
  b.ghz = 2.0;
  MetricsRegistry reg;
  reg.record("HLE", "MCS", a);
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(reg.record("HLE", "MCS", b), "different MachineConfig");
}

std::string export_to_string(const MetricsRegistry& reg, bool csv) {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  if (csv) {
    reg.export_csv(f);
  } else {
    reg.export_json(f);
  }
  std::fclose(f);
  std::string out(buf, len);
  std::free(buf);
  return out;
}

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// Acceptance: a run over all six evaluated schemes exports one JSON series
// per scheme, each with the abort-cause matrix and the attempts histogram.
TEST(MetricsExport, SixSchemeSweepHasMatrixAndHistogramPerScheme) {
  MetricsRegistry reg;
  tsx::Shared<std::uint64_t> counter;
  for (const auto scheme : locks::kAllSixSchemes) {
    BenchConfig cfg;
    cfg.threads = 4;
    cfg.duration_sec = 0.0002;
    cfg.machine.seed = 7;
    cfg.policy = locks::ElisionPolicy::from_scheme(scheme);
    cfg.telemetry = true;
    locks::TtasLock lock;
    locks::CriticalSection<locks::TtasLock> cs(cfg.policy, lock);
    run_workload(
        cfg,
        [&](tsx::Ctx& ctx) {
          return cs.run(ctx,
                        [&] { counter.store(ctx, counter.load(ctx) + 1); });
        },
        reg, locks::TtasLock::kName);
  }
  ASSERT_EQ(reg.entries().size(), 6u);

  const std::string json = export_to_string(reg, /*csv=*/false);
  for (const auto scheme : locks::kAllSixSchemes) {
    const std::string key =
        std::string("\"scheme\":\"") + locks::scheme_name(scheme) + "\"";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(count_occurrences(json, "\"aborts_by_cause\""), 6u);
  EXPECT_EQ(count_occurrences(json, "\"attempts_hist\""), 6u);
  EXPECT_EQ(count_occurrences(json, "\"rejoin_cycles_hist\""), 6u);
  EXPECT_NE(json.find("\"conflict\""), std::string::npos);

  // Every scheme completed regions, so every histogram has samples.
  for (const auto& e : reg.entries()) {
    EXPECT_GT(e.metrics.ops, 0u) << e.scheme;
    EXPECT_GT(e.metrics.attempts_hist.samples(), 0u) << e.scheme;
  }

  const std::string csv = export_to_string(reg, /*csv=*/true);
  EXPECT_NE(csv.find("scheme,lock,runs"), std::string::npos);
  EXPECT_NE(csv.find("aborts_conflict"), std::string::npos);
  // Header line + one row per scheme.
  EXPECT_EQ(count_occurrences(csv, "\n"), 7u);
}

// Satellite acceptance: the JSON export parses as a real JSON document —
// scheme/lock names escaped, histogram and avalanche fields intact, series
// in insertion order — and the CSV export keeps the same series order.
TEST(MetricsExport, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  RunStats run;
  run.ops = 50;
  run.spec_ops = 40;
  run.nonspec_ops = 10;
  run.attempts = 60;
  run.elapsed_cycles = 34000;
  run.tx.begins = 55;
  run.tx.commits = 40;
  run.tx.record_abort(tsx::AbortCause::kConflict);
  run.attempts_hist.add(1);
  run.attempts_hist.add(6);
  run.rejoin_hist.add(1200);
  tsx::AvalancheEpisode ep;
  ep.start = 10;
  ep.end = 100;
  ep.victims = {1, 2};
  run.episodes.push_back(ep);
  // Names that would corrupt unescaped JSON output.
  reg.record("HLE \"quoted\\scheme\"", "lock\n\ttab", run);
  reg.record("Standard", "TTAS", run);

  const std::string text = export_to_string(reg, /*csv=*/false);
  const auto doc = support::json::parse(text);
  ASSERT_TRUE(doc.has_value()) << text;

  const auto* series = doc->find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->items().size(), 2u);
  // Insertion order preserved, names round-tripped through escaping.
  const auto& first = series->items()[0];
  EXPECT_EQ(first.find("scheme")->as_string(), "HLE \"quoted\\scheme\"");
  EXPECT_EQ(first.find("lock")->as_string(), "lock\n\ttab");
  EXPECT_EQ(series->items()[1].find("scheme")->as_string(), "Standard");

  EXPECT_EQ(first.find("ops")->as_u64(), 50u);
  const auto* causes = first.find("aborts_by_cause");
  ASSERT_NE(causes, nullptr);
  EXPECT_EQ(causes->find("conflict")->as_u64(), 1u);
  const auto* hist = first.find("attempts_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("samples")->as_u64(), 2u);
  EXPECT_EQ(hist->find("buckets")->find("4-7")->as_u64(), 1u);
  const auto* rejoin = first.find("rejoin_cycles_hist");
  ASSERT_NE(rejoin, nullptr);
  EXPECT_EQ(rejoin->find("max")->as_u64(), 1200u);
  const auto* avalanche = first.find("avalanche");
  ASSERT_NE(avalanche, nullptr);
  EXPECT_EQ(avalanche->find("episodes")->as_u64(), 1u);
  EXPECT_EQ(avalanche->find("victims")->as_u64(), 2u);

  // CSV: header plus rows in the same order.
  const std::string csv = export_to_string(reg, /*csv=*/true);
  const auto first_row = csv.find('\n') + 1;
  EXPECT_EQ(csv.find("Standard"), csv.rfind("Standard"));
  EXPECT_GT(csv.find("Standard"), first_row);
}

}  // namespace
}  // namespace elision::harness
