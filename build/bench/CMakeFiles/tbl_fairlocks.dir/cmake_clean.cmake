file(REMOVE_RECURSE
  "CMakeFiles/tbl_fairlocks.dir/tbl_fairlocks.cpp.o"
  "CMakeFiles/tbl_fairlocks.dir/tbl_fairlocks.cpp.o.d"
  "tbl_fairlocks"
  "tbl_fairlocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_fairlocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
