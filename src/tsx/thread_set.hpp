// Fixed-width set of simulated thread ids, used for the per-line reader and
// copies masks in the line table.
//
// The seed tracked both as a single uint64_t, which hard-capped the machine
// at 64 threads. This widens the mask to kMaxThreads bits as a flat array
// of words while keeping the per-access cost profile of the old code:
//
//   - single-id operations (test/set/reset — the loads' and stores' hot
//     path) index one word and are O(1), identical to the old shift-and-AND
//     on a uint64_t up to the extra id >> 6;
//   - whole-set predicates (any_other/is_only — the write-upgrade path) and
//     iteration read all kWords words, a short fixed-trip loop the compiler
//     unrolls (4 words at the 256-thread cap);
//   - value semantics and zero-initialization match the old plain integer,
//     so LineRecord stays trivially copyable and LineTable's slot recycling
//     (rec = LineRecord{}) keeps working unchanged.
//
// Iteration order is ascending thread id (lowest word first, ctz within a
// word) — the same order the old __builtin_ctzll(mask) loop produced, which
// conflict-abort propagation relies on for deterministic schedules.
#pragma once

#include <cstdint>

#include "support/check.hpp"
#include "tsx/config.hpp"

namespace elision::tsx {

class ThreadSet {
 public:
  static constexpr int kBitsPerWord = 64;
  static constexpr int kWords =
      (kMaxThreads + kBitsPerWord - 1) / kBitsPerWord;
  static_assert(kWords * kBitsPerWord >= kMaxThreads,
                "ThreadSet must cover every simulated thread id");

  constexpr bool test(int id) const {
    return (w_[word(id)] & bit(id)) != 0;
  }

  constexpr void set(int id) { w_[word(id)] |= bit(id); }

  constexpr void reset(int id) { w_[word(id)] &= ~bit(id); }

  constexpr bool any() const {
    std::uint64_t acc = 0;
    for (int w = 0; w < kWords; ++w) acc |= w_[w];
    return acc != 0;
  }

  constexpr bool none() const { return !any(); }

  // Any member besides `id` (which may or may not be present itself).
  constexpr bool any_other(int id) const {
    std::uint64_t acc = w_[word(id)] & ~bit(id);
    for (int w = 0; w < kWords; ++w) {
      if (w != word(id)) acc |= w_[w];
    }
    return acc != 0;
  }

  // Exactly {id}.
  constexpr bool is_only(int id) const {
    std::uint64_t acc = w_[word(id)] ^ bit(id);
    for (int w = 0; w < kWords; ++w) {
      if (w != word(id)) acc |= w_[w];
    }
    return acc == 0;
  }

  constexpr void assign_only(int id) {
    for (int w = 0; w < kWords; ++w) w_[w] = 0;
    set(id);
  }

  constexpr void clear() {
    for (int w = 0; w < kWords; ++w) w_[w] = 0;
  }

  friend constexpr bool operator==(const ThreadSet&, const ThreadSet&) =
      default;

  // Calls f(id) for every member in ascending id order. Callers that mutate
  // this set from inside f iterate over a copy (the conflict-abort paths
  // do: tearing a victim down clears its reader bits).
  template <typename F>
  void for_each(F&& f) const {
    for (int w = 0; w < kWords; ++w) {
      std::uint64_t m = w_[w];
      while (m != 0) {
        f(w * kBitsPerWord + __builtin_ctzll(m));
        m &= m - 1;
      }
    }
  }

 private:
  static constexpr int word(int id) {
    ELISION_DCHECK(id >= 0 && id < kMaxThreads);
    return id >> 6;
  }
  static constexpr std::uint64_t bit(int id) {
    return 1ULL << (id & (kBitsPerWord - 1));
  }

  std::uint64_t w_[kWords] = {};
};

}  // namespace elision::tsx
