#include "harness/micro_point.hpp"

#include <vector>

#include "sim/machine_config.hpp"
#include "sim/scheduler.hpp"
#include "support/align.hpp"
#include "support/check.hpp"
#include "tsx/engine.hpp"

namespace elision::harness {

RunStats run_micro_point(const MicroPoint& p) {
  ELISION_CHECK_MSG(
      p.shared_period != 0 && (p.shared_period & (p.shared_period - 1)) == 0,
      "MicroPoint::shared_period must be a power of two");
  sim::MachineConfig machine;
  machine.seed = p.seed;
  if (p.n_cores != 0) machine.n_cores = p.n_cores;
  if (p.smt_per_core != 0) machine.smt_per_core = p.smt_per_core;
  if (p.yield_slack_cycles != 0) {
    machine.yield_slack_cycles = p.yield_slack_cycles;
  }
  tsx::TsxConfig tsx_config;
  if (!env_fastpath_enabled()) {  // A/B hook, same as run_workload
    machine.batch_switch_bound = false;
    tsx_config.owned_line_fastpath = false;
  }
  sim::Scheduler sched(machine);
  tsx::Engine engine(sched, tsx_config);

  // Stable backing store for the simulated lines (never reallocated while
  // threads run). Line ids are real addresses >> 6, so the grouping of words
  // into lines depends on the base address mod 64; align the array to the
  // line size so the conflict pattern — and with it every simulated metric —
  // is identical across processes (parallel workers must reproduce the
  // sequential run exactly).
  constexpr std::size_t kWordsPerLine =
      support::kCacheLineBytes / sizeof(std::uint64_t);
  std::vector<std::uint64_t> storage(p.array_words + kWordsPerLine, 0);
  const auto base = reinterpret_cast<std::uintptr_t>(storage.data());
  std::uint64_t* const words = reinterpret_cast<std::uint64_t*>(
      (base + support::kCacheLineBytes - 1) &
      ~static_cast<std::uintptr_t>(support::kCacheLineBytes - 1));

  struct PerThread {
    std::uint64_t ops = 0;
    std::uint64_t spec_ops = 0;
    std::uint64_t nonspec_ops = 0;
    std::uint64_t attempts = 0;
  };
  std::vector<PerThread> acc(static_cast<std::size_t>(p.threads));

  // Each op is one RTM transaction: 8 strided reads and one write, mostly
  // within the thread's own stripe of the array, with a shared hot line
  // mixed in every 16th op so conflict detection and aborts stay exercised.
  const std::size_t stripe = p.array_words / static_cast<std::size_t>(p.threads);
  for (int t = 0; t < p.threads; ++t) {
    sched.spawn([&, t](sim::SimThread& st) {
      tsx::Ctx& ctx = engine.context(st);
      auto& rng = st.rng();
      PerThread& a = acc[static_cast<std::size_t>(t)];
      const std::size_t base = static_cast<std::size_t>(t) * stripe;
      for (std::uint64_t op = 0; op < p.ops_per_thread; ++op) {
        const bool shared = (op & (p.shared_period - 1)) == 0;
        const std::size_t lo = shared ? 0 : base;
        const std::size_t span = shared ? p.array_words : stripe;
        // start < array_words (lo + span never exceeds it), so the strided
        // indices below wrap by repeated subtraction instead of a hardware
        // divide in the per-access loop the simulator is timing around (one
        // iteration in practice: the stride span 7*17 is tiny next to the
        // array).
        const std::size_t start = lo + rng.next_below(span);
        bool committed = false;
        int tries = 0;
        while (!committed && tries < 8) {
          ++tries;
          const unsigned status = engine.run_transaction(ctx, [&] {
            std::uint64_t sum = 0;
            for (std::size_t i = 0; i < 8; ++i) {
              std::size_t idx = start + i * 17;
              while (idx >= p.array_words) idx -= p.array_words;
              sum += engine.load(ctx, &words[idx]);
            }
            engine.store(ctx, &words[start], sum + 1);
          });
          committed = status == tsx::kCommitted;
        }
        if (committed) {
          ++a.spec_ops;
        } else {
          // Non-speculative fallback: the same update, directly.
          engine.fetch_add(ctx, &words[start], 1);
          ++tries;
          ++a.nonspec_ops;
        }
        ++a.ops;
        a.attempts += static_cast<std::uint64_t>(tries);
      }
    });
  }
  sched.run();

  RunStats out;
  out.ghz = machine.ghz;
  out.elapsed_cycles = sched.elapsed_cycles();
  out.tx = engine.total_stats();
  out.fp_bound_recomputes = sched.switch_bound_recomputes();
  for (const PerThread& a : acc) {
    out.ops += a.ops;
    out.spec_ops += a.spec_ops;
    out.nonspec_ops += a.nonspec_ops;
    out.attempts += a.attempts;
  }
  return out;
}

}  // namespace elision::harness
