file(REMOVE_RECURSE
  "CMakeFiles/fig2_1_capacity.dir/fig2_1_capacity.cpp.o"
  "CMakeFiles/fig2_1_capacity.dir/fig2_1_capacity.cpp.o.d"
  "fig2_1_capacity"
  "fig2_1_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_1_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
