# Empty compiler generated dependencies file for fig3_5_hle_vs_rtm.
# This may be replaced when dependencies are built.
