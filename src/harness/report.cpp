#include "harness/report.hpp"

#include <algorithm>
#include <cinttypes>

namespace elision::harness {

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s  ", static_cast<int>(widths[c]),
                   row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c > 0 ? "," : "", row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_int(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

void banner(const char* experiment, const char* description) {
  std::printf("\n===== %s =====\n%s\n\n", experiment, description);
}

}  // namespace elision::harness
