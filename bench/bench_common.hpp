// Shared driver for the red-black-tree figure benches: builds the paper's
// benchmark (a global-lock-protected tree, random insert/delete/lookup mix,
// fixed virtual duration) for any (lock, scheme, size, mix, threads)
// combination.
#pragma once

#include <cstddef>
#include <memory>

#include "ds/hashtable.hpp"
#include "ds/rbtree.hpp"
#include "harness/runner.hpp"
#include "harness/report.hpp"
#include "locks/clh_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/ttas_lock.hpp"
#include "support/rng.hpp"

namespace elision::bench {

enum class LockSel { kTtas, kMcs, kTicketAdj, kClhAdj, kTicket, kClh };

inline const char* lock_sel_name(LockSel s) {
  switch (s) {
    case LockSel::kTtas: return "TTAS";
    case LockSel::kMcs: return "MCS";
    case LockSel::kTicketAdj: return "Ticket-adj";
    case LockSel::kClhAdj: return "CLH-adj";
    case LockSel::kTicket: return "Ticket";
    case LockSel::kClh: return "CLH";
  }
  return "?";
}

struct RbPoint {
  std::size_t size = 128;
  int update_pct = 20;  // split evenly between inserts and deletes
  int threads = 8;
  // Accepts a bare locks::Scheme (implicit conversion) or a tuned policy.
  locks::ElisionPolicy scheme = locks::ElisionPolicy::standard();
  LockSel lock = LockSel::kTtas;
  double duration_sec = 0.003;
  // Collect an event trace and derive avalanche/rejoin statistics.
  bool telemetry = false;
  tsx::AvalancheConfig avalanche;
  // Runs averaged per point (different machine seeds). Avalanche latching
  // is bistable at short windows, so single runs have high variance.
  int seeds = 2;
  bool hardware_extension = false;
  std::uint64_t timeline_slot_cycles = 0;
  std::uint64_t seed = 42;

  // Out-param: fraction of TTAS lock arrivals that found the lock held
  // (the boxed series of Fig 3.1). Only filled for LockSel::kTtas.
  double* arrival_held_frac = nullptr;
};

namespace detail {

template <typename Lock>
harness::RunStats run_rb_with_lock(const RbPoint& p, ds::RbTree& tree) {
  Lock lock;
  locks::CriticalSection<Lock> cs(p.scheme, lock);
  harness::BenchConfig cfg;
  cfg.threads = p.threads;
  cfg.duration_sec = p.duration_sec;
  cfg.duration_scale = harness::env_duration_scale();
  cfg.tsx.hardware_extension = p.hardware_extension;
  cfg.machine.seed = p.seed;
  cfg.timeline_slot_cycles = p.timeline_slot_cycles;
  cfg.policy = p.scheme;
  cfg.telemetry = p.telemetry;
  cfg.avalanche = p.avalanche;
  const std::uint64_t domain = p.size * 2;
  const int half_updates = p.update_pct / 2;
  auto stats = harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(domain);
    const auto dice = static_cast<int>(rng.next_below(100));
    return cs.run(ctx, [&] {
      if (dice < half_updates) {
        tree.insert(ctx, key);
      } else if (dice < p.update_pct) {
        tree.erase(ctx, key);
      } else {
        tree.contains(ctx, key);
      }
    });
  });
  if constexpr (std::is_same_v<Lock, locks::TtasLock>) {
    if (p.arrival_held_frac != nullptr) {
      *p.arrival_held_frac =
          lock.arrivals() > 0
              ? static_cast<double>(lock.arrivals_lock_held()) /
                    static_cast<double>(lock.arrivals())
              : 0.0;
    }
  }
  return stats;
}

}  // namespace detail

// Builds the tree (random keys from a domain of 2*size, as in Ch. 3) and
// runs the benchmark for the configured virtual duration, once.
inline harness::RunStats run_rb_point_once(const RbPoint& p) {
  ds::RbTree tree(p.size * 4 + 256);
  support::Xoshiro256 fill(p.seed);
  std::size_t filled = 0;
  while (filled < p.size) {
    if (tree.unsafe_insert(fill.next_below(p.size * 2))) ++filled;
  }
  tree.unsafe_distribute_free_lists(p.threads);
  switch (p.lock) {
    case LockSel::kTtas:
      return detail::run_rb_with_lock<locks::TtasLock>(p, tree);
    case LockSel::kMcs:
      return detail::run_rb_with_lock<locks::McsLock>(p, tree);
    case LockSel::kTicketAdj:
      return detail::run_rb_with_lock<locks::TicketLockAdjusted>(p, tree);
    case LockSel::kClhAdj:
      return detail::run_rb_with_lock<locks::ClhLockAdjusted>(p, tree);
    case LockSel::kTicket:
      return detail::run_rb_with_lock<locks::TicketLock>(p, tree);
    case LockSel::kClh:
      return detail::run_rb_with_lock<locks::ClhLock>(p, tree);
  }
  return {};
}

// Averages `p.seeds` independent runs (the paper averages 10 three-second
// runs per point).
inline harness::RunStats run_rb_point(const RbPoint& p) {
  harness::RunStats total;
  RbPoint q = p;
  q.arrival_held_frac = nullptr;
  double arrival_sum = 0.0;
  const int n = p.seeds > 0 ? p.seeds : 1;
  for (int s = 0; s < n; ++s) {
    q.seed = p.seed + static_cast<std::uint64_t>(s) * 0x9E3779B9ULL;
    double arrival = 0.0;
    q.arrival_held_frac = p.arrival_held_frac != nullptr ? &arrival : nullptr;
    const auto r = run_rb_point_once(q);
    total.ops += r.ops;
    total.spec_ops += r.spec_ops;
    total.nonspec_ops += r.nonspec_ops;
    total.attempts += r.attempts;
    total.elapsed_cycles += r.elapsed_cycles;
    total.ghz = r.ghz;
    total.tx += r.tx;
    total.attempts_hist.merge(r.attempts_hist);
    total.rejoin_hist.merge(r.rejoin_hist);
    total.episodes.insert(total.episodes.end(), r.episodes.begin(),
                          r.episodes.end());
    total.telemetry_events += r.telemetry_events;
    total.telemetry_dropped += r.telemetry_dropped;
    arrival_sum += arrival;
  }
  if (p.arrival_held_frac != nullptr) *p.arrival_held_frac = arrival_sum / n;
  return total;
}

// The paper's tree-size sweep (Fig 3.1/3.4/5.2 x-axis).
inline const std::size_t kTreeSizes[] = {2,    8,    32,   128,   512,
                                         2048, 8192, 32768, 131072, 524288};

// A faster subset for the benches that run many (scheme x lock) combos.
inline const std::size_t kTreeSizesSmall[] = {2, 8, 32, 128, 512, 2048, 8192,
                                              32768};

struct Mix {
  const char* name;
  int update_pct;
};
inline const Mix kMixes[] = {
    {"lookups-only", 0},
    {"10i-10d-80l", 20},
    {"50i-50d", 100},
};

}  // namespace elision::bench
