// Extension table — the skiplist data-structure benchmark: like the
// red-black tree sweep but with the skiplist's transactional footprint
// (taller read paths, no rebalancing writes). Confirms the paper's
// conclusions are not an artifact of the tree's write pattern.
#include <cstdio>

#include "bench_common.hpp"
#include "ds/skiplist.hpp"

namespace {

using namespace elision;
using namespace elision::bench;

template <typename Lock>
harness::RunStats run_sl(locks::Scheme scheme, std::size_t size,
                         int update_pct, ds::SkipList& sl) {
  Lock lock;
  locks::CriticalSection<Lock> cs(locks::ElisionPolicy::from_scheme(scheme), lock);
  harness::BenchConfig cfg;
  cfg.duration_scale = harness::env_duration_scale();
  const std::uint64_t domain = size * 2;
  const int half = update_pct / 2;
  return harness::run_workload(cfg, [&, half, update_pct](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(domain);
    const auto dice = static_cast<int>(rng.next_below(100));
    return cs.run(ctx, [&] {
      if (dice < half) {
        sl.insert(ctx, key);
      } else if (dice < update_pct) {
        sl.erase(ctx, key);
      } else {
        sl.contains(ctx, key);
      }
    });
  });
}

}  // namespace

int main() {
  harness::banner("Skiplist benchmark (extension)",
                  "The tree results, cross-checked on a skiplist: "
                  "HLE-MCS flat, SCM restores concurrency, 8 threads.");
  harness::Table table({"mix", "lock", "size", "scheme", "Mops/s",
                        "att/op", "nonspec"});
  for (const auto& mix : kMixes) {
    for (const std::size_t size : {128ULL, 4096ULL}) {
      for (const bool mcs : {false, true}) {
        for (const auto scheme : locks::kAllSixSchemes) {
          ds::SkipList sl(size * 4 + 64);
          support::Xoshiro256 fill(42);
          std::size_t filled = 0;
          while (filled < size) {
            if (sl.unsafe_insert(fill.next_below(size * 2))) ++filled;
          }
          sl.unsafe_distribute_free_lists(8);
          const auto stats =
              mcs ? run_sl<locks::McsLock>(scheme, size, mix.update_pct, sl)
                  : run_sl<locks::TtasLock>(scheme, size, mix.update_pct, sl);
          table.add_row({mix.name, mcs ? "MCS" : "TTAS",
                         harness::fmt_int(size), locks::scheme_name(scheme),
                         harness::fmt(stats.throughput() / 1e6, 2),
                         harness::fmt(stats.attempts_per_op(), 2),
                         harness::fmt(stats.nonspec_fraction(), 3)});
        }
      }
    }
  }
  table.print();
  return 0;
}
