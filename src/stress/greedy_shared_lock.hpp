// A deliberately broken two-mode lock: readers ignore writer intent.
//
// The correct shared protocol (locks/shared_word.hpp) blocks new readers on
// kReaderBlockMask — the writer bit *or* a pending announcement — so a
// writer that announced intent sees the reader count drain. GreedySharedLock
// readers test only the writer bit: a continuous stream of readers keeps the
// count forever nonzero and the announcing writer starves. The window is
// behavioural, not a narrow race — but the unperturbed earliest-first
// schedule tends to briefly drain readers anyway; the perturbation layer's
// injected delays are what keep the reader crowd overlapped long enough for
// the lockout to exceed the watchdog thresholds.
//
// Self-test instrument for src/stress (stress_cli --selftest-shared): the
// RoleLockoutChecker / StarvationWatchdog must catch the planted writer
// starvation. Excluded from all_locks(); only meaningful under the standard
// (non-speculative) policy — it performs no XACQUIRE, so there is nothing
// to elide.
#pragma once

#include <cstdint>

#include "locks/shared_word.hpp"
#include "support/align.hpp"
#include "tsx/shared.hpp"

namespace elision::stress {

class GreedySharedLock {
 public:
  static constexpr const char* kName = "Greedy-Shared";
  static constexpr bool kIsFair = false;

  // --- exclusive mode (correct; mirrors SharedTtasLock's standard path) ---
  void lock(tsx::Ctx& ctx) {
    word().fetch_add(ctx, locks::rw::kPendingUnit);
    for (;;) {
      const std::uint64_t v = word().load(ctx);
      if ((v & locks::rw::kWriter) == 0 && readers().load(ctx) == 0) {
        if (word().compare_exchange(
                ctx, v, v - locks::rw::kPendingUnit + locks::rw::kWriter)) {
          return;
        }
        continue;
      }
      ctx.engine().pause(ctx);
    }
  }

  void unlock(tsx::Ctx& ctx) {
    word().fetch_add(ctx, std::uint64_t{0} - locks::rw::kWriter);
  }

  // --- shared mode (the planted bug) ---
  void lock_shared(tsx::Ctx& ctx) {
    for (;;) {
      // BUG: tests kWriter instead of kReaderBlockMask — pending writers
      // are invisible to readers, so readers barge past announced intent
      // and the writer never sees the count drain.
      while ((word().load(ctx) & locks::rw::kWriter) != 0) {
        ctx.engine().pause(ctx);
      }
      readers().fetch_add(ctx, 1);
      if ((word().load(ctx) & locks::rw::kWriter) == 0) return;
      readers().fetch_add(ctx, std::uint64_t{0} - 1);
    }
  }

  void unlock_shared(tsx::Ctx& ctx) {
    readers().fetch_add(ctx, std::uint64_t{0} - 1);
  }

  bool is_held(tsx::Ctx& ctx) {
    return word().load(ctx) != 0 || readers().load(ctx) != 0;
  }
  bool is_write_locked(tsx::Ctx& ctx) {
    return (word().load(ctx) & locks::rw::kReaderBlockMask) != 0;
  }

  bool reissue_acquire_standard(tsx::Ctx& ctx) {
    lock(ctx);
    return true;
  }
  bool reissue_acquire_shared_standard(tsx::Ctx& ctx) {
    if ((word().load(ctx) & locks::rw::kWriter) != 0) return false;
    readers().fetch_add(ctx, 1);
    if ((word().load(ctx) & locks::rw::kWriter) == 0) return true;
    readers().fetch_add(ctx, std::uint64_t{0} - 1);
    return false;
  }

 private:
  tsx::Shared<std::uint64_t>& word() { return word_.value; }
  tsx::Shared<std::uint64_t>& readers() { return readers_.value; }

  support::CacheAligned<tsx::Shared<std::uint64_t>> word_;
  support::CacheAligned<tsx::Shared<std::uint64_t>> readers_;
};

}  // namespace elision::stress
