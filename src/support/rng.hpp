// Deterministic pseudo-random number generators.
//
// All randomness in the simulator and the workloads flows through these
// seeded generators so that every experiment is bit-reproducible.
#pragma once

#include <cstdint>

#include "support/check.hpp"

namespace elision::support {

// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the full state.
    std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    ELISION_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection-free approximation is fine here; we
    // do one rejection round to keep the distribution unbiased.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace elision::support
