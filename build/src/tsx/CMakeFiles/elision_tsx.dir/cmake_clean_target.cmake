file(REMOVE_RECURSE
  "libelision_tsx.a"
)
