// Per-cache-line bookkeeping: transactional conflict state (reader mask +
// single buffered writer) and a MESI-like sharing model used both for
// memory-access cost estimation and for the Chapter 7 "cache footprint"
// semantics.
//
// The simulator runs on one host thread, so the records are plain data.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "support/align.hpp"

namespace elision::tsx {

inline constexpr int kNoThread = -1;

struct LineRecord {
  // --- transactional conflict detection ---
  std::uint64_t readers = 0;  // bitmask of tx ids with this line in read set
  int writer = kNoThread;     // tx id with this line in its (buffered) write set

  // --- cache sharing model ---
  std::uint64_t copies = 0;      // threads whose simulated cache holds the line
  int dirty_owner = kNoThread;   // thread holding the line modified, if any
};

class LineTable {
 public:
  LineRecord& record(support::LineId line) { return map_[line]; }

  // Lookup without creating a record (used on read-mostly fast paths).
  LineRecord* find(support::LineId line) {
    auto it = map_.find(line);
    return it == map_.end() ? nullptr : &it->second;
  }

  void clear() { map_.clear(); }
  std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<support::LineId, LineRecord> map_;
};

}  // namespace elision::tsx
