#include "tsx/telemetry.hpp"

#include <algorithm>
#include <cinttypes>
#include <unordered_map>

namespace elision::tsx {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kTxBegin: return "tx-begin";
    case EventKind::kTxCommit: return "tx-commit";
    case EventKind::kTxAbort: return "tx-abort";
    case EventKind::kLockAcquire: return "lock-acquire";
    case EventKind::kLockRelease: return "lock-release";
    case EventKind::kAuxEnter: return "aux-enter";
    case EventKind::kAuxRejoin: return "aux-rejoin";
    case EventKind::kAuxExit: return "aux-exit";
    case EventKind::kKindCount: break;
  }
  return "?";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EventRing::EventRing(std::size_t capacity)
    : buf_(round_up_pow2(capacity == 0 ? 1 : capacity)),
      mask_(buf_.size() - 1) {}

std::vector<TelemetryEvent> EventRing::snapshot() const {
  std::vector<TelemetryEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = pushed_ - n;
  for (std::uint64_t i = first; i < pushed_; ++i) {
    out.push_back(buf_[static_cast<std::size_t>(i) & mask_]);
  }
  return out;
}

EventRing& Telemetry::ring(int thread) {
  const auto id = static_cast<std::size_t>(thread < 0 ? 0 : thread);
  if (id >= rings_.size()) rings_.resize(id + 1);
  if (!rings_[id]) rings_[id] = std::make_unique<EventRing>(ring_capacity_);
  return *rings_[id];
}

std::uint64_t Telemetry::total_recorded() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) {
    if (r) n += r->recorded();
  }
  return n;
}

std::uint64_t Telemetry::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) {
    if (r) n += r->dropped();
  }
  return n;
}

std::vector<TelemetryEvent> Telemetry::merged() const {
  std::vector<TelemetryEvent> all;
  all.reserve(static_cast<std::size_t>(total_recorded() - total_dropped()));
  for (const auto& r : rings_) {
    if (!r) continue;
    const auto events = r->snapshot();
    all.insert(all.end(), events.begin(), events.end());
  }
  // Stable sort keeps each thread's events in emission order on timestamp
  // ties; ties across threads break by thread id for determinism.
  std::stable_sort(all.begin(), all.end(),
                   [](const TelemetryEvent& a, const TelemetryEvent& b) {
                     if (a.timestamp != b.timestamp) {
                       return a.timestamp < b.timestamp;
                     }
                     return a.thread < b.thread;
                   });
  return all;
}

void Telemetry::dump_csv(std::FILE* out) const {
  std::fprintf(out,
               "timestamp,thread,kind,cause,line,other_thread\n");
  for (const auto& e : merged()) {
    std::fprintf(out, "%" PRIu64 ",%d,%s,%s,%" PRIxPTR ",%d\n", e.timestamp,
                 e.thread, to_string(e.kind), to_string(e.cause),
                 static_cast<std::uintptr_t>(e.line), e.other_thread);
  }
}

void Telemetry::dump_json(std::FILE* out) const {
  std::fprintf(out, "{\n  \"dropped\": %" PRIu64 ",\n  \"events\": [\n",
               total_dropped());
  const auto all = merged();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& e = all[i];
    std::fprintf(out,
                 "    {\"t\": %" PRIu64 ", \"thread\": %d, \"kind\": \"%s\","
                 " \"cause\": \"%s\", \"line\": \"%" PRIxPTR
                 "\", \"other\": %d}%s\n",
                 e.timestamp, e.thread, to_string(e.kind), to_string(e.cause),
                 static_cast<std::uintptr_t>(e.line), e.other_thread,
                 i + 1 < all.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

// ---------------------------------------------------------------------------
// Avalanche detection
// ---------------------------------------------------------------------------

std::vector<AvalancheEpisode> detect_avalanches(
    const std::vector<TelemetryEvent>& merged, const AvalancheConfig& cfg) {
  std::vector<AvalancheEpisode> out;
  const std::size_t n = merged.size();
  // Same-line acquisitions consumed by an already-scanned convoy: line ->
  // one-past-the-last merged index that episode's window covered. Keeps the
  // foreign-line re-scan below from re-seeding a convoy that was already
  // reported.
  std::unordered_map<support::LineId, std::size_t> consumed_until;
  // Victim dedup scratch, indexed by thread id (grown on demand — no
  // 64-thread cap; ROADMAP item 5 targets larger machines).
  std::vector<std::uint8_t> is_victim;
  std::size_t i = 0;
  while (i < n) {
    if (merged[i].kind != EventKind::kLockAcquire) {
      ++i;
      continue;
    }
    if (merged[i].line != 0) {
      const auto it = consumed_until.find(merged[i].line);
      if (it != consumed_until.end() && i < it->second) {
        ++i;  // part of an episode already scanned and reported
        continue;
      }
    }
    // A non-speculative acquisition seeds a candidate episode.
    AvalancheEpisode ep;
    ep.trigger_thread = merged[i].thread;
    ep.start = merged[i].timestamp;
    ep.end = merged[i].timestamp;
    ep.line = merged[i].line;
    is_victim.assign(is_victim.size(), 0);
    // First kLockAcquire on a *different* lock line skipped inside the
    // window: a concurrent episode's seed. The scan resumes there instead
    // of at j, so a second lock's simultaneous avalanche is not swallowed.
    std::size_t foreign_seed = n;
    std::size_t j = i + 1;
    for (; j < n; ++j) {
      const TelemetryEvent& e = merged[j];
      if (e.timestamp > ep.end + cfg.window_cycles) break;
      switch (e.kind) {
        case EventKind::kTxAbort:
          // Any abort inside the window is part of the cascade. Aborts on a
          // known different lock line belong to another lock's episode.
          if (ep.line != 0 && e.line != 0 && e.line != ep.line) continue;
          ++ep.aborts;
          if (e.thread != ep.trigger_thread && e.thread >= 0) {
            const auto id = static_cast<std::size_t>(e.thread);
            if (id >= is_victim.size()) is_victim.resize(id + 1, 0);
            is_victim[id] = 1;
          }
          ep.end = e.timestamp;
          break;
        case EventKind::kLockAcquire:
        case EventKind::kLockRelease:
          // Chained non-speculative activity on the same lock extends the
          // serialized convoy.
          if (ep.line != 0 && e.line != 0 && e.line != ep.line) {
            if (e.kind == EventKind::kLockAcquire && foreign_seed == n) {
              foreign_seed = j;
            }
            continue;
          }
          if (e.kind == EventKind::kLockRelease) ++ep.serialized_ops;
          ep.end = e.timestamp;
          break;
        default:
          // Speculative traffic (begins/commits, aux events) neither extends
          // nor terminates the episode.
          break;
      }
    }
    for (std::size_t t = 0; t < is_victim.size(); ++t) {
      if (is_victim[t] != 0) ep.victims.push_back(static_cast<int>(t));
    }
    if (ep.victim_count() >= cfg.min_victims) out.push_back(ep);
    if (ep.line != 0) consumed_until[ep.line] = j;
    i = foreign_seed < j ? foreign_seed : j;
  }
  return out;
}

std::vector<std::uint64_t> rejoin_latencies(
    const std::vector<TelemetryEvent>& merged) {
  std::vector<std::uint64_t> out;
  // Per-thread timestamp of the open kAuxEnter, if any.
  std::vector<std::uint64_t> open;
  std::vector<bool> is_open;
  for (const auto& e : merged) {
    if (e.thread < 0) continue;
    const auto id = static_cast<std::size_t>(e.thread);
    if (id >= open.size()) {
      open.resize(id + 1, 0);
      is_open.resize(id + 1, false);
    }
    if (e.kind == EventKind::kAuxEnter) {
      open[id] = e.timestamp;
      is_open[id] = true;
    } else if (e.kind == EventKind::kAuxExit && is_open[id]) {
      out.push_back(e.timestamp - open[id]);
      is_open[id] = false;
    }
  }
  return out;
}

}  // namespace elision::tsx
