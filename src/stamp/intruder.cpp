// STAMP intruder: network intrusion detection via packet-flow reassembly.
//
// Fragments of many flows arrive interleaved on a shared queue. Each worker
// transactionally pops a fragment (a tiny, highly contended transaction on
// the queue cursor) and transactionally folds it into the per-flow
// reassembly state (a moderate transaction on the flow map); completed flows
// are scanned for "attack" signatures outside any transaction. The queue
// makes intruder the most contended STAMP application here, which is why the
// paper sees the largest plain-HLE gain on it (up to 2x with TTAS).
#include <cstdint>
#include <vector>

#include "ds/hashtable.hpp"
#include "stamp/detail.hpp"
#include "support/rng.hpp"
#include "tsx/shared.hpp"

namespace elision::stamp {

namespace {

struct Fragment {
  std::uint32_t flow;
  std::uint16_t index;
  std::uint16_t count;  // fragments in this flow
  std::uint64_t payload;
};

}  // namespace

StampResult run_intruder(const StampConfig& cfg) {
  const auto n_flows = static_cast<std::size_t>(1024 * cfg.scale);

  // Build fragments and shuffle them (host side).
  support::Xoshiro256 rng(cfg.seed);
  std::vector<Fragment> fragments;
  std::vector<std::uint64_t> flow_sum(n_flows, 0);
  for (std::size_t f = 0; f < n_flows; ++f) {
    const auto count = static_cast<std::uint16_t>(2 + rng.next_below(5));
    for (std::uint16_t i = 0; i < count; ++i) {
      const std::uint64_t payload = rng.next();
      fragments.push_back({static_cast<std::uint32_t>(f), i, count, payload});
      flow_sum[f] += payload;
    }
  }
  for (std::size_t i = fragments.size(); i > 1; --i) {
    std::swap(fragments[i - 1], fragments[rng.next_below(i)]);
  }

  // Shared state: the arrival queue cursor and the reassembly map
  // flow -> (fragments seen, payload accumulator).
  support::CacheAligned<tsx::Shared<std::uint64_t>> cursor;
  ds::HashTable seen_count(2048, n_flows + 64);
  ds::HashTable payload_acc(2048, n_flows + 64);

  return detail::dispatch_lock(cfg, [&](auto& lock) {
    using Lock = std::remove_reference_t<decltype(lock)>;
    sim::Scheduler sched(cfg.machine);
    tsx::Engine eng(sched, cfg.tsx);
    locks::CriticalSection<Lock> cs(locks::ElisionPolicy::from_scheme(cfg.scheme), lock);
    std::vector<OpTally> tallies(cfg.threads);
    std::vector<std::uint64_t> attacks(cfg.threads, 0);

    for (int t = 0; t < cfg.threads; ++t) {
      sched.spawn([&, t](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        for (;;) {
          // Pop a fragment: a tiny transaction on the shared cursor.
          std::size_t idx = fragments.size();
          tallies[t].add(cs.run(ctx, [&] {
            const std::uint64_t c = cursor.value.load(ctx);
            if (c < fragments.size()) {
              cursor.value.store(ctx, c + 1);
              idx = static_cast<std::size_t>(c);
            } else {
              idx = fragments.size();
            }
          }));
          if (idx >= fragments.size()) break;
          const Fragment frag = fragments[idx];
          // Reassemble: fold the fragment into the flow state.
          bool complete = false;
          std::uint64_t total = 0;
          tallies[t].add(cs.run(ctx, [&] {
            const std::uint64_t seen =
                seen_count.upsert_add(ctx, frag.flow + 1, 1);
            total = payload_acc.upsert_add(ctx, frag.flow + 1, frag.payload);
            complete = (seen == frag.count);
          }));
          if (complete) {
            // Detection phase: pure compute outside any critical section.
            ctx.engine().compute(ctx, 64 * frag.count);
            if (total % 16 == 0) ++attacks[t];
          }
        }
      });
    }
    sched.run();

    std::uint64_t total_attacks = 0;
    for (const auto a : attacks) total_attacks += a;
    // Oracle: recompute expected attacks from the host-side flow sums.
    std::uint64_t expected = 0;
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (flow_sum[f] % 16 == 0) ++expected;
    }
    auto r = detail::collect("intruder", total_attacks * 100000 + expected,
                             sched.elapsed_cycles(), tallies);
    r.invariants_ok = (total_attacks == expected);
    return r;
  });
}

}  // namespace elision::stamp
