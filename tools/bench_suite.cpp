// bench_suite — run the curated benchmark suite (src/harness/suite.hpp),
// emit canonical machine-readable results, and optionally gate against a
// committed baseline.
//
//   bench_suite [--tier smoke|full] [--jobs N] [--jobs-mode fork|threads]
//               [--host-threads N] [--out FILE]
//               [--baseline FILE] [--gate] [--list] [--quiet]
//               [--plant-regression FACTOR] [--plant-slowdown FACTOR]
//               [--tol-throughput REL] [--tol-attempts REL]
//               [--tol-fraction ABS] [--tol-simops REL] [--no-invariants]
//
// --jobs N fans the suite's points out N-wide. With --jobs-mode fork (the
// default) each point runs in an isolated worker subprocess (a
// self-invocation with --point ID) and the per-point fragments are merged
// into one canonical document; with --jobs-mode threads the points run on
// an in-process host-thread pool (support/parallel.hpp) with no
// subprocesses, temp files, or JSON round-trips. --host-threads N
// additionally fans each point's multi-seed runs out N-wide (in either
// mode). Every simulated metric is deterministic per seed, so all of these
// produce output identical to a sequential run except for the host
// wall-time fields (wall_ms, sim_ops_per_sec, run.host).
//
// Exit status: 0 on success; 1 if the gate found a regression or a
// paper-qualitative invariant is violated; 2 on usage/IO/subprocess errors.
//
// --plant-regression multiplies every reported throughput before gating and
// --plant-slowdown every sim_ops_per_sec; scripts/check.sh uses them as
// self-checks that the gate actually fires.
// See docs/benchmarks.md for the schema and the baseline-update workflow.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define ELISION_SUITE_HAS_SUBPROCESS 1
#include <sys/wait.h>
#include <unistd.h>
#else
#define ELISION_SUITE_HAS_SUBPROCESS 0
#endif

#include <chrono>
#include <thread>

#include "harness/report.hpp"
#include "harness/suite.hpp"
#include "support/parallel.hpp"
#include "support/parse.hpp"

namespace {

using namespace elision;

struct Options {
  harness::SuiteTier tier = harness::SuiteTier::kSmoke;
  std::string out_file = "BENCH_results.json";
  std::string baseline_file;
  std::string point_id;  // non-empty: child mode, run one point
  int jobs = 1;
  std::string jobs_mode = "fork";  // "fork" | "threads"
  int host_threads = 1;            // per-point multi-seed fan-out width
  bool gate = false;
  bool list = false;
  bool quiet = false;
  bool invariants = true;
  double plant_factor = 1.0;
  double plant_simops = 1.0;
  harness::GateTolerance tol;
};

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr, "error: %s\n\n", why);
  std::fprintf(
      stderr,
      "usage:\n"
      "  bench_suite [--tier smoke|full] [--jobs N]\n"
      "              [--jobs-mode fork|threads] [--host-threads N]\n"
      "              [--out FILE]\n"
      "              [--baseline FILE] [--gate] [--list] [--quiet]\n"
      "              [--plant-regression FACTOR] [--plant-slowdown FACTOR]\n"
      "              [--tol-throughput REL] [--tol-attempts REL]\n"
      "              [--tol-fraction ABS] [--tol-simops REL]\n"
      "              [--no-invariants] [--point ID]\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--tier") {
      const auto t = harness::suite_tier_from_name(next());
      if (!t) usage("--tier must be smoke or full");
      o.tier = *t;
    } else if (a == "--out") {
      o.out_file = next();
    } else if (a == "--baseline") {
      o.baseline_file = next();
    } else if (a == "--point") {
      o.point_id = next();
    } else if (a == "--jobs") {
      const auto v = support::parse_int(next());
      if (!v || *v < 1) usage("--jobs must be a decimal integer >= 1");
      o.jobs = *v;
    } else if (a == "--jobs-mode") {
      o.jobs_mode = next();
      if (o.jobs_mode != "fork" && o.jobs_mode != "threads") {
        usage("--jobs-mode must be fork or threads");
      }
    } else if (a == "--host-threads") {
      const auto v = support::parse_int(next());
      if (!v) usage("--host-threads must be a decimal integer >= 0");
      o.host_threads = *v != 0 ? *v : support::host_hardware_threads();
    } else if (a == "--gate") {
      o.gate = true;
    } else if (a == "--list") {
      o.list = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--no-invariants") {
      o.invariants = false;
    } else if (a == "--plant-regression") {
      const auto v = support::parse_double(next());
      if (!v || *v <= 0) usage("--plant-regression must be a number > 0");
      o.plant_factor = *v;
    } else if (a == "--plant-slowdown") {
      const auto v = support::parse_double(next());
      if (!v || *v <= 0) usage("--plant-slowdown must be a number > 0");
      o.plant_simops = *v;
    } else if (a == "--tol-throughput") {
      const auto v = support::parse_double(next());
      if (!v || *v < 0) usage("--tol-throughput must be a number >= 0");
      o.tol.throughput_rel = *v;
    } else if (a == "--tol-attempts") {
      const auto v = support::parse_double(next());
      if (!v || *v < 0) usage("--tol-attempts must be a number >= 0");
      o.tol.attempts_rel = *v;
    } else if (a == "--tol-fraction") {
      const auto v = support::parse_double(next());
      if (!v || *v < 0) usage("--tol-fraction must be a number >= 0");
      o.tol.fraction_abs = *v;
    } else if (a == "--tol-simops") {
      const auto v = support::parse_double(next());
      if (!v || *v < 0) usage("--tol-simops must be a number >= 0");
      o.tol.simops_rel = *v;
    } else {
      usage(("unknown argument " + a).c_str());
    }
  }
  if (o.gate && o.baseline_file.empty()) {
    usage("--gate requires --baseline FILE");
  }
  return o;
}

// Metadata shared by every results document this process emits.
void fill_run_metadata(harness::SuiteResult& r, const Options& o, int jobs) {
  r.tier = o.tier;
  r.duration_scale = harness::env_duration_scale();
  r.telemetry_compiled = tsx::kTelemetryCompiled;
  const sim::MachineConfig machine;
  r.n_cores = machine.n_cores;
  r.smt_per_core = machine.smt_per_core;
  r.ghz = machine.ghz;
  r.host_cores = std::thread::hardware_concurrency();
  r.jobs = jobs;
  r.jobs_mode = o.jobs_mode;
  r.host_threads = o.host_threads;
}

// --point ID: run exactly one registered point and write a single-point
// results document. This is the worker half of --jobs; it applies no plant
// factors and checks no invariants (both are whole-suite concerns the
// parent handles on the merged result).
int run_child(const Options& o) {
  for (const auto& sp : harness::suite_points()) {
    if (sp.id != o.point_id) continue;
    harness::SuiteResult r;
    fill_run_metadata(r, o, /*jobs=*/1);
    const auto t0 = std::chrono::steady_clock::now();
    r.points.push_back(harness::run_suite_point(sp, o.host_threads));
    r.total_wall_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::FILE* f = std::fopen(o.out_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_suite: cannot open %s\n",
                   o.out_file.c_str());
      return 2;
    }
    harness::write_results_json(r, f);
    std::fclose(f);
    return 0;
  }
  std::fprintf(stderr, "bench_suite: unknown point id %s\n",
               o.point_id.c_str());
  return 2;
}

#if ELISION_SUITE_HAS_SUBPROCESS

std::string self_exe_path(const char* argv0) {
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
#endif
  return argv0;
}

// Fans the tier's points out to up to `jobs` concurrent self-invocations
// (one point per child) and merges the fragments in registry order, so the
// merged document is independent of completion order. Returns 0 on success.
int run_parallel(const Options& o, const char* argv0,
                 harness::SuiteResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<harness::SuitePoint> pts =
      harness::suite_points_for(o.tier);
  const std::string exe = self_exe_path(argv0);

  struct Child {
    pid_t pid = -1;
    std::size_t point = 0;
    bool failed = false;
  };
  std::vector<std::string> frags(pts.size());
  std::vector<Child> running;
  std::size_t next = 0;
  bool any_failed = false;

  auto reap_one = [&]() {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    for (auto it = running.begin(); it != running.end(); ++it) {
      if (it->pid != pid) continue;
      const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (!ok) {
        std::fprintf(stderr, "bench_suite: worker for %s failed (status %d)\n",
                     pts[it->point].id.c_str(),
                     WIFEXITED(status) ? WEXITSTATUS(status) : -1);
        any_failed = true;
      }
      running.erase(it);
      return;
    }
  };

  const int jobs = std::min<int>(o.jobs, static_cast<int>(pts.size()));
  while (next < pts.size() || !running.empty()) {
    while (next < pts.size() && static_cast<int>(running.size()) < jobs) {
      frags[next] = o.out_file + ".point" + std::to_string(next) + ".tmp";
      const pid_t pid = ::fork();
      if (pid < 0) {
        std::fprintf(stderr, "bench_suite: fork failed\n");
        return 2;
      }
      if (pid == 0) {
        const std::string ht = std::to_string(o.host_threads);
        ::execl(exe.c_str(), exe.c_str(), "--point", pts[next].id.c_str(),
                "--tier", harness::suite_tier_name(o.tier), "--out",
                frags[next].c_str(), "--host-threads", ht.c_str(), "--quiet",
                static_cast<char*>(nullptr));
        std::fprintf(stderr, "bench_suite: exec %s failed\n", exe.c_str());
        std::_Exit(2);
      }
      running.push_back({pid, next, false});
      ++next;
    }
    if (!running.empty()) reap_one();
  }
  if (any_failed) return 2;

  fill_run_metadata(out, o, o.jobs);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto frag = harness::load_results_file(frags[i]);
    if (!frag || frag->points.size() != 1 ||
        frag->points[0].def.id != pts[i].id) {
      std::fprintf(stderr, "bench_suite: bad fragment %s\n",
                   frags[i].c_str());
      return 2;
    }
    // Keep the registry's point definition (the fragment's survives a JSON
    // round-trip, but the registry is the source of truth) and the child's
    // measured metrics.
    out.points.push_back({pts[i], frag->points[0].metrics});
    std::remove(frags[i].c_str());
  }
  out.total_wall_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return 0;
}

#endif  // ELISION_SUITE_HAS_SUBPROCESS

// --jobs-mode threads: run the tier's points on an in-process host-thread
// pool — no subprocesses, temp-file fragments, or JSON round-trips. Each
// point is an independent simulation writing only its own record slot;
// records are merged in registry order, so the document matches a
// sequential run except for host wall-time fields.
int run_in_process(const Options& o, harness::SuiteResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<harness::SuitePoint> pts =
      harness::suite_points_for(o.tier);
  std::vector<harness::PointRecord> recs(pts.size());
  support::parallel_for_each(
      pts.size(),
      [&](std::size_t i) {
        recs[i] = harness::run_suite_point(pts[i], o.host_threads);
      },
      o.jobs);
  fill_run_metadata(out, o, o.jobs);
  for (auto& rec : recs) out.points.push_back(std::move(rec));
  out.total_wall_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);

  if (o.list) {
    harness::Table table({"id", "tier", "figure", "kind", "lock", "scheme",
                          "size", "upd%", "thr", "seeds"});
    for (const auto& sp : harness::suite_points_for(o.tier)) {
      const bool rb = sp.kind == harness::PointKind::kRb;
      const bool ph = sp.kind == harness::PointKind::kPhase;
      const bool kv = sp.kind == harness::PointKind::kKv;
      // Phase points show their calm/storm mix as "calm-storm"; kv points
      // show the total update share (put + multi_put + transfer).
      const std::string upd =
          rb   ? std::to_string(sp.point.update_pct)
          : ph ? std::to_string(sp.phase.calm_update_pct) + "-" +
                     std::to_string(sp.phase.storm_update_pct)
          : kv ? std::to_string(sp.kv.put_pct + sp.kv.multi_put_pct +
                                sp.kv.transfer_pct)
               : "-";
      table.add_row(
          {sp.id, harness::suite_tier_name(sp.tier), sp.figure,
           harness::point_kind_name(sp.kind),
           rb   ? harness::lock_sel_name(sp.point.lock)
           : ph ? harness::lock_sel_name(sp.phase.lock)
           : kv ? "ttas"
                : "-",
           rb   ? sp.point.scheme.name()
           : ph ? sp.phase.scheme.name()
           : kv ? sp.kv.policy.name()
                : "-",
           harness::fmt_int(ph   ? sp.phase.size
                            : kv ? sp.kv.keys
                                 : sp.point.size),
           upd,
           std::to_string(ph   ? sp.phase.threads
                          : kv ? sp.kv.threads
                               : sp.point.threads),
           std::to_string(ph   ? sp.phase.seeds
                          : kv ? sp.kv.seeds
                               : sp.point.seeds)});
    }
    table.print();
    return 0;
  }

  if (!o.point_id.empty()) return run_child(o);

#if !ELISION_SUITE_HAS_SUBPROCESS
  if (o.jobs > 1 && o.jobs_mode == "fork") {
    std::fprintf(stderr,
                 "bench_suite: --jobs-mode fork needs fork/exec; "
                 "running sequentially\n");
    o.jobs = 1;
  }
#endif

  harness::Table progress({"id", "Mops/s", "att/op", "nonspec", "episodes"});
  auto progress_row = [&](const harness::SuitePoint& sp,
                          const harness::PointMetrics& m) {
    std::fprintf(stderr, "ran %s\n", sp.id.c_str());
    progress.add_row(
        {sp.id, harness::fmt(m.throughput_ops_per_sec / 1e6, 2),
         harness::fmt(m.attempts_per_op, 2),
         harness::fmt(m.nonspec_fraction, 3),
         harness::fmt_int(m.avalanche_episodes)});
  };

  harness::SuiteResult result;
  if (o.jobs_mode == "threads") {
    const int rc = run_in_process(o, result);
    if (rc != 0) return rc;
    // Plant factors are applied on the merged result so sequential and
    // parallel runs transform identical inputs identically.
    for (auto& p : result.points) {
      p.metrics.throughput_ops_per_sec *= o.plant_factor;
      p.metrics.sim_ops_per_sec *= o.plant_simops;
      if (!o.quiet) progress_row(p.def, p.metrics);
    }
  } else if (o.jobs > 1) {
#if ELISION_SUITE_HAS_SUBPROCESS
    const int rc = run_parallel(o, argv[0], result);
    if (rc != 0) return rc;
    for (auto& p : result.points) {
      p.metrics.throughput_ops_per_sec *= o.plant_factor;
      p.metrics.sim_ops_per_sec *= o.plant_simops;
      if (!o.quiet) progress_row(p.def, p.metrics);
    }
#endif
  } else {
    harness::SuiteRunOptions run_opts;
    run_opts.plant_throughput_factor = o.plant_factor;
    run_opts.plant_simops_factor = o.plant_simops;
    run_opts.host_threads = o.host_threads;
    if (!o.quiet) run_opts.on_point = progress_row;
    result = harness::run_suite(o.tier, run_opts);
  }
  if (!o.quiet) progress.print();
  if (o.plant_factor != 1.0) {
    std::fprintf(stderr,
                 "bench_suite: throughputs scaled by %.3f "
                 "(--plant-regression self-check mode)\n",
                 o.plant_factor);
  }
  if (o.plant_simops != 1.0) {
    std::fprintf(stderr,
                 "bench_suite: sim_ops_per_sec scaled by %.3f "
                 "(--plant-slowdown self-check mode)\n",
                 o.plant_simops);
  }

  std::FILE* f = std::fopen(o.out_file.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_suite: cannot open %s\n", o.out_file.c_str());
    return 2;
  }
  harness::write_results_json(result, f);
  std::fclose(f);
  if (!o.quiet) {
    std::printf("results: %zu points -> %s (jobs %d, %.0f ms)\n",
                result.points.size(), o.out_file.c_str(), result.jobs,
                result.total_wall_ms);
  }

  int rc = 0;

  if (o.invariants) {
    for (const auto& inv : harness::check_invariants(result)) {
      if (inv.skipped) {
        if (!o.quiet) {
          std::printf("invariant %-34s SKIP (%s)\n", inv.name.c_str(),
                      inv.detail.c_str());
        }
        continue;
      }
      if (inv.ok) {
        if (!o.quiet) {
          std::printf("invariant %-34s ok   (%s)\n", inv.name.c_str(),
                      inv.detail.c_str());
        }
      } else {
        std::fprintf(stderr, "invariant %-34s FAIL (%s)\n", inv.name.c_str(),
                     inv.detail.c_str());
        rc = 1;
      }
    }
  }

  if (o.gate) {
    const auto baseline = harness::load_results_file(o.baseline_file);
    if (!baseline) {
      std::fprintf(stderr, "bench_suite: cannot parse baseline %s\n",
                   o.baseline_file.c_str());
      return 2;
    }
    const auto report =
        harness::compare_to_baseline(result, *baseline, o.tol);
    harness::print_gate_report(report, report.ok() ? stdout : stderr);
    if (!report.ok()) rc = 1;
  }

  return rc;
}
