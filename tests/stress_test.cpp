// Tier-1 schedule-exploration tests: a small seed sweep over every
// scheme x lock x workload cell must hold all invariants, the perturbation
// layer must be deterministic and actually fire, and the harness must be
// able to find (and shrink) the planted RacyLock bug — the self-test that
// proves the checkers are not vacuous.
#include <gtest/gtest.h>

#include "stress/invariants.hpp"
#include "stress/stress.hpp"

namespace elision {
namespace {

using locks::ElisionPolicy;
using namespace stress;

StressOptions quick_options() {
  StressOptions o;
  o.duration_ms = 0.02;
  return o;
}

TEST(Stress, SweepAllSchemesAllLocksHoldsInvariants) {
  const SweepStats s = sweep(quick_options(), all_policies(), all_locks(),
                             all_workloads(), /*first_seed=*/1,
                             /*n_seeds=*/2);
  EXPECT_EQ(s.runs, 8 * 8 * 4 * 2);  // 8 policies incl. the adaptive one
  EXPECT_GT(s.total_ops, 0u);
  for (const FailureReport& f : s.failures) {
    ADD_FAILURE() << case_name(f.c) << ": " << f.outcome.violations.front();
  }
}

TEST(Stress, PerturbationFiresAndIsDeterministic) {
  const StressOptions o = quick_options();
  StressCase c;
  c.policy = ElisionPolicy::hle_scm();
  c.lock = LockKind::kTtas;
  c.workload = Workload::kHashTable;
  c.perturb_seed = 7;
  const RunOutcome a = run_case(o, c);
  const RunOutcome b = run_case(o, c);
  EXPECT_GT(a.perturb_points_used, 0u);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.perturb_points_used, b.perturb_points_used);
}

TEST(Stress, PerturbationSeedChangesTheSchedule) {
  const StressOptions o = quick_options();
  StressCase c;
  c.policy = ElisionPolicy::hle();
  c.lock = LockKind::kTtas;
  c.workload = Workload::kCounter;
  c.perturb_seed = 1;
  const RunOutcome a = run_case(o, c);
  c.perturb_seed = 2;
  const RunOutcome b = run_case(o, c);
  // Different injection points => different interleaving => (with these
  // run lengths) different completion counts.
  EXPECT_NE(a.ops, b.ops);
}

TEST(Stress, BudgetCapsInjections) {
  StressOptions o = quick_options();
  StressCase c;
  c.policy = ElisionPolicy::hle();
  c.lock = LockKind::kMcs;
  c.workload = Workload::kCounter;
  c.perturb_seed = 3;
  c.perturb_points = 5;
  const RunOutcome out = run_case(o, c);
  EXPECT_LE(out.perturb_points_used, 5u);
}

// The whole point of the subsystem: a planted check-then-act bug that the
// unperturbed schedule misses must be caught by the sweep and shrink to a
// small budget.
TEST(Stress, SelfTestFindsPlantedRacyLockBug) {
  StressOptions o = quick_options();
  o.duration_ms = 0.05;
  const SweepStats s =
      sweep(o, {ElisionPolicy::standard()}, {LockKind::kRacy},
            {Workload::kCounter}, /*first_seed=*/1, /*n_seeds=*/10);
  ASSERT_FALSE(s.failures.empty())
      << "perturbed sweep missed the planted RacyLock bug";
  const FailureReport& f = s.failures.front();
  EXPECT_FALSE(f.outcome.violations.empty());
  // Minimization must end at a budget no larger than what the original
  // (unlimited-budget) failing run injected, and still reproduce.
  EXPECT_GT(f.minimized_points, 0u);
  StressCase repro = f.c;
  repro.perturb_points = f.minimized_points;
  EXPECT_FALSE(run_case(o, repro).ok());
}

// The shared-mode sibling of the RacyLock self-test: the reader-writer
// invariants must catch GreedySharedLock's planted writer starvation
// (readers barge past announced writer intent), and must stay quiet on the
// correct SharedTtasLock under the identical configuration.
TEST(Stress, SelfTestFindsPlantedWriterStarvation) {
  StressOptions o = quick_options();
  // One dedicated writer thread against a pure reader crowd (mixed-duty
  // threads would all eventually block as writers, draining the crowd and
  // closing the starvation window).
  o.duration_ms = 0.2;
  o.btree_writer_threads = 1;
  o.btree_writer_gap_cycles = 4000;  // reader windows on a correct lock
  o.btree_read_dwell_cycles = 1500;
  const SweepStats broken =
      sweep(o, {ElisionPolicy::standard()}, {LockKind::kGreedyShared},
            {Workload::kBtree}, /*first_seed=*/1, /*n_seeds=*/5);
  bool found = false;
  for (const FailureReport& f : broken.failures) {
    for (const std::string& v : f.outcome.violations) {
      if (v.find("writer lockout") != std::string::npos) found = true;
    }
  }
  EXPECT_TRUE(found)
      << "perturbed sweep missed the planted writer starvation";
  const SweepStats control =
      sweep(o, {ElisionPolicy::standard()}, {LockKind::kSharedTtas},
            {Workload::kBtree}, /*first_seed=*/1, /*n_seeds=*/5);
  for (const FailureReport& f : control.failures) {
    ADD_FAILURE() << "correct lock flagged: " << case_name(f.c) << ": "
                  << f.outcome.violations.front();
  }
}

TEST(InvariantsTest, MutualExclusionCounterBalances) {
  MutualExclusionChecker checker;
  EXPECT_EQ(checker.violations(), 0u);
  checker.reset();
  EXPECT_EQ(checker.violations(), 0u);
}

TEST(InvariantsTest, StarvationWatchdogFlagsSilentThread) {
  StarvationWatchdog dog(/*n_threads=*/2, /*gap_cycles=*/1000,
                         /*min_other_ops=*/3);
  // Thread 0 completes steadily; thread 1 never completes.
  for (int i = 1; i <= 5; ++i) {
    dog.note_completion(0, static_cast<std::uint64_t>(i) * 400);
  }
  dog.finish(2000);
  ASSERT_EQ(dog.violations().size(), 1u);
  EXPECT_NE(dog.violations()[0].find("thread 1"), std::string::npos);
}

TEST(InvariantsTest, StarvationWatchdogIgnoresIdleSystem) {
  StarvationWatchdog dog(/*n_threads=*/2, /*gap_cycles=*/1000,
                         /*min_other_ops=*/3);
  // Huge gap but nothing else completed either: the system was idle, no
  // thread was singled out.
  dog.note_completion(0, 50);
  dog.finish(100000);
  EXPECT_TRUE(dog.violations().empty());
}

TEST(InvariantsTest, RoleLockoutFlagsSilentRole) {
  RoleLockoutChecker roles(/*gap_cycles=*/1000, /*min_other_ops=*/3);
  // Readers complete steadily; no writer ever completes.
  for (int i = 1; i <= 6; ++i) {
    roles.note_reader(static_cast<std::uint64_t>(i) * 300);
  }
  roles.finish(2000);
  ASSERT_EQ(roles.violations().size(), 1u);
  EXPECT_NE(roles.violations()[0].find("writer lockout"), std::string::npos);
}

TEST(InvariantsTest, RoleLockoutIgnoresIdleSystem) {
  RoleLockoutChecker roles(/*gap_cycles=*/1000, /*min_other_ops=*/3);
  roles.note_reader(50);
  roles.note_writer(60);
  roles.finish(100000);  // both roles idle: nothing singled out
  EXPECT_TRUE(roles.violations().empty());
}

}  // namespace
}  // namespace elision
