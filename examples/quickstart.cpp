// Quickstart: protect a shared map with one global lock, then turn on lock
// elision and conflict management by changing ONE line — the scheme — and
// watch the concurrency come back.
//
//   $ ./examples/quickstart
//
// This is the paper's premise end-to-end: coarse-grained locking with the
// performance of fine-grained locking.
#include <cstdio>

#include "ds/hashtable.hpp"
#include "harness/runner.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"

using namespace elision;

namespace {

double run_with_scheme(locks::Scheme scheme) {
  // A shared hash table protected by ONE global TTAS lock.
  ds::HashTable table(256, 4096);
  locks::TtasLock lock;
  locks::CriticalSection<locks::TtasLock> cs(locks::ElisionPolicy::from_scheme(scheme), lock);

  harness::BenchConfig cfg;
  cfg.threads = 8;             // 8 hyperthreads, like the paper's i7-4770
  cfg.duration_sec = 0.002;    // 2 simulated milliseconds

  const auto stats = harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(512);
    // The critical section: a coarse-grained locked map update.
    return cs.run(ctx, [&] { table.upsert_add(ctx, key, 1); });
  });
  std::printf("  %-12s %8.2f Mops/s   attempts/op %.2f   non-speculative %4.1f%%\n",
              locks::scheme_name(scheme), stats.throughput() / 1e6,
              stats.attempts_per_op(), 100 * stats.nonspec_fraction());
  return stats.throughput();
}

}  // namespace

int main() {
  std::printf("One global lock, 8 threads, same workload:\n\n");
  const double standard = run_with_scheme(locks::Scheme::kStandard);
  const double hle = run_with_scheme(locks::Scheme::kHle);
  const double scm = run_with_scheme(locks::Scheme::kHleScm);
  std::printf(
      "\nHardware lock elision alone:        %.2fx over the plain lock\n"
      "With software conflict management:  %.2fx over the plain lock\n",
      hle / standard, scm / standard);
  return 0;
}
