// STAMP ssca2 (kernel 1): parallel construction of a graph's adjacency
// lists from an edge list.
//
// Transactional character: very short transactions (prepend one node to a
// vertex's list) with low contention (random vertices rarely collide), which
// is why ssca2 benefits little from any scheme in the paper's Fig 5.4.
#include <cstdint>
#include <vector>

#include "stamp/detail.hpp"
#include "support/rng.hpp"
#include "tsx/shared.hpp"

namespace elision::stamp {

namespace {

struct alignas(support::kCacheLineBytes) AdjNode {
  tsx::Shared<std::uint64_t> to;
  tsx::Shared<AdjNode*> next;
};

}  // namespace

StampResult run_ssca2(const StampConfig& cfg) {
  const auto n_vertices = static_cast<std::size_t>(1024 * cfg.scale);
  const std::size_t n_edges = n_vertices * 8;

  // Host-generated edge list with a skewed (R-MAT-like) source distribution.
  support::Xoshiro256 rng(cfg.seed);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges(n_edges);
  for (auto& e : edges) {
    std::uint64_t u = rng.next_below(n_vertices);
    if (rng.next_below(4) == 0) u = rng.next_below(n_vertices / 16 + 1);
    e = {u, rng.next_below(n_vertices)};
  }

  tsx::SharedArray<AdjNode*> heads(n_vertices);
  // Per-thread node arenas: no allocator sharing (cf. jemalloc in the paper).
  std::vector<AdjNode> arena(n_edges);

  return detail::dispatch_lock(cfg, [&](auto& lock) {
    using Lock = std::remove_reference_t<decltype(lock)>;
    sim::Scheduler sched(cfg.machine);
    tsx::Engine eng(sched, cfg.tsx);
    locks::CriticalSection<Lock> cs(locks::ElisionPolicy::from_scheme(cfg.scheme), lock);
    std::vector<OpTally> tallies(cfg.threads);

    for (int t = 0; t < cfg.threads; ++t) {
      sched.spawn([&, t](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        const auto [lo, hi] = detail::partition(n_edges, t, cfg.threads);
        for (std::size_t i = lo; i < hi; ++i) {
          AdjNode* node = &arena[i];
          const auto [u, v] = edges[i];
          tallies[t].add(cs.run(ctx, [&] {
            node->to.store(ctx, v);
            node->next.store(ctx, heads[u].load(ctx));
            heads[u].store(ctx, node);
          }));
        }
      });
    }
    sched.run();

    std::uint64_t checksum = 0;
    for (std::size_t v = 0; v < n_vertices; ++v) {
      std::uint64_t degree = 0, sum = 0;
      for (const AdjNode* n = heads[v].unsafe_get(); n != nullptr;
           n = n->next.unsafe_get()) {
        ++degree;
        sum += n->to.unsafe_get();
      }
      checksum = checksum * 31 + degree * 7 + sum;
    }
    return detail::collect("ssca2", checksum, sched.elapsed_cycles(),
                           tallies);
  });
}

}  // namespace elision::stamp
