file(REMOVE_RECURSE
  "libelision_sim.a"
)
