# Empty compiler generated dependencies file for tbl_fairlocks.
# This may be replaced when dependencies are built.
