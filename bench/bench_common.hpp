// Shared driver for the red-black-tree figure benches. The point machinery
// (RbPoint, run_rb_point, the tree-size sweeps and mixes) is library code in
// src/harness/rb_workload.hpp so the bench-suite driver and tests run the
// exact same definitions; this header re-exports it under elision::bench for
// the figure binaries, plus the headers their main()s have come to rely on.
#pragma once

#include <cstddef>
#include <memory>

#include "ds/hashtable.hpp"
#include "ds/rbtree.hpp"
#include "harness/rb_workload.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "locks/clh_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/ttas_lock.hpp"
#include "support/rng.hpp"

namespace elision::bench {

using harness::LockSel;
using harness::lock_sel_name;
using harness::RbPoint;
using harness::run_rb_point;
using harness::run_rb_point_once;
using harness::kTreeSizes;
using harness::kTreeSizesSmall;
using harness::Mix;
using harness::kMixes;

}  // namespace elision::bench
