// Ablation — conflict-management policy: Haswell's requestor-wins vs the
// TLR-style oldest-wins (Ch. 8 related work; Rajwar & Goodman serialize
// conflicting transactions in hardware, which is what SCM approximates in
// software).
//
// The experiment: SLR with NO conflict management, pure transactional
// retries on a contended tree. Under requestor-wins, conflicting retries
// keep killing each other (the livelock-proneness the paper cites as
// motivation for SCM); under oldest-wins the oldest transaction always
// survives, so hardware alone restores much of what SCM provides — and
// adding SCM on top of oldest-wins buys little.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace elision;
using namespace elision::bench;

harness::RunStats run_policy(tsx::ConflictPolicy policy, locks::Scheme scheme,
                             std::size_t size, int update_pct) {
  ds::RbTree tree(size * 4 + 256);
  support::Xoshiro256 fill(42);
  std::size_t filled = 0;
  while (filled < size) {
    if (tree.unsafe_insert(fill.next_below(size * 2))) ++filled;
  }
  tree.unsafe_distribute_free_lists(8);
  locks::TtasLock lock;
  locks::CriticalSection<locks::TtasLock> cs(locks::ElisionPolicy::from_scheme(scheme), lock);
  harness::BenchConfig cfg;
  cfg.duration_scale = harness::env_duration_scale();
  cfg.tsx.conflict_policy = policy;
  const int half = update_pct / 2;
  return harness::run_workload(cfg, [&, half, update_pct](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(size * 2);
    const auto dice = static_cast<int>(rng.next_below(100));
    return cs.run(ctx, [&] {
      if (dice < half) {
        tree.insert(ctx, key);
      } else if (dice < update_pct) {
        tree.erase(ctx, key);
      } else {
        tree.contains(ctx, key);
      }
    });
  });
}

}  // namespace

int main() {
  using namespace elision;
  using namespace elision::bench;
  harness::banner("Ablation: conflict policy (requestor-wins vs oldest-wins)",
                  "opt-SLR and opt-SLR-SCM on a contended tree under both "
                  "hardware policies, 8 threads, 50i/50d.\n"
                  "Expect: oldest-wins narrows the gap SCM closes — TLR-"
                  "style hardware serialization is the hardware analogue "
                  "of the paper's software scheme.");
  harness::Table table({"tree-size", "policy", "scheme", "Mops/s", "att/op",
                        "nonspec"});
  for (const std::size_t size : {16ULL, 128ULL, 2048ULL}) {
    for (const auto policy : {tsx::ConflictPolicy::kRequestorWins,
                              tsx::ConflictPolicy::kOldestWins}) {
      for (const auto scheme :
           {locks::Scheme::kOptSlr, locks::Scheme::kOptSlrScm}) {
        const auto stats = run_policy(policy, scheme, size, 100);
        table.add_row(
            {harness::fmt_int(size),
             policy == tsx::ConflictPolicy::kRequestorWins ? "req-wins"
                                                           : "oldest-wins",
             locks::scheme_name(scheme),
             harness::fmt(stats.throughput() / 1e6, 2),
             harness::fmt(stats.attempts_per_op(), 2),
             harness::fmt(stats.nonspec_fraction(), 3)});
      }
    }
  }
  table.print();
  return 0;
}
