file(REMOVE_RECURSE
  "CMakeFiles/fig5_3_analysis.dir/fig5_3_analysis.cpp.o"
  "CMakeFiles/fig5_3_analysis.dir/fig5_3_analysis.cpp.o.d"
  "fig5_3_analysis"
  "fig5_3_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_3_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
