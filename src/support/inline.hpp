// Inlining control for per-access hot paths.
//
// The simulator charges every simulated memory access through
// SimThread::tick(); at tens of millions of calls per benchmark point, the
// difference between that path compiling into its engine callers and being
// an out-of-line call is visible in end-to-end throughput. These annotations
// pin the decision instead of leaving it to the inliner's size heuristics,
// which flip as the functions evolve.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define ELISION_ALWAYS_INLINE inline __attribute__((always_inline))
#define ELISION_NOINLINE __attribute__((noinline))
#else
#define ELISION_ALWAYS_INLINE inline
#define ELISION_NOINLINE
#endif
