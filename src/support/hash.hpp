// Shared integer hash for the open-addressing tables on the simulator's hot
// paths (tsx::LineTable, support::WordMap). Line ids and word addresses are
// clustered and strided (they are real addresses), so slots must come from a
// full-avalanche mix, not a modulo.
#pragma once

#include <cstdint>

namespace elision::support {

// The 64-bit finalizer of MurmurHash3 / SplitMix64: every input bit affects
// every output bit, so strided keys spread evenly over a power-of-two table.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace elision::support
