// Binary-heap tests: oracle comparison, rollback, and the "no parallelism
// to expose" property under elision.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "ds/binheap.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "support/rng.hpp"

namespace elision::ds {
namespace {

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

tsx::TsxConfig quiet_tsx() {
  tsx::TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

void run_single(const std::function<void(tsx::Ctx&)>& body) {
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) { body(eng.context(st)); });
  sched.run();
}

TEST(BinHeap, EmptyBehaviour) {
  BinHeap heap(8);
  run_single([&](tsx::Ctx& ctx) {
    std::uint64_t k = 0;
    EXPECT_FALSE(heap.pop_min(ctx, &k));
    EXPECT_FALSE(heap.peek_min(ctx, &k));
    EXPECT_TRUE(heap.push(ctx, 5));
    EXPECT_TRUE(heap.peek_min(ctx, &k));
    EXPECT_EQ(k, 5u);
    EXPECT_TRUE(heap.pop_min(ctx, &k));
    EXPECT_EQ(k, 5u);
    EXPECT_FALSE(heap.pop_min(ctx, &k));
  });
}

TEST(BinHeap, FullRejectsPush) {
  BinHeap heap(3);
  run_single([&](tsx::Ctx& ctx) {
    EXPECT_TRUE(heap.push(ctx, 3));
    EXPECT_TRUE(heap.push(ctx, 1));
    EXPECT_TRUE(heap.push(ctx, 2));
    EXPECT_FALSE(heap.push(ctx, 4));
    std::uint64_t k = 0;
    EXPECT_TRUE(heap.pop_min(ctx, &k));
    EXPECT_EQ(k, 1u);
  });
}

TEST(BinHeap, OracleAgainstStdPriorityQueue) {
  BinHeap heap(600);
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      oracle;
  support::Xoshiro256 rng(17);
  run_single([&](tsx::Ctx& ctx) {
    for (int i = 0; i < 4000; ++i) {
      if (oracle.size() < 500 && rng.next_below(2) == 0) {
        const std::uint64_t k = rng.next_below(10000);
        EXPECT_TRUE(heap.push(ctx, k));
        oracle.push(k);
      } else if (!oracle.empty()) {
        std::uint64_t k = 0;
        ASSERT_TRUE(heap.pop_min(ctx, &k));
        EXPECT_EQ(k, oracle.top());
        oracle.pop();
      }
      if (i % 500 == 0) {
        std::string why;
        ASSERT_TRUE(heap.unsafe_validate(&why)) << why;
      }
    }
  });
  EXPECT_EQ(heap.unsafe_size(), oracle.size());
}

TEST(BinHeap, AbortRollsBack) {
  BinHeap heap(64);
  for (std::uint64_t k = 10; k > 0; --k) heap.unsafe_push(k);
  run_single([&](tsx::Ctx& ctx) {
    const unsigned st = ctx.engine().run_transaction(ctx, [&] {
      std::uint64_t k = 0;
      heap.pop_min(ctx, &k);
      heap.push(ctx, 0);
      ctx.engine().xabort(ctx, 2);
    });
    EXPECT_NE(st, tsx::kCommitted);
  });
  EXPECT_EQ(heap.unsafe_size(), 10u);
  std::uint64_t k = 0;
  run_single([&](tsx::Ctx& ctx) {
    EXPECT_TRUE(heap.peek_min(ctx, &k));
  });
  EXPECT_EQ(k, 1u);
  EXPECT_TRUE(heap.unsafe_validate());
}

TEST(BinHeap, ConcurrentMixedOpsKeepHeapValid) {
  // Heavy conflicts by design; the schemes must stay correct.
  for (const auto scheme :
       {locks::Scheme::kStandard, locks::Scheme::kHle,
        locks::Scheme::kHleScm, locks::Scheme::kOptSlr}) {
    BinHeap heap(4096);
    for (std::uint64_t k = 0; k < 256; ++k) heap.unsafe_push(k * 13 % 997);
    locks::TtasLock lock;
    locks::CriticalSection<locks::TtasLock> cs(locks::ElisionPolicy::from_scheme(scheme), lock);
    sim::Scheduler sched(quiet_machine());
    tsx::Engine eng(sched, quiet_tsx());
    std::int64_t net = 0;
    for (int t = 0; t < 8; ++t) {
      sched.spawn([&](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        for (int i = 0; i < 50; ++i) {
          const bool do_push = st.rng().next_below(2) == 0;
          const std::uint64_t key = st.rng().next_below(10000);
          bool pushed = false, popped = false;
          cs.run(ctx, [&] {
            pushed = popped = false;
            if (do_push) {
              pushed = heap.push(ctx, key);
            } else {
              std::uint64_t out = 0;
              popped = heap.pop_min(ctx, &out);
            }
          });
          net += (pushed ? 1 : 0) - (popped ? 1 : 0);
        }
      });
    }
    sched.run();
    std::string why;
    ASSERT_TRUE(heap.unsafe_validate(&why))
        << why << " under " << locks::scheme_name(scheme);
    EXPECT_EQ(static_cast<std::int64_t>(heap.unsafe_size()), 256 + net);
  }
}

TEST(BinHeap, ElisionCannotParallelizeTheHeap) {
  // Every operation writes near the root: true conflicts everywhere. HLE
  // must not collapse below the standard lock, but it cannot beat it much
  // either — there is no concurrency to expose.
  auto throughput = [&](locks::Scheme scheme) {
    BinHeap heap(1 << 14);
    for (std::uint64_t k = 0; k < 4096; ++k) heap.unsafe_push(k * 31 % 65536);
    locks::TtasLock lock;
    locks::CriticalSection<locks::TtasLock> cs(locks::ElisionPolicy::from_scheme(scheme), lock);
    sim::Scheduler sched(quiet_machine());
    tsx::Engine eng(sched, quiet_tsx());
    std::uint64_t ops = 0;
    for (int t = 0; t < 8; ++t) {
      sched.spawn([&](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        while (!st.stop_requested()) {
          const bool do_push = st.rng().next_below(2) == 0;
          const std::uint64_t key = st.rng().next_below(65536);
          cs.run(ctx, [&] {
            if (do_push) {
              heap.push(ctx, key);
            } else {
              std::uint64_t out = 0;
              heap.pop_min(ctx, &out);
            }
          });
          ++ops;
        }
      });
    }
    sched.run_for(300000);
    return static_cast<double>(ops);
  };
  const double standard = throughput(locks::Scheme::kStandard);
  const double scm = throughput(locks::Scheme::kHleScm);
  // SCM serializes gracefully: within 2x of the plain lock in either
  // direction (no crowd speedup, no collapse).
  EXPECT_GT(scm, standard * 0.5);
  EXPECT_LT(scm, standard * 2.5);
}

}  // namespace
}  // namespace elision::ds
