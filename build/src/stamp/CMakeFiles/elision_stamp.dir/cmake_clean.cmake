file(REMOVE_RECURSE
  "CMakeFiles/elision_stamp.dir/genome.cpp.o"
  "CMakeFiles/elision_stamp.dir/genome.cpp.o.d"
  "CMakeFiles/elision_stamp.dir/intruder.cpp.o"
  "CMakeFiles/elision_stamp.dir/intruder.cpp.o.d"
  "CMakeFiles/elision_stamp.dir/kmeans.cpp.o"
  "CMakeFiles/elision_stamp.dir/kmeans.cpp.o.d"
  "CMakeFiles/elision_stamp.dir/labyrinth.cpp.o"
  "CMakeFiles/elision_stamp.dir/labyrinth.cpp.o.d"
  "CMakeFiles/elision_stamp.dir/runner.cpp.o"
  "CMakeFiles/elision_stamp.dir/runner.cpp.o.d"
  "CMakeFiles/elision_stamp.dir/ssca2.cpp.o"
  "CMakeFiles/elision_stamp.dir/ssca2.cpp.o.d"
  "CMakeFiles/elision_stamp.dir/vacation.cpp.o"
  "CMakeFiles/elision_stamp.dir/vacation.cpp.o.d"
  "libelision_stamp.a"
  "libelision_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elision_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
