// Minimal stackful fibers (user-level cooperative contexts).
//
// The simulator multiplexes all logical threads of the simulated machine onto
// the single host thread. A context switch saves the SysV x86-64 callee-saved
// registers and swaps stacks; it costs ~10ns, which keeps per-memory-access
// yielding affordable.
//
// Invariants:
//  * A fiber entry function must never return through the trampoline; the
//    scheduler switches away from a finishing fiber (enforced with a trap).
//  * Exceptions must be caught within the fiber that threw them; unwinding
//    across a switch is undefined.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace elision::sim {

class Fiber {
 public:
  using Entry = void (*)(void* arg);

  // Constructs a "host" fiber: a save-slot for the context that calls
  // switch_to() first. It owns no stack.
  Fiber() = default;

  // Constructs a runnable fiber that will invoke entry(arg) on its own stack
  // when first switched to.
  Fiber(Entry entry, void* arg, std::size_t stack_bytes);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Suspends `from` (the currently running context) and resumes `to`.
  // Returns when something later switches back to `from`.
  static void switch_to(Fiber& from, Fiber& to);

 private:
  void* sp_ = nullptr;  // saved stack pointer while suspended
  std::unique_ptr<std::byte[]> stack_;
};

}  // namespace elision::sim
