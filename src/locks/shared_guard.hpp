// SharedGuard: abort-aware RAII over the shared mode of a two-mode lock,
// mirroring atomic_sync's transactional_shared_lock_guard.
//
// The constructor acquires the lock in shared mode under the thread's
// current elision mode: speculatively (the XACQUIRE FETCH_ADD subscribes to
// the writer word without storing) when the surrounding region driver set
// ElisionMode::kSpeculative, or as a real reader otherwise. The destructor
// releases — *unless* the acquisition happened inside a transaction that has
// since aborted, in which case the increment was rolled back with it and a
// release would corrupt the reader count. That is what makes the guard safe
// on the unwind path of a TxAbortException.
//
// Typical use is through CriticalSection::run_shared(), which supplies the
// retry/fallback loop; standalone use gives a plain (or, inside an RTM
// transaction, a buffered) shared acquisition:
//
//   {
//     locks::SharedGuard<locks::SharedTtasLock> g(ctx, lock);
//     ... read-only body ...
//   }  // released, or rolled back with the enclosing transaction
#pragma once

#include "tsx/engine.hpp"

namespace elision::locks {

template <typename Lock>
class SharedGuard {
 public:
  SharedGuard(tsx::Ctx& ctx, Lock& lock) : ctx_(ctx), lock_(lock) {
    lock_.lock_shared(ctx_);
    speculative_ = ctx_.in_tx();
  }

  SharedGuard(const SharedGuard&) = delete;
  SharedGuard& operator=(const SharedGuard&) = delete;

  ~SharedGuard() {
    // A transactional acquisition whose transaction is gone was rolled back
    // (abort unwind); there is nothing to release.
    if (speculative_ && !ctx_.in_tx()) return;
    lock_.unlock_shared(ctx_);
  }

  // Whether the acquisition was transactional (elided/buffered) rather than
  // a real reader-count increment.
  bool was_speculative() const { return speculative_; }

 private:
  tsx::Ctx& ctx_;
  Lock& lock_;
  bool speculative_ = false;
};

}  // namespace elision::locks
