// Bank-account transfers: the classic critical-section workload, and a
// live demonstration of the avalanche effect.
//
// All transfers lock ONE global (fair MCS) lock. Most transfers touch
// distinct accounts, so nearly all could run concurrently — but under
// plain HLE, the occasional conflicting pair serializes *everyone* (the
// avalanche). SCM serializes only the conflicting pair.
//
// The example also verifies the ground truth: money is conserved under
// every scheme.
#include <cstdio>
#include <vector>

#include "harness/runner.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "support/align.hpp"
#include "tsx/shared.hpp"

using namespace elision;

namespace {

constexpr int kAccounts = 1024;
constexpr std::int64_t kInitialBalance = 1000;

struct Bank {
  std::vector<support::CacheAligned<tsx::Shared<std::int64_t>>> accounts;
  Bank() : accounts(kAccounts) {
    for (auto& a : accounts) a.value.unsafe_set(kInitialBalance);
  }
  std::int64_t total() const {
    std::int64_t sum = 0;
    for (const auto& a : accounts) sum += a.value.unsafe_get();
    return sum;
  }
};

void run_with_scheme(locks::Scheme scheme) {
  Bank bank;
  locks::McsLock lock;  // a fair lock, as a real bank would want
  locks::CriticalSection<locks::McsLock> cs(locks::ElisionPolicy::from_scheme(scheme), lock);

  harness::BenchConfig cfg;
  cfg.threads = 8;
  cfg.duration_sec = 0.002;

  const auto stats = harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const auto from = static_cast<std::size_t>(rng.next_below(kAccounts));
    const auto to = static_cast<std::size_t>(rng.next_below(kAccounts));
    const auto amount = static_cast<std::int64_t>(rng.next_below(100));
    return cs.run(ctx, [&] {
      auto& a = bank.accounts[from].value;
      auto& b = bank.accounts[to].value;
      if (a.load(ctx) >= amount) {
        a.store(ctx, a.load(ctx) - amount);
        b.store(ctx, b.load(ctx) + amount);
      }
    });
  });

  const bool conserved = bank.total() == kAccounts * kInitialBalance;
  std::printf("  %-12s %8.2f Mtransfers/s   non-speculative %5.1f%%   money %s\n",
              locks::scheme_name(scheme), stats.throughput() / 1e6,
              100 * stats.nonspec_fraction(),
              conserved ? "conserved" : "LOST — BUG!");
}

}  // namespace

int main() {
  std::printf("Bank transfers over one global fair (MCS) lock, 8 threads:\n\n");
  for (const auto scheme :
       {locks::Scheme::kStandard, locks::Scheme::kHle,
        locks::Scheme::kHleScm, locks::Scheme::kOptSlrScm}) {
    run_with_scheme(scheme);
  }
  std::printf(
      "\nPlain HLE on a fair lock collapses to a serial run after the first\n"
      "conflict (the avalanche). SCM keeps the non-conflicting transfers\n"
      "speculative, restoring the concurrency the workload always had.\n");
  return 0;
}
