#include "stress/stress.hpp"

#include <utility>

#include "ds/hashtable.hpp"
#include "harness/runner.hpp"
#include "locks/clh_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/ttas_lock.hpp"
#include "stress/invariants.hpp"
#include "stress/racy_lock.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"

namespace elision::stress {

const char* lock_name(LockKind k) {
  switch (k) {
    case LockKind::kTtas: return locks::TtasLock::kName;
    case LockKind::kMcs: return locks::McsLock::kName;
    case LockKind::kTicket: return locks::TicketLock::kName;
    case LockKind::kTicketAdj: return locks::TicketLockAdjusted::kName;
    case LockKind::kClh: return locks::ClhLock::kName;
    case LockKind::kClhAdj: return locks::ClhLockAdjusted::kName;
    case LockKind::kRacy: return RacyLock::kName;
  }
  return "?";
}

std::vector<LockKind> all_locks() {
  return {LockKind::kTtas,      LockKind::kMcs, LockKind::kTicket,
          LockKind::kTicketAdj, LockKind::kClh, LockKind::kClhAdj};
}

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kCounter: return "counter";
    case Workload::kHashTable: return "hashtable";
  }
  return "?";
}

std::vector<Workload> all_workloads() {
  return {Workload::kCounter, Workload::kHashTable};
}

std::vector<locks::Scheme> all_schemes() {
  std::vector<locks::Scheme> v(std::begin(locks::kAllSixSchemes),
                               std::end(locks::kAllSixSchemes));
  v.push_back(locks::Scheme::kRtmElide);
  return v;
}

std::string case_name(const StressCase& c) {
  std::string s = scheme_name(c.scheme);
  s += '/';
  s += lock_name(c.lock);
  s += '/';
  s += workload_name(c.workload);
  s += " pseed=";
  s += std::to_string(c.perturb_seed);
  if (c.perturb_points != 0) {
    s += " budget=";
    s += std::to_string(c.perturb_points);
  }
  return s;
}

namespace {

harness::BenchConfig base_config(const StressOptions& o, const StressCase& c) {
  harness::BenchConfig cfg;
  cfg.threads = o.threads;
  cfg.duration_sec = o.duration_ms / 1e3;
  cfg.machine.seed = o.workload_seed;
  cfg.machine.max_switches = o.max_switches;
  cfg.machine.perturb.probability = o.perturb_probability;
  cfg.machine.perturb.max_delay_cycles = o.perturb_max_delay_cycles;
  cfg.machine.perturb.seed = c.perturb_seed;
  cfg.machine.perturb.max_points = c.perturb_points;
  cfg.policy = locks::ElisionPolicy::from_scheme(c.scheme);
  // Algorithm 3 as designed needs HLE nested inside RTM.
  if (c.scheme == locks::Scheme::kHleScmNested) {
    cfg.tsx.allow_hle_in_rtm = true;
  }
  cfg.telemetry = o.telemetry;
  return cfg;
}

void fill_outcome(const harness::RunStats& stats, RunOutcome* out) {
  out->ops = stats.ops;
  out->aborts = stats.tx.aborts;
  out->perturb_points_used = stats.perturb_points;
  out->elapsed_cycles = stats.elapsed_cycles;
  out->avalanche_episodes = stats.episodes.size();
}

void append_watchdog(const StarvationWatchdog& dog, RunOutcome* out) {
  for (const std::string& v : dog.violations()) {
    out->violations.push_back("starvation: " + v);
  }
}

// One hot Shared counter. Every completed region increments it exactly once
// (a committed transaction or a genuinely locked execution), so after the
// run it must equal the harness's completed-op count: any racy overlap of
// two non-speculative bodies manifests as a lost update.
template <typename Lock>
RunOutcome run_counter(const StressOptions& o, const StressCase& c) {
  harness::BenchConfig cfg = base_config(o, c);
  Lock lock;
  locks::CriticalSection<Lock> cs(cfg.policy, lock);
  tsx::Shared<std::uint64_t> counter(0);
  MutualExclusionChecker mutex;
  StarvationWatchdog dog(o.threads, o.starvation_gap_cycles,
                         o.starvation_min_other_ops);
  cfg.on_region_complete = [&dog](tsx::Ctx& ctx, const locks::RegionResult&) {
    dog.note_completion(ctx.id(), ctx.thread().now());
  };
  const harness::RunStats stats =
      harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
        return cs.run(ctx, [&] {
          MutualExclusionChecker::Guard g(mutex, ctx);
          counter.store(ctx, counter.load(ctx) + 1);
          ctx.engine().compute(ctx, 20);
        });
      });
  dog.finish(stats.elapsed_cycles);

  RunOutcome out;
  fill_outcome(stats, &out);
  if (counter.unsafe_get() != stats.ops) {
    out.violations.push_back(
        "lost updates: counter=" + std::to_string(counter.unsafe_get()) +
        " completed ops=" + std::to_string(stats.ops));
  }
  if (mutex.violations() > 0) {
    out.violations.push_back(
        "mutual exclusion: " + std::to_string(mutex.violations()) +
        " overlapping non-speculative critical sections");
  }
  append_watchdog(dog, &out);
  return out;
}

// Mixed insert/erase/lookup over the chained hash table. The net insertion
// balance is tracked in a Shared counter (so speculative replays roll it
// back together with the structure) and reconciled against the table's
// actual size; the structure itself is validated node-by-node afterwards.
template <typename Lock>
RunOutcome run_hashtable(const StressOptions& o, const StressCase& c) {
  harness::BenchConfig cfg = base_config(o, c);
  Lock lock;
  locks::CriticalSection<Lock> cs(cfg.policy, lock);
  ds::HashTable table(o.hashtable_buckets, o.hashtable_capacity, o.threads);
  // Prefill half the key domain so erase/lookup hit from the start.
  std::uint64_t prefilled = 0;
  for (std::uint64_t k = 0; k < o.hashtable_key_domain; k += 2) {
    if (table.unsafe_insert(k, k * 3)) ++prefilled;
  }
  tsx::Shared<std::uint64_t> net(prefilled);
  MutualExclusionChecker mutex;
  StarvationWatchdog dog(o.threads, o.starvation_gap_cycles,
                         o.starvation_min_other_ops);
  cfg.on_region_complete = [&dog](tsx::Ctx& ctx, const locks::RegionResult&) {
    dog.note_completion(ctx.id(), ctx.thread().now());
  };
  // Host-side, set-only: committed stores are always key*3, and the TM
  // buffers speculative writes until commit, so no execution — not even a
  // doomed one — should ever observe anything else.
  std::uint64_t torn_values = 0;
  const harness::RunStats stats =
      harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
        const std::uint64_t key =
            ctx.thread().rng().next_below(o.hashtable_key_domain);
        const std::uint64_t dice = ctx.thread().rng().next_below(100);
        return cs.run(ctx, [&] {
          MutualExclusionChecker::Guard g(mutex, ctx);
          if (dice < 35) {
            if (table.insert(ctx, key, key * 3)) {
              net.store(ctx, net.load(ctx) + 1);
            }
          } else if (dice < 70) {
            if (table.erase(ctx, key)) {
              net.store(ctx, net.load(ctx) - 1);
            }
          } else {
            std::uint64_t v = 0;
            if (table.lookup(ctx, key, &v) && v != key * 3) ++torn_values;
          }
        });
      });
  dog.finish(stats.elapsed_cycles);

  RunOutcome out;
  fill_outcome(stats, &out);
  std::string why;
  if (!table.unsafe_validate(&why)) {
    out.violations.push_back("hashtable structure: " + why);
  }
  if (net.unsafe_get() != table.unsafe_size()) {
    out.violations.push_back(
        "hashtable net size: tracked " + std::to_string(net.unsafe_get()) +
        " but table holds " + std::to_string(table.unsafe_size()));
  }
  if (torn_values > 0) {
    out.violations.push_back("hashtable torn values: " +
                             std::to_string(torn_values) +
                             " lookups observed value != 3*key");
  }
  if (mutex.violations() > 0) {
    out.violations.push_back(
        "mutual exclusion: " + std::to_string(mutex.violations()) +
        " overlapping non-speculative critical sections");
  }
  append_watchdog(dog, &out);
  return out;
}

template <typename Lock>
RunOutcome run_with(const StressOptions& o, const StressCase& c) {
  switch (c.workload) {
    case Workload::kCounter: return run_counter<Lock>(o, c);
    case Workload::kHashTable: return run_hashtable<Lock>(o, c);
  }
  ELISION_CHECK_MSG(false, "unknown workload");
  return {};
}

}  // namespace

RunOutcome run_case(const StressOptions& o, const StressCase& c) {
  switch (c.lock) {
    case LockKind::kTtas: return run_with<locks::TtasLock>(o, c);
    case LockKind::kMcs: return run_with<locks::McsLock>(o, c);
    case LockKind::kTicket: return run_with<locks::TicketLock>(o, c);
    case LockKind::kTicketAdj:
      return run_with<locks::TicketLockAdjusted>(o, c);
    case LockKind::kClh: return run_with<locks::ClhLock>(o, c);
    case LockKind::kClhAdj: return run_with<locks::ClhLockAdjusted>(o, c);
    case LockKind::kRacy:
      ELISION_CHECK_MSG(c.scheme == locks::Scheme::kStandard,
                        "RacyLock is a standard-scheme self-test instrument");
      return run_with<RacyLock>(o, c);
  }
  ELISION_CHECK_MSG(false, "unknown lock kind");
  return {};
}

Minimized minimize_case(const StressOptions& o, StressCase c) {
  Minimized best;
  best.points = c.perturb_points;
  best.outcome = run_case(o, c);
  if (best.outcome.ok()) return best;
  // Pin the budget to what the failing run actually used, then keep halving
  // while the failure reproduces. Greedy, not exhaustive: failures need not
  // be monotone in the budget, so this finds *a* small repro, cheaply.
  std::uint64_t points = best.outcome.perturb_points_used;
  if (points == 0) {
    best.points = 0;
    return best;  // fails with no injections at all: nothing to shrink
  }
  for (;;) {
    c.perturb_points = points;
    RunOutcome trial = run_case(o, c);
    if (!trial.ok()) {
      best.points = points;
      best.outcome = std::move(trial);
      if (points <= 1) break;
      points /= 2;
    } else {
      break;
    }
  }
  return best;
}

SweepStats sweep(
    const StressOptions& o, const std::vector<locks::Scheme>& schemes,
    const std::vector<LockKind>& locks, const std::vector<Workload>& workloads,
    std::uint64_t first_seed, int n_seeds,
    const std::function<void(const StressCase&, const RunOutcome&)>& on_run) {
  // Flatten the seed x scheme x lock x workload grid into a job vector in
  // the order the nested loops have always visited it; every cell is an
  // independent Scheduler+Engine simulation, so the runs fan out across
  // host threads while each outcome lands in its own grid slot.
  std::vector<StressCase> grid;
  grid.reserve(static_cast<std::size_t>(n_seeds) * schemes.size() *
               locks.size() * workloads.size());
  for (int i = 0; i < n_seeds; ++i) {
    for (const locks::Scheme scheme : schemes) {
      for (const LockKind lock : locks) {
        for (const Workload workload : workloads) {
          StressCase c;
          c.scheme = scheme;
          c.lock = lock;
          c.workload = workload;
          c.perturb_seed = first_seed + static_cast<std::uint64_t>(i);
          grid.push_back(c);
        }
      }
    }
  }

  std::vector<RunOutcome> outcomes(grid.size());
  support::parallel_for_each(
      grid.size(), [&](std::size_t j) { outcomes[j] = run_case(o, grid[j]); },
      o.host_threads);

  // Aggregate in grid order: counters, failure reports and on_run callbacks
  // are byte-identical to a sequential sweep regardless of host_threads.
  // Minimization re-runs a failing case under successively halved budgets —
  // an inherently serial search (each budget depends on the previous
  // outcome), so it stays here rather than in the fan-out.
  SweepStats stats;
  for (std::size_t j = 0; j < grid.size(); ++j) {
    const StressCase& c = grid[j];
    const RunOutcome& out = outcomes[j];
    ++stats.runs;
    stats.total_ops += out.ops;
    if (!out.ok()) {
      FailureReport f;
      f.c = c;
      if (o.minimize) {
        const Minimized m = minimize_case(o, c);
        f.outcome = m.outcome;
        f.minimized_points = m.points;
      } else {
        f.outcome = out;
        f.minimized_points = c.perturb_points;
      }
      stats.failures.push_back(std::move(f));
    }
    if (on_run) on_run(c, out);
  }
  return stats;
}

}  // namespace elision::stress
