file(REMOVE_RECURSE
  "CMakeFiles/avalanche_trace.dir/avalanche_trace.cpp.o"
  "CMakeFiles/avalanche_trace.dir/avalanche_trace.cpp.o.d"
  "avalanche_trace"
  "avalanche_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avalanche_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
