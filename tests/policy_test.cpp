// Tests of the conflict-management policies: Haswell's requestor-wins
// (default) vs the TLR-style oldest-wins alternative (Ch. 8 related work).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "tsx/shared.hpp"

namespace elision::tsx {
namespace {

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

TsxConfig policy_tsx(ConflictPolicy p) {
  TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  t.conflict_policy = p;
  return t;
}

TEST(Policy, OldestWinsProtectsTheOlderTransaction) {
  // T0 begins first and parks; T1 begins later and writes T0's line. Under
  // oldest-wins T1 must defer (abort itself); T0 commits.
  support::CacheAligned<Shared<std::uint64_t>> x;
  unsigned old_status = 1, young_status = 1;
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, policy_tsx(ConflictPolicy::kOldestWins));
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    old_status = eng.run_transaction(ctx, [&] {
      (void)x.value.load(ctx);
      ctx.engine().compute(ctx, 3000);
      (void)x.value.load(ctx);
    });
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 500);
    young_status = eng.run_transaction(ctx, [&] {
      x.value.store(ctx, 1);
    });
  });
  sched.run();
  EXPECT_EQ(old_status, kCommitted);
  EXPECT_NE(young_status, kCommitted);
  EXPECT_TRUE(young_status & status::kConflict);
}

TEST(Policy, RequestorWinsKillsTheOlderTransaction) {
  // Identical scenario under the Haswell policy: the younger requester
  // proceeds and the older reader dies.
  support::CacheAligned<Shared<std::uint64_t>> x;
  unsigned old_status = 1, young_status = 1;
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, policy_tsx(ConflictPolicy::kRequestorWins));
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    old_status = eng.run_transaction(ctx, [&] {
      (void)x.value.load(ctx);
      ctx.engine().compute(ctx, 3000);
      (void)x.value.load(ctx);
    });
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 500);
    young_status = eng.run_transaction(ctx, [&] {
      x.value.store(ctx, 1);
    });
  });
  sched.run();
  EXPECT_NE(old_status, kCommitted);
  EXPECT_EQ(young_status, kCommitted);
}

TEST(Policy, NonTransactionalRequestsAlwaysWin) {
  // Even under oldest-wins, a plain write must abort any transaction — the
  // coherence fabric cannot stall a non-speculative store indefinitely.
  support::CacheAligned<Shared<std::uint64_t>> x;
  unsigned status_ = 1;
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, policy_tsx(ConflictPolicy::kOldestWins));
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    status_ = eng.run_transaction(ctx, [&] {
      (void)x.value.load(ctx);
      ctx.engine().compute(ctx, 3000);
      (void)x.value.load(ctx);
    });
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 500);
    x.value.store(ctx, 9);  // non-transactional
  });
  sched.run();
  EXPECT_NE(status_, kCommitted);
  EXPECT_EQ(x.value.unsafe_get(), 9u);
}

TEST(Policy, OldestWinsGuaranteesProgressWithoutFallback) {
  // Pure transactional retry with NO fallback path: two threads repeatedly
  // conflicting. Under oldest-wins the oldest transaction always survives,
  // so both threads finish their quota in bounded attempts.
  support::CacheAligned<Shared<std::uint64_t>> hot;
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, policy_tsx(ConflictPolicy::kOldestWins));
  constexpr int kThreads = 4, kIters = 100;
  std::uint64_t total_attempts = 0;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < kIters; ++k) {
        for (;;) {
          ++total_attempts;
          const unsigned s = eng.run_transaction(ctx, [&] {
            hot.value.store(ctx, hot.value.load(ctx) + 1);
            ctx.engine().compute(ctx, 200);
          });
          if (s == kCommitted) break;
        }
      }
    });
  }
  sched.run();
  EXPECT_EQ(hot.value.unsafe_get(), kThreads * kIters);
  // Progress guarantee: the attempt count stays sane (no livelock collapse).
  EXPECT_LT(total_attempts, 20u * kThreads * kIters);
}

TEST(Policy, BothPoliciesConserveUpdates) {
  for (const auto policy :
       {ConflictPolicy::kRequestorWins, ConflictPolicy::kOldestWins}) {
    support::CacheAligned<Shared<std::uint64_t>> counter;
    sim::Scheduler sched(quiet_machine());
    Engine eng(sched, policy_tsx(policy));
    constexpr int kThreads = 6, kIters = 200;
    for (int t = 0; t < kThreads; ++t) {
      sched.spawn([&](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        for (int k = 0; k < kIters; ++k) {
          const unsigned s = eng.run_transaction(ctx, [&] {
            counter.value.store(ctx, counter.value.load(ctx) + 1);
          });
          if (s != kCommitted) counter.value.fetch_add(ctx, 1);
        }
      });
    }
    sched.run();
    EXPECT_EQ(counter.value.unsafe_get(), kThreads * kIters);
  }
}

}  // namespace
}  // namespace elision::tsx
