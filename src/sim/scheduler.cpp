#include "sim/scheduler.hpp"

#include <algorithm>
#include <exception>
#include <limits>

namespace elision::sim {

SimThread::SimThread(Scheduler& sched, int tid, std::uint64_t seed,
                     std::function<void(SimThread&)> body,
                     std::size_t stack_bytes)
    : sched_(sched),
      tid_(tid),
      core_(static_cast<unsigned>(tid) % sched.config().n_cores),
      sched_perturb_enabled_(sched.config().perturb.probability > 0),
      rng_(seed),
      perturb_rng_(sched.config().perturb.seed * 0xA0761D6478BD642FULL +
                   0xE7037ED1A0B428DBULL * static_cast<std::uint64_t>(tid + 1)),
      body_(std::move(body)),
      fiber_(&SimThread::entry, this, stack_bytes) {}

void SimThread::entry(void* self) {
  Fiber::on_fiber_entry();  // ASan stack-switch bookkeeping; no-op otherwise
  auto* t = static_cast<SimThread*>(self);
  try {
    t->body_(*t);
  } catch (const std::exception& e) {
    ELISION_CHECK_MSG(false, e.what());
  } catch (...) {
    ELISION_CHECK_MSG(false, "unknown exception escaped a simulated thread");
  }
  t->sched_.finish_from(*t);  // never returns
}

void SimThread::yield() { sched_.yield_from(*this); }

void SimThread::advance_slow(std::uint64_t cycles) {
  const double scaled =
      static_cast<double>(cycles) * sched_.core_penalty_[core_];
  std::uint64_t delta;
  if (scaled >= 18446744073709551616.0 /* 2^64 */) {
    delta = Scheduler::kFinishedClock;
  } else {
    delta = static_cast<std::uint64_t>(scaled);
  }
  if (delta >= Scheduler::kFinishedClock - 1 - vclock_) {
    vclock_ = Scheduler::kFinishedClock - 1;
  } else {
    vclock_ += delta;
  }
}

void SimThread::maybe_perturb() {
  const PerturbConfig& p = sched_.config().perturb;
  if (!perturb_rng_.next_bool(p.probability)) return;
  if (!sched_.consume_perturb_point()) return;
  // The delay alone changes the interleaving: the earliest-first scheduler
  // re-sorts this thread behind everyone it jumped over at the maybe_yield()
  // that follows in tick().
  advance(1 + perturb_rng_.next_below(p.max_delay_cycles));
}

Scheduler::Scheduler(MachineConfig config)
    : config_(config), batch_(config.batch_switch_bound) {
  ELISION_CHECK(config_.n_cores >= 1);
  // Fast-path bound for advance(): any cycles below it scale to a delta
  // under 2^53 even at the worst per-core multiplier, so together with a
  // clock below 2^63 the unchecked addition cannot overflow or touch the
  // finished sentinel. The product rounds to nearest, so cap the quotient
  // at 2^53 and leave one bit of headroom.
  const double worst = std::max(1.0, config_.smt_slowdown);
  const double bound = 9007199254740992.0 /* 2^53 */ / worst;
  advance_fast_cycles_ = static_cast<std::uint64_t>(
      std::min(bound, 9007199254740992.0 / 2.0));
  core_active_.assign(config_.n_cores, 0);
  core_penalty_.assign(config_.n_cores, 1.0);
}

Scheduler::~Scheduler() {
  // All fibers must have run to completion; destroying a suspended fiber
  // would leak whatever RAII state lives on its stack.
  for (const auto& t : threads_) {
    ELISION_CHECK_MSG(t->finished(),
                      "Scheduler destroyed with unfinished simulated threads");
  }
}

SimThread& Scheduler::spawn(std::function<void(SimThread&)> body) {
  ELISION_CHECK_MSG(!running_, "spawn() during run() is not supported");
  const int tid = static_cast<int>(threads_.size());
  ELISION_CHECK_MSG(tid < kMaxSimThreads,
                    "at most kMaxSimThreads simulated threads");
  threads_.push_back(std::make_unique<SimThread>(
      *this, tid, config_.seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL * (tid + 1),
      std::move(body), config_.fiber_stack_bytes));
  const int ready_tid = ready_.add_thread();
  ELISION_CHECK(ready_tid == tid);
  ++runnable_;
  SimThread& t = *threads_.back();
  ++core_active_[t.core_];
  update_core_penalty(t.core_);
  return t;
}

SimThread* Scheduler::pick_next() const {
  if (runnable_ == 0) return nullptr;
  return threads_[static_cast<std::size_t>(ready_.min_tid())].get();
}

void Scheduler::yield_from(SimThread& t) {
  // Counted before the same-thread early-out so that max_switches also
  // catches a thread yielding forever without advancing its clock.
  ++switches_;
  ELISION_CHECK_MSG(config_.max_switches == 0 || switches_ < config_.max_switches,
                    "simulation exceeded max_switches (livelock?)");
  if (batch_) {
    // The caller's slot is parked, so the queue's (min, argmin) covers the
    // other threads only. Reproduce the global first-index-wins pick: an
    // other thread beats the caller only with a strictly smaller clock, or
    // an equal clock and a lower tid (a sentinel min means no other runnable
    // thread, so the caller keeps running either way).
    const ReadyQueue::Entry best = ready_.min_entry();
    if (best.clock > t.vclock_ ||
        (best.clock == t.vclock_ && best.tid > t.tid_)) {
      return;
    }
    SimThread& next = *threads_[static_cast<std::size_t>(best.tid)];
    exchange_and_bound(t, next);
    current_ = &next;
    Fiber::switch_to(t.fiber_, next.fiber_);
    return;
  }
  SimThread* next = pick_next();
  ELISION_DCHECK(next != nullptr);  // t itself is runnable
  if (next == &t) return;
  current_ = next;
  Fiber::switch_to(t.fiber_, next->fiber_);
}

void Scheduler::yield_over_bound(SimThread& t) {
  // Counted unconditionally (mirrors switch_counted) so that max_switches
  // also catches a thread yielding forever without advancing its clock.
  ++switches_;
  ELISION_CHECK_MSG(config_.max_switches == 0 || switches_ < config_.max_switches,
                    "simulation exceeded max_switches (livelock?)");
  // The bound fired, so some other runnable thread's clock sits at least a
  // slack below vclock_: the queue's (min, argmin) is a live thread and is
  // the global argmin (the caller's own clock is strictly larger, so it can
  // neither win nor tie).
  const ReadyQueue::Entry best = ready_.min_entry();
  ELISION_DCHECK(best.clock < t.vclock_);
  SimThread& next = *threads_[static_cast<std::size_t>(best.tid)];
  exchange_and_bound(t, next);
  current_ = &next;
  Fiber::switch_to(t.fiber_, next.fiber_);
}

void Scheduler::finish_from(SimThread& t) {
  t.finished_ = true;
  ready_.set(t.tid_, kFinishedClock);  // already parked there under batching
  // Under batching the final clock was never folded into the running max
  // (advance() skips it); a no-op otherwise.
  if (t.vclock_ > max_clock_) max_clock_ = t.vclock_;
  --runnable_;
  --core_active_[t.core_];
  update_core_penalty(t.core_);
  ++switches_;
  SimThread* next = pick_next();
  current_ = next;
  if (next != nullptr) {
    if (batch_) park_and_bound(*next);
    Fiber::switch_to(t.fiber_, next->fiber_);
  } else {
    Fiber::switch_to(t.fiber_, host_);
  }
  ELISION_CHECK_MSG(false, "resumed a finished simulated thread");
  std::abort();
}

void Scheduler::switch_from_host() {
  SimThread* next = pick_next();
  if (next == nullptr) return;
  running_ = true;
  current_ = next;
  ++switches_;
  if (batch_) park_and_bound(*next);
  Fiber::switch_to(host_, next->fiber_);
  // Control returns here only when the last thread finished.
  current_ = nullptr;
  running_ = false;
}

void Scheduler::run() {
  deadline_ = std::numeric_limits<std::uint64_t>::max();
  switch_from_host();
}

void Scheduler::run_for(std::uint64_t deadline_cycles) {
  deadline_ = deadline_cycles;
  switch_from_host();
}

}  // namespace elision::sim
