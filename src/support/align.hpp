// Cache-line geometry shared by the whole simulator.
#pragma once

#include <cstdint>
#include <cstddef>
#include <new>

namespace elision::support {

inline constexpr std::size_t kCacheLineBytes = 64;
inline constexpr std::size_t kCacheLineShift = 6;

// Identifier of a simulated cache line: the real address >> 6. Using real
// addresses means field co-location and false sharing behave realistically.
using LineId = std::uintptr_t;

inline LineId line_of(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) >> kCacheLineShift;
}

// A T padded out to occupy a full cache line, for contended control words.
template <typename T>
struct alignas(kCacheLineBytes) CacheAligned {
  T value{};
};

// std::vector allocator that starts the buffer on a cache-line boundary.
//
// Line ids are real addresses >> 6, so *which elements of a buffer share a
// line* is a function of the buffer base modulo the line size. An
// ordinarily malloc'd base makes that grouping an accident of allocator
// state — stable inside one process history (what fork-based parallel
// execution relied on), but not across host threads with per-thread malloc
// arenas. Anchoring every Shared-holding buffer to a line boundary makes
// the grouping a pure function of element offsets, which in-process
// parallel simulation (support/parallel.hpp) requires for byte-identical
// results. Types already declared alignas(kCacheLineBytes) get this from
// aligned operator new; this allocator extends the guarantee to buffers of
// smaller elements (e.g. packed Shared<T> words).
template <typename T>
struct LineAlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{
      alignof(T) > kCacheLineBytes ? alignof(T) : kCacheLineBytes};

  LineAlignedAllocator() = default;
  template <typename U>
  LineAlignedAllocator(const LineAlignedAllocator<U>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), kAlign);
  }

  template <typename U>
  bool operator==(const LineAlignedAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const LineAlignedAllocator<U>&) const {
    return false;
  }
};

}  // namespace elision::support
