// Sharded KV service tests: routing and per-shard bookkeeping, single- and
// cross-shard operation semantics, cross-shard atomicity under schedule
// perturbation, and byte-identical multi-seed benchmark fan-out across
// host-thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "service/kv_workload.hpp"
#include "service/sharded_kv.hpp"
#include "service/traffic.hpp"
#include "stress/stress.hpp"
#include "support/rng.hpp"

namespace elision::service {
namespace {

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

tsx::TsxConfig quiet_tsx() {
  tsx::TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

void run_single(const std::function<void(tsx::Ctx&)>& body) {
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) { body(eng.context(st)); });
  sched.run();
}

TEST(ShardedKv, RoutingIsDeterministicAndInRange) {
  ShardedKv::Config cfg;
  cfg.shards = 8;
  cfg.keys = 1024;
  ShardedKv kv(cfg);
  std::vector<std::uint64_t> per_shard(8, 0);
  for (std::uint64_t k = 0; k < 1024; ++k) {
    const int s = kv.shard_of(k);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 8);
    EXPECT_EQ(s, kv.shard_of(k));  // stable
    ++per_shard[static_cast<std::size_t>(s)];
  }
  // The splitmix-style mix must spread a dense key range: no shard empty,
  // none holding more than half the domain.
  for (const std::uint64_t n : per_shard) {
    EXPECT_GT(n, 0u);
    EXPECT_LT(n, 512u);
  }
}

TEST(ShardedKv, UnsafePrefillRoutesAndValidates) {
  ShardedKv::Config cfg;
  cfg.shards = 4;
  cfg.keys = 256;
  cfg.track_totals = true;
  ShardedKv kv(cfg);
  std::uint64_t total = 0;
  for (std::uint64_t k = 0; k < 256; k += 2) {
    EXPECT_TRUE(kv.unsafe_put(k, k + 3));
    total += k + 3;
  }
  EXPECT_EQ(kv.unsafe_size(), 128u);
  EXPECT_EQ(kv.unsafe_total_value(), total);
  std::size_t across = 0;
  for (int s = 0; s < kv.n_shards(); ++s) across += kv.unsafe_shard_size(s);
  EXPECT_EQ(across, 128u);
  std::string why;
  EXPECT_TRUE(kv.unsafe_validate(&why)) << why;
}

TEST(ShardedKv, PutGetEraseReportCommittedOutParams) {
  ShardedKv::Config cfg;
  cfg.shards = 4;
  cfg.keys = 64;
  cfg.threads = 1;
  ShardedKv kv(cfg);
  run_single([&](tsx::Ctx& ctx) {
    bool inserted = false;
    std::uint64_t old = 99;
    kv.put(ctx, 7, 100, &inserted, &old);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(old, 0u);
    kv.put(ctx, 7, 250, &inserted, &old);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(old, 100u);
    std::uint64_t v = 0;
    bool found = false;
    kv.get(ctx, 7, &v, &found);
    EXPECT_TRUE(found);
    EXPECT_EQ(v, 250u);
    bool erased = false;
    kv.erase(ctx, 7, &erased, &old);
    EXPECT_TRUE(erased);
    EXPECT_EQ(old, 250u);
    kv.erase(ctx, 7, &erased, &old);
    EXPECT_FALSE(erased);
    kv.get(ctx, 7, &v, &found);
    EXPECT_FALSE(found);
  });
  EXPECT_EQ(kv.unsafe_size(), 0u);
  std::string why;
  EXPECT_TRUE(kv.unsafe_validate(&why)) << why;
}

TEST(ShardedKv, MultiPutIsAtomicAcrossShardsAndReportsDelta) {
  ShardedKv::Config cfg;
  cfg.shards = 4;
  cfg.keys = 64;
  cfg.threads = 1;
  ShardedKv kv(cfg);
  run_single([&](tsx::Ctx& ctx) {
    const KvPair pairs[] = {{1, 10}, {2, 20}, {3, 30}};
    std::int64_t delta = 0;
    kv.multi_put(ctx, pairs, 3, &delta);
    EXPECT_EQ(delta, 60);
    // Overwrite one, add one; delta is the net change.
    const KvPair next[] = {{2, 5}, {4, 40}};
    kv.multi_put(ctx, next, 2, &delta);
    EXPECT_EQ(delta, 40 - 20 + 5);
    // Later duplicates of a key win, like sequential puts.
    const KvPair dup[] = {{9, 1}, {9, 7}};
    kv.multi_put(ctx, dup, 2, &delta);
    std::uint64_t v = 0;
    kv.get(ctx, 9, &v);
    EXPECT_EQ(v, 7u);
  });
  EXPECT_EQ(kv.unsafe_size(), 5u);
  EXPECT_EQ(kv.unsafe_total_value(), 10u + 5u + 30u + 40u + 7u);
}

TEST(ShardedKv, TransferConservesTotalValue) {
  ShardedKv::Config cfg;
  cfg.shards = 4;
  cfg.keys = 64;
  cfg.threads = 1;
  cfg.track_totals = true;
  ShardedKv kv(cfg);
  kv.unsafe_put(1, 100);
  run_single([&](tsx::Ctx& ctx) {
    std::uint64_t moved = 0;
    kv.transfer(ctx, 1, 2, 30, &moved);  // partial move, inserts key 2
    EXPECT_EQ(moved, 30u);
    kv.transfer(ctx, 1, 2, 1000, &moved);  // clamped to the balance
    EXPECT_EQ(moved, 70u);
    kv.transfer(ctx, 42, 2, 5, &moved);  // absent source: no-op
    EXPECT_EQ(moved, 0u);
    kv.transfer(ctx, 2, 2, 5, &moved);  // self-transfer: no-op
    EXPECT_EQ(moved, 0u);
  });
  EXPECT_EQ(kv.unsafe_total_value(), 100u);
  std::string why;
  EXPECT_TRUE(kv.unsafe_validate(&why)) << why;
}

// Concurrent mixed traffic with an exact host-side ledger: every committed
// op reports its net value change via out-params, and the final stored sum
// must match. A torn cross-shard region (multi_put or transfer committing
// on some involved shards but not others) is exactly a ledger mismatch.
TEST(ShardedKv, ConcurrentMixKeepsLedgerExact) {
  for (const auto& policy :
       {locks::ElisionPolicy::standard(), locks::ElisionPolicy::hle(),
        locks::ElisionPolicy::hle_scm()}) {
    ShardedKv::Config cfg;
    cfg.shards = 4;
    cfg.keys = 48;
    cfg.threads = 6;
    cfg.policy = policy;
    cfg.track_totals = true;
    ShardedKv kv(cfg);
    std::int64_t ledger = 0;
    for (std::uint64_t k = 0; k < 48; k += 2) {
      kv.unsafe_put(k, k + 5);
      ledger += static_cast<std::int64_t>(k + 5);
    }
    kv.unsafe_distribute_free_lists(6);

    sim::MachineConfig m = quiet_machine();
    m.seed = 77;
    sim::Scheduler sched(m);
    tsx::Engine eng(sched, tsx::TsxConfig{});
    std::vector<std::int64_t> deltas(6, 0);
    for (int t = 0; t < 6; ++t) {
      sched.spawn([&, t](sim::SimThread& st) {
        tsx::Ctx& ctx = eng.context(st);
        support::Xoshiro256 rng(0xC0FFEE + static_cast<std::uint64_t>(t));
        std::int64_t local = 0;
        for (int i = 0; i < 300; ++i) {
          const std::uint64_t key = rng.next_below(48);
          const std::uint64_t dice = rng.next_below(10);
          if (dice < 3) {
            std::uint64_t old = 0;
            const std::uint64_t value = 1 + rng.next_below(100);
            kv.put(ctx, key, value, nullptr, &old);
            local += static_cast<std::int64_t>(value) -
                     static_cast<std::int64_t>(old);
          } else if (dice < 5) {
            KvPair pairs[3];
            for (auto& p : pairs) {
              p.key = rng.next_below(48);
              p.value = 1 + rng.next_below(100);
            }
            std::int64_t d = 0;
            kv.multi_put(ctx, pairs, 3, &d);
            local += d;
          } else if (dice < 8) {
            kv.transfer(ctx, key, rng.next_below(48), 1 + rng.next_below(50));
          } else {
            std::uint64_t v = 0;
            kv.get(ctx, key, &v);
          }
        }
        deltas[static_cast<std::size_t>(t)] = local;
      });
    }
    sched.run();
    for (const std::int64_t d : deltas) ledger += d;
    std::string why;
    ASSERT_TRUE(kv.unsafe_validate(&why)) << policy.name() << ": " << why;
    EXPECT_EQ(static_cast<std::int64_t>(kv.unsafe_total_value()), ledger)
        << policy.name();
  }
}

// Cross-shard atomicity must survive schedule perturbation: drive the
// stress harness's sharded-kv workload (ledger + per-shard audits) across
// several perturbation seeds on the speculative policies.
TEST(ShardedKv, StressPerturbationFindsNoTornCrossShardUpdates) {
  stress::StressOptions o;
  o.threads = 6;
  o.duration_ms = 0.03;
  for (const auto& policy :
       {locks::ElisionPolicy::hle(), locks::ElisionPolicy::hle_scm()}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      stress::StressCase c;
      c.policy = policy;
      c.lock = stress::LockKind::kTtas;
      c.workload = stress::Workload::kShardedKv;
      c.perturb_seed = seed;
      const stress::RunOutcome out = stress::run_case(o, c);
      EXPECT_TRUE(out.ok())
          << policy.name() << " seed " << seed << ": "
          << (out.violations.empty() ? "" : out.violations.front());
      EXPECT_GT(out.ops, 0u);
    }
  }
}

TEST(Traffic, ZipfSamplesStayInDomainAndSkew) {
  ZipfGenerator zipf(1000, 0.99);
  support::Xoshiro256 rng(123);
  std::vector<std::uint64_t> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = zipf.next(rng);
    ASSERT_LT(k, 1000u);
    ++counts[static_cast<std::size_t>(k)];
  }
  // Rank-0 must dominate the median rank by a wide margin under theta=0.99.
  EXPECT_GT(counts[0], 50 * (counts[500] + 1));
}

TEST(KvWorkload, PointRunsAndRecordsLatencyPerOpKind) {
  KvPoint p;
  p.shards = 8;
  p.keys = 2048;
  p.clients = 500;
  p.threads = 4;
  p.duration_sec = 0.0005;
  p.seeds = 1;
  std::vector<std::uint64_t> shard_reqs;
  p.shard_requests = &shard_reqs;
  const harness::RunStats s = run_kv_point(p);
  EXPECT_GT(s.ops, 0u);
  ASSERT_EQ(s.op_latency.size(), static_cast<std::size_t>(kKvOpKinds));
  std::uint64_t lat_samples = 0;
  for (int i = 0; i < kKvOpKinds; ++i) {
    EXPECT_EQ(s.op_latency[static_cast<std::size_t>(i)].op, kKvOpNames[i]);
    const auto& h = s.op_latency[static_cast<std::size_t>(i)].hist;
    lat_samples += h.samples();
    EXPECT_LE(h.quantile(0.50), h.quantile(0.99));
    EXPECT_LE(h.quantile(0.99), h.quantile(0.999));
    EXPECT_LE(h.quantile(0.999), h.max());
  }
  // Every completed request recorded exactly one latency sample.
  EXPECT_EQ(lat_samples, s.ops);
  // shard_requests counts per-shard touches: gets and puts one each,
  // multi_puts one per key in the batch, transfers two.
  ASSERT_EQ(shard_reqs.size(), 8u);
  std::uint64_t routed = 0;
  for (const std::uint64_t n : shard_reqs) routed += n;
  const std::uint64_t expected =
      s.op_latency[0].hist.samples() + s.op_latency[1].hist.samples() +
      4 * s.op_latency[2].hist.samples() + 2 * s.op_latency[3].hist.samples();
  EXPECT_EQ(routed, expected);
}

// The multi-seed fan-out must be byte-identical across host-thread counts:
// identical total counters and identical latency histograms bucket-for-
// bucket (what the suite serializes into bench JSON).
TEST(KvWorkload, MultiSeedFanOutIsIdenticalAcrossHostThreads) {
  KvPoint p;
  p.shards = 8;
  p.keys = 2048;
  p.clients = 500;
  p.threads = 4;
  p.duration_sec = 0.0004;
  p.seeds = 3;
  p.host_threads = 1;
  const harness::RunStats a = run_kv_point(p);
  for (const int ht : {2, 4}) {
    p.host_threads = ht;
    const harness::RunStats b = run_kv_point(p);
    EXPECT_EQ(a.ops, b.ops) << ht;
    EXPECT_EQ(a.attempts, b.attempts) << ht;
    EXPECT_EQ(a.spec_ops, b.spec_ops) << ht;
    EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles) << ht;
    ASSERT_EQ(a.op_latency.size(), b.op_latency.size()) << ht;
    for (std::size_t i = 0; i < a.op_latency.size(); ++i) {
      EXPECT_EQ(a.op_latency[i].op, b.op_latency[i].op);
      EXPECT_EQ(a.op_latency[i].hist.samples(), b.op_latency[i].hist.samples());
      EXPECT_EQ(a.op_latency[i].hist.sum(), b.op_latency[i].hist.sum());
      EXPECT_EQ(a.op_latency[i].hist.max(), b.op_latency[i].hist.max());
      EXPECT_EQ(a.op_latency[i].hist.buckets(), b.op_latency[i].hist.buckets());
    }
  }
}

}  // namespace
}  // namespace elision::service
