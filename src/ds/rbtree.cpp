#include "ds/rbtree.hpp"

#include <functional>
#include <string>

#include "support/check.hpp"

namespace elision::ds {

RbTree::RbTree(std::size_t capacity, int max_threads)
    : arena_(capacity),
      n_free_lists_(max_threads + 1),
      free_(static_cast<std::size_t>(max_threads) + 1) {
  ELISION_CHECK_MSG(
      max_threads >= 1 && max_threads <= tsx::kMaxThreads,
      "node pool max_threads must be in [1, tsx::kMaxThreads]");
  nil_.red.unsafe_set(0);
  nil_.left.unsafe_set(&nil_);
  nil_.right.unsafe_set(&nil_);
  nil_.parent.unsafe_set(&nil_);
  root_.unsafe_set(&nil_);
  // Thread all nodes onto the setup/global list (slot n_free_lists_-1).
  Node* head = nullptr;
  for (auto it = arena_.rbegin(); it != arena_.rend(); ++it) {
    it->left.unsafe_set(head);
    head = &*it;
  }
  free_[n_free_lists_ - 1].value.unsafe_set(head);
}

void RbTree::unsafe_distribute_free_lists(int n_threads) {
  ELISION_CHECK(n_threads >= 1 && n_threads < n_free_lists_);
  Node* n = free_[n_free_lists_ - 1].value.unsafe_get();
  free_[n_free_lists_ - 1].value.unsafe_set(nullptr);
  int slot = 0;
  while (n != nullptr) {
    Node* next = n->left.unsafe_get();
    n->left.unsafe_set(free_[slot].value.unsafe_get());
    free_[slot].value.unsafe_set(n);
    slot = (slot + 1) % n_threads;
    n = next;
  }
}

RbTree::Node* RbTree::alloc(tsx::Ctx& ctx, std::uint64_t key) {
  // Thread-cached allocation: the common path touches only this thread's
  // free list, so allocations by concurrent operations do not conflict.
  Node* n = nullptr;
  auto& own = free_[ctx.id()].value;
  n = own.load(ctx);
  if (n != nullptr) {
    own.store(ctx, n->left.load(ctx));
  } else {
    for (int i = n_free_lists_ - 1; i >= 0 && n == nullptr; --i) {
      auto& other = free_[i].value;
      n = other.load(ctx);
      if (n != nullptr) other.store(ctx, n->left.load(ctx));
    }
  }
  ELISION_CHECK_MSG(n != nullptr, "RbTree node pool exhausted");
  n->key.store(ctx, key);
  n->left.store(ctx, &nil_);
  n->right.store(ctx, &nil_);
  n->parent.store(ctx, &nil_);
  n->red.store(ctx, 1);
  return n;
}

void RbTree::free_node(tsx::Ctx& ctx, Node* n) {
  auto& own = free_[ctx.id()].value;
  n->left.store(ctx, own.load(ctx));
  own.store(ctx, n);
}

RbTree::Node* RbTree::find(tsx::Ctx& ctx, std::uint64_t key) {
  Node* cur = root_.load(ctx);
  while (!is_nil(cur)) {
    const std::uint64_t k = cur->key.load(ctx);
    if (key == k) return cur;
    cur = key < k ? cur->left.load(ctx) : cur->right.load(ctx);
  }
  return nullptr;
}

bool RbTree::contains(tsx::Ctx& ctx, std::uint64_t key) {
  return find(ctx, key) != nullptr;
}

void RbTree::rotate_left(tsx::Ctx& ctx, Node* x) {
  Node* y = x->right.load(ctx);
  Node* yl = y->left.load(ctx);
  x->right.store(ctx, yl);
  if (!is_nil(yl)) yl->parent.store(ctx, x);
  Node* xp = x->parent.load(ctx);
  y->parent.store(ctx, xp);
  if (is_nil(xp)) {
    root_.store(ctx, y);
  } else if (xp->left.load(ctx) == x) {
    xp->left.store(ctx, y);
  } else {
    xp->right.store(ctx, y);
  }
  y->left.store(ctx, x);
  x->parent.store(ctx, y);
}

void RbTree::rotate_right(tsx::Ctx& ctx, Node* x) {
  Node* y = x->left.load(ctx);
  Node* yr = y->right.load(ctx);
  x->left.store(ctx, yr);
  if (!is_nil(yr)) yr->parent.store(ctx, x);
  Node* xp = x->parent.load(ctx);
  y->parent.store(ctx, xp);
  if (is_nil(xp)) {
    root_.store(ctx, y);
  } else if (xp->right.load(ctx) == x) {
    xp->right.store(ctx, y);
  } else {
    xp->left.store(ctx, y);
  }
  y->right.store(ctx, x);
  x->parent.store(ctx, y);
}

bool RbTree::insert(tsx::Ctx& ctx, std::uint64_t key) {
  Node* parent = &nil_;
  Node* cur = root_.load(ctx);
  while (!is_nil(cur)) {
    parent = cur;
    const std::uint64_t k = cur->key.load(ctx);
    if (key == k) return false;
    cur = key < k ? cur->left.load(ctx) : cur->right.load(ctx);
  }
  Node* z = alloc(ctx, key);
  z->parent.store(ctx, parent);
  if (is_nil(parent)) {
    root_.store(ctx, z);
  } else if (key < parent->key.load(ctx)) {
    parent->left.store(ctx, z);
  } else {
    parent->right.store(ctx, z);
  }
  insert_fixup(ctx, z);
  return true;
}

void RbTree::insert_fixup(tsx::Ctx& ctx, Node* z) {
  while (true) {
    Node* p = z->parent.load(ctx);
    if (is_nil(p) || p->red.load(ctx) == 0) break;
    Node* g = p->parent.load(ctx);
    if (p == g->left.load(ctx)) {
      Node* u = g->right.load(ctx);
      if (!is_nil(u) && u->red.load(ctx) == 1) {
        p->red.store(ctx, 0);
        u->red.store(ctx, 0);
        g->red.store(ctx, 1);
        z = g;
      } else {
        if (z == p->right.load(ctx)) {
          z = p;
          rotate_left(ctx, z);
          p = z->parent.load(ctx);
          g = p->parent.load(ctx);
        }
        p->red.store(ctx, 0);
        g->red.store(ctx, 1);
        rotate_right(ctx, g);
      }
    } else {
      Node* u = g->left.load(ctx);
      if (!is_nil(u) && u->red.load(ctx) == 1) {
        p->red.store(ctx, 0);
        u->red.store(ctx, 0);
        g->red.store(ctx, 1);
        z = g;
      } else {
        if (z == p->left.load(ctx)) {
          z = p;
          rotate_right(ctx, z);
          p = z->parent.load(ctx);
          g = p->parent.load(ctx);
        }
        p->red.store(ctx, 0);
        g->red.store(ctx, 1);
        rotate_left(ctx, g);
      }
    }
  }
  // Avoid a silent store: unconditionally writing the root's colour would
  // put the root's line into every inserter's write set and serialize all
  // concurrent operations under transactional execution.
  Node* root = root_.load(ctx);
  if (root->red.load(ctx) != 0) root->red.store(ctx, 0);
}

void RbTree::transplant(tsx::Ctx& ctx, Node* u, Node* v) {
  Node* up = u->parent.load(ctx);
  if (is_nil(up)) {
    root_.store(ctx, v);
  } else if (u == up->left.load(ctx)) {
    up->left.store(ctx, v);
  } else {
    up->right.store(ctx, v);
  }
  // Unlike CLRS we never write the shared nil sentinel: that one line would
  // otherwise join every eraser's write set and serialize all concurrent
  // erases. The fixup tracks the parent explicitly instead.
  if (!is_nil(v)) v->parent.store(ctx, up);
}

RbTree::Node* RbTree::minimum(tsx::Ctx& ctx, Node* n) {
  Node* l = n->left.load(ctx);
  while (!is_nil(l)) {
    n = l;
    l = n->left.load(ctx);
  }
  return n;
}

bool RbTree::erase(tsx::Ctx& ctx, std::uint64_t key) {
  Node* z = find(ctx, key);
  if (z == nullptr) return false;

  Node* y = z;
  std::uint64_t y_was_red = y->red.load(ctx);
  Node* x;        // the node moving into y's place (may be nil)
  Node* x_parent; // x's parent, tracked explicitly (nil is never written)
  Node* zl = z->left.load(ctx);
  Node* zr = z->right.load(ctx);
  if (is_nil(zl)) {
    x = zr;
    x_parent = z->parent.load(ctx);
    transplant(ctx, z, zr);
  } else if (is_nil(zr)) {
    x = zl;
    x_parent = z->parent.load(ctx);
    transplant(ctx, z, zl);
  } else {
    y = minimum(ctx, zr);
    y_was_red = y->red.load(ctx);
    x = y->right.load(ctx);
    if (y->parent.load(ctx) == z) {
      x_parent = y;
    } else {
      x_parent = y->parent.load(ctx);
      transplant(ctx, y, x);
      y->right.store(ctx, zr);
      zr->parent.store(ctx, y);
    }
    transplant(ctx, z, y);
    Node* zl2 = z->left.load(ctx);
    y->left.store(ctx, zl2);
    zl2->parent.store(ctx, y);
    const std::uint64_t z_red = z->red.load(ctx);
    if (y->red.load(ctx) != z_red) y->red.store(ctx, z_red);
  }
  if (y_was_red == 0) erase_fixup(ctx, x, x_parent);
  free_node(ctx, z);
  return true;
}

void RbTree::erase_fixup(tsx::Ctx& ctx, Node* x, Node* p) {
  // `p` is x's parent, threaded explicitly so the nil sentinel is never
  // read for navigation or written.
  while (x != root_.load(ctx) && (is_nil(x) || x->red.load(ctx) == 0)) {
    if (x == p->left.load(ctx)) {
      Node* w = p->right.load(ctx);
      if (w->red.load(ctx) == 1) {
        w->red.store(ctx, 0);
        p->red.store(ctx, 1);
        rotate_left(ctx, p);
        w = p->right.load(ctx);
      }
      if (w->left.load(ctx)->red.load(ctx) == 0 &&
          w->right.load(ctx)->red.load(ctx) == 0) {
        w->red.store(ctx, 1);
        x = p;
        p = x->parent.load(ctx);
      } else {
        if (w->right.load(ctx)->red.load(ctx) == 0) {
          w->left.load(ctx)->red.store(ctx, 0);
          w->red.store(ctx, 1);
          rotate_right(ctx, w);
          w = p->right.load(ctx);
        }
        const std::uint64_t p_red = p->red.load(ctx);
        if (w->red.load(ctx) != p_red) w->red.store(ctx, p_red);
        p->red.store(ctx, 0);
        w->right.load(ctx)->red.store(ctx, 0);
        rotate_left(ctx, p);
        x = root_.load(ctx);
        p = x->parent.load(ctx);
      }
    } else {
      Node* w = p->left.load(ctx);
      if (w->red.load(ctx) == 1) {
        w->red.store(ctx, 0);
        p->red.store(ctx, 1);
        rotate_right(ctx, p);
        w = p->left.load(ctx);
      }
      if (w->right.load(ctx)->red.load(ctx) == 0 &&
          w->left.load(ctx)->red.load(ctx) == 0) {
        w->red.store(ctx, 1);
        x = p;
        p = x->parent.load(ctx);
      } else {
        if (w->left.load(ctx)->red.load(ctx) == 0) {
          w->right.load(ctx)->red.store(ctx, 0);
          w->red.store(ctx, 1);
          rotate_left(ctx, w);
          w = p->left.load(ctx);
        }
        const std::uint64_t p_red = p->red.load(ctx);
        if (w->red.load(ctx) != p_red) w->red.store(ctx, p_red);
        p->red.store(ctx, 0);
        w->left.load(ctx)->red.store(ctx, 0);
        rotate_right(ctx, p);
        x = root_.load(ctx);
        p = x->parent.load(ctx);
      }
    }
  }
  if (!is_nil(x) && x->red.load(ctx) != 0) x->red.store(ctx, 0);
}

// ---------------------------------------------------------------------------
// Setup / verification (host-side raw accesses)
// ---------------------------------------------------------------------------

bool RbTree::unsafe_insert(std::uint64_t key) {
  // Plain BST insert followed by the same fixup, all through unsafe
  // accessors: a small recursive reimplementation avoids threading a Ctx.
  // We reuse the transactional code path by running it outside any
  // simulation, which requires a context; instead do a minimal direct
  // version here.
  Node* parent = &nil_;
  Node* cur = root_.unsafe_get();
  while (!is_nil(cur)) {
    parent = cur;
    const std::uint64_t k = cur->key.unsafe_get();
    if (key == k) return false;
    cur = key < k ? cur->left.unsafe_get() : cur->right.unsafe_get();
  }
  Node* z = free_[n_free_lists_ - 1].value.unsafe_get();
  ELISION_CHECK_MSG(z != nullptr, "RbTree node pool exhausted");
  free_[n_free_lists_ - 1].value.unsafe_set(z->left.unsafe_get());
  z->key.unsafe_set(key);
  z->left.unsafe_set(&nil_);
  z->right.unsafe_set(&nil_);
  z->parent.unsafe_set(parent);
  z->red.unsafe_set(1);
  if (is_nil(parent)) {
    root_.unsafe_set(z);
  } else if (key < parent->key.unsafe_get()) {
    parent->left.unsafe_set(z);
  } else {
    parent->right.unsafe_set(z);
  }
  // Fixup using the raw accessors mirrors insert_fixup.
  Node* zz = z;
  while (true) {
    Node* p = zz->parent.unsafe_get();
    if (is_nil(p) || p->red.unsafe_get() == 0) break;
    Node* g = p->parent.unsafe_get();
    const bool left_side = (p == g->left.unsafe_get());
    Node* u = left_side ? g->right.unsafe_get() : g->left.unsafe_get();
    if (!is_nil(u) && u->red.unsafe_get() == 1) {
      p->red.unsafe_set(0);
      u->red.unsafe_set(0);
      g->red.unsafe_set(1);
      zz = g;
      continue;
    }
    // Rotations need the shared-memory API; emulate with raw pointers.
    auto raw_rotate = [this](Node* x, bool to_left) {
      Node* y = to_left ? x->right.unsafe_get() : x->left.unsafe_get();
      Node* mid = to_left ? y->left.unsafe_get() : y->right.unsafe_get();
      if (to_left) {
        x->right.unsafe_set(mid);
      } else {
        x->left.unsafe_set(mid);
      }
      if (!is_nil(mid)) mid->parent.unsafe_set(x);
      Node* xp = x->parent.unsafe_get();
      y->parent.unsafe_set(xp);
      if (is_nil(xp)) {
        root_.unsafe_set(y);
      } else if (xp->left.unsafe_get() == x) {
        xp->left.unsafe_set(y);
      } else {
        xp->right.unsafe_set(y);
      }
      if (to_left) {
        y->left.unsafe_set(x);
      } else {
        y->right.unsafe_set(x);
      }
      x->parent.unsafe_set(y);
    };
    if (left_side) {
      if (zz == p->right.unsafe_get()) {
        zz = p;
        raw_rotate(zz, /*to_left=*/true);
        p = zz->parent.unsafe_get();
        g = p->parent.unsafe_get();
      }
      p->red.unsafe_set(0);
      g->red.unsafe_set(1);
      raw_rotate(g, /*to_left=*/false);
    } else {
      if (zz == p->left.unsafe_get()) {
        zz = p;
        raw_rotate(zz, /*to_left=*/false);
        p = zz->parent.unsafe_get();
        g = p->parent.unsafe_get();
      }
      p->red.unsafe_set(0);
      g->red.unsafe_set(1);
      raw_rotate(g, /*to_left=*/true);
    }
    break;
  }
  root_.unsafe_get()->red.unsafe_set(0);
  return true;
}

std::size_t RbTree::unsafe_size() const {
  std::size_t n = 0;
  std::function<void(const Node*)> walk = [&](const Node* node) {
    if (is_nil(node)) return;
    ++n;
    walk(node->left.unsafe_get());
    walk(node->right.unsafe_get());
  };
  walk(root_.unsafe_get());
  return n;
}

std::vector<std::uint64_t> RbTree::unsafe_keys() const {
  std::vector<std::uint64_t> keys;
  std::function<void(const Node*)> walk = [&](const Node* node) {
    if (is_nil(node)) return;
    walk(node->left.unsafe_get());
    keys.push_back(node->key.unsafe_get());
    walk(node->right.unsafe_get());
  };
  walk(root_.unsafe_get());
  return keys;
}

bool RbTree::unsafe_validate(std::string* why) const {
  const Node* root = root_.unsafe_get();
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (!is_nil(root) && root->red.unsafe_get() != 0) {
    return fail("root is red");
  }
  bool ok = true;
  std::string reason;
  // Returns black height, or -1 on violation.
  std::function<int(const Node*, const Node*, bool, std::uint64_t,
                    std::uint64_t)>
      walk = [&](const Node* node, const Node* parent, bool parent_red,
                 std::uint64_t lo, std::uint64_t hi) -> int {
    if (is_nil(node)) return 1;
    const std::uint64_t k = node->key.unsafe_get();
    if (k < lo || k > hi) {
      ok = false;
      reason = "BST order violated";
      return -1;
    }
    if (node->parent.unsafe_get() != parent) {
      ok = false;
      reason = "parent pointer wrong";
      return -1;
    }
    const bool red = node->red.unsafe_get() == 1;
    if (red && parent_red) {
      ok = false;
      reason = "red node with red parent";
      return -1;
    }
    const int lh = walk(node->left.unsafe_get(), node, red,
                        lo, k == 0 ? 0 : k - 1);
    const int rh = walk(node->right.unsafe_get(), node, red, k + 1, hi);
    if (lh < 0 || rh < 0) return -1;
    if (lh != rh) {
      ok = false;
      reason = "black height mismatch";
      return -1;
    }
    return lh + (red ? 0 : 1);
  };
  walk(root, &nil_, false, 0, UINT64_MAX);
  if (!ok) return fail(reason.c_str());

  // Every arena node is either reachable or on the free list.
  std::size_t free_count = 0;
  for (const auto& list : free_) {
    for (const Node* f = list.value.unsafe_get(); f != nullptr;
         f = f->left.unsafe_get()) {
      ++free_count;
      if (free_count > arena_.size()) return fail("free list cycle");
    }
  }
  if (free_count + unsafe_size() != arena_.size()) {
    return fail("node leak: free + live != capacity");
  }
  return true;
}

}  // namespace elision::ds
