// Tests of the HLE interface (XACQUIRE/XRELEASE), the elision region
// driver, and the avalanche mechanics of Ch. 3.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "locks/mcs_lock.hpp"
#include "locks/region.hpp"
#include "locks/ttas_lock.hpp"
#include "tsx/shared.hpp"

namespace elision::tsx {
namespace {

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

TsxConfig quiet_tsx() {
  TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

void run_threads(std::vector<std::function<void(Ctx&)>> bodies,
                 TsxConfig tcfg = quiet_tsx()) {
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, tcfg);
  for (auto& body : bodies) {
    sched.spawn([&eng, body = std::move(body)](sim::SimThread& st) {
      body(eng.context(st));
    });
  }
  sched.run();
}

// ---------------------------------------------------------------------------
// XACQUIRE / XRELEASE primitives
// ---------------------------------------------------------------------------

TEST(Hle, ElisionGivesIllusionWithoutWriting) {
  Shared<std::uint64_t> lock(0);
  run_threads({[&](Ctx& ctx) {
    ctx.set_mode(ElisionMode::kSpeculative);
    const std::uint64_t old = lock.xacquire_exchange(ctx, 1);
    EXPECT_EQ(old, 0u);
    EXPECT_TRUE(ctx.engine().xtest(ctx));
    // The thread sees the lock as held...
    EXPECT_EQ(lock.load(ctx), 1u);
    // ...but memory was never written.
    EXPECT_EQ(lock.unsafe_get(), 0u);
    lock.xrelease_store(ctx, 0);  // restores original: commits
    EXPECT_FALSE(ctx.engine().xtest(ctx));
    ctx.set_mode(ElisionMode::kStandard);
  }});
  EXPECT_EQ(lock.unsafe_get(), 0u);
}

TEST(Hle, ReleaseMustRestoreOriginalValue) {
  Shared<std::uint64_t> lock(0);
  TxStats stats;
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.set_mode(ElisionMode::kSpeculative);
    bool aborted = false;
    try {
      lock.xacquire_exchange(ctx, 1);
      lock.xrelease_store(ctx, 2);  // wrong value: must abort
    } catch (const TxAbortException& e) {
      aborted = true;
      EXPECT_EQ(e.cause, AbortCause::kHleMismatch);
    }
    EXPECT_TRUE(aborted);
    ctx.set_mode(ElisionMode::kStandard);
  });
  sched.run();
  EXPECT_EQ(
      eng.total_stats()
          .aborts_by_cause[static_cast<int>(AbortCause::kHleMismatch)],
      1u);
}

TEST(Hle, ReleaseToDifferentAddressAborts) {
  Shared<std::uint64_t> lock(0), other(0);
  run_threads({[&](Ctx& ctx) {
    ctx.set_mode(ElisionMode::kSpeculative);
    bool aborted = false;
    try {
      lock.xacquire_exchange(ctx, 1);
      other.xrelease_store(ctx, 0);  // not the elided address
    } catch (const TxAbortException& e) {
      aborted = true;
      EXPECT_EQ(e.cause, AbortCause::kHleMismatch);
    }
    EXPECT_TRUE(aborted);
    ctx.set_mode(ElisionMode::kStandard);
  }});
}

TEST(Hle, ElidedFetchAddAndCasRelease) {
  // The adjusted ticket lock pattern: XACQUIRE F&A then XRELEASE CAS that
  // undoes it (Algorithm 5).
  Shared<std::uint64_t> next(7);
  run_threads({[&](Ctx& ctx) {
    ctx.set_mode(ElisionMode::kSpeculative);
    const std::uint64_t current = next.xacquire_fetch_add(ctx, 1);
    EXPECT_EQ(current, 7u);
    EXPECT_EQ(next.load(ctx), 8u);  // illusion
    EXPECT_TRUE(next.xrelease_compare_exchange(ctx, current + 1, current));
    EXPECT_FALSE(ctx.engine().xtest(ctx));
    ctx.set_mode(ElisionMode::kStandard);
  }});
  EXPECT_EQ(next.unsafe_get(), 7u);  // state fully restored
}

TEST(Hle, ElidedCasReleaseFailsOnWrongExpected) {
  Shared<std::uint64_t> word(7);
  run_threads({[&](Ctx& ctx) {
    ctx.set_mode(ElisionMode::kSpeculative);
    word.xacquire_fetch_add(ctx, 1);
    // Expected doesn't match the illusion: the CAS fails, no abort.
    EXPECT_FALSE(word.xrelease_compare_exchange(ctx, 99, 7));
    EXPECT_TRUE(ctx.engine().xtest(ctx));
    // Correct release afterwards.
    EXPECT_TRUE(word.xrelease_compare_exchange(ctx, 8, 7));
    ctx.set_mode(ElisionMode::kStandard);
  }});
}

TEST(Hle, StandardModeExecutesRmwForReal) {
  Shared<std::uint64_t> lock(0);
  run_threads({[&](Ctx& ctx) {
    ctx.set_mode(ElisionMode::kStandard);
    EXPECT_EQ(lock.xacquire_exchange(ctx, 1), 0u);
    EXPECT_EQ(lock.unsafe_get(), 1u);  // memory actually written
    lock.xrelease_store(ctx, 0);
  }});
  EXPECT_EQ(lock.unsafe_get(), 0u);
}

TEST(Hle, HleInsideRtmAbortsOnHaswell) {
  Shared<std::uint64_t> lock(0);
  TsxConfig cfg = quiet_tsx();
  cfg.allow_hle_in_rtm = false;  // Haswell behaviour (Ch. 4 Remark)
  unsigned st = kCommitted;
  run_threads(
      {[&](Ctx& ctx) {
        st = ctx.engine().run_transaction(ctx, [&] {
          ctx.set_mode(ElisionMode::kSpeculative);
          lock.xacquire_exchange(ctx, 1);
        });
        ctx.set_mode(ElisionMode::kStandard);
      }},
      cfg);
  EXPECT_NE(st, kCommitted);
}

TEST(Hle, HleInsideRtmWorksWhenAllowed) {
  Shared<std::uint64_t> lock(0);
  Shared<std::uint64_t> data(0);
  TsxConfig cfg = quiet_tsx();
  cfg.allow_hle_in_rtm = true;  // the paper's intended SCM design
  unsigned st = 0;
  run_threads(
      {[&](Ctx& ctx) {
        st = ctx.engine().run_transaction(ctx, [&] {
          ctx.set_mode(ElisionMode::kSpeculative);
          lock.xacquire_exchange(ctx, 1);
          EXPECT_EQ(lock.load(ctx), 1u);  // illusion inside the RTM tx
          data.store(ctx, 42);
          lock.xrelease_store(ctx, 0);
          // Still inside the outer RTM transaction after the release.
          EXPECT_TRUE(ctx.engine().xtest(ctx));
        });
        ctx.set_mode(ElisionMode::kStandard);
      }},
      cfg);
  EXPECT_EQ(st, kCommitted);
  EXPECT_EQ(data.unsafe_get(), 42u);
  EXPECT_EQ(lock.unsafe_get(), 0u);
}

// ---------------------------------------------------------------------------
// The HLE region driver
// ---------------------------------------------------------------------------

TEST(HleRegion, UncontendedRegionCommitsSpeculatively) {
  locks::TtasLock lock;
  Shared<std::uint64_t> data(0);
  run_threads({[&](Ctx& ctx) {
    const auto r = locks::hle_region(ctx, lock, [&] {
      data.store(ctx, data.load(ctx) + 1);
    });
    EXPECT_TRUE(r.speculative);
    EXPECT_EQ(r.attempts, 1);
  }});
  EXPECT_EQ(data.unsafe_get(), 1u);
}

TEST(HleRegion, ConcurrentDisjointRegionsAllSpeculative) {
  locks::TtasLock lock;
  std::vector<support::CacheAligned<Shared<std::uint64_t>>> slots(8);
  std::vector<std::function<void(Ctx&)>> bodies;
  int nonspec = 0;
  for (int i = 0; i < 8; ++i) {
    bodies.push_back([&, i](Ctx& ctx) {
      for (int k = 0; k < 50; ++k) {
        const auto r = locks::hle_region(ctx, lock, [&] {
          slots[i].value.store(ctx, slots[i].value.load(ctx) + 1);
        });
        if (!r.speculative) ++nonspec;
      }
    });
  }
  run_threads(std::move(bodies));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(slots[i].value.unsafe_get(), 50u);
  EXPECT_EQ(nonspec, 0);  // nothing conflicts: full elision
}

TEST(HleRegion, AbortFallsBackToStandardRun) {
  locks::TtasLock lock;
  Shared<std::uint64_t> data(0);
  TsxConfig cfg = quiet_tsx();
  cfg.spurious_per_begin = 1.0;  // every speculative attempt dies instantly
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, cfg);
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    const auto r = locks::hle_region(ctx, lock, [&] {
      data.store(ctx, data.load(ctx) + 1);
    });
    EXPECT_FALSE(r.speculative);
    EXPECT_EQ(r.attempts, 2);  // one aborted speculation + one standard run
  });
  sched.run();
  EXPECT_EQ(data.unsafe_get(), 1u);
}

TEST(HleRegion, AvalancheOneAcquisitionAbortsAllSpeculators) {
  // Three speculating threads, entirely disjoint data, plus one thread that
  // acquires the lock non-transactionally mid-window. Even though no data
  // conflicts exist, the acquisition invalidates the lock line in every
  // speculator's read set, aborting all of them (the avalanche of Ch. 3).
  locks::TtasLock lock;
  Shared<std::uint64_t> hot(0);
  std::vector<support::CacheAligned<Shared<std::uint64_t>>> cold(3);
  std::vector<locks::RegionResult> results(3);
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, quiet_tsx());
  for (int i = 0; i < 3; ++i) {
    sched.spawn([&, i](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      results[i] = locks::hle_region(ctx, lock, [&] {
        (void)cold[i].value.load(ctx);
        ctx.engine().compute(ctx, 3000);  // long speculative window
        cold[i].value.store(ctx, 1);
      });
    });
  }
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 500);  // land inside the speculative windows
    ctx.set_mode(ElisionMode::kStandard);
    lock.lock(ctx);
    hot.store(ctx, 1);
    lock.unlock(ctx);
  });
  sched.run();
  // Every speculator was aborted despite touching disjoint data...
  const auto stats = eng.total_stats();
  EXPECT_EQ(stats.aborts_by_cause[static_cast<int>(AbortCause::kConflict)],
            3u);
  // ...and every operation still completed (speculatively after recovery or
  // non-speculatively), with more than one attempt.
  for (const auto& r : results) {
    EXPECT_GE(r.attempts, 2);
  }
  for (int i = 0; i < 3; ++i) EXPECT_EQ(cold[i].value.unsafe_get(), 1u);
}

TEST(HleRegion, TtasReentersSpeculationAfterLockRelease) {
  // A speculator aborted by a lock acquisition re-issues its TAS (which
  // fails), spins, and re-enters speculation once the lock is free — the
  // TTAS recovery of Ch. 3. With a long-held lock, the speculator should
  // still complete speculatively after release.
  locks::TtasLock lock;
  Shared<std::uint64_t> a(0), b(0);
  locks::RegionResult r{};
  run_threads({
      [&](Ctx& ctx) {
        // Holder: grabs the lock for real for a long time.
        ctx.set_mode(ElisionMode::kStandard);
        lock.lock(ctx);
        a.store(ctx, 1);
        ctx.engine().compute(ctx, 20000);
        lock.unlock(ctx);
      },
      [&](Ctx& ctx) {
        ctx.engine().compute(ctx, 1000);  // arrive while the lock is held
        r = locks::hle_region(ctx, lock, [&] {
          b.store(ctx, b.load(ctx) + 1);
        });
      },
  });
  EXPECT_TRUE(r.speculative);
  EXPECT_EQ(b.unsafe_get(), 1u);
}

TEST(HleRegion, RtmElideRegionEquivalentSemantics) {
  locks::TtasLock lock;
  Shared<std::uint64_t> data(0);
  run_threads({[&](Ctx& ctx) {
    const auto r = locks::rtm_elide_region(ctx, lock, [&] {
      data.store(ctx, data.load(ctx) + 1);
    });
    EXPECT_TRUE(r.speculative);
  }});
  EXPECT_EQ(data.unsafe_get(), 1u);
}

TEST(HleRegion, RtmElideAbortsWhenLockHeld) {
  locks::TtasLock lock;
  Shared<std::uint64_t> data(0);
  locks::RegionResult r{};
  run_threads({
      [&](Ctx& ctx) {
        ctx.set_mode(ElisionMode::kStandard);
        lock.lock(ctx);
        ctx.engine().compute(ctx, 5000);
        lock.unlock(ctx);
      },
      [&](Ctx& ctx) {
        ctx.engine().compute(ctx, 500);
        r = locks::rtm_elide_region(ctx, lock, [&] {
          data.store(ctx, data.load(ctx) + 1);
        });
      },
  });
  // The second thread observed the held lock, aborted, and either retried
  // speculatively after release or serialized; either way it completed.
  EXPECT_EQ(data.unsafe_get(), 1u);
  EXPECT_GE(r.attempts, 1);
}

}  // namespace
}  // namespace elision::tsx
