// Ablation — the paper's tuning claims (Sec. 5.1 "Conflict management
// tuning"): the SCM MAX_RETRIES sweep ("we have verified that using other
// tuning options only degrade the schemes' performance"), the avalanche's
// sensitivity to the spurious-abort rate (Sec. 2.2: spurious aborts alone
// can trigger serialization), and the backoff mitigation vs the SCM fix
// (Ch. 8, Dice et al.).
#include <cstdio>

#include "bench_common.hpp"
#include "locks/backoff_lock.hpp"
#include "locks/scm.hpp"

namespace {

using namespace elision;
using namespace elision::bench;

// RB-tree point under SCM with a given MAX_RETRIES.
double scm_retries_throughput(int max_retries) {
  ds::RbTree tree(128 * 4 + 256);
  support::Xoshiro256 fill(42);
  std::size_t filled = 0;
  while (filled < 128) {
    if (tree.unsafe_insert(fill.next_below(256))) ++filled;
  }
  tree.unsafe_distribute_free_lists(8);
  locks::McsLock main;
  locks::McsLock aux;
  harness::BenchConfig cfg;
  cfg.duration_scale = harness::env_duration_scale();
  const auto stats = harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(256);
    const auto dice = static_cast<int>(rng.next_below(100));
    locks::ScmParams p;
    p.max_retries = max_retries;
    return locks::scm_region(ctx, main, aux, p, [&] {
      if (dice < 50) {
        tree.insert(ctx, key);
      } else {
        tree.erase(ctx, key);
      }
    });
  });
  return stats.throughput();
}

}  // namespace

int main() {
  using namespace elision;
  using namespace elision::bench;

  harness::banner("Ablation: SCM MAX_RETRIES (Sec 5.1 tuning)",
                  "128-node tree, 50i/50d, 8 threads, MCS main lock.\n"
                  "Expect: a plateau around the paper's value of 10; very "
                  "small values give up (and avalanche) too early.");
  {
    harness::Table table({"max-retries", "Mops/s"});
    for (const int r : {0, 1, 2, 5, 10, 20, 50}) {
      table.add_row({harness::fmt_int(r),
                     harness::fmt(scm_retries_throughput(r) / 1e6, 2)});
    }
    table.print();
  }

  harness::banner("Ablation: spurious-abort sensitivity (Sec 2.2)",
                  "HLE-MCS on a lookup-only 2K tree: even pure-read "
                  "workloads serialize when spurious aborts rise.\n"
                  "Expect: non-spec fraction grows with the spurious rate.");
  {
    harness::Table table({"spurious-per-begin", "Mops/s", "nonspec-frac"});
    for (const double p : {0.0, 1e-5, 1e-4, 1e-3, 1e-2}) {
      RbPoint pt;
      pt.size = 2048;
      pt.update_pct = 0;
      pt.lock = LockSel::kMcs;
      pt.scheme = locks::ElisionPolicy::hle();
      // Override the TSX config through a dedicated run.
      ds::RbTree tree(pt.size * 4 + 256);
      support::Xoshiro256 fill(42);
      std::size_t filled = 0;
      while (filled < pt.size) {
        if (tree.unsafe_insert(fill.next_below(pt.size * 2))) ++filled;
      }
      tree.unsafe_distribute_free_lists(8);
      locks::McsLock lock;
      locks::CriticalSection<locks::McsLock> cs(locks::ElisionPolicy::hle(), lock);
      harness::BenchConfig cfg;
      cfg.duration_scale = harness::env_duration_scale();
      cfg.tsx.spurious_per_begin = p;
      cfg.tsx.spurious_per_access = p / 50;  // scale both spurious knobs
      const auto stats = harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
        const std::uint64_t key = ctx.thread().rng().next_below(pt.size * 2);
        return cs.run(ctx, [&] { tree.contains(ctx, key); });
      });
      table.add_row({harness::fmt(p, 5),
                     harness::fmt(stats.throughput() / 1e6, 2),
                     harness::fmt(stats.nonspec_fraction(), 3)});
    }
    table.print();
  }

  harness::banner("Ablation: backoff mitigation vs SCM fix (Ch. 8)",
                  "128-node tree, 50i/50d, 8 threads: TTAS vs "
                  "backoff-TTAS vs TTAS+SCM under HLE.\n"
                  "Expect: backoff softens the avalanche; SCM removes it.");
  {
    harness::Table table({"lock/scheme", "Mops/s", "att/op", "nonspec"});
    auto run_one = [&](const char* name, auto&& runner) {
      ds::RbTree tree(128 * 4 + 256);
      support::Xoshiro256 fill(42);
      std::size_t filled = 0;
      while (filled < 128) {
        if (tree.unsafe_insert(fill.next_below(256))) ++filled;
      }
      tree.unsafe_distribute_free_lists(8);
      harness::BenchConfig cfg;
      cfg.duration_scale = harness::env_duration_scale();
      const auto stats = harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
        auto& rng = ctx.thread().rng();
        const std::uint64_t key = rng.next_below(256);
        const bool ins = rng.next_below(2) == 0;
        return runner(ctx, [&] {
          if (ins) {
            tree.insert(ctx, key);
          } else {
            tree.erase(ctx, key);
          }
        });
      });
      table.add_row({name, harness::fmt(stats.throughput() / 1e6, 2),
                     harness::fmt(stats.attempts_per_op(), 2),
                     harness::fmt(stats.nonspec_fraction(), 3)});
    };
    locks::TtasLock plain;
    run_one("TTAS HLE", [&](tsx::Ctx& ctx, auto body) {
      return locks::hle_region(ctx, plain, body);
    });
    locks::BackoffTtasLock backoff;
    run_one("TTAS-backoff HLE", [&](tsx::Ctx& ctx, auto body) {
      return locks::hle_region(ctx, backoff, body);
    });
    locks::TtasLock scm_main;
    locks::McsLock scm_aux;
    run_one("TTAS HLE-SCM", [&](tsx::Ctx& ctx, auto body) {
      return locks::scm_region(ctx, scm_main, scm_aux, locks::ScmParams{},
                               body);
    });
    table.print();
  }
  return 0;
}
