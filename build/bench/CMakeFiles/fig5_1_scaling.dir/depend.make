# Empty dependencies file for fig5_1_scaling.
# This may be replaced when dependencies are built.
