// The uniform critical-section runner over the evaluated locking schemes
// (Sec. 5.1 Methodology). Scheme selection and tuning travel together in an
// ElisionPolicy (locks/policy.hpp); the legacy Scheme enum still converts
// implicitly for existing call sites.
#pragma once

#include "locks/mcs_lock.hpp"
#include "locks/policy.hpp"
#include "locks/region.hpp"
#include "locks/grouped_scm.hpp"
#include "locks/scm.hpp"
#include "locks/slr.hpp"
#include "support/function_ref.hpp"

namespace elision::locks {

// Runs critical sections under a chosen policy. One instance per (lock,
// policy) pair; shared by all threads (the per-episode SCM/SLR state is
// local to each run() call, per Algorithm 3).
template <typename Lock>
class CriticalSection {
 public:
  CriticalSection(ElisionPolicy policy, Lock& main)
      : policy_(policy), main_(main) {}

  Scheme scheme() const { return policy_.scheme; }
  const ElisionPolicy& policy() const { return policy_; }
  Lock& main_lock() { return main_; }
  McsLock& aux_lock() { return aux_; }

  RegionResult run(tsx::Ctx& ctx, support::FunctionRef<void()> body) {
    switch (policy_.scheme) {
      case Scheme::kStandard: {
        RegionResult r;
        complete_locked(ctx, main_, r, body);
        return r;
      }
      case Scheme::kHle:
        return hle_region(ctx, main_, policy_.retry, body);
      case Scheme::kRtmElide:
        return rtm_elide_region(ctx, main_, policy_.retry, body);
      case Scheme::kHleScm:
      case Scheme::kHleScmNested:
        return scm_region(ctx, main_, aux_, policy_.scm, body);
      case Scheme::kPesSlr:
      case Scheme::kOptSlr:
      case Scheme::kOptSlrScm:
        return slr_region(ctx, main_, aux_, policy_.slr, body);
      case Scheme::kHleGroupedScm:
        return grouped_scm_region(ctx, main_, aux_bank_, policy_.grouped,
                                  body);
    }
    ELISION_CHECK_MSG(false, "unknown scheme");
    return {};
  }

 private:
  ElisionPolicy policy_;
  Lock& main_;
  // The auxiliary lock must be starvation-free (Ch. 4): MCS.
  McsLock aux_;
  // Auxiliary lock groups for the grouped-SCM extension.
  AuxLockBank<McsLock, 8> aux_bank_;
};

}  // namespace elision::locks
