// Deterministic host-thread fan-out for independent simulations.
//
// Every unit of work this repo runs — one stress case, one benchmark seed,
// one STAMP configuration — is an independent Scheduler+Engine instance
// with no shared mutable state, executed entirely on whichever host thread
// picks it up (fibers never migrate mid-run). parallel_for_each() executes
// such jobs on up to n_threads host threads while keeping the *observable*
// result identical to a sequential run:
//
//  * item-order merging — jobs write only into their own item's slot, and
//    callers aggregate the slots in item order after the call returns, so
//    output is byte-identical no matter which thread ran which item when;
//  * no work stealing, no persistent pool — workers claim the next item
//    from a shared atomic cursor and exit when the items run out, so there
//    is no queue state to leak between calls and nothing for TSan to see
//    beyond the cursor, the cancel flag, and the thread joins;
//  * deterministic failure — if jobs throw, every worker stops claiming
//    new items and the exception of the *lowest item index that actually
//    ran* is rethrown in the caller (with one thread this degenerates to
//    exactly the sequential first-throw behaviour).
//
// With n_threads <= 1 (or a single item) everything runs inline on the
// calling thread, in item order, with zero thread machinery — the
// sequential and parallel paths share one code shape, which is what makes
// the byte-identity contract checkable (scripts/check.sh does).
//
// Jobs must not touch host-global mutable state. The audit that makes the
// simulator safe to run concurrently: Telemetry sinks and MetricsRegistry
// instances are per-run (src/harness/runner.cpp) or merged post-hoc, the
// ASan fiber-switch bookkeeping is thread_local (src/sim/fiber.cpp), and
// the ELISION_BENCH_SCALE warning is a std::once_flag.
#pragma once

#include <cstddef>

#include "support/function_ref.hpp"

namespace elision::support {

// Executes fn(0) .. fn(n_items-1), each exactly once, on up to n_threads
// host threads (including the calling thread, which participates). Returns
// after every started job finished. n_threads <= 1 runs inline.
//
// fn must be safe to call concurrently for distinct items and must confine
// its writes to per-item state; the caller merges in item order.
void parallel_for_each(std::size_t n_items,
                       support::FunctionRef<void(std::size_t)> fn,
                       int n_threads);

// Hardware concurrency of the host, >= 1 (0 when unknown is mapped to 1).
// The conventional value for "--host-threads 0 = auto" flags.
int host_hardware_threads();

}  // namespace elision::support
