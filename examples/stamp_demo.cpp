// Runs one STAMP application (default: intruder) under every scheme and
// prints the normalized run times — a one-binary tour of Figure 5.4.
//
//   usage: stamp_demo [genome|intruder|kmeans_high|kmeans_low|ssca2|
//                      vacation_high|vacation_low]
#include <cstdio>
#include <cstring>
#include <string>

#include "stamp/common.hpp"

using namespace elision;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "intruder";
  bool known = false;
  for (const char* name : stamp::kAppNames) {
    if (app == name) known = true;
  }
  if (!known) {
    std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
    return 1;
  }

  std::printf("STAMP '%s', 8 threads, TTAS and MCS locks:\n\n", app.c_str());
  for (const auto lock : {stamp::LockKind::kTtas, stamp::LockKind::kMcs}) {
    stamp::StampConfig cfg;
    cfg.lock = lock;
    cfg.scale = 0.5;
    cfg.scheme = locks::Scheme::kStandard;
    const auto base = stamp::run_app(app, cfg);
    std::printf("%s lock (standard run: %.2f simulated ms)\n",
                stamp::lock_name(lock),
                1e3 * base.seconds(cfg.machine.ghz));
    for (const auto scheme : locks::kAllSixSchemes) {
      cfg.scheme = scheme;
      const auto r = stamp::run_app(app, cfg);
      std::printf("  %-12s normalized time %.3f   attempts/op %.2f   %s\n",
                  locks::scheme_name(scheme),
                  static_cast<double>(r.elapsed_cycles) / base.elapsed_cycles,
                  r.attempts_per_op(),
                  r.invariants_ok ? "ok" : "INVARIANTS VIOLATED");
    }
    std::printf("\n");
  }
  return 0;
}
