// Randomized property tests of the engine's transactional guarantees:
// atomicity, isolation/opacity, and progress, under every scheme, with
// spurious aborts enabled and randomized workload shapes. These sweep many
// seeds (deterministically) and check invariants rather than exact outputs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ds/rbtree.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "support/rng.hpp"
#include "tsx/shared.hpp"

namespace elision {
namespace {

sim::MachineConfig machine_with_seed(std::uint64_t seed) {
  sim::MachineConfig m;
  m.seed = seed;
  return m;
}

// ---------------------------------------------------------------------------
// Atomicity: transfers between random cells conserve the total sum.
// ---------------------------------------------------------------------------

class TransferFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TransferFuzz, SumConservedUnderRandomTransfers) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  constexpr int kCells = 24;
  constexpr std::int64_t kInitial = 100;
  std::vector<support::CacheAligned<tsx::Shared<std::int64_t>>> cells(kCells);
  for (auto& c : cells) c.value.unsafe_set(kInitial);

  sim::Scheduler sched(machine_with_seed(seed));
  tsx::Engine eng(sched);  // default config: spurious aborts ON
  locks::TtasLock lock;
  // Use a different scheme per seed to cover the whole matrix over the
  // parameter sweep.
  const locks::Scheme scheme =
      locks::kAllSixSchemes[seed % std::size(locks::kAllSixSchemes)];
  locks::CriticalSection<locks::TtasLock> cs(locks::ElisionPolicy::from_scheme(scheme), lock);

  for (int t = 0; t < 6; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 120; ++k) {
        const auto from = st.rng().next_below(kCells);
        const auto to = st.rng().next_below(kCells);
        const auto amount = static_cast<std::int64_t>(st.rng().next_below(7));
        cs.run(ctx, [&] {
          auto& a = cells[from].value;
          auto& b = cells[to].value;
          const std::int64_t av = a.load(ctx);
          a.store(ctx, av - amount);
          b.store(ctx, b.load(ctx) + amount);
        });
      }
    });
  }
  sched.run();
  std::int64_t sum = 0;
  for (auto& c : cells) sum += c.value.unsafe_get();
  EXPECT_EQ(sum, kCells * kInitial) << "scheme " << locks::scheme_name(scheme);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferFuzz, ::testing::Range(0, 18));

// ---------------------------------------------------------------------------
// Opacity: committed transactions only see invariant-consistent states.
// ---------------------------------------------------------------------------

class InvariantFuzz : public ::testing::TestWithParam<int> {};

TEST_P(InvariantFuzz, CommittedReadersSeeConsistentSnapshots) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  // Writers keep cells[0..3] all equal inside their critical sections but
  // break the invariant transiently; committed speculative readers must
  // never observe a mix.
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> cells(4);
  bool torn = false;

  sim::Scheduler sched(machine_with_seed(seed * 977 + 3));
  tsx::Engine eng(sched);
  locks::TtasLock lock;
  const locks::Scheme scheme =
      locks::kAllSixSchemes[(seed + 2) % std::size(locks::kAllSixSchemes)];
  locks::CriticalSection<locks::TtasLock> cs(locks::ElisionPolicy::from_scheme(scheme), lock);

  for (int t = 0; t < 3; ++t) {
    sched.spawn([&](sim::SimThread& st) {  // writers
      auto& ctx = eng.context(st);
      for (int k = 0; k < 80; ++k) {
        cs.run(ctx, [&] {
          const std::uint64_t next = cells[0].value.load(ctx) + 1;
          for (auto& c : cells) {
            c.value.store(ctx, next);
            ctx.engine().compute(ctx, 30 + st.rng().next_below(60));
          }
        });
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    sched.spawn([&](sim::SimThread& st) {  // readers
      auto& ctx = eng.context(st);
      for (int k = 0; k < 120; ++k) {
        std::uint64_t seen[4];
        cs.run(ctx, [&] {
          for (int i = 0; i < 4; ++i) {
            seen[i] = cells[i].value.load(ctx);
            ctx.engine().compute(ctx, 20 + st.rng().next_below(40));
          }
        });
        for (int i = 1; i < 4; ++i) {
          if (seen[i] != seen[0]) torn = true;
        }
      }
    });
  }
  sched.run();
  EXPECT_FALSE(torn) << "scheme " << locks::scheme_name(scheme);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(cells[i].value.unsafe_get(), cells[0].value.unsafe_get());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantFuzz, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Structural soundness: random tree workloads under random machine shapes.
// ---------------------------------------------------------------------------

class TreeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TreeFuzz, TreeStaysValidUnderRandomMachines) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  support::Xoshiro256 meta(seed * 31 + 7);
  sim::MachineConfig m;
  m.seed = meta.next();
  m.n_cores = 1 + static_cast<unsigned>(meta.next_below(6));
  m.smt_per_core = 1 + static_cast<unsigned>(meta.next_below(2));
  m.yield_slack_cycles = meta.next_below(3) == 0 ? 200 : 0;
  const int threads = 2 + static_cast<int>(meta.next_below(7));
  const std::size_t size = 8u << meta.next_below(5);
  const int update_pct = 20 + static_cast<int>(meta.next_below(81));

  ds::RbTree tree(size * 4 + 128);
  support::Xoshiro256 fill(meta.next());
  std::size_t filled = 0;
  while (filled < size) {
    if (tree.unsafe_insert(fill.next_below(size * 2))) ++filled;
  }
  tree.unsafe_distribute_free_lists(threads);

  sim::Scheduler sched(m);
  tsx::Engine eng(sched);
  locks::McsLock lock;
  const locks::Scheme scheme =
      locks::kAllSixSchemes[seed % std::size(locks::kAllSixSchemes)];
  locks::CriticalSection<locks::McsLock> cs(locks::ElisionPolicy::from_scheme(scheme), lock);
  for (int t = 0; t < threads; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 80; ++k) {
        const std::uint64_t key = st.rng().next_below(size * 2);
        const auto dice = static_cast<int>(st.rng().next_below(100));
        cs.run(ctx, [&] {
          if (dice < update_pct / 2) {
            tree.insert(ctx, key);
          } else if (dice < update_pct) {
            tree.erase(ctx, key);
          } else {
            tree.contains(ctx, key);
          }
        });
      }
    });
  }
  sched.run();
  std::string why;
  EXPECT_TRUE(tree.unsafe_validate(&why))
      << why << " (seed " << seed << ", scheme " << locks::scheme_name(scheme)
      << ", threads " << threads << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeFuzz, ::testing::Range(0, 24));

// ---------------------------------------------------------------------------
// Mixed direct + transactional traffic (lock-free counters next to
// critical sections) must never lose updates.
// ---------------------------------------------------------------------------

class MixedFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MixedFuzz, DirectRmwAndTransactionsInterleave) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  support::CacheAligned<tsx::Shared<std::uint64_t>> tx_counter;
  support::CacheAligned<tsx::Shared<std::uint64_t>> direct_counter;
  sim::Scheduler sched(machine_with_seed(seed * 131 + 1));
  tsx::Engine eng(sched);
  constexpr int kThreads = 6, kIters = 150;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < kIters; ++k) {
        if (st.rng().next_below(2) == 0) {
          // Transactional increment with a direct-RMW fallback.
          const unsigned status = eng.run_transaction(ctx, [&] {
            tx_counter.value.store(ctx, tx_counter.value.load(ctx) + 1);
          });
          if (status != tsx::kCommitted) tx_counter.value.fetch_add(ctx, 1);
        } else {
          direct_counter.value.fetch_add(ctx, 1);
        }
      }
    });
  }
  sched.run();
  EXPECT_EQ(tx_counter.value.unsafe_get() + direct_counter.value.unsafe_get(),
            kThreads * kIters);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace elision
