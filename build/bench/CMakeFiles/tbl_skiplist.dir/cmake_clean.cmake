file(REMOVE_RECURSE
  "CMakeFiles/tbl_skiplist.dir/tbl_skiplist.cpp.o"
  "CMakeFiles/tbl_skiplist.dir/tbl_skiplist.cpp.o.d"
  "tbl_skiplist"
  "tbl_skiplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
