// Minimal stackful fibers (user-level cooperative contexts).
//
// The simulator multiplexes all logical threads of the simulated machine onto
// the single host thread. A context switch saves the SysV x86-64 callee-saved
// registers and swaps stacks; it costs ~10ns, which keeps per-memory-access
// yielding affordable.
//
// Invariants:
//  * A fiber entry function must call Fiber::on_fiber_entry() before any
//    other work (sanitizer stack-switch bookkeeping; free otherwise).
//  * A fiber entry function must never return through the trampoline; the
//    scheduler switches away from a finishing fiber (enforced with a trap).
//  * Exceptions must be caught within the fiber that threw them; unwinding
//    across a switch is undefined.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace elision::sim {

class Fiber {
 public:
  using Entry = void (*)(void* arg);

  // Constructs a "host" fiber: a save-slot for the context that calls
  // switch_to() first. It owns no stack.
  Fiber() = default;

  // Constructs a runnable fiber that will invoke entry(arg) on its own stack
  // when first switched to.
  Fiber(Entry entry, void* arg, std::size_t stack_bytes);

  // Releases sanitizer bookkeeping for owned stacks (TSan fiber contexts).
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Suspends `from` (the currently running context) and resumes `to`.
  // Returns when something later switches back to `from`.
  static void switch_to(Fiber& from, Fiber& to);

  // Must be called first thing inside a fiber's entry function, before any
  // other work on the fresh stack. No-op unless compiled under ASan, where
  // it completes the sanitizer's stack-switch bookkeeping (a fresh fiber
  // never returns through the switch_to() that started it, so the matching
  // __sanitizer_finish_switch_fiber has to run here).
  static void on_fiber_entry();

  // Internal (ASan bookkeeping): records this fiber's stack bounds if they
  // are not known yet. The host fiber owns no stack, so its bounds are
  // learned from the sanitizer the first time it switches away.
  void note_stack_bounds(const void* bottom, std::size_t size) {
    if (asan_stack_bottom_ == nullptr) {
      asan_stack_bottom_ = bottom;
      asan_stack_size_ = size;
    }
  }

 private:
  void* sp_ = nullptr;  // saved stack pointer while suspended
  std::unique_ptr<std::byte[]> stack_;
  // ASan stack-switch bookkeeping (unused otherwise; kept unconditional so
  // the layout does not depend on compile flags). The host fiber's bounds
  // start unknown and are learned at its first switch away.
  const void* asan_stack_bottom_ = nullptr;
  std::size_t asan_stack_size_ = 0;
  void* asan_fake_stack_ = nullptr;
  // TSan fiber context (unused outside TSan builds). Owned (created in the
  // stackful constructor, destroyed in ~Fiber) iff stack_ is set; the host
  // fiber borrows its thread's context at its first switch away instead.
  void* tsan_fiber_ = nullptr;
};

}  // namespace elision::sim
