// Per-thread transactional execution statistics.
#pragma once

#include <array>
#include <cstdint>

#include "tsx/abort.hpp"

namespace elision::tsx {

struct TxStats {
  std::uint64_t begins = 0;    // transactions started
  std::uint64_t commits = 0;   // transactions committed
  std::uint64_t aborts = 0;    // transactions aborted (any cause)
  std::array<std::uint64_t, static_cast<std::size_t>(AbortCause::kCauseCount)>
      aborts_by_cause{};

  void record_abort(AbortCause cause) {
    ++aborts;
    ++aborts_by_cause[static_cast<std::size_t>(cause)];
  }

  TxStats& operator+=(const TxStats& o) {
    begins += o.begins;
    commits += o.commits;
    aborts += o.aborts;
    for (std::size_t i = 0; i < aborts_by_cause.size(); ++i) {
      aborts_by_cause[i] += o.aborts_by_cause[i];
    }
    return *this;
  }
};

}  // namespace elision::tsx
