// Ablation — the future-work extension (Ch. 4 Remark): grouped conflict
// management, serializing only threads that conflicted on the same cache
// line (using the simulated hardware's abort-location feedback).
//
// Finding (documented in EXPERIMENTS.md): grouping by conflict line reaches
// parity with single-aux SCM at best. Two effects limit it: (1) aborts
// caused by an acquired main lock carry no conflict location to group by,
// and (2) fresh first-attempt speculators race the auxiliary-lock holder,
// so in hammering regimes the MAX_RETRIES give-up path dominates both
// schemes. Serializing by conflict *graph* (as the remark hints) would need
// more than per-abort locations.
#include <cstdio>
#include <vector>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "locks/grouped_scm.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/scm.hpp"
#include "locks/ttas_lock.hpp"
#include "tsx/shared.hpp"

namespace {

using namespace elision;

std::uint64_t run(bool grouped, int groups_n, std::uint64_t cs_compute,
                  double conflict_prob) {
  sim::MachineConfig m;
  tsx::TsxConfig tc;
  locks::TtasLock main;
  locks::AuxLockBank<locks::McsLock, 8> bank;
  locks::McsLock single_aux;
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> hot(groups_n);
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> priv(8);
  sim::Scheduler sched(m);
  tsx::Engine eng(sched, tc);
  std::uint64_t ops = 0;
  for (int t = 0; t < 8; ++t) {
    sched.spawn([&, t](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      auto& mine = hot[t % groups_n].value;
      auto& own = priv[t].value;
      while (!st.stop_requested()) {
        const bool conflicting = st.rng().next_double() < conflict_prob;
        auto body = [&] {
          auto& target = conflicting ? mine : own;
          target.store(ctx, target.load(ctx) + 1);
          ctx.engine().compute(ctx, cs_compute);
        };
        if (grouped) {
          locks::grouped_scm_region(ctx, main, bank,
                                    locks::GroupedScmParams{}, body);
        } else {
          locks::scm_region(ctx, main, single_aux, locks::ScmParams{}, body);
        }
        ++ops;
      }
    });
  }
  sched.run_for(sched.config().cycles(0.0005 * harness::env_duration_scale()));
  return ops;
}

}  // namespace

int main() {
  using namespace elision;
  harness::banner("Ablation: grouped SCM (future work, Ch. 4 Remark)",
                  "Throughput of single-aux SCM vs per-conflict-line "
                  "grouped SCM, 8 threads.\n"
                  "Finding: parity at best — see the header comment.");
  harness::Table table({"hot-words", "cs-cycles", "conflict-prob",
                        "single-SCM ops", "grouped-SCM ops", "ratio"});
  for (const int groups : {2, 4}) {
    for (const std::uint64_t compute : {300ULL, 2000ULL}) {
      for (const double p : {1.0, 0.3}) {
        const std::uint64_t s = run(false, groups, compute, p);
        const std::uint64_t g = run(true, groups, compute, p);
        table.add_row({harness::fmt_int(groups), harness::fmt_int(compute),
                       harness::fmt(p, 1), harness::fmt_int(s),
                       harness::fmt_int(g),
                       harness::fmt(static_cast<double>(g) / s, 2)});
      }
    }
  }
  table.print();
  return 0;
}
