// A B+tree over simulated shared memory — the range-scan workload of the
// shared-mode elision study (Brown's HTM-tree template is the shape
// exemplar; see PAPERS.md).
//
// Like RbTree, every node field is a tsx::Shared word, so operations inside
// a critical section are transactional (or direct) according to the
// thread's state and an abort rolls back partial splits. The fanout is kept
// small (8 keys per node) so a lookup's read set stays a handful of cache
// lines and range scans grow it linearly with the scanned prefix — exactly
// the footprint contrast between point and scan operations the btree bench
// points rely on.
//
// Structure: all keys and values live in the leaves; leaves form a singly
// linked chain for range scans; internal separators route key k to child i
// where i = #{separators <= k}. Inserts split full children on the way down
// (preemptive splitting), so a parent always has room for the promoted
// separator. Erase removes the key from its leaf without rebalancing — an
// emptied leaf keeps its position in the chain and its (now unbacked)
// separator in the parent, which is harmless for correctness and bounds the
// node count by the key domain (the workloads draw keys from a fixed
// domain).
//
// Not thread-safe by itself: the caller serializes operations with a global
// two-mode lock — lookups and scans in shared mode, mutations exclusive.
#pragma once

#include <array>
#include <vector>
#include <cstdint>
#include <string>
#include <vector>

#include "support/align.hpp"
#include "tsx/config.hpp"
#include "tsx/shared.hpp"

namespace elision::ds {

class BplusTree {
 public:
  // Max keys per node. Even, so a leaf split leaves both halves at
  // kMaxKeys/2.
  static constexpr int kMaxKeys = 8;

  // `capacity` bounds the number of nodes ever in use. Splits are the only
  // allocation and nothing is ever freed, so 2 * (key-domain size) / 2 + a
  // root is always enough; the workloads size it from their key domain.
  // `max_threads` sizes the per-thread free lists (see n_free_lists_
  // below); the default preserves the historical 64-thread pool layout.
  explicit BplusTree(std::size_t capacity,
                     int max_threads = tsx::kDefaultPoolThreads);

  BplusTree(const BplusTree&) = delete;
  BplusTree& operator=(const BplusTree&) = delete;

  // Returns false if the key was already present (the value is not
  // updated).
  bool insert(tsx::Ctx& ctx, std::uint64_t key, std::uint64_t value);
  // Returns false if the key was absent.
  bool erase(tsx::Ctx& ctx, std::uint64_t key);
  // Returns true and fills *value if the key is present.
  bool lookup(tsx::Ctx& ctx, std::uint64_t key, std::uint64_t* value);
  // Range scan: visits up to `limit` keys >= lo in ascending order, summing
  // their values into *sum. Returns the number of keys visited.
  std::size_t range_sum(tsx::Ctx& ctx, std::uint64_t lo, std::size_t limit,
                        std::uint64_t* sum);

  // --- setup/verification helpers (no simulated threads running) ---
  bool unsafe_insert(std::uint64_t key, std::uint64_t value);
  // Distributes the remaining free nodes round-robin over the first
  // n_threads per-thread caches. Call once after prefilling.
  void unsafe_distribute_free_lists(int n_threads);
  std::size_t unsafe_size() const;
  // Validates the B+tree invariants (sorted keys, separator bounds, uniform
  // leaf depth, leaf chain consistent with the tree) and that the free
  // lists account for every unused node. Returns false (and fills *why) on
  // violation.
  bool unsafe_validate(std::string* why = nullptr) const;
  std::vector<std::uint64_t> unsafe_keys() const;

 private:
  struct alignas(support::kCacheLineBytes) Node {
    tsx::Shared<std::uint64_t> leaf;   // 1 = leaf
    tsx::Shared<std::uint64_t> count;  // live keys
    tsx::Shared<Node*> next;           // leaf chain; free-list threading
    std::array<tsx::Shared<std::uint64_t>, kMaxKeys> keys;
    std::array<tsx::Shared<std::uint64_t>, kMaxKeys> vals;  // leaves only
    std::array<tsx::Shared<Node*>, kMaxKeys + 1> kids;      // internal only
  };

  Node* alloc(tsx::Ctx& ctx);
  // Splits the full i-th child of `parent` (which must have room).
  void split_child(tsx::Ctx& ctx, Node* parent, int i);
  // Child index routing `key` within internal node `n`: #{separators <= key}.
  int child_index(tsx::Ctx& ctx, Node* n, std::uint64_t key);
  // Descends to the leaf that covers `key` (read-only; no splitting).
  Node* descend(tsx::Ctx& ctx, std::uint64_t key);

  Node* unsafe_alloc();
  void unsafe_split_child(Node* parent, int i);

  std::vector<Node> arena_;
  tsx::Shared<Node*> root_;
  // Per-thread free lists (threaded through `next`), as in RbTree: without
  // thread caching every split would conflict on one allocator word. Slot
  // One free list per supported simulated thread + one setup/global list
  // (slot n_free_lists_ - 1). Sized at construction: the alloc() fallback
  // scan performs a simulated load per list, so the count is part of the
  // simulated workload and defaults to the historical 64-thread sizing
  // (tsx::kDefaultPoolThreads) rather than tracking kMaxThreads.
  const int n_free_lists_;
  std::vector<support::CacheAligned<tsx::Shared<Node*>>> free_;
};

}  // namespace elision::ds
