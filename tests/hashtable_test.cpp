// Hash table tests: oracle comparison, upsert semantics, concurrent sweeps.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ds/hashtable.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "support/rng.hpp"

namespace elision::ds {
namespace {

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

tsx::TsxConfig quiet_tsx() {
  tsx::TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

void run_single(const std::function<void(tsx::Ctx&)>& body) {
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) { body(eng.context(st)); });
  sched.run();
}

TEST(HashTable, BasicInsertLookupErase) {
  HashTable ht(64, 128);
  run_single([&](tsx::Ctx& ctx) {
    EXPECT_TRUE(ht.insert(ctx, 1, 100));
    EXPECT_FALSE(ht.insert(ctx, 1, 200));  // duplicate key
    std::uint64_t v = 0;
    EXPECT_TRUE(ht.lookup(ctx, 1, &v));
    EXPECT_EQ(v, 100u);
    EXPECT_FALSE(ht.lookup(ctx, 2, &v));
    EXPECT_TRUE(ht.erase(ctx, 1));
    EXPECT_FALSE(ht.erase(ctx, 1));
    EXPECT_FALSE(ht.contains(ctx, 1));
  });
  EXPECT_EQ(ht.unsafe_size(), 0u);
}

TEST(HashTable, UpsertAddInsertsThenAccumulates) {
  HashTable ht(64, 128);
  run_single([&](tsx::Ctx& ctx) {
    EXPECT_EQ(ht.upsert_add(ctx, 7, 5), 5u);
    EXPECT_EQ(ht.upsert_add(ctx, 7, 3), 8u);
    EXPECT_EQ(ht.upsert_add(ctx, 8, 1), 1u);
    std::uint64_t v = 0;
    EXPECT_TRUE(ht.lookup(ctx, 7, &v));
    EXPECT_EQ(v, 8u);
  });
  EXPECT_EQ(ht.unsafe_size(), 2u);
}

TEST(HashTable, ChainsHandleBucketCollisions) {
  HashTable ht(1, 64);  // a single bucket: everything chains
  run_single([&](tsx::Ctx& ctx) {
    for (std::uint64_t k = 1; k <= 40; ++k) {
      ASSERT_TRUE(ht.insert(ctx, k, k * 10));
    }
    for (std::uint64_t k = 1; k <= 40; ++k) {
      std::uint64_t v = 0;
      ASSERT_TRUE(ht.lookup(ctx, k, &v));
      EXPECT_EQ(v, k * 10);
    }
    // Erase from the middle, head, and tail of the chain.
    EXPECT_TRUE(ht.erase(ctx, 20));
    EXPECT_TRUE(ht.erase(ctx, 40));
    EXPECT_TRUE(ht.erase(ctx, 1));
    EXPECT_FALSE(ht.contains(ctx, 20));
    EXPECT_TRUE(ht.contains(ctx, 2));
  });
  EXPECT_EQ(ht.unsafe_size(), 37u);
}

TEST(HashTable, RandomOracleAgainstStdUnorderedMap) {
  HashTable ht(256, 1100);
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  support::Xoshiro256 rng(123);
  run_single([&](tsx::Ctx& ctx) {
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t key = rng.next_below(1024);
      switch (rng.next_below(4)) {
        case 0: {
          const bool inserted = ht.insert(ctx, key, key + 1);
          EXPECT_EQ(inserted, oracle.emplace(key, key + 1).second);
          break;
        }
        case 1:
          EXPECT_EQ(ht.erase(ctx, key), oracle.erase(key) == 1);
          break;
        case 2: {
          std::uint64_t v = 0;
          const bool found = ht.lookup(ctx, key, &v);
          const auto it = oracle.find(key);
          EXPECT_EQ(found, it != oracle.end());
          if (found) {
            EXPECT_EQ(v, it->second);
          }
          break;
        }
        default: {
          const std::uint64_t nv = ht.upsert_add(ctx, key, 2);
          auto [it, fresh] = oracle.emplace(key, 2);
          if (!fresh) it->second += 2;
          EXPECT_EQ(nv, it->second);
          break;
        }
      }
    }
  });
  EXPECT_EQ(ht.unsafe_size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    std::uint64_t got = 0;
    ASSERT_TRUE(ht.unsafe_lookup(k, &got)) << k;
    EXPECT_EQ(got, v);
  }
}

TEST(HashTable, AbortRollsBackInsertAndAllocator) {
  HashTable ht(64, 128);
  run_single([&](tsx::Ctx& ctx) {
    ht.insert(ctx, 1, 1);
    const unsigned st = ctx.engine().run_transaction(ctx, [&] {
      ht.insert(ctx, 2, 2);
      ht.erase(ctx, 1);
      ctx.engine().xabort(ctx, 9);
    });
    EXPECT_NE(st, tsx::kCommitted);
    EXPECT_TRUE(ht.contains(ctx, 1));
    EXPECT_FALSE(ht.contains(ctx, 2));
  });
  EXPECT_EQ(ht.unsafe_size(), 1u);
}

struct HtParam {
  locks::Scheme scheme;
  bool mcs;
};

std::string ht_param_name(const ::testing::TestParamInfo<HtParam>& info) {
  std::string s = locks::scheme_name(info.param.scheme);
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s + (info.param.mcs ? "_MCS" : "_TTAS");
}

class HashTableConcurrent : public ::testing::TestWithParam<HtParam> {};

TEST_P(HashTableConcurrent, ValueSumConserved) {
  // Every operation adds exactly 1 to some key; the final sum of all values
  // must equal the operation count regardless of scheme/interleaving.
  const auto p = GetParam();
  HashTable ht(256, 2048);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  constexpr int kThreads = 8, kIters = 80;

  auto run_with = [&](auto& lock) {
    using Lock = std::remove_reference_t<decltype(lock)>;
    locks::CriticalSection<Lock> cs(locks::ElisionPolicy::from_scheme(p.scheme), lock);
    for (int t = 0; t < kThreads; ++t) {
      sched.spawn([&](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        auto& rng = st.rng();
        for (int k = 0; k < kIters; ++k) {
          const std::uint64_t key = rng.next_below(64) + 1;
          cs.run(ctx, [&] { ht.upsert_add(ctx, key, 1); });
        }
      });
    }
    sched.run();
  };
  if (p.mcs) {
    locks::McsLock lock;
    run_with(lock);
  } else {
    locks::TtasLock lock;
    run_with(lock);
  }

  std::uint64_t sum = 0;
  for (std::uint64_t k = 1; k <= 64; ++k) {
    std::uint64_t v = 0;
    if (ht.unsafe_lookup(k, &v)) sum += v;
  }
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kThreads) * kIters);
}

std::vector<HtParam> ht_params() {
  std::vector<HtParam> out;
  for (const auto scheme : locks::kAllSixSchemes) {
    for (const bool mcs : {false, true}) out.push_back({scheme, mcs});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HashTableConcurrent,
                         ::testing::ValuesIn(ht_params()), ht_param_name);

}  // namespace
}  // namespace elision::ds
