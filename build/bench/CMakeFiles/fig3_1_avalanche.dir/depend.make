# Empty dependencies file for fig3_1_avalanche.
# This may be replaced when dependencies are built.
