// A fixed-work engine/scheduler microbenchmark registered as a suite point.
//
// Unlike the RB-tree points (fixed *virtual* duration, so their host wall
// time floats with simulator speed but their simulated metrics do not), this
// point performs a fixed number of RTM transactions over a small shared
// array. Its simulated metrics are deterministic per seed, and its host wall
// time divided into the fixed operation count — the suite's sim_ops_per_sec
// metric — measures how fast the simulator itself executes. Gating that
// metric against bench/baseline.json catches host-side performance
// regressions of the engine hot path that no virtual-time metric can see.
#pragma once

#include <cstdint>

#include "harness/runner.hpp"

namespace elision::harness {

struct MicroPoint {
  int threads = 8;
  std::uint64_t ops_per_thread = 25000;
  std::size_t array_words = 1024;  // shared array the transactions touch
  // Every `shared_period`-th op touches the shared hot region instead of the
  // thread's own stripe (power of two). Big-machine points use a sparser
  // period: 64 threads hammering one line every 16th op is all aborts, which
  // measures the retry loop rather than the engine hot path.
  std::uint64_t shared_period = 16;
  std::uint64_t seed = 42;
  // Machine-shape overrides for big-machine scaling points; 0 keeps the
  // MachineConfig default (the paper's 4-core / 2-SMT i7).
  unsigned n_cores = 0;
  unsigned smt_per_core = 0;
  std::uint64_t yield_slack_cycles = 0;
};

// Runs the fixed-work microbenchmark once; fully deterministic per seed.
RunStats run_micro_point(const MicroPoint& p);

}  // namespace elision::harness
