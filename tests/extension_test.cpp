// Tests for the extensions beyond the paper's evaluated artifacts: abort
// feedback (conflict line/thread), the grouped-SCM future-work scheme, the
// execution trace, and the backoff TTAS lock.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "locks/backoff_lock.hpp"
#include "locks/grouped_scm.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "tsx/shared.hpp"
#include "tsx/trace.hpp"

namespace elision {
namespace {

using tsx::Ctx;

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

tsx::TsxConfig quiet_tsx() {
  tsx::TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

// ---------------------------------------------------------------------------
// Abort feedback
// ---------------------------------------------------------------------------

TEST(AbortFeedback, ConflictLineAndThreadReported) {
  support::CacheAligned<tsx::Shared<std::uint64_t>> hot;
  support::LineId reported_line = 0;
  int reported_thread = -2;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    const unsigned status = eng.run_transaction(ctx, [&] {
      (void)hot.value.load(ctx);
      ctx.engine().compute(ctx, 2000);
      (void)hot.value.load(ctx);
    });
    EXPECT_NE(status, tsx::kCommitted);
    reported_line = ctx.last_conflict_line();
    reported_thread = ctx.last_conflict_thread();
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 300);
    hot.value.store(ctx, 1);  // direct write aborts the reader
  });
  sched.run();
  EXPECT_EQ(reported_line, support::line_of(&hot.value));
  EXPECT_EQ(reported_thread, 1);
}

TEST(AbortFeedback, NonConflictAbortsCarryNoLocation) {
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    eng.run_transaction(ctx, [&] { eng.xabort(ctx, 1); });
    EXPECT_EQ(ctx.last_conflict_line(), 0u);
    EXPECT_EQ(ctx.last_conflict_thread(), -1);
  });
  sched.run();
}

// ---------------------------------------------------------------------------
// Grouped SCM
// ---------------------------------------------------------------------------

TEST(GroupedScm, ConflictingThreadsProgress) {
  locks::TtasLock main;
  locks::AuxLockBank<locks::McsLock, 8> bank;
  tsx::Shared<std::uint64_t> hot(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  constexpr int kThreads = 8, kIters = 120;
  std::uint64_t nonspec = 0;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < kIters; ++k) {
        const auto r = locks::grouped_scm_region(
            ctx, main, bank, locks::GroupedScmParams{}, [&] {
              hot.store(ctx, hot.load(ctx) + 1);
            });
        if (!r.speculative) ++nonspec;
      }
    });
  }
  sched.run();
  EXPECT_EQ(hot.unsafe_get(), kThreads * kIters);
  EXPECT_LT(static_cast<double>(nonspec) / (kThreads * kIters), 0.1);
}

TEST(GroupedScm, DisjointConflictGroupsKeepParity) {
  // Two independent hot pairs. The future-work hypothesis (Ch. 4 Remark) is
  // that per-conflict-line groups beat one global serializer. Our ablation
  // (bench/abl_grouped_scm) finds parity at best in hammering regimes: the
  // give-up path and first-attempt racers dominate, and lock-busy aborts
  // carry no conflict line to group by. This test pins the implementation
  // to correctness and rough parity (within 35% of single-aux SCM).
  locks::TtasLock main_grouped, main_single;
  locks::AuxLockBank<locks::McsLock, 8> bank;
  locks::McsLock single_aux;
  support::CacheAligned<tsx::Shared<std::uint64_t>> hot_a, hot_b;

  auto run = [&](bool grouped, auto& main) {
    sim::Scheduler sched(quiet_machine());
    tsx::Engine eng(sched, quiet_tsx());
    hot_a.value.unsafe_set(0);
    hot_b.value.unsafe_set(0);
    for (int t = 0; t < 8; ++t) {
      sched.spawn([&, t](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        auto& mine = (t % 2 == 0) ? hot_a.value : hot_b.value;
        while (!st.stop_requested()) {
          if (grouped) {
            locks::grouped_scm_region(ctx, main, bank,
                                      locks::GroupedScmParams{}, [&] {
                                        mine.store(ctx, mine.load(ctx) + 1);
                                        ctx.engine().compute(ctx, 300);
                                      });
          } else {
            locks::scm_region(ctx, main, single_aux, locks::ScmParams{}, [&] {
              mine.store(ctx, mine.load(ctx) + 1);
              ctx.engine().compute(ctx, 300);
            });
          }
        }
      });
    }
    sched.run_for(400000);
    return hot_a.value.unsafe_get() + hot_b.value.unsafe_get();
  };

  const std::uint64_t single = run(false, main_single);
  const std::uint64_t multi = run(true, main_grouped);
  EXPECT_GT(static_cast<double>(multi),
            0.65 * static_cast<double>(single));
}

TEST(GroupedScm, GivesUpAfterMaxRetries) {
  locks::TtasLock main;
  locks::AuxLockBank<locks::McsLock, 8> bank;
  constexpr std::size_t kLines = 600;
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> big(kLines);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    locks::GroupedScmParams p;
    p.max_retries = 2;
    const auto r = locks::grouped_scm_region(ctx, main, bank, p, [&] {
      for (auto& b : big) b.value.store(ctx, 1);
    });
    EXPECT_FALSE(r.speculative);
  });
  sched.run();
  for (auto& b : big) EXPECT_EQ(b.value.unsafe_get(), 1u);
}

TEST(GroupedScm, AvailableThroughSchemeRunner) {
  locks::TtasLock main;
  locks::CriticalSection<locks::TtasLock> cs(
      locks::ElisionPolicy::hle_grouped_scm(), main);
  tsx::Shared<std::uint64_t> counter(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int t = 0; t < 4; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 50; ++k) {
        cs.run(ctx, [&] { counter.store(ctx, counter.load(ctx) + 1); });
      }
    });
  }
  sched.run();
  EXPECT_EQ(counter.unsafe_get(), 200u);
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

TEST(Trace, RecordsBeginCommitAbort) {
  tsx::Trace trace;
  tsx::Shared<std::uint64_t> x(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  eng.set_trace(&trace);
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    for (int i = 0; i < 5; ++i) {
      eng.run_transaction(ctx, [&] { x.store(ctx, i); });
    }
    eng.run_transaction(ctx, [&] { eng.xabort(ctx, 2); });
  });
  sched.run();
  EXPECT_EQ(trace.count(tsx::TraceEvent::Kind::kBegin), 6u);
  EXPECT_EQ(trace.count(tsx::TraceEvent::Kind::kCommit), 5u);
  EXPECT_EQ(trace.count(tsx::TraceEvent::Kind::kAbort), 1u);
  EXPECT_EQ(trace.count_aborts(tsx::AbortCause::kExplicit), 1u);
}

TEST(Trace, TimestampsAreMonotonicPerThread) {
  tsx::Trace trace;
  tsx::Shared<std::uint64_t> x(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  eng.set_trace(&trace);
  for (int t = 0; t < 3; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int i = 0; i < 20; ++i) {
        eng.run_transaction(ctx, [&] { (void)x.load(ctx); });
      }
    });
  }
  sched.run();
  std::vector<std::uint64_t> last(3, 0);
  for (const auto& e : trace.events()) {
    ASSERT_GE(e.thread, 0);
    ASSERT_LT(e.thread, 3);
    EXPECT_GE(e.timestamp, last[e.thread]);
    last[e.thread] = e.timestamp;
  }
}

TEST(Trace, AbortEventsCarryConflictLocation) {
  tsx::Trace trace;
  support::CacheAligned<tsx::Shared<std::uint64_t>> hot;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  eng.set_trace(&trace);
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    eng.run_transaction(ctx, [&] {
      (void)hot.value.load(ctx);
      ctx.engine().compute(ctx, 2000);
      (void)hot.value.load(ctx);
    });
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 300);
    hot.value.store(ctx, 1);
  });
  sched.run();
  ASSERT_EQ(trace.count(tsx::TraceEvent::Kind::kAbort), 1u);
  for (const auto& e : trace.events()) {
    if (e.kind != tsx::TraceEvent::Kind::kAbort) continue;
    EXPECT_EQ(e.cause, tsx::AbortCause::kConflict);
    EXPECT_EQ(e.conflict_line, support::line_of(&hot.value));
    EXPECT_EQ(e.conflict_thread, 1);
  }
}

TEST(Trace, CsvDumpHasHeaderAndRows) {
  tsx::Trace trace;
  trace.record({.timestamp = 5,
                .thread = 0,
                .kind = tsx::TraceEvent::Kind::kBegin});
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  trace.dump_csv(f);
  std::rewind(f);
  char line[128] = {};
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_STREQ(line,
               "timestamp,thread,kind,cause,conflict_line,conflict_thread\n");
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_STREQ(line, "5,0,begin,none,0,-1\n");
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Backoff TTAS
// ---------------------------------------------------------------------------

TEST(BackoffLock, MutualExclusion) {
  locks::BackoffTtasLock lock;
  tsx::Shared<std::uint64_t> counter(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  constexpr int kThreads = 6, kIters = 150;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < kIters; ++k) {
        lock.lock(ctx);
        counter.store(ctx, counter.load(ctx) + 1);
        lock.unlock(ctx);
      }
    });
  }
  sched.run();
  EXPECT_EQ(counter.unsafe_get(), kThreads * kIters);
}

TEST(BackoffLock, ElidesAndRecovers) {
  locks::BackoffTtasLock lock;
  tsx::Shared<std::uint64_t> hot(0);
  std::uint64_t nonspec = 0, ops = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int t = 0; t < 8; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 100; ++k) {
        const auto r = locks::hle_region(ctx, lock, [&] {
          hot.store(ctx, hot.load(ctx) + 1);
        });
        ++ops;
        if (!r.speculative) ++nonspec;
      }
    });
  }
  sched.run();
  EXPECT_EQ(hot.unsafe_get(), 800u);
  // Backoff mitigates the avalanche: the lock keeps recovering speculation.
  EXPECT_LT(static_cast<double>(nonspec) / static_cast<double>(ops), 0.9);
}

}  // namespace
}  // namespace elision
