// The phase-shifting benchmark behind the adaptive-elision headline
// (ROADMAP item 2): one RB-tree run whose operation mix flips by virtual
// time through three equal phases
//
//   phase 0: read-mostly   (calm_update_pct updates)
//   phase 1: write-storm   (storm_update_pct updates)
//   phase 2: read-mostly   (calm_update_pct again)
//
// No static scheme wins every phase at the default operating point (small
// hot tree, 16 threads, TTAS): plain HLE wins the calm phases — its ~50%
// abort churn is healthy contention, and SCM's global aux serialization
// costs ~20% there — but falls behind in the storm, where SCM's conflict
// management wins; grouped SCM and the standard lock trail everywhere.
// `policy=adaptive` must track the per-phase winner (suite invariant
// adaptive-tracks-phase-winner), which its default thresholds are keyed
// to: HLE's calm churn sits below up_pct, its storm rate above, and SCM's
// storm rate between down_pct and up_pct (see AdaptiveParams).
//
// Per-phase commit counts come from the runner's timeline with the slot
// width set to the phase width, so run_phase_point's multi-seed merge
// (slot-wise accumulate) keeps them exact and deterministic.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "harness/rb_workload.hpp"

namespace elision::harness {

inline constexpr int kPhaseCount = 3;

struct PhasePoint {
  std::size_t size = 12;  // small tree: the storm must actually conflict
  int threads = 16;
  locks::ElisionPolicy scheme = locks::ElisionPolicy::adaptive();
  LockSel lock = LockSel::kTtas;
  int calm_update_pct = 10;    // phases 0 and 2
  int storm_update_pct = 100;  // phase 1
  double phase_sec = 0.001;    // virtual seconds per phase
  bool telemetry = false;
  tsx::AvalancheConfig avalanche;
  int seeds = 2;
  std::uint64_t seed = 42;
  // Host threads the multi-seed fan-out may use; never affects simulated
  // results (see RbPoint::host_threads).
  int host_threads = 1;
};

// Ops committed in each phase, read off the run's timeline (slot width ==
// phase width; the occasional op completing marginally past the deadline
// folds into the last phase). Phases have equal virtual duration, so these
// compare across points like throughputs do.
std::array<std::uint64_t, kPhaseCount> phase_ops_of(const RunStats& stats);

RunStats run_phase_point_once(const PhasePoint& p);

// Accumulates p.seeds independent runs (merged in seed order; byte-identical
// across host_threads values).
RunStats run_phase_point(const PhasePoint& p);

}  // namespace elision::harness
