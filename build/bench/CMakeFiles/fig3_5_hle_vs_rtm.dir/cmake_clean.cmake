file(REMOVE_RECURSE
  "CMakeFiles/fig3_5_hle_vs_rtm.dir/fig3_5_hle_vs_rtm.cpp.o"
  "CMakeFiles/fig3_5_hle_vs_rtm.dir/fig3_5_hle_vs_rtm.cpp.o.d"
  "fig3_5_hle_vs_rtm"
  "fig3_5_hle_vs_rtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_5_hle_vs_rtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
