// Internal helpers for the STAMP-mini applications.
#pragma once

#include <utility>

#include "locks/mcs_lock.hpp"
#include "locks/ttas_lock.hpp"
#include "stamp/common.hpp"

namespace elision::stamp::detail {

// Instantiates the app body for the configured main-lock type.
template <typename Fn>
StampResult dispatch_lock(const StampConfig& cfg, Fn&& fn) {
  if (cfg.lock == LockKind::kTtas) {
    locks::TtasLock lock;
    return fn(lock);
  }
  locks::McsLock lock;
  return fn(lock);
}

// Static partition [begin, end) of n items for thread t of T.
inline std::pair<std::size_t, std::size_t> partition(std::size_t n, int t,
                                                     int threads) {
  const std::size_t lo = n * static_cast<std::size_t>(t) / threads;
  const std::size_t hi = n * static_cast<std::size_t>(t + 1) / threads;
  return {lo, hi};
}

inline StampResult collect(const char* app, std::uint64_t checksum,
                           std::uint64_t elapsed,
                           const std::vector<OpTally>& tallies) {
  StampResult r;
  r.app = app;
  r.checksum = checksum;
  r.elapsed_cycles = elapsed;
  for (const auto& t : tallies) {
    r.ops += t.ops;
    r.nonspec_ops += t.nonspec;
    r.attempts += t.attempts;
  }
  return r;
}

}  // namespace elision::stamp::detail
