// stress_cli: schedule-exploration stress driver (see docs/stress.md).
//
// Sweeps policy x lock x workload x perturbation-seed, checks the run-time
// invariants from src/stress, and shrinks any failing seed's perturbation
// budget to a small reproducer. Exit status 0 iff no violations.
//
// --schemes takes canonical policy specs (locks/policy.hpp) — lower-case
// scheme slugs with optional knobs, e.g. "hle-scm" or "hle:backoff=200";
// legacy mixed-case spellings like "HLE-SCM" parse case-insensitively.
//
//   stress_cli --schemes all --locks all --seeds 200
//   stress_cli --schemes hle-scm --locks MCS --workloads hashtable
//              --seeds 50 --prob 0.1
//   stress_cli --selftest         # must *find* the planted RacyLock bug
//   stress_cli --selftest-shared  # ... and the planted writer starvation
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "locks/policy.hpp"
#include "sim/machine_config.hpp"
#include "stress/stress.hpp"
#include "support/parallel.hpp"
#include "support/parse.hpp"

namespace {

using elision::locks::ElisionPolicy;
using namespace elision::stress;

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "stress_cli: %s\n", msg.c_str());
  std::fprintf(
      stderr,
      "usage: stress_cli [--schemes all|SPEC[,SPEC...]]\n"
      "                  [--locks all|NAME[,NAME...]]\n"
      "                  [--workloads all|counter|hashtable|btree|sharded-kv]\n"
      "                  [--seeds N] [--first-seed S] [--threads N]\n"
      "                  [--host-threads N] [--duration-ms MS] [--prob P]\n"
      "                  [--max-delay CYCLES] [--no-minimize] [--telemetry]\n"
      "                  [--quiet] [--selftest] [--selftest-shared]\n"
      "\n"
      "--host-threads fans independent cases out across N host threads\n"
      "(0 = all hardware threads); output is byte-identical to\n"
      "--host-threads 1. --threads stays the *simulated* thread count.\n");
  std::exit(2);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

// One shared policy-spec parser (ElisionPolicy::parse) for every CLI: the
// same grammar and spellings as bench point ids and bench JSON.
std::vector<ElisionPolicy> parse_policies(const std::string& arg) {
  if (arg == "all") return all_policies();
  std::vector<ElisionPolicy> out;
  for (const std::string& name : split_commas(arg)) {
    const std::optional<ElisionPolicy> p = ElisionPolicy::parse(name);
    if (!p) usage_error("unknown policy spec '" + name + "'");
    out.push_back(*p);
  }
  return out;
}

std::vector<LockKind> parse_locks(const std::string& arg) {
  if (arg == "all") return all_locks();
  static const LockKind kKnown[] = {
      LockKind::kTtas,       LockKind::kMcs,       LockKind::kTicket,
      LockKind::kTicketAdj,  LockKind::kClh,       LockKind::kClhAdj,
      LockKind::kSharedTtas, LockKind::kSharedMcs, LockKind::kRacy,
      LockKind::kGreedyShared,
  };
  std::vector<LockKind> out;
  for (const std::string& name : split_commas(arg)) {
    bool found = false;
    for (const LockKind k : kKnown) {
      if (name == lock_name(k)) {
        out.push_back(k);
        found = true;
        break;
      }
    }
    if (!found) usage_error("unknown lock '" + name + "'");
  }
  return out;
}

std::vector<Workload> parse_workloads(const std::string& arg) {
  if (arg == "all") return all_workloads();
  std::vector<Workload> out;
  for (const std::string& name : split_commas(arg)) {
    if (name == workload_name(Workload::kCounter)) {
      out.push_back(Workload::kCounter);
    } else if (name == workload_name(Workload::kHashTable)) {
      out.push_back(Workload::kHashTable);
    } else if (name == workload_name(Workload::kBtree)) {
      out.push_back(Workload::kBtree);
    } else if (name == workload_name(Workload::kShardedKv)) {
      out.push_back(Workload::kShardedKv);
    } else {
      usage_error("unknown workload '" + name + "'");
    }
  }
  return out;
}

void print_failure(const FailureReport& f) {
  std::printf("FAIL %s (minimized budget=%llu)\n", case_name(f.c).c_str(),
              static_cast<unsigned long long>(f.minimized_points));
  for (const std::string& v : f.outcome.violations) {
    std::printf("     %s\n", v.c_str());
  }
}

// Self-test: the harness must be able to find the planted check-then-act
// bug in RacyLock within a modest seed budget, and shrink it.
int run_selftest(StressOptions o, std::uint64_t first_seed, int n_seeds,
                 bool quiet) {
  o.minimize = true;
  const SweepStats s =
      sweep(o, {ElisionPolicy::standard()}, {LockKind::kRacy},
            {Workload::kCounter}, first_seed, n_seeds);
  if (s.failures.empty()) {
    std::printf("selftest: FAILED — %d perturbed runs missed the planted "
                "RacyLock bug (raise --seeds or --prob)\n",
                s.runs);
    return 1;
  }
  if (!quiet) {
    std::printf("selftest: ok — planted bug found in %zu/%d runs; first:\n",
                s.failures.size(), s.runs);
    print_failure(s.failures.front());
  }
  return 0;
}

// Shared-mode self-test: the reader-writer invariants must catch the
// planted writer starvation in GreedySharedLock (readers barge past
// announced writer intent, so the reader count never drains), and must NOT
// fire on the correct SharedTtasLock under the identical read-heavy,
// long-dwell configuration.
int run_selftest_shared(StressOptions o, std::uint64_t first_seed,
                        int n_seeds, bool quiet) {
  // One dedicated writer thread against a pure reader crowd, long enough
  // that a locked-out writer exceeds the watchdog gap, with reads dwelling
  // in-section so the crowd stays overlapped (mixed-duty threads would all
  // eventually block as writers, draining the crowd and closing the
  // starvation window).
  o.duration_ms = 0.2;
  o.btree_writer_threads = 1;
  o.btree_writer_gap_cycles = 4000;  // reader windows on a correct lock
  o.btree_read_dwell_cycles = 1500;
  const SweepStats broken =
      sweep(o, {ElisionPolicy::standard()}, {LockKind::kGreedyShared},
            {Workload::kBtree}, first_seed, n_seeds);
  bool found = false;
  for (const FailureReport& f : broken.failures) {
    for (const std::string& v : f.outcome.violations) {
      if (v.find("writer lockout") != std::string::npos) found = true;
    }
  }
  if (!found) {
    std::printf(
        "selftest-shared: FAILED — %d perturbed runs missed the planted "
        "GreedySharedLock writer starvation (raise --seeds or --prob)\n",
        broken.runs);
    return 1;
  }
  const SweepStats control =
      sweep(o, {ElisionPolicy::standard()}, {LockKind::kSharedTtas},
            {Workload::kBtree}, first_seed, n_seeds);
  if (!control.ok()) {
    std::printf(
        "selftest-shared: FAILED — the correct SharedTtasLock was flagged "
        "under the same configuration:\n");
    for (const FailureReport& f : control.failures) print_failure(f);
    return 1;
  }
  if (!quiet) {
    std::printf(
        "selftest-shared: ok — writer lockout found in %zu/%d runs, "
        "control lock clean; first:\n",
        broken.failures.size(), broken.runs);
    print_failure(broken.failures.front());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  StressOptions o;
  std::vector<ElisionPolicy> policies = all_policies();
  std::vector<LockKind> locks = all_locks();
  std::vector<Workload> workloads = all_workloads();
  std::uint64_t first_seed = 1;
  int n_seeds = 20;
  bool quiet = false;
  bool selftest = false;
  bool selftest_shared = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + a);
      return argv[++i];
    };
    if (a == "--schemes") {
      policies = parse_policies(value());
    } else if (a == "--locks") {
      locks = parse_locks(value());
    } else if (a == "--workloads") {
      workloads = parse_workloads(value());
    } else if (a == "--seeds") {
      const auto v = elision::support::parse_int(value());
      if (!v) usage_error("--seeds must be a decimal integer");
      n_seeds = *v;
    } else if (a == "--first-seed") {
      const auto v = elision::support::parse_u64(value());
      if (!v) usage_error("--first-seed must be a decimal integer");
      first_seed = *v;
    } else if (a == "--threads") {
      const auto v = elision::support::parse_int(value());
      if (!v || *v < 1 || *v > elision::sim::kMaxSimThreads) {
        usage_error("--threads must be a decimal integer in [1," +
                    std::to_string(elision::sim::kMaxSimThreads) +
                    "] (kMaxSimThreads)");
      }
      o.threads = *v;
    } else if (a == "--host-threads") {
      const auto v = elision::support::parse_int(value());
      if (!v) usage_error("--host-threads must be a decimal integer >= 0");
      o.host_threads =
          *v != 0 ? *v : elision::support::host_hardware_threads();
    } else if (a == "--duration-ms") {
      const auto v = elision::support::parse_double(value());
      if (!v || *v <= 0) usage_error("--duration-ms must be a number > 0");
      o.duration_ms = *v;
    } else if (a == "--prob") {
      const auto v = elision::support::parse_double(value());
      if (!v || *v < 0 || *v > 1) {
        usage_error("--prob must be a number in [0,1]");
      }
      o.perturb_probability = *v;
    } else if (a == "--max-delay") {
      const auto v = elision::support::parse_u64(value());
      if (!v) usage_error("--max-delay must be a decimal integer");
      o.perturb_max_delay_cycles = *v;
    } else if (a == "--no-minimize") {
      o.minimize = false;
    } else if (a == "--telemetry") {
      o.telemetry = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--selftest") {
      selftest = true;
    } else if (a == "--selftest-shared") {
      selftest_shared = true;
    } else if (a == "--help" || a == "-h") {
      usage_error("help");
    } else {
      usage_error("unknown flag '" + a + "'");
    }
  }
  if (n_seeds <= 0) usage_error("--seeds must be positive");

  if (selftest) return run_selftest(o, first_seed, n_seeds, quiet);
  if (selftest_shared) {
    return run_selftest_shared(o, first_seed, n_seeds, quiet);
  }

  int done = 0;
  const int total = n_seeds * static_cast<int>(policies.size()) *
                    static_cast<int>(locks.size()) *
                    static_cast<int>(workloads.size());
  const SweepStats s = sweep(
      o, policies, locks, workloads, first_seed, n_seeds,
      [&](const StressCase& c, const RunOutcome& out) {
        ++done;
        if (!out.ok()) {
          std::printf("[%d/%d] VIOLATION %s\n", done, total,
                      case_name(c).c_str());
        } else if (!quiet && done % 100 == 0) {
          std::printf("[%d/%d] ok\n", done, total);
          std::fflush(stdout);
        }
      });

  std::printf("%d runs, %llu total ops, %zu failing\n", s.runs,
              static_cast<unsigned long long>(s.total_ops),
              s.failures.size());
  for (const FailureReport& f : s.failures) print_failure(f);
  return s.ok() ? 0 : 1;
}
