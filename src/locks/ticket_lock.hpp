// Ticket lock: the standard algorithm (paper Algorithm 4) and the
// HLE-adjusted variant (Algorithm 5, Ch. 6).
//
// The standard release (F&A on `owner`) does not restore the lock word the
// XACQUIRE elided (`next`), so standard ticket locks are HLE-incompatible:
// eliding one always aborts with an HLE mismatch. The adjustment releases by
// first attempting CAS(next, current+1, current) — undoing the acquisition —
// which in a speculative (or solo) run always succeeds and restores the
// original state, exactly as HLE requires (Theorem 1).
#pragma once

#include <array>
#include <cstdint>

#include "support/align.hpp"
#include "support/check.hpp"
#include "tsx/config.hpp"
#include "tsx/shared.hpp"

namespace elision::locks {

template <bool kAdjusted>
class BasicTicketLock {
 public:
  static constexpr const char* kName = kAdjusted ? "Ticket-adj" : "Ticket";
  static constexpr bool kIsFair = true;
  static constexpr int kMaxThreads = tsx::kMaxThreads;

  void lock(tsx::Ctx& ctx) {
    ELISION_CHECK_MSG(ctx.id() >= 0 && ctx.id() < kMaxThreads,
                      "thread id outside the ticket lock's slot array");
    // `next` and `owner` share a cache line, as in the usual one-word
    // implementation the paper references.
    const std::uint64_t current = word_.value.next.xacquire_fetch_add(ctx, 1);
    current_[static_cast<std::size_t>(ctx.id())] = current;
    while (word_.value.owner.load(ctx) != current) ctx.engine().pause(ctx);
  }

  void unlock(tsx::Ctx& ctx) {
    const std::uint64_t current = current_[static_cast<std::size_t>(ctx.id())];
    if constexpr (kAdjusted) {
      // Algorithm 5: try to erase the acquisition. Fails only in a standard
      // run with other requesters, where the normal release takes over.
      if (!word_.value.next.xrelease_compare_exchange(ctx, current + 1,
                                                      current)) {
        word_.value.owner.fetch_add(ctx, 1);
      }
    } else {
      // Algorithm 4 under HLE: the XRELEASE store hits a different address
      // with a different value — the elision can never commit.
      word_.value.owner.xrelease_fetch_add(ctx, 1);
    }
  }

  bool is_held(tsx::Ctx& ctx) {
    return word_.value.next.load(ctx) != word_.value.owner.load(ctx);
  }

  // Cache line of the elidable lock word (telemetry tagging).
  support::LineId lock_line() const {
    return support::line_of(&word_.value.next);
  }

  bool reissue_acquire_standard(tsx::Ctx& ctx) {
    lock(ctx);
    return true;
  }

 private:
  struct Words {
    tsx::Shared<std::uint64_t> next;
    tsx::Shared<std::uint64_t> owner;
  };

  support::CacheAligned<Words> word_;
  // Per-thread ticket (private). Sized from the simulator-wide thread cap;
  // lock() bounds-checks the index so a larger simulated machine fails loudly
  // instead of silently corrupting neighbouring memory.
  std::array<std::uint64_t, kMaxThreads> current_{};
};

using TicketLock = BasicTicketLock<false>;
using TicketLockAdjusted = BasicTicketLock<true>;

}  // namespace elision::locks
