// STAMP genome: gene sequencing by segment deduplication and overlap
// matching.
//
// Phase 1 deduplicates the sampled segments into a shared hash set (insert
// transactions of moderate length). Phase 2 searches, for every unique
// segment, candidate successors by overlap hash and records the matches
// (lookup-dominated transactions). Contention is low-to-moderate, and the
// transactions are long enough that genome is the one application where
// HLE-SCM clearly beats plain HLE on TTAS in the paper (up to 1.5x).
#include <cstdint>
#include <vector>

#include "ds/hashtable.hpp"
#include "stamp/detail.hpp"
#include "support/rng.hpp"

namespace elision::stamp {

namespace {

// Overlap-candidate key: shift out `overlap` low bits and mix in a probe.
std::uint64_t successor_candidate(std::uint64_t segment, int overlap,
                                  std::uint64_t probe) {
  std::uint64_t x = (segment >> overlap) ^ (probe * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 29;
  return x;
}

}  // namespace

StampResult run_genome(const StampConfig& cfg) {
  const auto n_segments = static_cast<std::size_t>(8192 * cfg.scale);
  const std::size_t gene_length = n_segments / 2;

  // The "gene": segments sampled with duplicates from a synthetic genome.
  support::Xoshiro256 rng(cfg.seed);
  std::vector<std::uint64_t> gene(gene_length);
  for (auto& g : gene) g = rng.next() | 1;  // non-zero keys
  std::vector<std::uint64_t> segments(n_segments);
  for (auto& s : segments) s = gene[rng.next_below(gene_length)];

  ds::HashTable table(4096, gene_length + n_segments / 4 + 64);

  return detail::dispatch_lock(cfg, [&](auto& lock) {
    using Lock = std::remove_reference_t<decltype(lock)>;
    sim::Scheduler sched(cfg.machine);
    tsx::Engine eng(sched, cfg.tsx);
    locks::CriticalSection<Lock> cs(locks::ElisionPolicy::from_scheme(cfg.scheme), lock);
    SimBarrier barrier(cfg.threads);
    std::vector<OpTally> tallies(cfg.threads);
    std::vector<std::uint64_t> matches(cfg.threads, 0);

    for (int t = 0; t < cfg.threads; ++t) {
      sched.spawn([&, t](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        const auto [lo, hi] = detail::partition(n_segments, t, cfg.threads);
        // Phase 1: deduplicate segments into the shared hash set.
        for (std::size_t i = lo; i < hi; ++i) {
          tallies[t].add(cs.run(ctx, [&] {
            table.insert(ctx, segments[i], 0);
          }));
        }
        barrier.wait(ctx);
        // Phase 2: overlap matching — look up candidate successors of each
        // of this thread's segments and record matches.
        for (std::size_t i = lo; i < hi; ++i) {
          const std::uint64_t seg = segments[i];
          std::uint64_t local_matches = 0;
          tallies[t].add(cs.run(ctx, [&] {
            local_matches = 0;
            for (int overlap = 8; overlap <= 24; overlap += 8) {
              const std::uint64_t cand =
                  successor_candidate(seg, overlap, seg & 0xFF);
              std::uint64_t v;
              if (table.lookup(ctx, cand, &v)) {
                table.upsert_add(ctx, cand, 1);  // link strength
                ++local_matches;
              }
            }
          }));
          matches[t] += local_matches;
        }
      });
    }
    sched.run();

    std::uint64_t total_matches = 0;
    for (const auto m : matches) total_matches += m;
    const std::uint64_t checksum =
        table.unsafe_size() * 1000003ULL + total_matches;
    return detail::collect("genome", checksum, sched.elapsed_cycles(),
                           tallies);
  });
}

}  // namespace elision::stamp
