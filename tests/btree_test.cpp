// B+tree tests: oracle comparison against std::map (point ops and range
// scans), structural invariant validation, abort rollback, and concurrent
// sweeps under the two-mode locks with shared-mode lookups/scans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ds/btree.hpp"
#include "locks/schemes.hpp"
#include "locks/shared_mcs_lock.hpp"
#include "locks/shared_ttas_lock.hpp"
#include "support/rng.hpp"

namespace elision::ds {
namespace {

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

tsx::TsxConfig quiet_tsx() {
  tsx::TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

void run_single(const std::function<void(tsx::Ctx&)>& body) {
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) { body(eng.context(st)); });
  sched.run();
}

TEST(BplusTree, EmptyTreeBehaviour) {
  BplusTree tree(16);
  run_single([&](tsx::Ctx& ctx) {
    std::uint64_t v = 0;
    EXPECT_FALSE(tree.lookup(ctx, 1, &v));
    EXPECT_FALSE(tree.erase(ctx, 1));
    std::uint64_t sum = 7;
    EXPECT_EQ(tree.range_sum(ctx, 0, 10, &sum), 0u);
    EXPECT_EQ(sum, 0u);
    EXPECT_TRUE(tree.insert(ctx, 1, 10));
    EXPECT_TRUE(tree.lookup(ctx, 1, &v));
    EXPECT_EQ(v, 10u);
    EXPECT_FALSE(tree.insert(ctx, 1, 99));  // duplicate: value unchanged
    EXPECT_TRUE(tree.lookup(ctx, 1, &v));
    EXPECT_EQ(v, 10u);
    EXPECT_TRUE(tree.erase(ctx, 1));
    EXPECT_FALSE(tree.lookup(ctx, 1, &v));
  });
  EXPECT_EQ(tree.unsafe_size(), 0u);
  EXPECT_TRUE(tree.unsafe_validate());
}

TEST(BplusTree, AscendingInsertSplitsCleanly) {
  BplusTree tree(300);
  run_single([&](tsx::Ctx& ctx) {
    for (std::uint64_t k = 1; k <= 512; ++k) {
      ASSERT_TRUE(tree.insert(ctx, k, k * 2));
    }
    std::uint64_t v = 0;
    for (std::uint64_t k = 1; k <= 512; ++k) {
      ASSERT_TRUE(tree.lookup(ctx, k, &v));
      EXPECT_EQ(v, k * 2);
    }
  });
  std::string why;
  EXPECT_TRUE(tree.unsafe_validate(&why)) << why;
  EXPECT_EQ(tree.unsafe_size(), 512u);
}

TEST(BplusTree, DescendingInsertThenFullErase) {
  BplusTree tree(300);
  run_single([&](tsx::Ctx& ctx) {
    for (std::uint64_t k = 512; k >= 1; --k) {
      ASSERT_TRUE(tree.insert(ctx, k, k));
    }
    for (std::uint64_t k = 1; k <= 512; ++k) ASSERT_TRUE(tree.erase(ctx, k));
  });
  EXPECT_EQ(tree.unsafe_size(), 0u);
  std::string why;
  EXPECT_TRUE(tree.unsafe_validate(&why)) << why;
}

TEST(BplusTree, RandomOracleAgainstStdMap) {
  BplusTree tree(2100);
  std::map<std::uint64_t, std::uint64_t> oracle;
  support::Xoshiro256 rng(77);
  run_single([&](tsx::Ctx& ctx) {
    for (int i = 0; i < 6000; ++i) {
      const std::uint64_t key = rng.next_below(2048);
      const std::uint64_t val = rng.next();
      const int op = static_cast<int>(rng.next_below(4));
      if (op == 0) {
        EXPECT_EQ(tree.insert(ctx, key, val),
                  oracle.emplace(key, val).second);
      } else if (op == 1) {
        EXPECT_EQ(tree.erase(ctx, key), oracle.erase(key) == 1);
      } else if (op == 2) {
        std::uint64_t got = 0;
        const auto it = oracle.find(key);
        EXPECT_EQ(tree.lookup(ctx, key, &got), it != oracle.end());
        if (it != oracle.end()) {
          EXPECT_EQ(got, it->second);
        }
      } else {
        // Range scan oracle: up to 16 keys >= key.
        std::uint64_t got_sum = 0;
        const std::size_t got_n = tree.range_sum(ctx, key, 16, &got_sum);
        std::uint64_t want_sum = 0;
        std::size_t want_n = 0;
        for (auto it = oracle.lower_bound(key);
             it != oracle.end() && want_n < 16; ++it, ++want_n) {
          want_sum += it->second;
        }
        EXPECT_EQ(got_n, want_n);
        EXPECT_EQ(got_sum, want_sum);
      }
      if (i % 500 == 0) {
        std::string why;
        ASSERT_TRUE(tree.unsafe_validate(&why)) << why << " at op " << i;
      }
    }
  });
  std::string why;
  EXPECT_TRUE(tree.unsafe_validate(&why)) << why;
  const auto keys = tree.unsafe_keys();
  std::vector<std::uint64_t> expect;
  for (const auto& [k, v] : oracle) expect.push_back(k);
  EXPECT_EQ(keys, expect);
}

TEST(BplusTree, UnsafeInsertMatchesTransactionalInsert) {
  BplusTree a(300), b(300);
  support::Xoshiro256 rng(5);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(rng.next_below(500));
  for (const auto k : keys) a.unsafe_insert(k, k + 1);
  run_single([&](tsx::Ctx& ctx) {
    for (const auto k : keys) b.insert(ctx, k, k + 1);
  });
  EXPECT_EQ(a.unsafe_keys(), b.unsafe_keys());
  EXPECT_TRUE(a.unsafe_validate());
  EXPECT_TRUE(b.unsafe_validate());
}

TEST(BplusTree, KeysComeOutSorted) {
  BplusTree tree(300);
  support::Xoshiro256 rng(11);
  for (int i = 0; i < 200; ++i) tree.unsafe_insert(rng.next(), 1);
  const auto keys = tree.unsafe_keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(BplusTree, AbortedOperationRollsBackCompletely) {
  // A transactional insert that aborts mid-split must leave the tree (and
  // the node free lists) exactly as before.
  BplusTree tree(64);
  for (std::uint64_t k = 0; k < 40; ++k) tree.unsafe_insert(k * 3, k);
  const auto before = tree.unsafe_keys();
  run_single([&](tsx::Ctx& ctx) {
    const unsigned st = ctx.engine().run_transaction(ctx, [&] {
      tree.insert(ctx, 100, 1);
      tree.erase(ctx, 0);
      ctx.engine().xabort(ctx, 1);
    });
    EXPECT_NE(st, tsx::kCommitted);
  });
  EXPECT_EQ(tree.unsafe_keys(), before);
  std::string why;
  EXPECT_TRUE(tree.unsafe_validate(&why)) << why;
}

TEST(BplusTree, RangeSumWalksTheLeafChain) {
  BplusTree tree(300);
  run_single([&](tsx::Ctx& ctx) {
    for (std::uint64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(tree.insert(ctx, k, 1));
    }
    std::uint64_t sum = 0;
    // A scan crossing many leaves: 100 keys from 50.
    EXPECT_EQ(tree.range_sum(ctx, 50, 100, &sum), 100u);
    EXPECT_EQ(sum, 100u);
    // Scan past the end.
    EXPECT_EQ(tree.range_sum(ctx, 150, 100, &sum), 50u);
    EXPECT_EQ(sum, 50u);
  });
}

// ---------------------------------------------------------------------------
// Concurrent sweeps: two-mode locks, shared-mode lookups and scans
// ---------------------------------------------------------------------------

struct SweepParam {
  locks::Scheme scheme;
  bool mcs;  // false: Shared-TTAS, true: Shared-MCS
  std::size_t size;
  int update_pct;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  std::string s = locks::scheme_slug(p.scheme);
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s + (p.mcs ? "_smcs_" : "_sttas_") + std::to_string(p.size) + "_u" +
         std::to_string(p.update_pct);
}

class BplusTreeConcurrent : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BplusTreeConcurrent, InvariantsHoldWithSharedModeReaders) {
  const SweepParam p = GetParam();
  BplusTree tree(p.size * 4 + 64);
  support::Xoshiro256 fill(42);
  std::size_t filled = 0;
  while (filled < p.size) {
    if (tree.unsafe_insert(fill.next_below(p.size * 2), fill.next())) {
      ++filled;
    }
  }
  tree.unsafe_distribute_free_lists(8);
  const std::size_t initial = tree.unsafe_size();

  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  std::int64_t net_inserts = 0;
  std::uint64_t ops = 0;

  auto run_with = [&](auto& lock) {
    using Lock = std::remove_reference_t<decltype(lock)>;
    locks::CriticalSection<Lock> cs(
        locks::ElisionPolicy::from_scheme(p.scheme), lock);
    for (int t = 0; t < 8; ++t) {
      sched.spawn([&](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        auto& rng = st.rng();
        for (int k = 0; k < 60; ++k) {
          const std::uint64_t key = rng.next_below(p.size * 2);
          const auto dice = static_cast<int>(rng.next_below(100));
          bool did_insert = false, did_erase = false;
          if (dice < p.update_pct / 2) {
            cs.run_exclusive(ctx, [&] {
              did_insert = tree.insert(ctx, key, key);
            });
          } else if (dice < p.update_pct) {
            cs.run_exclusive(ctx, [&] { did_erase = tree.erase(ctx, key); });
          } else if (dice % 2 == 0) {
            cs.run_shared(ctx, [&] {
              std::uint64_t v;
              tree.lookup(ctx, key, &v);
            });
          } else {
            cs.run_shared(ctx, [&] {
              std::uint64_t sum;
              tree.range_sum(ctx, key, 16, &sum);
            });
          }
          net_inserts += did_insert ? 1 : 0;
          net_inserts -= did_erase ? 1 : 0;
          ++ops;
        }
      });
    }
    sched.run();
  };

  if (p.mcs) {
    locks::SharedMcsLock lock;
    run_with(lock);
  } else {
    locks::SharedTtasLock lock;
    run_with(lock);
  }

  EXPECT_EQ(ops, 8u * 60u);
  std::string why;
  ASSERT_TRUE(tree.unsafe_validate(&why)) << why;
  EXPECT_EQ(static_cast<std::int64_t>(tree.unsafe_size()),
            static_cast<std::int64_t>(initial) + net_inserts);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (const auto scheme : locks::kAllSixSchemes) {
    for (const bool mcs : {false, true}) {
      for (const std::size_t size : {16ULL, 256ULL}) {
        for (const int update : {20, 100}) {
          out.push_back({scheme, mcs, size, update});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BplusTreeConcurrent,
                         ::testing::ValuesIn(sweep_params()), param_name);

}  // namespace
}  // namespace elision::ds
