// Benchmark runner: spawns N simulated threads that execute operations in a
// loop for a fixed amount of *virtual* time, and aggregates the paper's
// metrics: S (speculative completions), N (non-speculative completions),
// total execution attempts (A + N + S), throughput, and optional per-slot
// timelines (Fig 3.3). With cfg.telemetry set it also attaches an event
// trace to the engine and post-processes it into avalanche episodes and
// SCM rejoin latencies.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "harness/metrics.hpp"
#include "locks/policy.hpp"
#include "locks/region.hpp"
#include "sim/machine_config.hpp"
#include "sim/scheduler.hpp"
#include "tsx/config.hpp"
#include "tsx/engine.hpp"
#include "tsx/stats.hpp"
#include "tsx/telemetry.hpp"

namespace elision::harness {

struct BenchConfig {
  int threads = 8;
  double duration_sec = 0.002;  // virtual seconds per measurement
  sim::MachineConfig machine;
  tsx::TsxConfig tsx;
  // If > 0, collect per-slot throughput/non-speculative timelines.
  std::uint64_t timeline_slot_cycles = 0;

  // Scales duration (e.g. from the ELISION_BENCH_SCALE environment
  // variable) without touching per-bench settings.
  double duration_scale = 1.0;

  // How the workload's critical sections execute. Informational to the
  // runner itself (the op closure owns the CriticalSection), but recorded
  // into MetricsRegistry series and reports.
  locks::ElisionPolicy policy = locks::ElisionPolicy::standard();

  // Attach an event trace to the engine for this run and derive episode /
  // rejoin statistics from it. Costs host memory only: telemetry never
  // advances virtual time, so virtual throughput is unchanged.
  bool telemetry = false;
  std::size_t telemetry_ring_capacity = tsx::Telemetry::kDefaultRingCapacity;
  tsx::AvalancheConfig avalanche;

  // Record into a caller-owned sink instead of a run-local one, so the raw
  // event stream outlives the run (tools/trace_dump). Implies `telemetry`.
  tsx::Telemetry* telemetry_sink = nullptr;

  // Called after every completed region, on the completing simulated thread
  // (its virtual clock is current). The stress subsystem hangs its
  // invariant checkers and starvation watchdog off this; leave unset for
  // plain benchmarking (null = zero cost).
  std::function<void(tsx::Ctx&, const locks::RegionResult&)>
      on_region_complete;

  std::uint64_t duration_cycles() const {
    return machine.cycles(duration_sec * duration_scale);
  }
};

struct SlotStats {
  std::uint64_t ops = 0;
  std::uint64_t nonspec_ops = 0;
};

struct RunStats {
  std::uint64_t ops = 0;          // S + N
  std::uint64_t spec_ops = 0;     // S
  std::uint64_t nonspec_ops = 0;  // N
  std::uint64_t attempts = 0;     // A + N + S
  std::uint64_t elapsed_cycles = 0;
  // Delay injections performed by the scheduler's perturbation layer
  // (0 unless machine.perturb was configured; see src/stress).
  std::uint64_t perturb_points = 0;
  double ghz = 3.4;
  tsx::TxStats tx;  // engine-level transaction counters
  // Scheduler-side fast-path telemetry: how many times the cached
  // context-switch bound was recomputed (once per actual switch under
  // batching; 0 when machine.batch_switch_bound is off). Host-side
  // observability only — the engine-side companions live in tx.
  std::uint64_t fp_bound_recomputes = 0;
  std::vector<SlotStats> timeline;

  // Always collected (host-side, one Histogram::add per completed region).
  Histogram attempts_hist;

  // Populated only when BenchConfig::telemetry was set.
  Histogram rejoin_hist;  // SCM aux-enter -> aux-exit, virtual cycles
  std::vector<tsx::AvalancheEpisode> episodes;
  std::uint64_t telemetry_events = 0;   // recorded into the rings
  std::uint64_t telemetry_dropped = 0;  // lost to ring wrap-around

  // Per-operation-kind virtual-time latency (request arrival -> completion),
  // recorded by workloads that model request latency (src/service). Entries
  // keep the workload's registration order; accumulate() merges by name.
  struct OpLatency {
    std::string op;
    QuantileHistogram hist;
  };
  std::vector<OpLatency> op_latency;
  QuantileHistogram* latency_series(const std::string& op);

  // Folds another run into this one: every counter, histogram and episode
  // list is merged, and timelines are added slot-wise (resizing to the
  // longer of the two). ghz is taken from the first non-empty run and must
  // match across all accumulated runs.
  void accumulate(const RunStats& o);

  double seconds() const { return elapsed_cycles / (ghz * 1e9); }
  double throughput() const {
    return seconds() > 0 ? static_cast<double>(ops) / seconds() : 0.0;
  }
  double attempts_per_op() const {
    return ops > 0 ? static_cast<double>(attempts) / static_cast<double>(ops)
                   : 0.0;
  }
  double nonspec_fraction() const {
    return ops > 0
               ? static_cast<double>(nonspec_ops) / static_cast<double>(ops)
               : 0.0;
  }
};

// One benchmark operation: runs a critical section (or several) and reports
// how it completed.
using OpFn = std::function<locks::RegionResult(tsx::Ctx&)>;

// Strict machine-shape validation, run before any simulation state is
// built: thread counts must be in [1, sim::kMaxSimThreads] and the machine
// topology non-degenerate (n_cores >= 1, smt_per_core >= 1 — the scheduler
// maps thread t to core t % n_cores, so a zero would fault, and a zero in
// an RbPoint/MicroPoint override means "keep the default", which must be
// applied before the config reaches here). Violations print a clear
// diagnostic and exit(2), matching the CLIs' usage-error convention.
void validate_bench_config(const BenchConfig& cfg);

// Runs `threads` copies of `op` in a loop until the virtual deadline.
// Exits(2) on an invalid config (validate_bench_config).
RunStats run_workload(const BenchConfig& cfg, const OpFn& op);

// Same, and folds the result into `registry` under (policy name, lock name).
RunStats run_workload(const BenchConfig& cfg, const OpFn& op,
                      MetricsRegistry& registry, const std::string& lock_name);

// Reads ELISION_BENCH_SCALE (default 1.0) so users can lengthen runs.
double env_duration_scale();

// Reads ELISION_FASTPATH (default enabled; "0" disables): whether the
// per-access fast paths — the engine's owned-line cache and the scheduler's
// switch-bound batching — are engaged. They never change simulated results,
// only host speed, so the off setting exists for A/B measurement and the
// differential equivalence checks in scripts/check.sh.
bool env_fastpath_enabled();

// Reads ELISION_HOST_THREADS (default 1): how many *host* threads
// independent simulations may fan out across (support/parallel.hpp).
// 0 means "all hardware threads". Distinct from any simulated thread
// count — host threads never change simulated results, only wall time.
int env_host_threads();

}  // namespace elision::harness
