// ElisionPolicy: the unified front-end for choosing how a critical section
// executes.
//
// Historically every call site switched on the Scheme enum and constructed
// per-case ScmParams/SlrParams by hand. ElisionPolicy is one value type that
// carries the scheme *and* every tuning knob (retry/backoff, SCM retries,
// SLR attempts, grouped-SCM groups), with named constructors for the six
// evaluated schemes (Sec. 5.1) and the extra mechanisms. The Scheme enum
// remains as a thin compatibility alias: ElisionPolicy converts implicitly
// from it (via from_scheme), so existing callers migrate incrementally.
//
//   CriticalSection<TtasLock> cs(ElisionPolicy::hle_scm(), lock);
//   auto tuned = ElisionPolicy::hle_scm().with_scm_retries(4);
//
// Policies also carry the access-mode axis of the two-mode lock API
// (`.shared()` makes CriticalSection::run() take the lock in shared mode),
// and round-trip through one canonical string spelling:
//
//   ElisionPolicy::parse("hle-scm+shared")  ->  policy
//   policy.spec()                           ->  "hle-scm+shared"
//
// The spec grammar is `<scheme>[+shared][:knob=N...]` with the lower-case
// scheme slugs of scheme_slug(); bench point ids, bench JSON, stress_cli
// and elide_cli flags all use this one spelling.
#pragma once

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "locks/adaptive.hpp"
#include "locks/grouped_scm.hpp"
#include "locks/region.hpp"
#include "locks/scm.hpp"
#include "locks/slr.hpp"

namespace elision::locks {

// The six evaluated locking schemes (Sec. 5.1 Methodology), plus the extra
// mechanisms used by specific experiments.
//
// Deprecated as a front-end: new code should pass an ElisionPolicy (which
// a Scheme converts into) so tuning knobs travel with the scheme choice.
enum class Scheme {
  kStandard,       // (1) plain non-speculative lock
  kHle,            // (2) hardware lock elision
  kHleScm,         // (3) HLE + software-assisted conflict management
  kPesSlr,         // (4) pessimistic software lock removal
  kOptSlr,         // (5) optimistic software lock removal
  kOptSlrScm,      // (6) optimistic SLR + conflict management
  kRtmElide,       // RTM-based elision (Fig 3.5 mechanism comparison)
  kHleScmNested,   // Algorithm 3 as designed: HLE nested in RTM
  kHleGroupedScm,  // future-work extension: per-conflict-line aux groups
  kAdaptive,       // online controller migrating HLE / SCM / gSCM / standard
};

inline const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kStandard: return "Standard";
    case Scheme::kHle: return "HLE";
    case Scheme::kHleScm: return "HLE-SCM";
    case Scheme::kPesSlr: return "pes-SLR";
    case Scheme::kOptSlr: return "opt-SLR";
    case Scheme::kOptSlrScm: return "opt-SLR-SCM";
    case Scheme::kRtmElide: return "RTM-elide";
    case Scheme::kHleScmNested: return "HLE-SCM-nested";
    case Scheme::kHleGroupedScm: return "HLE-gSCM";
    case Scheme::kAdaptive: return "Adaptive";
    default: return "?";
  }
}

// Canonical lower-case spelling of each scheme — the one spelling used by
// policy specs, bench point ids/JSON, and CLI flags. (Equal to scheme_name()
// lower-cased, so legacy mixed-case flag values still parse.)
inline const char* scheme_slug(Scheme s) {
  switch (s) {
    case Scheme::kStandard: return "standard";
    case Scheme::kHle: return "hle";
    case Scheme::kHleScm: return "hle-scm";
    case Scheme::kPesSlr: return "pes-slr";
    case Scheme::kOptSlr: return "opt-slr";
    case Scheme::kOptSlrScm: return "opt-slr-scm";
    case Scheme::kRtmElide: return "rtm-elide";
    case Scheme::kHleScmNested: return "hle-scm-nested";
    case Scheme::kHleGroupedScm: return "hle-gscm";
    case Scheme::kAdaptive: return "adaptive";
    default: return "?";
  }
}

inline constexpr Scheme kAllSchemes[] = {
    Scheme::kStandard,  Scheme::kHle,          Scheme::kHleScm,
    Scheme::kPesSlr,    Scheme::kOptSlr,       Scheme::kOptSlrScm,
    Scheme::kRtmElide,  Scheme::kHleScmNested, Scheme::kHleGroupedScm,
    Scheme::kAdaptive,
};

inline constexpr Scheme kAllSixSchemes[] = {
    Scheme::kStandard, Scheme::kHle,    Scheme::kHleScm,
    Scheme::kPesSlr,   Scheme::kOptSlr, Scheme::kOptSlrScm,
};

struct ElisionPolicy {
  Scheme scheme = Scheme::kStandard;
  // Default access mode of CriticalSection::run(): exclusive, or — for
  // two-mode locks — shared (the whole critical section runs as one of many
  // readers; the body must not write simulated shared state).
  AccessMode mode = AccessMode::kExclusive;
  RetryParams retry;       // HLE/RTM elision drivers
  ScmParams scm;           // kHleScm / kHleScmNested
  SlrParams slr;           // kPesSlr / kOptSlr / kOptSlrScm
  GroupedScmParams grouped;  // kHleGroupedScm
  AdaptiveParams adapt;      // kAdaptive controller knobs

  ElisionPolicy() = default;

  // Compatibility shim: a bare Scheme converts to the policy the old
  // switch-based dispatch would have built for it.
  [[deprecated(
      "construct via a named constructor (ElisionPolicy::hle_scm()), "
      "ElisionPolicy::from_scheme(s), or ElisionPolicy::parse(spec)")]]
  ElisionPolicy(Scheme s) : ElisionPolicy(from_scheme(s)) {}  // NOLINT

  // --- named constructors (the paper's six schemes + extras) ---
  static ElisionPolicy standard() { return with(Scheme::kStandard); }
  static ElisionPolicy hle() { return with(Scheme::kHle); }
  static ElisionPolicy hle_scm() { return with(Scheme::kHleScm); }
  static ElisionPolicy hle_scm_nested() {
    ElisionPolicy p = with(Scheme::kHleScmNested);
    p.scm.nested_hle = true;
    return p;
  }
  static ElisionPolicy pes_slr() {
    ElisionPolicy p = with(Scheme::kPesSlr);
    p.slr.max_attempts = 1;
    return p;
  }
  static ElisionPolicy opt_slr() {
    ElisionPolicy p = with(Scheme::kOptSlr);
    p.slr.max_attempts = 10;
    return p;
  }
  static ElisionPolicy opt_slr_scm() {
    ElisionPolicy p = with(Scheme::kOptSlrScm);
    p.slr.scm = true;
    return p;
  }
  static ElisionPolicy rtm_elide() { return with(Scheme::kRtmElide); }
  static ElisionPolicy hle_grouped_scm() {
    return with(Scheme::kHleGroupedScm);
  }
  // Online mode controller (locks/adaptive.hpp): migrates each lock between
  // plain HLE, HLE-SCM, grouped SCM and no elision from windowed abort-rate
  // feedback with hysteresis.
  static ElisionPolicy adaptive() { return with(Scheme::kAdaptive); }

  static ElisionPolicy from_scheme(Scheme s) {
    switch (s) {
      case Scheme::kStandard: return standard();
      case Scheme::kHle: return hle();
      case Scheme::kHleScm: return hle_scm();
      case Scheme::kPesSlr: return pes_slr();
      case Scheme::kOptSlr: return opt_slr();
      case Scheme::kOptSlrScm: return opt_slr_scm();
      case Scheme::kRtmElide: return rtm_elide();
      case Scheme::kHleScmNested: return hle_scm_nested();
      case Scheme::kHleGroupedScm: return hle_grouped_scm();
      case Scheme::kAdaptive: return adaptive();
    }
    return standard();
  }

  const char* name() const { return scheme_name(scheme); }
  const char* slug() const { return scheme_slug(scheme); }

  // --- canonical string spec (parse/format round-trip) ---
  // `<scheme>[+shared][:knob=N...]`; knobs are emitted only when they differ
  // from the scheme's defaults, so from_scheme(s).spec() == scheme_slug(s).
  // parse(spec()) == *this for any policy built from the named constructors
  // and the fluent knobs below.
  std::string spec() const {
    std::string out = scheme_slug(scheme);
    if (mode == AccessMode::kShared) out += "+shared";
    ElisionPolicy base = from_scheme(scheme);
    char buf[48];
    if (scm.max_retries != base.scm.max_retries) {
      std::snprintf(buf, sizeof buf, ":scm-retries=%d", scm.max_retries);
      out += buf;
    }
    if (slr.max_attempts != base.slr.max_attempts) {
      std::snprintf(buf, sizeof buf, ":slr-attempts=%d", slr.max_attempts);
      out += buf;
    }
    if (retry.max_spec_attempts != base.retry.max_spec_attempts) {
      std::snprintf(buf, sizeof buf, ":spec-attempts=%d",
                    retry.max_spec_attempts);
      out += buf;
    }
    if (retry.backoff_base_cycles != base.retry.backoff_base_cycles) {
      std::snprintf(buf, sizeof buf, ":backoff=%llu",
                    static_cast<unsigned long long>(
                        retry.backoff_base_cycles));
      out += buf;
    }
    if (adapt.window != base.adapt.window) {
      std::snprintf(buf, sizeof buf, ":window=%d", adapt.window);
      out += buf;
    }
    if (adapt.up_pct != base.adapt.up_pct) {
      std::snprintf(buf, sizeof buf, ":up=%d", adapt.up_pct);
      out += buf;
    }
    if (adapt.down_pct != base.adapt.down_pct) {
      std::snprintf(buf, sizeof buf, ":down=%d", adapt.down_pct);
      out += buf;
    }
    if (adapt.dwell != base.adapt.dwell) {
      std::snprintf(buf, sizeof buf, ":dwell=%d", adapt.dwell);
      out += buf;
    }
    return out;
  }

  // Parses a policy spec (case-insensitive; legacy scheme_name() spellings
  // such as "HLE-SCM" are accepted because they lower-case to the slug).
  // Returns nullopt for an unknown scheme or a malformed knob.
  static std::optional<ElisionPolicy> parse(std::string_view s) {
    std::string lower(s);
    for (char& c : lower) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    std::string_view rest = lower;
    const std::size_t colon = rest.find(':');
    std::string_view head = rest.substr(0, colon);
    rest = colon == std::string_view::npos ? std::string_view{}
                                           : rest.substr(colon + 1);
    bool shared = false;
    constexpr std::string_view kSharedSuffix = "+shared";
    if (head.size() >= kSharedSuffix.size() &&
        head.substr(head.size() - kSharedSuffix.size()) == kSharedSuffix) {
      shared = true;
      head = head.substr(0, head.size() - kSharedSuffix.size());
    }
    std::optional<ElisionPolicy> out;
    for (const Scheme sch : kAllSchemes) {
      if (head == scheme_slug(sch)) {
        out = from_scheme(sch);
        break;
      }
    }
    if (!out) return std::nullopt;
    if (shared) out->mode = AccessMode::kShared;
    while (!rest.empty()) {
      const std::size_t next = rest.find(':');
      const std::string_view knob = rest.substr(0, next);
      rest = next == std::string_view::npos ? std::string_view{}
                                            : rest.substr(next + 1);
      const std::size_t eq = knob.find('=');
      if (eq == std::string_view::npos) return std::nullopt;
      const std::string_view key = knob.substr(0, eq);
      const std::string value(knob.substr(eq + 1));
      // Knob values are non-negative decimal integers. Requiring a leading
      // digit rejects what strtoull would silently accept: a leading '-'
      // (which wraps — "-1" becomes ULLONG_MAX and a negative retry count
      // after the int cast), '+', and whitespace.
      if (value.empty() ||
          !std::isdigit(static_cast<unsigned char>(value[0]))) {
        return std::nullopt;
      }
      char* end = nullptr;
      errno = 0;
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || errno == ERANGE) {
        return std::nullopt;
      }
      // Every knob but backoff is an int: range-check before the cast so an
      // out-of-range value cannot wrap into a negative count.
      const bool fits_int = n <= static_cast<unsigned long long>(INT_MAX);
      if (key == "scm-retries") {
        if (!fits_int) return std::nullopt;
        *out = out->with_scm_retries(static_cast<int>(n));
      } else if (key == "slr-attempts") {
        if (!fits_int) return std::nullopt;
        *out = out->with_slr_attempts(static_cast<int>(n));
      } else if (key == "spec-attempts") {
        if (!fits_int) return std::nullopt;
        *out = out->with_max_spec_attempts(static_cast<int>(n));
      } else if (key == "backoff") {
        *out = out->with_backoff(n);
      } else if (key == "window") {
        if (!fits_int) return std::nullopt;
        *out = out->with_adaptive_window(static_cast<int>(n));
      } else if (key == "up") {
        if (!fits_int) return std::nullopt;
        out->adapt.up_pct = static_cast<int>(n);
      } else if (key == "down") {
        if (!fits_int) return std::nullopt;
        out->adapt.down_pct = static_cast<int>(n);
      } else if (key == "dwell") {
        if (!fits_int) return std::nullopt;
        *out = out->with_adaptive_dwell(static_cast<int>(n));
      } else {
        return std::nullopt;
      }
    }
    return out;
  }

  friend bool operator==(const ElisionPolicy&, const ElisionPolicy&) =
      default;

  // --- fluent tuning knobs ---
  ElisionPolicy with_mode(AccessMode m) const {
    ElisionPolicy p = *this;
    p.mode = m;
    return p;
  }
  // Shared-mode variant of this policy: run() takes the lock as a reader.
  ElisionPolicy shared() const { return with_mode(AccessMode::kShared); }
  ElisionPolicy with_scm_retries(int n) const {
    ElisionPolicy p = *this;
    p.scm.max_retries = n;
    p.slr.scm_max_retries = n;
    p.grouped.max_retries = n;
    return p;
  }
  ElisionPolicy with_slr_attempts(int n) const {
    ElisionPolicy p = *this;
    p.slr.max_attempts = n;
    return p;
  }
  ElisionPolicy with_max_spec_attempts(int n) const {
    ElisionPolicy p = *this;
    p.retry.max_spec_attempts = n;
    return p;
  }
  ElisionPolicy with_backoff(std::uint64_t base_cycles) const {
    ElisionPolicy p = *this;
    p.retry.backoff_base_cycles = base_cycles;
    return p;
  }
  // Adaptive-controller knobs (kAdaptive; see locks/adaptive.hpp).
  ElisionPolicy with_adaptive_window(int regions) const {
    ElisionPolicy p = *this;
    p.adapt.window = regions;
    return p;
  }
  ElisionPolicy with_adaptive_thresholds(int up_pct, int down_pct) const {
    ElisionPolicy p = *this;
    p.adapt.up_pct = up_pct;
    p.adapt.down_pct = down_pct;
    return p;
  }
  ElisionPolicy with_adaptive_dwell(int windows) const {
    ElisionPolicy p = *this;
    p.adapt.dwell = windows;
    return p;
  }

 private:
  static ElisionPolicy with(Scheme s) {
    ElisionPolicy p;
    p.scheme = s;
    return p;
  }
};

}  // namespace elision::locks
