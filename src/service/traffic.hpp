// Open-loop traffic for the sharded KV service.
//
// Key popularity is Zipf-distributed (the YCSB / Gray et al. "scrambled"
// request pattern every serving benchmark uses): rank r is requested with
// probability proportional to 1/r^theta, so a handful of keys — and, through
// ShardedKv::shard_of, a handful of shards — absorb most of the load.
//
// Arrivals are open-loop: each simulated worker drains a Poisson request
// stream whose arrival times are drawn independently of service completion
// (the superposition of its clients' individual Poisson streams, which is
// itself Poisson — so thousands of clients cost nothing to simulate). When
// the service falls behind, requests queue and latency grows by the wait —
// exactly the tail-latency behaviour closed-loop benchmarks hide.
#pragma once

#include <cmath>
#include <cstdint>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace elision::service {

// Gray et al.'s approximate Zipf sampler over ranks [0, n). The zeta
// normalizer is computed in the constructor (O(n), no caching — every
// generator built from the same (n, theta) behaves identically, keeping
// multi-seed fan-out deterministic).
class ZipfGenerator {
 public:
  explicit ZipfGenerator(std::uint64_t n, double theta = 0.99);

  // Next rank in [0, n), rank 0 most popular.
  std::uint64_t next(support::Xoshiro256& rng) const;

  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
};

// One exponentially-distributed interarrival gap, >= 1 cycle.
inline std::uint64_t exponential_cycles(support::Xoshiro256& rng,
                                        double mean_cycles) {
  ELISION_DCHECK(mean_cycles > 0.0);
  const double u = rng.next_double();  // [0, 1)
  const double gap = -std::log1p(-u) * mean_cycles;
  if (gap < 1.0) return 1;
  // Clamp far beyond any plausible virtual run length; keeps the cast
  // defined for a pathological mean.
  if (gap > 1e18) return static_cast<std::uint64_t>(1e18);
  return static_cast<std::uint64_t>(gap);
}

// The per-worker open-loop arrival clock. `mean_cycles` is the worker's
// aggregate interarrival mean: clients_per_worker streams of rate
// 1/client_mean superpose to rate clients_per_worker/client_mean.
class OpenLoopClock {
 public:
  // Schedules the first arrival relative to `now`.
  void prime(support::Xoshiro256& rng, std::uint64_t now,
             double mean_cycles) {
    next_arrival_ = now + exponential_cycles(rng, mean_cycles);
    primed_ = true;
  }
  bool primed() const { return primed_; }

  // Consumes the pending arrival and schedules the next one. Returns the
  // consumed arrival time — the request's latency epoch, whether or not
  // the worker is running behind it.
  std::uint64_t pop(support::Xoshiro256& rng, double mean_cycles) {
    const std::uint64_t arrival = next_arrival_;
    next_arrival_ = arrival + exponential_cycles(rng, mean_cycles);
    return arrival;
  }

 private:
  std::uint64_t next_arrival_ = 0;
  bool primed_ = false;
};

}  // namespace elision::service
