// Figure 3.5 — the two lock-elision mechanisms (native HLE vs the
// RTM-based equivalent used for abort counting) perform comparably.
//
// Expected shape: for each lock and mix, the HLE-based and RTM-based
// speedups over the standard lock track each other closely.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace elision;
  using namespace elision::bench;
  harness::banner("Figure 3.5",
                  "HLE-based vs RTM-based lock elision (8 threads).\n"
                  "Expect: the two mechanisms give comparable speedups "
                  "for both locks at every point.");
  harness::Table table({"mix", "lock", "tree-size", "hle-speedup",
                        "rtm-speedup"});
  for (const auto& mix : kMixes) {
    for (const LockSel lock : {LockSel::kTtas, LockSel::kMcs}) {
      for (const std::size_t size : kTreeSizesSmall) {
        RbPoint p;
        p.size = size;
        p.update_pct = mix.update_pct;
        p.lock = lock;
        p.scheme = locks::ElisionPolicy::standard();
        const auto std_stats = run_rb_point(p);
        p.scheme = locks::ElisionPolicy::hle();
        const auto hle_stats = run_rb_point(p);
        p.scheme = locks::ElisionPolicy::rtm_elide();
        const auto rtm_stats = run_rb_point(p);
        table.add_row({mix.name, lock_sel_name(lock), harness::fmt_int(size),
                       harness::fmt(hle_stats.throughput() /
                                    std_stats.throughput(), 2),
                       harness::fmt(rtm_stats.throughput() /
                                    std_stats.throughput(), 2)});
      }
    }
  }
  table.print();
  return 0;
}
