// Shared<T>: a word of simulated shared memory.
//
// Every piece of state that simulated threads share must be a Shared<T> (or
// SharedArray<T>); accesses go through the TSX engine, which performs
// conflict detection, elision, and virtual-time cost accounting. T must be
// trivially copyable and at most 8 bytes (pointers, integers, doubles,
// small enums/structs).
//
// Because every access ends in the engine's cost accounting, each one is
// also a SimThread::tick() call — and therefore a perturbation point for the
// schedule-exploration stress subsystem (src/stress, sim::PerturbConfig):
// stress runs may inject a random delay at any Shared<T> access, exploring
// interleavings a fixed seed would never produce. Code that bypasses
// Shared<T> for simulated state is invisible to conflict detection *and* to
// the stress harness; don't.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "support/align.hpp"
#include "tsx/engine.hpp"

namespace elision::tsx {

template <typename T>
class Shared {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "Shared<T> requires a trivially copyable T of at most 8 bytes");

 public:
  Shared() = default;
  explicit Shared(T v) { unsafe_set(v); }

  // Sharing the raw word with the engine: not copyable while simulated
  // threads may hold the address; plain copies are only safe during setup.
  Shared(const Shared& o) : raw_(o.raw_) {}
  Shared& operator=(const Shared& o) {
    raw_ = o.raw_;
    return *this;
  }

  T load(Ctx& ctx) const { return decode(ctx.engine().load(ctx, &raw_)); }
  void store(Ctx& ctx, T v) { ctx.engine().store(ctx, &raw_, encode(v)); }

  T exchange(Ctx& ctx, T v) {
    return decode(ctx.engine().exchange(ctx, &raw_, encode(v)));
  }

  T fetch_add(Ctx& ctx, T delta)
    requires std::is_integral_v<T>
  {
    return decode(ctx.engine().fetch_add(
        ctx, &raw_, static_cast<std::uint64_t>(delta)));
  }

  bool compare_exchange(Ctx& ctx, T expected, T desired) {
    return ctx.engine().compare_exchange(ctx, &raw_, encode(expected),
                                         encode(desired));
  }

  // --- XACQUIRE/XRELEASE-tagged operations (lock implementations only) ---
  T xacquire_exchange(Ctx& ctx, T v) {
    return decode(ctx.engine().xacquire_exchange(ctx, &raw_, encode(v)));
  }
  T xacquire_fetch_add(Ctx& ctx, T delta)
    requires std::is_integral_v<T>
  {
    return decode(ctx.engine().xacquire_fetch_add(
        ctx, &raw_, static_cast<std::uint64_t>(delta)));
  }
  bool xacquire_compare_exchange(Ctx& ctx, T expected, T desired) {
    return ctx.engine().xacquire_compare_exchange(ctx, &raw_,
                                                  encode(expected),
                                                  encode(desired));
  }
  void xrelease_store(Ctx& ctx, T v) {
    ctx.engine().xrelease_store(ctx, &raw_, encode(v));
  }
  bool xrelease_compare_exchange(Ctx& ctx, T expected, T desired) {
    return ctx.engine().xrelease_compare_exchange(ctx, &raw_,
                                                  encode(expected),
                                                  encode(desired));
  }
  T xrelease_fetch_add(Ctx& ctx, T delta)
    requires std::is_integral_v<T>
  {
    return decode(ctx.engine().xrelease_fetch_add(
        ctx, &raw_, static_cast<std::uint64_t>(delta)));
  }

  // --- setup/teardown accessors (no simulated threads running) ---
  T unsafe_get() const { return decode(raw_); }
  void unsafe_set(T v) { raw_ = encode(v); }

 private:
  static std::uint64_t encode(T v) {
    std::uint64_t raw = 0;
    std::memcpy(&raw, &v, sizeof(T));
    return raw;
  }
  static T decode(std::uint64_t raw) {
    T v;
    std::memcpy(&v, &raw, sizeof(T));
    return v;
  }

  std::uint64_t raw_ = 0;
};

// A contiguous array of shared words. Consecutive elements share cache lines
// (8 per line), which is the realistic layout for the array-based workloads.
// The buffer is anchored to a line boundary so the element -> line grouping
// is always exactly that — elements [8k, 8k+8) on one line — instead of
// shifting with the heap address, which keeps simulations byte-identical
// when independent runs execute on different host threads.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  explicit SharedArray(std::size_t n) : elems_(n) {}

  void resize(std::size_t n) { elems_.resize(n); }
  std::size_t size() const { return elems_.size(); }

  Shared<T>& operator[](std::size_t i) { return elems_[i]; }
  const Shared<T>& operator[](std::size_t i) const { return elems_[i]; }

 private:
  std::vector<Shared<T>, support::LineAlignedAllocator<Shared<T>>> elems_;
};

}  // namespace elision::tsx
