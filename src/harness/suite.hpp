// Benchmark-suite orchestration: a curated, tiered set of (scheme x lock x
// workload) points drawn from the figure/table/ablation benches, run through
// the shared RB-tree workload, with
//
//   - canonical machine-readable results (BENCH_results.json) carrying
//     per-point throughput, spec/nonspec fractions, attempts-per-op, the
//     abort-cause matrix and avalanche episode counts, plus run metadata
//     (seeds, duration scale, machine config, telemetry availability);
//   - regression gating against a committed baseline with per-metric
//     relative tolerances; and
//   - the paper's qualitative invariants (Ch. 5/6) checked on every run,
//     e.g. SCM >= plain HLE on the contended MCS point, adjusted ticket/CLH
//     locks committing speculatively when solo.
//
// tools/bench_suite is the CLI front-end; scripts/check.sh runs the smoke
// tier as a pre-merge gate. See docs/benchmarks.md for the schema and the
// baseline-update workflow.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/bt_workload.hpp"
#include "harness/phase_workload.hpp"
#include "harness/rb_workload.hpp"
#include "service/kv_workload.hpp"
#include "support/json.hpp"
#include "tsx/abort.hpp"

namespace elision::harness {

inline constexpr int kSuiteSchemaVersion = 1;

enum class SuiteTier { kSmoke, kFull };

const char* suite_tier_name(SuiteTier t);
std::optional<SuiteTier> suite_tier_from_name(const std::string& name);

// What workload a suite point runs: the RB-tree benchmark (fixed virtual
// duration), the B+tree range-scan benchmark over the two-mode locks
// (harness/bt_workload.hpp), the fixed-work engine microbenchmark
// (harness/micro_point.hpp) whose sim_ops_per_sec tracks simulator speed
// itself, the phase-shifting RB-tree benchmark behind the adaptive
// headline (harness/phase_workload.hpp), or the sharded KV service under
// Zipf-skewed open-loop traffic (service/kv_workload.hpp).
enum class PointKind { kRb, kMicro, kBtree, kPhase, kKv };

const char* point_kind_name(PointKind k);

struct SuitePoint {
  std::string id;      // stable key used for baseline matching
  SuiteTier tier;      // smoke points are a subset of the full tier
  std::string figure;  // paper figure/table the point reproduces
  PointKind kind = PointKind::kRb;
  RbPoint point;       // for kMicro only threads/size/seed are meaningful
  BtPoint bt;          // kBtree only
  PhasePoint phase;    // kPhase only
  service::KvPoint kv; // kKv only
};

// The curated list, smoke points first. Ids are unique.
const std::vector<SuitePoint>& suite_points();
// Points belonging to `tier` (kFull returns everything).
std::vector<SuitePoint> suite_points_for(SuiteTier tier);

// Derived, comparable metrics of one completed point. This is the unit the
// baseline stores and the gate compares.
struct PointMetrics {
  double throughput_ops_per_sec = 0.0;
  double spec_fraction = 0.0;
  double nonspec_fraction = 0.0;
  double attempts_per_op = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t attempts = 0;
  std::uint64_t elapsed_cycles = 0;
  std::uint64_t tx_begins = 0;
  std::uint64_t tx_commits = 0;
  std::uint64_t tx_aborts = 0;
  // Indexed by tsx::AbortCause.
  std::vector<std::uint64_t> aborts_by_cause;
  std::uint64_t avalanche_episodes = 0;
  std::uint64_t avalanche_victims = 0;
  // kPhase points only: ops committed per phase (empty otherwise). Phases
  // have equal virtual duration, so these compare like throughputs; the
  // adaptive invariants below consume them.
  std::vector<std::uint64_t> phase_ops;
  // Virtual-time request-latency percentiles per op kind (empty unless the
  // workload records RunStats::op_latency — currently the kKv points). All
  // cycle values are integers (QuantileHistogram bucket bounds), so they
  // are byte-identical across host parallelism settings.
  struct OpLatencySummary {
    std::string op;
    std::uint64_t samples = 0;
    std::uint64_t p50_cycles = 0;
    std::uint64_t p99_cycles = 0;
    std::uint64_t p999_cycles = 0;
    std::uint64_t max_cycles = 0;
  };
  std::vector<OpLatencySummary> latency;
  // Per-access fast-path telemetry (docs/simulator.md): owned-line cache
  // hits, slot-memo probe skips, and switch-bound recomputes. Host-side
  // observability of the hot path — none of these feed a simulated metric.
  // fp_bound_recomputes is schedule-determined (identical across processes)
  // but fp_owned_hits/fp_probe_skips depend on the host heap layout: line
  // ids are real addresses >> 6 and index the direct-mapped caches, so two
  // processes can see different collision patterns while simulating the
  // exact same run. Comparisons (gate, parallel-identity, baseline drift)
  // must treat the whole object like wall_ms and ignore it. Emitted in JSON
  // as an optional "fastpath" object only when at least one is non-zero
  // (ELISION_FASTPATH=0 runs stay byte-identical to pre-fastpath output).
  std::uint64_t fp_owned_hits = 0;
  std::uint64_t fp_probe_skips = 0;
  std::uint64_t fp_bound_recomputes = 0;
  // Host-side speed: simulated ops completed per host wall second and the
  // point's host wall time. These are the only non-deterministic fields of a
  // point (everything above is virtual-time data, identical per seed).
  double sim_ops_per_sec = 0.0;
  double wall_ms = 0.0;

  static PointMetrics derive(const RunStats& stats);
};

struct PointRecord {
  SuitePoint def;
  PointMetrics metrics;
};

struct SuiteResult {
  SuiteTier tier = SuiteTier::kSmoke;
  double duration_scale = 1.0;
  bool telemetry_compiled = false;
  // Machine config shared by all points (seeds vary per point).
  unsigned n_cores = 0;
  unsigned smt_per_core = 0;
  double ghz = 0.0;
  // Host-run metadata: physical core count of the machine that produced the
  // results, the --jobs level used, how those jobs were executed ("fork" =
  // one child process per point, "threads" = in-process pool), the per-point
  // multi-seed fan-out width, and the suite's total wall time. Like every
  // host field, none of this affects the simulated metrics.
  unsigned host_cores = 0;
  int jobs = 1;
  std::string jobs_mode = "fork";
  int host_threads = 1;
  double total_wall_ms = 0.0;
  std::vector<PointRecord> points;

  const PointRecord* find(const std::string& id) const;
};

struct SuiteRunOptions {
  // Multiplies every reported throughput: the planted-regression self-check
  // hook (scripts/check.sh runs the gate with 0.5 and expects it to fail).
  double plant_throughput_factor = 1.0;
  // Same for sim_ops_per_sec: the planted-slowdown self-check proving the
  // simulator-speed gate fires.
  double plant_simops_factor = 1.0;
  // Host threads each point's multi-seed fan-out may use
  // (RbPoint::host_threads; support/parallel.hpp). Simulated metrics are
  // byte-identical at any value — only wall_ms / sim_ops_per_sec change.
  int host_threads = 1;
  // Progress callback, called after each point completes. May be null.
  std::function<void(const SuitePoint&, const PointMetrics&)> on_point;
};

SuiteResult run_suite(SuiteTier tier, const SuiteRunOptions& opts = {});

// Runs a single point (used by bench_suite --point, the per-point child of
// parallel suite execution, and by the in-process --jobs-mode threads
// runner), measuring wall_ms / sim_ops_per_sec. `host_threads` seeds the
// point's multi-seed fan-out width.
PointRecord run_suite_point(const SuitePoint& sp, int host_threads = 1);

// ---- canonical JSON results ----

// Writes the BENCH_results.json document (schema_version 1).
void write_results_json(const SuiteResult& result, std::FILE* out);

// Parses a document produced by write_results_json (e.g. the committed
// baseline). Nullopt on schema mismatch or malformed input.
std::optional<SuiteResult> parse_results_json(const support::json::Value& doc);
std::optional<SuiteResult> load_results_file(const std::string& path);

// ---- regression gate ----

struct GateTolerance {
  // Throughput regression: current < baseline * (1 - throughput_rel).
  double throughput_rel = 0.10;
  // Attempts-per-op regression: current > baseline * (1 + attempts_rel).
  double attempts_rel = 0.15;
  // Non-speculative-fraction regression: current > baseline + fraction_abs.
  double fraction_abs = 0.08;
  // Simulator-speed regression: current sim_ops_per_sec <
  // baseline * (1 - simops_rel). Host speed varies across machines far more
  // than virtual-time metrics do, hence the generous default; gate a
  // same-machine baseline with a tight value (scripts/check.sh does).
  double simops_rel = 0.75;
};

struct GateIssue {
  std::string point_id;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  std::string detail;
};

struct GateReport {
  std::vector<GateIssue> regressions;   // gate fails if non-empty
  std::vector<GateIssue> improvements;  // beyond tolerance: refresh baseline
  std::vector<std::string> notes;       // metadata drift, new points, ...
  bool ok() const { return regressions.empty(); }
};

// Compares every current point against the baseline point with the same id.
// A baseline point of the current tier that is missing from `current` is a
// regression (coverage loss); points new in `current` are notes.
GateReport compare_to_baseline(const SuiteResult& current,
                               const SuiteResult& baseline,
                               const GateTolerance& tol = {});

void print_gate_report(const GateReport& report, std::FILE* out);

// ---- paper-qualitative invariants ----

struct InvariantResult {
  std::string name;
  bool ok = false;
  bool skipped = false;  // required point not in this tier / no telemetry
  std::string detail;
};

// Checks the qualitative expectations of Ch. 5/6 on a completed run. A
// violated invariant means behaviour diverged from the paper, independent
// of any baseline.
std::vector<InvariantResult> check_invariants(const SuiteResult& result);

}  // namespace elision::harness
