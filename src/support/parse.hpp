// Strict numeric parsing for CLI flags. The tools used to run atoi/atof on
// user input, which silently turns "--jobs foo" into 0 and accepts
// negatives and overflow; these helpers follow the same whole-string policy
// as ELISION_BENCH_SCALE and ElisionPolicy::parse — the entire argument must
// be a number in range, otherwise std::nullopt (callers print usage and
// exit non-zero).
#pragma once

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

namespace elision::support {

// Non-negative decimal integer, digits only (no sign, no whitespace, no
// trailing junk), value <= UINT64_MAX.
inline std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

// Non-negative decimal integer that fits in int.
inline std::optional<int> parse_int(const std::string& s) {
  const auto v = parse_u64(s);
  if (!v || *v > static_cast<std::uint64_t>(INT_MAX)) return std::nullopt;
  return static_cast<int>(*v);
}

// Finite double covering the whole string (strtod syntax, so "0.5", "1e-3"
// and "2" all parse; "", "x", "1x" and "inf" do not).
inline std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || !std::isfinite(v)) return std::nullopt;
  return v;
}

}  // namespace elision::support
