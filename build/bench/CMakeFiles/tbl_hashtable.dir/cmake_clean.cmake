file(REMOVE_RECURSE
  "CMakeFiles/tbl_hashtable.dir/tbl_hashtable.cpp.o"
  "CMakeFiles/tbl_hashtable.dir/tbl_hashtable.cpp.o.d"
  "tbl_hashtable"
  "tbl_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
