# Empty compiler generated dependencies file for elision_ds.
# This may be replaced when dependencies are built.
