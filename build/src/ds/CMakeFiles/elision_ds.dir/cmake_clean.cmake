file(REMOVE_RECURSE
  "CMakeFiles/elision_ds.dir/binheap.cpp.o"
  "CMakeFiles/elision_ds.dir/binheap.cpp.o.d"
  "CMakeFiles/elision_ds.dir/hashtable.cpp.o"
  "CMakeFiles/elision_ds.dir/hashtable.cpp.o.d"
  "CMakeFiles/elision_ds.dir/rbtree.cpp.o"
  "CMakeFiles/elision_ds.dir/rbtree.cpp.o.d"
  "CMakeFiles/elision_ds.dir/skiplist.cpp.o"
  "CMakeFiles/elision_ds.dir/skiplist.cpp.o.d"
  "libelision_ds.a"
  "libelision_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elision_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
