// Figure 3.4 — HLE speedup over the standard version of each lock, for
// three contention levels (lookups-only / 20% updates / 100% updates),
// TTAS vs MCS, at 4 and 8 threads.
//
// Expected shape: TTAS gains from HLE across the spectrum (largest on
// mid-size trees); MCS gains nothing (speedup ~1 or below everywhere).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace elision;
  using namespace elision::bench;
  harness::banner("Figure 3.4",
                  "HLE speedup vs the standard version of each lock, by "
                  "contention level.\n"
                  "Expect: TTAS speedups > 1 (largest without contention); "
                  "MCS ~1 everywhere.");
  for (const int threads : {4, 8}) {
    std::printf("\n-- %d threads --\n", threads);
    harness::Table table({"mix", "lock", "tree-size", "hle-speedup"});
    for (const auto& mix : kMixes) {
      for (const LockSel lock : {LockSel::kTtas, LockSel::kMcs}) {
        for (const std::size_t size : kTreeSizesSmall) {
          RbPoint p;
          p.size = size;
          p.update_pct = mix.update_pct;
          p.threads = threads;
          p.lock = lock;
          p.scheme = locks::ElisionPolicy::standard();
          const auto std_stats = run_rb_point(p);
          p.scheme = locks::ElisionPolicy::hle();
          const auto hle_stats = run_rb_point(p);
          table.add_row({mix.name, lock_sel_name(lock),
                         harness::fmt_int(size),
                         harness::fmt(hle_stats.throughput() /
                                      std_stats.throughput(), 2)});
        }
      }
    }
    table.print();
  }
  return 0;
}
