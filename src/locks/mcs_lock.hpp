// MCS queue lock with HLE support (paper Algorithm 2).
//
// The MCS lock is the paper's representative fair lock: it is the only
// classic fair lock whose release restores the lock word (the queue tail) to
// its pre-acquire value in a solo run, which HLE requires. Under elision the
// XACQUIRE SWAP elides the enqueue; if the queue was non-empty the
// speculative thread spins transactionally and is doomed (the PAUSE aborts
// it), reproducing the avalanche dynamics of Ch. 3.
#pragma once

#include <array>
#include <cstdint>

#include "support/align.hpp"
#include "support/check.hpp"
#include "tsx/config.hpp"
#include "tsx/shared.hpp"

namespace elision::locks {

class McsLock {
 public:
  static constexpr const char* kName = "MCS";
  static constexpr bool kIsFair = true;
  static constexpr int kMaxThreads = tsx::kMaxThreads;

  void lock(tsx::Ctx& ctx) {
    ELISION_CHECK_MSG(ctx.id() >= 0 && ctx.id() < kMaxThreads,
                      "thread id outside the MCS lock's node array");
    QNode& my = nodes_[static_cast<std::size_t>(ctx.id())];
    // Node initialization precedes the XACQUIRE: non-transactional.
    my.locked.store(ctx, 1);
    my.next.store(ctx, nullptr);
    QNode* pred = tail_.value.xacquire_exchange(ctx, &my);
    if (pred != nullptr) {
      pred->next.store(ctx, &my);
      while (my.locked.load(ctx) != 0) ctx.engine().pause(ctx);
    }
  }

  void unlock(tsx::Ctx& ctx) {
    QNode& my = nodes_[static_cast<std::size_t>(ctx.id())];
    if (my.next.load(ctx) == nullptr) {
      if (tail_.value.xrelease_compare_exchange(ctx, &my, nullptr)) return;
      while (my.next.load(ctx) == nullptr) ctx.engine().pause(ctx);
    }
    my.next.load(ctx)->locked.store(ctx, 0);
  }

  bool is_held(tsx::Ctx& ctx) { return tail_.value.load(ctx) != nullptr; }

  // Cache line of the elidable lock word (telemetry tagging).
  support::LineId lock_line() const { return support::line_of(&tail_.value); }

  // Abort aftermath: the SWAP is re-issued non-transactionally, enqueueing
  // the thread for a non-speculative critical section (fair locks "remember"
  // the conflict — Ch. 3). Always acquires.
  bool reissue_acquire_standard(tsx::Ctx& ctx) {
    lock(ctx);  // ctx is in standard mode: the SWAP executes for real
    return true;
  }

 private:
  struct alignas(support::kCacheLineBytes) QNode {
    tsx::Shared<QNode*> next;
    tsx::Shared<std::uint64_t> locked;
  };

  support::CacheAligned<tsx::Shared<QNode*>> tail_;
  std::array<QNode, kMaxThreads> nodes_;
};

}  // namespace elision::locks
