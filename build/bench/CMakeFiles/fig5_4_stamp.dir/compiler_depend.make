# Empty compiler generated dependencies file for fig5_4_stamp.
# This may be replaced when dependencies are built.
