// Software-assisted lock removal (SLR) — Ch. 4.
//
// The critical section runs transactionally without touching the lock until
// it is ready to commit; it then reads the lock and commits only if the lock
// is free. Unlike elision there is no lock acquisition to elide, so
// speculation can proceed (partially) even while the lock is held
// non-speculatively. Pessimistic SLR gives up after one failure; optimistic
// SLR retries 10 times. Conflict management (SCM) composes with SLR by
// serializing conflicting threads on the auxiliary lock.
#pragma once

#include "locks/region.hpp"
#include "support/function_ref.hpp"
#include "tsx/engine.hpp"

namespace elision::locks {

struct SlrParams {
  int max_attempts = 10;  // 1 = pessimistic, 10 = optimistic (Sec 5.1)
  bool scm = false;
  int scm_max_retries = 10;

  friend bool operator==(const SlrParams&, const SlrParams&) = default;
};

template <typename MainLock, typename AuxLock>
RegionResult slr_region(tsx::Ctx& ctx, MainLock& main, AuxLock& aux,
                        const SlrParams& params,
                        support::FunctionRef<void()> body,
                        AccessMode mode = AccessMode::kExclusive) {
  auto& eng = ctx.engine();
  RegionResult r;
  int failures = 0;
  int retries = 0;
  bool aux_owner = false;
  for (;;) {
    ++r.attempts;
    const unsigned st = eng.run_transaction(ctx, [&] {
      body();
      // Lock removal: consult the lock only at commit time. In shared mode
      // only a writer blocks the commit.
      if (detail::mode_blocked(ctx, main, mode)) {
        eng.xabort(ctx, kAbortCodeLockBusy);
      }
    });
    if (st == tsx::kCommitted) {
      r.speculative = true;
      if (aux_owner) eng.note_event(ctx, tsx::EventKind::kAuxRejoin);
      break;
    }
    r.last_abort = ctx.last_abort_cause();
    ++failures;
    // Tuning (Sec 5.1): when the abort status says a retry cannot succeed
    // (e.g. capacity), switch to a non-speculative execution immediately —
    // before joining the aux-lock queue, which would serialize this thread
    // behind the conflict group for nothing.
    if ((st & tsx::status::kRetry) == 0) {
      complete_locked(ctx, main, r, body, mode);
      break;
    }
    bool give_up;
    if (params.scm) {
      if (!aux_owner) {
        eng.note_event(ctx, tsx::EventKind::kAuxEnter);
        aux.lock(ctx);
        aux_owner = true;
      } else {
        ++retries;
      }
      give_up = retries >= params.scm_max_retries;
    } else {
      give_up = failures >= params.max_attempts;
    }
    if (give_up) {
      complete_locked(ctx, main, r, body, mode);
      break;
    }
  }
  if (aux_owner) {
    aux.unlock(ctx);
    eng.note_event(ctx, tsx::EventKind::kAuxExit);
  }
  return r;
}

}  // namespace elision::locks
