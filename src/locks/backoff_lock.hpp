// TTAS lock with exponential backoff: the classic contention-throttling
// variant, included for the related-work comparison (Dice et al. [10] use
// backoff to soften the lemming effect that SCM prevents outright, Ch. 8).
//
// Under elision, backoff delays the re-issued acquisition after an abort,
// giving in-flight speculators a window to finish — a *mitigation* of the
// avalanche, where SCM is a *fix*. The ablation bench contrasts the two.
#pragma once

#include <cstdint>

#include "support/align.hpp"
#include "tsx/shared.hpp"

namespace elision::locks {

class BackoffTtasLock {
 public:
  static constexpr const char* kName = "TTAS-backoff";
  static constexpr bool kIsFair = false;

  void lock(tsx::Ctx& ctx) {
    std::uint64_t delay = kMinDelay;
    for (;;) {
      while (word_.value.load(ctx) != 0) ctx.engine().pause(ctx);
      if (word_.value.xacquire_exchange(ctx, 1) == 0) return;
      backoff(ctx, &delay);
    }
  }

  void unlock(tsx::Ctx& ctx) { word_.value.xrelease_store(ctx, 0); }

  bool is_held(tsx::Ctx& ctx) { return word_.value.load(ctx) != 0; }

  bool reissue_acquire_standard(tsx::Ctx& ctx) {
    // Back off before re-issuing the store: the Dice et al. mitigation.
    std::uint64_t delay = kMinDelay * 4;
    backoff(ctx, &delay);
    return word_.value.exchange(ctx, 1) == 0;
  }

 private:
  static constexpr std::uint64_t kMinDelay = 64;
  static constexpr std::uint64_t kMaxDelay = 8192;

  static void backoff(tsx::Ctx& ctx, std::uint64_t* delay) {
    // Randomized exponential backoff, charged as pure waiting time. Never
    // called transactionally (the pre-XACQUIRE path spins with PAUSE).
    const std::uint64_t wait =
        *delay / 2 + ctx.thread().rng().next_below(*delay / 2 + 1);
    ctx.engine().compute(ctx, wait);
    *delay = *delay * 2 > kMaxDelay ? kMaxDelay : *delay * 2;
  }

  support::CacheAligned<tsx::Shared<std::uint64_t>> word_;
};

}  // namespace elision::locks
