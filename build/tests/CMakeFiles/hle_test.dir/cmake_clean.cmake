file(REMOVE_RECURSE
  "CMakeFiles/hle_test.dir/hle_test.cpp.o"
  "CMakeFiles/hle_test.dir/hle_test.cpp.o.d"
  "hle_test"
  "hle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
