file(REMOVE_RECURSE
  "CMakeFiles/abl_conflict_policy.dir/abl_conflict_policy.cpp.o"
  "CMakeFiles/abl_conflict_policy.dir/abl_conflict_policy.cpp.o.d"
  "abl_conflict_policy"
  "abl_conflict_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_conflict_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
