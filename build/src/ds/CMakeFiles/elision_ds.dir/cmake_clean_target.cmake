file(REMOVE_RECURSE
  "libelision_ds.a"
)
