// Unit tests for the scheduler's tournament-tree ready queue plus the
// schedule-equivalence suite: golden switch counts recorded from the seed's
// O(N) linear-sweep scheduler on a grid of machine shapes, which the
// ready-queue scheduler must reproduce exactly (the tie-break and yield
// decisions are the schedule, and every byte-identity guarantee downstream
// rests on them).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/machine_config.hpp"
#include "sim/ready_queue.hpp"
#include "sim/scheduler.hpp"
#include "support/rng.hpp"

namespace elision::sim {
namespace {

constexpr std::uint64_t kFin = ReadyQueue::kFinishedClock;

// Reference the queue is checked against: the seed scheduler's fused
// min/argmin sweep, first index wins ties.
ReadyQueue::Entry linear_min(const std::vector<std::uint64_t>& clocks) {
  std::uint64_t m = clocks[0];
  std::size_t mi = 0;
  for (std::size_t i = 1; i < clocks.size(); ++i) {
    if (clocks[i] < m) {
      m = clocks[i];
      mi = i;
    }
  }
  return {m, static_cast<std::int32_t>(mi)};
}

TEST(ReadyQueue, SingleThread) {
  ReadyQueue q;
  EXPECT_EQ(q.min_clock(), kFin);  // empty queue degrades to the sentinel
  EXPECT_EQ(q.add_thread(), 0);
  EXPECT_EQ(q.min_clock(), 0u);
  EXPECT_EQ(q.min_tid(), 0);
  q.set(0, 500);
  EXPECT_EQ(q.min_clock(), 500u);
}

TEST(ReadyQueue, TiesGoToLowestTid) {
  for (int n : {2, 5, 16, 17, 40, 256}) {
    ReadyQueue q;
    for (int t = 0; t < n; ++t) q.add_thread();
    // All clocks equal: the lowest tid must win at every size, on both the
    // single-level and the two-level path.
    for (int t = 0; t < n; ++t) q.set(t, 77);
    EXPECT_EQ(q.min_tid(), 0) << "n=" << n;
    // Tie between a middle pair only.
    for (int t = 0; t < n; ++t) q.set(t, 100 + t);
    if (n >= 4) {
      q.set(n - 1, 50);
      q.set(n - 2, 50);
      EXPECT_EQ(q.min_clock(), 50u) << "n=" << n;
      EXPECT_EQ(q.min_tid(), n - 2) << "n=" << n;
    }
  }
}

TEST(ReadyQueue, FinishSentinelLosesToLiveThreads) {
  ReadyQueue q;
  for (int t = 0; t < 20; ++t) q.add_thread();
  for (int t = 0; t < 20; ++t) q.set(t, 10 + t);
  // Finish the current minimum repeatedly: the next-lowest live thread must
  // surface each time.
  for (int t = 0; t < 19; ++t) {
    EXPECT_EQ(q.min_tid(), t);
    q.set(t, kFin);
  }
  EXPECT_EQ(q.min_tid(), 19);
  EXPECT_EQ(q.min_clock(), 29u);
  q.set(19, kFin);
  EXPECT_EQ(q.min_clock(), kFin);
}

TEST(ReadyQueue, UpdateInPlaceKeepsCachesCoherent) {
  ReadyQueue q;
  for (int t = 0; t < 48; ++t) q.add_thread();
  std::vector<std::uint64_t> ref(48, 0);
  // Monotonic updates that alternate between the argmin (forcing rescans)
  // and threads far from it (taking the O(1) early-out).
  std::uint64_t clk = 1;
  for (int round = 0; round < 200; ++round) {
    const int tid = round % 2 == 0 ? q.min_tid() : (round * 7) % 48;
    ref[static_cast<std::size_t>(tid)] = clk;
    q.set(tid, clk);
    ++clk;
    const auto want = linear_min(ref);
    EXPECT_EQ(q.min_clock(), want.clock);
    EXPECT_EQ(q.min_tid(), want.tid);
  }
}

TEST(ReadyQueue, GroupBoundaryGrowth) {
  // Crossing the one-group/two-group boundary (16 -> 17) must rebuild the
  // cached levels; a stale cache here is a schedule bug, not a crash.
  ReadyQueue q;
  std::vector<std::uint64_t> ref;
  for (int t = 0; t < 16; ++t) {
    q.add_thread();
    ref.push_back(0);
    q.set(t, static_cast<std::uint64_t>(100 - t));
    ref[static_cast<std::size_t>(t)] = static_cast<std::uint64_t>(100 - t);
  }
  EXPECT_EQ(q.min_tid(), 15);
  q.add_thread();  // 17th: two-level mode from here on
  ref.push_back(0);
  EXPECT_EQ(q.min_tid(), 16);
  EXPECT_EQ(q.min_clock(), 0u);
  q.set(16, 200);
  ref[16] = 200;
  const auto want = linear_min(ref);
  EXPECT_EQ(q.min_clock(), want.clock);
  EXPECT_EQ(q.min_tid(), want.tid);
}

TEST(ReadyQueue, DifferentialFuzzAgainstLinearSweep) {
  support::Xoshiro256 rng(12345);
  for (const int n : {1, 3, 16, 17, 31, 64, 65, 200, 256}) {
    ReadyQueue q;
    std::vector<std::uint64_t> ref;
    for (int t = 0; t < n; ++t) {
      q.add_thread();
      ref.push_back(0);
    }
    for (int step = 0; step < 3000; ++step) {
      const int tid = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      std::uint64_t clock;
      switch (rng.next_below(8)) {
        case 0:
          clock = kFin;  // finish
          break;
        case 1:
          // Decrease (rebuild-style update): exercises the full rescan.
          clock = ref[static_cast<std::size_t>(tid)] / 2;
          break;
        default:
          clock = ref[static_cast<std::size_t>(tid)] == kFin
                      ? kFin
                      : ref[static_cast<std::size_t>(tid)] +
                            rng.next_below(1000);
          break;
      }
      ref[static_cast<std::size_t>(tid)] = clock;
      q.set(tid, clock);
      const auto want = linear_min(ref);
      ASSERT_EQ(q.min_clock(), want.clock) << "n=" << n << " step=" << step;
      if (want.clock != kFin) {
        ASSERT_EQ(q.min_tid(), want.tid) << "n=" << n << " step=" << step;
      }
    }
  }
}

TEST(ReadyQueueDeath, RejectsMoreThanIndexable) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ReadyQueue q;
  for (std::size_t t = 0; t < ReadyQueue::kMaxIndexable; ++t) q.add_thread();
  EXPECT_DEATH(q.add_thread(), "kMaxIndexable");
}

// --- schedule equivalence vs the seed scheduler ---

struct GoldenShape {
  int threads;
  unsigned cores;
  std::uint64_t per_thread;
  std::uint64_t tick;
  std::uint64_t slack;
  std::uint64_t switches;  // recorded from the seed's O(N)-sweep scheduler
  std::uint64_t elapsed;
};

// Golden values recorded by running this exact loop against the seed
// scheduler (linear sweep, 64-thread cap). Context-switch counts are the
// most schedule-sensitive observable there is: one different yield or
// tie-break decision anywhere diverges them permanently.
constexpr GoldenShape kGolden[] = {
    {1, 4u, 50000ull, 3ull, 0ull, 2ull, 150000ull},
    {2, 4u, 50000ull, 3ull, 0ull, 50003ull, 150000ull},
    {8, 4u, 200000ull, 3ull, 0ull, 1400009ull, 600000ull},
    {8, 4u, 100000ull, 7ull, 200ull, 26931ull, 800000ull},
    {16, 8u, 50000ull, 3ull, 0ull, 750017ull, 150000ull},
    {17, 8u, 50000ull, 3ull, 0ull, 800018ull, 150000ull},
    {33, 16u, 30000ull, 5ull, 0ull, 960034ull, 180000ull},
    {64, 32u, 50000ull, 3ull, 0ull, 3150065ull, 150000ull},
    {64, 32u, 50000ull, 3ull, 200ull, 47063ull, 150000ull},
};

TEST(ScheduleEquivalence, MatchesSeedSchedulerGoldenSwitchCounts) {
  // Both settings of switch-bound batching must reproduce the seed's
  // schedule exactly: batching only changes *when* the preemption bound is
  // recomputed, never its value at any decision point.
  for (const bool batch : {false, true}) {
    for (const GoldenShape& g : kGolden) {
      MachineConfig m;
      m.n_cores = g.cores;
      m.smt_per_core = 2;
      m.seed = 1;
      m.yield_slack_cycles = g.slack;
      m.batch_switch_bound = batch;
      Scheduler s(m);
      for (int t = 0; t < g.threads; ++t) {
        s.spawn([&g](SimThread& st) {
          for (std::uint64_t i = 0; i < g.per_thread; ++i) st.tick(g.tick);
        });
      }
      s.run();
      EXPECT_EQ(s.switch_count(), g.switches)
          << "t" << g.threads << "/" << g.cores << "c slack=" << g.slack
          << " batch=" << batch;
      EXPECT_EQ(s.elapsed_cycles(), g.elapsed)
          << "t" << g.threads << "/" << g.cores << "c slack=" << g.slack
          << " batch=" << batch;
    }
  }
}

TEST(ScheduleEquivalence, BatchingPreservesSchedulesAcrossSizes) {
  // Differential batching-on vs batching-off sweep across the 16->17 group
  // boundary, both yield-slack regimes, and the full 1..256 size range:
  // switch counts and elapsed cycles (the schedule's fingerprint) must be
  // bit-identical, and batching must recompute the bound once per switch.
  for (const int threads : {1, 2, 15, 16, 17, 33, 64, 128, 256}) {
    for (const std::uint64_t slack : {std::uint64_t{0}, std::uint64_t{200}}) {
      std::uint64_t switches[2] = {0, 0};
      std::uint64_t elapsed[2] = {0, 0};
      for (const int batch : {0, 1}) {
        MachineConfig m;
        m.n_cores = static_cast<unsigned>(threads + 1) / 2;
        if (m.n_cores == 0) m.n_cores = 1;
        m.smt_per_core = 2;
        m.seed = 1234;
        m.yield_slack_cycles = slack;
        m.batch_switch_bound = batch != 0;
        Scheduler s(m);
        for (int t = 0; t < threads; ++t) {
          s.spawn([t](SimThread& st) {
            // Vary per-thread work so clocks interleave non-trivially.
            for (int i = 0; i < 2000 + (t % 7) * 100; ++i) {
              st.tick(3 + static_cast<std::uint64_t>((i + t) % 5));
            }
          });
        }
        s.run();
        switches[batch] = s.switch_count();
        elapsed[batch] = s.elapsed_cycles();
        if (batch != 0) {
          // One recompute per actual thread exchange; switch_count() also
          // counts same-thread early-outs and finishes, so it bounds the
          // recomputes from above (plus the initial dispatches).
          EXPECT_GT(s.switch_bound_recomputes(), 0u)
              << "threads=" << threads << " slack=" << slack;
          EXPECT_LE(s.switch_bound_recomputes(),
                    s.switch_count() + static_cast<std::uint64_t>(threads))
              << "threads=" << threads << " slack=" << slack;
        } else {
          EXPECT_EQ(s.switch_bound_recomputes(), 0u)
              << "threads=" << threads << " slack=" << slack;
        }
      }
      EXPECT_EQ(switches[0], switches[1])
          << "threads=" << threads << " slack=" << slack;
      EXPECT_EQ(elapsed[0], elapsed[1])
          << "threads=" << threads << " slack=" << slack;
    }
  }
}

TEST(ScheduleEquivalence, BigMachineShapesRunDeterministically) {
  // Past the seed's 64-thread cap there is no seed schedule to compare
  // against; pin determinism instead (two identical runs, identical switch
  // counts) at shapes that exercise many groups including the 256 cap.
  for (const int threads : {100, 256}) {
    std::uint64_t first = 0;
    for (int rep = 0; rep < 2; ++rep) {
      MachineConfig m;
      m.n_cores = 64;
      m.smt_per_core = 4;
      m.seed = 9;
      Scheduler s(m);
      for (int t = 0; t < threads; ++t) {
        s.spawn([](SimThread& st) {
          for (int i = 0; i < 3000; ++i) st.tick(3);
        });
      }
      s.run();
      EXPECT_GT(s.switch_count(), static_cast<std::uint64_t>(threads));
      if (rep == 0) {
        first = s.switch_count();
      } else {
        EXPECT_EQ(s.switch_count(), first) << "threads=" << threads;
      }
    }
  }
}

TEST(Scheduler, AdvanceSaturatesInsteadOfWrapping) {
  // A perturbation-sized clock jump near the finished sentinel used to wrap
  // (the SMT-scaled double round-trip overflows uint64), re-sorting the
  // thread to the front of the schedule. It must saturate just below the
  // sentinel and stay monotonic instead.
  MachineConfig m;
  m.n_cores = 1;
  m.smt_per_core = 2;  // two live siblings: the 1.25 multiplier is active
  Scheduler s(m);
  std::vector<std::uint64_t> seen;
  s.spawn([&seen](SimThread& st) {
    for (int i = 0; i < 4; ++i) {
      st.advance(std::uint64_t{1} << 62);
      seen.push_back(st.now());
    }
    st.advance(UINT64_MAX);  // the largest possible jump, from saturation
    seen.push_back(st.now());
  });
  s.spawn([](SimThread& st) { st.advance(1); });  // keeps the sibling live
  s.run();
  ASSERT_EQ(seen.size(), 5u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GE(seen[i], seen[i - 1]) << "clock moved backwards at step " << i;
  }
  for (const std::uint64_t c : seen) {
    EXPECT_LT(c, ReadyQueue::kFinishedClock)
        << "live thread reached the finished sentinel";
  }
  EXPECT_EQ(seen.back(), ReadyQueue::kFinishedClock - 1);
}

TEST(Scheduler, SpawnsUpToMaxSimThreads) {
  MachineConfig m;
  m.n_cores = 128;
  Scheduler s(m);
  std::uint64_t done = 0;
  for (int t = 0; t < kMaxSimThreads; ++t) {
    s.spawn([&done](SimThread& st) {
      st.tick(5);
      ++done;
    });
  }
  s.run();
  EXPECT_EQ(done, static_cast<std::uint64_t>(kMaxSimThreads));
}

}  // namespace
}  // namespace elision::sim
