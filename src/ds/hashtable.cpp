#include "ds/hashtable.hpp"

#include <unordered_set>

#include "support/check.hpp"

namespace elision::ds {

HashTable::HashTable(std::size_t buckets, std::size_t capacity, int n_threads,
                     int max_threads)
    : arena_(capacity),
      buckets_(buckets),
      n_free_lists_(max_threads + 1),
      free_(static_cast<std::size_t>(max_threads) + 1) {
  ELISION_CHECK_MSG(
      max_threads >= 1 && max_threads <= tsx::kMaxThreads,
      "node pool max_threads must be in [1, tsx::kMaxThreads]");
  ELISION_CHECK(n_threads >= 1 && n_threads < n_free_lists_);
  // Distribute nodes round-robin over the per-thread caches.
  int slot = 0;
  for (auto& node : arena_) {
    node.next.unsafe_set(free_[slot].value.unsafe_get());
    free_[slot].value.unsafe_set(&node);
    slot = (slot + 1) % n_threads;
  }
}

HashTable::Node* HashTable::alloc(tsx::Ctx& ctx) {
  auto& own = free_[ctx.id()].value;
  Node* n = own.load(ctx);
  if (n != nullptr) {
    own.store(ctx, n->next.load(ctx));
    return n;
  }
  for (int i = n_free_lists_ - 1; i >= 0; --i) {
    auto& other = free_[i].value;
    n = other.load(ctx);
    if (n != nullptr) {
      other.store(ctx, n->next.load(ctx));
      return n;
    }
  }
  ELISION_CHECK_MSG(false, "HashTable node pool exhausted");
  return nullptr;
}

void HashTable::free_node(tsx::Ctx& ctx, Node* n) {
  auto& own = free_[ctx.id()].value;
  n->next.store(ctx, own.load(ctx));
  own.store(ctx, n);
}

bool HashTable::insert(tsx::Ctx& ctx, std::uint64_t key, std::uint64_t value) {
  auto& bucket = buckets_[hash(key) % buckets_.size()];
  for (Node* n = bucket.load(ctx); n != nullptr; n = n->next.load(ctx)) {
    if (n->key.load(ctx) == key) return false;
  }
  Node* n = alloc(ctx);
  n->key.store(ctx, key);
  n->value.store(ctx, value);
  n->next.store(ctx, bucket.load(ctx));
  bucket.store(ctx, n);
  return true;
}

bool HashTable::erase(tsx::Ctx& ctx, std::uint64_t key) {
  auto& bucket = buckets_[hash(key) % buckets_.size()];
  Node* prev = nullptr;
  for (Node* n = bucket.load(ctx); n != nullptr; n = n->next.load(ctx)) {
    if (n->key.load(ctx) == key) {
      Node* next = n->next.load(ctx);
      if (prev == nullptr) {
        bucket.store(ctx, next);
      } else {
        prev->next.store(ctx, next);
      }
      free_node(ctx, n);
      return true;
    }
    prev = n;
  }
  return false;
}

bool HashTable::lookup(tsx::Ctx& ctx, std::uint64_t key, std::uint64_t* value) {
  auto& bucket = buckets_[hash(key) % buckets_.size()];
  for (Node* n = bucket.load(ctx); n != nullptr; n = n->next.load(ctx)) {
    if (n->key.load(ctx) == key) {
      *value = n->value.load(ctx);
      return true;
    }
  }
  return false;
}

std::uint64_t HashTable::upsert_add(tsx::Ctx& ctx, std::uint64_t key,
                                    std::uint64_t delta) {
  auto& bucket = buckets_[hash(key) % buckets_.size()];
  for (Node* n = bucket.load(ctx); n != nullptr; n = n->next.load(ctx)) {
    if (n->key.load(ctx) == key) {
      const std::uint64_t v = n->value.load(ctx) + delta;
      n->value.store(ctx, v);
      return v;
    }
  }
  Node* n = alloc(ctx);
  n->key.store(ctx, key);
  n->value.store(ctx, delta);
  n->next.store(ctx, bucket.load(ctx));
  bucket.store(ctx, n);
  return delta;
}

bool HashTable::insert_or_assign(tsx::Ctx& ctx, std::uint64_t key,
                                 std::uint64_t value) {
  auto& bucket = buckets_[hash(key) % buckets_.size()];
  for (Node* n = bucket.load(ctx); n != nullptr; n = n->next.load(ctx)) {
    if (n->key.load(ctx) == key) {
      n->value.store(ctx, value);
      return false;
    }
  }
  Node* n = alloc(ctx);
  n->key.store(ctx, key);
  n->value.store(ctx, value);
  n->next.store(ctx, bucket.load(ctx));
  bucket.store(ctx, n);
  return true;
}

bool HashTable::unsafe_insert(std::uint64_t key, std::uint64_t value) {
  auto& bucket = buckets_[hash(key) % buckets_.size()];
  for (Node* n = bucket.unsafe_get(); n != nullptr; n = n->next.unsafe_get()) {
    if (n->key.unsafe_get() == key) return false;
  }
  Node* n = nullptr;
  for (auto& list : free_) {
    n = list.value.unsafe_get();
    if (n != nullptr) {
      list.value.unsafe_set(n->next.unsafe_get());
      break;
    }
  }
  ELISION_CHECK_MSG(n != nullptr, "HashTable node pool exhausted");
  n->key.unsafe_set(key);
  n->value.unsafe_set(value);
  n->next.unsafe_set(bucket.unsafe_get());
  bucket.unsafe_set(n);
  return true;
}

std::size_t HashTable::unsafe_size() const {
  std::size_t count = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    for (const Node* n = buckets_[b].unsafe_get(); n != nullptr;
         n = n->next.unsafe_get()) {
      ++count;
    }
  }
  return count;
}

bool HashTable::unsafe_validate(std::string* why) const {
  const auto fail = [why](const char* what) {
    if (why != nullptr) *why = what;
    return false;
  };
  const auto in_arena = [this](const Node* n) {
    return n >= arena_.data() && n < arena_.data() + arena_.size();
  };
  std::unordered_set<const Node*> seen;
  std::unordered_set<std::uint64_t> keys;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    for (const Node* n = buckets_[b].unsafe_get(); n != nullptr;
         n = n->next.unsafe_get()) {
      if (!in_arena(n)) return fail("chained node outside the arena");
      if (!seen.insert(n).second) {
        return fail("node on two lists (or a chain cycle)");
      }
      const std::uint64_t key = n->key.unsafe_get();
      if (hash(key) % buckets_.size() != b) {
        return fail("node chained in a bucket its key does not hash to");
      }
      if (!keys.insert(key).second) return fail("duplicate key");
    }
  }
  for (const auto& list : free_) {
    for (const Node* n = list.value.unsafe_get(); n != nullptr;
         n = n->next.unsafe_get()) {
      if (!in_arena(n)) return fail("free node outside the arena");
      if (!seen.insert(n).second) {
        return fail("free node also reachable elsewhere (or a free-list "
                    "cycle)");
      }
    }
  }
  if (seen.size() != arena_.size()) {
    return fail("arena node unreachable from every bucket and free list");
  }
  return true;
}

bool HashTable::unsafe_lookup(std::uint64_t key, std::uint64_t* value) const {
  const auto& bucket = buckets_[hash(key) % buckets_.size()];
  for (const Node* n = bucket.unsafe_get(); n != nullptr;
       n = n->next.unsafe_get()) {
    if (n->key.unsafe_get() == key) {
      *value = n->value.unsafe_get();
      return true;
    }
  }
  return false;
}

}  // namespace elision::ds
