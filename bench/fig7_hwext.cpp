// Chapter 7 — the proposed hardware extension: distinguishing lock-line
// conflicts from data conflicts lets speculative threads survive a
// non-speculative lock acquisition (continuing within their cache
// footprint, suspending on growth).
//
// Expected shape: with the extension, plain HLE recovers much of the
// concurrency that the avalanche destroys — fewer attempts/op, a lower
// non-speculative fraction, and higher throughput, approaching SCM without
// any software assistance.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace elision;
  using namespace elision::bench;
  harness::banner("Chapter 7 hardware extension",
                  "HLE vs HLE+extension (8 threads).\n"
                  "Expect: the extension reduces attempts/op and the "
                  "non-speculative fraction, recovering throughput lost "
                  "to the avalanche.");
  for (const auto& mix : kMixes) {
    std::printf("\n-- %s --\n", mix.name);
    harness::Table table({"lock", "tree-size", "HLE Mops/s", "ext Mops/s",
                          "ext-speedup", "HLE att/op", "ext att/op",
                          "HLE nonspec", "ext nonspec"});
    for (const LockSel lock : {LockSel::kTtas, LockSel::kMcs}) {
      for (const std::size_t size : {8ULL, 128ULL, 2048ULL, 32768ULL}) {
        RbPoint p;
        p.size = size;
        p.update_pct = mix.update_pct;
        p.lock = lock;
        p.scheme = locks::ElisionPolicy::hle();
        p.hardware_extension = false;
        const auto plain = run_rb_point(p);
        p.hardware_extension = true;
        const auto ext = run_rb_point(p);
        table.add_row({lock_sel_name(lock), harness::fmt_int(size),
                       harness::fmt(plain.throughput() / 1e6, 2),
                       harness::fmt(ext.throughput() / 1e6, 2),
                       harness::fmt(ext.throughput() / plain.throughput(), 2),
                       harness::fmt(plain.attempts_per_op(), 2),
                       harness::fmt(ext.attempts_per_op(), 2),
                       harness::fmt(plain.nonspec_fraction(), 3),
                       harness::fmt(ext.nonspec_fraction(), 3)});
      }
    }
    table.print();
  }
  return 0;
}
