// bench_suite — run the curated benchmark suite (src/harness/suite.hpp),
// emit canonical machine-readable results, and optionally gate against a
// committed baseline.
//
//   bench_suite [--tier smoke|full] [--out FILE] [--baseline FILE] [--gate]
//               [--list] [--quiet] [--plant-regression FACTOR]
//               [--tol-throughput REL] [--tol-attempts REL]
//               [--tol-fraction ABS] [--no-invariants]
//
// Exit status: 0 on success; 1 if the gate found a regression or a
// paper-qualitative invariant is violated; 2 on usage/IO errors.
//
// --plant-regression multiplies every reported throughput before gating;
// scripts/check.sh uses 0.5 as a self-check that the gate actually fires.
// See docs/benchmarks.md for the schema and the baseline-update workflow.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/report.hpp"
#include "harness/suite.hpp"

namespace {

using namespace elision;

struct Options {
  harness::SuiteTier tier = harness::SuiteTier::kSmoke;
  std::string out_file = "BENCH_results.json";
  std::string baseline_file;
  bool gate = false;
  bool list = false;
  bool quiet = false;
  bool invariants = true;
  double plant_factor = 1.0;
  harness::GateTolerance tol;
};

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr, "error: %s\n\n", why);
  std::fprintf(
      stderr,
      "usage:\n"
      "  bench_suite [--tier smoke|full] [--out FILE] [--baseline FILE]\n"
      "              [--gate] [--list] [--quiet]\n"
      "              [--plant-regression FACTOR]\n"
      "              [--tol-throughput REL] [--tol-attempts REL]\n"
      "              [--tol-fraction ABS] [--no-invariants]\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--tier") {
      const auto t = harness::suite_tier_from_name(next());
      if (!t) usage("--tier must be smoke or full");
      o.tier = *t;
    } else if (a == "--out") {
      o.out_file = next();
    } else if (a == "--baseline") {
      o.baseline_file = next();
    } else if (a == "--gate") {
      o.gate = true;
    } else if (a == "--list") {
      o.list = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--no-invariants") {
      o.invariants = false;
    } else if (a == "--plant-regression") {
      o.plant_factor = std::atof(next().c_str());
      if (o.plant_factor <= 0) usage("--plant-regression must be > 0");
    } else if (a == "--tol-throughput") {
      o.tol.throughput_rel = std::atof(next().c_str());
    } else if (a == "--tol-attempts") {
      o.tol.attempts_rel = std::atof(next().c_str());
    } else if (a == "--tol-fraction") {
      o.tol.fraction_abs = std::atof(next().c_str());
    } else {
      usage(("unknown argument " + a).c_str());
    }
  }
  if (o.gate && o.baseline_file.empty()) {
    usage("--gate requires --baseline FILE");
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  if (o.list) {
    harness::Table table({"id", "tier", "figure", "lock", "scheme", "size",
                          "upd%", "thr", "seeds"});
    for (const auto& sp : harness::suite_points_for(o.tier)) {
      table.add_row({sp.id, harness::suite_tier_name(sp.tier), sp.figure,
                     harness::lock_sel_name(sp.point.lock),
                     sp.point.scheme.name(), harness::fmt_int(sp.point.size),
                     std::to_string(sp.point.update_pct),
                     std::to_string(sp.point.threads),
                     std::to_string(sp.point.seeds)});
    }
    table.print();
    return 0;
  }

  harness::Table progress({"id", "Mops/s", "att/op", "nonspec", "episodes"});
  harness::SuiteRunOptions run_opts;
  run_opts.plant_throughput_factor = o.plant_factor;
  if (!o.quiet) {
    run_opts.on_point = [&](const harness::SuitePoint& sp,
                            const harness::PointMetrics& m) {
      std::fprintf(stderr, "ran %s\n", sp.id.c_str());
      progress.add_row(
          {sp.id, harness::fmt(m.throughput_ops_per_sec / 1e6, 2),
           harness::fmt(m.attempts_per_op, 2),
           harness::fmt(m.nonspec_fraction, 3),
           harness::fmt_int(m.avalanche_episodes)});
    };
  }

  const harness::SuiteResult result = harness::run_suite(o.tier, run_opts);
  if (!o.quiet) progress.print();
  if (o.plant_factor != 1.0) {
    std::fprintf(stderr,
                 "bench_suite: throughputs scaled by %.3f "
                 "(--plant-regression self-check mode)\n",
                 o.plant_factor);
  }

  std::FILE* f = std::fopen(o.out_file.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_suite: cannot open %s\n", o.out_file.c_str());
    return 2;
  }
  harness::write_results_json(result, f);
  std::fclose(f);
  if (!o.quiet) {
    std::printf("results: %zu points -> %s\n", result.points.size(),
                o.out_file.c_str());
  }

  int rc = 0;

  if (o.invariants) {
    for (const auto& inv : harness::check_invariants(result)) {
      if (inv.skipped) {
        if (!o.quiet) {
          std::printf("invariant %-34s SKIP (%s)\n", inv.name.c_str(),
                      inv.detail.c_str());
        }
        continue;
      }
      if (inv.ok) {
        if (!o.quiet) {
          std::printf("invariant %-34s ok   (%s)\n", inv.name.c_str(),
                      inv.detail.c_str());
        }
      } else {
        std::fprintf(stderr, "invariant %-34s FAIL (%s)\n", inv.name.c_str(),
                     inv.detail.c_str());
        rc = 1;
      }
    }
  }

  if (o.gate) {
    const auto baseline = harness::load_results_file(o.baseline_file);
    if (!baseline) {
      std::fprintf(stderr, "bench_suite: cannot parse baseline %s\n",
                   o.baseline_file.c_str());
      return 2;
    }
    const auto report =
        harness::compare_to_baseline(result, *baseline, o.tol);
    harness::print_gate_report(report, report.ok() ? stdout : stderr);
    if (!report.ok()) rc = 1;
  }

  return rc;
}
