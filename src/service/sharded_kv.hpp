// The sharded key-value service: the repo's "production" workload (ROADMAP
// item 1 — the millions-of-users scenario the paper's coarse-grained-plus-
// elision pitch is aimed at).
//
// Layout follows the paper's advice and the allocator findings of Dice et
// al.: each shard is a coarse critical section — an rbtree key index plus a
// hashtable value store — behind its *own* lock with its own
// CriticalSection (so an independent ElisionPolicy, and under
// Scheme::kAdaptive an independent per-shard controller). Shards are
// placement-new'ed into a LineAlignedAllocator buffer so no two shards'
// lock words or headers share a cache line; false sharing between shards
// would otherwise manufacture cross-shard aborts the real service would
// never see.
//
// Cross-shard operations (multi_put / transfer) are a single elision region
// over *all* involved shard locks: one transaction subscribes every
// involved lock word (aborting with kAbortCodeLockBusy if any is held), so
// a commit is atomic across shards without any global lock. Conflict
// management is grouped-SCM (locks/grouped_scm.hpp): an aborted thread
// serializes on the aux group of the conflicting cache line. The
// non-speculative fallback acquires the involved shard locks in ascending
// shard-index order — the canonical deadlock-free total order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

#include "ds/hashtable.hpp"
#include "ds/rbtree.hpp"
#include "locks/grouped_scm.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "support/align.hpp"
#include "support/check.hpp"

namespace elision::service {

struct KvPair {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

template <typename Lock>
class ShardedKvT {
 public:
  // Cross-shard ops touch at most this many distinct shards.
  static constexpr int kMaxOpShards = 8;

  struct Config {
    int shards = 8;
    // Key domain [0, keys): sizes the per-shard node pools.
    std::size_t keys = 8192;
    // 0 = derive from keys (2x the expected per-shard population).
    std::size_t capacity_per_shard = 0;
    // Simulated threads the per-shard free lists are distributed over.
    int threads = 8;
    // Policy for every shard; shard i overrides with
    // shard_policies[i % shard_policies.size()] when non-empty.
    locks::ElisionPolicy policy = locks::ElisionPolicy::hle();
    std::vector<locks::ElisionPolicy> shard_policies;
    // Retries before a cross-shard region gives up speculation.
    locks::GroupedScmParams cross_shard;
    // Maintain a per-shard running total of stored values inside the same
    // critical regions that mutate the shard. Costs one extra shared word
    // in every mutating write set; the stress checkers key on it (a lost
    // cross-shard update shows up as audit drift).
    bool track_totals = false;
  };

  explicit ShardedKvT(const Config& cfg)
      : cfg_(cfg), n_shards_(cfg.shards) {
    ELISION_CHECK(cfg.shards >= 1);
    const std::size_t cap =
        cfg.capacity_per_shard != 0
            ? cfg.capacity_per_shard
            : cfg.keys / static_cast<std::size_t>(cfg.shards) * 2 + 128;
    shards_ = alloc_.allocate(static_cast<std::size_t>(n_shards_));
    for (int i = 0; i < n_shards_; ++i) {
      const auto& pol =
          cfg.shard_policies.empty()
              ? cfg.policy
              : cfg.shard_policies[static_cast<std::size_t>(i) %
                                   cfg.shard_policies.size()];
      new (&shards_[i]) Shard(cap, cfg.threads, pol);
    }
  }

  ShardedKvT(const ShardedKvT&) = delete;
  ShardedKvT& operator=(const ShardedKvT&) = delete;

  ~ShardedKvT() {
    for (int i = 0; i < n_shards_; ++i) shards_[i].~Shard();
    alloc_.deallocate(shards_, static_cast<std::size_t>(n_shards_));
  }

  int n_shards() const { return n_shards_; }

  // Deterministic key -> shard routing (splitmix-style mix so dense key
  // ranges spread; a Zipf-hot key still pins one shard, which is the
  // hot-shard scenario the benchmarks study).
  int shard_of(std::uint64_t key) const {
    std::uint64_t x = key;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return static_cast<int>(x % static_cast<std::uint64_t>(n_shards_));
  }

  // --- single-shard operations ---

  // Sets key -> value. *inserted (optional) reports whether the key was
  // new; *old_value (optional) the replaced value (0 when fresh). Out-params
  // reflect the committed attempt, so callers can maintain exact ledgers.
  locks::RegionResult put(tsx::Ctx& ctx, std::uint64_t key,
                          std::uint64_t value, bool* inserted = nullptr,
                          std::uint64_t* old_value = nullptr) {
    Shard& sh = shards_[shard_of(key)];
    bool fresh = false;
    std::uint64_t old = 0;
    const auto r = sh.cs.run(ctx, [&] {
      old = 0;  // reset per attempt: aborts roll back shared state only
      sh.index.insert(ctx, key);
      sh.values.lookup(ctx, key, &old);
      fresh = sh.values.insert_or_assign(ctx, key, value);
      if (cfg_.track_totals) {
        sh.total.value.store(ctx, sh.total.value.load(ctx) + value - old);
      }
    });
    if (inserted != nullptr) *inserted = fresh;
    if (old_value != nullptr) *old_value = old;
    return r;
  }

  locks::RegionResult get(tsx::Ctx& ctx, std::uint64_t key,
                          std::uint64_t* value, bool* found = nullptr) {
    Shard& sh = shards_[shard_of(key)];
    bool hit = false;
    const auto r = sh.cs.run(ctx, [&] {
      hit = sh.values.lookup(ctx, key, value);
    });
    if (found != nullptr) *found = hit;
    return r;
  }

  locks::RegionResult erase(tsx::Ctx& ctx, std::uint64_t key,
                            bool* erased = nullptr,
                            std::uint64_t* old_value = nullptr) {
    Shard& sh = shards_[shard_of(key)];
    bool hit = false;
    std::uint64_t old = 0;
    const auto r = sh.cs.run(ctx, [&] {
      old = 0;
      hit = sh.index.erase(ctx, key);
      if (hit) {
        sh.values.lookup(ctx, key, &old);
        sh.values.erase(ctx, key);
        if (cfg_.track_totals) {
          sh.total.value.store(ctx, sh.total.value.load(ctx) - old);
        }
      }
    });
    if (erased != nullptr) *erased = hit;
    if (old_value != nullptr) *old_value = old;
    return r;
  }

  // --- cross-shard transactions ---

  // Atomically sets every pair (at most kMaxOpShards distinct shards; later
  // duplicates of a key win, like sequential puts). *delta (optional)
  // reports the committed net change of the summed stored values.
  locks::RegionResult multi_put(tsx::Ctx& ctx, const KvPair* pairs,
                                int n_pairs, std::int64_t* delta = nullptr) {
    Shard* involved[kMaxOpShards];
    const int n = collect_shards(pairs, n_pairs, involved);
    std::int64_t d = 0;
    const auto r = cross_shard_region(ctx, involved, n, [&] {
      d = 0;  // reset per attempt: aborts roll back shared state, not locals
      for (int i = 0; i < n_pairs; ++i) {
        Shard& sh = shards_[shard_of(pairs[i].key)];
        sh.index.insert(ctx, pairs[i].key);
        std::uint64_t old = 0;
        sh.values.lookup(ctx, pairs[i].key, &old);
        sh.values.insert_or_assign(ctx, pairs[i].key, pairs[i].value);
        d += static_cast<std::int64_t>(pairs[i].value) -
             static_cast<std::int64_t>(old);
        if (cfg_.track_totals) {
          sh.total.value.store(ctx,
                               sh.total.value.load(ctx) + pairs[i].value - old);
        }
      }
    });
    if (delta != nullptr) *delta = d;
    return r;
  }

  // Atomically moves up to `amount` from `from`'s value to `to`'s
  // (inserting `to` if absent; a no-op when `from` is absent or empty).
  // Conserves the summed value across shards — the cross-shard lost-update
  // invariant the stress checker audits. *moved (optional) reports the
  // amount actually transferred.
  locks::RegionResult transfer(tsx::Ctx& ctx, std::uint64_t from,
                               std::uint64_t to, std::uint64_t amount,
                               std::uint64_t* moved = nullptr) {
    Shard& sf = shards_[shard_of(from)];
    Shard& st = shards_[shard_of(to)];
    Shard* involved[2] = {&sf, &st};
    const int n = &sf == &st ? 1 : 2;
    if (n == 2 && shard_of(from) > shard_of(to)) {
      std::swap(involved[0], involved[1]);
    }
    std::uint64_t m = 0;
    const auto r = cross_shard_region(ctx, involved, n, [&] {
      m = 0;  // reset per attempt: aborts roll back shared state, not locals
      if (from == to) return;  // self-transfer: nothing moves
      std::uint64_t v = 0;
      if (!sf.values.lookup(ctx, from, &v)) return;
      m = amount < v ? amount : v;
      if (m == 0) return;
      sf.values.insert_or_assign(ctx, from, v - m);
      st.index.insert(ctx, to);
      st.values.upsert_add(ctx, to, m);
      if (cfg_.track_totals) {
        sf.total.value.store(ctx, sf.total.value.load(ctx) - m);
        st.total.value.store(ctx, st.total.value.load(ctx) + m);
      }
    });
    if (moved != nullptr) *moved = m;
    return r;
  }

  // --- setup / verification (no simulated threads running) ---

  bool unsafe_put(std::uint64_t key, std::uint64_t value) {
    Shard& sh = shards_[shard_of(key)];
    sh.index.unsafe_insert(key);
    const bool fresh = sh.values.unsafe_insert(key, value);
    if (fresh && cfg_.track_totals) {
      sh.total.value.unsafe_set(sh.total.value.unsafe_get() + value);
    }
    return fresh;
  }

  // Call once after prefilling (see RbTree::unsafe_distribute_free_lists).
  void unsafe_distribute_free_lists(int n_threads) {
    for (int i = 0; i < n_shards_; ++i) {
      shards_[i].index.unsafe_distribute_free_lists(n_threads);
    }
  }

  std::size_t unsafe_size() const {
    std::size_t n = 0;
    for (int i = 0; i < n_shards_; ++i) n += shards_[i].index.unsafe_size();
    return n;
  }

  std::size_t unsafe_shard_size(int shard) const {
    return shards_[shard].index.unsafe_size();
  }

  // Sum of all stored values across all shards (what transfer conserves).
  std::uint64_t unsafe_total_value() const {
    std::uint64_t total = 0;
    for (int i = 0; i < n_shards_; ++i) {
      for (const std::uint64_t key : shards_[i].index.unsafe_keys()) {
        std::uint64_t v = 0;
        if (shards_[i].values.unsafe_lookup(key, &v)) total += v;
      }
    }
    return total;
  }

  // Structural + accounting invariants: both per-shard structures validate,
  // index and value store agree key-for-key, every key routes to the shard
  // holding it, and (when track_totals) the stored values sum to the
  // audited per-shard total — a torn cross-shard update breaks the last one.
  bool unsafe_validate(std::string* why = nullptr) const {
    const auto fail = [why](const std::string& what) {
      if (why != nullptr) *why = what;
      return false;
    };
    for (int i = 0; i < n_shards_; ++i) {
      const Shard& sh = shards_[i];
      std::string sub;
      if (!sh.index.unsafe_validate(&sub)) {
        return fail("shard " + std::to_string(i) + " index: " + sub);
      }
      if (!sh.values.unsafe_validate(&sub)) {
        return fail("shard " + std::to_string(i) + " values: " + sub);
      }
      const auto keys = sh.index.unsafe_keys();
      if (keys.size() != sh.values.unsafe_size()) {
        return fail("shard " + std::to_string(i) +
                    ": index/value-store size mismatch");
      }
      std::uint64_t sum = 0;
      for (const std::uint64_t key : keys) {
        if (shard_of(key) != i) {
          return fail("shard " + std::to_string(i) +
                      " holds a key routed elsewhere");
        }
        std::uint64_t v = 0;
        if (!sh.values.unsafe_lookup(key, &v)) {
          return fail("shard " + std::to_string(i) +
                      ": indexed key missing from the value store");
        }
        sum += v;
      }
      if (cfg_.track_totals && sum != sh.total.value.unsafe_get()) {
        return fail("shard " + std::to_string(i) +
                    ": audited total drifted from stored values "
                    "(lost or torn update)");
      }
    }
    return true;
  }

  const locks::AdaptiveController& shard_adaptive(int shard) const {
    return shards_[shard].cs.adaptive();
  }

 private:
  struct alignas(support::kCacheLineBytes) Shard {
    ds::RbTree index;
    ds::HashTable values;
    Lock lock;
    locks::CriticalSection<Lock> cs;
    // Audited running total of stored values (track_totals).
    support::CacheAligned<tsx::Shared<std::uint64_t>> total;

    Shard(std::size_t cap, int n_threads, const locks::ElisionPolicy& pol)
        : index(cap),
          values(std::max<std::size_t>(cap / 4, 16), cap, n_threads),
          cs(pol, lock) {}
  };

  // Dedup + sort the involved shards by index: the fallback's lock
  // acquisition order. Returns the number of distinct shards.
  int collect_shards(const KvPair* pairs, int n_pairs,
                     Shard** out) {
    ELISION_CHECK(n_pairs >= 1);
    int idx[kMaxOpShards];
    int n = 0;
    for (int i = 0; i < n_pairs; ++i) {
      const int s = shard_of(pairs[i].key);
      bool seen = false;
      for (int j = 0; j < n; ++j) seen = seen || idx[j] == s;
      if (!seen) {
        ELISION_CHECK_MSG(n < kMaxOpShards,
                          "multi_put spans more than kMaxOpShards shards");
        idx[n++] = s;
      }
    }
    // Tiny insertion sort (n <= kMaxOpShards).
    for (int i = 1; i < n; ++i) {
      const int v = idx[i];
      int j = i - 1;
      while (j >= 0 && idx[j] > v) {
        idx[j + 1] = idx[j];
        --j;
      }
      idx[j + 1] = v;
    }
    for (int i = 0; i < n; ++i) out[i] = &shards_[idx[i]];
    return n;
  }

  // One elision region over `n` shard locks (ascending shard index).
  // Mirrors locks::grouped_scm_region with the single lock-busy
  // subscription generalized to every involved lock word.
  template <typename Body>
  locks::RegionResult cross_shard_region(tsx::Ctx& ctx, Shard* const* sh,
                                         int n, Body&& body) {
    auto& eng = ctx.engine();
    locks::RegionResult r;
    if (cfg_.policy.scheme == locks::Scheme::kStandard) {
      // The service is configured non-speculative: take the locks directly,
      // like every single-shard region under the Standard scheme.
      complete_all_locked(ctx, sh, n, r, body);
      return r;
    }
    int retries = 0;
    locks::McsLock* aux = nullptr;
    for (;;) {
      ++r.attempts;
      const unsigned st = eng.run_transaction(ctx, [&] {
        for (int i = 0; i < n; ++i) {
          if (sh[i]->lock.is_held(ctx)) {
            eng.xabort(ctx, locks::kAbortCodeLockBusy);
          }
        }
        body();
      });
      if (st == tsx::kCommitted) {
        r.speculative = true;
        if (aux != nullptr) eng.note_event(ctx, tsx::EventKind::kAuxRejoin);
        break;
      }
      r.last_abort = ctx.last_abort_cause();
      if ((st & tsx::status::kRetry) == 0) {
        complete_all_locked(ctx, sh, n, r, body);
        break;
      }
      if (aux == nullptr) {
        eng.note_event(ctx, tsx::EventKind::kAuxEnter,
                       ctx.last_conflict_line());
        aux = &aux_bank_.group_for(eng.line_seq(ctx.last_conflict_line()));
        aux->lock(ctx);
      } else {
        ++retries;
      }
      if (retries >= cfg_.cross_shard.max_retries) {
        complete_all_locked(ctx, sh, n, r, body);
        break;
      }
    }
    if (aux != nullptr) {
      aux->unlock(ctx);
      eng.note_event(ctx, tsx::EventKind::kAuxExit);
    }
    return r;
  }

  // Non-speculative cross-shard completion: take every involved lock in
  // ascending shard-index order (total order -> no deadlock against any
  // other multi-shard fallback), run for real, release in reverse.
  template <typename Body>
  void complete_all_locked(tsx::Ctx& ctx, Shard* const* sh, int n,
                           locks::RegionResult& r, Body& body) {
    auto& eng = ctx.engine();
    for (int i = 0; i < n; ++i) {
      eng.note_event(ctx, tsx::EventKind::kLockAcquire,
                     locks::detail::lock_line_of(sh[i]->lock));
      sh[i]->lock.lock(ctx);
    }
    ++r.attempts;
    body();
    for (int i = n - 1; i >= 0; --i) {
      sh[i]->lock.unlock(ctx);
      eng.note_event(ctx, tsx::EventKind::kLockRelease,
                     locks::detail::lock_line_of(sh[i]->lock));
    }
    r.speculative = false;
  }

  Config cfg_;
  int n_shards_;
  support::LineAlignedAllocator<Shard> alloc_;
  Shard* shards_;
  // Aux groups for cross-shard conflict serialization (service-wide: a
  // conflicting line identifies the data, not the shard).
  locks::AuxLockBank<locks::McsLock, 8> aux_bank_;
};

using ShardedKv = ShardedKvT<locks::TtasLock>;

}  // namespace elision::service
