// The six evaluated locking schemes (Sec. 5.1 Methodology), plus the extra
// mechanisms used by specific experiments, behind one uniform runner.
#pragma once

#include "locks/mcs_lock.hpp"
#include "locks/region.hpp"
#include "locks/grouped_scm.hpp"
#include "locks/scm.hpp"
#include "locks/slr.hpp"
#include "support/function_ref.hpp"

namespace elision::locks {

enum class Scheme {
  kStandard,       // (1) plain non-speculative lock
  kHle,            // (2) hardware lock elision
  kHleScm,         // (3) HLE + software-assisted conflict management
  kPesSlr,         // (4) pessimistic software lock removal
  kOptSlr,         // (5) optimistic software lock removal
  kOptSlrScm,      // (6) optimistic SLR + conflict management
  kRtmElide,       // RTM-based elision (Fig 3.5 mechanism comparison)
  kHleScmNested,   // Algorithm 3 as designed: HLE nested in RTM
  kHleGroupedScm,  // future-work extension: per-conflict-line aux groups
};

inline const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kStandard: return "Standard";
    case Scheme::kHle: return "HLE";
    case Scheme::kHleScm: return "HLE-SCM";
    case Scheme::kPesSlr: return "pes-SLR";
    case Scheme::kOptSlr: return "opt-SLR";
    case Scheme::kOptSlrScm: return "opt-SLR-SCM";
    case Scheme::kRtmElide: return "RTM-elide";
    case Scheme::kHleScmNested: return "HLE-SCM-nested";
    case Scheme::kHleGroupedScm: return "HLE-gSCM";
    default: return "?";
  }
}

inline constexpr Scheme kAllSixSchemes[] = {
    Scheme::kStandard, Scheme::kHle,    Scheme::kHleScm,
    Scheme::kPesSlr,   Scheme::kOptSlr, Scheme::kOptSlrScm,
};

// Runs critical sections under a chosen scheme. One instance per (lock,
// scheme) pair; shared by all threads (the per-episode SCM/SLR state is
// local to each run() call, per Algorithm 3).
template <typename Lock>
class CriticalSection {
 public:
  CriticalSection(Scheme scheme, Lock& main) : scheme_(scheme), main_(main) {}

  Scheme scheme() const { return scheme_; }
  Lock& main_lock() { return main_; }
  McsLock& aux_lock() { return aux_; }

  RegionResult run(tsx::Ctx& ctx, support::FunctionRef<void()> body) {
    switch (scheme_) {
      case Scheme::kStandard: {
        main_.lock(ctx);
        body();
        main_.unlock(ctx);
        return {.speculative = false, .attempts = 1};
      }
      case Scheme::kHle:
        return hle_region(ctx, main_, body);
      case Scheme::kRtmElide:
        return rtm_elide_region(ctx, main_, body);
      case Scheme::kHleScm: {
        ScmParams p;
        return scm_region(ctx, main_, aux_, p, body);
      }
      case Scheme::kHleScmNested: {
        ScmParams p;
        p.nested_hle = true;
        return scm_region(ctx, main_, aux_, p, body);
      }
      case Scheme::kPesSlr: {
        SlrParams p;
        p.max_attempts = 1;
        return slr_region(ctx, main_, aux_, p, body);
      }
      case Scheme::kOptSlr: {
        SlrParams p;
        p.max_attempts = 10;
        return slr_region(ctx, main_, aux_, p, body);
      }
      case Scheme::kOptSlrScm: {
        SlrParams p;
        p.scm = true;
        return slr_region(ctx, main_, aux_, p, body);
      }
      case Scheme::kHleGroupedScm: {
        GroupedScmParams p;
        return grouped_scm_region(ctx, main_, aux_bank_, p, body);
      }
    }
    ELISION_CHECK_MSG(false, "unknown scheme");
    return {};
  }

 private:
  Scheme scheme_;
  Lock& main_;
  // The auxiliary lock must be starvation-free (Ch. 4): MCS.
  McsLock aux_;
  // Auxiliary lock groups for the grouped-SCM extension.
  AuxLockBank<McsLock, 8> aux_bank_;
};

}  // namespace elision::locks
