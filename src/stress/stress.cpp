#include "stress/stress.hpp"

#include <utility>

#include "ds/btree.hpp"
#include "ds/hashtable.hpp"
#include "harness/runner.hpp"
#include "service/sharded_kv.hpp"
#include "locks/clh_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/shared_mcs_lock.hpp"
#include "locks/shared_ttas_lock.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/ttas_lock.hpp"
#include "stress/greedy_shared_lock.hpp"
#include "stress/invariants.hpp"
#include "stress/racy_lock.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"

namespace elision::stress {

const char* lock_name(LockKind k) {
  switch (k) {
    case LockKind::kTtas: return locks::TtasLock::kName;
    case LockKind::kMcs: return locks::McsLock::kName;
    case LockKind::kTicket: return locks::TicketLock::kName;
    case LockKind::kTicketAdj: return locks::TicketLockAdjusted::kName;
    case LockKind::kClh: return locks::ClhLock::kName;
    case LockKind::kClhAdj: return locks::ClhLockAdjusted::kName;
    case LockKind::kSharedTtas: return locks::SharedTtasLock::kName;
    case LockKind::kSharedMcs: return locks::SharedMcsLock::kName;
    case LockKind::kRacy: return RacyLock::kName;
    case LockKind::kGreedyShared: return GreedySharedLock::kName;
  }
  return "?";
}

std::vector<LockKind> all_locks() {
  return {LockKind::kTtas,       LockKind::kMcs,      LockKind::kTicket,
          LockKind::kTicketAdj,  LockKind::kClh,      LockKind::kClhAdj,
          LockKind::kSharedTtas, LockKind::kSharedMcs};
}

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kCounter: return "counter";
    case Workload::kHashTable: return "hashtable";
    case Workload::kBtree: return "btree";
    case Workload::kShardedKv: return "sharded-kv";
  }
  return "?";
}

std::vector<Workload> all_workloads() {
  return {Workload::kCounter, Workload::kHashTable, Workload::kBtree,
          Workload::kShardedKv};
}

std::vector<locks::ElisionPolicy> all_policies() {
  std::vector<locks::ElisionPolicy> v;
  for (const locks::Scheme s : locks::kAllSixSchemes) {
    v.push_back(locks::ElisionPolicy::from_scheme(s));
  }
  v.push_back(locks::ElisionPolicy::rtm_elide());
  // The mode controller migrates between four of the schemes above
  // mid-run; a short window makes it actually move within a stress case.
  v.push_back(locks::ElisionPolicy::adaptive().with_adaptive_window(8));
  return v;
}

std::string case_name(const StressCase& c) {
  std::string s = c.policy.spec();
  s += '/';
  s += lock_name(c.lock);
  s += '/';
  s += workload_name(c.workload);
  s += " pseed=";
  s += std::to_string(c.perturb_seed);
  if (c.perturb_points != 0) {
    s += " budget=";
    s += std::to_string(c.perturb_points);
  }
  return s;
}

namespace {

harness::BenchConfig base_config(const StressOptions& o, const StressCase& c) {
  harness::BenchConfig cfg;
  cfg.threads = o.threads;
  cfg.duration_sec = o.duration_ms / 1e3;
  cfg.machine.seed = o.workload_seed;
  cfg.machine.max_switches = o.max_switches;
  cfg.machine.perturb.probability = o.perturb_probability;
  cfg.machine.perturb.max_delay_cycles = o.perturb_max_delay_cycles;
  cfg.machine.perturb.seed = c.perturb_seed;
  cfg.machine.perturb.max_points = c.perturb_points;
  cfg.policy = c.policy;
  // Algorithm 3 as designed needs HLE nested inside RTM.
  if (c.policy.scheme == locks::Scheme::kHleScmNested) {
    cfg.tsx.allow_hle_in_rtm = true;
  }
  cfg.telemetry = o.telemetry;
  return cfg;
}

void fill_outcome(const harness::RunStats& stats, RunOutcome* out) {
  out->ops = stats.ops;
  out->aborts = stats.tx.aborts;
  out->perturb_points_used = stats.perturb_points;
  out->elapsed_cycles = stats.elapsed_cycles;
  out->avalanche_episodes = stats.episodes.size();
}

void append_watchdog(const StarvationWatchdog& dog, RunOutcome* out) {
  for (const std::string& v : dog.violations()) {
    out->violations.push_back("starvation: " + v);
  }
}

// One hot Shared counter. Every completed region increments it exactly once
// (a committed transaction or a genuinely locked execution), so after the
// run it must equal the harness's completed-op count: any racy overlap of
// two non-speculative bodies manifests as a lost update.
template <typename Lock>
RunOutcome run_counter(const StressOptions& o, const StressCase& c) {
  harness::BenchConfig cfg = base_config(o, c);
  Lock lock;
  locks::CriticalSection<Lock> cs(cfg.policy, lock);
  tsx::Shared<std::uint64_t> counter(0);
  MutualExclusionChecker mutex;
  StarvationWatchdog dog(o.threads, o.starvation_gap_cycles,
                         o.starvation_min_other_ops);
  cfg.on_region_complete = [&dog](tsx::Ctx& ctx, const locks::RegionResult&) {
    dog.note_completion(ctx.id(), ctx.thread().now());
  };
  const harness::RunStats stats =
      harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
        return cs.run(ctx, [&] {
          MutualExclusionChecker::Guard g(mutex, ctx);
          counter.store(ctx, counter.load(ctx) + 1);
          ctx.engine().compute(ctx, 20);
        });
      });
  dog.finish(stats.elapsed_cycles);

  RunOutcome out;
  fill_outcome(stats, &out);
  if (counter.unsafe_get() != stats.ops) {
    out.violations.push_back(
        "lost updates: counter=" + std::to_string(counter.unsafe_get()) +
        " completed ops=" + std::to_string(stats.ops));
  }
  if (mutex.violations() > 0) {
    out.violations.push_back(
        "mutual exclusion: " + std::to_string(mutex.violations()) +
        " overlapping non-speculative critical sections");
  }
  append_watchdog(dog, &out);
  return out;
}

// Mixed insert/erase/lookup over the chained hash table. The net insertion
// balance is tracked in a Shared counter (so speculative replays roll it
// back together with the structure) and reconciled against the table's
// actual size; the structure itself is validated node-by-node afterwards.
template <typename Lock>
RunOutcome run_hashtable(const StressOptions& o, const StressCase& c) {
  harness::BenchConfig cfg = base_config(o, c);
  Lock lock;
  locks::CriticalSection<Lock> cs(cfg.policy, lock);
  ds::HashTable table(o.hashtable_buckets, o.hashtable_capacity, o.threads);
  // Prefill half the key domain so erase/lookup hit from the start.
  std::uint64_t prefilled = 0;
  for (std::uint64_t k = 0; k < o.hashtable_key_domain; k += 2) {
    if (table.unsafe_insert(k, k * 3)) ++prefilled;
  }
  tsx::Shared<std::uint64_t> net(prefilled);
  MutualExclusionChecker mutex;
  StarvationWatchdog dog(o.threads, o.starvation_gap_cycles,
                         o.starvation_min_other_ops);
  cfg.on_region_complete = [&dog](tsx::Ctx& ctx, const locks::RegionResult&) {
    dog.note_completion(ctx.id(), ctx.thread().now());
  };
  // Host-side, set-only: committed stores are always key*3, and the TM
  // buffers speculative writes until commit, so no execution — not even a
  // doomed one — should ever observe anything else.
  std::uint64_t torn_values = 0;
  const harness::RunStats stats =
      harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
        const std::uint64_t key =
            ctx.thread().rng().next_below(o.hashtable_key_domain);
        const std::uint64_t dice = ctx.thread().rng().next_below(100);
        return cs.run(ctx, [&] {
          MutualExclusionChecker::Guard g(mutex, ctx);
          if (dice < 35) {
            if (table.insert(ctx, key, key * 3)) {
              net.store(ctx, net.load(ctx) + 1);
            }
          } else if (dice < 70) {
            if (table.erase(ctx, key)) {
              net.store(ctx, net.load(ctx) - 1);
            }
          } else {
            std::uint64_t v = 0;
            if (table.lookup(ctx, key, &v) && v != key * 3) ++torn_values;
          }
        });
      });
  dog.finish(stats.elapsed_cycles);

  RunOutcome out;
  fill_outcome(stats, &out);
  std::string why;
  if (!table.unsafe_validate(&why)) {
    out.violations.push_back("hashtable structure: " + why);
  }
  if (net.unsafe_get() != table.unsafe_size()) {
    out.violations.push_back(
        "hashtable net size: tracked " + std::to_string(net.unsafe_get()) +
        " but table holds " + std::to_string(table.unsafe_size()));
  }
  if (torn_values > 0) {
    out.violations.push_back("hashtable torn values: " +
                             std::to_string(torn_values) +
                             " lookups observed value != 3*key");
  }
  if (mutex.violations() > 0) {
    out.violations.push_back(
        "mutual exclusion: " + std::to_string(mutex.violations()) +
        " overlapping non-speculative critical sections");
  }
  append_watchdog(dog, &out);
  return out;
}

// B+tree mix over the two-mode lock API: updates run exclusive, reads run
// *shared* on shared-capable locks (and exclusive on single-mode ones, so
// the workload still crosses the whole lock grid). On top of the structural
// checks this is where the reader-writer invariants live: a WriterGuard
// must exclude everything, ReaderGuards may overlap each other, and the
// RoleLockoutChecker watches for either role being locked out — the
// writer-starvation hazard the planted GreedySharedLock self-test trips.
template <typename Lock>
RunOutcome run_btree(const StressOptions& o, const StressCase& c) {
  harness::BenchConfig cfg = base_config(o, c);
  Lock lock;
  locks::CriticalSection<Lock> cs(cfg.policy, lock);
  // Capacity bound: nothing is ever freed and a leaf interval below half
  // capacity cannot split again (see ds/btree.hpp).
  ds::BplusTree tree(o.btree_size * 2 + 256);
  const std::uint64_t domain = o.btree_size * 2;
  std::uint64_t prefilled = 0;
  for (std::uint64_t k = 0; k < domain; k += 2) {
    if (tree.unsafe_insert(k, k + 1)) ++prefilled;
  }
  tree.unsafe_distribute_free_lists(o.threads);
  tsx::Shared<std::uint64_t> net(prefilled);
  SharedMutualExclusionChecker rw_mutex;
  RoleLockoutChecker roles(o.starvation_gap_cycles,
                           o.starvation_min_other_ops);
  StarvationWatchdog dog(o.threads, o.starvation_gap_cycles,
                         o.starvation_min_other_ops);
  cfg.on_region_complete = [&dog](tsx::Ctx& ctx, const locks::RegionResult&) {
    dog.note_completion(ctx.id(), ctx.thread().now());
  };
  std::uint64_t torn_values = 0;
  const int half_updates = o.btree_update_pct / 2;
  const harness::RunStats stats =
      harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
        const std::uint64_t key = ctx.thread().rng().next_below(domain);
        const std::uint64_t dice = ctx.thread().rng().next_below(100);
        const std::uint64_t read_dice = ctx.thread().rng().next_below(100);
        // Role assignment: per-op dice by default; with dedicated writer
        // threads, low thread ids update and the rest only read (a pure
        // reader crowd is what keeps a writer-lockout window open — a
        // mixed-duty thread that blocks as a writer stops reading, so the
        // crowd self-drains).
        const bool is_update =
            o.btree_writer_threads > 0
                ? ctx.id() < o.btree_writer_threads
                : dice < static_cast<std::uint64_t>(o.btree_update_pct);
        // Inserts take the lower half of the update dice range — the whole
        // [0, 100) range for a dedicated writer, [0, update_pct) otherwise.
        const std::uint64_t insert_below = static_cast<std::uint64_t>(
            o.btree_writer_threads > 0 ? 50 : half_updates);
        if (is_update) {
          if (o.btree_writer_gap_cycles != 0) {
            ctx.engine().compute(ctx, o.btree_writer_gap_cycles);
          }
          const locks::RegionResult r = cs.run_exclusive(ctx, [&] {
            SharedMutualExclusionChecker::WriterGuard g(rw_mutex, ctx);
            if (dice < insert_below) {
              if (tree.insert(ctx, key, key + 1)) {
                net.store(ctx, net.load(ctx) + 1);
              }
            } else if (tree.erase(ctx, key)) {
              net.store(ctx, net.load(ctx) - 1);
            }
          });
          roles.note_writer(ctx.thread().now());
          return r;
        }
        const auto read_body = [&] {
          SharedMutualExclusionChecker::ReaderGuard g(rw_mutex, ctx);
          if (o.btree_read_dwell_cycles != 0) {
            ctx.engine().compute(ctx, o.btree_read_dwell_cycles);
          }
          if (read_dice < static_cast<std::uint64_t>(o.btree_scan_pct)) {
            std::uint64_t sum = 0;
            tree.range_sum(ctx, key, o.btree_scan_len, &sum);
            return;
          }
          std::uint64_t v = 0;
          if (tree.lookup(ctx, key, &v) && v != key + 1) ++torn_values;
        };
        locks::RegionResult r;
        if constexpr (locks::detail::kHasSharedMode<Lock>) {
          r = cs.run_shared(ctx, read_body);
        } else {
          r = cs.run_exclusive(ctx, read_body);
        }
        roles.note_reader(ctx.thread().now());
        return r;
      });
  dog.finish(stats.elapsed_cycles);
  roles.finish(stats.elapsed_cycles);

  RunOutcome out;
  fill_outcome(stats, &out);
  std::string why;
  if (!tree.unsafe_validate(&why)) {
    out.violations.push_back("btree structure: " + why);
  }
  if (net.unsafe_get() != tree.unsafe_size()) {
    out.violations.push_back(
        "btree net size: tracked " + std::to_string(net.unsafe_get()) +
        " but tree holds " + std::to_string(tree.unsafe_size()));
  }
  if (torn_values > 0) {
    out.violations.push_back("btree torn values: " +
                             std::to_string(torn_values) +
                             " lookups observed value != key+1");
  }
  if (rw_mutex.violations() > 0) {
    out.violations.push_back(
        "rw mutual exclusion: " + std::to_string(rw_mutex.violations()) +
        " non-speculative writer overlaps");
  }
  for (const std::string& v : roles.violations()) {
    out.violations.push_back("role lockout: " + v);
  }
  append_watchdog(dog, &out);
  return out;
}

// Sharded KV service: the single-shard mix plus the cross-shard
// transactions (multi_put across up to three shards, transfer between two).
// Every completed mutation's committed delta — reported by the service's
// out-params, so retried attempts don't double-count — feeds a host-side
// ledger of the expected summed stored value. A cross-shard region that
// tears (one shard's half commits, the other's is lost) conserves each
// shard's *internal* consistency, so only this end-to-end ledger catches
// it; transfer is value-conserving by construction and so contributes
// nothing, making lost transfer halves directly visible. On top of that,
// unsafe_validate audits per-shard structure, key routing, and the
// track_totals in-region totals.
template <typename Lock>
RunOutcome run_sharded_kv(const StressOptions& o, const StressCase& c) {
  harness::BenchConfig cfg = base_config(o, c);
  typename service::ShardedKvT<Lock>::Config kcfg;
  kcfg.shards = o.kv_shards;
  kcfg.keys = static_cast<std::size_t>(o.kv_key_domain);
  kcfg.threads = o.threads;
  kcfg.policy = cfg.policy;
  kcfg.track_totals = true;
  service::ShardedKvT<Lock> kv(kcfg);
  std::int64_t ledger = 0;
  for (std::uint64_t k = 0; k < o.kv_key_domain; k += 2) {
    if (kv.unsafe_put(k, k + 5)) ledger += static_cast<std::int64_t>(k + 5);
  }
  kv.unsafe_distribute_free_lists(o.threads);
  StarvationWatchdog dog(o.threads, o.starvation_gap_cycles,
                         o.starvation_min_other_ops);
  cfg.on_region_complete = [&dog](tsx::Ctx& ctx, const locks::RegionResult&) {
    dog.note_completion(ctx.id(), ctx.thread().now());
  };
  const harness::RunStats stats =
      harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
        auto& rng = ctx.thread().rng();
        const std::uint64_t key = rng.next_below(o.kv_key_domain);
        const std::uint64_t dice = rng.next_below(100);
        if (dice < 20) {
          const std::uint64_t value = 1 + rng.next_below(100);
          std::uint64_t old = 0;
          const auto r = kv.put(ctx, key, value, nullptr, &old);
          ledger += static_cast<std::int64_t>(value) -
                    static_cast<std::int64_t>(old);
          return r;
        }
        if (dice < 30) {
          bool hit = false;
          std::uint64_t old = 0;
          const auto r = kv.erase(ctx, key, &hit, &old);
          if (hit) ledger -= static_cast<std::int64_t>(old);
          return r;
        }
        if (dice < 40) {
          service::KvPair pairs[3];
          for (auto& p : pairs) {
            p.key = rng.next_below(o.kv_key_domain);
            p.value = 1 + rng.next_below(100);
          }
          std::int64_t d = 0;
          const auto r = kv.multi_put(ctx, pairs, 3, &d);
          ledger += d;
          return r;
        }
        if (dice < 60) {
          const std::uint64_t to = rng.next_below(o.kv_key_domain);
          return kv.transfer(ctx, key, to, 1 + rng.next_below(50));
        }
        std::uint64_t v = 0;
        return kv.get(ctx, key, &v);
      });
  dog.finish(stats.elapsed_cycles);

  RunOutcome out;
  fill_outcome(stats, &out);
  std::string why;
  if (!kv.unsafe_validate(&why)) {
    out.violations.push_back("sharded-kv structure: " + why);
  }
  const auto total = static_cast<std::int64_t>(kv.unsafe_total_value());
  if (total != ledger) {
    out.violations.push_back(
        "sharded-kv lost update: stored values sum to " +
        std::to_string(total) + " but the committed-op ledger expects " +
        std::to_string(ledger));
  }
  append_watchdog(dog, &out);
  return out;
}

template <typename Lock>
RunOutcome run_with(const StressOptions& o, const StressCase& c) {
  switch (c.workload) {
    case Workload::kCounter: return run_counter<Lock>(o, c);
    case Workload::kHashTable: return run_hashtable<Lock>(o, c);
    case Workload::kBtree: return run_btree<Lock>(o, c);
    case Workload::kShardedKv: return run_sharded_kv<Lock>(o, c);
  }
  ELISION_CHECK_MSG(false, "unknown workload");
  return {};
}

}  // namespace

RunOutcome run_case(const StressOptions& o, const StressCase& c) {
  switch (c.lock) {
    case LockKind::kTtas: return run_with<locks::TtasLock>(o, c);
    case LockKind::kMcs: return run_with<locks::McsLock>(o, c);
    case LockKind::kTicket: return run_with<locks::TicketLock>(o, c);
    case LockKind::kTicketAdj:
      return run_with<locks::TicketLockAdjusted>(o, c);
    case LockKind::kClh: return run_with<locks::ClhLock>(o, c);
    case LockKind::kClhAdj: return run_with<locks::ClhLockAdjusted>(o, c);
    case LockKind::kSharedTtas:
      return run_with<locks::SharedTtasLock>(o, c);
    case LockKind::kSharedMcs: return run_with<locks::SharedMcsLock>(o, c);
    case LockKind::kRacy:
      ELISION_CHECK_MSG(c.policy.scheme == locks::Scheme::kStandard,
                        "RacyLock is a standard-scheme self-test instrument");
      return run_with<RacyLock>(o, c);
    case LockKind::kGreedyShared:
      ELISION_CHECK_MSG(
          c.policy.scheme == locks::Scheme::kStandard,
          "GreedySharedLock is a standard-scheme self-test instrument");
      return run_with<GreedySharedLock>(o, c);
  }
  ELISION_CHECK_MSG(false, "unknown lock kind");
  return {};
}

Minimized minimize_case(const StressOptions& o, StressCase c) {
  Minimized best;
  best.points = c.perturb_points;
  best.outcome = run_case(o, c);
  if (best.outcome.ok()) return best;
  // Pin the budget to what the failing run actually used, then keep halving
  // while the failure reproduces. Greedy, not exhaustive: failures need not
  // be monotone in the budget, so this finds *a* small repro, cheaply.
  std::uint64_t points = best.outcome.perturb_points_used;
  if (points == 0) {
    best.points = 0;
    return best;  // fails with no injections at all: nothing to shrink
  }
  for (;;) {
    c.perturb_points = points;
    RunOutcome trial = run_case(o, c);
    if (!trial.ok()) {
      best.points = points;
      best.outcome = std::move(trial);
      if (points <= 1) break;
      points /= 2;
    } else {
      break;
    }
  }
  return best;
}

SweepStats sweep(
    const StressOptions& o, const std::vector<locks::ElisionPolicy>& policies,
    const std::vector<LockKind>& locks, const std::vector<Workload>& workloads,
    std::uint64_t first_seed, int n_seeds,
    const std::function<void(const StressCase&, const RunOutcome&)>& on_run) {
  // Flatten the seed x policy x lock x workload grid into a job vector in
  // the order the nested loops have always visited it; every cell is an
  // independent Scheduler+Engine simulation, so the runs fan out across
  // host threads while each outcome lands in its own grid slot.
  std::vector<StressCase> grid;
  grid.reserve(static_cast<std::size_t>(n_seeds) * policies.size() *
               locks.size() * workloads.size());
  for (int i = 0; i < n_seeds; ++i) {
    for (const locks::ElisionPolicy& policy : policies) {
      for (const LockKind lock : locks) {
        for (const Workload workload : workloads) {
          StressCase c;
          c.policy = policy;
          c.lock = lock;
          c.workload = workload;
          c.perturb_seed = first_seed + static_cast<std::uint64_t>(i);
          grid.push_back(c);
        }
      }
    }
  }

  std::vector<RunOutcome> outcomes(grid.size());
  support::parallel_for_each(
      grid.size(), [&](std::size_t j) { outcomes[j] = run_case(o, grid[j]); },
      o.host_threads);

  // Aggregate in grid order: counters, failure reports and on_run callbacks
  // are byte-identical to a sequential sweep regardless of host_threads.
  // Minimization re-runs a failing case under successively halved budgets —
  // an inherently serial search (each budget depends on the previous
  // outcome), so it stays here rather than in the fan-out.
  SweepStats stats;
  for (std::size_t j = 0; j < grid.size(); ++j) {
    const StressCase& c = grid[j];
    const RunOutcome& out = outcomes[j];
    ++stats.runs;
    stats.total_ops += out.ops;
    if (!out.ok()) {
      FailureReport f;
      f.c = c;
      if (o.minimize) {
        const Minimized m = minimize_case(o, c);
        f.outcome = m.outcome;
        f.minimized_points = m.points;
      } else {
        f.outcome = out;
        f.minimized_points = c.perturb_points;
      }
      stats.failures.push_back(std::move(f));
    }
    if (on_run) on_run(c, out);
  }
  return stats;
}

}  // namespace elision::stress
