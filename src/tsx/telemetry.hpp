// Abort-telemetry subsystem: low-overhead per-thread ring-buffer event
// traces of everything the elision stack does (transaction begin/commit/
// abort with cause and conflict location, non-speculative lock
// acquire/release, SCM auxiliary-lock enter/exit/rejoin), plus the
// post-processing that turns raw traces into the paper's Chapter 3
// phenomena — most importantly the *avalanche detector*, which groups
// events into serialization episodes (trigger thread, victim set,
// serialized duration in cycles).
//
// Design constraints:
//  * The simulation hot path pays a single predictable branch when
//    telemetry is off (a null-pointer test in Engine), and nothing at all
//    when compiled out with ELISION_TELEMETRY_DISABLED.
//  * Recording is a bounded-memory ring write: long runs keep the newest
//    events per thread and count what they dropped.
//  * The simulator is single-host-threaded (fibers), so recording needs no
//    synchronization; "per-thread" rings exist to bound memory fairly and
//    to keep per-thread event order trivially reconstructible.
//
// The older tsx::Trace (trace.hpp) remains as a thin, unbounded event log
// for existing tests; new code should prefer Telemetry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "support/align.hpp"
#include "tsx/abort.hpp"

namespace elision::tsx {

// Compile-time kill switch: with ELISION_TELEMETRY_DISABLED defined, every
// record site compiles away (if constexpr) and Telemetry cannot be attached.
#ifdef ELISION_TELEMETRY_DISABLED
inline constexpr bool kTelemetryCompiled = false;
#else
inline constexpr bool kTelemetryCompiled = true;
#endif

enum class EventKind : std::uint8_t {
  kTxBegin,      // transaction started (RTM xbegin or HLE elision)
  kTxCommit,     // transaction committed
  kTxAbort,      // transaction aborted (cause, conflict line, aborter)
  kLockAcquire,  // non-speculative main-lock acquisition began (the
                 // re-issued store that can trigger an avalanche)
  kLockRelease,  // non-speculative main-lock release completed
  kAuxEnter,     // SCM: thread arrived at the auxiliary serialization point
  kAuxRejoin,    // SCM: speculation succeeded while holding the aux lock
  kAuxExit,      // SCM: auxiliary lock released
  kKindCount,
};

const char* to_string(EventKind k);

struct TelemetryEvent {
  std::uint64_t timestamp = 0;        // virtual cycles
  support::LineId line = 0;           // conflict line (aborts) or lock line
  std::int16_t thread = -1;
  std::int16_t other_thread = -1;     // aborting requester for kTxAbort
  EventKind kind = EventKind::kTxBegin;
  AbortCause cause = AbortCause::kNone;  // kTxAbort only
};

// Fixed-capacity per-thread event ring. Capacity is rounded up to a power
// of two; once full, the oldest events are overwritten (and counted).
class EventRing {
 public:
  explicit EventRing(std::size_t capacity);

  void push(const TelemetryEvent& e) {
    buf_[static_cast<std::size_t>(pushed_) & mask_] = e;
    ++pushed_;
  }

  std::size_t capacity() const { return buf_.size(); }
  std::uint64_t recorded() const { return pushed_; }
  std::uint64_t dropped() const {
    return pushed_ > buf_.size() ? pushed_ - buf_.size() : 0;
  }
  std::size_t size() const {
    return pushed_ < buf_.size() ? static_cast<std::size_t>(pushed_)
                                 : buf_.size();
  }

  // Retained events, oldest first.
  std::vector<TelemetryEvent> snapshot() const;

 private:
  std::vector<TelemetryEvent> buf_;
  std::size_t mask_ = 0;
  std::uint64_t pushed_ = 0;
};

// The telemetry sink an Engine (and the region drivers, through it) emit
// into. Owns one EventRing per simulated thread.
class Telemetry {
 public:
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

  explicit Telemetry(std::size_t ring_capacity = kDefaultRingCapacity)
      : ring_capacity_(ring_capacity) {}

  void record(const TelemetryEvent& e) { ring(e.thread).push(e); }

  EventRing& ring(int thread);
  int thread_count() const { return static_cast<int>(rings_.size()); }

  std::uint64_t total_recorded() const;
  std::uint64_t total_dropped() const;
  void clear() { rings_.clear(); }

  // All retained events of all threads, merged in timestamp order (ties
  // broken by thread id, then per-thread order).
  std::vector<TelemetryEvent> merged() const;

  void dump_csv(std::FILE* out) const;
  void dump_json(std::FILE* out) const;

 private:
  std::size_t ring_capacity_;
  std::vector<std::unique_ptr<EventRing>> rings_;  // indexed by thread id
};

// ---------------------------------------------------------------------------
// Avalanche detection (Ch. 3).
//
// An avalanche is seeded by one thread falling off speculation and
// re-issuing its lock acquisition non-speculatively: that store invalidates
// the lock's cache line in every speculating reader, aborting them all, and
// the lock then drains the threads serially. In a telemetry trace this
// appears as a kLockAcquire followed by a burst of kTxAbort events from
// other threads and a chain of further non-speculative acquire/release
// pairs. The detector groups such bursts into episodes.
// ---------------------------------------------------------------------------

struct AvalancheConfig {
  // Maximum gap (cycles) between consecutive episode events; a longer quiet
  // period closes the episode.
  std::uint64_t window_cycles = 20000;
  // Episodes with fewer distinct victims are not avalanches (a single
  // conflicting pair serializing is expected behaviour, not a cascade).
  int min_victims = 2;
};

struct AvalancheEpisode {
  int trigger_thread = -1;        // thread whose fallback seeded the episode
  std::uint64_t start = 0;        // timestamp of the seeding kLockAcquire
  std::uint64_t end = 0;          // last event of the serialized convoy
  support::LineId line = 0;       // lock line of the trigger (0 if unknown)
  std::vector<int> victims;       // distinct threads aborted in the episode
  std::uint64_t aborts = 0;       // total aborts inside the episode
  std::uint64_t serialized_ops = 0;  // non-speculative completions inside

  int victim_count() const { return static_cast<int>(victims.size()); }
  std::uint64_t duration() const { return end - start; }
};

// Post-processes a merged, timestamp-ordered event stream into episodes.
std::vector<AvalancheEpisode> detect_avalanches(
    const std::vector<TelemetryEvent>& merged, const AvalancheConfig& cfg = {});

inline std::vector<AvalancheEpisode> detect_avalanches(
    const Telemetry& t, const AvalancheConfig& cfg = {}) {
  return detect_avalanches(t.merged(), cfg);
}

// Per-thread SCM rejoin latencies: cycles between a thread's arrival at the
// auxiliary lock (kAuxEnter) and its release of it (kAuxExit), i.e. the time
// a conflicting thread spent serialized before rejoining full-speed
// speculation. One sample per enter/exit pair.
std::vector<std::uint64_t> rejoin_latencies(
    const std::vector<TelemetryEvent>& merged);

}  // namespace elision::tsx
