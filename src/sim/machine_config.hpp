// Configuration of the simulated machine: the paper's Core i7-4770
// (4 cores x 2 hyperthreads, 3.4 GHz, 32KB 8-way L1D, 256KB L2, 8MB L3).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/cost_model.hpp"

namespace elision::sim {

struct MachineConfig {
  // Topology. Logical thread t runs on core (t % n_cores); threads mapped to
  // the same core are hyperthread siblings and run slower while co-active.
  unsigned n_cores = 4;
  unsigned smt_per_core = 2;
  // Per-access cost multiplier while a hyperthread sibling is co-active.
  // Pointer-chasing critical sections benefit substantially from SMT on
  // Haswell (the sibling hides latency), hence the mild penalty.
  double smt_slowdown = 1.25;

  double ghz = 3.4;  // converts cycles to simulated seconds for reporting

  CostModel cost;

  // Scheduling: a running thread yields once its virtual clock exceeds the
  // minimum runnable clock by this slack. 0 = strict earliest-first
  // interleaving at memory-access granularity.
  std::uint64_t yield_slack_cycles = 0;

  std::size_t fiber_stack_bytes = 256 * 1024;

  // Safety valve: abort the simulation after this many context switches
  // (0 = unlimited). Used by tests to detect livelock/deadlock.
  std::uint64_t max_switches = 0;

  std::uint64_t seed = 0x1234ABCDULL;

  std::uint64_t cycles(double seconds) const {
    return static_cast<std::uint64_t>(seconds * ghz * 1e9);
  }
  double seconds(std::uint64_t cycles_) const {
    return static_cast<double>(cycles_) / (ghz * 1e9);
  }
};

}  // namespace elision::sim
