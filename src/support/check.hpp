// Lightweight assertion macros used throughout the library.
//
// ELISION_CHECK is always on (it guards simulator invariants whose violation
// would silently corrupt an experiment); ELISION_DCHECK compiles away in
// release builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace elision::support {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "ELISION_CHECK failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace elision::support

#define ELISION_CHECK(expr)                                               \
  do {                                                                    \
    if (!(expr)) [[unlikely]] {                                           \
      ::elision::support::check_failed(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                     \
  } while (0)

#define ELISION_CHECK_MSG(expr, msg)                                   \
  do {                                                                 \
    if (!(expr)) [[unlikely]] {                                        \
      ::elision::support::check_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define ELISION_DCHECK(expr) ((void)0)
#else
#define ELISION_DCHECK(expr) ELISION_CHECK(expr)
#endif
