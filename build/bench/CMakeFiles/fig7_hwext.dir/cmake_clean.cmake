file(REMOVE_RECURSE
  "CMakeFiles/fig7_hwext.dir/fig7_hwext.cpp.o"
  "CMakeFiles/fig7_hwext.dir/fig7_hwext.cpp.o.d"
  "fig7_hwext"
  "fig7_hwext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_hwext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
