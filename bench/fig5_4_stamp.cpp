// Figure 5.4 — STAMP results: run time of each application under the six
// schemes, normalized to the standard (non-speculative) version of the
// lock, plus attempts/op and the non-speculative fraction.
//
// Expected shape: MCS gains nothing from plain HLE but up to ~2.5x from
// HLE-SCM; TTAS gains up to ~2x from HLE on intruder; optimistic SLR is
// the overall best on most applications.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "stamp/common.hpp"

int main() {
  using namespace elision;
  harness::banner("Figure 5.4",
                  "STAMP, 8 threads: normalized run time (lower is "
                  "better), attempts per critical section, non-spec "
                  "fraction.\n"
                  "Expect: HLE-MCS ~1.0 everywhere; HLE-SCM and opt-SLR "
                  "well below 1; intruder the best plain-HLE TTAS case.");
  const double scale = harness::env_duration_scale();

  // Every (lock, app, scheme) cell is an independent simulation. Build the
  // whole job grid up front — the standard-scheme baseline followed by the
  // six evaluated schemes per app — fan it out across host threads
  // (ELISION_HOST_THREADS; defaults to 1), and print from the in-order
  // results, so the tables are byte-identical at any host-thread count.
  std::vector<stamp::StampJob> jobs;
  for (const auto lock : {stamp::LockKind::kTtas, stamp::LockKind::kMcs}) {
    for (const char* app : stamp::kAllAppNames) {
      stamp::StampConfig cfg;
      cfg.lock = lock;
      cfg.scale = 0.25 * scale;
      cfg.scheme = locks::Scheme::kStandard;
      jobs.push_back({app, cfg});
      for (const auto scheme : locks::kAllSixSchemes) {
        cfg.scheme = scheme;
        jobs.push_back({app, cfg});
      }
    }
  }
  const std::vector<stamp::StampResult> results =
      stamp::run_apps(jobs, harness::env_host_threads());

  std::size_t j = 0;
  for (const auto lock : {stamp::LockKind::kTtas, stamp::LockKind::kMcs}) {
    std::printf("\n-- %s lock --\n", stamp::lock_name(lock));
    harness::Table table({"app", "scheme", "norm-time", "att/op",
                          "nonspec-frac"});
    // The paper's seven configurations plus the labyrinth extension.
    for (const char* app : stamp::kAllAppNames) {
      const auto& base = results[j++];
      for (const auto scheme : locks::kAllSixSchemes) {
        const auto& r = results[j++];
        table.add_row({app, locks::scheme_name(scheme),
                       harness::fmt(static_cast<double>(r.elapsed_cycles) /
                                    static_cast<double>(base.elapsed_cycles), 3),
                       harness::fmt(r.attempts_per_op(), 2),
                       harness::fmt(r.nonspec_fraction(), 3)});
      }
    }
    table.print();
  }
  return 0;
}
