// Deterministic virtual-time scheduler for simulated threads.
//
// Each logical thread of the simulated machine is a fiber with a virtual
// clock measured in CPU cycles. The scheduler always resumes the runnable
// thread with the smallest clock (ties broken by thread id), which makes the
// interleaving of the simulated parallel execution deterministic while
// faithfully modeling true concurrency: clocks advance independently, so
// non-conflicting work overlaps in virtual time.
//
// Usage:
//   Scheduler sched(config);
//   sched.spawn([&](SimThread& t) { ... t.advance(c); t.maybe_yield(); ... });
//   sched.run_for(config.cycles(0.010));   // 10 simulated milliseconds
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/machine_config.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace elision::sim {

class Scheduler;

// One logical thread of the simulated machine. Workload code receives a
// reference and calls advance()/maybe_yield() (usually indirectly, through
// the tsx shared-memory API).
class SimThread {
 public:
  SimThread(Scheduler& sched, int tid, std::uint64_t seed,
            std::function<void(SimThread&)> body, std::size_t stack_bytes);

  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  int tid() const { return tid_; }
  std::uint64_t now() const { return vclock_; }
  bool finished() const { return finished_; }
  Scheduler& scheduler() { return sched_; }
  support::Xoshiro256& rng() { return rng_; }

  // Advances this thread's virtual clock by `cycles` scaled by the
  // hyperthreading model (a live sibling slows both siblings down).
  void advance(std::uint64_t cycles);

  // Yields if this thread has run ahead of the earliest runnable thread by
  // more than the configured slack.
  void maybe_yield();

  // Unconditionally yields to the scheduler.
  void yield();

  // Convenience: advance then maybe_yield. This is the hook the shared-memory
  // layer calls once per simulated memory access — and therefore the
  // perturbation point of the schedule-exploration stress subsystem
  // (src/stress): with PerturbConfig enabled, a random extra delay may be
  // injected here before the yield decision.
  void tick(std::uint64_t cycles) {
    advance(cycles);
    if (sched_perturb_enabled_) maybe_perturb();
    maybe_yield();
  }

  // True once the scheduler's virtual deadline has passed; benchmark loops
  // exit at the next operation boundary.
  bool stop_requested() const;

  // Slot for the TSX layer to attach its per-thread transaction context.
  void* user_data = nullptr;

 private:
  friend class Scheduler;
  static void entry(void* self);

  // Slow path of tick(): draws from the perturbation RNG and, budget
  // permitting, jumps this thread's clock forward by a random delay.
  void maybe_perturb();

  Scheduler& sched_;
  const int tid_;
  std::uint64_t vclock_ = 0;
  bool finished_ = false;
  const bool sched_perturb_enabled_;
  support::Xoshiro256 rng_;
  support::Xoshiro256 perturb_rng_;
  std::function<void(SimThread&)> body_;
  Fiber fiber_;
};

class Scheduler {
 public:
  explicit Scheduler(MachineConfig config = {});
  ~Scheduler();

  const MachineConfig& config() const { return config_; }

  // Creates a logical thread. Must be called before run()/run_for().
  SimThread& spawn(std::function<void(SimThread&)> body);

  // Runs until every thread finishes.
  void run();

  // Sets the virtual deadline (threads observe stop_requested() once their
  // clock passes it), then runs until every thread finishes.
  void run_for(std::uint64_t deadline_cycles);

  std::size_t thread_count() const { return threads_.size(); }
  SimThread& thread(std::size_t i) { return *threads_[i]; }

  // Largest virtual clock reached by any thread: the simulated wall time.
  std::uint64_t elapsed_cycles() const;

  std::uint64_t deadline() const { return deadline_; }
  std::uint64_t switch_count() const { return switches_; }

  // Perturbations injected so far (see PerturbConfig). The stress driver
  // reads this after a failing run to seed budget minimization.
  std::uint64_t perturb_points_used() const { return perturb_points_; }

  // Consumes one unit of the perturbation budget; false when exhausted.
  bool consume_perturb_point() {
    if (config_.perturb.max_points != 0 &&
        perturb_points_ >= config_.perturb.max_points) {
      return false;
    }
    ++perturb_points_;
    return true;
  }

  // The thread currently executing, or nullptr when the host context runs.
  SimThread* current() { return current_; }

  // Smallest clock among runnable threads (max uint64 if none).
  std::uint64_t min_runnable_clock() const;

  // --- internal, used by SimThread ---
  void yield_from(SimThread& t);
  [[noreturn]] void finish_from(SimThread& t);
  double smt_multiplier(const SimThread& t) const;

 private:
  SimThread* pick_next() const;  // earliest-clock runnable thread
  void switch_from_host();

  MachineConfig config_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  Fiber host_;
  SimThread* current_ = nullptr;
  std::uint64_t deadline_ = UINT64_MAX;
  std::uint64_t switches_ = 0;
  std::uint64_t perturb_points_ = 0;
  bool running_ = false;
};

}  // namespace elision::sim
