file(REMOVE_RECURSE
  "CMakeFiles/abl_grouped_scm.dir/abl_grouped_scm.cpp.o"
  "CMakeFiles/abl_grouped_scm.dir/abl_grouped_scm.cpp.o.d"
  "abl_grouped_scm"
  "abl_grouped_scm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_grouped_scm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
