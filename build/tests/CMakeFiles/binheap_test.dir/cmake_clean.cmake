file(REMOVE_RECURSE
  "CMakeFiles/binheap_test.dir/binheap_test.cpp.o"
  "CMakeFiles/binheap_test.dir/binheap_test.cpp.o.d"
  "binheap_test"
  "binheap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binheap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
