// The uniform critical-section runner over the evaluated locking schemes
// (Sec. 5.1 Methodology). Scheme selection and tuning travel together in an
// ElisionPolicy (locks/policy.hpp); the legacy Scheme enum still converts
// implicitly for existing call sites.
#pragma once

#include "locks/adaptive.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/policy.hpp"
#include "locks/region.hpp"
#include "locks/grouped_scm.hpp"
#include "locks/scm.hpp"
#include "locks/shared_guard.hpp"
#include "locks/slr.hpp"
#include "support/function_ref.hpp"

namespace elision::locks {

// Runs critical sections under a chosen policy. One instance per (lock,
// policy) pair; shared by all threads (the per-episode SCM/SLR state is
// local to each run() call, per Algorithm 3).
template <typename Lock>
class CriticalSection {
 public:
  CriticalSection(ElisionPolicy policy, Lock& main)
      : policy_(policy), main_(main), adaptive_(policy.adapt) {}

  Scheme scheme() const { return policy_.scheme; }
  const ElisionPolicy& policy() const { return policy_; }
  Lock& main_lock() { return main_; }
  McsLock& aux_lock() { return aux_; }
  // The online mode controller consulted by Scheme::kAdaptive dispatch
  // (mode ladder, hysteresis state, decision trace). Inert under every
  // other scheme.
  const AdaptiveController& adaptive() const { return adaptive_; }

  // Runs the body under the policy's default access mode (exclusive unless
  // the policy was built with .shared()).
  RegionResult run(tsx::Ctx& ctx, support::FunctionRef<void()> body) {
    return run_mode(ctx, policy_.mode, body);
  }

  // Explicit-mode entry points. run_shared() requires a two-mode lock; the
  // body runs as one of many readers and must not write simulated shared
  // state (mirrors snippet-style transactional_shared_lock_guard usage).
  RegionResult run_exclusive(tsx::Ctx& ctx,
                             support::FunctionRef<void()> body) {
    return run_mode(ctx, AccessMode::kExclusive, body);
  }
  RegionResult run_shared(tsx::Ctx& ctx, support::FunctionRef<void()> body)
    requires detail::kHasSharedMode<Lock>
  {
    return run_mode(ctx, AccessMode::kShared, body);
  }

  RegionResult run_mode(tsx::Ctx& ctx, AccessMode mode,
                        support::FunctionRef<void()> body) {
    if constexpr (!detail::kHasSharedMode<Lock>) {
      ELISION_CHECK_MSG(mode == AccessMode::kExclusive,
                        "shared-mode policy requires a two-mode lock "
                        "(SharedTtasLock / SharedMcsLock)");
    }
    switch (policy_.scheme) {
      case Scheme::kStandard: {
        RegionResult r;
        complete_locked(ctx, main_, r, body, mode);
        return r;
      }
      case Scheme::kHle:
        return hle_region(ctx, main_, policy_.retry, body, mode);
      case Scheme::kRtmElide:
        return rtm_elide_region(ctx, main_, policy_.retry, body, mode);
      case Scheme::kHleScm:
      case Scheme::kHleScmNested:
        return scm_region(ctx, main_, aux_, policy_.scm, body, mode);
      case Scheme::kPesSlr:
      case Scheme::kOptSlr:
      case Scheme::kOptSlrScm:
        return slr_region(ctx, main_, aux_, policy_.slr, body, mode);
      case Scheme::kHleGroupedScm:
        return grouped_scm_region(ctx, main_, aux_bank_, policy_.grouped,
                                  body, mode);
      case Scheme::kAdaptive:
        return adaptive_region(ctx, body, mode);
    }
    ELISION_CHECK_MSG(false, "unknown scheme");
    return {};
  }

 private:
  // Scheme::kAdaptive: consult the controller's current mode, dispatch to
  // that mode's region driver, and feed the region's outcome back. Threads
  // mid-region during a migration simply finish under the mode they
  // started with — every mode ultimately respects the main lock, so any
  // mix is as safe as that mode's own fallback path.
  RegionResult adaptive_region(tsx::Ctx& ctx,
                               support::FunctionRef<void()> body,
                               AccessMode mode) {
    RegionResult r;
    switch (adaptive_.mode()) {
      case AdaptiveMode::kHle:
        r = hle_region(ctx, main_, policy_.retry, body, mode);
        break;
      case AdaptiveMode::kHleScm:
        r = scm_region(ctx, main_, aux_, policy_.scm, body, mode);
        break;
      case AdaptiveMode::kHleGroupedScm:
        r = grouped_scm_region(ctx, main_, aux_bank_, policy_.grouped, body,
                               mode);
        break;
      case AdaptiveMode::kStandard:
        complete_locked(ctx, main_, r, body, mode);
        break;
    }
    adaptive_.on_region(ctx.thread().now(), r.speculative, r.attempts);
    return r;
  }

  ElisionPolicy policy_;
  Lock& main_;
  // The auxiliary lock must be starvation-free (Ch. 4): MCS.
  McsLock aux_;
  // Auxiliary lock groups for the grouped-SCM extension.
  AuxLockBank<McsLock, 8> aux_bank_;
  // Online mode controller for Scheme::kAdaptive.
  AdaptiveController adaptive_;
};

}  // namespace elision::locks
