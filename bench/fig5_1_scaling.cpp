// Figure 5.1 — thread scaling on a 128-node tree under moderate contention
// (20% updates), normalized to a single thread running with NO locking.
//
// Expected shape: the software-assisted schemes scale with the thread
// count; plain HLE-MCS does not scale at all; the MCS/TTAS gap closes
// under SCM/SLR.
#include <cstdio>

#include "bench_common.hpp"

namespace {

// Single thread, no locking at all: the normalization baseline.
double no_lock_baseline() {
  using namespace elision;
  using namespace elision::bench;
  ds::RbTree tree(128 * 4 + 256);
  support::Xoshiro256 fill(42);
  std::size_t filled = 0;
  while (filled < 128) {
    if (tree.unsafe_insert(fill.next_below(256))) ++filled;
  }
  tree.unsafe_distribute_free_lists(1);
  harness::BenchConfig cfg;
  cfg.threads = 1;
  cfg.duration_sec = 0.0015;
  cfg.duration_scale = harness::env_duration_scale();
  const auto stats = harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(256);
    const auto dice = static_cast<int>(rng.next_below(100));
    if (dice < 10) {
      tree.insert(ctx, key);
    } else if (dice < 20) {
      tree.erase(ctx, key);
    } else {
      tree.contains(ctx, key);
    }
    return locks::RegionResult{.speculative = false, .attempts = 1};
  });
  return stats.throughput();
}

}  // namespace

int main() {
  using namespace elision;
  using namespace elision::bench;
  harness::banner("Figure 5.1",
                  "Scheme scaling on a 128-node tree, 10i/10d/80l, "
                  "normalized to 1 thread with no locking.\n"
                  "Expect: SCM/SLR schemes scale with threads; HLE-MCS "
                  "flat; the MCS vs TTAS gap closes under the software-"
                  "assisted schemes.");
  const double base = no_lock_baseline();
  for (const LockSel lock : {LockSel::kTtas, LockSel::kMcs}) {
    std::printf("\n-- %s lock --\n", lock_sel_name(lock));
    harness::Table table({"scheme", "1-thread", "2-threads", "4-threads",
                          "8-threads"});
    for (const auto scheme :
         {locks::Scheme::kStandard, locks::Scheme::kHle,
          locks::Scheme::kHleScm, locks::Scheme::kOptSlr,
          locks::Scheme::kOptSlrScm}) {
      std::vector<std::string> row{locks::scheme_name(scheme)};
      for (const int threads : {1, 2, 4, 8}) {
        RbPoint p;
        p.size = 128;
        p.update_pct = 20;
        p.threads = threads;
        p.lock = lock;
        p.scheme = locks::ElisionPolicy::from_scheme(scheme);
        row.push_back(harness::fmt(run_rb_point(p).throughput() / base, 2));
      }
      table.add_row(std::move(row));
    }
    table.print();
  }
  return 0;
}
