file(REMOVE_RECURSE
  "CMakeFiles/elision_harness.dir/report.cpp.o"
  "CMakeFiles/elision_harness.dir/report.cpp.o.d"
  "CMakeFiles/elision_harness.dir/runner.cpp.o"
  "CMakeFiles/elision_harness.dir/runner.cpp.o.d"
  "libelision_harness.a"
  "libelision_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elision_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
