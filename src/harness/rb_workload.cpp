#include "harness/rb_workload.hpp"

#include <algorithm>
#include <type_traits>
#include <vector>

#include "support/parallel.hpp"

#include "ds/rbtree.hpp"
#include "locks/clh_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/ttas_lock.hpp"
#include "support/rng.hpp"

namespace elision::harness {

const char* lock_sel_name(LockSel s) {
  switch (s) {
    case LockSel::kTtas: return "TTAS";
    case LockSel::kMcs: return "MCS";
    case LockSel::kTicketAdj: return "Ticket-adj";
    case LockSel::kClhAdj: return "CLH-adj";
    case LockSel::kTicket: return "Ticket";
    case LockSel::kClh: return "CLH";
  }
  return "?";
}

namespace {

template <typename Lock>
RunStats run_rb_with_lock(const RbPoint& p, ds::RbTree& tree) {
  Lock lock;
  locks::CriticalSection<Lock> cs(p.scheme, lock);
  BenchConfig cfg;
  cfg.threads = p.threads;
  cfg.duration_sec = p.duration_sec;
  cfg.duration_scale = env_duration_scale();
  cfg.tsx.hardware_extension = p.hardware_extension;
  cfg.machine.seed = p.seed;
  if (p.n_cores != 0) cfg.machine.n_cores = p.n_cores;
  if (p.smt_per_core != 0) cfg.machine.smt_per_core = p.smt_per_core;
  if (p.yield_slack_cycles != 0) {
    cfg.machine.yield_slack_cycles = p.yield_slack_cycles;
  }
  cfg.timeline_slot_cycles = p.timeline_slot_cycles;
  cfg.policy = p.scheme;
  cfg.telemetry = p.telemetry;
  cfg.avalanche = p.avalanche;
  const std::uint64_t domain = p.size * 2;
  const int half_updates = p.update_pct / 2;
  auto stats = run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(domain);
    const auto dice = static_cast<int>(rng.next_below(100));
    return cs.run(ctx, [&] {
      if (dice < half_updates) {
        tree.insert(ctx, key);
      } else if (dice < p.update_pct) {
        tree.erase(ctx, key);
      } else {
        tree.contains(ctx, key);
      }
    });
  });
  if constexpr (std::is_same_v<Lock, locks::TtasLock>) {
    if (p.arrival_held_frac != nullptr) {
      *p.arrival_held_frac =
          lock.arrivals() > 0
              ? static_cast<double>(lock.arrivals_lock_held()) /
                    static_cast<double>(lock.arrivals())
              : 0.0;
    }
  }
  return stats;
}

}  // namespace

RunStats run_rb_point_once(const RbPoint& p) {
  // max_threads stays at the default for every historical point (the free
  // array's shape feeds the simulated access stream, so changing it would
  // shift baselines); the 128/256-thread machine-scale points need the
  // per-thread free lists sized to match.
  ds::RbTree tree(p.size * 4 + 256,
                  std::max(p.threads, tsx::kDefaultPoolThreads));
  support::Xoshiro256 fill(p.seed);
  std::size_t filled = 0;
  while (filled < p.size) {
    if (tree.unsafe_insert(fill.next_below(p.size * 2))) ++filled;
  }
  tree.unsafe_distribute_free_lists(p.threads);
  switch (p.lock) {
    case LockSel::kTtas:
      return run_rb_with_lock<locks::TtasLock>(p, tree);
    case LockSel::kMcs:
      return run_rb_with_lock<locks::McsLock>(p, tree);
    case LockSel::kTicketAdj:
      return run_rb_with_lock<locks::TicketLockAdjusted>(p, tree);
    case LockSel::kClhAdj:
      return run_rb_with_lock<locks::ClhLockAdjusted>(p, tree);
    case LockSel::kTicket:
      return run_rb_with_lock<locks::TicketLock>(p, tree);
    case LockSel::kClh:
      return run_rb_with_lock<locks::ClhLock>(p, tree);
  }
  return {};
}

RunStats run_rb_point(const RbPoint& p) {
  const int n = p.seeds > 0 ? p.seeds : 1;
  // Each seed is an independent simulation; fan them out across host
  // threads, then merge in seed order — RunStats::accumulate runs over the
  // per-seed slots sequentially, so the result is byte-identical to a
  // host_threads=1 run no matter which thread ran which seed when.
  std::vector<RunStats> per_seed(static_cast<std::size_t>(n));
  std::vector<double> arrivals(static_cast<std::size_t>(n), 0.0);
  support::parallel_for_each(
      static_cast<std::size_t>(n),
      [&](std::size_t s) {
        RbPoint q = p;
        q.host_threads = 1;
        q.seed = p.seed + static_cast<std::uint64_t>(s) * 0x9E3779B9ULL;
        q.arrival_held_frac =
            p.arrival_held_frac != nullptr ? &arrivals[s] : nullptr;
        per_seed[s] = run_rb_point_once(q);
      },
      p.host_threads);
  RunStats total;
  double arrival_sum = 0.0;
  for (int s = 0; s < n; ++s) {
    total.accumulate(per_seed[static_cast<std::size_t>(s)]);
    arrival_sum += arrivals[static_cast<std::size_t>(s)];
  }
  if (p.arrival_held_frac != nullptr) *p.arrival_held_frac = arrival_sum / n;
  return total;
}

}  // namespace elision::harness
