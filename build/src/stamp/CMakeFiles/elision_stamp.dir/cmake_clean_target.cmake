file(REMOVE_RECURSE
  "libelision_stamp.a"
)
