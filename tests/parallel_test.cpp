// Tier-1 tests of the in-process parallel-simulation primitive
// (support/parallel.hpp) and its determinism contract at every layer that
// fans out across host threads: raw parallel_for_each, the stress sweep,
// the multi-seed RB-tree point, and the STAMP job runner. The contract
// under test is always the same: any host-thread count produces results
// byte-identical to sequential execution.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "harness/rb_workload.hpp"
#include "harness/runner.hpp"
#include "stamp/common.hpp"
#include "stress/stress.hpp"
#include "support/parallel.hpp"

namespace {

using namespace elision;

TEST(ParallelForEach, RunsEveryItemExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    std::vector<int> hits(257, 0);
    support::parallel_for_each(
        hits.size(), [&](std::size_t i) { ++hits[i]; }, threads);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i], 1) << "item " << i << " at threads=" << threads;
    }
  }
}

TEST(ParallelForEach, ZeroItemsAndMoreThreadsThanItems) {
  std::atomic<int> ran{0};
  support::parallel_for_each(0, [&](std::size_t) { ++ran; }, 8);
  EXPECT_EQ(ran.load(), 0);
  support::parallel_for_each(3, [&](std::size_t) { ++ran; }, 64);
  EXPECT_EQ(ran.load(), 3);
}

// Item-order merging must hold regardless of completion order, so make
// completion order adversarial: early items sleep longest and finish last.
TEST(ParallelForEach, ResultsLandInItemSlotsUnderAdversarialDurations) {
  constexpr std::size_t kItems = 48;
  std::vector<std::uint64_t> expected(kItems);
  for (std::size_t i = 0; i < kItems; ++i) expected[i] = i * i + 7;
  for (const int threads : {1, 2, 8}) {
    std::vector<std::uint64_t> out(kItems, 0);
    support::parallel_for_each(
        kItems,
        [&](std::size_t i) {
          std::this_thread::sleep_for(
              std::chrono::microseconds((kItems - i) * 20));
          out[i] = i * i + 7;
        },
        threads);
    EXPECT_EQ(out, expected) << "threads=" << threads;
  }
}

TEST(ParallelForEach, ExceptionPropagatesAndCancelsRemainingItems) {
  // Inline path: items after the throwing one never run at all.
  std::atomic<int> ran{0};
  EXPECT_THROW(
      support::parallel_for_each(
          100,
          [&](std::size_t i) {
            ++ran;
            if (i == 3) throw std::runtime_error("item 3");
          },
          1),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 4);

  // Threaded path: the first failure stops new claims, so only the handful
  // of jobs already in flight can still execute.
  ran = 0;
  EXPECT_THROW(
      support::parallel_for_each(
          10000,
          [&](std::size_t i) {
            ++ran;
            if (i == 0) throw std::runtime_error("item 0");
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          },
          4),
      std::runtime_error);
  EXPECT_LT(ran.load(), 5000);
}

TEST(ParallelForEach, LowestThrowingItemWinsDeterministically) {
  // Every item throws its own index; item 0 is always claimed, so the
  // rethrown exception must always carry index 0 no matter which worker
  // lost the race.
  for (const int threads : {1, 2, 8}) {
    for (int round = 0; round < 5; ++round) {
      std::size_t thrown = SIZE_MAX;
      try {
        support::parallel_for_each(
            64, [&](std::size_t i) { throw i; }, threads);
        FAIL() << "expected an exception";
      } catch (const std::size_t& i) {
        thrown = i;
      }
      EXPECT_EQ(thrown, 0u) << "threads=" << threads;
    }
  }
}

TEST(ParallelSupport, HostHardwareThreadsIsPositive) {
  EXPECT_GE(support::host_hardware_threads(), 1);
}

TEST(ParallelSupport, EnvHostThreadsParsesAndDefaults) {
  ::unsetenv("ELISION_HOST_THREADS");
  EXPECT_EQ(harness::env_host_threads(), 1);
  ::setenv("ELISION_HOST_THREADS", "6", 1);
  EXPECT_EQ(harness::env_host_threads(), 6);
  ::setenv("ELISION_HOST_THREADS", "0", 1);
  EXPECT_EQ(harness::env_host_threads(), support::host_hardware_threads());
  ::unsetenv("ELISION_HOST_THREADS");
}

// ---------------------------------------------------------------------------
// Stress sweep: SweepStats and the on_run sequence must be byte-identical
// across host-thread counts.
// ---------------------------------------------------------------------------

std::vector<std::string> sweep_log(int host_threads, stress::SweepStats* out) {
  stress::StressOptions o;
  o.threads = 4;
  o.duration_ms = 0.03;
  o.host_threads = host_threads;
  std::vector<std::string> log;
  *out = stress::sweep(
      o, {locks::ElisionPolicy::hle(), locks::ElisionPolicy::hle_scm()},
      {stress::LockKind::kTtas, stress::LockKind::kMcs},
      stress::all_workloads(), /*first_seed=*/1, /*n_seeds=*/2,
      [&](const stress::StressCase& c, const stress::RunOutcome& r) {
        log.push_back(stress::case_name(c) + " ops=" + std::to_string(r.ops) +
                      " aborts=" + std::to_string(r.aborts) +
                      " elapsed=" + std::to_string(r.elapsed_cycles));
      });
  return log;
}

TEST(ParallelStress, SweepByteIdenticalAcrossHostThreads) {
  stress::SweepStats serial;
  const std::vector<std::string> serial_log = sweep_log(1, &serial);
  // 2 policies x 2 locks x all workloads x 2 seeds.
  ASSERT_EQ(serial.runs,
            static_cast<int>(8 * stress::all_workloads().size()));
  for (const int ht : {2, 4}) {
    stress::SweepStats threaded;
    const std::vector<std::string> log = sweep_log(ht, &threaded);
    EXPECT_EQ(log, serial_log) << "host_threads=" << ht;
    EXPECT_EQ(threaded.runs, serial.runs);
    EXPECT_EQ(threaded.total_ops, serial.total_ops);
    EXPECT_EQ(threaded.failures.size(), serial.failures.size());
  }
}

// ---------------------------------------------------------------------------
// Multi-seed RB point: every merged RunStats field must match sequential.
// ---------------------------------------------------------------------------

harness::RunStats rb_stats(int host_threads, double* arrival) {
  harness::RbPoint p;
  p.size = 64;
  p.threads = 4;
  p.seeds = 4;
  p.duration_sec = 0.001;
  p.scheme = locks::ElisionPolicy::hle_scm();
  p.timeline_slot_cycles = 20000;  // exercise timeline slot-wise merging
  p.host_threads = host_threads;
  p.arrival_held_frac = arrival;
  return harness::run_rb_point(p);
}

TEST(ParallelRbWorkload, MultiSeedPointByteIdenticalAcrossHostThreads) {
  double arr1 = 0.0;
  const harness::RunStats a = rb_stats(1, &arr1);
  double arr4 = 0.0;
  const harness::RunStats b = rb_stats(4, &arr4);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.spec_ops, b.spec_ops);
  EXPECT_EQ(a.nonspec_ops, b.nonspec_ops);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.perturb_points, b.perturb_points);
  EXPECT_EQ(a.tx.begins, b.tx.begins);
  EXPECT_EQ(a.tx.commits, b.tx.commits);
  EXPECT_EQ(a.tx.aborts, b.tx.aborts);
  EXPECT_EQ(arr1, arr4);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].ops, b.timeline[i].ops) << "slot " << i;
    EXPECT_EQ(a.timeline[i].nonspec_ops, b.timeline[i].nonspec_ops)
        << "slot " << i;
  }
  EXPECT_GT(a.ops, 0u);
}

// ---------------------------------------------------------------------------
// STAMP: run_apps must return results in job order, byte-identical to
// sequential execution.
// ---------------------------------------------------------------------------

std::vector<stamp::StampResult> stamp_results(int host_threads) {
  std::vector<stamp::StampJob> jobs;
  for (const char* app : {"genome", "ssca2", "kmeans_low", "genome"}) {
    stamp::StampConfig cfg;
    cfg.threads = 4;
    cfg.scale = 0.05;
    cfg.scheme = locks::Scheme::kHleScm;
    jobs.push_back({app, cfg});
  }
  jobs[3].cfg.scheme = locks::Scheme::kStandard;  // distinct duplicate app
  return stamp::run_apps(jobs, host_threads);
}

TEST(ParallelStamp, RunAppsByteIdenticalAndInJobOrder) {
  const auto serial = stamp_results(1);
  ASSERT_EQ(serial.size(), 4u);
  EXPECT_EQ(serial[0].app, "genome");
  EXPECT_EQ(serial[1].app, "ssca2");
  EXPECT_EQ(serial[2].app, "kmeans_low");
  const auto threaded = stamp_results(4);
  ASSERT_EQ(threaded.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(threaded[i].app, serial[i].app) << "job " << i;
    EXPECT_EQ(threaded[i].checksum, serial[i].checksum) << "job " << i;
    EXPECT_EQ(threaded[i].invariants_ok, serial[i].invariants_ok);
    EXPECT_EQ(threaded[i].elapsed_cycles, serial[i].elapsed_cycles);
    EXPECT_EQ(threaded[i].ops, serial[i].ops) << "job " << i;
    EXPECT_EQ(threaded[i].nonspec_ops, serial[i].nonspec_ops);
    EXPECT_EQ(threaded[i].attempts, serial[i].attempts) << "job " << i;
  }
}

}  // namespace
