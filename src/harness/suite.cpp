#include "harness/suite.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "harness/micro_point.hpp"
#include "sim/machine_config.hpp"
#include "tsx/telemetry.hpp"

namespace elision::harness {

const char* point_kind_name(PointKind k) {
  switch (k) {
    case PointKind::kRb: return "rb";
    case PointKind::kMicro: return "micro";
    case PointKind::kBtree: return "btree";
    case PointKind::kPhase: return "phase";
    case PointKind::kKv: return "kv";
  }
  return "?";
}

const char* suite_tier_name(SuiteTier t) {
  switch (t) {
    case SuiteTier::kSmoke: return "smoke";
    case SuiteTier::kFull: return "full";
  }
  return "?";
}

std::optional<SuiteTier> suite_tier_from_name(const std::string& name) {
  if (name == "smoke") return SuiteTier::kSmoke;
  if (name == "full") return SuiteTier::kFull;
  return std::nullopt;
}

namespace {

const char* lock_slug(LockSel l) {
  switch (l) {
    case LockSel::kTtas: return "ttas";
    case LockSel::kMcs: return "mcs";
    case LockSel::kTicketAdj: return "ticket-adj";
    case LockSel::kClhAdj: return "clh-adj";
    case LockSel::kTicket: return "ticket";
    case LockSel::kClh: return "clh";
  }
  return "?";
}

// Point ids and the JSON "scheme" field both use the policy's canonical
// spec spelling (locks/policy.hpp). For the pre-existing points this equals
// the lower-cased scheme name the ids historically used, so baselines keep
// matching.
std::string scheme_slug(const locks::ElisionPolicy& p) { return p.spec(); }

SuitePoint make_point(SuiteTier tier, const char* figure, std::size_t size,
                      int update_pct, int threads, LockSel lock,
                      locks::ElisionPolicy scheme, bool telemetry = false) {
  SuitePoint sp;
  sp.tier = tier;
  sp.figure = figure;
  sp.point.size = size;
  sp.point.update_pct = update_pct;
  sp.point.threads = threads;
  sp.point.lock = lock;
  sp.point.scheme = scheme;
  sp.point.telemetry = telemetry;
  sp.point.duration_sec = 0.003;
  sp.point.seeds = threads == 1 ? 1 : 2;
  sp.id = "rb-s" + std::to_string(size) + "-u" + std::to_string(update_pct) +
          "-t" + std::to_string(threads) + "-" + lock_slug(lock) + "-" +
          scheme_slug(scheme);
  return sp;
}

SuitePoint make_bt_point(SuiteTier tier, const char* figure, std::size_t size,
                         int update_pct, int scan_pct, std::size_t scan_len,
                         int threads, SharedLockSel lock,
                         locks::ElisionPolicy policy, bool telemetry = false) {
  SuitePoint sp;
  sp.tier = tier;
  sp.figure = figure;
  sp.kind = PointKind::kBtree;
  sp.bt.size = size;
  sp.bt.update_pct = update_pct;
  sp.bt.scan_pct = scan_pct;
  sp.bt.scan_len = scan_len;
  sp.bt.threads = threads;
  sp.bt.lock = lock;
  sp.bt.policy = policy;
  sp.bt.telemetry = telemetry;
  sp.bt.duration_sec = 0.003;
  sp.bt.seeds = threads == 1 ? 1 : 2;
  sp.id = "bt-s" + std::to_string(size) + "-u" + std::to_string(update_pct) +
          "-c" + std::to_string(scan_pct) + "-l" + std::to_string(scan_len) +
          "-t" + std::to_string(threads) + "-" + shared_lock_sel_name(lock) +
          "-" + policy.spec();
  return sp;
}

// Sharded-KV service points. The id encodes the shard/domain/skew/mix shape
// (z = zipf theta x100) next to the policy, like every other kind.
SuitePoint make_kv_point(SuiteTier tier, const char* figure, int shards,
                         std::size_t keys, int clients, double zipf_theta,
                         int put_pct, int multi_put_pct, int transfer_pct,
                         int threads, locks::ElisionPolicy policy,
                         bool telemetry = false) {
  SuitePoint sp;
  sp.tier = tier;
  sp.figure = figure;
  sp.kind = PointKind::kKv;
  sp.kv.shards = shards;
  sp.kv.keys = keys;
  sp.kv.clients = clients;
  sp.kv.zipf_theta = zipf_theta;
  sp.kv.put_pct = put_pct;
  sp.kv.multi_put_pct = multi_put_pct;
  sp.kv.transfer_pct = transfer_pct;
  sp.kv.threads = threads;
  sp.kv.policy = policy;
  sp.kv.telemetry = telemetry;
  sp.kv.duration_sec = 0.003;
  sp.kv.seeds = threads == 1 ? 1 : 2;
  sp.id = "kv-sh" + std::to_string(shards) + "-k" + std::to_string(keys) +
          "-z" + std::to_string(static_cast<int>(zipf_theta * 100 + 0.5)) +
          "-u" + std::to_string(put_pct + multi_put_pct + transfer_pct) +
          "-t" + std::to_string(threads) + "-" + scheme_slug(policy);
  return sp;
}

SuitePoint make_phase_point(SuiteTier tier, const char* figure,
                            std::size_t size, int calm_pct, int storm_pct,
                            int threads, LockSel lock,
                            locks::ElisionPolicy policy) {
  SuitePoint sp;
  sp.tier = tier;
  sp.figure = figure;
  sp.kind = PointKind::kPhase;
  sp.phase.size = size;
  sp.phase.calm_update_pct = calm_pct;
  sp.phase.storm_update_pct = storm_pct;
  sp.phase.threads = threads;
  sp.phase.lock = lock;
  sp.phase.scheme = policy;
  sp.phase.phase_sec = 0.001;
  sp.phase.seeds = 2;
  sp.id = "ph-s" + std::to_string(size) + "-u" + std::to_string(calm_pct) +
          "-" + std::to_string(storm_pct) + "-t" + std::to_string(threads) +
          "-" + lock_slug(lock) + "-" + scheme_slug(policy);
  return sp;
}

std::vector<SuitePoint> build_points() {
  using locks::ElisionPolicy;
  constexpr SuiteTier S = SuiteTier::kSmoke;
  constexpr SuiteTier F = SuiteTier::kFull;
  std::vector<SuitePoint> v;

  // --- smoke tier: the qualitative backbone of Ch. 3/5/6, < 30s wall ---
  // Contended small tree on TTAS (Fig 5.1/5.2 left edge).
  v.push_back(make_point(S, "fig5.1", 64, 20, 8, LockSel::kTtas,
                         ElisionPolicy::standard()));
  v.push_back(
      make_point(S, "fig5.1", 64, 20, 8, LockSel::kTtas, ElisionPolicy::hle()));
  v.push_back(make_point(S, "fig5.2", 64, 20, 8, LockSel::kTtas,
                         ElisionPolicy::hle_scm()));
  v.push_back(make_point(S, "fig5.2", 64, 20, 8, LockSel::kTtas,
                         ElisionPolicy::opt_slr_scm()));
  // Contended MCS: the avalanche point (Fig 3.3) and its SCM rescue, with
  // telemetry so episode counts land in the results.
  v.push_back(make_point(S, "fig3.3", 64, 20, 8, LockSel::kMcs,
                         ElisionPolicy::hle(), /*telemetry=*/true));
  v.push_back(make_point(S, "fig5.2", 64, 20, 8, LockSel::kMcs,
                         ElisionPolicy::hle_scm(), /*telemetry=*/true));
  // Low-contention big tree (Fig 3.4 right edge: elision pays off solo).
  v.push_back(make_point(S, "fig3.4", 8192, 20, 8, LockSel::kTtas,
                         ElisionPolicy::hle()));
  // Ch. 6 fair locks, solo: adjusted ticket/CLH must elide, the unadjusted
  // ticket must not (XRELEASE mismatch on every attempt).
  v.push_back(make_point(S, "ch6", 64, 20, 1, LockSel::kTicketAdj,
                         ElisionPolicy::hle()));
  v.push_back(
      make_point(S, "ch6", 64, 20, 1, LockSel::kClhAdj, ElisionPolicy::hle()));
  v.push_back(
      make_point(S, "ch6", 64, 20, 1, LockSel::kTicket, ElisionPolicy::hle()));
  // Simulator-speed canary: fixed-work RTM microbenchmark whose
  // sim_ops_per_sec (simulated ops per host second) gates host-side engine
  // performance. Its simulated metrics are deterministic like every other
  // point's.
  {
    SuitePoint sp;
    sp.tier = S;
    sp.figure = "sim-speed";
    sp.kind = PointKind::kMicro;
    sp.id = "micro-engine-rtm-t8";
    sp.point.threads = 8;
    sp.point.size = 1024;  // array words
    sp.point.update_pct = 0;
    sp.point.seeds = 1;
    sp.point.duration_sec = 0.0;  // fixed work, not fixed virtual time
    v.push_back(sp);
  }
  // Big-machine simulator-speed canary: 64 threads on a 32-core / 2-SMT
  // machine, striped stripes with a sparser shared-line period (every 64th
  // op) and a little yield slack so the scheduler runs long bursts — the
  // configuration the O(log N) ready queue exists for. Gated like the t8
  // canary; the two together pin both ends of the machine-size range.
  {
    SuitePoint sp;
    sp.tier = S;
    sp.figure = "sim-speed";
    sp.kind = PointKind::kMicro;
    sp.id = "micro-engine-rtm-t64";
    sp.point.threads = 64;
    sp.point.size = 16384;  // array words
    sp.point.update_pct = 0;
    sp.point.seeds = 1;
    sp.point.duration_sec = 0.0;
    sp.point.micro_ops = 8000;
    sp.point.micro_shared_period = 64;
    sp.point.n_cores = 32;
    sp.point.smt_per_core = 2;
    sp.point.yield_slack_cycles = 200;
    v.push_back(sp);
  }

  // Two-mode B+tree points (shared-mode elision). The read-mostly pair is
  // the headline comparison: identical mix and lock, reads exclusive vs
  // shared. Shared mode pays off through its fallback path: an exclusive
  // fallback read claims the writer word and serializes everyone, while a
  // shared fallback read counts itself on the reader line and coexists —
  // with the elided crowd too, since that line is not the one the crowd
  // subscribes to (see locks/shared_word.hpp). The writer-heavy point
  // watches the reader-avalanche (a writer's real acquisition of the
  // reader-writer word aborts the whole subscribed reader crowd) through
  // telemetry.
  v.push_back(make_bt_point(S, "shared-elision", 1024, 10, 100, 64, 8,
                            SharedLockSel::kSharedTtas, ElisionPolicy::hle()));
  v.push_back(make_bt_point(S, "shared-elision", 1024, 10, 100, 64, 8,
                            SharedLockSel::kSharedTtas,
                            ElisionPolicy::hle().shared()));
  v.push_back(make_bt_point(S, "shared-avalanche", 128, 80, 30, 16, 8,
                            SharedLockSel::kSharedTtas,
                            ElisionPolicy::hle().shared(),
                            /*telemetry=*/true));

  // Phase-shifting adaptive headline (ROADMAP item 2): one read-mostly ->
  // write-storm -> read-mostly run, adaptive against each of its four
  // static modes. The adaptive invariants key on these ids: adaptive must
  // stay within 10% of the per-phase winner in every phase while every
  // static scheme loses at least one phase.
  for (const ElisionPolicy& pol :
       {ElisionPolicy::adaptive(), ElisionPolicy::hle(),
        ElisionPolicy::hle_scm(), ElisionPolicy::hle_grouped_scm(),
        ElisionPolicy::standard()}) {
    v.push_back(make_phase_point(S, "adaptive-phases", 12, 10, 100, 16,
                                 LockSel::kTtas, pol));
  }

  // Sharded KV service under Zipf-skewed open-loop traffic (ROADMAP item 1:
  // the production-shaped workload). The headline pair runs the same
  // moderate-skew mix under per-shard adaptive elision vs the static HLE
  // baseline (plus plain locking for scale); the hot-shard point cranks the
  // skew until one shard saturates and — with telemetry on — must show the
  // avalanche signature there.
  v.push_back(make_kv_point(S, "kv-service", 8, 8192, 2000, 0.99,
                            20, 5, 5, 8, ElisionPolicy::standard()));
  v.push_back(make_kv_point(S, "kv-service", 8, 8192, 2000, 0.99,
                            20, 5, 5, 8, ElisionPolicy::hle()));
  v.push_back(make_kv_point(S, "kv-service", 8, 8192, 2000, 0.99,
                            20, 5, 5, 8, ElisionPolicy::adaptive()));
  v.push_back(make_kv_point(S, "kv-hot-shard", 8, 8192, 4000, 1.20,
                            40, 5, 5, 8, ElisionPolicy::hle(),
                            /*telemetry=*/true));

  // --- full tier: wider scheme / size / mix / lock coverage ---
  // KV coverage: SCM-managed and grouped-SCM service variants on the
  // standard mix, and a cross-shard-heavy mix exercising the multi-lock
  // elision region and its ordered fallback.
  v.push_back(make_kv_point(F, "kv-service", 8, 8192, 2000, 0.99,
                            20, 5, 5, 8, ElisionPolicy::hle_scm()));
  v.push_back(make_kv_point(F, "kv-service", 8, 8192, 2000, 0.99,
                            20, 5, 5, 8, ElisionPolicy::hle_grouped_scm()));
  v.push_back(make_kv_point(F, "kv-cross-shard", 8, 8192, 2000, 0.99,
                            10, 25, 25, 8, ElisionPolicy::hle()));
  // Shared-mode coverage: the fair family member, the SCM-managed pair
  // (fallbacks gated through the auxiliary lock never happen on this mix,
  // so the two run identically — speculation already admits everyone), and
  // the no-speculation shared baseline.
  v.push_back(make_bt_point(F, "shared-elision", 1024, 10, 100, 64, 8,
                            SharedLockSel::kSharedMcs,
                            ElisionPolicy::hle().shared()));
  v.push_back(make_bt_point(F, "shared-elision", 1024, 10, 100, 64, 8,
                            SharedLockSel::kSharedMcs, ElisionPolicy::hle()));
  v.push_back(make_bt_point(F, "shared-elision", 1024, 10, 100, 64, 8,
                            SharedLockSel::kSharedTtas,
                            ElisionPolicy::hle_scm().shared()));
  v.push_back(make_bt_point(F, "shared-elision", 1024, 10, 100, 64, 8,
                            SharedLockSel::kSharedTtas,
                            ElisionPolicy::hle_scm()));
  v.push_back(make_bt_point(F, "shared-elision", 1024, 10, 100, 64, 8,
                            SharedLockSel::kSharedTtas,
                            ElisionPolicy::standard().shared()));
  v.push_back(make_point(F, "fig5.2", 64, 20, 8, LockSel::kTtas,
                         ElisionPolicy::pes_slr()));
  v.push_back(make_point(F, "fig5.2", 64, 20, 8, LockSel::kTtas,
                         ElisionPolicy::opt_slr()));
  v.push_back(make_point(F, "fig5.1", 64, 20, 8, LockSel::kMcs,
                         ElisionPolicy::standard()));
  v.push_back(make_point(F, "fig5.2", 64, 20, 8, LockSel::kMcs,
                         ElisionPolicy::opt_slr_scm()));
  v.push_back(make_point(F, "fig3.4", 512, 20, 8, LockSel::kTtas,
                         ElisionPolicy::hle()));
  v.push_back(make_point(F, "fig3.4", 32768, 20, 8, LockSel::kTtas,
                         ElisionPolicy::hle()));
  v.push_back(make_point(F, "fig5.1", 64, 0, 8, LockSel::kTtas,
                         ElisionPolicy::hle_scm()));
  v.push_back(make_point(F, "fig5.1", 64, 100, 8, LockSel::kTtas,
                         ElisionPolicy::hle_scm()));
  v.push_back(make_point(F, "tbl-fairlocks", 64, 20, 8, LockSel::kTicketAdj,
                         ElisionPolicy::hle_scm()));
  v.push_back(make_point(F, "tbl-fairlocks", 64, 20, 8, LockSel::kClhAdj,
                         ElisionPolicy::hle_scm()));
  v.push_back(make_point(F, "fig3.5", 64, 20, 8, LockSel::kTtas,
                         ElisionPolicy::rtm_elide()));
  v.push_back(make_point(F, "abl-scm-nested", 64, 20, 8, LockSel::kTtas,
                         ElisionPolicy::hle_scm_nested()));
  v.push_back(make_point(F, "abl-grouped-scm", 64, 20, 8, LockSel::kTtas,
                         ElisionPolicy::hle_grouped_scm()));
  // Big-machine scaling point: the fig5.1 shape at 64 threads on a 32-core /
  // 2-SMT machine — the regime Fissile Locks / the HTM tree template report
  // from and the reason the scheduler grew an O(log N) ready queue. A bit of
  // yield slack keeps the 64-way interleaving from degenerating into
  // access-granularity round-robin. The -m32x2 suffix encodes the machine
  // shape in the id so future shapes at the same (size, threads) stay
  // distinct.
  {
    SuitePoint sp = make_point(F, "fig5.1-big", 64, 20, 64, LockSel::kTtas,
                               ElisionPolicy::hle_scm());
    sp.point.n_cores = 32;
    sp.point.smt_per_core = 2;
    sp.point.yield_slack_cycles = 200;
    sp.id += "-m32x2";
    v.push_back(sp);
  }
  // Machine-scale extension of the same curve: 128 and 256 threads on
  // proportionally wider 2-SMT machines (256 is the scheduler's
  // kMaxSimThreads cap and exercises the ready queue's full two-level
  // tournament). These exist because the per-access fast path bought the
  // host headroom to simulate them in the full tier at all.
  {
    SuitePoint sp = make_point(F, "fig5.1-big", 64, 20, 128, LockSel::kTtas,
                               ElisionPolicy::hle_scm());
    sp.point.n_cores = 64;
    sp.point.smt_per_core = 2;
    sp.point.yield_slack_cycles = 200;
    sp.id += "-m64x2";
    v.push_back(sp);
  }
  {
    SuitePoint sp = make_point(F, "fig5.1-big", 64, 20, 256, LockSel::kTtas,
                               ElisionPolicy::hle_scm());
    sp.point.n_cores = 128;
    sp.point.smt_per_core = 2;
    sp.point.yield_slack_cycles = 200;
    sp.id += "-m128x2";
    v.push_back(sp);
  }
  return v;
}

}  // namespace

const std::vector<SuitePoint>& suite_points() {
  static const std::vector<SuitePoint> points = build_points();
  return points;
}

std::vector<SuitePoint> suite_points_for(SuiteTier tier) {
  std::vector<SuitePoint> out;
  for (const auto& p : suite_points()) {
    if (tier == SuiteTier::kFull || p.tier == SuiteTier::kSmoke) {
      out.push_back(p);
    }
  }
  return out;
}

PointMetrics PointMetrics::derive(const RunStats& stats) {
  PointMetrics m;
  m.throughput_ops_per_sec = stats.throughput();
  m.nonspec_fraction = stats.nonspec_fraction();
  m.spec_fraction =
      stats.ops > 0 ? static_cast<double>(stats.spec_ops) /
                          static_cast<double>(stats.ops)
                    : 0.0;
  m.attempts_per_op = stats.attempts_per_op();
  m.ops = stats.ops;
  m.attempts = stats.attempts;
  m.elapsed_cycles = stats.elapsed_cycles;
  m.tx_begins = stats.tx.begins;
  m.tx_commits = stats.tx.commits;
  m.tx_aborts = stats.tx.aborts;
  const auto n_causes = static_cast<std::size_t>(tsx::AbortCause::kCauseCount);
  m.aborts_by_cause.assign(n_causes, 0);
  for (std::size_t c = 0; c < n_causes; ++c) {
    m.aborts_by_cause[c] = stats.tx.aborts_by_cause[c];
  }
  m.avalanche_episodes = stats.episodes.size();
  for (const auto& ep : stats.episodes) {
    m.avalanche_victims += static_cast<std::uint64_t>(ep.victim_count());
  }
  for (const auto& ol : stats.op_latency) {
    m.latency.push_back({ol.op, ol.hist.samples(), ol.hist.quantile(0.50),
                         ol.hist.quantile(0.99), ol.hist.quantile(0.999),
                         ol.hist.max()});
  }
  m.fp_owned_hits = stats.tx.fp_owned_hits;
  m.fp_probe_skips = stats.tx.fp_probe_skips;
  m.fp_bound_recomputes = stats.fp_bound_recomputes;
  return m;
}

const PointRecord* SuiteResult::find(const std::string& id) const {
  for (const auto& p : points) {
    if (p.def.id == id) return &p;
  }
  return nullptr;
}

namespace {

// Dispatches to the point's workload and fills the host-speed metrics.
PointMetrics run_point_metrics(const SuitePoint& sp) {
  const auto t0 = std::chrono::steady_clock::now();
  RunStats stats;
  if (sp.kind == PointKind::kMicro) {
    MicroPoint mp;
    mp.threads = sp.point.threads;
    mp.array_words = sp.point.size;
    mp.seed = sp.point.seed;
    if (sp.point.micro_ops != 0) mp.ops_per_thread = sp.point.micro_ops;
    if (sp.point.micro_shared_period != 0) {
      mp.shared_period = sp.point.micro_shared_period;
    }
    mp.n_cores = sp.point.n_cores;
    mp.smt_per_core = sp.point.smt_per_core;
    mp.yield_slack_cycles = sp.point.yield_slack_cycles;
    stats = run_micro_point(mp);
  } else if (sp.kind == PointKind::kBtree) {
    stats = run_bt_point(sp.bt);
  } else if (sp.kind == PointKind::kPhase) {
    stats = run_phase_point(sp.phase);
  } else if (sp.kind == PointKind::kKv) {
    stats = service::run_kv_point(sp.kv);
  } else {
    stats = run_rb_point(sp.point);
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  PointMetrics m = PointMetrics::derive(stats);
  if (sp.kind == PointKind::kPhase) {
    const auto per_phase = phase_ops_of(stats);
    m.phase_ops.assign(per_phase.begin(), per_phase.end());
  }
  m.wall_ms = wall_ms;
  m.sim_ops_per_sec =
      wall_ms > 0 ? static_cast<double>(m.ops) / (wall_ms / 1e3) : 0.0;
  return m;
}

}  // namespace

SuiteResult run_suite(SuiteTier tier, const SuiteRunOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  SuiteResult result;
  result.tier = tier;
  result.duration_scale = env_duration_scale();
  result.telemetry_compiled = tsx::kTelemetryCompiled;
  const sim::MachineConfig machine;  // every point runs the paper's machine
  result.n_cores = machine.n_cores;
  result.smt_per_core = machine.smt_per_core;
  result.ghz = machine.ghz;
  result.host_cores = std::thread::hardware_concurrency();
  result.jobs = 1;
  result.host_threads = opts.host_threads > 0 ? opts.host_threads : 1;
  for (auto sp : suite_points_for(tier)) {
    sp.point.host_threads = result.host_threads;
    sp.bt.host_threads = result.host_threads;
    sp.phase.host_threads = result.host_threads;
    sp.kv.host_threads = result.host_threads;
    PointMetrics m = run_point_metrics(sp);
    m.throughput_ops_per_sec *= opts.plant_throughput_factor;
    m.sim_ops_per_sec *= opts.plant_simops_factor;
    if (opts.on_point) opts.on_point(sp, m);
    result.points.push_back({sp, m});
  }
  result.total_wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  return result;
}

PointRecord run_suite_point(const SuitePoint& sp, int host_threads) {
  SuitePoint p = sp;
  p.point.host_threads = host_threads > 0 ? host_threads : 1;
  p.bt.host_threads = p.point.host_threads;
  p.phase.host_threads = p.point.host_threads;
  p.kv.host_threads = p.point.host_threads;
  PointRecord rec{sp, run_point_metrics(p)};
  return rec;
}

// ---- canonical JSON results ----

namespace {

void write_point_json(const PointRecord& r, std::FILE* out) {
  const auto& d = r.def;
  const auto& m = r.metrics;
  if (d.kind == PointKind::kBtree) {
    std::fprintf(
        out,
        "    {\"id\":\"%s\",\"tier\":\"%s\",\"figure\":\"%s\","
        "\"kind\":\"%s\",\"lock\":\"%s\",\"scheme\":\"%s\",\"size\":%zu,"
        "\"update_pct\":%d,\"scan_pct\":%d,\"scan_len\":%zu,\"threads\":%d,"
        "\"seeds\":%d,\"duration_sec\":%g,\"seed\":%llu,\"telemetry\":%s,\n",
        support::json::escape(d.id).c_str(), suite_tier_name(d.tier),
        support::json::escape(d.figure).c_str(), point_kind_name(d.kind),
        shared_lock_sel_name(d.bt.lock),
        support::json::escape(d.bt.policy.spec()).c_str(), d.bt.size,
        d.bt.update_pct, d.bt.scan_pct, d.bt.scan_len, d.bt.threads,
        d.bt.seeds, d.bt.duration_sec,
        static_cast<unsigned long long>(d.bt.seed),
        d.bt.telemetry ? "true" : "false");
  } else if (d.kind == PointKind::kPhase) {
    std::fprintf(
        out,
        "    {\"id\":\"%s\",\"tier\":\"%s\",\"figure\":\"%s\","
        "\"kind\":\"%s\",\"lock\":\"%s\",\"scheme\":\"%s\",\"size\":%zu,"
        "\"calm_update_pct\":%d,\"storm_update_pct\":%d,\"threads\":%d,"
        "\"seeds\":%d,\"phase_sec\":%g,\"seed\":%llu,\"telemetry\":%s,\n",
        support::json::escape(d.id).c_str(), suite_tier_name(d.tier),
        support::json::escape(d.figure).c_str(), point_kind_name(d.kind),
        lock_sel_name(d.phase.lock),
        support::json::escape(d.phase.scheme.spec()).c_str(), d.phase.size,
        d.phase.calm_update_pct, d.phase.storm_update_pct, d.phase.threads,
        d.phase.seeds, d.phase.phase_sec,
        static_cast<unsigned long long>(d.phase.seed),
        d.phase.telemetry ? "true" : "false");
  } else if (d.kind == PointKind::kKv) {
    std::fprintf(
        out,
        "    {\"id\":\"%s\",\"tier\":\"%s\",\"figure\":\"%s\","
        "\"kind\":\"%s\",\"scheme\":\"%s\",\"shards\":%d,\"keys\":%zu,"
        "\"clients\":%d,\"client_rate_hz\":%g,\"zipf_theta\":%g,"
        "\"put_pct\":%d,\"multi_put_pct\":%d,\"transfer_pct\":%d,"
        "\"multi_put_keys\":%d,\"threads\":%d,\"seeds\":%d,"
        "\"duration_sec\":%g,\"seed\":%llu,\"telemetry\":%s,\n",
        support::json::escape(d.id).c_str(), suite_tier_name(d.tier),
        support::json::escape(d.figure).c_str(), point_kind_name(d.kind),
        support::json::escape(d.kv.policy.spec()).c_str(), d.kv.shards,
        d.kv.keys, d.kv.clients, d.kv.client_rate_hz, d.kv.zipf_theta,
        d.kv.put_pct, d.kv.multi_put_pct, d.kv.transfer_pct,
        d.kv.multi_put_keys, d.kv.threads, d.kv.seeds, d.kv.duration_sec,
        static_cast<unsigned long long>(d.kv.seed),
        d.kv.telemetry ? "true" : "false");
  } else {
    std::fprintf(
        out,
        "    {\"id\":\"%s\",\"tier\":\"%s\",\"figure\":\"%s\","
        "\"kind\":\"%s\",\"lock\":\"%s\",\"scheme\":\"%s\",\"size\":%zu,"
        "\"update_pct\":%d,\"threads\":%d,\"seeds\":%d,\"duration_sec\":%g,"
        "\"seed\":%llu,\"telemetry\":%s,\n",
        support::json::escape(d.id).c_str(), suite_tier_name(d.tier),
        support::json::escape(d.figure).c_str(), point_kind_name(d.kind),
        lock_sel_name(d.point.lock),
        support::json::escape(d.point.scheme.spec()).c_str(), d.point.size,
        d.point.update_pct, d.point.threads, d.point.seeds,
        d.point.duration_sec,
        static_cast<unsigned long long>(d.point.seed),
        d.point.telemetry ? "true" : "false");
    // Machine-shape / micro-shape overrides of the big-machine points,
    // emitted only when set: pre-existing baseline lines must stay
    // byte-identical across this addition.
    if (d.point.n_cores != 0 || d.point.smt_per_core != 0 ||
        d.point.yield_slack_cycles != 0 || d.point.micro_ops != 0 ||
        d.point.micro_shared_period != 0) {
      std::fprintf(out, "     ");
      if (d.point.n_cores != 0) {
        std::fprintf(out, "\"n_cores\":%u,", d.point.n_cores);
      }
      if (d.point.smt_per_core != 0) {
        std::fprintf(out, "\"smt_per_core\":%u,", d.point.smt_per_core);
      }
      if (d.point.yield_slack_cycles != 0) {
        std::fprintf(out, "\"yield_slack_cycles\":%llu,",
                     static_cast<unsigned long long>(d.point.yield_slack_cycles));
      }
      if (d.point.micro_ops != 0) {
        std::fprintf(out, "\"micro_ops\":%llu,",
                     static_cast<unsigned long long>(d.point.micro_ops));
      }
      if (d.point.micro_shared_period != 0) {
        std::fprintf(out, "\"micro_shared_period\":%llu,",
                     static_cast<unsigned long long>(d.point.micro_shared_period));
      }
      std::fprintf(out, "\n");
    }
  }
  std::fprintf(
      out,
      "     \"metrics\":{\"throughput_ops_per_sec\":%.3f,"
      "\"spec_fraction\":%.6f,\"nonspec_fraction\":%.6f,"
      "\"attempts_per_op\":%.6f,\"ops\":%llu,\"attempts\":%llu,"
      "\"elapsed_cycles\":%llu,\"tx\":{\"begins\":%llu,\"commits\":%llu,"
      "\"aborts\":%llu},",
      m.throughput_ops_per_sec, m.spec_fraction, m.nonspec_fraction,
      m.attempts_per_op, static_cast<unsigned long long>(m.ops),
      static_cast<unsigned long long>(m.attempts),
      static_cast<unsigned long long>(m.elapsed_cycles),
      static_cast<unsigned long long>(m.tx_begins),
      static_cast<unsigned long long>(m.tx_commits),
      static_cast<unsigned long long>(m.tx_aborts));
  std::fprintf(out, "\"aborts_by_cause\":{");
  for (std::size_t c = 0; c < m.aborts_by_cause.size(); ++c) {
    std::fprintf(out, "%s\"%s\":%llu", c == 0 ? "" : ",",
                 tsx::to_string(static_cast<tsx::AbortCause>(c)),
                 static_cast<unsigned long long>(m.aborts_by_cause[c]));
  }
  std::fprintf(out,
               "},\"avalanche_episodes\":%llu,\"avalanche_victims\":%llu,",
               static_cast<unsigned long long>(m.avalanche_episodes),
               static_cast<unsigned long long>(m.avalanche_victims));
  if (!m.phase_ops.empty()) {
    std::fprintf(out, "\"phase_ops\":[");
    for (std::size_t p = 0; p < m.phase_ops.size(); ++p) {
      std::fprintf(out, "%s%llu", p == 0 ? "" : ",",
                   static_cast<unsigned long long>(m.phase_ops[p]));
    }
    std::fprintf(out, "],");
  }
  if (!m.latency.empty()) {
    std::fprintf(out, "\"latency\":{");
    for (std::size_t l = 0; l < m.latency.size(); ++l) {
      const auto& ol = m.latency[l];
      std::fprintf(out,
                   "%s\"%s\":{\"samples\":%llu,\"p50_cycles\":%llu,"
                   "\"p99_cycles\":%llu,\"p999_cycles\":%llu,"
                   "\"max_cycles\":%llu}",
                   l == 0 ? "" : ",", support::json::escape(ol.op).c_str(),
                   static_cast<unsigned long long>(ol.samples),
                   static_cast<unsigned long long>(ol.p50_cycles),
                   static_cast<unsigned long long>(ol.p99_cycles),
                   static_cast<unsigned long long>(ol.p999_cycles),
                   static_cast<unsigned long long>(ol.max_cycles));
    }
    std::fprintf(out, "},");
  }
  if (m.fp_owned_hits != 0 || m.fp_probe_skips != 0 ||
      m.fp_bound_recomputes != 0) {
    // Optional: points run with the fast path disabled (ELISION_FASTPATH=0)
    // produce all-zero counters and stay byte-identical to the pre-fastpath
    // schema.
    std::fprintf(out,
                 "\"fastpath\":{\"owned_hits\":%llu,\"probe_skips\":%llu,"
                 "\"bound_recomputes\":%llu},",
                 static_cast<unsigned long long>(m.fp_owned_hits),
                 static_cast<unsigned long long>(m.fp_probe_skips),
                 static_cast<unsigned long long>(m.fp_bound_recomputes));
  }
  std::fprintf(out, "\"sim_ops_per_sec\":%.3f,\"wall_ms\":%.3f}}",
               m.sim_ops_per_sec, m.wall_ms);
}

}  // namespace

void write_results_json(const SuiteResult& result, std::FILE* out) {
  std::fprintf(out,
               "{\n  \"schema_version\":%d,\n  \"suite\":\"elision-bench\",\n"
               "  \"tier\":\"%s\",\n  \"run\":{\"duration_scale\":%g,"
               "\"telemetry_compiled\":%s,"
               "\"machine\":{\"n_cores\":%u,\"smt_per_core\":%u,"
               "\"ghz\":%g},"
               "\"host\":{\"cores\":%u,\"jobs\":%d,"
               "\"jobs_mode\":\"%s\",\"host_threads\":%d,"
               "\"total_wall_ms\":%.3f}},\n  \"points\":[\n",
               kSuiteSchemaVersion, suite_tier_name(result.tier),
               result.duration_scale,
               result.telemetry_compiled ? "true" : "false", result.n_cores,
               result.smt_per_core, result.ghz, result.host_cores,
               result.jobs,
               support::json::escape(result.jobs_mode).c_str(),
               result.host_threads, result.total_wall_ms);
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    write_point_json(result.points[i], out);
    std::fprintf(out, "%s\n", i + 1 < result.points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

namespace {

LockSel lock_from_name(const std::string& name) {
  for (const LockSel l : {LockSel::kTtas, LockSel::kMcs, LockSel::kTicketAdj,
                          LockSel::kClhAdj, LockSel::kTicket, LockSel::kClh}) {
    if (name == lock_sel_name(l)) return l;
  }
  return LockSel::kTtas;
}

}  // namespace

std::optional<SuiteResult> parse_results_json(
    const support::json::Value& doc) {
  using support::json::Value;
  if (!doc.is_object()) return std::nullopt;
  const Value* version = doc.find("schema_version");
  if (version == nullptr ||
      static_cast<int>(version->as_double()) != kSuiteSchemaVersion) {
    return std::nullopt;
  }
  SuiteResult out;
  if (const Value* tier = doc.find("tier")) {
    const auto t = suite_tier_from_name(tier->as_string());
    if (!t) return std::nullopt;
    out.tier = *t;
  }
  if (const Value* run = doc.find("run")) {
    out.duration_scale = run->find("duration_scale") != nullptr
                             ? run->find("duration_scale")->as_double(1.0)
                             : 1.0;
    if (const Value* tc = run->find("telemetry_compiled")) {
      out.telemetry_compiled = tc->as_bool();
    }
    if (const Value* machine = run->find("machine")) {
      if (const Value* v = machine->find("n_cores")) {
        out.n_cores = static_cast<unsigned>(v->as_u64());
      }
      if (const Value* v = machine->find("smt_per_core")) {
        out.smt_per_core = static_cast<unsigned>(v->as_u64());
      }
      if (const Value* v = machine->find("ghz")) out.ghz = v->as_double();
    }
    if (const Value* host = run->find("host")) {
      if (const Value* v = host->find("cores")) {
        out.host_cores = static_cast<unsigned>(v->as_u64());
      }
      if (const Value* v = host->find("jobs")) {
        out.jobs = static_cast<int>(v->as_u64());
      }
      if (const Value* v = host->find("jobs_mode")) {
        out.jobs_mode = v->as_string();
      }
      if (const Value* v = host->find("host_threads")) {
        out.host_threads = static_cast<int>(v->as_u64());
      }
      if (const Value* v = host->find("total_wall_ms")) {
        out.total_wall_ms = v->as_double();
      }
    }
  }
  const Value* points = doc.find("points");
  if (points == nullptr || !points->is_array()) return std::nullopt;
  for (const Value& p : points->items()) {
    if (!p.is_object()) return std::nullopt;
    const Value* id = p.find("id");
    const Value* metrics = p.find("metrics");
    if (id == nullptr || metrics == nullptr || !metrics->is_object()) {
      return std::nullopt;
    }
    PointRecord rec;
    rec.def.id = id->as_string();
    if (const Value* tier = p.find("tier")) {
      if (const auto t = suite_tier_from_name(tier->as_string())) {
        rec.def.tier = *t;
      }
    }
    if (const Value* fig = p.find("figure")) rec.def.figure = fig->as_string();
    if (const Value* v = p.find("kind")) {
      rec.def.kind = v->as_string() == "micro"   ? PointKind::kMicro
                     : v->as_string() == "btree" ? PointKind::kBtree
                     : v->as_string() == "phase" ? PointKind::kPhase
                     : v->as_string() == "kv"    ? PointKind::kKv
                                                 : PointKind::kRb;
    }
    if (rec.def.kind == PointKind::kPhase) {
      if (const Value* v = p.find("lock")) {
        rec.def.phase.lock = lock_from_name(v->as_string());
      }
      if (const Value* v = p.find("scheme")) {
        if (const auto pol = locks::ElisionPolicy::parse(v->as_string())) {
          rec.def.phase.scheme = *pol;
        }
      }
      if (const Value* v = p.find("size")) {
        rec.def.phase.size = static_cast<std::size_t>(v->as_u64());
      }
      if (const Value* v = p.find("calm_update_pct")) {
        rec.def.phase.calm_update_pct = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("storm_update_pct")) {
        rec.def.phase.storm_update_pct = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("threads")) {
        rec.def.phase.threads = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("seeds")) {
        rec.def.phase.seeds = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("phase_sec")) {
        rec.def.phase.phase_sec = v->as_double();
      }
      if (const Value* v = p.find("telemetry")) {
        rec.def.phase.telemetry = v->as_bool();
      }
    } else if (rec.def.kind == PointKind::kBtree) {
      if (const Value* v = p.find("lock")) {
        rec.def.bt.lock = v->as_string() == "shared-mcs"
                              ? SharedLockSel::kSharedMcs
                              : SharedLockSel::kSharedTtas;
      }
      if (const Value* v = p.find("scheme")) {
        if (const auto pol = locks::ElisionPolicy::parse(v->as_string())) {
          rec.def.bt.policy = *pol;
        }
      }
      if (const Value* v = p.find("size")) {
        rec.def.bt.size = static_cast<std::size_t>(v->as_u64());
      }
      if (const Value* v = p.find("update_pct")) {
        rec.def.bt.update_pct = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("scan_pct")) {
        rec.def.bt.scan_pct = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("scan_len")) {
        rec.def.bt.scan_len = static_cast<std::size_t>(v->as_u64());
      }
      if (const Value* v = p.find("threads")) {
        rec.def.bt.threads = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("seeds")) {
        rec.def.bt.seeds = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("telemetry")) {
        rec.def.bt.telemetry = v->as_bool();
      }
    } else if (rec.def.kind == PointKind::kKv) {
      if (const Value* v = p.find("scheme")) {
        if (const auto pol = locks::ElisionPolicy::parse(v->as_string())) {
          rec.def.kv.policy = *pol;
        }
      }
      if (const Value* v = p.find("shards")) {
        rec.def.kv.shards = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("keys")) {
        rec.def.kv.keys = static_cast<std::size_t>(v->as_u64());
      }
      if (const Value* v = p.find("clients")) {
        rec.def.kv.clients = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("client_rate_hz")) {
        rec.def.kv.client_rate_hz = v->as_double();
      }
      if (const Value* v = p.find("zipf_theta")) {
        rec.def.kv.zipf_theta = v->as_double();
      }
      if (const Value* v = p.find("put_pct")) {
        rec.def.kv.put_pct = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("multi_put_pct")) {
        rec.def.kv.multi_put_pct = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("transfer_pct")) {
        rec.def.kv.transfer_pct = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("multi_put_keys")) {
        rec.def.kv.multi_put_keys = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("threads")) {
        rec.def.kv.threads = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("seeds")) {
        rec.def.kv.seeds = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("duration_sec")) {
        rec.def.kv.duration_sec = v->as_double();
      }
      if (const Value* v = p.find("telemetry")) {
        rec.def.kv.telemetry = v->as_bool();
      }
    } else {
      if (const Value* v = p.find("lock")) {
        rec.def.point.lock = lock_from_name(v->as_string());
      }
      if (const Value* v = p.find("size")) {
        rec.def.point.size = static_cast<std::size_t>(v->as_u64());
      }
      if (const Value* v = p.find("update_pct")) {
        rec.def.point.update_pct = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("threads")) {
        rec.def.point.threads = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("seeds")) {
        rec.def.point.seeds = static_cast<int>(v->as_u64());
      }
      if (const Value* v = p.find("telemetry")) {
        rec.def.point.telemetry = v->as_bool();
      }
      if (const Value* v = p.find("n_cores")) {
        rec.def.point.n_cores = static_cast<unsigned>(v->as_u64());
      }
      if (const Value* v = p.find("smt_per_core")) {
        rec.def.point.smt_per_core = static_cast<unsigned>(v->as_u64());
      }
      if (const Value* v = p.find("yield_slack_cycles")) {
        rec.def.point.yield_slack_cycles = v->as_u64();
      }
      if (const Value* v = p.find("micro_ops")) {
        rec.def.point.micro_ops = v->as_u64();
      }
      if (const Value* v = p.find("micro_shared_period")) {
        rec.def.point.micro_shared_period = v->as_u64();
      }
    }
    auto& m = rec.metrics;
    auto num = [&](const char* key, double fallback = 0.0) {
      const Value* v = metrics->find(key);
      return v != nullptr ? v->as_double(fallback) : fallback;
    };
    m.throughput_ops_per_sec = num("throughput_ops_per_sec");
    m.spec_fraction = num("spec_fraction");
    m.nonspec_fraction = num("nonspec_fraction");
    m.attempts_per_op = num("attempts_per_op");
    m.ops = static_cast<std::uint64_t>(num("ops"));
    m.attempts = static_cast<std::uint64_t>(num("attempts"));
    m.elapsed_cycles = static_cast<std::uint64_t>(num("elapsed_cycles"));
    if (const Value* tx = metrics->find("tx")) {
      if (const Value* v = tx->find("begins")) m.tx_begins = v->as_u64();
      if (const Value* v = tx->find("commits")) m.tx_commits = v->as_u64();
      if (const Value* v = tx->find("aborts")) m.tx_aborts = v->as_u64();
    }
    const auto n_causes =
        static_cast<std::size_t>(tsx::AbortCause::kCauseCount);
    m.aborts_by_cause.assign(n_causes, 0);
    if (const Value* causes = metrics->find("aborts_by_cause")) {
      for (std::size_t c = 0; c < n_causes; ++c) {
        const Value* v =
            causes->find(tsx::to_string(static_cast<tsx::AbortCause>(c)));
        if (v != nullptr) m.aborts_by_cause[c] = v->as_u64();
      }
    }
    if (const Value* v = metrics->find("avalanche_episodes")) {
      m.avalanche_episodes = v->as_u64();
    }
    if (const Value* v = metrics->find("avalanche_victims")) {
      m.avalanche_victims = v->as_u64();
    }
    if (const Value* v = metrics->find("phase_ops")) {
      for (const Value& item : v->items()) {
        m.phase_ops.push_back(item.as_u64());
      }
    }
    if (const Value* lat = metrics->find("latency")) {
      for (const auto& mem : lat->members()) {
        PointMetrics::OpLatencySummary s;
        s.op = mem.key;
        if (const Value* v = mem.value.find("samples")) {
          s.samples = v->as_u64();
        }
        if (const Value* v = mem.value.find("p50_cycles")) {
          s.p50_cycles = v->as_u64();
        }
        if (const Value* v = mem.value.find("p99_cycles")) {
          s.p99_cycles = v->as_u64();
        }
        if (const Value* v = mem.value.find("p999_cycles")) {
          s.p999_cycles = v->as_u64();
        }
        if (const Value* v = mem.value.find("max_cycles")) {
          s.max_cycles = v->as_u64();
        }
        m.latency.push_back(std::move(s));
      }
    }
    if (const Value* fp = metrics->find("fastpath")) {
      if (const Value* v = fp->find("owned_hits")) m.fp_owned_hits = v->as_u64();
      if (const Value* v = fp->find("probe_skips")) {
        m.fp_probe_skips = v->as_u64();
      }
      if (const Value* v = fp->find("bound_recomputes")) {
        m.fp_bound_recomputes = v->as_u64();
      }
    }
    m.sim_ops_per_sec = num("sim_ops_per_sec");
    m.wall_ms = num("wall_ms");
    out.points.push_back(std::move(rec));
  }
  return out;
}

std::optional<SuiteResult> load_results_file(const std::string& path) {
  const auto doc = support::json::parse_file(path.c_str());
  if (!doc) return std::nullopt;
  return parse_results_json(*doc);
}

// ---- regression gate ----

GateReport compare_to_baseline(const SuiteResult& current,
                               const SuiteResult& baseline,
                               const GateTolerance& tol) {
  GateReport report;
  if (current.duration_scale != baseline.duration_scale) {
    report.notes.push_back(
        "duration_scale differs from baseline (" +
        std::to_string(current.duration_scale) + " vs " +
        std::to_string(baseline.duration_scale) +
        "); ratio metrics are compared anyway");
  }
  if (current.ghz != baseline.ghz || current.n_cores != baseline.n_cores ||
      current.smt_per_core != baseline.smt_per_core) {
    report.notes.push_back(
        "machine config differs from baseline; numbers may not be "
        "comparable");
  }

  for (const auto& cur : current.points) {
    const PointRecord* base = baseline.find(cur.def.id);
    if (base == nullptr) {
      report.notes.push_back("point " + cur.def.id +
                             " is not in the baseline (new point; refresh "
                             "the baseline to gate it)");
      continue;
    }
    const auto& bm = base->metrics;
    const auto& cm = cur.metrics;

    if (bm.throughput_ops_per_sec > 0) {
      const double floor = bm.throughput_ops_per_sec * (1 - tol.throughput_rel);
      const double ceil = bm.throughput_ops_per_sec * (1 + tol.throughput_rel);
      if (cm.throughput_ops_per_sec < floor) {
        report.regressions.push_back(
            {cur.def.id, "throughput_ops_per_sec", bm.throughput_ops_per_sec,
             cm.throughput_ops_per_sec,
             "throughput dropped more than " +
                 std::to_string(static_cast<int>(tol.throughput_rel * 100)) +
                 "%"});
      } else if (cm.throughput_ops_per_sec > ceil) {
        report.improvements.push_back(
            {cur.def.id, "throughput_ops_per_sec", bm.throughput_ops_per_sec,
             cm.throughput_ops_per_sec,
             "throughput improved beyond tolerance; refresh the baseline"});
      }
    }

    if (bm.attempts_per_op > 0) {
      const double ceil = bm.attempts_per_op * (1 + tol.attempts_rel);
      const double floor = bm.attempts_per_op * (1 - tol.attempts_rel);
      if (cm.attempts_per_op > ceil) {
        report.regressions.push_back(
            {cur.def.id, "attempts_per_op", bm.attempts_per_op,
             cm.attempts_per_op, "more attempts needed per completed region"});
      } else if (cm.attempts_per_op < floor) {
        report.improvements.push_back(
            {cur.def.id, "attempts_per_op", bm.attempts_per_op,
             cm.attempts_per_op,
             "attempts/op improved beyond tolerance; refresh the baseline"});
      }
    }

    // Host simulator speed. Only meaningful when both sides report it (old
    // baselines carry 0) and the tolerance is enabled; wall_ms itself is
    // never gated, only the ratio metric.
    if (bm.sim_ops_per_sec > 0 && cm.sim_ops_per_sec > 0 &&
        tol.simops_rel < 1.0) {
      const double floor = bm.sim_ops_per_sec * (1 - tol.simops_rel);
      if (cm.sim_ops_per_sec < floor) {
        report.regressions.push_back(
            {cur.def.id, "sim_ops_per_sec", bm.sim_ops_per_sec,
             cm.sim_ops_per_sec,
             "simulator executes this point more than " +
                 std::to_string(static_cast<int>(tol.simops_rel * 100)) +
                 "% slower than the baseline host run"});
      }
    }

    if (cm.nonspec_fraction > bm.nonspec_fraction + tol.fraction_abs) {
      report.regressions.push_back(
          {cur.def.id, "nonspec_fraction", bm.nonspec_fraction,
           cm.nonspec_fraction,
           "more operations fell back to non-speculative execution"});
    } else if (cm.nonspec_fraction + tol.fraction_abs < bm.nonspec_fraction) {
      report.improvements.push_back(
          {cur.def.id, "nonspec_fraction", bm.nonspec_fraction,
           cm.nonspec_fraction,
           "nonspec fraction improved beyond tolerance; refresh the "
           "baseline"});
    }

    const bool cur_telemetry = cur.def.kind == PointKind::kBtree
                                   ? cur.def.bt.telemetry
                               : cur.def.kind == PointKind::kPhase
                                   ? cur.def.phase.telemetry
                               : cur.def.kind == PointKind::kKv
                                   ? cur.def.kv.telemetry
                                   : cur.def.point.telemetry;
    if (current.telemetry_compiled && baseline.telemetry_compiled &&
        cur_telemetry &&
        cm.avalanche_episodes != bm.avalanche_episodes) {
      report.notes.push_back(
          "point " + cur.def.id + ": avalanche episodes changed (" +
          std::to_string(bm.avalanche_episodes) + " -> " +
          std::to_string(cm.avalanche_episodes) + ")");
    }
  }

  // Coverage loss: a baseline point of this tier that no longer runs.
  for (const auto& base : baseline.points) {
    if (current.tier == SuiteTier::kSmoke &&
        base.def.tier != SuiteTier::kSmoke) {
      continue;  // baseline may be full-tier; smoke runs only its subset
    }
    if (current.find(base.def.id) == nullptr) {
      report.regressions.push_back(
          {base.def.id, "coverage", 0.0, 0.0,
           "baseline point missing from this run (coverage loss)"});
    }
  }
  return report;
}

void print_gate_report(const GateReport& report, std::FILE* out) {
  for (const auto& note : report.notes) {
    std::fprintf(out, "note: %s\n", note.c_str());
  }
  for (const auto& imp : report.improvements) {
    std::fprintf(out, "improvement: %s %s: %.4g -> %.4g (%s)\n",
                 imp.point_id.c_str(), imp.metric.c_str(), imp.baseline,
                 imp.current, imp.detail.c_str());
  }
  for (const auto& reg : report.regressions) {
    std::fprintf(out, "REGRESSION: %s %s: %.4g -> %.4g (%s)\n",
                 reg.point_id.c_str(), reg.metric.c_str(), reg.baseline,
                 reg.current, reg.detail.c_str());
  }
  std::fprintf(out, "gate: %zu regression(s), %zu improvement(s), %zu "
                    "note(s)\n",
               report.regressions.size(), report.improvements.size(),
               report.notes.size());
}

// ---- paper-qualitative invariants ----

namespace {

InvariantResult skipped(const char* name, const char* why) {
  return {name, /*ok=*/true, /*skipped=*/true, why};
}

}  // namespace

std::vector<InvariantResult> check_invariants(const SuiteResult& result) {
  std::vector<InvariantResult> out;
  auto point = [&](const char* id) { return result.find(id); };
  char buf[256];

  // (1) SCM >= plain HLE throughput on the contended MCS point: software
  // conflict management eliminates the avalanche (Fig 5.2 headline claim).
  {
    const char* name = "scm-beats-hle-on-contended-mcs";
    const auto* hle = point("rb-s64-u20-t8-mcs-hle");
    const auto* scm = point("rb-s64-u20-t8-mcs-hle-scm");
    if (hle == nullptr || scm == nullptr) {
      out.push_back(skipped(name, "required points not in this tier"));
    } else {
      const bool ok = scm->metrics.throughput_ops_per_sec >=
                      hle->metrics.throughput_ops_per_sec;
      std::snprintf(buf, sizeof buf, "HLE-SCM %.3g ops/s vs HLE %.3g ops/s",
                    scm->metrics.throughput_ops_per_sec,
                    hle->metrics.throughput_ops_per_sec);
      out.push_back({name, ok, false, buf});
    }
  }

  // (2) Same on the contended TTAS point (gains appear under contention).
  {
    const char* name = "scm-beats-hle-on-contended-ttas";
    const auto* hle = point("rb-s64-u20-t8-ttas-hle");
    const auto* scm = point("rb-s64-u20-t8-ttas-hle-scm");
    if (hle == nullptr || scm == nullptr) {
      out.push_back(skipped(name, "required points not in this tier"));
    } else {
      const bool ok = scm->metrics.throughput_ops_per_sec >=
                      hle->metrics.throughput_ops_per_sec;
      std::snprintf(buf, sizeof buf, "HLE-SCM %.3g ops/s vs HLE %.3g ops/s",
                    scm->metrics.throughput_ops_per_sec,
                    hle->metrics.throughput_ops_per_sec);
      out.push_back({name, ok, false, buf});
    }
  }

  // (3) Adjusted ticket/CLH locks commit speculatively when solo (Ch. 6:
  // the release-store adjustment restores XRELEASE elision).
  for (const auto& [id, name] :
       {std::pair{"rb-s64-u20-t1-ticket-adj-hle",
                  "adjusted-ticket-elides-solo"},
        std::pair{"rb-s64-u20-t1-clh-adj-hle", "adjusted-clh-elides-solo"}}) {
    const auto* p = point(id);
    if (p == nullptr) {
      out.push_back(skipped(name, "required point not in this tier"));
    } else {
      const bool ok = p->metrics.spec_fraction >= 0.9;
      std::snprintf(buf, sizeof buf, "spec fraction %.4f (want >= 0.9)",
                    p->metrics.spec_fraction);
      out.push_back({name, ok, false, buf});
    }
  }

  // (4) The unadjusted ticket lock never elides: its release store does not
  // restore the lock word, so every speculative attempt aborts.
  {
    const char* name = "unadjusted-ticket-serializes";
    const auto* p = point("rb-s64-u20-t1-ticket-hle");
    if (p == nullptr) {
      out.push_back(skipped(name, "required point not in this tier"));
    } else {
      const bool ok = p->metrics.nonspec_fraction >= 0.99;
      std::snprintf(buf, sizeof buf, "nonspec fraction %.4f (want >= 0.99)",
                    p->metrics.nonspec_fraction);
      out.push_back({name, ok, false, buf});
    }
  }

  // (5) The standard scheme never speculates.
  {
    const char* name = "standard-is-nonspeculative";
    const auto* p = point("rb-s64-u20-t8-ttas-standard");
    if (p == nullptr) {
      out.push_back(skipped(name, "required point not in this tier"));
    } else {
      const bool ok = p->metrics.spec_fraction == 0.0;
      std::snprintf(buf, sizeof buf, "spec fraction %.4f (want 0)",
                    p->metrics.spec_fraction);
      out.push_back({name, ok, false, buf});
    }
  }

  // (6) HLE over MCS on a contended small tree exhibits the avalanche
  // (Fig 3.3); requires telemetry.
  {
    const char* name = "hle-mcs-avalanche-detected";
    const auto* p = point("rb-s64-u20-t8-mcs-hle");
    if (p == nullptr) {
      out.push_back(skipped(name, "required point not in this tier"));
    } else if (!result.telemetry_compiled) {
      out.push_back(skipped(name, "telemetry compiled out"));
    } else {
      const bool ok = p->metrics.avalanche_episodes >= 1;
      std::snprintf(buf, sizeof buf, "%llu avalanche episodes (want >= 1)",
                    static_cast<unsigned long long>(
                        p->metrics.avalanche_episodes));
      out.push_back({name, ok, false, buf});
    }
  }

  // (7) Shared-mode elision pays off on the read-mostly B+tree point: with
  // 90% lookups/scans, the `+shared` policy (fallback readers coexist with
  // each other and with the elided crowd) must beat the exclusive-elided
  // equivalent, whose fallback reads serialize through the writer word.
  {
    const char* name = "shared-elision-beats-exclusive-read-mostly";
    const auto* excl = point("bt-s1024-u10-c100-l64-t8-shared-ttas-hle");
    const auto* shrd =
        point("bt-s1024-u10-c100-l64-t8-shared-ttas-hle+shared");
    if (excl == nullptr || shrd == nullptr) {
      out.push_back(skipped(name, "required points not in this tier"));
    } else {
      const bool ok = shrd->metrics.throughput_ops_per_sec >
                      excl->metrics.throughput_ops_per_sec;
      std::snprintf(buf, sizeof buf,
                    "hle+shared %.3g ops/s vs hle %.3g ops/s",
                    shrd->metrics.throughput_ops_per_sec,
                    excl->metrics.throughput_ops_per_sec);
      out.push_back({name, ok, false, buf});
    }
  }

  // (8) The writer-heavy B+tree point exhibits the reader avalanche: real
  // writer acquisitions of the reader-writer word abort the subscribed
  // elided-reader crowd, visible as telemetry episodes.
  {
    const char* name = "shared-btree-reader-avalanche-detected";
    const auto* p = point("bt-s128-u80-c30-l16-t8-shared-ttas-hle+shared");
    if (p == nullptr) {
      out.push_back(skipped(name, "required point not in this tier"));
    } else if (!result.telemetry_compiled) {
      out.push_back(skipped(name, "telemetry compiled out"));
    } else {
      const bool ok = p->metrics.avalanche_episodes >= 1;
      std::snprintf(buf, sizeof buf, "%llu avalanche episodes (want >= 1)",
                    static_cast<unsigned long long>(
                        p->metrics.avalanche_episodes));
      out.push_back({name, ok, false, buf});
    }
  }

  // (9)+(10) The adaptive-elision headline on the phase-shifting point
  // (docs/adaptive.md): per phase, adaptive must commit at least 90% of the
  // best static scheme's ops — while each static scheme must itself fall
  // below that bar in at least one phase (i.e. no static scheme dominates;
  // only the controller tracks the per-phase winner).
  {
    const char* adaptive_id = "ph-s12-u10-100-t16-ttas-adaptive";
    const char* static_ids[] = {
        "ph-s12-u10-100-t16-ttas-hle",
        "ph-s12-u10-100-t16-ttas-hle-scm",
        "ph-s12-u10-100-t16-ttas-hle-gscm",
        "ph-s12-u10-100-t16-ttas-standard",
    };
    const double bar = 0.9;
    const auto* ad = point(adaptive_id);
    bool have_all = ad != nullptr && ad->metrics.phase_ops.size() == 3;
    std::vector<const PointRecord*> statics;
    for (const char* id : static_ids) {
      const auto* p = point(id);
      if (p == nullptr || p->metrics.phase_ops.size() != 3) have_all = false;
      statics.push_back(p);
    }
    if (!have_all) {
      out.push_back(skipped("adaptive-tracks-phase-winner",
                            "phase points not in this tier"));
      out.push_back(skipped("every-static-scheme-loses-a-phase",
                            "phase points not in this tier"));
    } else {
      // Per-phase best among the static schemes.
      std::uint64_t best[3] = {0, 0, 0};
      for (const auto* p : statics) {
        for (int ph = 0; ph < 3; ++ph) {
          if (p->metrics.phase_ops[static_cast<std::size_t>(ph)] > best[ph]) {
            best[ph] = p->metrics.phase_ops[static_cast<std::size_t>(ph)];
          }
        }
      }
      {
        const char* name = "adaptive-tracks-phase-winner";
        bool ok = true;
        int worst_phase = 0;
        double worst_ratio = 1e9;
        for (int ph = 0; ph < 3; ++ph) {
          const double ratio =
              best[ph] > 0
                  ? static_cast<double>(
                        ad->metrics.phase_ops[static_cast<std::size_t>(ph)]) /
                        static_cast<double>(best[ph])
                  : 1.0;
          if (ratio < worst_ratio) {
            worst_ratio = ratio;
            worst_phase = ph;
          }
          if (ratio < bar) ok = false;
        }
        std::snprintf(buf, sizeof buf,
                      "worst phase %d: adaptive at %.2fx the best static "
                      "scheme (want >= %.2fx in every phase)",
                      worst_phase, worst_ratio, bar);
        out.push_back({name, ok, false, buf});
      }
      {
        const char* name = "every-static-scheme-loses-a-phase";
        bool ok = true;
        std::string detail;
        for (std::size_t i = 0; i < statics.size(); ++i) {
          const auto* p = statics[i];
          bool loses_somewhere = false;
          for (int ph = 0; ph < 3; ++ph) {
            const auto ops =
                p->metrics.phase_ops[static_cast<std::size_t>(ph)];
            if (static_cast<double>(ops) <
                bar * static_cast<double>(best[ph])) {
              loses_somewhere = true;
              break;
            }
          }
          if (!loses_somewhere) {
            ok = false;
            if (!detail.empty()) detail += ", ";
            detail += static_ids[i];
            detail += " never drops below 0.9x the per-phase best";
          }
        }
        if (ok) detail = "each static scheme trails in at least one phase";
        out.push_back({name, ok, false, detail});
      }
    }
  }

  // (11) Every KV service point must report populated, ordered latency
  // percentiles for every op kind: samples > 0 (each op has non-zero mix
  // share on every kv point) and p50 <= p99 <= p999 <= max. This is the
  // schema guarantee downstream dashboards key on.
  {
    const char* name = "kv-latency-percentiles-ordered";
    int kv_points = 0;
    bool ok = true;
    std::string detail;
    for (const auto& rec : result.points) {
      if (rec.def.kind != PointKind::kKv) continue;
      ++kv_points;
      const auto& lat = rec.metrics.latency;
      if (lat.size() != static_cast<std::size_t>(service::kKvOpKinds)) {
        ok = false;
        detail = rec.def.id + " reports " + std::to_string(lat.size()) +
                 " latency series (want " +
                 std::to_string(service::kKvOpKinds) + ")";
        break;
      }
      for (const auto& ol : lat) {
        if (ol.samples == 0 || ol.p50_cycles > ol.p99_cycles ||
            ol.p99_cycles > ol.p999_cycles ||
            ol.p999_cycles > ol.max_cycles) {
          ok = false;
          detail = rec.def.id + " op " + ol.op +
                   ": percentiles missing or unordered";
          break;
        }
      }
      if (!ok) break;
    }
    if (kv_points == 0) {
      out.push_back(skipped(name, "no kv points in this tier"));
    } else {
      if (ok) {
        detail = std::to_string(kv_points) +
                 " kv point(s): all op latencies populated and ordered";
      }
      out.push_back({name, ok, false, detail});
    }
  }

  // (12) The hot-shard point (zipf theta 1.2, write-heavy) concentrates
  // enough conflicting traffic on one shard's lock that plain HLE exhibits
  // the avalanche there — the service-scale rendition of Fig 3.3.
  {
    const char* name = "kv-hot-shard-avalanche-detected";
    const auto* p = point("kv-sh8-k8192-z120-u50-t8-hle");
    if (p == nullptr) {
      out.push_back(skipped(name, "required point not in this tier"));
    } else if (!result.telemetry_compiled) {
      out.push_back(skipped(name, "telemetry compiled out"));
    } else {
      const bool ok = p->metrics.avalanche_episodes >= 1;
      std::snprintf(buf, sizeof buf, "%llu avalanche episodes (want >= 1)",
                    static_cast<unsigned long long>(
                        p->metrics.avalanche_episodes));
      out.push_back({name, ok, false, buf});
    }
  }

  // (13) The KV service actually elides: under the moderate-skew service
  // mix the per-shard locks are mostly uncontended, so the HLE point must
  // run overwhelmingly speculatively while the standard point never does.
  {
    const char* name = "kv-service-elides";
    const auto* hle = point("kv-sh8-k8192-z99-u30-t8-hle");
    const auto* std_ = point("kv-sh8-k8192-z99-u30-t8-standard");
    if (hle == nullptr || std_ == nullptr) {
      out.push_back(skipped(name, "required points not in this tier"));
    } else {
      const bool ok = hle->metrics.spec_fraction >= 0.5 &&
                      std_->metrics.spec_fraction == 0.0;
      std::snprintf(buf, sizeof buf,
                    "hle spec fraction %.4f (want >= 0.5), standard %.4f "
                    "(want 0)",
                    hle->metrics.spec_fraction, std_->metrics.spec_fraction);
      out.push_back({name, ok, false, buf});
    }
  }

  return out;
}

}  // namespace elision::harness
