#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "tsx/shared.hpp"

namespace elision::tsx {
namespace {

// Deterministic machine: no SMT variation, no spurious aborts.
sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

TsxConfig quiet_tsx() {
  TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

// Runs each body on its own simulated thread.
void run_threads(std::vector<std::function<void(Ctx&)>> bodies,
                 TsxConfig tcfg = quiet_tsx()) {
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, tcfg);
  for (auto& body : bodies) {
    sched.spawn([&eng, body = std::move(body)](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      body(ctx);
    });
  }
  sched.run();
}

// Like run_threads but also exposes the engine for stats inspection.
void run_threads_with_engine(
    std::vector<std::function<void(Ctx&)>> bodies, TxStats* stats_out,
    TsxConfig tcfg = quiet_tsx()) {
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, tcfg);
  for (auto& body : bodies) {
    sched.spawn([&eng, body = std::move(body)](sim::SimThread& st) {
      body(eng.context(st));
    });
  }
  sched.run();
  *stats_out = eng.total_stats();
}

// ---------------------------------------------------------------------------
// Basic transactional semantics
// ---------------------------------------------------------------------------

TEST(Engine, CommittedTransactionPublishes) {
  Shared<std::uint64_t> x(1);
  run_threads({[&](Ctx& ctx) {
    const unsigned st = ctx.engine().run_transaction(ctx, [&] {
      x.store(ctx, x.load(ctx) + 41);
    });
    EXPECT_EQ(st, kCommitted);
  }});
  EXPECT_EQ(x.unsafe_get(), 42u);
}

TEST(Engine, ExplicitAbortRollsBack) {
  Shared<std::uint64_t> x(5);
  run_threads({[&](Ctx& ctx) {
    const unsigned st = ctx.engine().run_transaction(ctx, [&] {
      x.store(ctx, 99);
      ctx.engine().xabort(ctx, 0x7);
    });
    EXPECT_NE(st, kCommitted);
    EXPECT_TRUE(st & status::kExplicit);
    EXPECT_EQ(status::code_of(st), 0x7);
  }});
  EXPECT_EQ(x.unsafe_get(), 5u);  // the buffered store was discarded
}

TEST(Engine, ReadOwnWrites) {
  Shared<std::uint64_t> x(0);
  run_threads({[&](Ctx& ctx) {
    ctx.engine().run_transaction(ctx, [&] {
      x.store(ctx, 10);
      EXPECT_EQ(x.load(ctx), 10u);
      x.store(ctx, 20);
      EXPECT_EQ(x.load(ctx), 20u);
    });
  }});
  EXPECT_EQ(x.unsafe_get(), 20u);
}

TEST(Engine, WritesInvisibleUntilCommit) {
  Shared<std::uint64_t> x(0);
  Shared<std::uint64_t> observed(1234);
  run_threads({
      [&](Ctx& ctx) {
        ctx.engine().run_transaction(ctx, [&] {
          x.store(ctx, 7);
          // Park transactionally so the reader samples mid-transaction.
          ctx.engine().compute(ctx, 500);
          x.load(ctx);
        });
      },
      [&](Ctx& ctx) {
        ctx.engine().compute(ctx, 100);  // land inside the writer's tx
        observed.store(ctx, x.load(ctx));
      },
  });
  // The reader either saw the pre-state (0) — and in doing so aborted the
  // writer (requestor wins) — or ran after a commit (7). Never a torn or
  // buffered value.
  const std::uint64_t v = observed.unsafe_get();
  EXPECT_TRUE(v == 0 || v == 7) << v;
}

TEST(Engine, XTestReportsTransactionState) {
  run_threads({[&](Ctx& ctx) {
    EXPECT_FALSE(ctx.engine().xtest(ctx));
    ctx.engine().run_transaction(ctx, [&] {
      EXPECT_TRUE(ctx.engine().xtest(ctx));
    });
    EXPECT_FALSE(ctx.engine().xtest(ctx));
  }});
}

TEST(Engine, FlatNestingCommitsAtOuter) {
  Shared<std::uint64_t> x(0);
  run_threads({[&](Ctx& ctx) {
    auto& eng = ctx.engine();
    const unsigned st = eng.run_transaction(ctx, [&] {
      x.store(ctx, 1);
      const unsigned inner = eng.run_transaction(ctx, [&] {
        x.store(ctx, 2);
      });
      EXPECT_EQ(inner, kCommitted);
      // Inner "commit" must not have published anything yet: we are still
      // speculative, so memory still holds 0.
      EXPECT_TRUE(eng.xtest(ctx));
      EXPECT_EQ(x.unsafe_get(), 0u);
    });
    EXPECT_EQ(st, kCommitted);
  }});
  EXPECT_EQ(x.unsafe_get(), 2u);
}

TEST(Engine, NestedAbortUnwindsToOuter) {
  Shared<std::uint64_t> x(0);
  run_threads({[&](Ctx& ctx) {
    auto& eng = ctx.engine();
    bool after_inner = false;
    const unsigned st = eng.run_transaction(ctx, [&] {
      x.store(ctx, 1);
      eng.run_transaction(ctx, [&] { eng.xabort(ctx, 3); });
      after_inner = true;  // must never execute: flat nesting
    });
    EXPECT_NE(st, kCommitted);
    EXPECT_TRUE(st & status::kExplicit);
    EXPECT_TRUE(st & status::kNested);
    EXPECT_FALSE(after_inner);
  }});
  EXPECT_EQ(x.unsafe_get(), 0u);
}

TEST(Engine, PauseAbortsTransaction) {
  TxStats stats;
  run_threads_with_engine(
      {[&](Ctx& ctx) {
        const unsigned st = ctx.engine().run_transaction(ctx, [&] {
          ctx.engine().pause(ctx);
          ADD_FAILURE() << "unreachable: PAUSE must abort";
        });
        EXPECT_NE(st, kCommitted);
      }},
      &stats);
  EXPECT_EQ(stats.aborts_by_cause[static_cast<int>(AbortCause::kPause)], 1u);
}

TEST(Engine, PauseOutsideTransactionJustCosts) {
  run_threads({[&](Ctx& ctx) {
    const auto before = ctx.thread().now();
    ctx.engine().pause(ctx);
    EXPECT_GT(ctx.thread().now(), before);
  }});
}

// ---------------------------------------------------------------------------
// Requestor-wins conflict management
// ---------------------------------------------------------------------------

TEST(Engine, DirectWriteAbortsTransactionalReader) {
  Shared<std::uint64_t> x(0);
  unsigned reader_status = kCommitted;
  run_threads({
      [&](Ctx& ctx) {
        reader_status = ctx.engine().run_transaction(ctx, [&] {
          (void)x.load(ctx);
          ctx.engine().compute(ctx, 1000);  // give the writer time
          (void)x.load(ctx);                // must observe the abort
          ctx.engine().compute(ctx, 1000);
        });
      },
      [&](Ctx& ctx) {
        ctx.engine().compute(ctx, 200);
        x.store(ctx, 1);  // direct write into the reader's read set
      },
  });
  EXPECT_NE(reader_status, kCommitted);
  EXPECT_TRUE(reader_status & status::kConflict);
}

TEST(Engine, DirectReadAbortsTransactionalWriter) {
  Shared<std::uint64_t> x(0);
  unsigned writer_status = kCommitted;
  std::uint64_t seen = 1234;
  run_threads({
      [&](Ctx& ctx) {
        writer_status = ctx.engine().run_transaction(ctx, [&] {
          x.store(ctx, 9);
          ctx.engine().compute(ctx, 1000);
          (void)x.load(ctx);
        });
      },
      [&](Ctx& ctx) {
        ctx.engine().compute(ctx, 200);
        seen = x.load(ctx);  // plain read of a line in the writer's wset
      },
  });
  EXPECT_NE(writer_status, kCommitted);
  EXPECT_EQ(seen, 0u);  // pre-transactional memory, never the buffered 9
  EXPECT_EQ(x.unsafe_get(), 0u);
}

TEST(Engine, TransactionalWriteAbortsOtherReaders) {
  Shared<std::uint64_t> x(0);
  unsigned reader_status = kCommitted;
  unsigned writer_status = 0;
  run_threads({
      [&](Ctx& ctx) {
        reader_status = ctx.engine().run_transaction(ctx, [&] {
          (void)x.load(ctx);
          ctx.engine().compute(ctx, 1000);
          (void)x.load(ctx);
        });
      },
      [&](Ctx& ctx) {
        ctx.engine().compute(ctx, 100);
        writer_status = ctx.engine().run_transaction(ctx, [&] {
          x.store(ctx, 5);
        });
      },
  });
  EXPECT_EQ(writer_status, kCommitted);  // the requestor proceeds
  EXPECT_NE(reader_status, kCommitted);  // the reader is the victim
  EXPECT_EQ(x.unsafe_get(), 5u);
}

TEST(Engine, TransactionalReadAbortsOtherWriter) {
  Shared<std::uint64_t> x(0);
  unsigned writer_status = kCommitted;
  unsigned reader_status = 0;
  std::uint64_t seen = 1234;
  run_threads({
      [&](Ctx& ctx) {
        writer_status = ctx.engine().run_transaction(ctx, [&] {
          x.store(ctx, 5);
          ctx.engine().compute(ctx, 1000);
          (void)x.load(ctx);
        });
      },
      [&](Ctx& ctx) {
        ctx.engine().compute(ctx, 100);
        reader_status = ctx.engine().run_transaction(ctx, [&] {
          seen = x.load(ctx);
        });
      },
  });
  EXPECT_EQ(reader_status, kCommitted);
  EXPECT_NE(writer_status, kCommitted);
  EXPECT_EQ(seen, 0u);
}

TEST(Engine, ReadersDoNotConflictWithReaders) {
  Shared<std::uint64_t> x(3);
  std::vector<std::function<void(Ctx&)>> bodies;
  std::vector<unsigned> statuses(6, 1);
  for (int i = 0; i < 6; ++i) {
    bodies.push_back([&, i](Ctx& ctx) {
      statuses[i] = ctx.engine().run_transaction(ctx, [&] {
        for (int k = 0; k < 20; ++k) EXPECT_EQ(x.load(ctx), 3u);
      });
    });
  }
  run_threads(std::move(bodies));
  for (const unsigned st : statuses) EXPECT_EQ(st, kCommitted);
}

TEST(Engine, ConcurrentCountersNeverLoseUpdates) {
  // Mixed transactional and direct increments under heavy interleaving must
  // sum exactly.
  Shared<std::uint64_t> counter(0);
  std::vector<std::function<void(Ctx&)>> bodies;
  constexpr int kThreads = 6, kIters = 400;
  for (int i = 0; i < kThreads; ++i) {
    bodies.push_back([&](Ctx& ctx) {
      for (int k = 0; k < kIters; ++k) {
        const unsigned st = ctx.engine().run_transaction(ctx, [&] {
          counter.store(ctx, counter.load(ctx) + 1);
        });
        if (st != kCommitted) counter.fetch_add(ctx, 1);
      }
    });
  }
  run_threads(std::move(bodies));
  EXPECT_EQ(counter.unsafe_get(), kThreads * kIters);
}

TEST(Engine, MarkedTransactionAbortsAtNextAccessNotLater) {
  // A zombie transaction must observe its doom at the very next shared
  // access, so it can never act on a mix of pre- and post-conflict values
  // (opacity).
  Shared<std::uint64_t> x(0), y(0);
  bool inconsistency = false;
  run_threads({
      [&](Ctx& ctx) {
        ctx.engine().run_transaction(ctx, [&] {
          const std::uint64_t x0 = x.load(ctx);
          ctx.engine().compute(ctx, 1000);  // writer updates both now
          const std::uint64_t y0 = y.load(ctx);  // must abort here
          if (x0 != y0) inconsistency = true;
        });
      },
      [&](Ctx& ctx) {
        ctx.engine().compute(ctx, 200);
        x.store(ctx, 1);
        y.store(ctx, 1);
      },
  });
  EXPECT_FALSE(inconsistency);
}

// ---------------------------------------------------------------------------
// Capacity model
// ---------------------------------------------------------------------------

TEST(Engine, WriteSetOverflowAborts) {
  // 64 sets x 8 ways = 512 lines = 32 KB. Writing more must abort with
  // CAPACITY and no RETRY bit.
  constexpr std::size_t kLines = 600;
  std::vector<support::CacheAligned<Shared<std::uint64_t>>> data(kLines);
  unsigned st = kCommitted;
  run_threads({[&](Ctx& ctx) {
    st = ctx.engine().run_transaction(ctx, [&] {
      for (auto& d : data) d.value.store(ctx, 1);
    });
  }});
  EXPECT_NE(st, kCommitted);
  EXPECT_TRUE(st & status::kCapacity);
  EXPECT_FALSE(st & status::kRetry);
}

TEST(Engine, WriteSetWithinL1Commits) {
  constexpr std::size_t kLines = 500;  // < 512
  std::vector<support::CacheAligned<Shared<std::uint64_t>>> data(kLines);
  unsigned st = 1;
  run_threads({[&](Ctx& ctx) {
    st = ctx.engine().run_transaction(ctx, [&] {
      for (auto& d : data) d.value.store(ctx, 1);
    });
  }});
  EXPECT_EQ(st, kCommitted);
  for (auto& d : data) EXPECT_EQ(d.value.unsafe_get(), 1u);
}

TEST(Engine, WriteSetAssociativityConflictAborts) {
  // 9 lines mapping to the same L1 set exceed the 8 ways even though the
  // total footprint is tiny.
  std::vector<std::uint8_t> arena(64 * 64 * 10 + 64);
  const auto base = (reinterpret_cast<std::uintptr_t>(arena.data()) + 63) &
                    ~static_cast<std::uintptr_t>(63);
  unsigned st = kCommitted;
  run_threads({[&](Ctx& ctx) {
    st = ctx.engine().run_transaction(ctx, [&] {
      for (int i = 0; i < 9; ++i) {
        auto* p = reinterpret_cast<void*>(base + static_cast<std::uintptr_t>(i) * 64 * 64);
        ctx.engine().store(ctx, p, 1);
      }
    });
  }});
  EXPECT_NE(st, kCommitted);
  EXPECT_TRUE(st & status::kCapacity);
}

TEST(Engine, ReadsSurvivePastL1) {
  // Reads are tracked beyond L1 (Fig 2.1): a 1000-line read-only
  // transaction (~64 KB) must commit when spurious aborts are disabled.
  constexpr std::size_t kLines = 1000;
  std::vector<support::CacheAligned<Shared<std::uint64_t>>> data(kLines);
  TsxConfig cfg = quiet_tsx();
  cfg.read_evict_l2 = 0;
  unsigned st = 1;
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, cfg);
  sched.spawn([&](sim::SimThread& t) {
    auto& ctx = eng.context(t);
    st = eng.run_transaction(ctx, [&] {
      for (auto& d : data) (void)d.value.load(ctx);
    });
  });
  sched.run();
  EXPECT_EQ(st, kCommitted);
}

TEST(Engine, ReadSetHardLimitAborts) {
  TsxConfig cfg = quiet_tsx();
  cfg.l3_lines = 2000;  // shrink the L3 so the test stays fast
  constexpr std::size_t kLines = 2100;
  std::vector<support::CacheAligned<Shared<std::uint64_t>>> data(kLines);
  unsigned st = kCommitted;
  sim::Scheduler sched(quiet_machine());
  Engine eng(sched, cfg);
  sched.spawn([&](sim::SimThread& t) {
    auto& ctx = eng.context(t);
    st = eng.run_transaction(ctx, [&] {
      for (auto& d : data) (void)d.value.load(ctx);
    });
  });
  sched.run();
  EXPECT_NE(st, kCommitted);
  EXPECT_TRUE(st & status::kCapacity);
}

// ---------------------------------------------------------------------------
// Spurious aborts
// ---------------------------------------------------------------------------

TEST(Engine, SpuriousAbortsOccurAtConfiguredRate) {
  TsxConfig cfg = quiet_tsx();
  cfg.spurious_per_begin = 0.2;
  TxStats stats;
  run_threads_with_engine(
      {[&](Ctx& ctx) {
        Shared<std::uint64_t> x(0);
        int commits = 0;
        for (int i = 0; i < 2000; ++i) {
          if (ctx.engine().run_transaction(ctx, [&] {
                x.store(ctx, i);
              }) == kCommitted) {
            ++commits;
          }
        }
        EXPECT_NEAR(commits, 1600, 80);  // ~80% commit rate
      }},
      &stats, cfg);
  EXPECT_NEAR(
      static_cast<double>(
          stats.aborts_by_cause[static_cast<int>(AbortCause::kSpurious)]),
      400.0, 80.0);
}

TEST(Engine, NoSpuriousAbortsWhenDisabled) {
  TxStats stats;
  run_threads_with_engine(
      {[&](Ctx& ctx) {
        Shared<std::uint64_t> x(0);
        for (int i = 0; i < 2000; ++i) {
          EXPECT_EQ(ctx.engine().run_transaction(
                        ctx, [&] { x.store(ctx, i); }),
                    kCommitted);
        }
      }},
      &stats);
  EXPECT_EQ(stats.aborts, 0u);
  EXPECT_EQ(stats.commits, 2000u);
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

TEST(Engine, StatsCountBeginsCommitsAborts) {
  TxStats stats;
  run_threads_with_engine(
      {[&](Ctx& ctx) {
        Shared<std::uint64_t> x(0);
        for (int i = 0; i < 10; ++i) {
          ctx.engine().run_transaction(ctx, [&] { x.store(ctx, 1); });
        }
        for (int i = 0; i < 3; ++i) {
          ctx.engine().run_transaction(ctx, [&] {
            ctx.engine().xabort(ctx, 1);
          });
        }
      }},
      &stats);
  EXPECT_EQ(stats.begins, 13u);
  EXPECT_EQ(stats.commits, 10u);
  EXPECT_EQ(stats.aborts, 3u);
  EXPECT_EQ(stats.aborts_by_cause[static_cast<int>(AbortCause::kExplicit)],
            3u);
}

TEST(Engine, RmwOperationsWorkTransactionallyAndDirectly) {
  Shared<std::uint64_t> x(10);
  run_threads({[&](Ctx& ctx) {
    // Direct.
    EXPECT_EQ(x.fetch_add(ctx, 5), 10u);
    EXPECT_EQ(x.exchange(ctx, 100), 15u);
    EXPECT_TRUE(x.compare_exchange(ctx, 100, 200));
    EXPECT_FALSE(x.compare_exchange(ctx, 100, 300));
    // Transactional.
    ctx.engine().run_transaction(ctx, [&] {
      EXPECT_EQ(x.fetch_add(ctx, 1), 200u);
      EXPECT_EQ(x.exchange(ctx, 7), 201u);
      EXPECT_TRUE(x.compare_exchange(ctx, 7, 8));
    });
  }});
  EXPECT_EQ(x.unsafe_get(), 8u);
}

TEST(Engine, SharedSupportsSmallTypes) {
  Shared<int> i(-5);
  Shared<double> d(2.5);
  Shared<void*> p(nullptr);
  run_threads({[&](Ctx& ctx) {
    EXPECT_EQ(i.load(ctx), -5);
    i.store(ctx, 17);
    EXPECT_DOUBLE_EQ(d.load(ctx), 2.5);
    d.store(ctx, -1.25);
    EXPECT_EQ(p.load(ctx), nullptr);
    p.store(ctx, &d);
  }});
  EXPECT_EQ(i.unsafe_get(), 17);
  EXPECT_DOUBLE_EQ(d.unsafe_get(), -1.25);
  EXPECT_EQ(p.unsafe_get(), &d);
}

}  // namespace
}  // namespace elision::tsx
