#!/usr/bin/env bash
# Reproduces everything: build, full test suite, every figure/table bench.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
# ELISION_BENCH_SCALE=<x> lengthens bench runs for smoother curves.
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --timeout 600 2>&1 | tee test_output.txt

for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "### $(basename "$b")"
  "$b"
done 2>&1 | tee bench_output.txt
