# Empty compiler generated dependencies file for hle_test.
# This may be replaced when dependencies are built.
