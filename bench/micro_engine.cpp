// Micro-benchmarks (google-benchmark) of the simulator's primitive
// operation costs: shared loads/stores, RMWs, transaction begin/commit,
// elision, and the region drivers. These measure *host* time per simulated
// operation — the simulator's own overhead — not simulated latencies.
#include <benchmark/benchmark.h>

#include "ds/rbtree.hpp"
#include "locks/region.hpp"
#include "locks/ttas_lock.hpp"
#include "tsx/line_table.hpp"
#include "tsx/shared.hpp"

namespace {

using namespace elision;

// Each iteration spins up one simulated thread performing `ops_per_run`
// operations; we report time per simulated operation.
template <typename Fn>
void run_sim_cfg(benchmark::State& state, const tsx::TsxConfig& tcfg,
                 std::int64_t ops_per_run, Fn&& fn) {
  for (auto _ : state) {
    sim::MachineConfig mcfg;
    mcfg.n_cores = 1;
    sim::Scheduler sched(mcfg);
    tsx::Engine eng(sched, tcfg);
    sched.spawn([&](sim::SimThread& t) { fn(eng.context(t)); });
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * ops_per_run);
}

template <typename Fn>
void run_sim(benchmark::State& state, std::int64_t ops_per_run, Fn&& fn) {
  run_sim_cfg(state, tsx::TsxConfig{}, ops_per_run,
              static_cast<Fn&&>(fn));
}

void BM_DirectLoad(benchmark::State& state) {
  tsx::Shared<std::uint64_t> x(1);
  run_sim(state, 10000, [&](tsx::Ctx& ctx) {
    std::uint64_t sum = 0;
    for (int i = 0; i < 10000; ++i) sum += x.load(ctx);
    benchmark::DoNotOptimize(sum);
  });
}
BENCHMARK(BM_DirectLoad);

void BM_DirectStore(benchmark::State& state) {
  tsx::Shared<std::uint64_t> x(0);
  run_sim(state, 10000, [&](tsx::Ctx& ctx) {
    for (int i = 0; i < 10000; ++i) x.store(ctx, i);
  });
}
BENCHMARK(BM_DirectStore);

void BM_DirectFetchAdd(benchmark::State& state) {
  tsx::Shared<std::uint64_t> x(0);
  run_sim(state, 10000, [&](tsx::Ctx& ctx) {
    for (int i = 0; i < 10000; ++i) x.fetch_add(ctx, 1);
  });
}
BENCHMARK(BM_DirectFetchAdd);

void BM_EmptyTransaction(benchmark::State& state) {
  run_sim(state, 5000, [&](tsx::Ctx& ctx) {
    for (int i = 0; i < 5000; ++i) {
      ctx.engine().run_transaction(ctx, [] {});
    }
  });
}
BENCHMARK(BM_EmptyTransaction);

void BM_SmallTransaction(benchmark::State& state) {
  tsx::Shared<std::uint64_t> x(0);
  run_sim(state, 5000, [&](tsx::Ctx& ctx) {
    for (int i = 0; i < 5000; ++i) {
      ctx.engine().run_transaction(ctx, [&] {
        x.store(ctx, x.load(ctx) + 1);
      });
    }
  });
}
BENCHMARK(BM_SmallTransaction);

void BM_TransactionWriteSet(benchmark::State& state) {
  const auto lines = static_cast<std::size_t>(state.range(0));
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> data(lines);
  run_sim(state, 100, [&](tsx::Ctx& ctx) {
    for (int i = 0; i < 100; ++i) {
      ctx.engine().run_transaction(ctx, [&] {
        for (auto& d : data) d.value.store(ctx, i);
      });
    }
  });
}
BENCHMARK(BM_TransactionWriteSet)->Arg(8)->Arg(64)->Arg(256);

void BM_HleRegion(benchmark::State& state) {
  locks::TtasLock lock;
  tsx::Shared<std::uint64_t> x(0);
  run_sim(state, 2000, [&](tsx::Ctx& ctx) {
    for (int i = 0; i < 2000; ++i) {
      locks::hle_region(ctx, lock, [&] {
        x.store(ctx, x.load(ctx) + 1);
      });
    }
  });
}
BENCHMARK(BM_HleRegion);

void BM_RbTreeLookup(benchmark::State& state) {
  ds::RbTree tree(3000);
  for (std::uint64_t k = 0; k < 2048; ++k) tree.unsafe_insert(k * 7);
  run_sim(state, 2000, [&](tsx::Ctx& ctx) {
    for (int i = 0; i < 2000; ++i) {
      benchmark::DoNotOptimize(
          tree.contains(ctx, static_cast<std::uint64_t>(i * 13 % 14336)));
    }
  });
}
BENCHMARK(BM_RbTreeLookup);

// LineTable primitives in isolation (every simulated access pays at least
// one of these). Repeated same-line access through the per-context cache —
// the dominant pattern, since consecutive accesses usually touch the line
// they just touched.
void BM_LineTableRecordCachedHit(benchmark::State& state) {
  tsx::LineTable table;
  tsx::LineTable::Cache cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.record(0x1234, cache));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LineTableRecordCachedHit);

// Cycling over a working set defeats the one-entry cache and measures the
// open-addressing probe itself, at footprints spanning "fits easily" to
// "just grew".
void BM_LineTableRecordProbe(benchmark::State& state) {
  const auto lines = static_cast<std::size_t>(state.range(0));
  tsx::LineTable table;
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.record(line * 64));
    line = (line + 1) % lines;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LineTableRecordProbe)->Arg(16)->Arg(512)->Arg(8192);

// clear() is a generation bump: the refill after it must pay no per-slot
// scrubbing cost (this is what made replacing unordered_map worthwhile —
// the engine clears conflict state constantly).
void BM_LineTableClearRefill(benchmark::State& state) {
  const auto lines = static_cast<std::size_t>(state.range(0));
  tsx::LineTable table;
  for (auto _ : state) {
    table.clear();
    for (std::size_t i = 0; i < lines; ++i) {
      benchmark::DoNotOptimize(table.record(i * 64));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines));
}
BENCHMARK(BM_LineTableClearRefill)->Arg(64)->Arg(1024);

// The engine-level probe-vs-cached pair: a transaction re-reading lines it
// already owns, with the owned-line fast path on (repeat accesses hit the
// per-context cache and skip the LineTable probe, reader-set update and
// abort checks) and off (every access takes tx_load_slow). The delta is
// the per-access cost the fast path removed; the simulated results are
// identical by construction (tests/fastpath_test.cpp).
void repeat_read_tx(tsx::Ctx& ctx,
                    std::vector<tsx::Shared<std::uint64_t>>& words) {
  ctx.engine().run_transaction(ctx, [&] {
    std::uint64_t sum = 0;
    for (int rep = 0; rep < 50; ++rep) {
      for (std::size_t w = 0; w < words.size(); ++w) {
        sum += words[w].load(ctx);
      }
    }
    benchmark::DoNotOptimize(sum);
  });
}

void BM_TxRepeatReadOwnedCache(benchmark::State& state) {
  std::vector<tsx::Shared<std::uint64_t>> words(16);
  run_sim(state, 20 * 50 * 16, [&](tsx::Ctx& ctx) {
    for (int i = 0; i < 20; ++i) repeat_read_tx(ctx, words);
  });
}
BENCHMARK(BM_TxRepeatReadOwnedCache);

void BM_TxRepeatReadSlowPath(benchmark::State& state) {
  tsx::TsxConfig tcfg;
  tcfg.owned_line_fastpath = false;
  std::vector<tsx::Shared<std::uint64_t>> words(16);
  run_sim_cfg(state, tcfg, 20 * 50 * 16, [&](tsx::Ctx& ctx) {
    for (int i = 0; i < 20; ++i) repeat_read_tx(ctx, words);
  });
}
BENCHMARK(BM_TxRepeatReadSlowPath);

void BM_FiberSwitch(benchmark::State& state) {
  // Two threads ping-ponging via strict earliest-first scheduling.
  for (auto _ : state) {
    sim::MachineConfig mcfg;
    mcfg.n_cores = 2;
    mcfg.smt_per_core = 1;
    sim::Scheduler sched(mcfg);
    for (int t = 0; t < 2; ++t) {
      sched.spawn([](sim::SimThread& st) {
        for (int i = 0; i < 5000; ++i) st.tick(1);
      });
    }
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_FiberSwitch);

}  // namespace

BENCHMARK_MAIN();
