#include "ds/btree.hpp"

#include <functional>
#include <string>

#include "support/check.hpp"

namespace elision::ds {

BplusTree::BplusTree(std::size_t capacity, int max_threads)
    : arena_(capacity),
      n_free_lists_(max_threads + 1),
      free_(static_cast<std::size_t>(max_threads) + 1) {
  ELISION_CHECK_MSG(capacity >= 1, "BplusTree needs at least a root node");
  ELISION_CHECK_MSG(
      max_threads >= 1 && max_threads <= tsx::kMaxThreads,
      "node pool max_threads must be in [1, tsx::kMaxThreads]");

  // Node 0 is the initial (empty leaf) root; the rest thread onto the
  // setup/global free list (slot n_free_lists_-1).
  Node& root = arena_[0];
  root.leaf.unsafe_set(1);
  root.count.unsafe_set(0);
  root.next.unsafe_set(nullptr);
  root_.unsafe_set(&root);
  Node* head = nullptr;
  for (std::size_t i = arena_.size(); i-- > 1;) {
    arena_[i].next.unsafe_set(head);
    head = &arena_[i];
  }
  free_[n_free_lists_ - 1].value.unsafe_set(head);
}

void BplusTree::unsafe_distribute_free_lists(int n_threads) {
  ELISION_CHECK(n_threads >= 1 && n_threads < n_free_lists_);
  Node* n = free_[n_free_lists_ - 1].value.unsafe_get();
  free_[n_free_lists_ - 1].value.unsafe_set(nullptr);
  int slot = 0;
  while (n != nullptr) {
    Node* next = n->next.unsafe_get();
    n->next.unsafe_set(free_[slot].value.unsafe_get());
    free_[slot].value.unsafe_set(n);
    slot = (slot + 1) % n_threads;
    n = next;
  }
}

BplusTree::Node* BplusTree::alloc(tsx::Ctx& ctx) {
  // Thread-cached allocation, as in RbTree::alloc: the common path touches
  // only this thread's free list, so concurrent splits do not conflict.
  Node* n = nullptr;
  auto& own = free_[ctx.id()].value;
  n = own.load(ctx);
  if (n != nullptr) {
    own.store(ctx, n->next.load(ctx));
  } else {
    for (int i = n_free_lists_ - 1; i >= 0 && n == nullptr; --i) {
      auto& other = free_[i].value;
      n = other.load(ctx);
      if (n != nullptr) other.store(ctx, n->next.load(ctx));
    }
  }
  ELISION_CHECK_MSG(n != nullptr, "BplusTree node pool exhausted");
  n->next.store(ctx, nullptr);
  return n;
}

int BplusTree::child_index(tsx::Ctx& ctx, Node* n, std::uint64_t key) {
  const int c = static_cast<int>(n->count.load(ctx));
  int i = 0;
  while (i < c && n->keys[static_cast<std::size_t>(i)].load(ctx) <= key) ++i;
  return i;
}

BplusTree::Node* BplusTree::descend(tsx::Ctx& ctx, std::uint64_t key) {
  Node* n = root_.load(ctx);
  while (n->leaf.load(ctx) == 0) {
    n = n->kids[static_cast<std::size_t>(child_index(ctx, n, key))].load(ctx);
  }
  return n;
}

void BplusTree::split_child(tsx::Ctx& ctx, Node* parent, int i) {
  Node* child = parent->kids[static_cast<std::size_t>(i)].load(ctx);
  Node* right = alloc(ctx);
  const bool leaf = child->leaf.load(ctx) != 0;
  std::uint64_t separator;
  if (leaf) {
    // Leaf split: the upper half moves right; the separator is the first
    // right key (it stays in the leaf — B+tree separators are routing
    // copies). The chain gains the new leaf in place.
    constexpr int kHalf = kMaxKeys / 2;
    right->leaf.store(ctx, 1);
    for (int j = kHalf; j < kMaxKeys; ++j) {
      const auto from = static_cast<std::size_t>(j);
      const auto to = static_cast<std::size_t>(j - kHalf);
      right->keys[to].store(ctx, child->keys[from].load(ctx));
      right->vals[to].store(ctx, child->vals[from].load(ctx));
    }
    right->count.store(ctx, kMaxKeys - kHalf);
    child->count.store(ctx, kHalf);
    right->next.store(ctx, child->next.load(ctx));
    child->next.store(ctx, right);
    separator = right->keys[0].load(ctx);
  } else {
    // Internal split: the middle separator moves up; keys above it (and
    // their children) move right.
    constexpr int kMid = kMaxKeys / 2;
    right->leaf.store(ctx, 0);
    separator = child->keys[kMid].load(ctx);
    for (int j = kMid + 1; j < kMaxKeys; ++j) {
      const auto from = static_cast<std::size_t>(j);
      const auto to = static_cast<std::size_t>(j - kMid - 1);
      right->keys[to].store(ctx, child->keys[from].load(ctx));
    }
    for (int j = kMid + 1; j <= kMaxKeys; ++j) {
      const auto from = static_cast<std::size_t>(j);
      const auto to = static_cast<std::size_t>(j - kMid - 1);
      right->kids[to].store(ctx, child->kids[from].load(ctx));
    }
    right->count.store(ctx, kMaxKeys - kMid - 1);
    child->count.store(ctx, kMid);
  }
  // Insert the separator and the new right child into the parent at i
  // (preemptive splitting guarantees room).
  const int pcount = static_cast<int>(parent->count.load(ctx));
  for (int j = pcount; j > i; --j) {
    const auto to = static_cast<std::size_t>(j);
    parent->keys[to].store(ctx, parent->keys[to - 1].load(ctx));
    parent->kids[to + 1].store(ctx, parent->kids[to].load(ctx));
  }
  parent->keys[static_cast<std::size_t>(i)].store(ctx, separator);
  parent->kids[static_cast<std::size_t>(i) + 1].store(ctx, right);
  parent->count.store(ctx, static_cast<std::uint64_t>(pcount) + 1);
}

bool BplusTree::insert(tsx::Ctx& ctx, std::uint64_t key,
                       std::uint64_t value) {
  Node* r = root_.load(ctx);
  if (r->count.load(ctx) == kMaxKeys) {
    // Grow: a new internal root adopts the old root and splits it.
    Node* nr = alloc(ctx);
    nr->leaf.store(ctx, 0);
    nr->count.store(ctx, 0);
    nr->kids[0].store(ctx, r);
    split_child(ctx, nr, 0);
    root_.store(ctx, nr);
    r = nr;
  }
  Node* n = r;
  while (n->leaf.load(ctx) == 0) {
    int i = child_index(ctx, n, key);
    Node* c = n->kids[static_cast<std::size_t>(i)].load(ctx);
    if (c->count.load(ctx) == kMaxKeys) {
      split_child(ctx, n, i);
      // Re-route against the freshly promoted separator (equal keys go
      // right, matching child_index).
      if (key >= n->keys[static_cast<std::size_t>(i)].load(ctx)) ++i;
      c = n->kids[static_cast<std::size_t>(i)].load(ctx);
    }
    n = c;
  }
  const int count = static_cast<int>(n->count.load(ctx));
  int pos = 0;
  while (pos < count) {
    const std::uint64_t k = n->keys[static_cast<std::size_t>(pos)].load(ctx);
    if (k == key) return false;
    if (k > key) break;
    ++pos;
  }
  for (int j = count; j > pos; --j) {
    const auto to = static_cast<std::size_t>(j);
    n->keys[to].store(ctx, n->keys[to - 1].load(ctx));
    n->vals[to].store(ctx, n->vals[to - 1].load(ctx));
  }
  n->keys[static_cast<std::size_t>(pos)].store(ctx, key);
  n->vals[static_cast<std::size_t>(pos)].store(ctx, value);
  n->count.store(ctx, static_cast<std::uint64_t>(count) + 1);
  return true;
}

bool BplusTree::erase(tsx::Ctx& ctx, std::uint64_t key) {
  Node* n = descend(ctx, key);
  const int count = static_cast<int>(n->count.load(ctx));
  for (int pos = 0; pos < count; ++pos) {
    if (n->keys[static_cast<std::size_t>(pos)].load(ctx) != key) continue;
    for (int j = pos + 1; j < count; ++j) {
      const auto from = static_cast<std::size_t>(j);
      n->keys[from - 1].store(ctx, n->keys[from].load(ctx));
      n->vals[from - 1].store(ctx, n->vals[from].load(ctx));
    }
    n->count.store(ctx, static_cast<std::uint64_t>(count) - 1);
    return true;
  }
  return false;
}

bool BplusTree::lookup(tsx::Ctx& ctx, std::uint64_t key,
                       std::uint64_t* value) {
  Node* n = descend(ctx, key);
  const int count = static_cast<int>(n->count.load(ctx));
  for (int pos = 0; pos < count; ++pos) {
    if (n->keys[static_cast<std::size_t>(pos)].load(ctx) == key) {
      *value = n->vals[static_cast<std::size_t>(pos)].load(ctx);
      return true;
    }
  }
  return false;
}

std::size_t BplusTree::range_sum(tsx::Ctx& ctx, std::uint64_t lo,
                                 std::size_t limit, std::uint64_t* sum) {
  std::size_t visited = 0;
  std::uint64_t acc = 0;
  Node* n = descend(ctx, lo);
  while (n != nullptr && visited < limit) {
    const int count = static_cast<int>(n->count.load(ctx));
    for (int pos = 0; pos < count && visited < limit; ++pos) {
      if (n->keys[static_cast<std::size_t>(pos)].load(ctx) < lo) continue;
      acc += n->vals[static_cast<std::size_t>(pos)].load(ctx);
      ++visited;
    }
    n = n->next.load(ctx);
  }
  *sum = acc;
  return visited;
}

// ---------------------------------------------------------------------------
// Setup/verification helpers (unsafe_* accessors; no simulated threads)
// ---------------------------------------------------------------------------

BplusTree::Node* BplusTree::unsafe_alloc() {
  for (int i = n_free_lists_ - 1; i >= 0; --i) {
    auto& list = free_[i].value;
    Node* n = list.unsafe_get();
    if (n != nullptr) {
      list.unsafe_set(n->next.unsafe_get());
      n->next.unsafe_set(nullptr);
      return n;
    }
  }
  ELISION_CHECK_MSG(false, "BplusTree node pool exhausted (setup)");
  return nullptr;
}

void BplusTree::unsafe_split_child(Node* parent, int i) {
  Node* child = parent->kids[static_cast<std::size_t>(i)].unsafe_get();
  Node* right = unsafe_alloc();
  const bool leaf = child->leaf.unsafe_get() != 0;
  std::uint64_t separator;
  if (leaf) {
    constexpr int kHalf = kMaxKeys / 2;
    right->leaf.unsafe_set(1);
    for (int j = kHalf; j < kMaxKeys; ++j) {
      const auto from = static_cast<std::size_t>(j);
      const auto to = static_cast<std::size_t>(j - kHalf);
      right->keys[to].unsafe_set(child->keys[from].unsafe_get());
      right->vals[to].unsafe_set(child->vals[from].unsafe_get());
    }
    right->count.unsafe_set(kMaxKeys - kHalf);
    child->count.unsafe_set(kHalf);
    right->next.unsafe_set(child->next.unsafe_get());
    child->next.unsafe_set(right);
    separator = right->keys[0].unsafe_get();
  } else {
    constexpr int kMid = kMaxKeys / 2;
    right->leaf.unsafe_set(0);
    separator = child->keys[kMid].unsafe_get();
    for (int j = kMid + 1; j < kMaxKeys; ++j) {
      const auto from = static_cast<std::size_t>(j);
      const auto to = static_cast<std::size_t>(j - kMid - 1);
      right->keys[to].unsafe_set(child->keys[from].unsafe_get());
    }
    for (int j = kMid + 1; j <= kMaxKeys; ++j) {
      const auto from = static_cast<std::size_t>(j);
      const auto to = static_cast<std::size_t>(j - kMid - 1);
      right->kids[to].unsafe_set(child->kids[from].unsafe_get());
    }
    right->count.unsafe_set(kMaxKeys - kMid - 1);
    child->count.unsafe_set(kMid);
  }
  const int pcount = static_cast<int>(parent->count.unsafe_get());
  for (int j = pcount; j > i; --j) {
    const auto to = static_cast<std::size_t>(j);
    parent->keys[to].unsafe_set(parent->keys[to - 1].unsafe_get());
    parent->kids[to + 1].unsafe_set(parent->kids[to].unsafe_get());
  }
  parent->keys[static_cast<std::size_t>(i)].unsafe_set(separator);
  parent->kids[static_cast<std::size_t>(i) + 1].unsafe_set(right);
  parent->count.unsafe_set(static_cast<std::uint64_t>(pcount) + 1);
}

bool BplusTree::unsafe_insert(std::uint64_t key, std::uint64_t value) {
  Node* r = root_.unsafe_get();
  if (r->count.unsafe_get() == kMaxKeys) {
    Node* nr = unsafe_alloc();
    nr->leaf.unsafe_set(0);
    nr->count.unsafe_set(0);
    nr->kids[0].unsafe_set(r);
    unsafe_split_child(nr, 0);
    root_.unsafe_set(nr);
    r = nr;
  }
  Node* n = r;
  while (n->leaf.unsafe_get() == 0) {
    const int c = static_cast<int>(n->count.unsafe_get());
    int i = 0;
    while (i < c && n->keys[static_cast<std::size_t>(i)].unsafe_get() <= key) {
      ++i;
    }
    Node* child = n->kids[static_cast<std::size_t>(i)].unsafe_get();
    if (child->count.unsafe_get() == kMaxKeys) {
      unsafe_split_child(n, i);
      if (key >= n->keys[static_cast<std::size_t>(i)].unsafe_get()) ++i;
      child = n->kids[static_cast<std::size_t>(i)].unsafe_get();
    }
    n = child;
  }
  const int count = static_cast<int>(n->count.unsafe_get());
  int pos = 0;
  while (pos < count) {
    const std::uint64_t k = n->keys[static_cast<std::size_t>(pos)].unsafe_get();
    if (k == key) return false;
    if (k > key) break;
    ++pos;
  }
  for (int j = count; j > pos; --j) {
    const auto to = static_cast<std::size_t>(j);
    n->keys[to].unsafe_set(n->keys[to - 1].unsafe_get());
    n->vals[to].unsafe_set(n->vals[to - 1].unsafe_get());
  }
  n->keys[static_cast<std::size_t>(pos)].unsafe_set(key);
  n->vals[static_cast<std::size_t>(pos)].unsafe_set(value);
  n->count.unsafe_set(static_cast<std::uint64_t>(count) + 1);
  return true;
}

std::size_t BplusTree::unsafe_size() const {
  const Node* n = root_.unsafe_get();
  while (n->leaf.unsafe_get() == 0) n = n->kids[0].unsafe_get();
  std::size_t total = 0;
  for (; n != nullptr; n = n->next.unsafe_get()) {
    total += n->count.unsafe_get();
  }
  return total;
}

std::vector<std::uint64_t> BplusTree::unsafe_keys() const {
  std::vector<std::uint64_t> out;
  const Node* n = root_.unsafe_get();
  while (n->leaf.unsafe_get() == 0) n = n->kids[0].unsafe_get();
  for (; n != nullptr; n = n->next.unsafe_get()) {
    const int count = static_cast<int>(n->count.unsafe_get());
    for (int i = 0; i < count; ++i) {
      out.push_back(n->keys[static_cast<std::size_t>(i)].unsafe_get());
    }
  }
  return out;
}

bool BplusTree::unsafe_validate(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  std::size_t reachable = 0;
  std::vector<const Node*> leaves_in_order;
  int leaf_depth = -1;
  bool ok = true;
  std::string msg;
  // Recursive structural walk with half-open key bounds [lo, hi).
  std::function<void(const Node*, int, std::uint64_t, std::uint64_t, bool)>
      walk = [&](const Node* n, int depth, std::uint64_t lo, std::uint64_t hi,
                 bool has_hi) {
        if (!ok) return;
        ++reachable;
        const int count = static_cast<int>(n->count.unsafe_get());
        const bool leaf = n->leaf.unsafe_get() != 0;
        if (count < 0 || count > kMaxKeys) {
          ok = false;
          msg = "node key count out of range";
          return;
        }
        if (!leaf && count < 1) {
          ok = false;
          msg = "internal node with no separators";
          return;
        }
        std::uint64_t prev = 0;
        for (int i = 0; i < count; ++i) {
          const std::uint64_t k =
              n->keys[static_cast<std::size_t>(i)].unsafe_get();
          if (i > 0 && k <= prev) {
            ok = false;
            msg = "keys not strictly ascending within a node";
            return;
          }
          if (k < lo || (has_hi && k >= hi)) {
            ok = false;
            msg = leaf ? "leaf key outside its separator bounds"
                       : "separator outside its parent bounds";
            return;
          }
          prev = k;
        }
        if (leaf) {
          if (leaf_depth == -1) leaf_depth = depth;
          if (depth != leaf_depth) {
            ok = false;
            msg = "leaves at unequal depths";
            return;
          }
          leaves_in_order.push_back(n);
          return;
        }
        for (int i = 0; i <= count; ++i) {
          const std::uint64_t clo =
              i == 0 ? lo : n->keys[static_cast<std::size_t>(i - 1)].unsafe_get();
          const bool child_has_hi = i < count || has_hi;
          const std::uint64_t chi =
              i < count ? n->keys[static_cast<std::size_t>(i)].unsafe_get() : hi;
          walk(n->kids[static_cast<std::size_t>(i)].unsafe_get(), depth + 1,
               clo, chi, child_has_hi);
          if (!ok) return;
        }
      };
  walk(root_.unsafe_get(), 0, 0, 0, false);
  if (!ok) return fail(msg);
  // The leaf chain must visit exactly the in-order leaves, and keys must be
  // strictly ascending across it.
  const Node* n = root_.unsafe_get();
  while (n->leaf.unsafe_get() == 0) n = n->kids[0].unsafe_get();
  std::size_t chain_pos = 0;
  bool have_prev = false;
  std::uint64_t prev = 0;
  for (; n != nullptr; n = n->next.unsafe_get()) {
    if (chain_pos >= leaves_in_order.size() ||
        leaves_in_order[chain_pos] != n) {
      return fail("leaf chain disagrees with the tree order");
    }
    ++chain_pos;
    const int count = static_cast<int>(n->count.unsafe_get());
    for (int i = 0; i < count; ++i) {
      const std::uint64_t k = n->keys[static_cast<std::size_t>(i)].unsafe_get();
      if (have_prev && k <= prev) {
        return fail("keys not strictly ascending across the leaf chain");
      }
      prev = k;
      have_prev = true;
    }
  }
  if (chain_pos != leaves_in_order.size()) {
    return fail("leaf chain shorter than the tree order");
  }
  // Free-list accounting: every node is reachable or free, exactly once.
  std::size_t free_count = 0;
  for (const auto& list : free_) {
    for (const Node* f = list.value.unsafe_get(); f != nullptr;
         f = f->next.unsafe_get()) {
      ++free_count;
    }
  }
  if (reachable + free_count != arena_.size()) {
    return fail("node accounting mismatch (reachable + free != capacity)");
  }
  return true;
}

}  // namespace elision::ds
