// Transactional abort causes and Intel-compatible abort status words.
//
// The status bit layout follows the RTM EAX abort status of Intel SDM Vol. 1
// ch. 16 so that fallback handlers can be written exactly as they would be
// against real TSX:
//   bit 0  XABORT    - explicit abort, code in bits [31:24]
//   bit 1  RETRY     - the transaction may succeed on retry
//   bit 2  CONFLICT  - another logical processor conflicted
//   bit 3  CAPACITY  - internal buffer overflow
//   bit 5  NESTED    - abort happened inside a nested transaction
#pragma once

#include <cstdint>

namespace elision::tsx {

enum class AbortCause : std::uint8_t {
  kNone = 0,
  kExplicit,         // XABORT instruction
  kConflict,         // data conflict (requestor wins)
  kCapacity,         // read/write set overflow
  kSpurious,         // unexplained abort (Sec 2.2: these exist and matter)
  kPause,            // PAUSE executed transactionally (Haswell aborts)
  kHleMismatch,      // XRELEASE store did not restore the lock's value
  kNesting,          // unsupported nesting (e.g. HLE inside RTM on Haswell)
  kCauseCount,
};

inline const char* to_string(AbortCause c) {
  switch (c) {
    case AbortCause::kNone: return "none";
    case AbortCause::kExplicit: return "explicit";
    case AbortCause::kConflict: return "conflict";
    case AbortCause::kCapacity: return "capacity";
    case AbortCause::kSpurious: return "spurious";
    case AbortCause::kPause: return "pause";
    case AbortCause::kHleMismatch: return "hle-mismatch";
    case AbortCause::kNesting: return "nesting";
    default: return "?";
  }
}

namespace status {
inline constexpr unsigned kExplicit = 1u << 0;
inline constexpr unsigned kRetry = 1u << 1;
inline constexpr unsigned kConflict = 1u << 2;
inline constexpr unsigned kCapacity = 1u << 3;
inline constexpr unsigned kNested = 1u << 5;

inline constexpr unsigned with_code(unsigned bits, std::uint8_t code) {
  return bits | (static_cast<unsigned>(code) << 24);
}
inline constexpr std::uint8_t code_of(unsigned status) {
  return static_cast<std::uint8_t>(status >> 24);
}
}  // namespace status

// Maps an abort cause to the status word the fallback handler observes.
inline unsigned status_of(AbortCause cause, std::uint8_t xabort_code) {
  using namespace status;
  switch (cause) {
    case AbortCause::kExplicit:
      return with_code(kExplicit | kRetry, xabort_code);
    case AbortCause::kConflict:
      return kConflict | kRetry;
    case AbortCause::kCapacity:
      return kCapacity;  // no RETRY: retrying an oversized tx cannot help
    case AbortCause::kSpurious:
      return kRetry;
    case AbortCause::kPause:
      return kRetry;
    case AbortCause::kHleMismatch:
      return 0;  // like Haswell: HLE-elision violations carry no information
    case AbortCause::kNesting:
      return kNested;
    default:
      return 0;
  }
}

// Thrown by the engine to unwind a speculative execution back to its region
// driver. Never escapes the elision layer.
struct TxAbortException {
  unsigned status;
  AbortCause cause;
};

// Return value of Engine::run_transaction when the body committed.
inline constexpr unsigned kCommitted = 0xFFFFFFFFu;

}  // namespace elision::tsx
