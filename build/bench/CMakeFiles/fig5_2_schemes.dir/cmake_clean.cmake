file(REMOVE_RECURSE
  "CMakeFiles/fig5_2_schemes.dir/fig5_2_schemes.cpp.o"
  "CMakeFiles/fig5_2_schemes.dir/fig5_2_schemes.cpp.o.d"
  "fig5_2_schemes"
  "fig5_2_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_2_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
