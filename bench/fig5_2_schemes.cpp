// Figure 5.2 — speedup of the software-assisted schemes over the plain HLE
// version of the same lock, across tree sizes and contention levels.
//
// Expected shape: large gains on the MCS lock everywhere (the avalanche is
// eliminated); on TTAS the gains appear once there is contention;
// pessimistic SLR fails to scale on TTAS.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace elision;
  using namespace elision::bench;
  harness::banner("Figure 5.2",
                  "Speedup of HLE-SCM / pes-SLR / opt-SLR / opt-SLR-SCM "
                  "over the plain-HLE lock (8 threads).\n"
                  "Expect: MCS gains 2-10x everywhere; TTAS gains grow "
                  "with contention; pes-SLR poor on TTAS.");
  for (const auto& mix : kMixes) {
    std::printf("\n-- %s --\n", mix.name);
    harness::Table table({"lock", "tree-size", "HLE-SCM", "pes-SLR",
                          "opt-SLR", "opt-SLR-SCM"});
    for (const LockSel lock : {LockSel::kTtas, LockSel::kMcs}) {
      for (const std::size_t size : kTreeSizesSmall) {
        RbPoint p;
        p.size = size;
        p.update_pct = mix.update_pct;
        p.lock = lock;
        p.scheme = locks::ElisionPolicy::hle();
        const double hle = run_rb_point(p).throughput();
        std::vector<std::string> row{lock_sel_name(lock),
                                     harness::fmt_int(size)};
        for (const auto scheme :
             {locks::Scheme::kHleScm, locks::Scheme::kPesSlr,
              locks::Scheme::kOptSlr, locks::Scheme::kOptSlrScm}) {
          p.scheme = locks::ElisionPolicy::from_scheme(scheme);
          row.push_back(harness::fmt(run_rb_point(p).throughput() / hle, 2));
        }
        table.add_row(std::move(row));
      }
    }
    table.print();
  }
  return 0;
}
