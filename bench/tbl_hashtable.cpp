// Section 5.2's second data-structure benchmark: the hash table. The paper
// reports its results are comparable to the red-black tree's short-
// transaction regime; this bench reproduces that comparison.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"

namespace {

using namespace elision;
using namespace elision::bench;

template <typename Lock>
harness::RunStats run_ht(locks::Scheme scheme, std::size_t size,
                         int update_pct, ds::HashTable& ht) {
  Lock lock;
  locks::CriticalSection<Lock> cs(locks::ElisionPolicy::from_scheme(scheme), lock);
  harness::BenchConfig cfg;
  cfg.threads = 8;
  cfg.duration_sec = 0.0015;
  cfg.duration_scale = harness::env_duration_scale();
  const std::uint64_t domain = size * 2;
  return harness::run_workload(cfg, [&, update_pct](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(domain);
    const auto dice = static_cast<int>(rng.next_below(100));
    return cs.run(ctx, [&] {
      if (dice < update_pct / 2) {
        ht.insert(ctx, key, key);
      } else if (dice < update_pct) {
        ht.erase(ctx, key);
      } else {
        ht.contains(ctx, key);
      }
    });
  });
}

}  // namespace

int main() {
  harness::banner("Hash-table benchmark (Sec 5.2)",
                  "Short-transaction data structure, 8 threads.\n"
                  "Expect: same qualitative picture as the small-tree "
                  "red-black results — HLE-MCS flat, SCM restores "
                  "concurrency for both locks.");
  harness::Table table({"mix", "lock", "size", "scheme", "Mops/s",
                        "att/op", "nonspec"});
  for (const auto& mix : kMixes) {
    for (const std::size_t size : {64ULL, 1024ULL}) {
      for (const bool mcs : {false, true}) {
        for (const auto scheme : locks::kAllSixSchemes) {
          ds::HashTable ht(512, size * 4 + 512);
          support::Xoshiro256 fill(42);
          std::size_t filled = 0;
          while (filled < size) {
            if (ht.unsafe_insert(fill.next_below(size * 2), 1)) ++filled;
          }
          const auto stats =
              mcs ? run_ht<locks::McsLock>(scheme, size, mix.update_pct, ht)
                  : run_ht<locks::TtasLock>(scheme, size, mix.update_pct, ht);
          table.add_row({mix.name, mcs ? "MCS" : "TTAS",
                         harness::fmt_int(size),
                         locks::scheme_name(scheme),
                         harness::fmt(stats.throughput() / 1e6, 2),
                         harness::fmt(stats.attempts_per_op(), 2),
                         harness::fmt(stats.nonspec_fraction(), 3)});
        }
      }
    }
  }
  table.print();
  return 0;
}
