// Figure 3.3 — serialization dynamics over time: per-slot throughput
// (normalized to the whole-run average) and the per-slot fraction of
// non-speculative completions. Tree size 64, 8 threads, 10i/10d/80l.
//
// Expected shape: MCS runs (almost) fully non-speculatively in every slot;
// TTAS fluctuates, with throughput dips correlated with slots in which more
// operations complete non-speculatively.
#include <cstdio>

#include "bench_common.hpp"

namespace {

void timeline_for(elision::bench::LockSel lock) {
  using namespace elision;
  using namespace elision::bench;
  RbPoint p;
  p.size = 64;
  p.update_pct = 20;
  p.lock = lock;
  p.scheme = locks::ElisionPolicy::hle();
  p.duration_sec = 0.004;
  // 1 ms slots in the paper; use 100 us so the short run has ~40 slots.
  p.timeline_slot_cycles = 340000;
  const auto stats = run_rb_point(p);

  // The timeline merges all seed runs slot-wise, so normalize against the
  // average over populated slots (elapsed_cycles spans seeds sequentially
  // and would overstate the slot count by the seed multiplier).
  std::uint64_t timeline_ops = 0;
  std::size_t populated = 0;
  for (const auto& slot : stats.timeline) {
    if (slot.ops == 0) continue;
    timeline_ops += slot.ops;
    ++populated;
  }
  if (populated == 0) return;
  const double avg_ops =
      static_cast<double>(timeline_ops) / static_cast<double>(populated);
  std::printf("\n-- %s lock (HLE), 100us slots --\n", lock_sel_name(lock));
  harness::Table table({"slot", "normalized-throughput", "nonspec-frac"});
  for (std::size_t s = 0; s < stats.timeline.size(); ++s) {
    const auto& slot = stats.timeline[s];
    if (slot.ops == 0) continue;
    table.add_row(
        {harness::fmt_int(s),
         harness::fmt(static_cast<double>(slot.ops) / avg_ops, 3),
         harness::fmt(static_cast<double>(slot.nonspec_ops) /
                      static_cast<double>(slot.ops), 3)});
  }
  table.print();
}

}  // namespace

int main() {
  using namespace elision;
  harness::banner("Figure 3.3",
                  "Serialization dynamics of an HLE execution over time "
                  "(size 64, 8 threads, 10i/10d/80l).\n"
                  "Expect: MCS non-spec fraction ~1 in every slot; TTAS "
                  "fluctuating throughput correlated with non-spec bursts.");
  timeline_for(bench::LockSel::kMcs);
  timeline_for(bench::LockSel::kTtas);
  return 0;
}
