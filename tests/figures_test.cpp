// Regression guards for the paper's headline results: miniature versions of
// the figure experiments with assertions on the *shape* (orderings and
// rough factors). If a simulator or scheme change breaks the reproduction,
// these fail before anyone stares at bench output.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "ds/hashtable.hpp"
#include "ds/rbtree.hpp"
#include "harness/runner.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "support/rng.hpp"

namespace elision {
namespace {

// One tree measurement (default machine/TSX config — spurious aborts on,
// as in the real experiments).
template <typename Lock>
harness::RunStats tree_run(locks::Scheme scheme, std::size_t size,
                           int update_pct, std::uint64_t seed = 42) {
  ds::RbTree tree(size * 4 + 256);
  support::Xoshiro256 fill(seed);
  std::size_t filled = 0;
  while (filled < size) {
    if (tree.unsafe_insert(fill.next_below(size * 2))) ++filled;
  }
  tree.unsafe_distribute_free_lists(8);
  Lock lock;
  locks::CriticalSection<Lock> cs(locks::ElisionPolicy::from_scheme(scheme), lock);
  harness::BenchConfig cfg;
  cfg.duration_sec = 0.002;
  cfg.machine.seed = seed;
  const int half = update_pct / 2;
  return harness::run_workload(cfg, [&, half, update_pct](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(size * 2);
    const auto dice = static_cast<int>(rng.next_below(100));
    return cs.run(ctx, [&] {
      if (dice < half) {
        tree.insert(ctx, key);
      } else if (dice < update_pct) {
        tree.erase(ctx, key);
      } else {
        tree.contains(ctx, key);
      }
    });
  });
}

TEST(Figures, Fig31_McsGoesFullyNonSpeculative) {
  const auto hle = tree_run<locks::McsLock>(locks::Scheme::kHle, 128, 20);
  EXPECT_GT(hle.nonspec_fraction(), 0.9);
  EXPECT_NEAR(hle.attempts_per_op(), 2.0, 0.15);
}

TEST(Figures, Fig31_McsGainsNothingFromHle) {
  const auto std_ = tree_run<locks::McsLock>(locks::Scheme::kStandard, 128, 20);
  const auto hle = tree_run<locks::McsLock>(locks::Scheme::kHle, 128, 20);
  EXPECT_NEAR(hle.throughput() / std_.throughput(), 1.0, 0.25);
}

TEST(Figures, Fig31_TtasRecoversAndGains) {
  const auto std_ = tree_run<locks::TtasLock>(locks::Scheme::kStandard, 128, 20);
  const auto hle = tree_run<locks::TtasLock>(locks::Scheme::kHle, 128, 20);
  EXPECT_LT(hle.nonspec_fraction(), 0.5);
  EXPECT_GT(hle.throughput() / std_.throughput(), 1.5);
}

TEST(Figures, Fig31_TtasConvergesToSpeculativeOnLargeTrees) {
  const auto hle = tree_run<locks::TtasLock>(locks::Scheme::kHle, 8192, 20);
  EXPECT_LT(hle.nonspec_fraction(), 0.1);
  EXPECT_LT(hle.attempts_per_op(), 1.4);
}

TEST(Figures, Fig52_ScmRescuesTheMcsLock) {
  const auto hle = tree_run<locks::McsLock>(locks::Scheme::kHle, 512, 20);
  const auto scm = tree_run<locks::McsLock>(locks::Scheme::kHleScm, 512, 20);
  EXPECT_GT(scm.throughput() / hle.throughput(), 1.5);
  EXPECT_LT(scm.nonspec_fraction(), 0.05);
}

TEST(Figures, Fig52_PessimisticSlrIsPoorOnTtas) {
  const auto hle = tree_run<locks::TtasLock>(locks::Scheme::kHle, 512, 20);
  const auto pes = tree_run<locks::TtasLock>(locks::Scheme::kPesSlr, 512, 20);
  EXPECT_LT(pes.throughput(), hle.throughput());
}

TEST(Figures, Fig53_ScmConvergesToOneAttempt) {
  const auto scm =
      tree_run<locks::McsLock>(locks::Scheme::kHleScm, 8192, 100);
  EXPECT_LT(scm.attempts_per_op(), 1.15);
  EXPECT_LT(scm.nonspec_fraction(), 0.02);
}

TEST(Figures, HashTable_ScmLargeFactorOverHleMcs) {
  // The data-structure headline: a large SCM-over-HLE factor on the
  // short-transaction hash-table workload (paper: up to 10x).
  auto run = [&](locks::Scheme scheme) {
    ds::HashTable ht(512, 4096 + 512);
    support::Xoshiro256 fill(42);
    std::size_t filled = 0;
    while (filled < 1024) {
      if (ht.unsafe_insert(fill.next_below(2048), 1)) ++filled;
    }
    locks::McsLock lock;
    locks::CriticalSection<locks::McsLock> cs(locks::ElisionPolicy::from_scheme(scheme), lock);
    harness::BenchConfig cfg;
    cfg.duration_sec = 0.002;
    return harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
      auto& rng = ctx.thread().rng();
      const std::uint64_t key = rng.next_below(2048);
      const auto dice = static_cast<int>(rng.next_below(100));
      return cs.run(ctx, [&] {
        if (dice < 50) {
          ht.insert(ctx, key, key);
        } else {
          ht.erase(ctx, key);
        }
      });
    });
  };
  const auto hle = run(locks::Scheme::kHle);
  const auto scm = run(locks::Scheme::kHleScm);
  EXPECT_GT(scm.throughput() / hle.throughput(), 3.0);
}

TEST(Figures, Fig35_HleAndRtmElisionComparable) {
  const auto hle = tree_run<locks::TtasLock>(locks::Scheme::kHle, 512, 20);
  const auto rtm = tree_run<locks::TtasLock>(locks::Scheme::kRtmElide, 512, 20);
  const double ratio = rtm.throughput() / hle.throughput();
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(Figures, Fig21_WriteCliffAt32K) {
  // Transactional writes: 512 lines commit, 600 lines never do.
  sim::MachineConfig m;
  m.n_cores = 1;
  sim::Scheduler sched(m);
  tsx::Engine eng(sched);
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> data(600);
  unsigned small_status = 1, big_status = 1;
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    // Retry the small transaction a few times in case of a spurious abort.
    for (int tries = 0; tries < 5; ++tries) {
      small_status = eng.run_transaction(ctx, [&] {
        for (int i = 0; i < 500; ++i) data[i].value.store(ctx, 1);
      });
      if (small_status == tsx::kCommitted) break;
    }
    big_status = eng.run_transaction(ctx, [&] {
      for (int i = 0; i < 600; ++i) data[i].value.store(ctx, 1);
    });
  });
  sched.run();
  EXPECT_EQ(small_status, tsx::kCommitted);
  EXPECT_NE(big_status, tsx::kCommitted);
  EXPECT_TRUE(big_status & tsx::status::kCapacity);
}

}  // namespace
}  // namespace elision
