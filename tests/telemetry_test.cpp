// Telemetry tests: event-ring mechanics, avalanche detection on synthetic
// traces, and the end-to-end Chapter 3 phenomenon — HLE over a fair lock
// cascades into a mass-abort convoy, while SCM keeps serialization local to
// the conflicting threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ds/rbtree.hpp"
#include "harness/runner.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/schemes.hpp"
#include "support/rng.hpp"
#include "tsx/telemetry.hpp"

namespace elision::tsx {
namespace {

TelemetryEvent ev(std::uint64_t t, int thread, EventKind kind,
                  support::LineId line = 0,
                  AbortCause cause = AbortCause::kNone) {
  TelemetryEvent e;
  e.timestamp = t;
  e.thread = static_cast<std::int16_t>(thread);
  e.kind = kind;
  e.line = line;
  e.cause = cause;
  return e;
}

TEST(EventRing, RoundsCapacityUpAndKeepsOrder) {
  EventRing ring(5);  // rounds up to 8
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 6; ++i) {
    ring.push(ev(100 + i, i, EventKind::kTxBegin));
  }
  EXPECT_EQ(ring.recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(snap[i].timestamp, 100u + i);
  }
}

TEST(EventRing, WrapKeepsNewestAndCountsDropped) {
  EventRing ring(4);
  for (int i = 0; i < 11; ++i) {
    ring.push(ev(i, 0, EventKind::kTxBegin));
  }
  EXPECT_EQ(ring.recorded(), 11u);
  EXPECT_EQ(ring.dropped(), 7u);
  EXPECT_EQ(ring.size(), 4u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().timestamp, 7u);  // oldest retained
  EXPECT_EQ(snap.back().timestamp, 10u);
}

TEST(Telemetry, MergesAcrossThreadsInTimestampOrder) {
  Telemetry t(16);
  t.record(ev(30, 1, EventKind::kTxCommit));
  t.record(ev(10, 0, EventKind::kTxBegin));
  t.record(ev(20, 2, EventKind::kTxBegin));
  t.record(ev(20, 0, EventKind::kTxAbort));  // tie: lower thread id first
  const auto merged = t.merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].timestamp, 10u);
  EXPECT_EQ(merged[1].timestamp, 20u);
  EXPECT_EQ(merged[1].thread, 0);
  EXPECT_EQ(merged[2].thread, 2);
  EXPECT_EQ(merged[3].timestamp, 30u);
  EXPECT_EQ(t.total_recorded(), 4u);
  EXPECT_EQ(t.total_dropped(), 0u);
}

// --- avalanche detector on synthetic traces ---

TEST(AvalancheDetector, FindsCascadeAfterNonSpeculativeAcquire) {
  const support::LineId lock_line = 0xABC0;
  std::vector<TelemetryEvent> trace = {
      ev(1000, 0, EventKind::kLockAcquire, lock_line),
      ev(1100, 1, EventKind::kTxAbort, lock_line, AbortCause::kConflict),
      ev(1200, 2, EventKind::kTxAbort, 0, AbortCause::kPause),
      ev(1300, 3, EventKind::kTxAbort, lock_line, AbortCause::kConflict),
      ev(2000, 0, EventKind::kLockRelease, lock_line),
      ev(2100, 1, EventKind::kLockAcquire, lock_line),
      ev(2900, 1, EventKind::kLockRelease, lock_line),
  };
  AvalancheConfig cfg;
  cfg.window_cycles = 5000;
  cfg.min_victims = 2;
  const auto episodes = detect_avalanches(trace, cfg);
  ASSERT_EQ(episodes.size(), 1u);
  const auto& ep = episodes[0];
  EXPECT_EQ(ep.trigger_thread, 0);
  EXPECT_EQ(ep.start, 1000u);
  EXPECT_EQ(ep.end, 2900u);
  EXPECT_EQ(ep.line, lock_line);
  EXPECT_EQ(ep.aborts, 3u);
  EXPECT_EQ(ep.serialized_ops, 2u);
  ASSERT_EQ(ep.victim_count(), 3);
  EXPECT_EQ(ep.victims, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ep.duration(), 1900u);
}

TEST(AvalancheDetector, BelowMinVictimsIsNotAnAvalanche) {
  // One conflicting pair serializing is expected behaviour, not a cascade.
  std::vector<TelemetryEvent> trace = {
      ev(1000, 0, EventKind::kLockAcquire),
      ev(1100, 1, EventKind::kTxAbort, 0, AbortCause::kConflict),
      ev(1500, 0, EventKind::kLockRelease),
  };
  EXPECT_TRUE(detect_avalanches(trace, {}).empty());
}

TEST(AvalancheDetector, QuietWindowSplitsEpisodes) {
  std::vector<TelemetryEvent> trace = {
      ev(1000, 0, EventKind::kLockAcquire),
      ev(1100, 1, EventKind::kTxAbort, 0, AbortCause::kConflict),
      ev(1200, 2, EventKind::kTxAbort, 0, AbortCause::kConflict),
      // > window_cycles of silence: a fresh episode.
      ev(50000, 3, EventKind::kLockAcquire),
      ev(50100, 4, EventKind::kTxAbort, 0, AbortCause::kConflict),
      ev(50200, 5, EventKind::kTxAbort, 0, AbortCause::kConflict),
  };
  AvalancheConfig cfg;
  cfg.window_cycles = 10000;
  const auto episodes = detect_avalanches(trace, cfg);
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].trigger_thread, 0);
  EXPECT_EQ(episodes[1].trigger_thread, 3);
  EXPECT_EQ(episodes[1].victims, (std::vector<int>{4, 5}));
}

TEST(AvalancheDetector, IgnoresAbortsOnOtherLockLines) {
  std::vector<TelemetryEvent> trace = {
      ev(1000, 0, EventKind::kLockAcquire, 0x100),
      ev(1100, 1, EventKind::kTxAbort, 0x200, AbortCause::kConflict),
      ev(1200, 2, EventKind::kTxAbort, 0x200, AbortCause::kConflict),
      ev(1300, 3, EventKind::kTxAbort, 0x100, AbortCause::kConflict),
  };
  const auto episodes = detect_avalanches(trace, {});
  // Only thread 3 aborted on the trigger's line: below min_victims.
  EXPECT_TRUE(episodes.empty());
}

TEST(AvalancheDetector, ReportsConcurrentEpisodesOnDistinctLockLines) {
  // Two independent locks avalanche in the same window, interleaved. The
  // scan seeded by lock A's acquisition must not swallow lock B's seeding
  // acquisition: both episodes are reported.
  const support::LineId a = 0x100, b = 0x200;
  std::vector<TelemetryEvent> trace = {
      ev(1000, 0, EventKind::kLockAcquire, a),
      ev(1050, 4, EventKind::kLockAcquire, b),  // foreign seed inside A's scan
      ev(1100, 1, EventKind::kTxAbort, a, AbortCause::kConflict),
      ev(1150, 5, EventKind::kTxAbort, b, AbortCause::kConflict),
      ev(1200, 2, EventKind::kTxAbort, a, AbortCause::kConflict),
      ev(1250, 6, EventKind::kTxAbort, b, AbortCause::kConflict),
      ev(1300, 0, EventKind::kLockRelease, a),
      ev(1350, 4, EventKind::kLockRelease, b),
  };
  const auto episodes = detect_avalanches(trace, {});
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].line, a);
  EXPECT_EQ(episodes[0].trigger_thread, 0);
  EXPECT_EQ(episodes[0].victims, (std::vector<int>{1, 2}));
  EXPECT_EQ(episodes[1].line, b);
  EXPECT_EQ(episodes[1].trigger_thread, 4);
  EXPECT_EQ(episodes[1].victims, (std::vector<int>{5, 6}));
}

TEST(AvalancheDetector, ReScanDoesNotDoubleReportAConsumedEpisode) {
  // The re-scan from a foreign-line seed must not re-seed the episode it
  // already consumed: interleaved A/B/A acquisitions yield exactly one
  // episode per lock line.
  const support::LineId a = 0x100, b = 0x200;
  std::vector<TelemetryEvent> trace = {
      ev(1000, 0, EventKind::kLockAcquire, a),
      ev(1020, 4, EventKind::kLockAcquire, b),
      ev(1100, 1, EventKind::kTxAbort, a, AbortCause::kConflict),
      ev(1150, 5, EventKind::kTxAbort, b, AbortCause::kConflict),
      // A second acquisition of A inside both scans: part of A's convoy,
      // not a fresh A episode.
      ev(1200, 2, EventKind::kLockAcquire, a),
      ev(1250, 6, EventKind::kTxAbort, b, AbortCause::kConflict),
      ev(1300, 3, EventKind::kTxAbort, a, AbortCause::kConflict),
  };
  const auto episodes = detect_avalanches(trace, {});
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].line, a);
  EXPECT_EQ(episodes[1].line, b);
  EXPECT_EQ(episodes[0].victims, (std::vector<int>{1, 3}));
  EXPECT_EQ(episodes[1].victims, (std::vector<int>{5, 6}));
}

TEST(AvalancheDetector, TracksVictimsAboveThread64) {
  // Victim tracking must not cap at 64 threads (the old uint64_t bitmask).
  std::vector<TelemetryEvent> trace;
  trace.push_back(ev(1000, 10, EventKind::kLockAcquire, 0x100));
  const int kThreads = 200;
  for (int t = 0; t < kThreads; ++t) {
    // Every thread except the trigger aborts twice; the duplicate must not
    // inflate the distinct-victim list.
    if (t == 10) continue;
    trace.push_back(ev(1001 + static_cast<std::uint64_t>(t), t,
                       EventKind::kTxAbort, 0x100, AbortCause::kConflict));
    trace.push_back(ev(1500 + static_cast<std::uint64_t>(t), t,
                       EventKind::kTxAbort, 0x100, AbortCause::kConflict));
  }
  const auto episodes = detect_avalanches(trace, {});
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].victim_count(), kThreads - 1);
  EXPECT_EQ(episodes[0].aborts, 2u * (kThreads - 1));
  // Victims are reported in ascending thread order, including > 63.
  EXPECT_EQ(episodes[0].victims.front(), 0);
  EXPECT_EQ(episodes[0].victims.back(), kThreads - 1);
}

TEST(RejoinLatencies, PairsEnterWithExitPerThread) {
  std::vector<TelemetryEvent> trace = {
      ev(100, 0, EventKind::kAuxEnter),
      ev(150, 1, EventKind::kAuxEnter),
      ev(300, 0, EventKind::kAuxExit),
      ev(500, 1, EventKind::kAuxExit),
      ev(900, 1, EventKind::kAuxExit),  // unmatched: ignored
  };
  const auto lats = rejoin_latencies(trace);
  ASSERT_EQ(lats.size(), 2u);
  EXPECT_EQ(lats[0], 200u);
  EXPECT_EQ(lats[1], 350u);
}

// --- end-to-end: the Chapter 3 avalanche on a real workload ---

harness::RunStats run_rb(locks::ElisionPolicy policy, bool telemetry) {
  constexpr std::size_t kSize = 64;
  ds::RbTree tree(kSize * 4 + 256);
  support::Xoshiro256 fill(42);
  std::size_t filled = 0;
  while (filled < kSize) {
    if (tree.unsafe_insert(fill.next_below(kSize * 2))) ++filled;
  }
  harness::BenchConfig cfg;
  cfg.threads = 8;
  cfg.duration_sec = 0.001;
  cfg.machine.seed = 42;
  cfg.policy = policy;
  cfg.telemetry = telemetry;
  tree.unsafe_distribute_free_lists(cfg.threads);

  locks::McsLock lock;
  locks::CriticalSection<locks::McsLock> cs(policy, lock);
  return harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(kSize * 2);
    const auto dice = static_cast<int>(rng.next_below(100));
    return cs.run(ctx, [&] {
      if (dice < 10) {
        tree.insert(ctx, key);
      } else if (dice < 20) {
        tree.erase(ctx, key);
      } else {
        tree.contains(ctx, key);
      }
    });
  });
}

int max_victims(const harness::RunStats& stats) {
  int m = 0;
  for (const auto& ep : stats.episodes) {
    if (ep.victim_count() > m) m = ep.victim_count();
  }
  return m;
}

TEST(AvalancheIntegration, HleOverMcsCascadesScmContainsIt) {
  const auto hle = run_rb(locks::ElisionPolicy::hle(), true);
  const auto scm = run_rb(locks::ElisionPolicy::hle_scm(), true);

  // HLE over a fair lock: one abort convoys the whole thread set (Fig 3.1).
  ASSERT_FALSE(hle.episodes.empty());
  EXPECT_GE(max_victims(hle), 5);
  EXPECT_GT(hle.nonspec_fraction(), 0.5);

  // SCM serializes only the threads that actually conflicted: strictly
  // fewer victims per episode, and speculation continues throughout.
  EXPECT_LT(max_victims(scm), max_victims(hle));
  EXPECT_LT(scm.nonspec_fraction(), 0.1);
  EXPECT_GT(scm.rejoin_hist.samples(), 0u);
  EXPECT_GT(scm.throughput(), hle.throughput());
}

TEST(AvalancheIntegration, TelemetryDoesNotPerturbVirtualTime) {
  // Telemetry records host-side only; the simulated run must be bit-for-bit
  // identical with it on or off.
  const auto off = run_rb(locks::ElisionPolicy::hle(), false);
  const auto on = run_rb(locks::ElisionPolicy::hle(), true);
  EXPECT_EQ(off.ops, on.ops);
  EXPECT_EQ(off.spec_ops, on.spec_ops);
  EXPECT_EQ(off.attempts, on.attempts);
  EXPECT_EQ(off.elapsed_cycles, on.elapsed_cycles);
  EXPECT_EQ(off.tx.aborts, on.tx.aborts);
  EXPECT_EQ(off.telemetry_events, 0u);
  EXPECT_GT(on.telemetry_events, 0u);
}

}  // namespace
}  // namespace elision::tsx
