# Empty compiler generated dependencies file for hwext_test.
# This may be replaced when dependencies are built.
