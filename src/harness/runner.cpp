#include "harness/runner.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "support/check.hpp"
#include "support/parallel.hpp"

namespace elision::harness {

double env_duration_scale() {
  const char* s = std::getenv("ELISION_BENCH_SCALE");
  if (s == nullptr || *s == '\0') return 1.0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  while (end != nullptr && *end != '\0' &&
         std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  if (end == s || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
    // once_flag, not a bare bool: concurrent simulations (support/parallel)
    // may hit this path from several host threads at once.
    static std::once_flag warned;
    std::call_once(warned, [s] {
      std::fprintf(stderr,
                   "harness: ignoring ELISION_BENCH_SCALE=\"%s\" (want a "
                   "positive finite number); using 1.0\n",
                   s);
    });
    return 1.0;
  }
  return v;
}

int env_host_threads() {
  const char* s = std::getenv("ELISION_HOST_THREADS");
  if (s == nullptr || *s == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  while (end != nullptr && *end != '\0' &&
         std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  if (end == s || *end != '\0' || v < 0) {
    static std::once_flag warned;
    std::call_once(warned, [s] {
      std::fprintf(stderr,
                   "harness: ignoring ELISION_HOST_THREADS=\"%s\" (want a "
                   "non-negative integer, 0 = all hardware threads); "
                   "using 1\n",
                   s);
    });
    return 1;
  }
  if (v == 0) return support::host_hardware_threads();
  return static_cast<int>(v);
}

bool env_fastpath_enabled() {
  const char* s = std::getenv("ELISION_FASTPATH");
  if (s == nullptr || *s == '\0') return true;
  return std::strcmp(s, "0") != 0;
}

void RunStats::accumulate(const RunStats& o) {
  if (elapsed_cycles == 0 && ops == 0) {
    ghz = o.ghz;
  } else {
    ELISION_CHECK_MSG(ghz == o.ghz,
                      "accumulated runs with different MachineConfig::ghz");
  }
  ops += o.ops;
  spec_ops += o.spec_ops;
  nonspec_ops += o.nonspec_ops;
  attempts += o.attempts;
  elapsed_cycles += o.elapsed_cycles;
  perturb_points += o.perturb_points;
  tx += o.tx;
  fp_bound_recomputes += o.fp_bound_recomputes;
  if (timeline.size() < o.timeline.size()) timeline.resize(o.timeline.size());
  for (std::size_t s = 0; s < o.timeline.size(); ++s) {
    timeline[s].ops += o.timeline[s].ops;
    timeline[s].nonspec_ops += o.timeline[s].nonspec_ops;
  }
  attempts_hist.merge(o.attempts_hist);
  rejoin_hist.merge(o.rejoin_hist);
  episodes.insert(episodes.end(), o.episodes.begin(), o.episodes.end());
  telemetry_events += o.telemetry_events;
  telemetry_dropped += o.telemetry_dropped;
  for (const auto& ol : o.op_latency) {
    latency_series(ol.op)->merge(ol.hist);
  }
}

QuantileHistogram* RunStats::latency_series(const std::string& op) {
  for (auto& ol : op_latency) {
    if (ol.op == op) return &ol.hist;
  }
  op_latency.push_back({op, {}});
  return &op_latency.back().hist;
}

void validate_bench_config(const BenchConfig& cfg) {
  const auto die = [](const std::string& why) {
    std::fprintf(stderr, "error: invalid bench config: %s\n", why.c_str());
    std::exit(2);
  };
  if (cfg.threads < 1 || cfg.threads > sim::kMaxSimThreads) {
    die("threads must be in [1," + std::to_string(sim::kMaxSimThreads) +
        "], got " + std::to_string(cfg.threads));
  }
  if (cfg.machine.n_cores == 0) {
    die("machine.n_cores must be >= 1 (0 is not a valid topology; leave a "
        "point's n_cores override at 0 to keep the default machine)");
  }
  if (cfg.machine.smt_per_core == 0) {
    die("machine.smt_per_core must be >= 1 (0 is not a valid topology; "
        "leave a point's smt_per_core override at 0 to keep the default "
        "machine)");
  }
}

RunStats run_workload(const BenchConfig& cfg_in, const OpFn& op) {
  validate_bench_config(cfg_in);
  // ELISION_FASTPATH=0 disables both per-access fast paths (the engine's
  // owned-line cache and the scheduler's switch-bound batching) for A/B
  // speed measurement; simulated results are identical either way.
  BenchConfig cfg = cfg_in;
  if (!env_fastpath_enabled()) {
    cfg.machine.batch_switch_bound = false;
    cfg.tsx.owned_line_fastpath = false;
  }
  sim::Scheduler sched(cfg.machine);
  tsx::Engine eng(sched, cfg.tsx);

  const bool want_telemetry = cfg.telemetry || cfg.telemetry_sink != nullptr;
  tsx::Telemetry local_telemetry(cfg.telemetry_ring_capacity);
  tsx::Telemetry* telemetry = cfg.telemetry_sink != nullptr
                                  ? cfg.telemetry_sink
                                  : &local_telemetry;
  if (want_telemetry && tsx::kTelemetryCompiled) {
    eng.set_telemetry(telemetry);
  }

  const std::uint64_t deadline = cfg.duration_cycles();
  const std::uint64_t slot_cycles = cfg.timeline_slot_cycles;
  const std::size_t n_slots =
      slot_cycles > 0 ? static_cast<std::size_t>(deadline / slot_cycles + 2)
                      : 0;

  struct ThreadTally {
    std::uint64_t ops = 0, spec = 0, nonspec = 0, attempts = 0;
    Histogram attempts_hist;
    std::vector<SlotStats> timeline;
  };
  std::vector<ThreadTally> tallies(cfg.threads);

  for (int t = 0; t < cfg.threads; ++t) {
    tallies[t].timeline.resize(n_slots);
    sched.spawn([&cfg, &eng, &op, &tallies, slot_cycles, t](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      auto& mine = tallies[t];
      while (!st.stop_requested()) {
        const locks::RegionResult r = op(ctx);
        if (cfg.on_region_complete) cfg.on_region_complete(ctx, r);
        ++mine.ops;
        if (r.speculative) {
          ++mine.spec;
        } else {
          ++mine.nonspec;
        }
        mine.attempts += static_cast<std::uint64_t>(r.attempts);
        mine.attempts_hist.add(static_cast<std::uint64_t>(r.attempts));
        if (slot_cycles > 0) {
          const auto slot =
              static_cast<std::size_t>(st.now() / slot_cycles);
          if (slot < mine.timeline.size()) {
            ++mine.timeline[slot].ops;
            if (!r.speculative) ++mine.timeline[slot].nonspec_ops;
          }
        }
      }
    });
  }
  sched.run_for(deadline);

  RunStats out;
  out.ghz = cfg.machine.ghz;
  out.elapsed_cycles = sched.elapsed_cycles();
  out.perturb_points = sched.perturb_points_used();
  out.timeline.resize(n_slots);
  for (const auto& t : tallies) {
    out.ops += t.ops;
    out.spec_ops += t.spec;
    out.nonspec_ops += t.nonspec;
    out.attempts += t.attempts;
    out.attempts_hist.merge(t.attempts_hist);
    for (std::size_t s = 0; s < t.timeline.size(); ++s) {
      out.timeline[s].ops += t.timeline[s].ops;
      out.timeline[s].nonspec_ops += t.timeline[s].nonspec_ops;
    }
  }
  out.tx = eng.total_stats();
  out.fp_bound_recomputes = sched.switch_bound_recomputes();

  if (want_telemetry && tsx::kTelemetryCompiled) {
    eng.set_telemetry(nullptr);
    out.telemetry_events = telemetry->total_recorded();
    out.telemetry_dropped = telemetry->total_dropped();
    const auto merged = telemetry->merged();
    out.episodes = tsx::detect_avalanches(merged, cfg.avalanche);
    for (const std::uint64_t lat : tsx::rejoin_latencies(merged)) {
      out.rejoin_hist.add(lat);
    }
  }
  return out;
}

RunStats run_workload(const BenchConfig& cfg, const OpFn& op,
                      MetricsRegistry& registry,
                      const std::string& lock_name) {
  RunStats stats = run_workload(cfg, op);
  registry.record(cfg.policy.name(), lock_name, stats);
  return stats;
}

}  // namespace elision::harness
