file(REMOVE_RECURSE
  "CMakeFiles/hwext_test.dir/hwext_test.cpp.o"
  "CMakeFiles/hwext_test.dir/hwext_test.cpp.o.d"
  "hwext_test"
  "hwext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
