// A tiny open-addressing hash map from uintptr_t keys to 8-byte values,
// used for transactional write buffers (hot path: one probe on average).
// Key 0 is reserved as the empty marker (no simulated object lives at
// address 0).
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace elision::support {

class WordMap {
 public:
  explicit WordMap(std::size_t initial_pow2 = 6)
      : mask_((1u << initial_pow2) - 1), slots_(mask_ + 1) {}

  void clear() {
    if (size_ == 0) return;
    for (auto& s : slots_) s.key = 0;
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Inserts or overwrites.
  void put(std::uintptr_t key, std::uint64_t value) {
    ELISION_DCHECK(key != 0);
    if ((size_ + 1) * 4 >= slots_.size() * 3) grow();
    Slot& s = probe(key);
    if (s.key == 0) {
      s.key = key;
      ++size_;
    }
    s.value = value;
  }

  // Returns nullptr if absent.
  const std::uint64_t* find(std::uintptr_t key) const {
    const Slot& s = const_cast<WordMap*>(this)->probe(key);
    return s.key == key ? &s.value : nullptr;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (const auto& s : slots_) {
      if (s.key != 0) f(s.key, s.value);
    }
  }

 private:
  struct Slot {
    std::uintptr_t key = 0;
    std::uint64_t value = 0;
  };

  Slot& probe(std::uintptr_t key) {
    std::size_t i = hash(key) & mask_;
    while (slots_[i].key != 0 && slots_[i].key != key) i = (i + 1) & mask_;
    return slots_[i];
  }

  static std::size_t hash(std::uintptr_t key) {
    std::uint64_t x = key;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    mask_ = mask_ * 2 + 1;
    slots_.assign(mask_ + 1, Slot{});
    size_ = 0;
    for (const auto& s : old) {
      if (s.key != 0) put(s.key, s.value);
    }
  }

  std::size_t mask_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace elision::support
