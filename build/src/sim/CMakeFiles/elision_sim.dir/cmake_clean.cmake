file(REMOVE_RECURSE
  "CMakeFiles/elision_sim.dir/fiber.cpp.o"
  "CMakeFiles/elision_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/elision_sim.dir/scheduler.cpp.o"
  "CMakeFiles/elision_sim.dir/scheduler.cpp.o.d"
  "libelision_sim.a"
  "libelision_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elision_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
