// Per-thread transactional execution statistics.
#pragma once

#include <array>
#include <cstdint>

#include "tsx/abort.hpp"

namespace elision::tsx {

struct TxStats {
  std::uint64_t begins = 0;    // transactions started
  std::uint64_t commits = 0;   // transactions committed
  std::uint64_t aborts = 0;    // transactions aborted (any cause)
  std::array<std::uint64_t, static_cast<std::size_t>(AbortCause::kCauseCount)>
      aborts_by_cause{};

  // Per-access fast-path telemetry (host-side observability only; neither
  // counter feeds back into the simulation). `fp_owned_hits` counts accesses
  // served entirely from the context's owned-line cache;
  // `fp_probe_skips` counts slow-path lookups whose (line -> slot) memo was
  // validated by the table's generation stamp, replacing a hash probe with
  // one indexed load.
  std::uint64_t fp_owned_hits = 0;
  std::uint64_t fp_probe_skips = 0;

  void record_abort(AbortCause cause) {
    ++aborts;
    ++aborts_by_cause[static_cast<std::size_t>(cause)];
  }

  TxStats& operator+=(const TxStats& o) {
    begins += o.begins;
    commits += o.commits;
    aborts += o.aborts;
    for (std::size_t i = 0; i < aborts_by_cause.size(); ++i) {
      aborts_by_cause[i] += o.aborts_by_cause[i];
    }
    fp_owned_hits += o.fp_owned_hits;
    fp_probe_skips += o.fp_probe_skips;
    return *this;
  }
};

}  // namespace elision::tsx
