# Empty dependencies file for abl_scm_nested.
# This may be replaced when dependencies are built.
