file(REMOVE_RECURSE
  "CMakeFiles/elide.dir/elide_cli.cpp.o"
  "CMakeFiles/elide.dir/elide_cli.cpp.o.d"
  "elide"
  "elide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
