// Grouped software-assisted conflict management — the paper's future-work
// extension (Ch. 4 Remark): "grouping the conflicting threads in one group
// may be too strict since a single conflicting thread does not have to
// conflict with the entire group. A natural extension is dividing the
// conflicting threads into different groups, each containing only threads
// that conflict among themselves."
//
// This implementation uses the abort feedback the simulated hardware
// provides (the cache line on which the conflict occurred — exactly the
// information the thesis's "In the future" section asks the hardware for):
// an aborted thread serializes on aux_locks[hash(conflict_line) % K], so
// threads conflicting on *different* data serialize independently instead
// of funnelling through one auxiliary lock.
//
// Falls back to group 0 when the abort carried no conflict location (e.g. a
// spurious abort).
#pragma once

#include <array>

#include "locks/region.hpp"
#include "support/function_ref.hpp"
#include "tsx/engine.hpp"

namespace elision::locks {

struct GroupedScmParams {
  int max_retries = 10;

  friend bool operator==(const GroupedScmParams&,
                         const GroupedScmParams&) = default;
};

// A bank of K auxiliary locks for grouped conflict serialization. AuxLock
// must be starvation-free for the scheme to inherit fairness (Ch. 4).
template <typename AuxLock, int K = 8>
class AuxLockBank {
 public:
  static constexpr int kGroups = K;
  // `line_key` must be a run-stable identifier of the conflict line —
  // Engine::line_seq(), not the raw LineId (an address, so hashing it
  // would pick different groups every run and break reproducibility).
  AuxLock& group_for(std::uint64_t line_key) {
    // Mix the key so adjacent lines spread over groups.
    std::uint64_t x = line_key;
    x ^= x >> 17;
    x *= 0xED5AD4BBULL;
    x ^= x >> 11;
    return locks_[x % K];
  }
  AuxLock& group(int i) { return locks_[i]; }

 private:
  std::array<AuxLock, K> locks_;
};

template <typename MainLock, typename AuxBank>
RegionResult grouped_scm_region(tsx::Ctx& ctx, MainLock& main, AuxBank& bank,
                                const GroupedScmParams& params,
                                support::FunctionRef<void()> body,
                                AccessMode mode = AccessMode::kExclusive) {
  auto& eng = ctx.engine();
  RegionResult r;
  int retries = 0;
  typename std::remove_reference_t<decltype(bank.group(0))>* aux = nullptr;
  for (;;) {
    ++r.attempts;
    const unsigned st = eng.run_transaction(ctx, [&] {
      if (detail::mode_blocked(ctx, main, mode)) {
        eng.xabort(ctx, kAbortCodeLockBusy);
      }
      body();
    });
    if (st == tsx::kCommitted) {
      r.speculative = true;
      if (aux != nullptr) eng.note_event(ctx, tsx::EventKind::kAuxRejoin);
      break;
    }
    r.last_abort = ctx.last_abort_cause();
    // No RETRY in the status (e.g. capacity): no re-execution can commit,
    // so don't burn max_retries serialized attempts — same short-circuit as
    // scm_region/slr_region.
    if ((st & tsx::status::kRetry) == 0) {
      complete_locked(ctx, main, r, body, mode);
      break;
    }
    // Serializing path: pick the group from the conflict location.
    if (aux == nullptr) {
      eng.note_event(ctx, tsx::EventKind::kAuxEnter,
                     ctx.last_conflict_line());
      aux = &bank.group_for(eng.line_seq(ctx.last_conflict_line()));
      aux->lock(ctx);
    } else {
      ++retries;
    }
    if (retries >= params.max_retries) {
      complete_locked(ctx, main, r, body, mode);
      break;
    }
  }
  if (aux != nullptr) {
    aux->unlock(ctx);
    eng.note_event(ctx, tsx::EventKind::kAuxExit);
  }
  return r;
}

}  // namespace elision::locks
