// Invariant checkers for the schedule-exploration stress subsystem.
//
// All checker state is host-side: it is invisible to the simulated cache-
// coherence fabric (no Shared<T>), costs no virtual time, and therefore
// cannot perturb the very interleavings it is checking. The price is that
// checkers must be careful about speculative execution: a transactional
// body may run, be rolled back, and run again, so host-side counters are
// only touched from non-transactional executions (which never roll back).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "tsx/tx_context.hpp"

namespace elision::stress {

// Mutual exclusion: at most one thread may be inside a critical section
// *non-speculatively* per lock. Speculative (transactional) executions
// legitimately overlap — the TM layer arbitrates them and rolls losers
// back — so only non-transactional occupancy counts. Scope a Guard over the
// critical-section body:
//
//   cs.run(ctx, [&] {
//     MutualExclusionChecker::Guard g(checker, ctx);
//     ... body ...
//   });
class MutualExclusionChecker {
 public:
  // Counts the enclosing scope as a non-speculative critical-section
  // occupancy unless the thread is in a transaction. The decision is
  // latched at construction: an abort can only unwind a *transactional*
  // scope (never counted), so a counted scope always runs its destructor
  // exactly once.
  class Guard {
   public:
    Guard(MutualExclusionChecker& checker, tsx::Ctx& ctx)
        : checker_(checker), counted_(!ctx.in_tx()) {
      if (counted_ && ++checker_.inside_ > 1) ++checker_.violations_;
    }
    ~Guard() {
      if (counted_) --checker_.inside_;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    MutualExclusionChecker& checker_;
    const bool counted_;
  };

  std::uint64_t violations() const { return violations_; }
  void reset() {
    inside_ = 0;
    violations_ = 0;
  }

 private:
  int inside_ = 0;
  std::uint64_t violations_ = 0;
};

// Reader-writer mutual exclusion for the two-mode lock family: a
// non-speculative writer must exclude *everything*; non-speculative readers
// may overlap each other but never a writer. As with MutualExclusionChecker,
// speculative (transactional) occupancies legitimately overlap — the TM
// layer rolls losers back — so only non-transactional scopes count, and the
// decision is latched at construction. Scope a WriterGuard over exclusive
// bodies and a ReaderGuard over shared ones.
class SharedMutualExclusionChecker {
 public:
  class WriterGuard {
   public:
    WriterGuard(SharedMutualExclusionChecker& checker, tsx::Ctx& ctx)
        : checker_(checker), counted_(!ctx.in_tx()) {
      if (counted_ &&
          (++checker_.writers_ > 1 || checker_.readers_ > 0)) {
        ++checker_.violations_;
      }
    }
    ~WriterGuard() {
      if (counted_) --checker_.writers_;
    }
    WriterGuard(const WriterGuard&) = delete;
    WriterGuard& operator=(const WriterGuard&) = delete;

   private:
    SharedMutualExclusionChecker& checker_;
    const bool counted_;
  };

  class ReaderGuard {
   public:
    ReaderGuard(SharedMutualExclusionChecker& checker, tsx::Ctx& ctx)
        : checker_(checker), counted_(!ctx.in_tx()) {
      if (counted_) {
        ++checker_.readers_;
        if (checker_.writers_ > 0) ++checker_.violations_;
      }
    }
    ~ReaderGuard() {
      if (counted_) --checker_.readers_;
    }
    ReaderGuard(const ReaderGuard&) = delete;
    ReaderGuard& operator=(const ReaderGuard&) = delete;

   private:
    SharedMutualExclusionChecker& checker_;
    const bool counted_;
  };

  std::uint64_t violations() const { return violations_; }
  void reset() {
    writers_ = 0;
    readers_ = 0;
    violations_ = 0;
  }

 private:
  int writers_ = 0;
  int readers_ = 0;
  std::uint64_t violations_ = 0;
};

// Role-lockout watchdog for reader-writer locks: the role-granular sibling
// of StarvationWatchdog. Writer-preference locks can lock *readers* out
// under a continuous writer stream (the SharedTtasLock hazard); a broken
// reader protocol that ignores writer intent locks *writers* out under a
// continuous reader stream (the planted GreedySharedLock bug). Feed every
// completion with its role; a role silent for `gap_cycles` of virtual time
// while the other role completed at least `min_other_ops` regions is locked
// out — not merely idle.
class RoleLockoutChecker {
 public:
  RoleLockoutChecker(std::uint64_t gap_cycles, std::uint64_t min_other_ops)
      : gap_cycles_(gap_cycles), min_other_ops_(min_other_ops) {}

  void note_reader(std::uint64_t now) { note(0, now); }
  void note_writer(std::uint64_t now) { note(1, now); }

  // Call once after the run with the final virtual time: a role that fell
  // silent and never completed again is locked out too.
  void finish(std::uint64_t end_time) {
    for (int r = 0; r < 2; ++r) check_gap(r, end_time);
  }

  const std::vector<std::string>& violations() const { return violations_; }

 private:
  void note(int role, std::uint64_t now) {
    check_gap(role, now);
    auto& t = roles_[role];
    t.completions += 1;
    t.last_completion = now;
    t.other_at_last = roles_[1 - role].completions;
  }

  void check_gap(int role, std::uint64_t now) {
    const auto& t = roles_[role];
    const std::uint64_t gap = now - t.last_completion;
    const std::uint64_t other = roles_[1 - role].completions - t.other_at_last;
    if (gap > gap_cycles_ && other >= min_other_ops_) {
      violations_.push_back(
          std::string(role == 0 ? "reader" : "writer") +
          " lockout: no completion for " + std::to_string(gap) +
          " cycles while " + std::to_string(other) + " " +
          (role == 0 ? "writer" : "reader") + " completions went through");
    }
  }

  struct PerRole {
    std::uint64_t completions = 0;
    std::uint64_t last_completion = 0;
    std::uint64_t other_at_last = 0;
  };

  const std::uint64_t gap_cycles_;
  const std::uint64_t min_other_ops_;
  PerRole roles_[2];
  std::vector<std::string> violations_;
};

// Virtual-time livelock/starvation watchdog. Feed it every region
// completion (thread id + the completing thread's virtual clock); it flags
// any thread that went `gap_cycles` of simulated time without completing a
// region while the rest of the system completed at least `min_other_ops`
// regions — i.e. the thread was starved, not the system idle.
class StarvationWatchdog {
 public:
  StarvationWatchdog(int n_threads, std::uint64_t gap_cycles,
                     std::uint64_t min_other_ops)
      : gap_cycles_(gap_cycles),
        min_other_ops_(min_other_ops),
        threads_(static_cast<std::size_t>(n_threads)) {}

  void note_completion(int tid, std::uint64_t now) {
    ELISION_CHECK(tid >= 0 &&
                  static_cast<std::size_t>(tid) < threads_.size());
    auto& t = threads_[static_cast<std::size_t>(tid)];
    check_gap(tid, t, now);
    ++total_ops_;
    t.last_completion = now;
    t.ops_at_last = total_ops_;
  }

  // Call once after the run with the final virtual time: a thread that fell
  // silent and never completed again is starvation too.
  void finish(std::uint64_t end_time) {
    for (std::size_t tid = 0; tid < threads_.size(); ++tid) {
      check_gap(static_cast<int>(tid), threads_[tid], end_time);
    }
  }

  const std::vector<std::string>& violations() const { return violations_; }

 private:
  struct PerThread {
    std::uint64_t last_completion = 0;
    std::uint64_t ops_at_last = 0;
  };

  void check_gap(int tid, const PerThread& t, std::uint64_t now) {
    const std::uint64_t gap = now - t.last_completion;
    const std::uint64_t other_ops = total_ops_ - t.ops_at_last;
    if (gap > gap_cycles_ && other_ops >= min_other_ops_) {
      violations_.push_back(
          "thread " + std::to_string(tid) + " completed nothing for " +
          std::to_string(gap) + " cycles while " +
          std::to_string(other_ops) + " other completions went through");
    }
  }

  const std::uint64_t gap_cycles_;
  const std::uint64_t min_other_ops_;
  std::vector<PerThread> threads_;
  std::uint64_t total_ops_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace elision::stress
