// Plain-text table/CSV reporting for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "tsx/telemetry.hpp"

namespace elision::harness {

// A simple fixed-width table printer: add rows of cells, print aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const;
  void print_csv(std::FILE* out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int precision = 3);
std::string fmt_int(std::uint64_t v);

// Prints a figure banner so bench output is self-describing.
void banner(const char* experiment, const char* description);

// One row per avalanche episode: trigger thread, window, victim set size,
// aborts, serialized completions. Prints nothing if there are no episodes.
void print_episodes(const std::vector<tsx::AvalancheEpisode>& episodes,
                    std::FILE* out = stdout);

// One-paragraph telemetry digest of a run: event volume, episode totals,
// rejoin latency summary. No-op unless the run collected telemetry.
void print_telemetry_summary(const RunStats& stats, std::FILE* out = stdout);

}  // namespace elision::harness
